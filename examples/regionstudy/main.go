// Regionstudy: profile a pointer-chasing workload the way §3 of the
// paper profiles SPEC95 — per-instruction region sets (Figure 2
// classes), region traffic, and sliding-window occupancy (Table 2) —
// then show how the profile yields the §3.5.2 oracle hints.
//
// Run with: go run ./examples/regionstudy
package main

import (
	"fmt"
	"log"

	"repro/internal/minicc"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/region"
)

// A linked-list workload: nodes on the heap, a lookup table in static
// data, and recursive traversal on the stack.
const src = `
int lengths[32];

int *newnode(int v, int *next) {
	int *n = malloc(2 * sizeof(int));
	n[0] = v;
	n[1] = (int)next;
	return n;
}

int walk(int *n) {
	if (n == 0) return 0;
	return n[0] + walk((int*)n[1]);
}

int main() {
	int total = 0;
	int it;
	for (it = 0; it < 200; it++) {
		int *head = 0;
		int i;
		int len = 5 + (it % 27);
		for (i = 0; i < len; i++) head = newnode(i, head);
		lengths[it % 32] = len;
		total += walk(head);
	}
	return total & 255;
}
`

func main() {
	p, err := minicc.Compile("chaser.c", src)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := profile.Run(p, 0, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d instructions (%.0f%% loads, %.0f%% stores), exit %d\n\n",
		pr.DynInsts, pr.LoadPct(), pr.StorePct(), pr.ExitCode)

	b := pr.Classes()
	fmt.Println("static memory instructions by region class (Figure 2 view):")
	for _, set := range region.AllClasses {
		if n := b.StaticByClass[set]; n > 0 {
			fmt.Printf("  %-6s %4d static, %8d dynamic\n", set.Class(), n, b.DynByClass[set])
		}
	}
	fmt.Printf("multi-region static instructions: %.1f%% (dynamic: %.1f%%)\n\n",
		b.MultiRegionStaticPct(), b.MultiRegionDynPct())

	fmt.Println("region traffic and window occupancy (Table 2 view):")
	for reg := 0; reg < region.Count; reg++ {
		w32 := &pr.Windows[0]
		fmt.Printf("  %-6s %8d refs   %5.2f (%.2f) per 32 instructions, bursty=%v\n",
			region.Region(reg), pr.RegionRefs[reg],
			w32.Mean(region.Region(reg)), w32.StdDev(region.Region(reg)),
			w32.StrictlyBursty(region.Region(reg)))
	}

	oracle := pr.Oracle()
	counts := map[prog.Hint]int{}
	for i := range p.Text {
		if p.Text[i].IsMem() {
			counts[oracle(i)]++
		}
	}
	fmt.Printf("\nprofile oracle (paper §3.5.2 'compiler information' upper bound):\n")
	fmt.Printf("  stack: %d, nonstack: %d, unknown: %d, never-executed: %d\n",
		counts[prog.HintStack], counts[prog.HintNonStack],
		counts[prog.HintUnknown], counts[prog.HintNone])
}
