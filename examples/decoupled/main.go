// Decoupled: run one workload through the timing simulator on the
// baseline (2+0) memory system and on the paper's data-decoupled (3+3)
// design, and compare — a miniature of the Figure 8 experiment.
//
// Run with: go run ./examples/decoupled [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cpu"
	"repro/internal/workload"
)

func main() {
	name := "130.li"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, ok := workload.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q (try: go, li, perl, swim, ...)", name)
	}

	fmt.Printf("compiling and tracing %s (%s)...\n", w.Name, w.About)
	p, err := w.Compile(0)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := cpu.BuildTrace(p, cpu.TraceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d dynamic instructions; steering accuracy %.3f%%\n\n",
		len(tr.Insts), tr.PredictorStats.Accuracy())

	configs := []cpu.Config{
		cpu.Conventional(2, 2),  // the baseline: dual-ported cache
		cpu.Decoupled(3, 3),     // the paper's pick
		cpu.Conventional(16, 2), // unlimited-bandwidth upper bound
	}
	var base *cpu.Result
	for _, cfg := range configs {
		res, err := cpu.Simulate(tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = res
		}
		fmt.Printf("%-10s  %9d cycles  IPC %5.2f  speedup %.3f\n",
			cfg.Name, res.Cycles, res.IPC(), res.Speedup(base))
		if cfg.Decoupled() {
			fmt.Printf("            LVC: %d accesses, %.2f%% hit rate; "+
				"%d fast forwards; %d steering mispredicts\n",
				res.LVCStats.Accesses, 100*res.LVCStats.HitRate(),
				res.FastForwards, res.ARPTMispredicts)
		}
	}
	fmt.Println("\nThe (3+3) design reaches most of the (16+0) headroom with two")
	fmt.Println("small caches instead of one heavily multi-ported one — the")
	fmt.Println("paper's central result.")
}
