# deadstore_good.s - positive fixture for the dead-store lint: every
# frame slot written by a leaf function is read again before return,
# and functions that make calls or pass frame pointers are exempt (a
# callee reads its incoming arguments from below the caller's entry
# $sp, so the caller's stores there are never provably dead).
	.data
msg:	.asciiz "ok"

	.text
	.globl main
main:
	addi $sp, $sp, -16
	sw   $ra, 12($sp)
	sw   $s0, 8($sp)         # live: restored below
	li   $s0, 3
	sw   $s0, 4($sp)         # live: reloaded into $a0
	lw   $a0, 4($sp)
	jal  double
	add  $s0, $v0, $zero
	lw   $s0, 8($sp)
	lw   $ra, 12($sp)
	addi $sp, $sp, 16
	jr   $ra

# A leaf whose only spill is reloaded: nothing to report.
double:
	addi $sp, $sp, -8
	sw   $a0, 0($sp)
	lw   $t0, 0($sp)
	add  $v0, $t0, $t0
	addi $sp, $sp, 8
	jr   $ra
