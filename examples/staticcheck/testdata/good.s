# good.s - a convention-clean RISA program: main keeps its frame
# balanced, saves and restores $ra and $s0, and sum() walks a global
# array through in-bounds pointer arithmetic. arlcheck must report no
# diagnostics, and the analyzer proves the array loads non-stack and
# the spill traffic stack.
	.data
table:	.word 3, 1, 4, 1, 5, 9, 2, 6

	.text
	.globl main
main:
	addi $sp, $sp, -24
	sw   $ra, 20($sp)
	sw   $s0, 16($sp)
	la   $a0, table
	li   $a1, 8
	jal  sum
	add  $s0, $v0, $zero
	sw   $s0, 12($sp)        # spill the result to the frame
	lw   $v0, 12($sp)
	lw   $s0, 16($sp)
	lw   $ra, 20($sp)
	addi $sp, $sp, 24
	jr   $ra

# int sum(int *v, int n): a leaf with no frame at all.
sum:
	li   $v0, 0
	li   $t0, 0
sum_loop:
	slt  $t1, $t0, $a1
	beq  $t1, $zero, sum_done
	slli $t2, $t0, 2
	add  $t2, $a0, $t2
	lw   $t3, 0($t2)
	add  $v0, $v0, $t3
	addi $t0, $t0, 1
	j    sum_loop
sum_done:
	jr   $ra
