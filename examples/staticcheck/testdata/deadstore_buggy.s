# deadstore_buggy.s - negative fixture for the dead-store lint: a leaf
# function spills a value to its frame and returns without any load
# ever touching the slot. The store can be deleted without changing the
# program, which in compiled code means a wasted stack access — exactly
# the traffic the paper's access-region study wants off the critical
# path. arlcheck treats *buggy* files as fixtures that MUST produce
# diagnostics.
#
# Expected findings:
#   wastes:  dead-store (slot -8 written, never read)
	.text
	.globl main
main:
	addi $sp, $sp, -8
	sw   $ra, 4($sp)
	jal  wastes
	lw   $ra, 4($sp)
	addi $sp, $sp, 8
	jr   $ra

# A leaf that computes into its frame and never looks back: the spill
# to 0($sp) is loaded again (live), the one to 4($sp) is not (dead).
wastes:
	addi $sp, $sp, -8
	li   $t0, 21
	sw   $t0, 0($sp)
	sw   $t0, 4($sp)
	lw   $t1, 0($sp)
	add  $v0, $t1, $t1
	addi $sp, $sp, 8
	jr   $ra
