# buggy.s - a negative fixture for arlcheck: every function below
# violates a convention the analyzer lints. arlcheck treats files named
# *buggy* as fixtures that MUST produce diagnostics, so this file keeps
# `arlcheck ./examples/...` honest.
#
# Expected findings:
#   leaky:    sp-imbalance (frame never popped) + callee-saved ($s0)
#             + dead-store (the $s0 spill is never loaded back)
#   coldload: uninit-stack-load (reads a slot no path stores)
#   wildload: bad-base (integer used as an address) + unreachable code
	.data
glob:	.word 7

	.text
	.globl main
main:
	addi $sp, $sp, -16
	sw   $ra, 12($sp)
	jal  leaky
	jal  coldload
	jal  wildload
	lw   $ra, 12($sp)
	addi $sp, $sp, 16
	jr   $ra

# Allocates a frame it never releases and trashes $s0.
leaky:
	addi $sp, $sp, -8
	li   $s0, 5
	sw   $s0, 4($sp)
	jr   $ra

# Loads a stack slot that no store initialized.
coldload:
	addi $sp, $sp, -16
	lw   $t0, 4($sp)
	addi $sp, $sp, 16
	jr   $ra

# Dereferences a comparison result and jumps over dead code.
wildload:
	slt  $t0, $a0, $a1
	lw   $t1, 0($t0)
	j    wild_done
wild_dead:
	lw   $t2, glob
wild_done:
	jr   $ra
