// Staticcheck: drive the internal/static binary-level region analyzer
// over two hand-written RISA programs. good.s follows the calling
// convention and comes back diagnostic-free with provable region hints;
// buggy.s violates it six ways and every violation is flagged with a
// file:line diagnostic. The same analyses back the cmd/arlcheck linter:
//
//	go run ./cmd/arlcheck ./examples/staticcheck
//
// Run with: go run ./examples/staticcheck
package main

import (
	_ "embed"
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/prog"
	"repro/internal/static"
)

//go:embed testdata/good.s
var goodSrc string

//go:embed testdata/buggy.s
var buggySrc string

func main() {
	show("good.s", goodSrc)
	fmt.Println()
	show("buggy.s", buggySrc)
}

func show(name, src string) {
	p, err := asm.Assemble(name, src)
	if err != nil {
		log.Fatal(err)
	}
	a := static.Analyze(p)

	counts := map[prog.Hint]int{}
	mem := 0
	for i, in := range p.Text {
		if in.IsMem() {
			mem++
			counts[a.HintAt(i)]++
		}
	}
	fmt.Printf("%s: %d instructions, %d memory ops (hints: %d stack, %d nonstack, %d unknown)\n",
		name, len(p.Text), mem,
		counts[prog.HintStack], counts[prog.HintNonStack], counts[prog.HintUnknown])
	if len(a.Diags) == 0 {
		fmt.Println("  no diagnostics")
		return
	}
	for _, d := range a.Diags {
		fmt.Printf("  %v\n", d)
	}
}
