// Quickstart: compile a small MiniC program, run it, and watch the
// access region predictor classify its memory references — the paper's
// Figure 1 example brought to life.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/minicc"
	"repro/internal/vm"
)

// The program mirrors the paper's Figure 1: b[] lives on the heap, c[]
// in static data, *parm1 can point anywhere depending on the call site,
// and &a forces a local onto the stack.
const src = `
int c[64];
int result;

void foo(int *parm1) {
	int i;
	int a;
	int *b = malloc(64 * sizeof(int));
	for (i = 0; i < 64; i++) {
		b[i] = c[i] + *parm1;    // heap, data, and unknown accesses
	}
	a = b[63];
	result = result + a;         // data access
}

int main() {
	int local = 1;
	int j;
	for (j = 0; j < 10; j++) {
		foo(&local);   // from here *parm1 is a stack access
		foo(c);        // from here it is a data access
	}
	return result & 255;
}
`

func main() {
	p, err := minicc.Compile("figure1.c", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled figure1.c: %d instructions, %d bytes of data\n\n",
		len(p.Text), len(p.Data))

	m, err := vm.New(vm.Config{Program: p, Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's pipeline classifier: addressing-mode rules plus a
	// 32K-entry hybrid-context ARPT.
	table, err := core.NewARPT(core.DefaultPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	cls, err := core.NewClassifier(
		core.ClassifierConfig{Scheme: core.Scheme1BitHybrid}, core.WithTable(table))
	if err != nil {
		log.Fatal(err)
	}

	err = core.Trace(m, func(ev core.RefEvent) {
		cls.Classify(ev.Index, ev.PC, ev.Inst, ev.Ctx, ev.Actual)
	})
	if err != nil {
		log.Fatal(err)
	}

	st := cls.Stats
	fmt.Printf("program exited with %d\n\n", m.ExitCode())
	fmt.Printf("dynamic memory references:   %d\n", st.Total)
	fmt.Printf("  manifest in addressing:    %d (%.1f%%)\n",
		st.StaticCovered, st.StaticFraction())
	fmt.Printf("  resolved by the ARPT:      %d\n", st.TableLookups)
	fmt.Printf("classification accuracy:     %.2f%%\n", st.Accuracy())
	fmt.Printf("ARPT entries in use:         %d of %d (%d bytes)\n",
		table.Occupied(), table.Config().Entries, table.SizeBytes())
}
