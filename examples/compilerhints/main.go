// Compilerhints: show the paper's Figure 6 classify_mem algorithm at
// work. The MiniC compiler's points-to analysis tags every memory
// instruction stack / nonstack / unknown; this example compares those
// real static hints against the profile oracle the paper used, and
// measures how much each helps a tiny 1K-entry ARPT (the Figure 5
// effect).
//
// Run with: go run ./examples/compilerhints
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/minicc"
	"repro/internal/profile"
	"repro/internal/vm"
)

// A program full of pointer parameters: the compiler must answer
// "unknown" for them (the paper's *parm1 case), while globals and
// locals classify statically. sum() is called on data, heap, and stack
// arrays alternately, so its loads genuinely alternate regions.
const src = `
int table[128];
int acc;

int sum(int *v, int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) s += v[i];   // unknown to the compiler
	return s;
}

void fill(int *v, int n, int seed) {
	int i;
	for (i = 0; i < n; i++) v[i] = seed + i;  // unknown to the compiler
}

int main() {
	int stackbuf[128];
	int *heapbuf = malloc(128 * sizeof(int));
	int it;
	for (it = 0; it < 400; it++) {
		fill(table, 128, it);
		fill(stackbuf, 128, it * 3);
		fill(heapbuf, 128, it * 7);
		acc += sum(table, 128) + sum(stackbuf, 128) + sum(heapbuf, 128);
	}
	return acc & 255;
}
`

func main() {
	const name = "hints.c"
	p, err := minicc.Compile(name, src)
	if err != nil {
		log.Fatal(err)
	}

	// Static hints straight out of the compiler.
	asmText, err := minicc.CompileToAsm(name, src)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(asmText, "\n") {
		if i := strings.Index(line, ";@"); i >= 0 {
			counts[line[i+2:]]++
		}
	}
	fmt.Printf("%s: compiler (Figure 6) hints on memory instructions:\n", name)
	for _, k := range []string{"stack", "nonstack", "unknown"} {
		fmt.Printf("  %-9s %d\n", k, counts[k])
	}

	// The profile oracle (the paper's idealized compiler information).
	pr, err := profile.Run(p, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	oracle := pr.Oracle()

	// Evaluate a deliberately tiny ARPT with no hints, compiler hints,
	// and oracle hints.
	mk := func(hints core.HintSource) *core.Classifier {
		c, err := core.NewClassifier(
			core.ClassifierConfig{Scheme: core.Scheme1BitHybrid, Entries: 64},
			core.WithHints(hints))
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	none, compiler, oracleC := mk(nil), mk(p.HintAt), mk(oracle)

	m, err := vm.New(vm.Config{Program: p})
	if err != nil {
		log.Fatal(err)
	}
	err = core.Trace(m, func(ev core.RefEvent) {
		none.Classify(ev.Index, ev.PC, ev.Inst, ev.Ctx, ev.Actual)
		compiler.Classify(ev.Index, ev.PC, ev.Inst, ev.Ctx, ev.Actual)
		oracleC.Classify(ev.Index, ev.PC, ev.Inst, ev.Ctx, ev.Actual)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntiny 64-entry ARPT accuracy over %d references:\n", none.Stats.Total)
	fmt.Printf("  no hints:        %.3f%%\n", none.Stats.Accuracy())
	fmt.Printf("  compiler hints:  %.3f%%  (%d refs bypass the table)\n",
		compiler.Stats.Accuracy(), compiler.Stats.HintCovered)
	fmt.Printf("  oracle hints:    %.3f%%  (%d refs bypass the table)\n",
		oracleC.Stats.Accuracy(), oracleC.Stats.HintCovered)
	fmt.Println("\nHints relieve pressure on a small ARPT (the paper's Figure 5):")
	fmt.Println("tagged references never occupy entries, so fewer collide.")
}
