// Benchmarks that regenerate every table and figure of the paper's
// evaluation section. Each benchmark runs the corresponding experiment
// over all twelve workloads and prints the rendered rows once, so
//
//	go test -bench=. -benchmem
//
// reproduces the full result set (the same data cmd/arlreport emits).
// Reported ns/op is the cost of regenerating that experiment.
//
// The profiling and prediction benchmarks truncate each workload to
// benchMaxInsts instructions to keep iteration time sane; the timing
// benchmark (Figure 8) uses full runs because truncated traces measure
// program setup rather than the kernels. Override the truncation via
// -benchtime and the REPRO_BENCH_FULL=1 environment variable.
package repro

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/cpu"
	"repro/internal/experiments"
)

const benchMaxInsts = 1_000_000

func benchRunner(full bool) *experiments.Runner {
	r := experiments.NewRunner()
	if !full && os.Getenv("REPRO_BENCH_FULL") == "" {
		r.MaxInsts = benchMaxInsts
	}
	return r
}

var printOnce sync.Map

// printResult emits a rendered experiment table exactly once per
// benchmark name across all iterations.
func printResult(name, rendered string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", rendered)
	}
}

// BenchmarkTable1 regenerates Table 1 (E1): benchmark characteristics.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(false)
		rows, err := r.Table1()
		if err != nil {
			b.Fatal(err)
		}
		printResult("table1", experiments.RenderTable1(rows))
	}
}

// BenchmarkFigure2 regenerates Figure 2 (E2): static region classes.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(false)
		rows, err := r.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		printResult("figure2", experiments.RenderFigure2(rows))
	}
}

// BenchmarkTable2 regenerates Table 2 (E3): window occupancy.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(false)
		rows, err := r.Table2()
		if err != nil {
			b.Fatal(err)
		}
		printResult("table2", experiments.RenderTable2(rows))
	}
}

// BenchmarkFigure4 regenerates Figure 4 (E4): prediction-scheme
// accuracy (the predictor study also yields Table 3 and Figure 5; they
// have their own benchmarks for per-experiment timing).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(false)
		study, err := r.RunPredictorStudy()
		if err != nil {
			b.Fatal(err)
		}
		printResult("figure4", experiments.RenderFigure4(study.Figure4))
	}
}

// BenchmarkTable3 regenerates Table 3 (E5): ARPT occupancy per context.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(false)
		study, err := r.RunPredictorStudy()
		if err != nil {
			b.Fatal(err)
		}
		printResult("table3", experiments.RenderTable3(study.Table3))
	}
}

// BenchmarkFigure5 regenerates Figure 5 (E6): accuracy vs ARPT size
// with and without compiler information.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(false)
		study, err := r.RunPredictorStudy()
		if err != nil {
			b.Fatal(err)
		}
		printResult("figure5", experiments.RenderFigure5(study.Figure5))
	}
}

// BenchmarkLVCHitRate regenerates the §3.3 stack-cache claim (E8).
func BenchmarkLVCHitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(false)
		rows, err := r.LVCHitRate()
		if err != nil {
			b.Fatal(err)
		}
		printResult("lvc", experiments.RenderLVC(rows))
	}
}

// BenchmarkAblation2Bit regenerates the footnote-8 comparison (E9).
func BenchmarkAblation2Bit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(false)
		study, err := r.RunPredictorStudy()
		if err != nil {
			b.Fatal(err)
		}
		printResult("ablation2bit", experiments.RenderAblation(study.Ablation))
	}
}

// BenchmarkFigure8 regenerates Figure 8 (E7): the (N+M) configuration
// study on the Table 4 machine. Full workload runs; this is the
// expensive one.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(true)
		rows, err := r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		printResult("figure8", experiments.RenderFigure8(rows, cpu.Figure8Configs()))
	}
}

// runReport regenerates the full experiment set (the cmd/arlreport
// path: E1-E11) on one runner with the given worker-pool bound,
// exercising every memo: per workload the program compiles once, the
// profile and trace build once, and the penalty sweep rides on the
// Figure 8 simulation results.
func runReport(b *testing.B, parallel int) {
	r := benchRunner(false)
	r.Parallel = parallel
	if _, err := r.Table1(); err != nil {
		b.Fatal(err)
	}
	if _, err := r.Figure2(); err != nil {
		b.Fatal(err)
	}
	if _, err := r.Table2(); err != nil {
		b.Fatal(err)
	}
	if _, err := r.RunPredictorStudy(); err != nil {
		b.Fatal(err)
	}
	if _, err := r.LVCHitRate(); err != nil {
		b.Fatal(err)
	}
	if _, err := r.ContextSweep([]int{0, 8}, []int{0, 7, 24}); err != nil {
		b.Fatal(err)
	}
	if _, err := r.Figure8(); err != nil {
		b.Fatal(err)
	}
	if _, err := r.PenaltySweep([]int{1, 4, 16}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReportSerial is the full report on the serial path
// (Parallel=1): the baseline for the parallel-harness speedup recorded
// in results/parallel_bench.txt.
func BenchmarkReportSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runReport(b, 1)
	}
}

// BenchmarkReportParallel is the full report on the worker pool
// (Parallel=GOMAXPROCS). Output tables are byte-identical to the
// serial path; the wall-clock gap is the harness speedup.
func BenchmarkReportParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runReport(b, 0)
	}
}

// BenchmarkPenaltySweep regenerates the E11 ablation.
func BenchmarkPenaltySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(true)
		rows, err := r.PenaltySweep([]int{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
		printResult("penalty", experiments.RenderPenaltySweep(rows))
	}
}

// BenchmarkContextSweep regenerates the E10 ablation.
func BenchmarkContextSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(false)
		rows, err := r.ContextSweep([]int{0, 8}, []int{0, 7, 24})
		if err != nil {
			b.Fatal(err)
		}
		printResult("contextsweep", experiments.RenderContextSweep(rows))
	}
}
