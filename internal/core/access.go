package core

// AccessInfo describes one dynamic memory access to a cache-steering
// predicate: enough of the trace instruction to steer by region (the
// paper's stack/heap split), by access pattern (Bicameral-style
// regular/irregular separation), or by instruction identity (PC hash).
// It deliberately carries values, not pointers into the trace, so a
// predicate can never mutate the shared immutable trace.
type AccessInfo struct {
	// Addr is the effective address of the access.
	Addr uint32
	// Index is the static instruction index — the trace's PC surrogate
	// (traces do not retain raw PCs; the static index identifies the
	// instruction just as uniquely).
	Index int32
	// IsLoad distinguishes loads from stores.
	IsLoad bool
	// IsFP marks floating-point memory values (typically strided array
	// traffic in the paper's workloads).
	IsFP bool
	// Stack is the actual access region, known at address translation —
	// the signal the paper's LVC steering uses at cache-access time.
	Stack bool
	// PredStack is the dispatch-time ARPT steering prediction.
	PredStack bool
	// EarlyAddr marks addresses manifest in the addressing mode
	// ($sp/$fp/$gp/constant bases): statically predictable, hence
	// "regular" in the access-pattern sense.
	EarlyAddr bool
}
