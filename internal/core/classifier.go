package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/vm"
)

// HintSource supplies a compiler region hint for a static instruction
// index, or HintNone. Two implementations exist: prog.Program hints
// (the MiniC Figure 6 analysis) and the profile oracle the paper used
// (see profile.Oracle).
type HintSource func(index int) prog.Hint

// ClassifyStats is the accounting behind Figures 4 and 5.
type ClassifyStats struct {
	Total   uint64 // dynamic memory references seen
	Correct uint64 // ... classified into the right stack/non-stack bin

	StaticCovered uint64 // manifest in the addressing mode (rules 1-3)
	HintCovered   uint64 // resolved by a compiler hint
	HintCorrect   uint64 // ... and the hint matched the dynamic region
	TableLookups  uint64 // fell through to the ARPT (or rule-4 default)
	TableCorrect  uint64 // ... and were predicted correctly
}

// Accuracy reports Correct/Total as a percentage.
func (s ClassifyStats) Accuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Correct) / float64(s.Total)
}

// StaticFraction reports the share of dynamic references whose region
// is manifest in the addressing mode (Figure 4's dark lower bars).
func (s ClassifyStats) StaticFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.StaticCovered) / float64(s.Total)
}

// HintAccuracy reports how often the compiler hints that fired were
// right, as a percentage of the hint-covered references.
func (s ClassifyStats) HintAccuracy() float64 {
	if s.HintCovered == 0 {
		return 0
	}
	return 100 * float64(s.HintCorrect) / float64(s.HintCovered)
}

// TableAccuracy reports the ARPT's hit rate on the references that
// actually reached it, as a percentage of the table lookups.
func (s ClassifyStats) TableAccuracy() float64 {
	if s.TableLookups == 0 {
		return 0
	}
	return 100 * float64(s.TableCorrect) / float64(s.TableLookups)
}

// Publish copies the counters into r under the given labels; call once
// when a run finishes.
func (s ClassifyStats) Publish(r *obs.Registry, labels obs.Labels) {
	if r == nil {
		return
	}
	r.Counter("classify_refs_total", "dynamic memory references classified", labels).Add(s.Total)
	r.Counter("classify_correct_total", "references put in the right stack/non-stack bin", labels).Add(s.Correct)
	r.Counter("classify_static_covered_total", "references manifest in the addressing mode", labels).Add(s.StaticCovered)
	r.Counter("classify_hint_covered_total", "references resolved by a compiler hint", labels).Add(s.HintCovered)
	r.Counter("classify_hint_correct_total", "hint-resolved references the hint got right", labels).Add(s.HintCorrect)
	r.Counter("classify_table_lookups_total", "references that fell through to the ARPT", labels).Add(s.TableLookups)
	r.Counter("classify_table_correct_total", "ARPT lookups predicted correctly", labels).Add(s.TableCorrect)
}

// Classifier composes the three §4.2 dispatch-stage information
// sources in priority order: compiler hints (when present), the
// addressing-mode rules, then the ARPT (or the static default for
// SchemeStatic). One Classifier evaluates one scheme configuration.
type Classifier struct {
	Scheme Scheme
	Table  *ARPT      // nil for SchemeStatic
	Hints  HintSource // nil when hints are off
	Stats  ClassifyStats
}

// ClassifierConfig parameterizes a Classifier.
type ClassifierConfig struct {
	// Scheme selects the §3.4.1 prediction scheme.
	Scheme Scheme
	// Entries sizes the ARPT (0 = unlimited, the Figure 4 / Table 3
	// setup; powers of two give the Figure 5 size sweep). Ignored for
	// SchemeStatic, which has no table.
	Entries int
}

// Validate checks structural sanity.
func (c ClassifierConfig) Validate() error {
	if c.Scheme != SchemeStatic && SchemeConfig(c.Scheme).Bits == 0 {
		return fmt.Errorf("core: unknown scheme %v", c.Scheme)
	}
	if c.Entries < 0 || (c.Entries != 0 && c.Entries&(c.Entries-1) != 0) {
		return fmt.Errorf("core: classifier entries must be 0 or a power of two, got %d", c.Entries)
	}
	return nil
}

// ClassifierOption configures a Classifier beyond its scheme.
type ClassifierOption func(*Classifier)

// WithHints installs a compiler-hint source consulted before the
// addressing-mode rules.
func WithHints(hints HintSource) ClassifierOption {
	return func(c *Classifier) { c.Hints = hints }
}

// WithTable installs a pre-built ARPT in place of the one the scheme
// configuration would build — the pipeline model uses this to run the
// Table 4 ARPT (context bits and all) under the hybrid scheme.
func WithTable(t *ARPT) ClassifierOption {
	return func(c *Classifier) { c.Table = t }
}

// NewClassifier builds a classifier from cfg; the configuration must
// validate. Unless WithTable overrides it, non-static schemes get the
// ARPT that SchemeConfig prescribes, sized by cfg.Entries.
func NewClassifier(cfg ClassifierConfig, opts ...ClassifierOption) (*Classifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Classifier{Scheme: cfg.Scheme}
	for _, opt := range opts {
		opt(c)
	}
	if c.Table == nil && cfg.Scheme != SchemeStatic {
		tcfg := SchemeConfig(cfg.Scheme)
		tcfg.Entries = cfg.Entries
		t, err := NewARPT(tcfg)
		if err != nil {
			return nil, err
		}
		c.Table = t
	}
	return c, nil
}

// Classify predicts the access region of one dynamic memory reference
// and trains on the actual outcome. It returns the prediction made.
func (c *Classifier) Classify(index int, pc uint32, in isa.Inst, ctx Context, actual Prediction) Prediction {
	c.Stats.Total++

	if c.Hints != nil {
		if pred, usable := HintPrediction(c.Hints(index)); usable {
			c.Stats.HintCovered++
			if pred == actual {
				c.Stats.Correct++
				c.Stats.HintCorrect++
			}
			return pred
		}
	}

	pred, covered := StaticPredict(in)
	if covered {
		c.Stats.StaticCovered++
		if pred == actual {
			c.Stats.Correct++
		}
		return pred
	}

	c.Stats.TableLookups++
	if c.Table != nil {
		pred = c.Table.Predict(pc, ctx)
		c.Table.Update(pc, ctx, actual)
	}
	// SchemeStatic keeps rule 4's default (non-stack) prediction.
	if pred == actual {
		c.Stats.Correct++
		c.Stats.TableCorrect++
	}
	return pred
}

// RefEvent is one dynamic memory reference with the fetch-stage context
// the predictor would have seen.
type RefEvent struct {
	Index  int
	PC     uint32
	Addr   uint32 // effective address
	Inst   isa.Inst
	Ctx    Context
	Actual Prediction
}

// Trace runs machine m to completion, maintaining the global branch
// history and caller identification, and invokes handle for every
// dynamic memory reference. Several classifiers can share one trace.
func Trace(m *vm.Machine, handle func(RefEvent)) error {
	var ctx Context
	return m.Run(func(ev vm.Event) {
		if ev.Inst.IsMem() {
			ctx.CID = m.Reg(isa.RA)
			handle(RefEvent{
				Index:  ev.Index,
				PC:     ev.PC,
				Addr:   ev.MemAddr,
				Inst:   ev.Inst,
				Ctx:    ctx,
				Actual: ActualOf(ev.Region),
			})
		}
		if ev.Inst.IsBranch() {
			ctx.UpdateGBH(ev.Taken)
		}
	})
}
