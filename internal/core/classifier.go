package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/vm"
)

// HintSource supplies a compiler region hint for a static instruction
// index, or HintNone. Two implementations exist: prog.Program hints
// (the MiniC Figure 6 analysis) and the profile oracle the paper used
// (see profile.Oracle).
type HintSource func(index int) prog.Hint

// ClassifyStats is the accounting behind Figures 4 and 5.
type ClassifyStats struct {
	Total   uint64 // dynamic memory references seen
	Correct uint64 // ... classified into the right stack/non-stack bin

	StaticCovered uint64 // manifest in the addressing mode (rules 1-3)
	HintCovered   uint64 // resolved by a compiler hint
	HintCorrect   uint64 // ... and the hint matched the dynamic region
	TableLookups  uint64 // fell through to the ARPT (or rule-4 default)
	TableCorrect  uint64 // ... and were predicted correctly
}

// Accuracy reports Correct/Total as a percentage.
func (s ClassifyStats) Accuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Correct) / float64(s.Total)
}

// StaticFraction reports the share of dynamic references whose region
// is manifest in the addressing mode (Figure 4's dark lower bars).
func (s ClassifyStats) StaticFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.StaticCovered) / float64(s.Total)
}

// HintAccuracy reports how often the compiler hints that fired were
// right, as a percentage of the hint-covered references.
func (s ClassifyStats) HintAccuracy() float64 {
	if s.HintCovered == 0 {
		return 0
	}
	return 100 * float64(s.HintCorrect) / float64(s.HintCovered)
}

// TableAccuracy reports the ARPT's hit rate on the references that
// actually reached it, as a percentage of the table lookups.
func (s ClassifyStats) TableAccuracy() float64 {
	if s.TableLookups == 0 {
		return 0
	}
	return 100 * float64(s.TableCorrect) / float64(s.TableLookups)
}

// Classifier composes the three §4.2 dispatch-stage information
// sources in priority order: compiler hints (when present), the
// addressing-mode rules, then the ARPT (or the static default for
// SchemeStatic). One Classifier evaluates one scheme configuration.
type Classifier struct {
	Scheme Scheme
	Table  *ARPT      // nil for SchemeStatic
	Hints  HintSource // nil when hints are off
	Stats  ClassifyStats
}

// NewClassifier builds a classifier for scheme with an unlimited-table
// configuration (the Figure 4 / Table 3 setup). Use NewClassifierSized
// for the Figure 5 size sweep.
func NewClassifier(scheme Scheme, hints HintSource) (*Classifier, error) {
	return NewClassifierSized(scheme, 0, hints)
}

// NewClassifierSized builds a classifier whose ARPT has the given
// number of entries (0 = unlimited).
func NewClassifierSized(scheme Scheme, entries int, hints HintSource) (*Classifier, error) {
	c := &Classifier{Scheme: scheme, Hints: hints}
	if scheme == SchemeStatic {
		return c, nil
	}
	cfg := SchemeConfig(scheme)
	if cfg.Bits == 0 {
		return nil, fmt.Errorf("core: unknown scheme %v", scheme)
	}
	cfg.Entries = entries
	t, err := NewARPT(cfg)
	if err != nil {
		return nil, err
	}
	c.Table = t
	return c, nil
}

// Classify predicts the access region of one dynamic memory reference
// and trains on the actual outcome. It returns the prediction made.
func (c *Classifier) Classify(index int, pc uint32, in isa.Inst, ctx Context, actual Prediction) Prediction {
	c.Stats.Total++

	if c.Hints != nil {
		if pred, usable := HintPrediction(c.Hints(index)); usable {
			c.Stats.HintCovered++
			if pred == actual {
				c.Stats.Correct++
				c.Stats.HintCorrect++
			}
			return pred
		}
	}

	pred, covered := StaticPredict(in)
	if covered {
		c.Stats.StaticCovered++
		if pred == actual {
			c.Stats.Correct++
		}
		return pred
	}

	c.Stats.TableLookups++
	if c.Table != nil {
		pred = c.Table.Predict(pc, ctx)
		c.Table.Update(pc, ctx, actual)
	}
	// SchemeStatic keeps rule 4's default (non-stack) prediction.
	if pred == actual {
		c.Stats.Correct++
		c.Stats.TableCorrect++
	}
	return pred
}

// RefEvent is one dynamic memory reference with the fetch-stage context
// the predictor would have seen.
type RefEvent struct {
	Index  int
	PC     uint32
	Addr   uint32 // effective address
	Inst   isa.Inst
	Ctx    Context
	Actual Prediction
}

// Trace runs machine m to completion, maintaining the global branch
// history and caller identification, and invokes handle for every
// dynamic memory reference. Several classifiers can share one trace.
func Trace(m *vm.Machine, handle func(RefEvent)) error {
	var ctx Context
	return m.Run(func(ev vm.Event) {
		if ev.Inst.IsMem() {
			ctx.CID = m.Reg(isa.RA)
			handle(RefEvent{
				Index:  ev.Index,
				PC:     ev.PC,
				Addr:   ev.MemAddr,
				Inst:   ev.Inst,
				Ctx:    ctx,
				Actual: ActualOf(ev.Region),
			})
		}
		if ev.Inst.IsBranch() {
			ctx.UpdateGBH(ev.Taken)
		}
	})
}
