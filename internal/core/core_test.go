package core

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/minicc"
	"repro/internal/prog"
	"repro/internal/region"
	"repro/internal/vm"
)

func memInst(base isa.Register) isa.Inst {
	return isa.Inst{Op: isa.OpLW, Rd: isa.T0, Rs: base, Imm: 0}
}

func TestStaticPredictRules(t *testing.T) {
	cases := []struct {
		base    isa.Register
		pred    Prediction
		covered bool
	}{
		{isa.Zero, PredictNonStack, true}, // rule 1: constant address
		{isa.SP, PredictStack, true},      // rule 2
		{isa.FP, PredictStack, true},      // rule 2
		{isa.GP, PredictNonStack, true},   // rule 3
		{isa.T3, PredictNonStack, false},  // rule 4: default, uncovered
		{isa.S1, PredictNonStack, false},
	}
	for _, c := range cases {
		pred, covered := StaticPredict(memInst(c.base))
		if pred != c.pred || covered != c.covered {
			t.Errorf("StaticPredict(base=%v) = (%v,%v), want (%v,%v)",
				c.base, pred, covered, c.pred, c.covered)
		}
	}
	// Non-memory instructions are never covered.
	if _, covered := StaticPredict(isa.Inst{Op: isa.OpADDI}); covered {
		t.Error("non-memory instruction reported covered")
	}
}

func TestARPT1BitLearnsImmediately(t *testing.T) {
	tab, err := NewARPT(Config{Bits: 1})
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x400100)
	var ctx Context
	if tab.Predict(pc, ctx) != PredictNonStack {
		t.Error("cold entry should predict non-stack")
	}
	tab.Update(pc, ctx, PredictStack)
	if tab.Predict(pc, ctx) != PredictStack {
		t.Error("1-bit entry did not learn stack")
	}
	tab.Update(pc, ctx, PredictNonStack)
	if tab.Predict(pc, ctx) != PredictNonStack {
		t.Error("1-bit entry did not flip back")
	}
}

func TestARPT2BitHysteresis(t *testing.T) {
	tab, err := NewARPT(Config{Bits: 2})
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x400200)
	var ctx Context
	// Train to strongly-stack.
	tab.Update(pc, ctx, PredictStack)
	tab.Update(pc, ctx, PredictStack)
	tab.Update(pc, ctx, PredictStack)
	if tab.Predict(pc, ctx) != PredictStack {
		t.Fatal("2-bit entry not trained")
	}
	// One contrary outcome must not flip it (hysteresis)...
	tab.Update(pc, ctx, PredictNonStack)
	if tab.Predict(pc, ctx) != PredictStack {
		t.Error("2-bit entry flipped after a single contrary outcome")
	}
	// ...but two must.
	tab.Update(pc, ctx, PredictNonStack)
	if tab.Predict(pc, ctx) != PredictNonStack {
		t.Error("2-bit entry did not flip after two contrary outcomes")
	}
}

func TestARPTContextSeparatesCallers(t *testing.T) {
	// With CID context, the same PC indexed from two call sites uses
	// two entries, so an instruction alternating regions per caller is
	// perfectly predictable — the paper's motivation for the CID.
	tab, err := NewARPT(Config{Bits: 1, CIDBits: 24})
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x400300)
	callerA := Context{CID: 0x400800}
	callerB := Context{CID: 0x400900}
	tab.Update(pc, callerA, PredictStack)
	tab.Update(pc, callerB, PredictNonStack)
	if tab.Predict(pc, callerA) != PredictStack {
		t.Error("caller A context lost")
	}
	if tab.Predict(pc, callerB) != PredictNonStack {
		t.Error("caller B context lost")
	}
	if tab.Occupied() != 2 {
		t.Errorf("occupied = %d, want 2", tab.Occupied())
	}
	// Without context the two callers share an entry.
	plain, _ := NewARPT(Config{Bits: 1})
	plain.Update(pc, callerA, PredictStack)
	plain.Update(pc, callerB, PredictNonStack)
	if plain.Occupied() != 1 {
		t.Errorf("no-context occupied = %d, want 1", plain.Occupied())
	}
}

func TestARPTSizedIndexMasking(t *testing.T) {
	tab, err := NewARPT(Config{Bits: 1, Entries: 8})
	if err != nil {
		t.Fatal(err)
	}
	var ctx Context
	// PCs 8 entries apart alias in an 8-entry table (PC>>2 mod 8).
	a, b := uint32(0x400000), uint32(0x400000+8*4)
	if tab.Index(a, ctx) != tab.Index(b, ctx) {
		t.Error("aliasing PCs should share an entry")
	}
	tab.Update(a, ctx, PredictStack)
	if tab.Predict(b, ctx) != PredictStack {
		t.Error("aliased entry not shared")
	}
	if tab.SizeBytes() != 1 {
		t.Errorf("SizeBytes = %d, want 1", tab.SizeBytes())
	}
}

func TestPaperTableCost(t *testing.T) {
	// "The necessary hardware resources for implementing a 32K-entry
	// ARPT is modest — only 4 KB of space."
	tab, err := NewARPT(DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tab.SizeBytes() != 4096 {
		t.Errorf("32K 1-bit ARPT = %d bytes, want 4096", tab.SizeBytes())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Bits: 0},
		{Bits: 3},
		{Bits: 1, Entries: 100}, // not a power of two
		{Bits: 1, Entries: -4},
		{Bits: 1, GBHBits: 40},
	}
	for _, cfg := range bad {
		if _, err := NewARPT(cfg); err == nil {
			t.Errorf("NewARPT(%+v) accepted an invalid config", cfg)
		}
	}
}

func TestGBHShifting(t *testing.T) {
	var ctx Context
	ctx.UpdateGBH(true)
	ctx.UpdateGBH(false)
	ctx.UpdateGBH(true)
	if ctx.GBH != 0b101 {
		t.Errorf("GBH = %b, want 101", ctx.GBH)
	}
}

func TestHintPrediction(t *testing.T) {
	if p, ok := HintPrediction(prog.HintStack); !ok || p != PredictStack {
		t.Error("HintStack not usable/stack")
	}
	if p, ok := HintPrediction(prog.HintNonStack); !ok || p != PredictNonStack {
		t.Error("HintNonStack not usable/nonstack")
	}
	if _, ok := HintPrediction(prog.HintUnknown); ok {
		t.Error("HintUnknown should not be usable")
	}
	if _, ok := HintPrediction(prog.HintNone); ok {
		t.Error("HintNone should not be usable")
	}
}

func TestActualOf(t *testing.T) {
	if ActualOf(region.Stack) != PredictStack {
		t.Error("stack region")
	}
	if ActualOf(region.Data) != PredictNonStack || ActualOf(region.Heap) != PredictNonStack {
		t.Error("non-stack regions")
	}
}

// Property: the unlimited-table index is deterministic and the sized
// index is always within range.
func TestIndexProperties(t *testing.T) {
	tab, _ := NewARPT(Config{Bits: 1, Entries: 1 << 12, GBHBits: 8, CIDBits: 7})
	f := func(pc, gbh, cid uint32) bool {
		ctx := Context{GBH: gbh, CID: cid}
		i1 := tab.Index(pc, ctx)
		i2 := tab.Index(pc, ctx)
		return i1 == i2 && int(i1) < 1<<12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a 1-bit ARPT trained with k outcomes always predicts the
// most recent outcome for the same (pc, ctx).
func TestOneBitLastOutcomeProperty(t *testing.T) {
	f := func(pc uint32, outcomes []bool) bool {
		tab, _ := NewARPT(Config{Bits: 1})
		var ctx Context
		for _, o := range outcomes {
			tab.Update(pc, ctx, Prediction(o))
		}
		if len(outcomes) == 0 {
			return tab.Predict(pc, ctx) == PredictNonStack
		}
		return tab.Predict(pc, ctx) == Prediction(outcomes[len(outcomes)-1])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// End-to-end: compile the paper's Figure 1 example and check that a
// hybrid classifier reaches high accuracy while a static-only one does
// not mispredict covered references.
func TestClassifierEndToEnd(t *testing.T) {
	src := `
int c[64];
int sink;
void foo(int *parm1) {
	int i;
	int a;
	int *b = malloc(64 * sizeof(int));
	for (i = 0; i < 64; i++) {
		b[i] = c[i] + *parm1;
	}
	a = b[10];
	sink = a;
}
int main() {
	int local = 3;
	int j;
	for (j = 0; j < 8; j++) {
		foo(&local);   // *parm1 is a stack access from this site
		foo(c);        // ... and a data access from this one
	}
	return sink;
}`
	p, err := minicc.Compile("fig1.c", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(vm.Config{Program: p})
	if err != nil {
		t.Fatal(err)
	}

	static, _ := NewClassifier(ClassifierConfig{Scheme: SchemeStatic})
	oneBit, _ := NewClassifier(ClassifierConfig{Scheme: Scheme1Bit})
	hybrid, _ := NewClassifier(ClassifierConfig{Scheme: Scheme1BitHybrid})
	all := []*Classifier{static, oneBit, hybrid}

	err = Trace(m, func(ev RefEvent) {
		for _, c := range all {
			c.Classify(ev.Index, ev.PC, ev.Inst, ev.Ctx, ev.Actual)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	if static.Stats.Total == 0 {
		t.Fatal("no memory references observed")
	}
	// This kernel is array-heavy (few frame accesses), so static
	// coverage is modest; it must still be present (prologue saves,
	// $gp-based global accesses).
	if static.Stats.StaticCovered == 0 {
		t.Error("no reference was covered by the addressing-mode rules")
	}
	if a := oneBit.Stats.Accuracy(); a < 90 {
		t.Errorf("1BIT accuracy %.2f%%, want >= 90%%", a)
	}
	if a := hybrid.Stats.Accuracy(); a < oneBit.Stats.Accuracy()-1 {
		t.Errorf("hybrid accuracy %.2f%% far below 1BIT %.2f%%", a, oneBit.Stats.Accuracy())
	}
	// The hybrid context should let the predictor separate the two
	// call sites of foo for *parm1.
	if hybrid.Table.Occupied() < oneBit.Table.Occupied() {
		t.Errorf("hybrid occupied %d < plain %d", hybrid.Table.Occupied(), oneBit.Table.Occupied())
	}
}

func TestClassifierWithCompilerHints(t *testing.T) {
	src := `
int g[32];
int main() {
	int a[32];
	int i;
	int s = 0;
	for (i = 0; i < 32; i++) { g[i] = i; a[i] = i; }
	for (i = 0; i < 32; i++) { s += g[i] + a[i]; }
	return s;
}`
	p, err := minicc.Compile("hints.c", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(vm.Config{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	hinted, _ := NewClassifier(ClassifierConfig{Scheme: Scheme1Bit}, WithHints(p.HintAt))
	if err := core_trace(m, hinted); err != nil {
		t.Fatal(err)
	}
	if hinted.Stats.Accuracy() < 99.9 {
		t.Errorf("hinted accuracy = %.3f%%, want ~100%%", hinted.Stats.Accuracy())
	}
	if hinted.Stats.HintCovered == 0 {
		t.Error("no references were covered by hints")
	}
}

func core_trace(m *vm.Machine, c *Classifier) error {
	return Trace(m, func(ev RefEvent) {
		c.Classify(ev.Index, ev.PC, ev.Inst, ev.Ctx, ev.Actual)
	})
}
