// Package core implements the paper's contribution: run-time access
// region prediction. It provides
//
//   - the static addressing-mode heuristics (§3.4.1's Static Prediction
//     rules 1-4): constant-addressed and $gp-based references are
//     non-stack, $sp/$fp-based references are stack, anything else is
//     predicted non-stack but not considered "covered";
//   - the Access Region Prediction Table (ARPT): an untagged table of
//     1-bit (or, for the paper's footnote-8 ablation, 2-bit) entries
//     indexed by PC bits XOR'ed with an optional run-time context built
//     from global branch history (GBH) and the caller identification
//     (CID, the link register value);
//   - a Classifier that composes compiler hints, the static rules, and
//     an ARPT exactly the way the paper's dispatch stage does, and keeps
//     the accounting behind Figures 4-5 and Table 3.
//
// The stack/non-stack split is binary, so predictions are reported as
// "is this reference a stack access?".
package core

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/region"
)

// Prediction is a binary stack/non-stack prediction.
type Prediction bool

// The two prediction outcomes.
const (
	PredictNonStack Prediction = false
	PredictStack    Prediction = true
)

func (p Prediction) String() string {
	if p == PredictStack {
		return "stack"
	}
	return "nonstack"
}

// StaticPredict applies the paper's addressing-mode rules to a memory
// instruction. covered reports whether the addressing mode *manifests*
// the region (rules 1-3); when covered is false the returned prediction
// is rule 4's default (non-stack) and the instruction should consult
// the ARPT.
func StaticPredict(in isa.Inst) (pred Prediction, covered bool) {
	base, ok := in.BaseReg()
	if !ok {
		return PredictNonStack, false
	}
	switch base {
	case isa.Zero: // constant addressing: static data
		return PredictNonStack, true
	case isa.SP, isa.FP:
		return PredictStack, true
	case isa.GP:
		return PredictNonStack, true
	default:
		return PredictNonStack, false
	}
}

// Context carries the run-time context available at the fetch stage.
type Context struct {
	GBH uint32 // global branch history, most recent outcome in bit 0
	CID uint32 // caller identification: the link register ($ra) value
}

// UpdateGBH shifts a conditional-branch outcome into the history.
func (c *Context) UpdateGBH(taken bool) {
	c.GBH <<= 1
	if taken {
		c.GBH |= 1
	}
}

// Scheme selects a prediction scheme from §3.4.1.
type Scheme int

// The prediction schemes evaluated in Figure 4 (STATIC, 1BIT,
// 1BIT-GBH, 1BIT-CID, 1BIT-HYBRID) plus the 2-bit ablation the paper
// mentions in footnote 8.
const (
	SchemeStatic Scheme = iota
	Scheme1Bit
	Scheme1BitGBH
	Scheme1BitCID
	Scheme1BitHybrid
	Scheme2Bit
	Scheme2BitHybrid
)

var schemeNames = map[Scheme]string{
	SchemeStatic:     "STATIC",
	Scheme1Bit:       "1BIT",
	Scheme1BitGBH:    "1BIT-GBH",
	Scheme1BitCID:    "1BIT-CID",
	Scheme1BitHybrid: "1BIT-HYBRID",
	Scheme2Bit:       "2BIT",
	Scheme2BitHybrid: "2BIT-HYBRID",
}

func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// AllSchemes lists the Figure 4 schemes in presentation order.
var AllSchemes = []Scheme{
	SchemeStatic, Scheme1Bit, Scheme1BitGBH, Scheme1BitCID, Scheme1BitHybrid,
}

// Config parameterizes an ARPT.
type Config struct {
	// Entries is the table size (power of two). 0 means unlimited: the
	// table becomes an exact map, the configuration used for Figure 4
	// and Table 3.
	Entries int
	// Bits is the counter width per entry: 1 (paper default) or 2
	// (hysteresis ablation).
	Bits int
	// GBHBits and CIDBits select how many low-order bits of each
	// context source are folded into the index. The paper's hybrid uses
	// 8 GBH bits concatenated with 24 CID bits for the unlimited study
	// and 8 GBH + 7 CID bits for the 32K-entry pipeline configuration.
	GBHBits int
	CIDBits int
}

// DefaultPipelineConfig is the Table 4 machine's ARPT: 32K 1-bit
// entries, 8 bits of GBH and 7 bits of CID context.
func DefaultPipelineConfig() Config {
	return Config{Entries: 32 * 1024, Bits: 1, GBHBits: 8, CIDBits: 7}
}

// SchemeConfig builds the unlimited-table configuration used for the
// Figure 4 / Table 3 studies of a given scheme. SchemeStatic has no
// table and returns the zero Config.
func SchemeConfig(s Scheme) Config {
	switch s {
	case Scheme1Bit:
		return Config{Bits: 1}
	case Scheme1BitGBH:
		return Config{Bits: 1, GBHBits: 8}
	case Scheme1BitCID:
		return Config{Bits: 1, CIDBits: 24}
	case Scheme1BitHybrid:
		return Config{Bits: 1, GBHBits: 8, CIDBits: 24}
	case Scheme2Bit:
		return Config{Bits: 2}
	case Scheme2BitHybrid:
		return Config{Bits: 2, GBHBits: 8, CIDBits: 24}
	}
	return Config{}
}

func (c Config) Validate() error {
	if c.Bits != 1 && c.Bits != 2 {
		return fmt.Errorf("core: counter width must be 1 or 2 bits, got %d", c.Bits)
	}
	if c.Entries < 0 || (c.Entries != 0 && c.Entries&(c.Entries-1) != 0) {
		return fmt.Errorf("core: table entries must be 0 or a power of two, got %d", c.Entries)
	}
	if c.GBHBits < 0 || c.GBHBits > 32 || c.CIDBits < 0 || c.CIDBits > 32 {
		return fmt.Errorf("core: context bit widths out of range")
	}
	return nil
}

// ARPT is the access region prediction table. It is untagged and has no
// valid bits: a never-trained entry predicts non-stack (counter zero),
// which doubles as the cold-start answer the static rule 4 would give.
type ARPT struct {
	cfg     Config
	table   []uint8          // fixed-size storage when Entries > 0
	spill   map[uint32]uint8 // exact storage when unlimited
	touched map[uint32]bool  // occupied-entry accounting (Table 3)
}

// NewARPT builds a table from cfg; the configuration must validate.
func NewARPT(cfg Config) (*ARPT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &ARPT{cfg: cfg, touched: make(map[uint32]bool)}
	if cfg.Entries > 0 {
		t.table = make([]uint8, cfg.Entries)
	} else {
		t.spill = make(map[uint32]uint8)
	}
	return t, nil
}

// Config reports the table's configuration.
func (t *ARPT) Config() Config { return t.cfg }

func mask(bits int) uint32 {
	if bits >= 32 {
		return ^uint32(0)
	}
	return (1 << bits) - 1
}

// Index computes the table index for a memory instruction at pc under
// ctx: the PC above its two always-zero low bits, XOR'ed with the
// concatenation of the low GBHBits of the history and the low CIDBits
// of the link register (also above its two zero bits).
func (t *ARPT) Index(pc uint32, ctx Context) uint32 {
	idx := pc >> 2
	ctxBits := ctx.GBH & mask(t.cfg.GBHBits)
	ctxBits |= (ctx.CID >> 2 & mask(t.cfg.CIDBits)) << t.cfg.GBHBits
	idx ^= ctxBits
	if t.cfg.Entries > 0 {
		idx &= uint32(t.cfg.Entries - 1)
	}
	return idx
}

func (t *ARPT) read(idx uint32) uint8 {
	if t.table != nil {
		return t.table[idx]
	}
	return t.spill[idx]
}

func (t *ARPT) write(idx uint32, v uint8) {
	if t.table != nil {
		t.table[idx] = v
		return
	}
	t.spill[idx] = v
}

// Predict looks up the prediction for the instruction at pc.
func (t *ARPT) Predict(pc uint32, ctx Context) Prediction {
	v := t.read(t.Index(pc, ctx))
	if t.cfg.Bits == 1 {
		return Prediction(v != 0)
	}
	return Prediction(v >= 2)
}

// Update trains the entry with the actual outcome: direct overwrite for
// 1-bit entries, a saturating counter for 2-bit entries.
func (t *ARPT) Update(pc uint32, ctx Context, actual Prediction) {
	idx := t.Index(pc, ctx)
	t.touched[idx] = true
	if t.cfg.Bits == 1 {
		if actual == PredictStack {
			t.write(idx, 1)
		} else {
			t.write(idx, 0)
		}
		return
	}
	v := t.read(idx)
	if actual == PredictStack {
		if v < 3 {
			v++
		}
	} else if v > 0 {
		v--
	}
	t.write(idx, v)
}

// Occupied reports how many distinct entries have been trained — the
// Table 3 metric.
func (t *ARPT) Occupied() int { return len(t.touched) }

// Flip inverts the prediction-deciding bit of one table entry — the
// soft-error model of the fault-injection engine. n selects the entry:
// modulo the table size for sized tables; for the unlimited (map)
// configuration it indexes the trained entries in ascending index
// order, since an entry that was never written has no physical storage
// to corrupt. It reports whether a stored bit actually flipped, which
// is false only for an unlimited table with no trained entries.
func (t *ARPT) Flip(n uint32) bool {
	// The decision bit: bit 0 for 1-bit entries, the >=2 threshold bit
	// for 2-bit saturating counters.
	bit := uint8(1)
	if t.cfg.Bits == 2 {
		bit = 2
	}
	if t.table != nil {
		idx := n % uint32(len(t.table))
		t.table[idx] ^= bit
		return true
	}
	if len(t.spill) == 0 {
		return false
	}
	keys := make([]uint32, 0, len(t.spill))
	for k := range t.spill {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	idx := keys[n%uint32(len(keys))]
	t.spill[idx] ^= bit
	return true
}

// SizeBytes reports the hardware cost of the table in bytes (0 for the
// unlimited study configuration).
func (t *ARPT) SizeBytes() int {
	if t.cfg.Entries == 0 {
		return 0
	}
	return t.cfg.Entries * t.cfg.Bits / 8
}

// ActualOf converts a runtime region into the binary training signal.
func ActualOf(r region.Region) Prediction {
	return Prediction(r.IsStack())
}

// HintPrediction converts a compiler hint to a usable prediction;
// usable is false for HintNone/HintUnknown.
func HintPrediction(h prog.Hint) (pred Prediction, usable bool) {
	switch h {
	case prog.HintStack:
		return PredictStack, true
	case prog.HintNonStack:
		return PredictNonStack, true
	}
	return PredictNonStack, false
}
