package asm

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzAssemble checks the assembler's reader never panics: arbitrary
// source either assembles or returns an error.
func FuzzAssemble(f *testing.F) {
	f.Add("main:\n\tli $v0, 1\n\tjr $ra\n")
	f.Add(".data\nw: .word 1, 2, 3\n.text\nmain:\n\tla $t0, w\n\tlw $v0, 0($t0)\n\tjr $ra\n")
	f.Add(".data\ns: .asciiz \"hi\\n\"\n.space 16\n.align 4\n")
	f.Add("main:\n\tbeq $t0, $t1, main\n\t#arl.region stack\n\tsw $t0, -4($sp)\n")
	f.Add("li $t0 1")               // missing comma
	f.Add("main: jr")               // truncated operands
	f.Add(".word 0x")               // bad literal
	f.Add("\x00\xff\xfe")           // binary garbage
	f.Add("lab\u00e9l:\n\tnop\n")   // non-ASCII label
	f.Add("main:\n\tlw $t0, ($sp)") // unusual addressing form
	for _, name := range []string{"buggy.s", "good.s"} {
		if b, err := os.ReadFile(filepath.Join("..", "..", "examples", "staticcheck", "testdata", name)); err == nil {
			f.Add(string(b))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz.s", src)
		if err == nil && p == nil {
			t.Fatal("nil program with nil error")
		}
	})
}
