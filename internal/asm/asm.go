// Package asm implements a two-pass assembler for RISA assembly.
//
// Syntax summary:
//
//	.text / .data                 section switch
//	label:                        define a label in the current section
//	.word v, v, ...               emit 32-bit words (data section)
//	.float f, f, ...              emit float32 values
//	.space n                      reserve n zero bytes
//	.asciiz "s"                   NUL-terminated string
//	.align n                      align to 2^n bytes
//	.globl name                   accepted and ignored
//	lw $t0, 8($sp)                base+displacement memory operand
//	lw $t0, sym                   pseudo: la $at, sym; lw $t0, 0($at)
//	beq $a0, $t1, label           branches take label targets
//	jal func                      jumps take label targets
//
// Pseudo-instructions: li, la, move, b, not, neg, bge, bgt, ble, blt,
// bgeu?, seq-like forms are intentionally omitted; the compiler emits
// only what is listed here.
//
// A trailing ";@hint" comment on a memory instruction attaches a MiniC
// compiler region hint (stack / nonstack / unknown) that rides along in
// the program image for the paper's §3.5.2 experiment.
package asm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Error is an assembly diagnostic with source position.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

type section int

const (
	secText section = iota
	secData
)

// stmt is one parsed source statement (after label stripping).
type stmt struct {
	line   int
	src    string   // statement text (comments and labels stripped)
	op     string   // lower-case mnemonic or directive (with leading '.')
	args   []string // comma-separated operand fields, trimmed
	hint   prog.Hint
	strArg string // for .asciiz
}

type asmState struct {
	file   string
	data   []byte
	text   []isa.Inst
	pos    []prog.SourcePos
	hints  []prog.Hint
	labels map[string]uint32
}

// Assemble assembles one source unit into a linked program. name is used
// in diagnostics and becomes the program name. The entry point is the
// label "main" (or "_start" when present).
func Assemble(name, source string) (*prog.Program, error) {
	a := &asmState{file: name, labels: make(map[string]uint32)}

	stmts, dataStmts, err := a.parse(source)
	if err != nil {
		return nil, err
	}
	// Pass 1 sized everything and filled a.labels (done inside parse).
	// Pass 2: emit data then text.
	for _, s := range dataStmts {
		if err := a.emitData(s); err != nil {
			return nil, err
		}
	}
	for _, s := range stmts {
		if err := a.emitText(s); err != nil {
			return nil, err
		}
	}

	entry, ok := a.labels["_start"]
	if !ok {
		entry, ok = a.labels["main"]
	}
	if !ok {
		return nil, &Error{File: name, Line: 0, Msg: "no main or _start label"}
	}

	p := &prog.Program{
		Name:  name,
		Text:  a.text,
		Data:  a.data,
		Entry: entry,
		Pos:   a.pos,
		Hints: a.hints,
	}
	p.Words = make([]uint32, len(a.text))
	for i, in := range a.text {
		w, err := isa.Encode(in)
		if err != nil {
			return nil, &Error{File: name, Line: a.pos[i].Line, Msg: err.Error()}
		}
		p.Words[i] = w
	}
	syms := make([]prog.Symbol, 0, len(a.labels))
	for n, addr := range a.labels {
		syms = append(syms, prog.Symbol{Name: n, Addr: addr})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].Addr != syms[j].Addr {
			return syms[i].Addr < syms[j].Addr
		}
		return syms[i].Name < syms[j].Name
	})
	p.Syms = syms
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (a *asmState) errf(line int, format string, args ...any) error {
	return &Error{File: a.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// parse runs pass 1: split statements by section, resolve label
// addresses (using exact pseudo-op expansion sizes), and return the text
// and data statement lists for pass 2.
func (a *asmState) parse(source string) (text, data []stmt, err error) {
	sec := secText
	textPC := prog.TextBase
	dataOff := uint32(0)

	for lineNo, raw := range strings.Split(source, "\n") {
		line := raw
		hint := prog.HintNone
		if i := strings.Index(line, ";@"); i >= 0 {
			switch strings.TrimSpace(line[i+2:]) {
			case "stack":
				hint = prog.HintStack
			case "nonstack":
				hint = prog.HintNonStack
			case "unknown":
				hint = prog.HintUnknown
			default:
				return nil, nil, a.errf(lineNo+1, "bad hint comment %q", line[i:])
			}
			line = line[:i]
		}
		if i := strings.IndexAny(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Peel leading labels (there may be several on one line).
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t\"(),") {
				break
			}
			label := line[:i]
			if _, dup := a.labels[label]; dup {
				return nil, nil, a.errf(lineNo+1, "duplicate label %q", label)
			}
			if sec == secText {
				a.labels[label] = textPC
			} else {
				a.labels[label] = prog.DataBase + dataOff
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		s := stmt{line: lineNo + 1, src: line, hint: hint}
		fields := strings.SplitN(line, " ", 2)
		s.op = strings.ToLower(strings.TrimSpace(fields[0]))
		if len(fields) == 2 {
			rest := strings.TrimSpace(fields[1])
			if s.op == ".asciiz" {
				str, err := strconv.Unquote(rest)
				if err != nil {
					return nil, nil, a.errf(s.line, ".asciiz: %v", err)
				}
				s.strArg = str
			} else {
				s.args = splitOperands(rest)
			}
		}

		switch s.op {
		case ".text":
			sec = secText
			continue
		case ".data":
			sec = secData
			continue
		case ".globl", ".global", ".ent", ".end", ".file":
			continue
		}

		if sec == secData {
			n, err := a.dataSize(s, dataOff)
			if err != nil {
				return nil, nil, err
			}
			// Re-bind any label defined at this offset is already done;
			// alignment directives may move subsequent labels only.
			dataOff += n
			data = append(data, s)
		} else {
			n, err := a.instCount(s)
			if err != nil {
				return nil, nil, err
			}
			textPC += uint32(n) * isa.InstBytes
			text = append(text, s)
		}
	}
	return text, data, nil
}

// splitOperands splits "a, b, c" respecting no nesting beyond the
// disp(reg) form, which contains no commas.
func splitOperands(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// dataSize reports how many bytes a data-section statement emits,
// accounting for alignment at the given offset.
func (a *asmState) dataSize(s stmt, off uint32) (uint32, error) {
	switch s.op {
	case ".word", ".float":
		// Words are 4-aligned implicitly.
		pad := (4 - off%4) % 4
		return pad + 4*uint32(len(s.args)), nil
	case ".space":
		if len(s.args) != 1 {
			return 0, a.errf(s.line, ".space: want one size argument, got %d", len(s.args))
		}
		n, err := parseInt(s.args[0])
		if err != nil || n < 0 {
			return 0, a.errf(s.line, ".space: bad size %q", s.args[0])
		}
		return uint32(n), nil
	case ".asciiz":
		// Rounded up to a word so following labels stay 4-aligned.
		return (uint32(len(s.strArg)) + 1 + 3) &^ 3, nil
	case ".align":
		if len(s.args) != 1 {
			return 0, a.errf(s.line, ".align: want one power argument, got %d", len(s.args))
		}
		n, err := parseInt(s.args[0])
		if err != nil || n < 0 || n > 12 {
			return 0, a.errf(s.line, ".align: bad power %q", s.args[0])
		}
		size := uint32(1) << uint(n)
		return (size - off%size) % size, nil
	}
	return 0, a.errf(s.line, "directive %q not allowed in .data", s.op)
}

// Labels in .data get their final addresses during pass 1 because
// dataSize is deterministic; emitData just replays the same layout.
func (a *asmState) emitData(s stmt) error {
	pad4 := func() {
		for uint32(len(a.data))%4 != 0 {
			a.data = append(a.data, 0)
		}
	}
	switch s.op {
	case ".word":
		pad4()
		for _, arg := range s.args {
			v, err := a.resolveValue(arg, s.line)
			if err != nil {
				return err
			}
			a.data = append(a.data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
	case ".float":
		pad4()
		for _, arg := range s.args {
			f, err := strconv.ParseFloat(arg, 32)
			if err != nil {
				return a.errf(s.line, ".float: %v", err)
			}
			v := math.Float32bits(float32(f))
			a.data = append(a.data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
	case ".space":
		n, _ := parseInt(s.args[0])
		a.data = append(a.data, make([]byte, n)...)
	case ".asciiz":
		a.data = append(a.data, s.strArg...)
		a.data = append(a.data, 0)
		for uint32(len(a.data))%4 != 0 {
			a.data = append(a.data, 0)
		}
	case ".align":
		n, _ := parseInt(s.args[0])
		size := 1 << uint(n)
		for len(a.data)%size != 0 {
			a.data = append(a.data, 0)
		}
	}
	return nil
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// floatBits parses a float literal and returns its IEEE-754 float32 bit
// pattern.
func floatBits(s string) (uint32, error) {
	f, err := strconv.ParseFloat(s, 32)
	if err != nil {
		return 0, err
	}
	return math.Float32bits(float32(f)), nil
}

// resolveValue resolves an integer literal or a label (optionally
// label+NN / label-NN) to a 32-bit value.
func (a *asmState) resolveValue(arg string, line int) (uint32, error) {
	if v, err := parseInt(arg); err == nil {
		return uint32(v), nil
	}
	base, off := arg, int64(0)
	for _, sep := range []string{"+", "-"} {
		if i := strings.LastIndex(arg, sep); i > 0 {
			if v, err := parseInt(arg[i:]); err == nil {
				base, off = arg[:i], v
				break
			}
		}
	}
	addr, ok := a.labels[base]
	if !ok {
		return 0, a.errf(line, "undefined symbol %q", base)
	}
	return addr + uint32(off), nil
}
