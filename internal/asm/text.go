package asm

import (
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// instCount reports how many machine instructions a text statement
// expands to. It must agree exactly with emitText: pass 1 uses it to lay
// out label addresses.
func (a *asmState) instCount(s stmt) (int, error) {
	switch s.op {
	case "li":
		if len(s.args) != 2 {
			return 0, a.errf(s.line, "li needs 2 operands")
		}
		v, err := parseInt(s.args[1])
		if err != nil {
			return 0, a.errf(s.line, "li: bad immediate %q", s.args[1])
		}
		return liLen(uint32(v)), nil
	case "la":
		return 2, nil
	case "li.s":
		return 3, nil
	case "bge", "bgt", "ble", "blt":
		return 2, nil
	case "lw", "lh", "lhu", "lb", "lbu", "sw", "sh", "sb", "l.s", "s.s":
		if len(s.args) != 2 {
			return 0, a.errf(s.line, "%s needs 2 operands", s.op)
		}
		if strings.HasSuffix(s.args[1], ")") {
			return 1, nil
		}
		return 2, nil // symbolic address: lui + mem
	default:
		return 1, nil
	}
}

func liLen(v uint32) int {
	iv := int32(v)
	if iv >= -32768 && iv <= 32767 {
		return 1
	}
	if v&0xFFFF == 0 {
		return 1
	}
	return 2
}

func (a *asmState) emit(s stmt, in isa.Inst) {
	a.text = append(a.text, in)
	a.pos = append(a.pos, prog.SourcePos{File: a.file, Line: s.line, Text: s.src})
	h := prog.HintNone
	if in.IsMem() {
		h = s.hint
	}
	a.hints = append(a.hints, h)
}

func (a *asmState) curPC() uint32 {
	return prog.TextBase + uint32(len(a.text))*isa.InstBytes
}

func (a *asmState) reg(arg string, line int) (isa.Register, error) {
	r, ok := isa.RegByName(arg)
	if !ok {
		return 0, a.errf(line, "bad register %q", arg)
	}
	return r, nil
}

func (a *asmState) fpreg(arg string, line int) (isa.Register, error) {
	r, ok := isa.FPRegByName(arg)
	if !ok {
		return 0, a.errf(line, "bad fp register %q", arg)
	}
	return r, nil
}

func (a *asmState) imm16(arg string, line int) (int32, error) {
	v, err := parseInt(arg)
	if err != nil {
		return 0, a.errf(line, "bad immediate %q", arg)
	}
	if v < -32768 || v > 32767 {
		return 0, a.errf(line, "immediate %d out of 16-bit range", v)
	}
	return int32(v), nil
}

// branchOff computes the signed word offset from the instruction after
// the branch at pc to the label target.
func (a *asmState) branchOff(label string, pc uint32, line int) (int32, error) {
	t, ok := a.labels[label]
	if !ok {
		return 0, a.errf(line, "undefined branch target %q", label)
	}
	diff := (int64(t) - int64(pc) - isa.InstBytes) / isa.InstBytes
	if diff < -32768 || diff > 32767 {
		return 0, a.errf(line, "branch to %q out of range (%d words)", label, diff)
	}
	return int32(diff), nil
}

// memOperand parses "disp($reg)" into (base, disp). ok=false means the
// operand is symbolic and needs the lui+mem expansion.
func (a *asmState) memOperand(arg string, line int) (base isa.Register, disp int32, ok bool, err error) {
	if !strings.HasSuffix(arg, ")") {
		return 0, 0, false, nil
	}
	i := strings.LastIndex(arg, "(")
	if i < 0 {
		return 0, 0, false, a.errf(line, "bad memory operand %q", arg)
	}
	regName := arg[i+1 : len(arg)-1]
	base, okr := isa.RegByName(regName)
	if !okr {
		return 0, 0, false, a.errf(line, "bad base register %q", regName)
	}
	dispStr := strings.TrimSpace(arg[:i])
	var d int64
	if dispStr == "" {
		d = 0
	} else {
		d, err = parseInt(dispStr)
		if err != nil {
			return 0, 0, false, a.errf(line, "bad displacement %q", dispStr)
		}
	}
	if d < -32768 || d > 32767 {
		return 0, 0, false, a.errf(line, "displacement %d out of range", d)
	}
	return base, int32(d), true, nil
}

// se16 narrows an unsigned 16-bit field to the sign-extended form the
// instruction encoding stores. The VM masks logical/lui immediates back
// to 16 bits, so the bit pattern survives the round trip.
func se16(v uint32) int32 { return int32(int16(v)) }

// luiOri emits the canonical two-instruction 32-bit constant load into
// rd. It always emits exactly two instructions.
func (a *asmState) luiOri(s stmt, rd isa.Register, v uint32) {
	a.emit(s, isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: se16(v >> 16)})
	a.emit(s, isa.Inst{Op: isa.OpORI, Rd: rd, Rs: rd, Imm: se16(v & 0xFFFF)})
}

var memOps = map[string]isa.Op{
	"lw": isa.OpLW, "lh": isa.OpLH, "lhu": isa.OpLHU, "lb": isa.OpLB,
	"lbu": isa.OpLBU, "sw": isa.OpSW, "sh": isa.OpSH, "sb": isa.OpSB,
	"l.s": isa.OpLWC1, "s.s": isa.OpSWC1,
}

var rType = map[string]isa.Funct{
	"add": isa.FnADD, "sub": isa.FnSUB, "mul": isa.FnMUL, "mulh": isa.FnMULH,
	"div": isa.FnDIV, "rem": isa.FnREM, "and": isa.FnAND, "or": isa.FnOR,
	"xor": isa.FnXOR, "nor": isa.FnNOR, "sll": isa.FnSLL, "srl": isa.FnSRL,
	"sra": isa.FnSRA, "slt": isa.FnSLT, "sltu": isa.FnSLTU,
}

var fpType = map[string]isa.Funct{
	"add.s": isa.FnFADD, "sub.s": isa.FnFSUB, "mul.s": isa.FnFMUL,
	"div.s": isa.FnFDIV, "neg.s": isa.FnFNEG, "abs.s": isa.FnFABS,
	"sqrt.s": isa.FnFSQRT, "c.eq.s": isa.FnCEQ, "c.lt.s": isa.FnCLT,
	"c.le.s": isa.FnCLE, "cvt.s.w": isa.FnCVTSW, "cvt.w.s": isa.FnCVTWS,
	"mfc1": isa.FnMFC1, "mtc1": isa.FnMTC1,
}

var iType = map[string]isa.Op{
	"addi": isa.OpADDI, "andi": isa.OpANDI, "ori": isa.OpORI,
	"xori": isa.OpXORI, "slti": isa.OpSLTI, "slli": isa.OpSLLI,
	"srli": isa.OpSRLI, "srai": isa.OpSRAI,
}

func (a *asmState) emitText(s stmt) error {
	need := func(n int) error {
		if len(s.args) != n {
			return a.errf(s.line, "%s needs %d operands, got %d", s.op, n, len(s.args))
		}
		return nil
	}

	switch {
	case s.op == "nop":
		a.emit(s, isa.Inst{Op: isa.OpNop})
		return nil

	case s.op == "syscall":
		a.emit(s, isa.Inst{Op: isa.OpSYSCALL})
		return nil

	case rType[s.op] != 0 || s.op == "add":
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return err
		}
		rt, err := a.reg(s.args[2], s.line)
		if err != nil {
			return err
		}
		a.emit(s, isa.Inst{Op: isa.OpReg, Funct: rType[s.op], Rd: rd, Rs: rs, Rt: rt})
		return nil

	case iType[s.op] != 0 || s.op == "addi":
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return err
		}
		var imm int32
		if s.op == "andi" || s.op == "ori" || s.op == "xori" {
			// Logical immediates are unsigned 16-bit fields.
			v, perr := parseInt(s.args[2])
			if perr != nil || v < -32768 || v > 65535 {
				return a.errf(s.line, "bad logical immediate %q", s.args[2])
			}
			imm = se16(uint32(v))
		} else {
			imm, err = a.imm16(s.args[2], s.line)
			if err != nil {
				return err
			}
		}
		a.emit(s, isa.Inst{Op: iType[s.op], Rd: rd, Rs: rs, Imm: imm})
		return nil

	case s.op == "lui":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		v, err := parseInt(s.args[1])
		if err != nil || v < 0 || v > 0xFFFF {
			return a.errf(s.line, "lui: bad immediate %q", s.args[1])
		}
		a.emit(s, isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: se16(uint32(v))})
		return nil

	case memOps[s.op] != 0 || s.op == "lw":
		if err := need(2); err != nil {
			return err
		}
		op := memOps[s.op]
		fp := op == isa.OpLWC1 || op == isa.OpSWC1
		var rd isa.Register
		var err error
		if fp {
			rd, err = a.fpreg(s.args[0], s.line)
		} else {
			rd, err = a.reg(s.args[0], s.line)
		}
		if err != nil {
			return err
		}
		base, disp, direct, err := a.memOperand(s.args[1], s.line)
		if err != nil {
			return err
		}
		if direct {
			a.emit(s, isa.Inst{Op: op, Rd: rd, Rs: base, Imm: disp})
			return nil
		}
		// Symbolic address: lui $at, hi; mem rd, lo($at), with the
		// MIPS hi-adjustment so the signed lo displacement works out.
		addr, rerr := a.resolveValue(s.args[1], s.line)
		if rerr != nil {
			return rerr
		}
		hi := (addr + 0x8000) >> 16
		lo := se16(addr & 0xFFFF)
		a.emit(s, isa.Inst{Op: isa.OpLUI, Rd: isa.AT, Imm: se16(hi)})
		a.emit(s, isa.Inst{Op: op, Rd: rd, Rs: isa.AT, Imm: lo})
		return nil

	case fpType[s.op] != 0 || s.op == "add.s":
		return a.emitFP(s)

	case s.op == "beq" || s.op == "bne":
		if err := need(3); err != nil {
			return err
		}
		rs, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rt, err := a.reg(s.args[1], s.line)
		if err != nil {
			return err
		}
		off, err := a.branchOff(s.args[2], a.curPC(), s.line)
		if err != nil {
			return err
		}
		op := isa.OpBEQ
		if s.op == "bne" {
			op = isa.OpBNE
		}
		a.emit(s, isa.Inst{Op: op, Rs: rs, Rd: rt, Imm: off})
		return nil

	case s.op == "beqz" || s.op == "bnez":
		if err := need(2); err != nil {
			return err
		}
		rs, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		off, err := a.branchOff(s.args[1], a.curPC(), s.line)
		if err != nil {
			return err
		}
		op := isa.OpBEQ
		if s.op == "bnez" {
			op = isa.OpBNE
		}
		a.emit(s, isa.Inst{Op: op, Rs: rs, Rd: isa.Zero, Imm: off})
		return nil

	case s.op == "blez" || s.op == "bgtz" || s.op == "bltz" || s.op == "bgez":
		if err := need(2); err != nil {
			return err
		}
		rs, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		off, err := a.branchOff(s.args[1], a.curPC(), s.line)
		if err != nil {
			return err
		}
		op := map[string]isa.Op{
			"blez": isa.OpBLEZ, "bgtz": isa.OpBGTZ,
			"bltz": isa.OpBLTZ, "bgez": isa.OpBGEZ,
		}[s.op]
		a.emit(s, isa.Inst{Op: op, Rs: rs, Imm: off})
		return nil

	case s.op == "bge" || s.op == "bgt" || s.op == "ble" || s.op == "blt":
		return a.emitCmpBranch(s)

	case s.op == "b":
		if err := need(1); err != nil {
			return err
		}
		off, err := a.branchOff(s.args[0], a.curPC(), s.line)
		if err != nil {
			return err
		}
		a.emit(s, isa.Inst{Op: isa.OpBEQ, Rs: isa.Zero, Rd: isa.Zero, Imm: off})
		return nil

	case s.op == "j" || s.op == "jal":
		if err := need(1); err != nil {
			return err
		}
		t, ok := a.labels[s.args[0]]
		if !ok {
			return a.errf(s.line, "undefined jump target %q", s.args[0])
		}
		op := isa.OpJ
		if s.op == "jal" {
			op = isa.OpJAL
		}
		a.emit(s, isa.Inst{Op: op, Imm: int32(t / isa.InstBytes)})
		return nil

	case s.op == "jr":
		if err := need(1); err != nil {
			return err
		}
		rs, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		a.emit(s, isa.Inst{Op: isa.OpJR, Rs: rs})
		return nil

	case s.op == "jalr":
		var rd, rs isa.Register
		var err error
		switch len(s.args) {
		case 1:
			rd = isa.RA
			rs, err = a.reg(s.args[0], s.line)
		case 2:
			rd, err = a.reg(s.args[0], s.line)
			if err == nil {
				rs, err = a.reg(s.args[1], s.line)
			}
		default:
			return a.errf(s.line, "jalr needs 1 or 2 operands")
		}
		if err != nil {
			return err
		}
		a.emit(s, isa.Inst{Op: isa.OpJALR, Rd: rd, Rs: rs})
		return nil

	case s.op == "li":
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		v64, err := parseInt(s.args[1])
		if err != nil {
			return a.errf(s.line, "li: bad immediate %q", s.args[1])
		}
		v := uint32(v64)
		switch liLen(v) {
		case 1:
			if iv := int32(v); iv >= -32768 && iv <= 32767 {
				a.emit(s, isa.Inst{Op: isa.OpADDI, Rd: rd, Rs: isa.Zero, Imm: iv})
			} else {
				a.emit(s, isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: se16(v >> 16)})
			}
		default:
			a.luiOri(s, rd, v)
		}
		return nil

	case s.op == "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		addr, err := a.resolveValue(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.luiOri(s, rd, addr)
		return nil

	case s.op == "li.s":
		if err := need(2); err != nil {
			return err
		}
		fd, err := a.fpreg(s.args[0], s.line)
		if err != nil {
			return err
		}
		bits, err := floatBits(s.args[1])
		if err != nil {
			return a.errf(s.line, "li.s: %v", err)
		}
		a.luiOri(s, isa.AT, bits)
		a.emit(s, isa.Inst{Op: isa.OpFP, Funct: isa.FnMTC1, Rd: fd, Rs: isa.AT})
		return nil

	case s.op == "move":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.emit(s, isa.Inst{Op: isa.OpReg, Funct: isa.FnADD, Rd: rd, Rs: rs, Rt: isa.Zero})
		return nil

	case s.op == "not":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.emit(s, isa.Inst{Op: isa.OpReg, Funct: isa.FnNOR, Rd: rd, Rs: rs, Rt: isa.Zero})
		return nil

	case s.op == "neg":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.emit(s, isa.Inst{Op: isa.OpReg, Funct: isa.FnSUB, Rd: rd, Rs: isa.Zero, Rt: rs})
		return nil
	}

	return a.errf(s.line, "unknown mnemonic %q", s.op)
}

// emitCmpBranch expands the two-instruction compare-and-branch pseudos
// using $at.
func (a *asmState) emitCmpBranch(s stmt) error {
	if len(s.args) != 3 {
		return a.errf(s.line, "%s needs 3 operands", s.op)
	}
	rs, err := a.reg(s.args[0], s.line)
	if err != nil {
		return err
	}
	rt, err := a.reg(s.args[1], s.line)
	if err != nil {
		return err
	}
	// bge rs,rt: !(rs<rt)  -> slt at,rs,rt; beq at,zero
	// blt rs,rt:   rs<rt   -> slt at,rs,rt; bne at,zero
	// bgt rs,rt:   rt<rs   -> slt at,rt,rs; bne at,zero
	// ble rs,rt: !(rt<rs)  -> slt at,rt,rs; beq at,zero
	x, y := rs, rt
	branch := isa.OpBEQ
	switch s.op {
	case "blt":
		branch = isa.OpBNE
	case "bgt":
		x, y = rt, rs
		branch = isa.OpBNE
	case "ble":
		x, y = rt, rs
	}
	a.emit(s, isa.Inst{Op: isa.OpReg, Funct: isa.FnSLT, Rd: isa.AT, Rs: x, Rt: y})
	off, err := a.branchOff(s.args[2], a.curPC(), s.line)
	if err != nil {
		return err
	}
	a.emit(s, isa.Inst{Op: branch, Rs: isa.AT, Rd: isa.Zero, Imm: off})
	return nil
}

func (a *asmState) emitFP(s stmt) error {
	fn := fpType[s.op]
	switch fn {
	case isa.FnFNEG, isa.FnFABS, isa.FnFSQRT:
		if len(s.args) != 2 {
			return a.errf(s.line, "%s needs 2 operands", s.op)
		}
		fd, err := a.fpreg(s.args[0], s.line)
		if err != nil {
			return err
		}
		fs, err := a.fpreg(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.emit(s, isa.Inst{Op: isa.OpFP, Funct: fn, Rd: fd, Rs: fs})
	case isa.FnCEQ, isa.FnCLT, isa.FnCLE:
		if len(s.args) != 3 {
			return a.errf(s.line, "%s needs 3 operands", s.op)
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		fs, err := a.fpreg(s.args[1], s.line)
		if err != nil {
			return err
		}
		ft, err := a.fpreg(s.args[2], s.line)
		if err != nil {
			return err
		}
		a.emit(s, isa.Inst{Op: isa.OpFP, Funct: fn, Rd: rd, Rs: fs, Rt: ft})
	case isa.FnCVTSW, isa.FnMTC1:
		if len(s.args) != 2 {
			return a.errf(s.line, "%s needs 2 operands", s.op)
		}
		fd, err := a.fpreg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.emit(s, isa.Inst{Op: isa.OpFP, Funct: fn, Rd: fd, Rs: rs})
	case isa.FnCVTWS, isa.FnMFC1:
		if len(s.args) != 2 {
			return a.errf(s.line, "%s needs 2 operands", s.op)
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return err
		}
		fs, err := a.fpreg(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.emit(s, isa.Inst{Op: isa.OpFP, Funct: fn, Rd: rd, Rs: fs})
	default:
		if len(s.args) != 3 {
			return a.errf(s.line, "%s needs 3 operands", s.op)
		}
		fd, err := a.fpreg(s.args[0], s.line)
		if err != nil {
			return err
		}
		fs, err := a.fpreg(s.args[1], s.line)
		if err != nil {
			return err
		}
		ft, err := a.fpreg(s.args[2], s.line)
		if err != nil {
			return err
		}
		a.emit(s, isa.Inst{Op: isa.OpFP, Funct: fn, Rd: fd, Rs: fs, Rt: ft})
	}
	return nil
}
