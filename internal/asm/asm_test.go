package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/prog"
)

func mustAssemble(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleMinimal(t *testing.T) {
	p := mustAssemble(t, `
.text
main:
	li $v0, 42
	jr $ra
`)
	if len(p.Text) != 2 {
		t.Fatalf("got %d instructions, want 2", len(p.Text))
	}
	if p.Entry != prog.TextBase {
		t.Errorf("entry = %#x, want %#x", p.Entry, prog.TextBase)
	}
	in := p.Text[0]
	if in.Op != isa.OpADDI || in.Rd != isa.V0 || in.Imm != 42 {
		t.Errorf("li expanded to %v", in)
	}
}

func TestAssembleLargeLI(t *testing.T) {
	p := mustAssemble(t, `
main:
	li $t0, 0x12345678
	li $t1, 0x10000
	li $t2, -5
	jr $ra
`)
	// 2 (lui+ori) + 1 (lui) + 1 (addi) + 1 (jr)
	if len(p.Text) != 5 {
		t.Fatalf("got %d instructions, want 5", len(p.Text))
	}
	if p.Text[0].Op != isa.OpLUI || p.Text[0].Imm != 0x1234 {
		t.Errorf("lui = %v", p.Text[0])
	}
	if p.Text[1].Op != isa.OpORI || p.Text[1].Imm != 0x5678 {
		t.Errorf("ori = %v", p.Text[1])
	}
	if p.Text[2].Op != isa.OpLUI || p.Text[2].Imm != 1 {
		t.Errorf("lui16 = %v", p.Text[2])
	}
	if p.Text[3].Op != isa.OpADDI || p.Text[3].Imm != -5 {
		t.Errorf("addi = %v", p.Text[3])
	}
}

func TestAssembleDataSection(t *testing.T) {
	p := mustAssemble(t, `
.data
tbl: .word 1, 2, 3
msg: .asciiz "hi"
buf: .space 8
end: .word 0xdeadbeef
.text
main:
	la $t0, tbl
	lw $t1, 4($t0)
	jr $ra
`)
	tbl, ok := p.Lookup("tbl")
	if !ok || tbl != prog.DataBase {
		t.Fatalf("tbl = %#x, ok=%v", tbl, ok)
	}
	msg, _ := p.Lookup("msg")
	if msg != prog.DataBase+12 {
		t.Errorf("msg = %#x, want %#x", msg, prog.DataBase+12)
	}
	buf, _ := p.Lookup("buf")
	if buf != prog.DataBase+16 { // "hi\0" padded to 4
		t.Errorf("buf = %#x, want %#x", buf, prog.DataBase+16)
	}
	end, _ := p.Lookup("end")
	if end != prog.DataBase+24 {
		t.Errorf("end = %#x, want %#x", end, prog.DataBase+24)
	}
	if got := len(p.Data); got != 28 {
		t.Fatalf("data length = %d, want 28", got)
	}
	// .word little-endian
	if p.Data[4] != 2 || p.Data[24] != 0xef || p.Data[27] != 0xde {
		t.Errorf("data bytes wrong: % x", p.Data)
	}
}

func TestBranchOffsets(t *testing.T) {
	p := mustAssemble(t, `
main:
loop:
	addi $t0, $t0, 1
	bne $t0, $t1, loop
	beq $t0, $t1, fwd
	nop
fwd:
	jr $ra
`)
	bne := p.Text[1]
	if bne.Op != isa.OpBNE || bne.Imm != -2 {
		t.Errorf("bne = %+v, want offset -2", bne)
	}
	beq := p.Text[2]
	if beq.Op != isa.OpBEQ || beq.Imm != 1 {
		t.Errorf("beq = %+v, want offset 1", beq)
	}
}

func TestCmpBranchPseudo(t *testing.T) {
	p := mustAssemble(t, `
main:
	blt $t0, $t1, out
	bge $t0, $t1, out
	bgt $t0, $t1, out
	ble $t0, $t1, out
out:
	jr $ra
`)
	if len(p.Text) != 9 {
		t.Fatalf("got %d instructions, want 9", len(p.Text))
	}
	// blt: slt at,t0,t1 ; bne at,zero
	if p.Text[0].Funct != isa.FnSLT || p.Text[0].Rs != isa.T0 || p.Text[0].Rt != isa.T1 {
		t.Errorf("blt slt = %v", p.Text[0])
	}
	if p.Text[1].Op != isa.OpBNE {
		t.Errorf("blt branch = %v", p.Text[1])
	}
	// bgt: slt at,t1,t0 ; bne
	if p.Text[4].Rs != isa.T1 || p.Text[4].Rt != isa.T0 {
		t.Errorf("bgt slt = %v", p.Text[4])
	}
}

func TestSymbolicMemOperand(t *testing.T) {
	p := mustAssemble(t, `
.data
g: .word 7
.text
main:
	lw $t0, g
	sw $t0, g+4
	jr $ra
`)
	// each expands to lui $at + mem
	if len(p.Text) != 5 {
		t.Fatalf("got %d instructions, want 5", len(p.Text))
	}
	if p.Text[0].Op != isa.OpLUI || p.Text[0].Rd != isa.AT {
		t.Errorf("lui = %v", p.Text[0])
	}
	lw := p.Text[1]
	if lw.Op != isa.OpLW || lw.Rs != isa.AT {
		t.Errorf("lw = %v", lw)
	}
	// reconstructed address must equal the symbol address
	hi := uint32(p.Text[0].Imm) << 16
	addr := hi + uint32(lw.Imm)
	if g, _ := p.Lookup("g"); addr != g {
		t.Errorf("reconstructed addr %#x != g %#x", addr, g)
	}
}

func TestHintComments(t *testing.T) {
	p := mustAssemble(t, `
main:
	lw $t0, 0($sp)   ;@stack
	lw $t1, 0($gp)   ;@nonstack
	lw $t2, 0($t0)   ;@unknown
	addi $t3, $t3, 1
	jr $ra
`)
	want := []prog.Hint{prog.HintStack, prog.HintNonStack, prog.HintUnknown, prog.HintNone, prog.HintNone}
	for i, h := range want {
		if p.HintAt(i) != h {
			t.Errorf("hint[%d] = %v, want %v", i, p.HintAt(i), h)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no main", "foo:\n nop\n", "no main"},
		{"dup label", "main:\nmain:\n nop\n", "duplicate label"},
		{"bad reg", "main:\n add $t0, $xx, $t1\n", "bad register"},
		{"undefined sym", "main:\n la $t0, nope\n jr $ra\n", "undefined symbol"},
		{"undefined branch", "main:\n beq $t0, $t1, nowhere\n", "undefined branch target"},
		{"imm range", "main:\n addi $t0, $t0, 99999\n", "out of 16-bit range"},
		{"bad mnemonic", "main:\n frobnicate $t0\n", "unknown mnemonic"},
		{"bad hint", "main:\n lw $t0, 0($sp) ;@bogus\n", "bad hint"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("t.s", c.src)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestFPInstructions(t *testing.T) {
	p := mustAssemble(t, `
main:
	li.s $f0, 1.5
	li.s $f1, 2.5
	add.s $f2, $f0, $f1
	c.lt.s $t0, $f0, $f1
	cvt.w.s $t1, $f2
	mtc1 $f3, $t1
	jr $ra
`)
	// li.s = 3 each
	if len(p.Text) != 11 {
		t.Fatalf("got %d instructions, want 11", len(p.Text))
	}
	add := p.Text[6]
	if add.Op != isa.OpFP || add.Funct != isa.FnFADD || add.Rd != 2 {
		t.Errorf("add.s = %v", add)
	}
}

// Property: every instruction emitted by the assembler round-trips
// through Encode/Decode (Program.Validate checks this, but the property
// test drives it over random label/immediate combinations).
func TestEncodeRoundTripProperty(t *testing.T) {
	f := func(rd, rs uint8, imm int16) bool {
		in := isa.Inst{
			Op: isa.OpADDI, Rd: isa.Register(rd % 32),
			Rs: isa.Register(rs % 32), Imm: int32(imm),
		}
		w, err := isa.Encode(in)
		if err != nil {
			return false
		}
		out, err := isa.Decode(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
