// Package explore is the design-space explorer behind arlexplore: a
// seeded Pareto search over a declarative grid of partitioned-cache
// machine configurations. Every point runs through the shared
// experiments.Runner — store-memoized, retried, breaker-guarded — so a
// SIGKILLed sweep resumed with -resume recomputes only the missing
// points and reassembles a byte-identical frontier, and frontier
// campaigns dedupe against plain simulation campaigns through the same
// artifact store.
package explore

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/experiments"
)

// FrontierSchema names the ranked-frontier artifact format.
const FrontierSchema = "arl-frontier/v1"

// Grid declares the parameter space: the cross product of every listed
// dimension. Empty dimensions mean the paper's defaults. Conventional
// points (LVC ports 0) collapse their LVC, steering, ARPT and penalty
// dimensions — a machine without a second partition has none of them —
// so each (N+0) appears exactly once however large those lists are.
type Grid struct {
	L1Ports     []int  `json:"l1_ports"`
	LVCPorts    []int  `json:"lvc_ports,omitempty"`    // 0 = conventional, no LVC
	LVCSizeKB   []int  `json:"lvc_size_kb,omitempty"`  // empty = {4}
	ARPTEntries []int  `json:"arpt_entries,omitempty"` // empty = {0}: pipeline default
	Penalties   []int  `json:"penalties,omitempty"`    // empty = {1}
	Steer       string `json:"steer,omitempty"`        // "" = region
	// MaxPoints caps the sweep with a seeded uniform sample of the full
	// cross product (canonical order restored after sampling). The
	// frontier artifact records how many points the cap dropped.
	MaxPoints int `json:"max_points,omitempty"`
}

// Point is one design point: a machine configuration plus the ARPT
// size its trace is built with. Name extends the canonical config name
// with an "@arptN" suffix for non-default ARPT sizes.
type Point struct {
	Name        string     `json:"name"`
	ARPTEntries int        `json:"arpt_entries,omitempty"`
	Config      cpu.Config `json:"-"`
}

// splitmix64 steps the seeded sampling PRNG.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4b74f9a57f4b7
	return z ^ (z >> 31)
}

// Enumerate expands the grid into design points in canonical order,
// applying the MaxPoints seeded sample. It reports the points kept and
// how many the cap dropped.
func (g Grid) Enumerate(seed uint64) ([]Point, int, error) {
	if len(g.L1Ports) == 0 {
		return nil, 0, fmt.Errorf("explore: grid has no l1_ports dimension")
	}
	lvcPorts := g.LVCPorts
	if len(lvcPorts) == 0 {
		lvcPorts = []int{0}
	}
	sizes := g.LVCSizeKB
	if len(sizes) == 0 {
		sizes = []int{4}
	}
	arpts := g.ARPTEntries
	if len(arpts) == 0 {
		arpts = []int{0}
	}
	pens := g.Penalties
	if len(pens) == 0 {
		pens = []int{1}
	}
	seen := map[string]bool{}
	var pts []Point
	for _, n := range g.L1Ports {
		for _, m := range lvcPorts {
			for _, kb := range sizes {
				for _, entries := range arpts {
					for _, pen := range pens {
						p := cpu.CustomParams{
							L1Ports: n, LVCPorts: m, LVCSizeKB: kb,
							Steer: g.Steer, Penalty: pen, ARPTEntries: entries,
						}
						if m == 0 {
							// No second partition: nothing to size, steer
							// toward, or mispredict into.
							p.LVCSizeKB, p.Steer, p.Penalty, p.ARPTEntries = 0, "", 0, 0
						}
						cfg, err := cpu.Custom(p)
						if err != nil {
							return nil, 0, fmt.Errorf("explore: grid point l1=%d lvc=%d size=%dK pen=%d: %w",
								n, m, kb, pen, err)
						}
						name := cfg.Name
						if p.ARPTEntries > 0 {
							name = fmt.Sprintf("%s@arpt%d", cfg.Name, p.ARPTEntries)
						}
						if seen[name] {
							continue
						}
						seen[name] = true
						pts = append(pts, Point{Name: name, ARPTEntries: p.ARPTEntries, Config: cfg})
					}
				}
			}
		}
	}
	dropped := 0
	if g.MaxPoints > 0 && len(pts) > g.MaxPoints {
		dropped = len(pts) - g.MaxPoints
		// Seeded Fisher-Yates over the indices, keep the first
		// MaxPoints, then restore enumeration order so the sample's
		// identity depends only on (grid, seed).
		idx := make([]int, len(pts))
		for i := range idx {
			idx[i] = i
		}
		s := seed
		for i := len(idx) - 1; i > 0; i-- {
			j := int(splitmix64(&s) % uint64(i+1))
			idx[i], idx[j] = idx[j], idx[i]
		}
		keep := idx[:g.MaxPoints]
		sort.Ints(keep)
		sampled := make([]Point, 0, g.MaxPoints)
		for _, i := range keep {
			sampled = append(sampled, pts[i])
		}
		pts = sampled
	}
	return pts, dropped, nil
}

// Eval is one evaluated design point with its three objectives: mean
// IPC across the workloads (maximize), total first-level cache plus
// ARPT capacity in KB (minimize), and total first-level port count
// (minimize).
type Eval struct {
	Point
	IPC           float64            `json:"ipc"`
	IPCByWorkload map[string]float64 `json:"ipc_by_workload"`
	TotalKB       float64            `json:"total_kb"`
	Ports         int                `json:"ports"`
	Pareto        bool               `json:"pareto"`
	Rank          int                `json:"rank"`
}

// Frontier is the ranked design-space artifact (schema
// "arl-frontier/v1"): every evaluated point in rank order, Pareto
// front first. It carries everything needed to reproduce it — grid,
// seed, workloads, scale, instruction budget — and no wall-clock
// state, so reruns are byte-identical.
type Frontier struct {
	Schema    string   `json:"schema"`
	Grid      Grid     `json:"grid"`
	Seed      uint64   `json:"seed"`
	Workloads []string `json:"workloads"`
	Scale     int      `json:"scale"`
	MaxInsts  uint64   `json:"max_insts"`
	Dropped   int      `json:"dropped_points"`
	Points    []Eval   `json:"points"`
}

// cost computes a point's capacity and port objectives from its
// resolved partitions plus the ARPT table the trace steering used.
func cost(p Point) (totalKB float64, ports int, err error) {
	parts, _, err := p.Config.ResolvePartitions()
	if err != nil {
		return 0, 0, err
	}
	bytes := 0
	for _, pc := range parts {
		bytes += pc.SizeBytes
		ports += pc.Ports
	}
	if p.Config.Decoupled() {
		pc := core.DefaultPipelineConfig()
		entries := p.ARPTEntries
		if entries == 0 {
			entries = pc.Entries
		}
		bytes += entries * pc.Bits / 8
	}
	return float64(bytes) / 1024, ports, nil
}

// dominates reports whether a is at least as good as b on every
// objective and strictly better on one.
func dominates(a, b Eval) bool {
	if a.IPC < b.IPC || a.TotalKB > b.TotalKB || a.Ports > b.Ports {
		return false
	}
	return a.IPC > b.IPC || a.TotalKB < b.TotalKB || a.Ports < b.Ports
}

// Assemble evaluates the objectives and ranks the frontier from
// simulation results laid out point-major (results[i][j] is point i on
// workload j). It is shared by the local Search and the arld client
// path, so a -server frontier is byte-identical to a local one.
func Assemble(grid Grid, seed uint64, scale int, maxInsts uint64,
	workloads []string, pts []Point, dropped int, results [][]*cpu.Result) (*Frontier, error) {
	if len(results) != len(pts) {
		return nil, fmt.Errorf("explore: %d result rows for %d points", len(results), len(pts))
	}
	evals := make([]Eval, len(pts))
	for i, p := range pts {
		if len(results[i]) != len(workloads) {
			return nil, fmt.Errorf("explore: point %s has %d results for %d workloads",
				p.Name, len(results[i]), len(workloads))
		}
		kb, ports, err := cost(p)
		if err != nil {
			return nil, fmt.Errorf("explore: point %s: %w", p.Name, err)
		}
		e := Eval{Point: p, TotalKB: kb, Ports: ports,
			IPCByWorkload: make(map[string]float64, len(workloads))}
		sum := 0.0
		for j, w := range workloads {
			r := results[i][j]
			if r == nil {
				return nil, fmt.Errorf("explore: point %s missing result for %s", p.Name, w)
			}
			ipc := r.IPC()
			e.IPCByWorkload[w] = ipc
			sum += ipc
		}
		e.IPC = sum / float64(len(workloads))
		evals[i] = e
	}
	for i := range evals {
		evals[i].Pareto = true
		for j := range evals {
			if i != j && dominates(evals[j], evals[i]) {
				evals[i].Pareto = false
				break
			}
		}
	}
	sort.SliceStable(evals, func(i, j int) bool {
		if evals[i].Pareto != evals[j].Pareto {
			return evals[i].Pareto
		}
		if evals[i].IPC != evals[j].IPC {
			return evals[i].IPC > evals[j].IPC
		}
		if evals[i].TotalKB != evals[j].TotalKB {
			return evals[i].TotalKB < evals[j].TotalKB
		}
		if evals[i].Ports != evals[j].Ports {
			return evals[i].Ports < evals[j].Ports
		}
		return evals[i].Name < evals[j].Name
	})
	for i := range evals {
		evals[i].Rank = i + 1
	}
	return &Frontier{
		Schema:    FrontierSchema,
		Grid:      grid,
		Seed:      seed,
		Workloads: workloads,
		Scale:     scale,
		MaxInsts:  maxInsts,
		Dropped:   dropped,
		Points:    evals,
	}, nil
}

// Search runs the full sweep locally: enumerate the grid, evaluate
// every (point, workload) pair on the runner's worker pool through the
// store-memoized simulation stage, and assemble the ranked frontier.
func Search(r *experiments.Runner, grid Grid, seed uint64) (*Frontier, error) {
	pts, dropped, err := grid.Enumerate(seed)
	if err != nil {
		return nil, err
	}
	if len(r.Workloads) == 0 {
		return nil, fmt.Errorf("explore: runner has no workloads")
	}
	names := make([]string, len(r.Workloads))
	for i, w := range r.Workloads {
		names[i] = w.Name
	}
	results := make([][]*cpu.Result, len(pts))
	for i := range results {
		results[i] = make([]*cpu.Result, len(names))
	}
	nw := len(names)
	err = r.ParallelDo(len(pts)*nw, func(i int) error {
		pi, wi := i/nw, i%nw
		res, err := r.SimulateConfigARPT(r.Workloads[wi], pts[pi].ARPTEntries, pts[pi].Config)
		if err != nil {
			return err
		}
		results[pi][wi] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return Assemble(grid, seed, r.Scale, r.MaxInsts, names, pts, dropped, results)
}

// Encode renders the frontier artifact deterministically (indented
// JSON, sorted map keys, trailing newline).
func Encode(f *Frontier) ([]byte, error) {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
