package explore

import (
	_ "embed"

	"repro/internal/obs"
)

// The frontier artifact schema ships inside the binary so arlexplore,
// arlmetrics and the CI smoke check validate against exactly the
// format Encode writes. TestFrontierMatchesSchema keeps writer and
// schema in sync.
//
//go:embed frontier.schema.json
var frontierSchema []byte

// FrontierSchemaJSON returns the embedded arl-frontier/v1 JSON schema.
func FrontierSchemaJSON() []byte {
	return append([]byte(nil), frontierSchema...)
}

// ValidateFrontier checks a serialized frontier artifact against the
// embedded schema.
func ValidateFrontier(doc []byte) error {
	return obs.ValidateJSON(frontierSchema, doc)
}
