package explore

import (
	"fmt"
	"strings"
)

// RenderFrontier prints the ranked frontier in the report layout:
// Pareto-front points first (marked *), then the dominated remainder.
func RenderFrontier(f *Frontier) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Design-space frontier: %d points over %d workloads (seed %d)\n",
		len(f.Points), len(f.Workloads), f.Seed)
	if f.Dropped > 0 {
		fmt.Fprintf(&b, "NOTE: max_points sampling dropped %d of %d enumerated points\n",
			f.Dropped, f.Dropped+len(f.Points))
	}
	fmt.Fprintf(&b, "%-4s %-24s %8s %9s %6s %7s\n",
		"rank", "config", "IPC", "totalKB", "ports", "pareto")
	for _, e := range f.Points {
		mark := ""
		if e.Pareto {
			mark = "*"
		}
		fmt.Fprintf(&b, "%-4d %-24s %8.3f %9.1f %6d %7s\n",
			e.Rank, e.Name, e.IPC, e.TotalKB, e.Ports, mark)
	}
	return b.String()
}
