package explore

import (
	"bytes"
	"testing"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func quickRunner(t *testing.T, names ...string) *experiments.Runner {
	t.Helper()
	r := experiments.NewRunner()
	r.MaxInsts = 200_000
	r.Workloads = nil
	for _, n := range names {
		w, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("unknown workload %q", n)
		}
		r.Workloads = append(r.Workloads, w)
	}
	return r
}

func TestEnumerate(t *testing.T) {
	g := Grid{
		L1Ports:   []int{2, 3},
		LVCPorts:  []int{0, 2},
		LVCSizeKB: []int{4, 8},
		Penalties: []int{1, 4},
	}
	pts, dropped, err := g.Enumerate(1)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Errorf("dropped = %d", dropped)
	}
	// Per l1 port count: 1 collapsed conventional point + 2*2 decoupled
	// points = 5; two l1 values = 10.
	if len(pts) != 10 {
		names := make([]string, len(pts))
		for i, p := range pts {
			names[i] = p.Name
		}
		t.Fatalf("enumerated %d points, want 10: %v", len(pts), names)
	}
	want := map[string]bool{
		"(2+0)": true, "(2+2)": true, "(2+2,pen4)": true,
		"(2+2,lvc8K)": true, "(2+2,lvc8K,pen4)": true,
		"(3+0)": true, "(3+2)": true, "(3+2,pen4)": true,
		"(3+2,lvc8K)": true, "(3+2,lvc8K,pen4)": true,
	}
	for _, p := range pts {
		if !want[p.Name] {
			t.Errorf("unexpected point %q", p.Name)
		}
	}
}

func TestEnumerateEmptyGrid(t *testing.T) {
	if _, _, err := (Grid{}).Enumerate(1); err == nil {
		t.Error("empty grid enumerated")
	}
}

func TestEnumerateMaxPointsDeterministic(t *testing.T) {
	g := Grid{
		L1Ports:   []int{1, 2, 3, 4},
		LVCPorts:  []int{1, 2, 3},
		Penalties: []int{1, 2, 4},
		MaxPoints: 10,
	}
	a, droppedA, err := g.Enumerate(42)
	if err != nil {
		t.Fatal(err)
	}
	b, droppedB, err := g.Enumerate(42)
	if err != nil {
		t.Fatal(err)
	}
	if droppedA != 36-10 || droppedB != droppedA {
		t.Errorf("dropped = %d, %d; want %d", droppedA, droppedB, 36-10)
	}
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("sampled %d and %d points, want 10", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("same seed sampled different points at %d: %q vs %q", i, a[i].Name, b[i].Name)
		}
	}
	c, _, err := g.Enumerate(43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Name != c[i].Name {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds sampled identical point sets (possible but wildly unlikely)")
	}
}

func TestParetoRanking(t *testing.T) {
	pts := []Point{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	evals := []Eval{
		{Point: pts[0], IPC: 2.0, TotalKB: 64, Ports: 2},
		{Point: pts[1], IPC: 1.5, TotalKB: 64, Ports: 2}, // dominated by a
		{Point: pts[2], IPC: 1.8, TotalKB: 32, Ports: 2}, // pareto: cheaper
	}
	if dominates(evals[1], evals[0]) || !dominates(evals[0], evals[1]) {
		t.Fatal("dominance backwards")
	}
	if dominates(evals[0], evals[2]) || dominates(evals[2], evals[0]) {
		t.Fatal("incomparable points reported as dominated")
	}
	e := evals[0]
	if dominates(e, e) {
		t.Fatal("a point dominates itself")
	}
}

// TestSearchDeterministic is the explorer's load-bearing guarantee:
// the same grid and seed produce a byte-identical encoded frontier,
// run twice in one process (fresh runner each time, so nothing rides
// on memo state).
func TestSearchDeterministic(t *testing.T) {
	g := Grid{L1Ports: []int{2}, LVCPorts: []int{0, 2}, Penalties: []int{1, 4}}
	run := func() []byte {
		r := quickRunner(t, "compress", "li")
		r.Parallel = 4
		f, err := Search(r, g, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := run()
	b := run()
	if !bytes.Equal(a, b) {
		t.Errorf("same seed produced different frontiers:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if err := ValidateFrontier(a); err != nil {
		t.Errorf("frontier artifact fails its schema: %v", err)
	}
}

func TestSearchFrontierShape(t *testing.T) {
	r := quickRunner(t, "compress")
	r.Parallel = 4
	f, err := Search(r, Grid{L1Ports: []int{2}, LVCPorts: []int{0, 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 2 {
		t.Fatalf("frontier holds %d points, want 2", len(f.Points))
	}
	for i, e := range f.Points {
		if e.Rank != i+1 {
			t.Errorf("point %d has rank %d", i, e.Rank)
		}
		if e.IPC <= 0 || e.TotalKB <= 0 || e.Ports <= 0 {
			t.Errorf("point %s objectives: IPC %.3f KB %.1f ports %d", e.Name, e.IPC, e.TotalKB, e.Ports)
		}
		if e.IPCByWorkload["129.compress"] != e.IPC {
			t.Errorf("single-workload mean IPC %.4f != per-workload %.4f", e.IPC, e.IPCByWorkload["129.compress"])
		}
	}
	// The (2+2) machine carries the LVC and the ARPT: more capacity and
	// more ports than (2+0).
	var conv, dec *Eval
	for i := range f.Points {
		switch f.Points[i].Name {
		case "(2+0)":
			conv = &f.Points[i]
		case "(2+2)":
			dec = &f.Points[i]
		}
	}
	if conv == nil || dec == nil {
		t.Fatal("expected points missing from frontier")
	}
	if dec.TotalKB <= conv.TotalKB || dec.Ports <= conv.Ports {
		t.Errorf("decoupled cost (%f KB, %d ports) not above conventional (%f KB, %d ports)",
			dec.TotalKB, dec.Ports, conv.TotalKB, conv.Ports)
	}
}

func TestFrontierMatchesSchema(t *testing.T) {
	f := &Frontier{
		Schema:    FrontierSchema,
		Grid:      Grid{L1Ports: []int{2}, LVCPorts: []int{2}, Steer: "region"},
		Seed:      1,
		Workloads: []string{"compress"},
		Scale:     1,
		MaxInsts:  1000,
		Points: []Eval{{
			Point: Point{Name: "(2+2)@arpt1024", ARPTEntries: 1024},
			IPC:   1.0, IPCByWorkload: map[string]float64{"compress": 1.0},
			TotalKB: 72, Ports: 4, Pareto: true, Rank: 1,
		}},
	}
	b, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFrontier(b); err != nil {
		t.Errorf("hand-built frontier fails schema: %v", err)
	}
	// The schema must actually reject drift, not rubber-stamp.
	if err := ValidateFrontier([]byte(`{"schema":"arl-frontier/v2"}`)); err == nil {
		t.Error("schema accepted a wrong schema tag")
	}
	bad := bytes.Replace(b, []byte(`"(2+2)@arpt1024"`), []byte(`"bogus name"`), 1)
	if err := ValidateFrontier(bad); err == nil {
		t.Error("schema accepted a malformed point name")
	}
}
