package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRegistryHandlesAreIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sim_cycles_total", "cycles", Labels{"workload": "x"})
	b := r.Counter("sim_cycles_total", "", Labels{"workload": "x"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct handles")
	}
	other := r.Counter("sim_cycles_total", "", Labels{"workload": "y"})
	if a == other {
		t.Fatal("distinct labels shared a handle")
	}
	a.Add(41)
	b.Inc()
	if got := a.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as counter and gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "", nil)
	r.Gauge("m", "", nil)
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits_total", "", Labels{"k": "v"}).Inc()
				r.Hist("occ", "", nil).Observe(int64(j % 4))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "", Labels{"k": "v"}).Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Hist("occ", "", nil).Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestSnapshotDeterministicAndSorted(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z_gauge", "last", nil).Set(1.5)
	r.Counter("a_counter", "first", Labels{"b": "2", "a": "1"}).Add(7)
	r.Hist("m_hist", "middle", nil).Observe(3)
	r.Hist("m_hist", "", nil).Observe(3)
	r.Hist("m_hist", "", nil).Observe(-1)

	s1 := r.Snapshot()
	s2 := r.Snapshot()
	j1, _ := json.Marshal(s1)
	j2, _ := json.Marshal(s2)
	if !bytes.Equal(j1, j2) {
		t.Fatal("snapshots differ across calls")
	}
	if len(s1) != 3 {
		t.Fatalf("%d samples, want 3", len(s1))
	}
	if s1[0].Name != "a_counter" || s1[1].Name != "m_hist" || s1[2].Name != "z_gauge" {
		t.Fatalf("unsorted snapshot: %s, %s, %s", s1[0].Name, s1[1].Name, s1[2].Name)
	}
	h := s1[1]
	if h.Count == nil || *h.Count != 3 || len(h.Buckets) != 2 {
		t.Fatalf("hist sample = %+v", h)
	}
	if h.Buckets[0].Value != -1 || h.Buckets[1].Value != 3 || h.Buckets[1].Count != 2 {
		t.Fatalf("hist buckets = %+v", h.Buckets)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_cycles_total", "total simulated cycles", Labels{"config": "(3+3)"}).Add(100)
	r.Hist("sim_lsq_occupancy", "LSQ entries per cycle", nil).Observe(5)
	var b strings.Builder
	if err := WriteText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# sim_cycles_total: total simulated cycles",
		"sim_cycles_total{config=(3+3)} 100",
		"sim_lsq_occupancy count=1 mean=5.00 buckets=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestArtifactMatchesSchema pins the writer and the checked-in JSON
// schema together: an artifact produced by this package must validate,
// and known corruptions must not.
func TestArtifactMatchesSchema(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_cycles_total", "cycles", Labels{"workload": "130.li", "config": "(3+3)"}).Add(12345)
	r.Gauge("harness_wall_seconds", "stage wall time", Labels{"stage": "trace"}).Set(0.25)
	r.Hist("sim_lsq_occupancy", "", nil).Observe(17)

	var buf bytes.Buffer
	a := r.Artifact(RunMeta{Cmd: "arlsim", Args: []string{"-fig8"}, GoVersion: "go1.22", WallSeconds: 1.25})
	if err := EncodeArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(buf.Bytes()); err != nil {
		t.Fatalf("artifact does not validate against embedded schema: %v\n%s", err, buf.String())
	}

	bad := []struct {
		name string
		doc  string
	}{
		{"wrong schema tag", `{"schema":"other/v9","run":{"cmd":"x","go_version":"g","wall_seconds":1},"metrics":[]}`},
		{"missing run.cmd", `{"schema":"arl-metrics/v1","run":{"go_version":"g","wall_seconds":1},"metrics":[]}`},
		{"bad metric type", `{"schema":"arl-metrics/v1","run":{"cmd":"x","go_version":"g","wall_seconds":1},"metrics":[{"name":"a","type":"timer"}]}`},
		{"bad metric name", `{"schema":"arl-metrics/v1","run":{"cmd":"x","go_version":"g","wall_seconds":1},"metrics":[{"name":"Bad Name","type":"counter"}]}`},
		{"negative wall", `{"schema":"arl-metrics/v1","run":{"cmd":"x","go_version":"g","wall_seconds":-1},"metrics":[]}`},
		{"extra top-level key", `{"schema":"arl-metrics/v1","run":{"cmd":"x","go_version":"g","wall_seconds":1},"metrics":[],"extra":1}`},
	}
	for _, tc := range bad {
		if err := ValidateMetrics([]byte(tc.doc)); err == nil {
			t.Errorf("%s: invalid artifact passed validation", tc.name)
		}
	}
}

func TestLabelsWith(t *testing.T) {
	base := Labels{"a": "1"}
	ext := base.With(Labels{"b": "2", "a": "override"})
	if ext["a"] != "override" || ext["b"] != "2" {
		t.Fatalf("With = %v", ext)
	}
	if base["a"] != "1" || len(base) != 1 {
		t.Fatalf("With mutated receiver: %v", base)
	}
}

// TestImportSamples proves merging a snapshot reproduces the registry
// state the original updates built — the property the store's resume
// path depends on for byte-identical metrics artifacts.
func TestImportSamples(t *testing.T) {
	src := NewRegistry()
	l := Labels{"workload": "099.go", "config": "(3+3)"}
	src.Counter("sim_cycles_total", "simulated cycles", l).Add(1234)
	src.Gauge("sim_ipc", "ipc", l).Set(1.75)
	h := src.Hist("sim_lsq_occupancy", "occupancy", l)
	for i := 0; i < 100; i++ {
		h.Observe(int64(i % 7))
	}

	dst := NewRegistry()
	// Pre-existing counts must accumulate, not be overwritten.
	dst.Counter("sim_cycles_total", "", Labels{"workload": "126.gcc", "config": "(3+3)"}).Add(10)
	if err := dst.ImportSamples(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportSamples(src.Snapshot()); err != nil {
		t.Fatal(err) // import twice: counters double, gauges stay
	}

	byKey := map[string]Sample{}
	for _, s := range dst.Snapshot() {
		byKey[s.Name+Labels(s.Labels).key()] = s
	}
	c := byKey["sim_cycles_total"+l.key()]
	if c.Value == nil || *c.Value != 2468 {
		t.Fatalf("counter = %+v", c)
	}
	g := byKey["sim_ipc"+l.key()]
	if g.Value == nil || *g.Value != 1.75 {
		t.Fatalf("gauge = %+v", g)
	}
	hs := byKey["sim_lsq_occupancy"+l.key()]
	if hs.Count == nil || *hs.Count != 200 || len(hs.Buckets) != 7 {
		t.Fatalf("hist = %+v", hs)
	}
	if hs.Sum == nil || *hs.Sum != 2*hsSum(h) {
		t.Fatalf("hist sum = %v, want %v", *hs.Sum, 2*hsSum(h))
	}

	// A single-fragment import into a fresh registry snapshots
	// identically to the source registry.
	clone := NewRegistry()
	if err := clone.ImportSamples(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	a, b := src.Snapshot(), clone.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("sample %d differs:\n %+v\n %+v", i, a[i], b[i])
		}
	}
}

func hsSum(h *Hist) float64 {
	_, _, sum := h.snapshot()
	return sum
}

func TestImportSamplesRejectsMalformed(t *testing.T) {
	r := NewRegistry()
	if err := r.ImportSamples([]Sample{{Name: "x", Type: "bogus"}}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if err := r.ImportSamples([]Sample{{Name: "x", Type: TypeCounter}}); err == nil {
		t.Fatal("valueless counter accepted")
	}
	neg := -1.0
	if err := r.ImportSamples([]Sample{{Name: "x", Type: TypeCounter, Value: &neg}}); err == nil {
		t.Fatal("negative counter accepted")
	}
}
