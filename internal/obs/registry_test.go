package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryHandlesAreIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sim_cycles_total", "cycles", Labels{"workload": "x"})
	b := r.Counter("sim_cycles_total", "", Labels{"workload": "x"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct handles")
	}
	other := r.Counter("sim_cycles_total", "", Labels{"workload": "y"})
	if a == other {
		t.Fatal("distinct labels shared a handle")
	}
	a.Add(41)
	b.Inc()
	if got := a.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as counter and gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "", nil)
	r.Gauge("m", "", nil)
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits_total", "", Labels{"k": "v"}).Inc()
				r.Hist("occ", "", nil).Observe(int64(j % 4))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "", Labels{"k": "v"}).Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Hist("occ", "", nil).Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestSnapshotDeterministicAndSorted(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z_gauge", "last", nil).Set(1.5)
	r.Counter("a_counter", "first", Labels{"b": "2", "a": "1"}).Add(7)
	r.Hist("m_hist", "middle", nil).Observe(3)
	r.Hist("m_hist", "", nil).Observe(3)
	r.Hist("m_hist", "", nil).Observe(-1)

	s1 := r.Snapshot()
	s2 := r.Snapshot()
	j1, _ := json.Marshal(s1)
	j2, _ := json.Marshal(s2)
	if !bytes.Equal(j1, j2) {
		t.Fatal("snapshots differ across calls")
	}
	if len(s1) != 3 {
		t.Fatalf("%d samples, want 3", len(s1))
	}
	if s1[0].Name != "a_counter" || s1[1].Name != "m_hist" || s1[2].Name != "z_gauge" {
		t.Fatalf("unsorted snapshot: %s, %s, %s", s1[0].Name, s1[1].Name, s1[2].Name)
	}
	h := s1[1]
	if h.Count == nil || *h.Count != 3 || len(h.Buckets) != 2 {
		t.Fatalf("hist sample = %+v", h)
	}
	if h.Buckets[0].Value != -1 || h.Buckets[1].Value != 3 || h.Buckets[1].Count != 2 {
		t.Fatalf("hist buckets = %+v", h.Buckets)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_cycles_total", "total simulated cycles", Labels{"config": "(3+3)"}).Add(100)
	r.Hist("sim_lsq_occupancy", "LSQ entries per cycle", nil).Observe(5)
	var b strings.Builder
	if err := WriteText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# sim_cycles_total: total simulated cycles",
		"sim_cycles_total{config=(3+3)} 100",
		"sim_lsq_occupancy count=1 mean=5.00 buckets=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestArtifactMatchesSchema pins the writer and the checked-in JSON
// schema together: an artifact produced by this package must validate,
// and known corruptions must not.
func TestArtifactMatchesSchema(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_cycles_total", "cycles", Labels{"workload": "130.li", "config": "(3+3)"}).Add(12345)
	r.Gauge("harness_wall_seconds", "stage wall time", Labels{"stage": "trace"}).Set(0.25)
	r.Hist("sim_lsq_occupancy", "", nil).Observe(17)

	var buf bytes.Buffer
	a := r.Artifact(RunMeta{Cmd: "arlsim", Args: []string{"-fig8"}, GoVersion: "go1.22", WallSeconds: 1.25})
	if err := EncodeArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(buf.Bytes()); err != nil {
		t.Fatalf("artifact does not validate against embedded schema: %v\n%s", err, buf.String())
	}

	bad := []struct {
		name string
		doc  string
	}{
		{"wrong schema tag", `{"schema":"other/v9","run":{"cmd":"x","go_version":"g","wall_seconds":1},"metrics":[]}`},
		{"missing run.cmd", `{"schema":"arl-metrics/v1","run":{"go_version":"g","wall_seconds":1},"metrics":[]}`},
		{"bad metric type", `{"schema":"arl-metrics/v1","run":{"cmd":"x","go_version":"g","wall_seconds":1},"metrics":[{"name":"a","type":"timer"}]}`},
		{"bad metric name", `{"schema":"arl-metrics/v1","run":{"cmd":"x","go_version":"g","wall_seconds":1},"metrics":[{"name":"Bad Name","type":"counter"}]}`},
		{"negative wall", `{"schema":"arl-metrics/v1","run":{"cmd":"x","go_version":"g","wall_seconds":-1},"metrics":[]}`},
		{"extra top-level key", `{"schema":"arl-metrics/v1","run":{"cmd":"x","go_version":"g","wall_seconds":1},"metrics":[],"extra":1}`},
	}
	for _, tc := range bad {
		if err := ValidateMetrics([]byte(tc.doc)); err == nil {
			t.Errorf("%s: invalid artifact passed validation", tc.name)
		}
	}
}

func TestLabelsWith(t *testing.T) {
	base := Labels{"a": "1"}
	ext := base.With(Labels{"b": "2", "a": "override"})
	if ext["a"] != "override" || ext["b"] != "2" {
		t.Fatalf("With = %v", ext)
	}
	if base["a"] != "1" || len(base) != 1 {
		t.Fatalf("With mutated receiver: %v", base)
	}
}
