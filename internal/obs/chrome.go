package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the "JSON Array Format with metadata" that
// chrome://tracing and ui.perfetto.dev both load. One simulated cycle
// maps to one microsecond of trace time, so the timeline's time axis
// reads directly in cycles.
//
// The exporter renders three layers from the event stream:
//
//   - one "X" (complete) slice per op, dispatch → commit, laid out on
//     opLanes round-robin thread lanes so overlapping ops stay visible;
//   - instant events for the intra-op milestones (queue enter, issue,
//     address ready, forwards, port stalls, cache accesses) on the
//     op's lane;
//   - one "X" slice per misprediction recovery, detect → replay, on a
//     dedicated "ARPT recovery" lane, with the cancel as an instant.
//     The span count equals the simulation's completed recoveries
//     (cpu.Result.Recoveries), which the arlsim -trace-events path
//     asserts.

// ChromeOptions configures the export.
type ChromeOptions struct {
	// ProcessName labels the trace's process row (e.g. "arlsim 130.li
	// (3+3)").
	ProcessName string
	// OpLanes is the number of round-robin pipeline lanes (<= 0 selects
	// 32).
	OpLanes int
}

// ChromeStats summarizes what an export produced.
type ChromeStats struct {
	Events        int // trace-event records written (excluding metadata)
	OpSlices      int // per-op dispatch→commit slices
	RecoverySpans int // detect→replay recovery slices
}

const recoveryTid = 1000

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func cacheAccessName(arg int64) string {
	lvc, write, level := CacheArgParts(arg)
	first := "L1"
	if lvc {
		first = "LVC"
	}
	op := "read"
	if write {
		op = "write"
	}
	switch level {
	case LevelFirst:
		return fmt.Sprintf("%s %s hit", first, op)
	case LevelL2:
		return fmt.Sprintf("%s %s miss→L2", first, op)
	default:
		return fmt.Sprintf("%s %s miss→mem", first, op)
	}
}

func instantName(ev Event) string {
	switch ev.Kind {
	case EvQueueEnter:
		if ev.Arg == QueueLVAQ {
			return "enter LVAQ"
		}
		return "enter LSQ"
	case EvPortStall:
		if ev.Arg == int64(PoolLVC) {
			return "LVC port stall"
		}
		return "L1 port stall"
	case EvCacheAccess:
		return cacheAccessName(ev.Arg)
	default:
		return ev.Kind.String()
	}
}

// WriteChromeTrace exports events as a Chrome trace-event JSON document.
// Events must carry non-decreasing emission order per seq (the order a
// Tracer received them); cycle stamps drive the timeline.
func WriteChromeTrace(w io.Writer, events []Event, opt ChromeOptions) (ChromeStats, error) {
	lanes := opt.OpLanes
	if lanes <= 0 {
		lanes = 32
	}
	var stats ChromeStats
	out := make([]chromeEvent, 0, len(events)+8)

	name := opt.ProcessName
	if name == "" {
		name = "arl pipeline"
	}
	out = append(out,
		chromeEvent{Name: "process_name", Ph: "M", Pid: 0, Args: map[string]any{"name": name}},
		chromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: recoveryTid,
			Args: map[string]any{"name": "ARPT recovery"}},
	)

	// Pass 1: pair dispatch/commit per seq into op slices, and
	// detect/replay per seq into recovery spans. The ring may have
	// evicted a slice's dispatch; such ops render as instants only.
	type opSpan struct {
		start   int64
		started bool
		mem     bool
		load    bool
	}
	ops := make(map[int64]*opSpan)
	recovStart := make(map[int64]int64)

	laneOf := func(seq int64) int { return int(seq%int64(lanes)) + 1 }

	for _, ev := range events {
		switch ev.Kind {
		case EvDispatch:
			mem, load := DispatchArgParts(ev.Arg)
			ops[ev.Seq] = &opSpan{start: ev.Cycle, started: true, mem: mem, load: load}
		case EvCommit:
			op, ok := ops[ev.Seq]
			if !ok || !op.started {
				break
			}
			delete(ops, ev.Seq)
			sliceName := "op"
			if op.mem {
				sliceName = "store"
				if op.load {
					sliceName = "load"
				}
			}
			dur := ev.Cycle - op.start
			if dur < 1 {
				dur = 1
			}
			out = append(out, chromeEvent{
				Name: sliceName, Cat: "op", Ph: "X",
				Ts: op.start, Dur: dur, Pid: 0, Tid: laneOf(ev.Seq),
				Args: map[string]any{"seq": ev.Seq},
			})
			stats.OpSlices++
		case EvQueueEnter, EvIssue, EvAddrReady, EvForward, EvPortStall, EvCacheAccess, EvComplete:
			out = append(out, chromeEvent{
				Name: instantName(ev), Cat: "pipe", Ph: "i",
				Ts: ev.Cycle, Pid: 0, Tid: laneOf(ev.Seq), S: "t",
				Args: map[string]any{"seq": ev.Seq},
			})
		case EvRecoveryDetect:
			recovStart[ev.Seq] = ev.Cycle
		case EvRecoveryCancel:
			out = append(out, chromeEvent{
				Name: "cancel", Cat: "recovery", Ph: "i",
				Ts: ev.Cycle, Pid: 0, Tid: recoveryTid, S: "t",
				Args: map[string]any{"seq": ev.Seq},
			})
		case EvRecoveryReplay:
			start, ok := recovStart[ev.Seq]
			if !ok {
				start = ev.Cycle
			}
			delete(recovStart, ev.Seq)
			dur := ev.Cycle - start + ev.Arg
			if dur < 1 {
				dur = 1
			}
			out = append(out, chromeEvent{
				Name: "recovery", Cat: "recovery", Ph: "X",
				Ts: start, Dur: dur, Pid: 0, Tid: recoveryTid,
				Args: map[string]any{"seq": ev.Seq, "penalty": ev.Arg},
			})
			stats.RecoverySpans++
		}
	}
	// Detections whose replay never happened (aborted run) surface as
	// instants so they are not silently lost; sorted for deterministic
	// output.
	orphans := make([]int64, 0, len(recovStart))
	for seq := range recovStart {
		orphans = append(orphans, seq)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, seq := range orphans {
		out = append(out, chromeEvent{
			Name: "detect (no replay)", Cat: "recovery", Ph: "i",
			Ts: recovStart[seq], Pid: 0, Tid: recoveryTid, S: "t",
			Args: map[string]any{"seq": seq},
		})
	}
	stats.Events = len(out) - 2 // metadata records excluded

	doc := struct {
		TraceEvents     []chromeEvent  `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData,omitempty"`
	}{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"format":    "1 simulated cycle = 1us",
			"generator": "repro/internal/obs",
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return stats, err
	}
	return stats, nil
}
