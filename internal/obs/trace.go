package obs

import (
	"fmt"
	"sort"
	"sync"
)

// EventKind enumerates the pipeline event taxonomy (DESIGN.md §9). The
// emitting subsystem is internal/cpu; the kinds mirror the stages a
// dynamic instruction moves through in the Table 4 machine.
type EventKind uint8

const (
	// EvDispatch: the op enters the ROB. Arg packs DispatchArg.
	EvDispatch EventKind = iota
	// EvQueueEnter: a memory op enters a steering queue. Arg is
	// QueueLSQ or QueueLVAQ.
	EvQueueEnter
	// EvIssue: the op wins a function unit (memory ops: the AGU slot).
	EvIssue
	// EvAddrReady: a memory op's effective address is generated.
	EvAddrReady
	// EvForward: a load is satisfied by store-to-load forwarding.
	EvForward
	// EvPortStall: a ready memory op could not obtain a cache port this
	// cycle. Arg is PoolL1 or PoolLVC.
	EvPortStall
	// EvCacheAccess: the op was granted a port and charged the
	// hierarchy. Arg packs CacheArg.
	EvCacheAccess
	// EvComplete: the op's result is available (loads: data returned;
	// stores: write buffered; ALU: executed).
	EvComplete
	// EvCommit: the op retires from the ROB head.
	EvCommit
	// EvRecoveryDetect: address translation exposed an ARPT steering
	// misprediction.
	EvRecoveryDetect
	// EvRecoveryCancel: the mispredicted op left its wrong queue.
	EvRecoveryCancel
	// EvRecoveryReplay: the op re-entered the correct queue. Arg is the
	// recovery penalty in cycles.
	EvRecoveryReplay

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"dispatch", "queue-enter", "issue", "addr-ready", "forward",
	"port-stall", "cache-access", "complete", "commit",
	"recovery-detect", "recovery-cancel", "recovery-replay",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Queue identifiers for EvQueueEnter args.
const (
	QueueLSQ  = 1
	QueueLVAQ = 2
)

// Port-pool identifiers for EvPortStall args.
const (
	PoolL1  = 1
	PoolLVC = 2
)

// Cache levels for CacheArg.
const (
	LevelFirst = 1 // L1 or LVC hit
	LevelL2    = 2 // first-level miss, L2 hit
	LevelMem   = 3 // missed to memory
)

// DispatchArg packs the op shape into an EvDispatch argument.
func DispatchArg(mem, load bool) int64 {
	arg := int64(0)
	if mem {
		arg |= 1
	}
	if load {
		arg |= 2
	}
	return arg
}

// DispatchArgParts unpacks a DispatchArg.
func DispatchArgParts(arg int64) (mem, load bool) {
	return arg&1 != 0, arg&2 != 0
}

// CacheArg packs an EvCacheAccess argument: which first-level cache,
// read or write, and the level that satisfied the access.
func CacheArg(lvc, write bool, level int) int64 {
	arg := int64(level & 3)
	if lvc {
		arg |= 4
	}
	if write {
		arg |= 8
	}
	return arg
}

// CacheArgParts unpacks a CacheArg.
func CacheArgParts(arg int64) (lvc, write bool, level int) {
	return arg&4 != 0, arg&8 != 0, int(arg & 3)
}

// Event is one cycle-stamped pipeline event. Seq is the dynamic
// instruction sequence number; Arg is kind-specific (see the kind
// constants).
type Event struct {
	Cycle int64
	Seq   int64
	Kind  EventKind
	Arg   int64
}

// Recovery reports whether the event belongs to the misprediction
// recovery protocol. Recovery events are rare and load-bearing (the
// Chrome exporter builds detect→replay spans from them, and the
// acceptance check compares span count against Result.Recoveries), so
// the Ring tracer retains them unconditionally.
func (e Event) Recovery() bool {
	return e.Kind == EvRecoveryDetect || e.Kind == EvRecoveryCancel || e.Kind == EvRecoveryReplay
}

// Tracer receives pipeline events. Implementations must tolerate the
// emission rate of a full simulation (several events per committed
// instruction). Emit is called from the simulation goroutine only, but
// implementations here lock anyway so one tracer could aggregate
// several concurrent runs.
type Tracer interface {
	Emit(Event)
}

// Nop is the no-op tracer: every Emit is discarded. The timing core
// recognizes Nop and strips it at construction, so a simulation built
// with WithTracer(obs.Nop{}) runs the identical uninstrumented path as
// one built with no tracer at all.
type Nop struct{}

// Emit discards the event.
func (Nop) Emit(Event) {}

// DefaultRingCap bounds a Ring tracer when the caller does not: 4 Mi
// events (~128 MB) comfortably holds a truncated workload's full
// pipeline timeline.
const DefaultRingCap = 4 << 20

type ringRec struct {
	ev Event
	n  uint64 // global emission ordinal, for stable merging
}

// Ring is the sampling tracer: a bounded buffer that keeps the most
// recent high-volume events (growing lazily up to its capacity), plus a
// side list that keeps every recovery-protocol event regardless of age
// (see Event.Recovery). Dropped reports how many old events were
// evicted.
type Ring struct {
	mu      sync.Mutex
	capa    int
	buf     []ringRec
	pos     int // next overwrite index once len(buf) == capa
	n       uint64
	recov   []ringRec
	dropped uint64
}

// NewRing builds a ring tracer holding the last cap high-volume events
// (cap <= 0 selects DefaultRingCap). Storage grows with use, so a short
// run never pays for the full capacity.
func NewRing(cap int) *Ring {
	if cap <= 0 {
		cap = DefaultRingCap
	}
	return &Ring{capa: cap}
}

// Emit records the event.
func (r *Ring) Emit(ev Event) {
	r.mu.Lock()
	rec := ringRec{ev: ev, n: r.n}
	r.n++
	switch {
	case ev.Recovery():
		r.recov = append(r.recov, rec)
	case len(r.buf) < r.capa:
		r.buf = append(r.buf, rec)
	default:
		r.buf[r.pos] = rec
		r.pos++
		if r.pos == len(r.buf) {
			r.pos = 0
		}
		r.dropped++
	}
	r.mu.Unlock()
}

// Dropped reports how many events were evicted from the ring.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len reports how many events Events would return.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recov) + len(r.buf)
}

// Events returns the retained events in emission order (ring contents
// merged with the always-retained recovery events).
func (r *Ring) Events() []Event {
	r.mu.Lock()
	recs := make([]ringRec, 0, len(r.buf)+len(r.recov))
	recs = append(recs, r.buf...)
	recs = append(recs, r.recov...)
	r.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].n < recs[j].n })
	out := make([]Event, len(recs))
	for i, rec := range recs {
		out[i] = rec.ev
	}
	return out
}
