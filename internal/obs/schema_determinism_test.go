package obs

import (
	"strings"
	"testing"
)

// Regression: validation stops at the first failure, and the property
// walk used to range over the schema's properties map — so a document
// with several invalid fields produced a different error message run
// to run. The walk is sorted now: the lexicographically first invalid
// property always wins.
func TestValidateJSONFirstErrorDeterministic(t *testing.T) {
	schema := []byte(`{
		"type": "object",
		"properties": {
			"alpha": {"type": "string"},
			"beta":  {"type": "string"},
			"gamma": {"type": "string"}
		}
	}`)
	doc := []byte(`{"alpha": 1, "beta": 2, "gamma": 3}`)
	for i := 0; i < 100; i++ {
		err := ValidateJSON(schema, doc)
		if err == nil {
			t.Fatal("invalid document validated")
		}
		if !strings.Contains(err.Error(), "$.alpha") {
			t.Fatalf("run %d: error %q, want the walk pinned at $.alpha", i, err)
		}
	}
}

// Regression companion: additionalProperties rejections walked the
// document's own map and had the same defect.
func TestValidateJSONAdditionalPropsDeterministic(t *testing.T) {
	schema := []byte(`{"type": "object", "additionalProperties": false}`)
	doc := []byte(`{"zeta": 1, "eta": 2, "theta": 3}`)
	for i := 0; i < 100; i++ {
		err := ValidateJSON(schema, doc)
		if err == nil {
			t.Fatal("undeclared properties validated")
		}
		if !strings.Contains(err.Error(), `"eta"`) {
			t.Fatalf("run %d: error %q, want the sorted-first property eta rejected", i, err)
		}
	}
}
