package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing uint64 metric. Handles are
// safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is a float64 metric that can go up and down (wall-clock
// seconds, rates, occupancies at a point in time).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the current value. Not atomic against concurrent Adds
// of the same gauge; the harness publishes each gauge from one
// goroutine.
func (g *Gauge) Add(d float64) { g.Set(g.Value() + d) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// A Hist is a sparse integer histogram (queue occupancies, latencies).
type Hist struct {
	mu     sync.Mutex
	counts map[int64]uint64
	sum    float64
	n      uint64
}

// Observe records one sample.
func (h *Hist) Observe(v int64) {
	h.mu.Lock()
	if h.counts == nil {
		h.counts = make(map[int64]uint64)
	}
	h.counts[v]++
	h.sum += float64(v)
	h.n++
	h.mu.Unlock()
}

// Count reports the number of samples.
func (h *Hist) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean reports the sample mean (0 when empty).
func (h *Hist) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// snapshot copies the histogram state in ascending bucket order.
func (h *Hist) snapshot() (buckets []Bucket, n uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	vals := make([]int64, 0, len(h.counts))
	for v := range h.counts {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	buckets = make([]Bucket, len(vals))
	for i, v := range vals {
		buckets[i] = Bucket{Value: v, Count: h.counts[v]}
	}
	return buckets, h.n, h.sum
}

// Metric types as they appear in snapshots and artifacts.
const (
	TypeCounter = "counter"
	TypeGauge   = "gauge"
	TypeHist    = "hist"
)

type entry struct {
	name   string
	labels Labels
	c      *Counter
	g      *Gauge
	h      *Hist
}

func (e *entry) typ() string {
	switch {
	case e.c != nil:
		return TypeCounter
	case e.g != nil:
		return TypeGauge
	default:
		return TypeHist
	}
}

// Registry is a concurrency-safe collection of named, labeled metrics.
// Handle getters are idempotent: the same (name, labels) pair always
// returns the same handle, so independent subsystems may bind to the
// same metric. Registering one name with two different types is a
// programmer error and panics.
type Registry struct {
	mu      sync.Mutex
	help    map[string]string
	types   map[string]string
	entries map[string]*entry
	order   []string // registration order of entry keys (stable snapshots)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		help:    make(map[string]string),
		types:   make(map[string]string),
		entries: make(map[string]*entry),
	}
}

func (r *Registry) get(name, help, typ string, labels Labels) *entry {
	key := name + labels.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.types[name]; ok && have != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, have, typ))
	}
	r.types[name] = typ
	if help != "" && r.help[name] == "" {
		r.help[name] = help
	}
	e, ok := r.entries[key]
	if !ok {
		e = &entry{name: name, labels: labels.clone()}
		switch typ {
		case TypeCounter:
			e.c = &Counter{}
		case TypeGauge:
			e.g = &Gauge{}
		case TypeHist:
			e.h = &Hist{}
		}
		r.entries[key] = e
		r.order = append(r.order, key)
	}
	return e
}

// Counter returns the counter handle for (name, labels), creating it on
// first use. help is recorded the first time it is non-empty.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.get(name, help, TypeCounter, labels).c
}

// Gauge returns the gauge handle for (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.get(name, help, TypeGauge, labels).g
}

// Hist returns the histogram handle for (name, labels).
func (r *Registry) Hist(name, help string, labels Labels) *Hist {
	return r.get(name, help, TypeHist, labels).h
}

// Len reports the number of registered (name, labels) series.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Bucket is one histogram bucket: Count samples equal to Value.
type Bucket struct {
	Value int64  `json:"value"`
	Count uint64 `json:"count"`
}

// Sample is one metric series at snapshot time.
type Sample struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Count, Sum and Buckets are set for histograms.
	Count   *uint64  `json:"count,omitempty"`
	Sum     *float64 `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures every registered series, sorted by name then label
// key, so renderings are deterministic regardless of registration or
// update order.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	entries := make([]*entry, len(keys))
	for i, k := range keys {
		entries[i] = r.entries[k]
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Type: e.typ(), Help: help[e.name], Labels: e.labels}
		switch {
		case e.c != nil:
			v := float64(e.c.Value())
			s.Value = &v
		case e.g != nil:
			v := e.g.Value()
			s.Value = &v
		case e.h != nil:
			buckets, n, sum := e.h.snapshot()
			s.Buckets = buckets
			s.Count = &n
			s.Sum = &sum
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return Labels(out[i].Labels).key() < Labels(out[j].Labels).key()
	})
	return out
}

// WriteText renders samples in a prometheus-exposition-like plain text
// form, one series per line.
func WriteText(w io.Writer, samples []Sample) error {
	lastName := ""
	for _, s := range samples {
		if s.Name != lastName && s.Help != "" {
			if _, err := fmt.Fprintf(w, "# %s: %s\n", s.Name, s.Help); err != nil {
				return err
			}
		}
		lastName = s.Name
		if _, err := io.WriteString(w, s.Name+labelText(s.Labels)); err != nil {
			return err
		}
		var err error
		switch s.Type {
		case TypeHist:
			var n uint64
			var sum float64
			if s.Count != nil {
				n = *s.Count
			}
			if s.Sum != nil {
				sum = *s.Sum
			}
			mean := 0.0
			if n > 0 {
				mean = sum / float64(n)
			}
			_, err = fmt.Fprintf(w, " count=%d mean=%.2f buckets=%d\n", n, mean, len(s.Buckets))
		default:
			var v float64
			if s.Value != nil {
				v = *s.Value
			}
			_, err = fmt.Fprintf(w, " %g\n", v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func labelText(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := "{"
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += k + "=" + labels[k]
	}
	return out + "}"
}

// importBuckets folds another histogram's buckets into h. Bucket
// values are integers, so the running sum stays exact under float64
// regardless of merge order (every partial sum is an integer far
// below 2^53) — merging a stored fragment reproduces the sum a live
// run would have accumulated, bit for bit.
func (h *Hist) importBuckets(buckets []Bucket) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts == nil {
		h.counts = make(map[int64]uint64)
	}
	for _, b := range buckets {
		h.counts[b.Value] += b.Count
		h.sum += float64(b.Value) * float64(b.Count)
		h.n += b.Count
	}
}

// ImportSamples merges a snapshot — typically a per-simulation metrics
// fragment loaded back from the artifact store — into the registry:
// counters add their value, gauges set it, histograms accumulate
// buckets. This is what makes a resumed campaign's metrics artifact
// identical to an uninterrupted run's: a result replayed from disk
// re-publishes exactly the samples its original simulation produced.
// Malformed samples return an error (nothing before them is rolled
// back); a name already registered under a different type panics,
// like the handle getters.
func (r *Registry) ImportSamples(samples []Sample) error {
	for _, s := range samples {
		labels := Labels(s.Labels)
		switch s.Type {
		case TypeCounter:
			if s.Value == nil {
				return fmt.Errorf("obs: counter sample %q has no value", s.Name)
			}
			if v := *s.Value; v < 0 || v != math.Trunc(v) {
				return fmt.Errorf("obs: counter sample %q value %v is not a whole non-negative number", s.Name, v)
			}
			//arlvet:allow obskey replayed artifact samples carry names that were literal constants when first registered
			r.Counter(s.Name, s.Help, labels).Add(uint64(*s.Value))
		case TypeGauge:
			if s.Value == nil {
				return fmt.Errorf("obs: gauge sample %q has no value", s.Name)
			}
			//arlvet:allow obskey replayed artifact samples carry names that were literal constants when first registered
			r.Gauge(s.Name, s.Help, labels).Set(*s.Value)
		case TypeHist:
			//arlvet:allow obskey replayed artifact samples carry names that were literal constants when first registered
			r.Hist(s.Name, s.Help, labels).importBuckets(s.Buckets)
		default:
			return fmt.Errorf("obs: sample %q has unknown type %q", s.Name, s.Type)
		}
	}
	return nil
}

// ArtifactSchema identifies the metrics artifact format; bump on any
// incompatible change together with metrics.schema.json.
const ArtifactSchema = "arl-metrics/v1"

// RunMeta describes the run that produced a metrics artifact.
type RunMeta struct {
	Cmd         string   `json:"cmd"`
	Args        []string `json:"args,omitempty"`
	GoVersion   string   `json:"go_version"`
	StartedAt   string   `json:"started_at,omitempty"` // RFC3339
	WallSeconds float64  `json:"wall_seconds"`
}

// Artifact is the machine-readable per-run metrics file
// (results/*.metrics.json). It validates against the embedded schema
// (see ValidateMetrics).
type Artifact struct {
	Schema  string   `json:"schema"`
	Run     RunMeta  `json:"run"`
	Metrics []Sample `json:"metrics"`
}

// Artifact snapshots the registry into an artifact with the given run
// metadata.
func (r *Registry) Artifact(meta RunMeta) Artifact {
	return Artifact{Schema: ArtifactSchema, Run: meta, Metrics: r.Snapshot()}
}

// EncodeArtifact writes the artifact as indented JSON.
func EncodeArtifact(w io.Writer, a Artifact) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}
