package obs

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
)

// sortedKeys returns m's keys in ascending order, pinning every
// first-error-wins walk below to a deterministic visit order.
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// The metrics artifact schema ships inside the binary so arlmetrics and
// the CI smoke check validate against exactly the format this package
// writes. The checked-in file is the contract; TestArtifactMatchesSchema
// keeps writer and schema in sync.
//
//go:embed metrics.schema.json
var metricsSchema []byte

// MetricsSchemaJSON returns the embedded metrics artifact JSON schema.
func MetricsSchemaJSON() []byte {
	return append([]byte(nil), metricsSchema...)
}

// ValidateMetrics checks a serialized metrics artifact against the
// embedded schema.
func ValidateMetrics(doc []byte) error {
	return ValidateJSON(metricsSchema, doc)
}

// ValidateJSON validates doc against schema, a JSON Schema using the
// subset of draft-07 this repo needs: type, enum, required, properties,
// additionalProperties (bool or schema), items, pattern, minimum,
// minItems. Unknown keywords are ignored, as the spec prescribes.
func ValidateJSON(schema, doc []byte) error {
	var s any
	if err := json.Unmarshal(schema, &s); err != nil {
		return fmt.Errorf("obs: schema is not valid JSON: %w", err)
	}
	var d any
	if err := json.Unmarshal(doc, &d); err != nil {
		return fmt.Errorf("obs: document is not valid JSON: %w", err)
	}
	return validate(s, d, "$")
}

func schemaErr(path, format string, args ...any) error {
	return fmt.Errorf("obs: schema violation at %s: %s", path, fmt.Sprintf(format, args...))
}

// jsonType names the JSON-schema type of a decoded value; integers are
// reported as "integer" and also satisfy "number".
func jsonType(v any) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case string:
		return "string"
	case float64:
		if t == math.Trunc(t) && !math.IsInf(t, 0) {
			return "integer"
		}
		return "number"
	case []any:
		return "array"
	case map[string]any:
		return "object"
	}
	return "unknown"
}

func typeMatches(want string, v any) bool {
	got := jsonType(v)
	if want == "number" && got == "integer" {
		return true
	}
	return want == got
}

func validate(schema, doc any, path string) error {
	s, ok := schema.(map[string]any)
	if !ok {
		// A boolean schema: true accepts everything, false nothing.
		if b, isBool := schema.(bool); isBool {
			if !b {
				return schemaErr(path, "schema forbids any value here")
			}
			return nil
		}
		return schemaErr(path, "unsupported schema node %T", schema)
	}

	if t, ok := s["type"]; ok {
		switch want := t.(type) {
		case string:
			if !typeMatches(want, doc) {
				return schemaErr(path, "want type %s, got %s", want, jsonType(doc))
			}
		case []any:
			matched := false
			for _, w := range want {
				if ws, ok := w.(string); ok && typeMatches(ws, doc) {
					matched = true
					break
				}
			}
			if !matched {
				return schemaErr(path, "type %v does not admit %s", want, jsonType(doc))
			}
		}
	}

	if enum, ok := s["enum"].([]any); ok {
		matched := false
		for _, e := range enum {
			if eq, _ := json.Marshal(e); string(eq) == mustMarshal(doc) {
				matched = true
				break
			}
		}
		if !matched {
			return schemaErr(path, "value %s not in enum", mustMarshal(doc))
		}
	}

	if pat, ok := s["pattern"].(string); ok {
		if str, isStr := doc.(string); isStr {
			re, err := regexp.Compile(pat)
			if err != nil {
				return schemaErr(path, "bad pattern %q: %v", pat, err)
			}
			if !re.MatchString(str) {
				return schemaErr(path, "%q does not match pattern %q", str, pat)
			}
		}
	}

	if min, ok := s["minimum"].(float64); ok {
		if num, isNum := doc.(float64); isNum && num < min {
			return schemaErr(path, "%g below minimum %g", num, min)
		}
	}

	if obj, isObj := doc.(map[string]any); isObj {
		props, _ := s["properties"].(map[string]any)
		if req, ok := s["required"].([]any); ok {
			for _, r := range req {
				name, _ := r.(string)
				if _, present := obj[name]; !present {
					return schemaErr(path, "missing required property %q", name)
				}
			}
		}
		// Walk properties in sorted order: validation stops at the
		// first failure, so iterating the map directly made which
		// error gets reported depend on map iteration order.
		for _, name := range sortedKeys(props) {
			if v, present := obj[name]; present {
				if err := validate(props[name], v, path+"."+name); err != nil {
					return err
				}
			}
		}
		if ap, ok := s["additionalProperties"]; ok {
			for _, name := range sortedKeys(obj) {
				if _, declared := props[name]; declared {
					continue
				}
				switch apv := ap.(type) {
				case bool:
					if !apv {
						return schemaErr(path, "unexpected property %q", name)
					}
				default:
					if err := validate(ap, obj[name], path+"."+name); err != nil {
						return err
					}
				}
			}
		}
	}

	if arr, isArr := doc.([]any); isArr {
		if minItems, ok := s["minItems"].(float64); ok && float64(len(arr)) < minItems {
			return schemaErr(path, "%d items, want at least %g", len(arr), minItems)
		}
		if items, ok := s["items"]; ok {
			for i, v := range arr {
				if err := validate(items, v, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// mustMarshal renders v compactly for error messages and enum
// comparison; decoded JSON values always marshal.
func mustMarshal(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return strings.ReplaceAll(fmt.Sprint(v), "\n", " ")
	}
	return string(b)
}
