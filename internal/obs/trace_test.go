package obs

import "testing"

func TestRingKeepsRecentAndAllRecovery(t *testing.T) {
	r := NewRing(4)
	// 10 high-volume events; only the last 4 survive.
	for i := 0; i < 10; i++ {
		r.Emit(Event{Cycle: int64(i), Seq: int64(i), Kind: EvCommit})
	}
	// Recovery events interleaved early would also survive.
	r.Emit(Event{Cycle: 100, Seq: 3, Kind: EvRecoveryDetect})
	r.Emit(Event{Cycle: 101, Seq: 3, Kind: EvRecoveryCancel})
	r.Emit(Event{Cycle: 102, Seq: 3, Kind: EvRecoveryReplay, Arg: 4})

	evs := r.Events()
	if len(evs) != 7 {
		t.Fatalf("len = %d, want 7 (4 ring + 3 recovery)", len(evs))
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	// Emission order preserved across the merge.
	wantCycles := []int64{6, 7, 8, 9, 100, 101, 102}
	for i, ev := range evs {
		if ev.Cycle != wantCycles[i] {
			t.Fatalf("events[%d].Cycle = %d, want %d (%v)", i, ev.Cycle, wantCycles[i], evs)
		}
	}
}

func TestRingGrowsLazily(t *testing.T) {
	r := NewRing(1 << 20)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Cycle: int64(i), Kind: EvDispatch})
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	if got := len(r.Events()); got != 10 {
		t.Fatalf("Events len = %d, want 10", got)
	}
}

func TestRecoveryEventsNeverEvicted(t *testing.T) {
	r := NewRing(2)
	r.Emit(Event{Cycle: 1, Seq: 7, Kind: EvRecoveryDetect})
	for i := 0; i < 100; i++ {
		r.Emit(Event{Cycle: int64(2 + i), Seq: int64(i), Kind: EvCacheAccess})
	}
	r.Emit(Event{Cycle: 200, Seq: 7, Kind: EvRecoveryReplay, Arg: 1})
	got := 0
	for _, ev := range r.Events() {
		if ev.Recovery() {
			got++
		}
	}
	if got != 2 {
		t.Fatalf("recovery events retained = %d, want 2", got)
	}
}

func TestArgPacking(t *testing.T) {
	if mem, load := DispatchArgParts(DispatchArg(true, false)); !mem || load {
		t.Error("DispatchArg(store) round trip")
	}
	if mem, load := DispatchArgParts(DispatchArg(true, true)); !mem || !load {
		t.Error("DispatchArg(load) round trip")
	}
	lvc, write, level := CacheArgParts(CacheArg(true, true, LevelL2))
	if !lvc || !write || level != LevelL2 {
		t.Errorf("CacheArg round trip: lvc=%v write=%v level=%d", lvc, write, level)
	}
	lvc, write, level = CacheArgParts(CacheArg(false, false, LevelMem))
	if lvc || write || level != LevelMem {
		t.Errorf("CacheArg round trip: lvc=%v write=%v level=%d", lvc, write, level)
	}
}

func TestEventKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := EventKind(0); k < numEventKinds; k++ {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
}

func TestNopTracerImplementsTracer(t *testing.T) {
	var tr Tracer = Nop{}
	tr.Emit(Event{Cycle: 1, Kind: EvDispatch}) // must not panic
}
