package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// syntheticEvents is a small, fully deterministic pipeline episode:
// three ops (an ALU op, a load that misses to L2, and a store that is
// mispredicted and recovered), exercising every exporter branch.
func syntheticEvents() []Event {
	return []Event{
		{Cycle: 1, Seq: 0, Kind: EvDispatch, Arg: DispatchArg(false, false)},
		{Cycle: 1, Seq: 1, Kind: EvDispatch, Arg: DispatchArg(true, true)},
		{Cycle: 1, Seq: 1, Kind: EvQueueEnter, Arg: QueueLSQ},
		{Cycle: 1, Seq: 2, Kind: EvDispatch, Arg: DispatchArg(true, false)},
		{Cycle: 1, Seq: 2, Kind: EvQueueEnter, Arg: QueueLSQ},
		{Cycle: 2, Seq: 0, Kind: EvIssue},
		{Cycle: 2, Seq: 1, Kind: EvIssue},
		{Cycle: 3, Seq: 0, Kind: EvComplete},
		{Cycle: 3, Seq: 1, Kind: EvAddrReady},
		{Cycle: 3, Seq: 2, Kind: EvIssue},
		{Cycle: 4, Seq: 1, Kind: EvPortStall, Arg: PoolL1},
		{Cycle: 4, Seq: 2, Kind: EvAddrReady},
		{Cycle: 4, Seq: 2, Kind: EvRecoveryDetect},
		{Cycle: 4, Seq: 2, Kind: EvRecoveryCancel},
		{Cycle: 4, Seq: 2, Kind: EvRecoveryReplay, Arg: 4},
		{Cycle: 4, Seq: 2, Kind: EvQueueEnter, Arg: QueueLVAQ},
		{Cycle: 5, Seq: 1, Kind: EvCacheAccess, Arg: CacheArg(false, false, LevelL2)},
		{Cycle: 8, Seq: 2, Kind: EvCacheAccess, Arg: CacheArg(true, true, LevelFirst)},
		{Cycle: 8, Seq: 2, Kind: EvComplete},
		{Cycle: 19, Seq: 1, Kind: EvComplete},
		{Cycle: 20, Seq: 0, Kind: EvCommit},
		{Cycle: 20, Seq: 1, Kind: EvCommit},
		{Cycle: 21, Seq: 2, Kind: EvCommit},
	}
}

// TestChromeTraceGolden pins the exact exporter output. Regenerate with
//
//	go test ./internal/obs -run TestChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	stats, err := WriteChromeTrace(&buf, syntheticEvents(), ChromeOptions{
		ProcessName: "golden (3+3)", OpLanes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OpSlices != 3 || stats.RecoverySpans != 1 {
		t.Fatalf("stats = %+v, want 3 op slices and 1 recovery span", stats)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exporter output diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			buf.String(), want)
	}
}

// TestChromeTraceWellFormed checks the structural contract every
// consumer (chrome://tracing, Perfetto) relies on, independent of the
// golden bytes.
func TestChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteChromeTrace(&buf, syntheticEvents(), ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter did not produce valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event %d missing ph: %v", i, ev)
		}
		phases[ph] = true
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event %d missing name: %v", i, ev)
		}
		if ph == "X" {
			if dur, ok := ev["dur"].(float64); !ok || dur < 1 {
				t.Fatalf("complete event %d has bad dur: %v", i, ev)
			}
		}
	}
	for _, want := range []string{"M", "X", "i"} {
		if !phases[want] {
			t.Errorf("no %q phase events emitted", want)
		}
	}
}

// TestChromeTraceRecoverySpansSurviveRingEviction: even when the ring
// evicts everything else, recovery spans still pair up.
func TestChromeTraceRecoverySpansSurviveRingEviction(t *testing.T) {
	r := NewRing(2)
	r.Emit(Event{Cycle: 10, Seq: 5, Kind: EvRecoveryDetect})
	for i := 0; i < 50; i++ {
		r.Emit(Event{Cycle: int64(11 + i), Seq: int64(100 + i), Kind: EvCommit})
	}
	r.Emit(Event{Cycle: 70, Seq: 5, Kind: EvRecoveryReplay, Arg: 8})
	var buf bytes.Buffer
	stats, err := WriteChromeTrace(&buf, r.Events(), ChromeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecoverySpans != 1 {
		t.Fatalf("recovery spans = %d, want 1", stats.RecoverySpans)
	}
}
