// Package obs is the simulator's structured observability layer: a
// typed metrics registry and a cycle-event tracer, both designed to be
// threaded through the timing core and the experiment harness without
// taxing uninstrumented runs.
//
// The two halves answer the two questions the paper's evaluation turns
// on:
//
//   - The Registry answers "how much": named, labeled Counter / Gauge /
//     Hist handles replace the ad-hoc counter fields scattered across
//     internal/cpu, internal/cache, internal/core and internal/tlb as
//     the reporting surface. A Snapshot renders to text, to JSON, and to
//     the machine-readable results/*.metrics.json artifact every
//     reporting CLI emits (validated against the embedded JSON schema,
//     see ValidateMetrics).
//
//   - The Tracer answers "where the cycles went": subsystems emit
//     per-op pipeline Events (dispatch, queue enter, issue, cache
//     access, port stall, misprediction detect/cancel/replay, ...)
//     that the Ring tracer samples and WriteChromeTrace exports as a
//     Chrome trace-event / Perfetto JSON timeline, so a single
//     workload's pipeline opens in chrome://tracing or ui.perfetto.dev.
//
// Instrumentation is opt-in at construction time (the unified
// New(Config, ...Option) constructors take WithTracer / WithRegistry
// options); a simulation built without them runs the exact
// uninstrumented code path, which the BenchmarkSimNoObs /
// BenchmarkSimNopObs guard pins at <2% overhead.
package obs

import "sort"

// Labels attaches dimensions to a metric ("workload", "config",
// "cache", ...). A nil map is the empty label set. Label maps are
// copied at registration, so callers may reuse and mutate theirs.
type Labels map[string]string

// clone copies l so registry entries own their label sets.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// With returns a copy of l extended (or overridden) by extra.
func (l Labels) With(extra Labels) Labels {
	out := make(Labels, len(l)+len(extra))
	for k, v := range l {
		out[k] = v
	}
	for k, v := range extra {
		out[k] = v
	}
	return out
}

// key serializes the label set in sorted order for map identity.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := make([]byte, 0, 32)
	for _, k := range keys {
		b = append(b, 0xff)
		b = append(b, k...)
		b = append(b, '=')
		b = append(b, l[k]...)
	}
	return string(b)
}
