// Package cache models the set-associative, write-back, write-allocate
// caches of the paper's memory hierarchy as a composable partitioned
// first level (Hierarchy: N steered partitions over one shared L2).
// The paper's configuration — a multi-ported L1 data cache plus the
// small direct-mapped Local Variable Cache (LVC), region-steered — is
// the two-partition instance. Timing (latencies, per-cycle port
// arbitration) belongs to the pipeline model in internal/cpu; this
// package answers hit/miss and tracks contents and statistics.
package cache

import (
	"fmt"

	"repro/internal/obs"
)

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Assoc      int // 1 = direct mapped
	HitLatency int // cycles, used by the timing model
	Ports      int // simultaneous accesses per cycle, used by the timing model
}

// Validate checks structural sanity.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes || lines%c.Assoc != 0 {
		return fmt.Errorf("cache %q: size %d not divisible into %d-way sets of %d-byte lines",
			c.Name, c.SizeBytes, c.Assoc, c.LineBytes)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: %d sets is not a power of two", c.Name, sets)
	}
	if c.Ports <= 0 {
		return fmt.Errorf("cache %q: %d ports", c.Name, c.Ports)
	}
	if c.HitLatency <= 0 {
		return fmt.Errorf("cache %q: %d-cycle hit latency", c.Name, c.HitLatency)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// HitRate reports hits/accesses in [0,1].
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Publish copies the counters into r under the given labels. The caller
// labels which cache this is (conventionally labels["cache"]); call it
// once when a run finishes.
func (s Stats) Publish(r *obs.Registry, labels obs.Labels) {
	if r == nil {
		return
	}
	r.Counter("cache_accesses_total", "cache accesses", labels).Add(s.Accesses)
	r.Counter("cache_hits_total", "cache hits", labels).Add(s.Hits)
	r.Counter("cache_misses_total", "cache misses", labels).Add(s.Misses)
	r.Counter("cache_writebacks_total", "dirty lines evicted toward the next level", labels).Add(s.Writebacks)
}

type line struct {
	tag   uint32
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is one cache instance.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint32
	clock    uint64
	stats    Stats
}

// New builds a cache; the configuration must validate.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / cfg.LineBytes / cfg.Assoc
	c := &Cache{cfg: cfg, sets: make([][]line, nsets), setMask: uint32(nsets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.setShift++
	}
	return c, nil
}

// Config reports the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats reports the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Access performs a read or write of one address. It returns whether
// the access hit, and whether the fill evicted a dirty line (a
// writeback toward the next level). Writes allocate on miss.
func (c *Cache) Access(addr uint32, write bool) (hit, writeback bool) {
	c.clock++
	c.stats.Accesses++
	setIdx := (addr >> c.setShift) & c.setMask
	tag := addr >> c.setShift >> log2(c.setMask+1)
	set := c.sets[setIdx]

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stats.Hits++
			set[i].used = c.clock
			if write {
				set[i].dirty = true
			}
			return true, false
		}
	}
	c.stats.Misses++
	// Fill: choose an invalid way, else the LRU way.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	writeback = set[victim].valid && set[victim].dirty
	if writeback {
		c.stats.Writebacks++
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, used: c.clock}
	return false, writeback
}

// Probe reports whether addr is present without touching LRU state or
// statistics.
func (c *Cache) Probe(addr uint32) bool {
	setIdx := (addr >> c.setShift) & c.setMask
	tag := addr >> c.setShift >> log2(c.setMask+1)
	for _, l := range c.sets[setIdx] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all lines and reports how many were dirty.
func (c *Cache) Flush() int {
	dirty := 0
	for i := range c.sets {
		for j := range c.sets[i] {
			if c.sets[i][j].valid && c.sets[i][j].dirty {
				dirty++
			}
			c.sets[i][j] = line{}
		}
	}
	return dirty
}

func log2(v uint32) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Table 4 configurations.

// L1Config is the paper's primary data cache: 64 KB, 2-way, 32-byte
// lines, with the given port count and hit latency.
func L1Config(ports, latency int) Config {
	return Config{Name: "L1D", SizeBytes: 64 << 10, LineBytes: 32, Assoc: 2,
		HitLatency: latency, Ports: ports}
}

// L2Config is the 512 KB 4-way second-level cache (12-cycle access).
func L2Config() Config {
	return Config{Name: "L2", SizeBytes: 512 << 10, LineBytes: 64, Assoc: 4,
		HitLatency: 12, Ports: 1}
}

// LVCConfig is the 4 KB direct-mapped, 1-cycle Local Variable Cache.
func LVCConfig(ports int) Config {
	return Config{Name: "LVC", SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1,
		HitLatency: 1, Ports: ports}
}
