package cache

import (
	"testing"
	"testing/quick"
)

// mustNew is a test helper; library code constructs caches with New
// and propagates the error.
func mustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func small() *Cache {
	// 4 sets x 2 ways x 16-byte lines = 128 bytes.
	return mustNew(Config{Name: "t", SizeBytes: 128, LineBytes: 16, Assoc: 2,
		HitLatency: 1, Ports: 1})
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if hit, _ := c.Access(0x1000, false); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Error("second access missed")
	}
	if hit, _ := c.Access(0x100C, false); !hit {
		t.Error("same-line access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSetConflictAndLRU(t *testing.T) {
	c := small()
	// Three addresses mapping to set 0 (stride = 4 sets * 16 bytes).
	a, b, d := uint32(0x0000), uint32(0x0040), uint32(0x0080)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // evicts b (LRU)
	if !c.Probe(a) {
		t.Error("a evicted, want b")
	}
	if c.Probe(b) {
		t.Error("b still present")
	}
	if !c.Probe(d) {
		t.Error("d not filled")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := small()
	a, b, d := uint32(0x0000), uint32(0x0040), uint32(0x0080)
	c.Access(a, true) // dirty
	c.Access(b, false)
	if _, wb := c.Access(d, false); !wb {
		t.Error("evicting dirty line did not write back")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestWriteAllocate(t *testing.T) {
	c := small()
	if hit, _ := c.Access(0x2000, true); hit {
		t.Error("cold write hit")
	}
	if hit, _ := c.Access(0x2000, false); !hit {
		t.Error("write did not allocate")
	}
}

func TestFlush(t *testing.T) {
	c := small()
	c.Access(0x0, true)
	c.Access(0x40, false)
	if dirty := c.Flush(); dirty != 1 {
		t.Errorf("flush reported %d dirty lines, want 1", dirty)
	}
	if c.Probe(0x0) || c.Probe(0x40) {
		t.Error("lines survive flush")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "b1", SizeBytes: 0, LineBytes: 16, Assoc: 1, HitLatency: 1, Ports: 1},
		{Name: "b2", SizeBytes: 128, LineBytes: 24, Assoc: 1, HitLatency: 1, Ports: 1}, // line not pow2
		{Name: "b3", SizeBytes: 96, LineBytes: 16, Assoc: 2, HitLatency: 1, Ports: 1},  // 3 sets
		{Name: "b4", SizeBytes: 128, LineBytes: 16, Assoc: 3, HitLatency: 1, Ports: 1}, // 8/3 sets
		{Name: "b5", SizeBytes: 128, LineBytes: 16, Assoc: 0, HitLatency: 1, Ports: 1},
		{Name: "b6", SizeBytes: 128, LineBytes: 16, Assoc: 2, HitLatency: 1, Ports: 0},  // portless
		{Name: "b7", SizeBytes: 128, LineBytes: 16, Assoc: 2, HitLatency: 0, Ports: 1},  // free hits
		{Name: "b8", SizeBytes: 128, LineBytes: 16, Assoc: 2, HitLatency: 1, Ports: -1}, // negative ports
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q validated", cfg.Name)
		}
	}
	good := []Config{L1Config(2, 2), L2Config(), LVCConfig(2)}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %q rejected: %v", cfg.Name, err)
		}
	}
}

func TestPaperGeometries(t *testing.T) {
	l1 := mustNew(L1Config(2, 2))
	if got := l1.Config().SizeBytes; got != 64<<10 {
		t.Errorf("L1 size = %d", got)
	}
	lvc := mustNew(LVCConfig(2))
	if lvc.Config().Assoc != 1 || lvc.Config().SizeBytes != 4<<10 {
		t.Errorf("LVC geometry = %+v", lvc.Config())
	}
}

// Property: an immediate re-access of any address hits (temporal
// locality invariant), regardless of the preceding access pattern.
func TestReaccessHitsProperty(t *testing.T) {
	f := func(warm []uint32, addr uint32) bool {
		c := small()
		for _, a := range warm {
			c.Access(a, a%3 == 0)
		}
		c.Access(addr, false)
		hit, _ := c.Access(addr, false)
		return hit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hits+misses == accesses under arbitrary traffic.
func TestStatsConservationProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := small()
		for _, a := range addrs {
			c.Access(a, a&1 == 1)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses && s.Accesses == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a direct-mapped cache of S sets never holds two addresses
// with the same set index but different tags at once.
func TestDirectMappedExclusionProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		c := mustNew(Config{Name: "dm", SizeBytes: 64, LineBytes: 16, Assoc: 1,
			HitLatency: 1, Ports: 1})
		c.Access(a, false)
		c.Access(b, false)
		sameSet := (a>>4)&3 == (b>>4)&3
		sameLine := a>>4 == b>>4
		if sameSet && !sameLine {
			return !c.Probe(a) && c.Probe(b)
		}
		return c.Probe(a) && c.Probe(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
