package cache

import (
	"fmt"

	"repro/internal/core"
)

// PartitionConfig describes one first-level partition: a plain cache
// Config (geometry, ports, hit latency) under a partition name. The
// paper's L1D/LVC pair is the two-partition instance; the Bicameral
// Cache's pattern split is another.
type PartitionConfig = Config

// Steer picks the first-level partition index for one access. A
// predicate must be a pure function of its argument: the simulator
// calls it once per granted access and replays must reproduce the
// same sequence. Out-of-range indices are clamped to partition 0.
type Steer func(core.AccessInfo) int

// Steering policy names. NewSteer resolves them to predicates.
const (
	// SteerRegion reproduces the paper's split exactly: accesses whose
	// actual region is stack go to partition 1 (the LVC), everything
	// else to partition 0. Requires at least two partitions.
	SteerRegion = "region"
	// SteerPattern is the Bicameral-style access-pattern split:
	// "regular" references — addresses manifest in the addressing mode,
	// or floating-point values (strided array traffic) — go to
	// partition 1, irregular ones to partition 0.
	SteerPattern = "pattern"
	// SteerPCHash spreads accesses across all partitions by a hash of
	// the static instruction index (the trace's PC surrogate).
	SteerPCHash = "pchash"
	// SteerNone sends everything to partition 0 — the unified cache.
	SteerNone = "none"
)

// SteerPolicies lists the built-in policy names NewSteer accepts.
var SteerPolicies = []string{SteerRegion, SteerPattern, SteerPCHash, SteerNone}

// NewSteer resolves a policy name to a predicate over nparts
// partitions. Policies that split two ways (region, pattern) require
// nparts >= 2; pchash uses all partitions; none works with any count.
func NewSteer(policy string, nparts int) (Steer, error) {
	if nparts <= 0 {
		return nil, fmt.Errorf("cache: steering over %d partitions", nparts)
	}
	switch policy {
	case SteerNone:
		return func(core.AccessInfo) int { return 0 }, nil
	case SteerRegion:
		if nparts < 2 {
			return nil, fmt.Errorf("cache: %s steering needs at least 2 partitions, have %d", policy, nparts)
		}
		return func(a core.AccessInfo) int {
			if a.Stack {
				return 1
			}
			return 0
		}, nil
	case SteerPattern:
		if nparts < 2 {
			return nil, fmt.Errorf("cache: %s steering needs at least 2 partitions, have %d", policy, nparts)
		}
		return func(a core.AccessInfo) int {
			if a.EarlyAddr || a.IsFP {
				return 1
			}
			return 0
		}, nil
	case SteerPCHash:
		n := uint32(nparts)
		return func(a core.AccessInfo) int {
			// Fibonacci hashing of the static index: cheap, stateless,
			// and well spread even for the small dense index spaces of
			// the workloads.
			return int(uint32(a.Index) * 2654435761 % n)
		}, nil
	default:
		return nil, fmt.Errorf("cache: unknown steering policy %q (have %v)", policy, SteerPolicies)
	}
}

// Hierarchy levels, as reported by Hierarchy.Access.
const (
	LevelFirst = iota // satisfied by the addressed partition
	LevelL2           // missed the partition, hit the shared L2
	LevelMem          // missed both; filled from memory
)

// HierarchyConfig assembles a first-level partitioned cache in front
// of one shared L2.
type HierarchyConfig struct {
	// Partitions are the first-level caches, in partition order. At
	// least one is required; every config must validate.
	Partitions []PartitionConfig
	// L2 is the shared second level; the zero value means the paper's
	// L2Config.
	L2 Config
	// Steer picks the partition per access; nil means SteerNone.
	Steer Steer
}

// Hierarchy is a first-level cache split into N steered partitions
// backed by one shared L2. Timing (latencies, per-cycle port
// arbitration) stays with the pipeline model, exactly as for a single
// Cache; the hierarchy answers hit levels and tracks per-partition
// statistics.
type Hierarchy struct {
	parts []*Cache
	l2    *Cache
	steer Steer
}

// NewHierarchy builds the partitioned hierarchy; every partition
// configuration (and the L2) must validate.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if len(cfg.Partitions) == 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one partition")
	}
	h := &Hierarchy{parts: make([]*Cache, len(cfg.Partitions)), steer: cfg.Steer}
	for i, pc := range cfg.Partitions {
		c, err := New(pc)
		if err != nil {
			return nil, fmt.Errorf("cache: partition %d: %w", i, err)
		}
		h.parts[i] = c
	}
	l2cfg := cfg.L2
	if l2cfg == (Config{}) {
		l2cfg = L2Config()
	}
	l2, err := New(l2cfg)
	if err != nil {
		return nil, fmt.Errorf("cache: L2: %w", err)
	}
	h.l2 = l2
	if h.steer == nil {
		h.steer, _ = NewSteer(SteerNone, len(h.parts))
	}
	return h, nil
}

// NumPartitions reports the first-level partition count.
func (h *Hierarchy) NumPartitions() int { return len(h.parts) }

// Partition returns the i-th first-level cache.
func (h *Hierarchy) Partition(i int) *Cache { return h.parts[i] }

// L2 returns the shared second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Steer picks the partition for one access, clamping a misbehaving
// predicate's out-of-range answer to partition 0.
func (h *Hierarchy) Steer(a core.AccessInfo) int {
	pi := h.steer(a)
	if pi < 0 || pi >= len(h.parts) {
		return 0
	}
	return pi
}

// Access charges partition pi with one access and, on a first-level
// miss, the shared L2. It reports the level that satisfied the access
// (LevelFirst, LevelL2 or LevelMem) — the same charging order the
// fixed L1/LVC/L2 trio used, so a two-partition region-steered
// hierarchy is access-for-access identical to it.
func (h *Hierarchy) Access(pi int, addr uint32, write bool) int {
	if hit, _ := h.parts[pi].Access(addr, write); hit {
		return LevelFirst
	}
	if hit, _ := h.l2.Access(addr, write); hit {
		return LevelL2
	}
	return LevelMem
}
