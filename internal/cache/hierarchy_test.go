package cache

import (
	"testing"

	"repro/internal/core"
)

// splitmix64 is the seeded stream generator for the property tests:
// deterministic, well-mixed, no global rand state.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4b74f9a57f4b7
	return z ^ (z >> 31)
}

// TestHierarchyMatchesSeparateCaches is the refactor's load-bearing
// property: a 2-partition region-steered Hierarchy must be
// access-for-access identical — hit/miss, writebacks, LRU victim
// choice, final statistics — to the separate L1Config/LVCConfig caches
// the simulator used to instantiate directly.
func TestHierarchyMatchesSeparateCaches(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		steer, err := NewSteer(SteerRegion, 2)
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHierarchy(HierarchyConfig{
			Partitions: []PartitionConfig{L1Config(2, 2), LVCConfig(2)},
			Steer:      steer,
		})
		if err != nil {
			t.Fatal(err)
		}
		l1 := mustNew(L1Config(2, 2))
		lvc := mustNew(LVCConfig(2))
		l2 := mustNew(L2Config())

		rng := splitmix64(seed)
		for i := 0; i < 20000; i++ {
			r := rng.next()
			// Small address spaces so both caches see real conflict
			// misses and dirty evictions; stack addresses high, heap low,
			// matching the paper's layout.
			stack := r&1 == 1
			var addr uint32
			if stack {
				addr = 0x7fff0000 | uint32(r>>8)&0x3fff
			} else {
				addr = 0x10000000 | uint32(r>>8)&0x1ffff
			}
			write := r&2 == 2
			info := core.AccessInfo{Addr: addr, Stack: stack}

			pi := h.Steer(info)
			wantPi := 0
			if stack {
				wantPi = 1
			}
			if pi != wantPi {
				t.Fatalf("seed %d access %d: steered to %d, want %d", seed, i, pi, wantPi)
			}

			// Reference model: the fixed trio's charging order.
			var refFirst *Cache
			if stack {
				refFirst = lvc
			} else {
				refFirst = l1
			}
			refHit, refWB := refFirst.Access(addr, write)
			refLevel := LevelFirst
			if !refHit {
				l2Hit, _ := l2.Access(addr, write)
				if l2Hit {
					refLevel = LevelL2
				} else {
					refLevel = LevelMem
				}
			}

			level := h.Access(pi, addr, write)
			if level != refLevel {
				t.Fatalf("seed %d access %d (addr %#x write %v): level %d, want %d",
					seed, i, addr, write, level, refLevel)
			}
			part := h.Partition(pi)
			if got := part.Stats(); got.Writebacks != refFirst.Stats().Writebacks {
				t.Fatalf("seed %d access %d: partition writebacks %d, want %d (wb=%v)",
					seed, i, got.Writebacks, refFirst.Stats().Writebacks, refWB)
			}
			// LRU/victim state must track exactly: probe the address the
			// reference just filled or hit.
			if part.Probe(addr) != refFirst.Probe(addr) {
				t.Fatalf("seed %d access %d: presence of %#x diverged", seed, i, addr)
			}
		}

		if h.Partition(0).Stats() != l1.Stats() {
			t.Errorf("seed %d: partition 0 stats %+v, want %+v", seed, h.Partition(0).Stats(), l1.Stats())
		}
		if h.Partition(1).Stats() != lvc.Stats() {
			t.Errorf("seed %d: partition 1 stats %+v, want %+v", seed, h.Partition(1).Stats(), lvc.Stats())
		}
		if h.L2().Stats() != l2.Stats() {
			t.Errorf("seed %d: L2 stats %+v, want %+v", seed, h.L2().Stats(), l2.Stats())
		}
	}
}

func TestNewSteerPolicies(t *testing.T) {
	cases := []struct {
		policy string
		nparts int
		ok     bool
	}{
		{SteerRegion, 2, true},
		{SteerRegion, 1, false},
		{SteerPattern, 2, true},
		{SteerPattern, 1, false},
		{SteerPCHash, 1, true},
		{SteerPCHash, 4, true},
		{SteerNone, 1, true},
		{SteerNone, 3, true},
		{"bogus", 2, false},
		{SteerNone, 0, false},
	}
	for _, c := range cases {
		_, err := NewSteer(c.policy, c.nparts)
		if (err == nil) != c.ok {
			t.Errorf("NewSteer(%q, %d): err = %v, want ok=%v", c.policy, c.nparts, err, c.ok)
		}
	}
}

func TestSteerSemantics(t *testing.T) {
	region, _ := NewSteer(SteerRegion, 2)
	if region(core.AccessInfo{Stack: true}) != 1 || region(core.AccessInfo{}) != 0 {
		t.Error("region steering does not split stack/heap")
	}
	pattern, _ := NewSteer(SteerPattern, 2)
	if pattern(core.AccessInfo{EarlyAddr: true}) != 1 ||
		pattern(core.AccessInfo{IsFP: true}) != 1 ||
		pattern(core.AccessInfo{}) != 0 {
		t.Error("pattern steering does not split regular/irregular")
	}
	pchash, _ := NewSteer(SteerPCHash, 4)
	seen := map[int]bool{}
	for i := int32(0); i < 64; i++ {
		pi := pchash(core.AccessInfo{Index: i})
		if pi < 0 || pi >= 4 {
			t.Fatalf("pchash(%d) = %d out of range", i, pi)
		}
		seen[pi] = true
	}
	if len(seen) != 4 {
		t.Errorf("pchash hit %d of 4 partitions over 64 indices", len(seen))
	}
	// Determinism: same index, same partition.
	for i := int32(0); i < 8; i++ {
		if pchash(core.AccessInfo{Index: i}) != pchash(core.AccessInfo{Index: i}) {
			t.Fatal("pchash not deterministic")
		}
	}
}

func TestHierarchyClampsBadSteer(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		Partitions: []PartitionConfig{L1Config(2, 2)},
		Steer:      func(core.AccessInfo) int { return 7 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if pi := h.Steer(core.AccessInfo{}); pi != 0 {
		t.Errorf("out-of-range steer clamped to %d, want 0", pi)
	}
}

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(HierarchyConfig{}); err == nil {
		t.Error("empty hierarchy validated")
	}
	if _, err := NewHierarchy(HierarchyConfig{
		Partitions: []PartitionConfig{{Name: "bad", SizeBytes: 128, LineBytes: 16, Assoc: 2}},
	}); err == nil {
		t.Error("portless partition validated")
	}
	if _, err := NewHierarchy(HierarchyConfig{
		Partitions: []PartitionConfig{L1Config(2, 2)},
		L2:         Config{Name: "badl2", SizeBytes: 96, LineBytes: 16, Assoc: 2, HitLatency: 12, Ports: 1},
	}); err == nil {
		t.Error("bad L2 validated")
	}
	h, err := NewHierarchy(HierarchyConfig{Partitions: []PartitionConfig{L1Config(2, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if h.L2().Config() != L2Config() {
		t.Errorf("default L2 = %+v, want L2Config", h.L2().Config())
	}
	if h.NumPartitions() != 1 {
		t.Errorf("NumPartitions = %d", h.NumPartitions())
	}
	// Nil steer means unified: everything to partition 0.
	if pi := h.Steer(core.AccessInfo{Stack: true}); pi != 0 {
		t.Errorf("nil steer sent access to partition %d", pi)
	}
}
