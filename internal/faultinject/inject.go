package faultinject

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
)

// ErrInjected marks an architectural fault raised by the injection
// engine itself; campaigns assert it surfaces through vm.FaultError
// (errors.Is works through the wrapping).
var ErrInjected = errors.New("faultinject: injected memory fault")

// Injector realizes a Plan through the library's deterministic fault
// hooks: SteerFault and VMFault plug into cpu.TraceOptions during the
// functional trace build, and the Injector itself is a cpu.MemFaulter
// for the timing simulation. It tracks which planned faults actually
// fired. An Injector is single-run state; build a fresh one (or Reset)
// per run.
type Injector struct {
	Plan *Plan
	// Table, when non-nil, receives TableBitFlip faults. Point it at
	// the ARPT behind the run's classifier.
	Table *core.ARPT

	fired []bool
	steer map[uint64][]int // memory-reference ordinal → fault indices
	port  map[uint64][]int // port-grant ordinal → PortDrop indices
	lat   map[uint64][]int // port-grant ordinal → LatencyPerturb indices
	vmf   map[uint64][]int // instruction seq → MemFault indices
}

var _ cpu.MemFaulter = (*Injector)(nil)

// NewInjector indexes a plan's faults by their trigger ordinals.
func NewInjector(p *Plan) *Injector {
	inj := &Injector{
		Plan:  p,
		fired: make([]bool, len(p.Faults)),
		steer: make(map[uint64][]int),
		port:  make(map[uint64][]int),
		lat:   make(map[uint64][]int),
		vmf:   make(map[uint64][]int),
	}
	for i, f := range p.Faults {
		switch f.Kind {
		case ForceMispredict, TableBitFlip:
			inj.steer[f.Arg] = append(inj.steer[f.Arg], i)
		case PortDrop:
			inj.port[f.Arg] = append(inj.port[f.Arg], i)
		case LatencyPerturb:
			inj.lat[f.Arg] = append(inj.lat[f.Arg], i)
		case MemFault:
			inj.vmf[f.Arg] = append(inj.vmf[f.Arg], i)
		}
	}
	return inj
}

// Reset clears the fired tracking for a fresh run of the same plan.
func (inj *Injector) Reset() {
	for i := range inj.fired {
		inj.fired[i] = false
	}
}

// FiredCount reports how many planned faults fired at least once.
func (inj *Injector) FiredCount() int {
	n := 0
	for _, f := range inj.fired {
		if f {
			n++
		}
	}
	return n
}

// SteerFault is the cpu.TraceOptions.SteerFault hook: it applies
// ForceMispredict and TableBitFlip faults scheduled at this memory
// reference and returns the (possibly inverted) prediction.
func (inj *Injector) SteerFault(ref uint64, pred core.Prediction) core.Prediction {
	for _, i := range inj.steer[ref] {
		switch f := &inj.Plan.Faults[i]; f.Kind {
		case ForceMispredict:
			pred = !pred
			inj.fired[i] = true
		case TableBitFlip:
			if inj.Table != nil && inj.Table.Flip(f.Extra) {
				inj.fired[i] = true
			}
		}
	}
	return pred
}

// VMFault is the cpu.TraceOptions.VMFault hook: it aborts the
// functional run at a planned MemFault's instruction.
func (inj *Injector) VMFault(seq uint64, pc uint32) error {
	idxs := inj.vmf[seq]
	if len(idxs) == 0 {
		return nil
	}
	for _, i := range idxs {
		inj.fired[i] = true
	}
	return fmt.Errorf("%w (pc %#x)", ErrInjected, pc)
}

// PortDenied implements cpu.MemFaulter.
func (inj *Injector) PortDenied(n uint64, lvc bool) bool {
	idxs := inj.port[n]
	if len(idxs) == 0 {
		return false
	}
	for _, i := range idxs {
		inj.fired[i] = true
	}
	return true
}

// ExtraLatency implements cpu.MemFaulter.
func (inj *Injector) ExtraLatency(n uint64) int {
	extra := 0
	for _, i := range inj.lat[n] {
		extra += int(inj.Plan.Faults[i].Extra)
		inj.fired[i] = true
	}
	return extra
}

// Storm returns a steering-fault hook that inverts each prediction
// with the given probability — the misprediction-storm generator
// behind the E15 recovery-penalty study. The decision for reference n
// is a pure function of (seed, n), so storms are reproducible and
// independent of evaluation order.
func Storm(seed uint64, rate float64) func(ref uint64, pred core.Prediction) core.Prediction {
	if rate <= 0 {
		return func(_ uint64, pred core.Prediction) core.Prediction { return pred }
	}
	if rate > 1 {
		rate = 1
	}
	threshold := uint64(rate * (1 << 32))
	return func(ref uint64, pred core.Prediction) core.Prediction {
		if mix(seed, ref)&0xFFFFFFFF < threshold {
			return !pred
		}
		return pred
	}
}
