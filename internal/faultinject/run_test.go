package faultinject

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/cpu"
	"repro/internal/prog"
	"repro/internal/workload"
)

const (
	testMaxInsts = 20_000
	testScale    = 1
)

var (
	programsOnce sync.Once
	programsMap  map[string]*prog.Program
	programsErr  error
)

// programs compiles every workload once for the whole test binary.
func programs(t *testing.T) map[string]*prog.Program {
	t.Helper()
	programsOnce.Do(func() {
		programsMap = make(map[string]*prog.Program)
		for _, w := range workload.All() {
			p, err := w.Compile(testScale)
			if err != nil {
				programsErr = err
				return
			}
			programsMap[w.Name] = p
		}
	})
	if programsErr != nil {
		t.Fatal(programsErr)
	}
	return programsMap
}

func TestGoldenRunDeterministic(t *testing.T) {
	p := programs(t)["099.go"]
	a, err := GoldenRun(p, testMaxInsts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GoldenRun(p, testMaxInsts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.Shape != b.Shape {
		t.Fatalf("golden runs differ:\n%+v\n%+v", a, b)
	}
	if a.Shape.Insts == 0 || a.Shape.MemRefs == 0 {
		t.Fatalf("degenerate golden shape %+v", a.Shape)
	}
}

func TestArchDigestDiff(t *testing.T) {
	g := ArchDigest{Insts: 10, Stream: 1, Regs: 2, Mem: 3, Out: 4, Exit: 0}
	if d := g.Diff(g); d != "" {
		t.Fatalf("equal digests diff = %q", d)
	}
	cases := []struct {
		mutate func(d *ArchDigest)
		want   string
	}{
		{func(d *ArchDigest) { d.Insts = 11 }, "retired"},
		{func(d *ArchDigest) { d.Stream = 9 }, "stream"},
		{func(d *ArchDigest) { d.Regs = 9 }, "register"},
		{func(d *ArchDigest) { d.Mem = 9 }, "memory"},
		{func(d *ArchDigest) { d.Out = 9 }, "output"},
		{func(d *ArchDigest) { d.Exit = 9 }, "exit code"},
	}
	for _, tc := range cases {
		d := g
		tc.mutate(&d)
		if got := d.Diff(g); !strings.Contains(got, tc.want) {
			t.Fatalf("Diff = %q, want it to mention %q", got, tc.want)
		}
	}
}

func TestMemFaultSurfaces(t *testing.T) {
	p := programs(t)["099.go"]
	golden, err := GoldenRun(p, testMaxInsts)
	if err != nil {
		t.Fatal(err)
	}
	seq := golden.Shape.Insts / 2
	plan := &Plan{Seed: 1, Shape: golden.Shape,
		Faults: []Fault{{Kind: MemFault, Arg: seq}}}
	rr, err := RunOne(p, testMaxInsts, golden, plan, cpu.Decoupled(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Survived() {
		t.Fatalf("divergence: %s", rr.Divergence)
	}
	if !rr.Aborted || rr.AbortSeq != seq {
		t.Fatalf("abort = %v at %d, want true at %d", rr.Aborted, rr.AbortSeq, seq)
	}
	if rr.Fired != 1 {
		t.Fatalf("fired = %d, want 1", rr.Fired)
	}
}

func TestForcedMispredictKeepsArchitecture(t *testing.T) {
	p := programs(t)["099.go"]
	golden, err := GoldenRun(p, testMaxInsts)
	if err != nil {
		t.Fatal(err)
	}
	// Force a burst of mispredictions across the reference stream.
	plan := &Plan{Seed: 2, Shape: golden.Shape}
	for i := uint64(0); i < 50; i++ {
		plan.Faults = append(plan.Faults,
			Fault{Kind: ForceMispredict, Arg: i * (golden.Shape.MemRefs / 50)})
	}
	rr, err := RunOne(p, testMaxInsts, golden, plan, cpu.Decoupled(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Survived() {
		t.Fatalf("divergence under forced mispredictions: %s", rr.Divergence)
	}
	if rr.Aborted {
		t.Fatalf("timing-level faults aborted the run")
	}
	if rr.Recoveries == 0 {
		t.Fatalf("forced mispredictions drove no recoveries")
	}
	if rr.Recoveries != rr.Mispredicts {
		t.Fatalf("recoveries %d != mispredicts %d", rr.Recoveries, rr.Mispredicts)
	}
}

// TestCampaignAcceptance is the PR's acceptance gate: a campaign of
// more than 200 seeded fault runs spread across all twelve workloads
// must produce zero architectural divergences, fire at least one fault
// in ≥95% of runs, and reproduce byte-for-byte from the same seed.
func TestCampaignAcceptance(t *testing.T) {
	progs := programs(t)
	const runsPerWorkload = 18
	cfg := cpu.Decoupled(3, 3)

	var mu sync.Mutex
	first := make(map[string]string)
	totalRuns, totalFired := 0, 0

	var wg sync.WaitGroup
	errs := make(chan error, len(progs))
	for _, w := range workload.All() {
		p := progs[w.Name]
		name := w.Name
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 2; pass++ {
				s, err := RunCampaign(p, name, 1234, runsPerWorkload, 6, testMaxInsts, cfg)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				if pass == 0 {
					first[name] = s.String()
					totalRuns += s.Runs
					totalFired += s.Fired
					if !s.Survived() {
						t.Errorf("campaign diverged:\n%s", s)
					}
				} else if got := s.String(); got != first[name] {
					t.Errorf("same-seed campaign not reproducible:\n--- first\n%s--- second\n%s", first[name], got)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if totalRuns < 200 {
		t.Fatalf("campaign too small: %d runs, want >= 200", totalRuns)
	}
	if fired := float64(totalFired) / float64(totalRuns); fired < 0.95 {
		t.Fatalf("only %.1f%% of runs fired a fault, want >= 95%%", 100*fired)
	}
	t.Logf("campaign: %d runs, %d fired (%.1f%%)", totalRuns, totalFired,
		100*float64(totalFired)/float64(totalRuns))
}
