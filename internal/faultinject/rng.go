package faultinject

// rng is a splitmix64 generator: tiny, fast, and — unlike math/rand's
// global state — a pure function of its seed, which is what makes every
// fault plan byte-for-byte reproducible from a single uint64.
type rng struct{ state uint64 }

const golden64 = 0x9E3779B97F4A7C15

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += golden64
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n); n == 0 yields 0. The slight modulo
// bias is irrelevant for fault placement.
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// mix hashes (seed, i) into an independent derived value — used both to
// derive per-run plan seeds from a campaign seed and to make per-event
// decisions in Storm without any sequential generator state.
func mix(seed, i uint64) uint64 {
	r := rng{state: seed ^ (i+1)*golden64}
	return r.next()
}
