package faultinject

import (
	"testing"

	"repro/internal/core"
)

func TestPlanDeterministic(t *testing.T) {
	shape := RunShape{Insts: 50_000, MemRefs: 12_000}
	a := NewPlan(7, 32, shape)
	b := NewPlan(7, 32, shape)
	if len(a.Faults) != 32 || len(b.Faults) != 32 {
		t.Fatalf("plan sizes %d/%d, want 32", len(a.Faults), len(b.Faults))
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs between same-seed plans: %v vs %v",
				i, a.Faults[i], b.Faults[i])
		}
	}
	c := NewPlan(8, 32, shape)
	same := 0
	for i := range a.Faults {
		if a.Faults[i] == c.Faults[i] {
			same++
		}
	}
	if same == len(a.Faults) {
		t.Fatalf("different seeds produced identical plans")
	}
}

func TestPlanPlacement(t *testing.T) {
	shape := RunShape{Insts: 10_000, MemRefs: 2_500}
	p := NewPlan(99, 500, shape)
	for _, f := range p.Faults {
		switch f.Kind {
		case ForceMispredict, TableBitFlip:
			if f.Arg >= shape.MemRefs {
				t.Fatalf("%v placed past the reference stream (%d refs)", f, shape.MemRefs)
			}
		case PortDrop, LatencyPerturb:
			if f.Arg >= shape.MemRefs/4 {
				t.Fatalf("%v placed past the low-grant window", f)
			}
			if f.Kind == LatencyPerturb && (f.Extra < 1 || f.Extra > 64) {
				t.Fatalf("%v extra latency out of [1,64]", f)
			}
		case MemFault:
			if f.Arg < shape.Insts/4 || f.Arg >= shape.Insts {
				t.Fatalf("%v placed outside [insts/4, insts)", f)
			}
		default:
			t.Fatalf("unknown kind in %v", f)
		}
	}
}

func TestPlanCoversAllKinds(t *testing.T) {
	shape := RunShape{Insts: 10_000, MemRefs: 2_500}
	seen := make(map[Kind]bool)
	p := NewPlan(3, 200, shape)
	for _, f := range p.Faults {
		seen[f.Kind] = true
	}
	for k := Kind(0); k < numKinds; k++ {
		if !seen[k] {
			t.Fatalf("200 drawn faults never produced kind %v", k)
		}
	}
}

func TestFirstMemFault(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{Kind: PortDrop, Arg: 3},
		{Kind: MemFault, Arg: 900},
		{Kind: MemFault, Arg: 400},
	}}
	seq, ok := p.FirstMemFault()
	if !ok || seq != 400 {
		t.Fatalf("FirstMemFault = %d,%v, want 400,true", seq, ok)
	}
	if _, ok := (&Plan{}).FirstMemFault(); ok {
		t.Fatalf("empty plan reported a mem fault")
	}
}

func TestInjectorHooks(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: ForceMispredict, Arg: 2},
		{Kind: PortDrop, Arg: 5},
		{Kind: LatencyPerturb, Arg: 7, Extra: 13},
		{Kind: MemFault, Arg: 11},
	}}
	inj := NewInjector(plan)

	if got := inj.SteerFault(1, core.PredictStack); got != core.PredictStack {
		t.Fatalf("unfaulted ref perturbed")
	}
	if got := inj.SteerFault(2, core.PredictStack); got != core.PredictNonStack {
		t.Fatalf("ForceMispredict did not invert the prediction")
	}
	if inj.PortDenied(4, false) || !inj.PortDenied(5, true) {
		t.Fatalf("PortDenied fired on the wrong grant")
	}
	if inj.ExtraLatency(6) != 0 || inj.ExtraLatency(7) != 13 {
		t.Fatalf("ExtraLatency fired on the wrong grant")
	}
	if err := inj.VMFault(10, 0); err != nil {
		t.Fatalf("unfaulted seq aborted: %v", err)
	}
	if err := inj.VMFault(11, 0x40); err == nil {
		t.Fatalf("MemFault seq did not abort")
	}
	if got := inj.FiredCount(); got != 4 {
		t.Fatalf("FiredCount = %d, want 4", got)
	}
	inj.Reset()
	if got := inj.FiredCount(); got != 0 {
		t.Fatalf("FiredCount after Reset = %d, want 0", got)
	}
}

func TestInjectorTableFlip(t *testing.T) {
	table, err := core.NewARPT(core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Faults: []Fault{{Kind: TableBitFlip, Arg: 0, Extra: 17}}}
	inj := NewInjector(plan)
	inj.Table = table

	before := table.Predict(17<<2, core.Context{})
	if got := inj.SteerFault(0, core.PredictStack); got != core.PredictStack {
		t.Fatalf("TableBitFlip perturbed the in-flight prediction")
	}
	after := table.Predict(17<<2, core.Context{})
	if before == after {
		t.Fatalf("TableBitFlip left entry 17 unchanged (%v)", before)
	}
	if inj.FiredCount() != 1 {
		t.Fatalf("flip not recorded as fired")
	}
}

func TestStorm(t *testing.T) {
	never := Storm(1, 0)
	always := Storm(1, 1)
	for ref := uint64(0); ref < 100; ref++ {
		if never(ref, core.PredictStack) != core.PredictStack {
			t.Fatalf("rate-0 storm flipped ref %d", ref)
		}
		if always(ref, core.PredictStack) != core.PredictNonStack {
			t.Fatalf("rate-1 storm spared ref %d", ref)
		}
	}
	a, b := Storm(5, 0.3), Storm(5, 0.3)
	flips := 0
	for ref := uint64(0); ref < 10_000; ref++ {
		ra, rb := a(ref, core.PredictStack), b(ref, core.PredictStack)
		if ra != rb {
			t.Fatalf("same-seed storms disagree at ref %d", ref)
		}
		if ra == core.PredictNonStack {
			flips++
		}
	}
	if flips < 2_500 || flips > 3_500 {
		t.Fatalf("rate-0.3 storm flipped %d/10000 refs", flips)
	}
}

func TestKindAndFaultStrings(t *testing.T) {
	cases := map[string]string{
		Fault{Kind: ForceMispredict, Arg: 9}.String():           "force-mispredict@ref9",
		Fault{Kind: TableBitFlip, Arg: 1, Extra: 4}.String():    "table-bit-flip@ref1(entry 4)",
		Fault{Kind: PortDrop, Arg: 2}.String():                  "port-drop@grant2",
		Fault{Kind: LatencyPerturb, Arg: 3, Extra: 10}.String(): "latency-perturb@grant3(+10 cycles)",
		Fault{Kind: MemFault, Arg: 77}.String():                 "mem-fault@seq77",
	}
	for got, want := range cases {
		if got != want {
			t.Fatalf("Fault.String = %q, want %q", got, want)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatalf("unknown Kind String = %q", Kind(200).String())
	}
}
