// Package faultinject is the deterministic fault-injection engine and
// differential-validation harness for the memory pipeline. A seeded
// PRNG expands into a Plan of timing- and architectural-level faults;
// an Injector realizes the plan through the library's deterministic
// hooks (cpu.TraceOptions.SteerFault/VMFault, cpu.WithFaults);
// and RunOne replays every faulted run against the functional VM's
// golden digest, asserting that timing-layer faults never change
// architectural results. The whole pipeline is a pure function of the
// seed: same seed, same faults, same verdict, byte for byte.
package faultinject

import "fmt"

// Kind classifies an injected fault.
type Kind uint8

// The fault taxonomy (DESIGN.md §8). The first four are timing-level:
// they may change cycle counts but must never change architectural
// results. MemFault is architectural by construction and must surface
// as a structured vm.FaultError, never as corruption.
const (
	// ForceMispredict inverts the steering prediction of one dynamic
	// memory reference, forcing a wrong-queue dispatch and a recovery.
	ForceMispredict Kind = iota
	// TableBitFlip flips the decision bit of one ARPT entry — the
	// soft-error model. Every later prediction through that entry may
	// change.
	TableBitFlip
	// PortDrop withdraws one granted cache port; the access retries.
	PortDrop
	// LatencyPerturb adds extra cycles to one granted load access.
	LatencyPerturb
	// MemFault aborts the program architecturally at one dynamic
	// instruction (the VM-level fault model).
	MemFault

	numKinds
)

var kindNames = [numKinds]string{
	"force-mispredict", "table-bit-flip", "port-drop", "latency-perturb", "mem-fault",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fault is one planned injection. Arg is the deterministic trigger
// ordinal; its meaning depends on Kind: the dynamic memory-reference
// ordinal for ForceMispredict and TableBitFlip, the cache-port grant
// ordinal for PortDrop and LatencyPerturb, and the dynamic instruction
// number for MemFault. Extra carries the ARPT entry selector
// (TableBitFlip) or the added cycles (LatencyPerturb).
type Fault struct {
	Kind  Kind
	Arg   uint64
	Extra uint32
}

func (f Fault) String() string {
	switch f.Kind {
	case TableBitFlip:
		return fmt.Sprintf("%s@ref%d(entry %d)", f.Kind, f.Arg, f.Extra)
	case LatencyPerturb:
		return fmt.Sprintf("%s@grant%d(+%d cycles)", f.Kind, f.Arg, f.Extra)
	case PortDrop:
		return fmt.Sprintf("%s@grant%d", f.Kind, f.Arg)
	case MemFault:
		return fmt.Sprintf("%s@seq%d", f.Kind, f.Arg)
	}
	return fmt.Sprintf("%s@ref%d", f.Kind, f.Arg)
}

// RunShape is the measured shape of a golden run, used to place faults
// where they can actually fire.
type RunShape struct {
	Insts   uint64 // retired dynamic instructions
	MemRefs uint64 // dynamic memory references
}

// Plan is a seeded set of faults for one run.
type Plan struct {
	Seed   uint64
	Shape  RunShape
	Faults []Fault
}

// NewPlan expands a seed into n faults placed within shape. Kinds are
// drawn from a weighted table: timing-level faults dominate (they
// exercise the differential invariant); architectural MemFaults are
// rare (1/16) because each one ends its run early. Reference- and
// instruction-indexed faults always land on ordinals the run reaches;
// port-grant ordinals are drawn low (first quarter of the reference
// stream) so they fire with high probability even though forwarded
// loads never take a port.
func NewPlan(seed uint64, n int, shape RunShape) *Plan {
	r := newRNG(seed)
	p := &Plan{Seed: seed, Shape: shape, Faults: make([]Fault, 0, n)}
	refs := shape.MemRefs
	if refs == 0 {
		refs = 1
	}
	for i := 0; i < n; i++ {
		var f Fault
		switch w := r.next() % 16; {
		case w < 5:
			f = Fault{Kind: ForceMispredict, Arg: r.intn(refs)}
		case w < 9:
			f = Fault{Kind: TableBitFlip, Arg: r.intn(refs), Extra: uint32(r.next())}
		case w < 12:
			f = Fault{Kind: PortDrop, Arg: r.intn(max64(refs/4, 1))}
		case w < 15:
			f = Fault{Kind: LatencyPerturb, Arg: r.intn(max64(refs/4, 1)), Extra: uint32(1 + r.intn(64))}
		default:
			lo := shape.Insts / 4
			f = Fault{Kind: MemFault, Arg: lo + r.intn(max64(shape.Insts-lo, 1))}
		}
		p.Faults = append(p.Faults, f)
	}
	return p
}

// FirstMemFault reports the earliest architectural fault in the plan.
func (p *Plan) FirstMemFault() (seq uint64, ok bool) {
	for _, f := range p.Faults {
		if f.Kind == MemFault && (!ok || f.Arg < seq) {
			seq, ok = f.Arg, true
		}
	}
	return seq, ok
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
