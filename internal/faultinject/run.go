package faultinject

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/decouple"
	"repro/internal/prog"
	"repro/internal/vm"
)

// Golden is the reference outcome of one unfaulted functional run: the
// architectural digest every faulted run is compared against, plus the
// run's shape for fault placement. It is computed by a plain VM step
// loop — no timing-model code touches the architectural state it
// records, which is what makes the comparison a genuine differential.
type Golden struct {
	Digest ArchDigest
	Shape  RunShape
}

// GoldenRun executes p functionally (truncated at maxInsts; 0 means
// the VM default) and digests its architectural outcome.
func GoldenRun(p *prog.Program, maxInsts uint64) (*Golden, error) {
	d := newDigester()
	m, err := vm.New(vm.Config{Program: p, Out: d})
	if err != nil {
		return nil, err
	}
	limit := maxInsts
	if limit == 0 {
		limit = vm.DefaultMaxInsts
	}
	m.MaxInsts = limit + 1
	for !m.Halted() && m.Seq() < limit {
		ev, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("faultinject: golden run: %w", err)
		}
		d.observe(ev)
	}
	return &Golden{
		Digest: d.final(m),
		Shape:  RunShape{Insts: d.insts, MemRefs: d.memRefs},
	}, nil
}

// RunResult is the verdict of one faulted differential run.
type RunResult struct {
	Seed  uint64
	Fired int // planned faults that actually fired

	// Aborted reports a planned architectural MemFault that surfaced
	// correctly as a structured vm.FaultError at AbortSeq.
	Aborted  bool
	AbortSeq uint64

	// Divergence is empty for a surviving run; otherwise it describes
	// how the faulted run broke the architectural-equivalence
	// invariant (or failed to surface a fault in a structured way).
	Divergence string

	Cycles      uint64
	Mispredicts uint64
	Recoveries  uint64
}

// Survived reports whether the run upheld every invariant.
func (r *RunResult) Survived() bool { return r.Divergence == "" }

// RunOne executes one faulted differential run of p under plan:
//
//  1. rebuild the trace with the plan's functional-level faults
//     injected (forced mispredictions, ARPT bit flips, architectural
//     memory faults), digesting the architectural outcome in-line;
//  2. if the plan holds a reachable MemFault, require the run to abort
//     with a structured vm.FaultError at exactly that instruction;
//  3. otherwise require the faulted digest to equal the golden digest
//     byte for byte, then run the timing simulation with the plan's
//     pipeline faults (port drops, latency perturbation) attached and
//     require it to retire the full trace with every misprediction
//     recovery completing the detect→cancel→replay protocol.
//
// Violations are reported in RunResult.Divergence; the error return is
// reserved for harness failures (e.g. an invalid configuration).
func RunOne(p *prog.Program, maxInsts uint64, golden *Golden, plan *Plan, cfg cpu.Config) (*RunResult, error) {
	res := &RunResult{Seed: plan.Seed}

	table, err := core.NewARPT(core.DefaultPipelineConfig())
	if err != nil {
		return nil, err
	}
	inj := NewInjector(plan)
	inj.Table = table
	cls, err := core.NewClassifier(
		core.ClassifierConfig{Scheme: core.Scheme1BitHybrid}, core.WithTable(table))
	if err != nil {
		return nil, err
	}

	d := newDigester()
	var faulted ArchDigest
	var finalSeen bool
	tr, err := cpu.BuildTrace(p, cpu.TraceOptions{
		MaxInsts:   maxInsts,
		Classifier: cls,
		SteerFault: inj.SteerFault,
		VMFault:    inj.VMFault,
		Observer:   d.observe,
		Out:        d,
		Final: func(m *vm.Machine) {
			faulted = d.final(m)
			finalSeen = true
		},
	})
	res.Fired = inj.FiredCount()

	if seq, hasMemFault := plan.FirstMemFault(); hasMemFault && seq < golden.Shape.Insts {
		// The plan demands an architectural abort before the run ends:
		// survival means a structured, correctly-attributed fault.
		switch fe := (*vm.FaultError)(nil); {
		case err == nil:
			res.Divergence = fmt.Sprintf("mem fault at seq %d not surfaced", seq)
		case !errors.As(err, &fe) || !errors.Is(err, ErrInjected):
			res.Divergence = fmt.Sprintf("mem fault surfaced as %v, want a vm.FaultError wrapping ErrInjected", err)
		case fe.Seq != seq:
			res.Divergence = fmt.Sprintf("mem fault attributed to seq %d, injected at %d", fe.Seq, seq)
		default:
			res.Aborted = true
			res.AbortSeq = seq
		}
		return res, nil
	}

	if err != nil {
		res.Divergence = fmt.Sprintf("faulted trace build failed: %v", err)
		return res, nil
	}
	if !finalSeen {
		return nil, fmt.Errorf("faultinject: trace build returned without final state")
	}
	if diff := faulted.Diff(golden.Digest); diff != "" {
		res.Divergence = "architectural divergence: " + diff
		return res, nil
	}

	rec := decouple.NewRecovery()
	sim, err := cpu.New(cfg, cpu.WithFaults(inj), cpu.WithRecovery(rec))
	if err != nil {
		return nil, err
	}
	sres, err := sim.Run(tr)
	if err != nil {
		res.Divergence = fmt.Sprintf("faulted timing simulation failed: %v", err)
		return res, nil
	}
	res.Fired = inj.FiredCount()
	res.Cycles = sres.Cycles
	res.Mispredicts = sres.ARPTMispredicts
	res.Recoveries = sres.Recoveries
	switch {
	case sres.Insts != golden.Shape.Insts:
		res.Divergence = fmt.Sprintf("timing model retired %d instructions, golden retired %d",
			sres.Insts, golden.Shape.Insts)
	case !rec.Complete():
		res.Divergence = fmt.Sprintf("%d misprediction recoveries left incomplete", rec.Outstanding())
	case sres.Recoveries != sres.ARPTMispredicts:
		res.Divergence = fmt.Sprintf("recoveries %d != mispredictions %d",
			sres.Recoveries, sres.ARPTMispredicts)
	}
	return res, nil
}

// Summary aggregates a fault campaign over one workload.
type Summary struct {
	Workload     string
	Seed         uint64
	Runs         int
	FaultsPerRun int

	Fired       int // runs where at least one fault fired
	FaultsFired int // total fired faults
	Aborted     int // runs ending in a correctly-surfaced MemFault
	Divergent   int // runs breaking an invariant
	Divergences []string

	Cycles      uint64 // summed over surviving non-abort runs
	Mispredicts uint64
	Recoveries  uint64
}

// maxDivergences bounds how many divergence descriptions a summary
// keeps (the count is always exact).
const maxDivergences = 8

// Survived reports whether every run in the campaign upheld the
// invariants.
func (s *Summary) Survived() bool { return s.Divergent == 0 }

// String renders the summary deterministically (same seed → identical
// text), which the CI determinism check relies on.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s seed=%d runs=%d faults/run=%d fired=%d/%d (faults %d) aborts=%d recoveries=%d mispredicts=%d divergences=%d\n",
		s.Workload, s.Seed, s.Runs, s.FaultsPerRun, s.Fired, s.Runs,
		s.FaultsFired, s.Aborted, s.Recoveries, s.Mispredicts, s.Divergent)
	for _, d := range s.Divergences {
		fmt.Fprintf(&b, "    DIVERGENCE %s\n", d)
	}
	return b.String()
}

// RunCampaign runs a seeded campaign of differential fault runs
// against one program. Per-run plan seeds are derived from the
// campaign seed, so the whole campaign is reproducible from (seed,
// runs, faultsPerRun, maxInsts, cfg).
func RunCampaign(p *prog.Program, name string, seed uint64, runs, faultsPerRun int, maxInsts uint64, cfg cpu.Config) (*Summary, error) {
	golden, err := GoldenRun(p, maxInsts)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %s: %w", name, err)
	}
	s := &Summary{Workload: name, Seed: seed, Runs: runs, FaultsPerRun: faultsPerRun}
	for i := 0; i < runs; i++ {
		plan := NewPlan(mix(seed, uint64(i)), faultsPerRun, golden.Shape)
		rr, err := RunOne(p, maxInsts, golden, plan, cfg)
		if err != nil {
			return nil, fmt.Errorf("faultinject: %s run %d: %w", name, i, err)
		}
		if rr.Fired > 0 {
			s.Fired++
			s.FaultsFired += rr.Fired
		}
		if rr.Aborted {
			s.Aborted++
		}
		if !rr.Survived() {
			s.Divergent++
			if len(s.Divergences) < maxDivergences {
				s.Divergences = append(s.Divergences,
					fmt.Sprintf("%s run %d (plan seed %d): %s", name, i, plan.Seed, rr.Divergence))
			}
		}
		s.Cycles += rr.Cycles
		s.Mispredicts += rr.Mispredicts
		s.Recoveries += rr.Recoveries
	}
	return s, nil
}
