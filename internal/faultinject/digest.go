package faultinject

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/vm"
)

// fnv64 is an FNV-1a 64-bit accumulator.
type fnv64 uint64

const (
	fnvOffset64 fnv64 = 14695981039346656037
	fnvPrime64  fnv64 = 1099511628211
)

func (h *fnv64) byte(b byte) { *h = (*h ^ fnv64(b)) * fnvPrime64 }

func (h *fnv64) u32(v uint32) {
	for s := 0; s < 32; s += 8 {
		h.byte(byte(v >> s))
	}
}

// ArchDigest summarizes every architectural outcome of one functional
// run: the retired-instruction stream (PCs, control flow, effective
// addresses), the final register file, the final memory image, the
// program's output bytes, and the exit code. Two runs are
// architecturally identical iff their digests are equal — the
// invariant the differential harness checks for every timing-level
// fault.
type ArchDigest struct {
	Insts  uint64
	Stream uint64
	Regs   uint64
	Mem    uint64
	Out    uint64
	Exit   int
}

// Diff describes the first differing component against a golden
// digest, or "" when equal.
func (d ArchDigest) Diff(golden ArchDigest) string {
	switch {
	case d == golden:
		return ""
	case d.Insts != golden.Insts:
		return fmt.Sprintf("retired %d instructions, golden retired %d", d.Insts, golden.Insts)
	case d.Stream != golden.Stream:
		return "retired-instruction stream diverged"
	case d.Regs != golden.Regs:
		return "final register state diverged"
	case d.Mem != golden.Mem:
		return "final memory image diverged"
	case d.Out != golden.Out:
		return "program output diverged"
	default:
		return fmt.Sprintf("exit code %d, golden %d", d.Exit, golden.Exit)
	}
}

// digester folds a functional run into an ArchDigest. Feed observe to
// the VM step loop (or cpu.TraceOptions.Observer), point the program's
// output at out(), and call final once the machine stops.
type digester struct {
	stream  fnv64
	outh    fnv64
	insts   uint64
	memRefs uint64
}

func newDigester() *digester {
	return &digester{stream: fnvOffset64, outh: fnvOffset64}
}

func (d *digester) observe(ev vm.Event) {
	d.insts++
	d.stream.u32(ev.PC)
	d.stream.u32(ev.NextPC)
	if ev.Inst.IsMem() {
		d.memRefs++
		d.stream.u32(ev.MemAddr)
		d.stream.byte(byte(ev.MemSize))
	}
	if ev.Taken {
		d.stream.byte(1)
	} else {
		d.stream.byte(0)
	}
}

func (d *digester) Write(p []byte) (int, error) {
	for _, b := range p {
		d.outh.byte(b)
	}
	return len(p), nil
}

func (d *digester) final(m *vm.Machine) ArchDigest {
	regs := fnvOffset64
	for r := 0; r < isa.NumRegs; r++ {
		regs.u32(m.Reg(isa.Register(r)))
	}
	for r := 0; r < isa.NumRegs; r++ {
		regs.u32(math.Float32bits(m.FReg(isa.Register(r))))
	}
	return ArchDigest{
		Insts:  d.insts,
		Stream: uint64(d.stream),
		Regs:   uint64(regs),
		Mem:    m.Mem.Hash64(),
		Out:    uint64(d.outh),
		Exit:   m.ExitCode(),
	}
}
