package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestZeroFreshMemory(t *testing.T) {
	m := New()
	if m.LoadByte(0x12345678) != 0 {
		t.Error("fresh memory not zero")
	}
	if v, err := m.ReadWord(0x1000_0000); err != nil || v != 0 {
		t.Errorf("fresh word = %d, %v", v, err)
	}
}

func TestWordRoundTripLittleEndian(t *testing.T) {
	m := New()
	if err := m.WriteWord(0x1000, 0x11223344); err != nil {
		t.Fatal(err)
	}
	if m.LoadByte(0x1000) != 0x44 || m.LoadByte(0x1003) != 0x11 {
		t.Error("not little-endian")
	}
	v, err := m.ReadWord(0x1000)
	if err != nil || v != 0x11223344 {
		t.Errorf("ReadWord = %#x, %v", v, err)
	}
}

func TestHalfRoundTrip(t *testing.T) {
	m := New()
	if err := m.WriteHalf(0x2002, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadHalf(0x2002)
	if err != nil || v != 0xBEEF {
		t.Errorf("ReadHalf = %#x, %v", v, err)
	}
}

func TestMisalignmentFaults(t *testing.T) {
	m := New()
	if _, err := m.ReadWord(0x1002); err == nil {
		t.Error("misaligned word read succeeded")
	}
	if err := m.WriteWord(0x1001, 1); err == nil {
		t.Error("misaligned word write succeeded")
	}
	if _, err := m.ReadHalf(0x1001); err == nil {
		t.Error("misaligned half read succeeded")
	}
	var ae *AccessError
	err := m.WriteHalf(0x1003, 1)
	if !asAccess(err, &ae) || ae.Addr != 0x1003 {
		t.Errorf("error detail: %v", err)
	}
}

func asAccess(err error, out **AccessError) bool {
	ae, ok := err.(*AccessError)
	if ok {
		*out = ae
	}
	return ok
}

func TestCrossPageBytes(t *testing.T) {
	m := New()
	addr := uint32(PageSize - 2)
	data := []byte{1, 2, 3, 4, 5}
	m.WriteBytes(addr, data)
	if got := m.ReadBytes(addr, 5); !bytes.Equal(got, data) {
		t.Errorf("cross-page bytes = %v", got)
	}
	if m.Pages() != 2 {
		t.Errorf("pages = %d, want 2", m.Pages())
	}
}

func TestCString(t *testing.T) {
	m := New()
	m.WriteBytes(0x4000, []byte("hello\x00world"))
	if s := m.ReadCString(0x4000, 64); s != "hello" {
		t.Errorf("cstring = %q", s)
	}
	if s := m.ReadCString(0x4000, 3); s != "hel" {
		t.Errorf("bounded cstring = %q", s)
	}
}

func TestFootprintSparse(t *testing.T) {
	m := New()
	m.StoreByte(0, 1)
	m.StoreByte(0x7FFF_0000, 1)
	if m.Footprint() != 2*PageSize {
		t.Errorf("footprint = %d", m.Footprint())
	}
}

// Property: word write/read round-trips at any aligned address.
func TestWordRoundTripProperty(t *testing.T) {
	m := New()
	f := func(addr, v uint32) bool {
		addr &^= 3
		if err := m.WriteWord(addr, v); err != nil {
			return false
		}
		got, err := m.ReadWord(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: writes to one location never disturb another location.
func TestWriteIsolationProperty(t *testing.T) {
	f := func(a, b uint32, va, vb byte) bool {
		if a == b {
			return true
		}
		m := New()
		m.StoreByte(a, va)
		m.StoreByte(b, vb)
		return m.LoadByte(a) == va && m.LoadByte(b) == vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
