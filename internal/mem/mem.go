// Package mem implements the sparse byte-addressable memory backing both
// simulators. Memory is allocated in fixed-size pages on first touch, so
// a 4 GB address space with a data segment at 0x10000000 and a stack at
// 0x7FFFF000 costs only what the program actually touches.
//
// All multi-byte accesses are little-endian. Alignment is enforced:
// RISA, like MIPS, faults on misaligned halfword/word accesses, and the
// simulators surface that as an error rather than silently rotating
// bytes.
package mem

import (
	"fmt"
	"sort"
)

// PageBits is log2 of the page size. 4 KB pages match the TLB model.
const PageBits = 12

// PageSize is the memory page size in bytes.
const PageSize = 1 << PageBits

const offMask = PageSize - 1

// AccessError describes a faulting memory access.
type AccessError struct {
	Addr uint32
	Size int
	Why  string
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("mem: %s at %#08x (size %d)", e.Why, e.Addr, e.Size)
}

// Memory is a sparse paged memory. The zero value is ready to use.
type Memory struct {
	pages map[uint32]*[PageSize]byte

	// last-page cache: the VM touches the same stack/data pages
	// repeatedly, so a one-entry cache removes most map lookups.
	lastNum  uint32
	lastPage *[PageSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint32]*[PageSize]byte)}
}

// Pages reports how many distinct pages have been touched.
func (m *Memory) Pages() int { return len(m.pages) }

// Footprint reports the total bytes of allocated pages.
func (m *Memory) Footprint() int { return len(m.pages) * PageSize }

// Hash64 returns a 64-bit FNV-1a digest over every touched page, in
// ascending address order, mixing in each page's base address. Two
// runs of the same program touch the same pages in the same state, so
// equal digests mean byte-identical memory images — the comparison
// the differential fault-injection harness relies on.
func (m *Memory) Hash64() uint64 {
	nums := make([]uint32, 0, len(m.pages))
	for n := range m.pages {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, n := range nums {
		for s := 0; s < 32; s += 8 {
			h = (h ^ uint64(n>>s&0xFF)) * prime64
		}
		for _, b := range m.pages[n] {
			h = (h ^ uint64(b)) * prime64
		}
	}
	return h
}

func (m *Memory) page(addr uint32) *[PageSize]byte {
	num := addr >> PageBits
	if m.lastPage != nil && m.lastNum == num {
		return m.lastPage
	}
	p, ok := m.pages[num]
	if !ok {
		if m.pages == nil {
			m.pages = make(map[uint32]*[PageSize]byte)
		}
		p = new([PageSize]byte)
		m.pages[num] = p
	}
	m.lastNum, m.lastPage = num, p
	return p
}

// ReadByte reads one byte.
func (m *Memory) LoadByte(addr uint32) byte {
	return m.page(addr)[addr&offMask]
}

// WriteByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v byte) {
	m.page(addr)[addr&offMask] = v
}

func misaligned(addr uint32, size int) error {
	return &AccessError{Addr: addr, Size: size, Why: "misaligned access"}
}

// ReadHalf reads a little-endian 16-bit value. addr must be 2-aligned.
func (m *Memory) ReadHalf(addr uint32) (uint16, error) {
	if addr&1 != 0 {
		return 0, misaligned(addr, 2)
	}
	p := m.page(addr)
	o := addr & offMask
	return uint16(p[o]) | uint16(p[o+1])<<8, nil
}

// WriteHalf writes a little-endian 16-bit value. addr must be 2-aligned.
func (m *Memory) WriteHalf(addr uint32, v uint16) error {
	if addr&1 != 0 {
		return misaligned(addr, 2)
	}
	p := m.page(addr)
	o := addr & offMask
	p[o] = byte(v)
	p[o+1] = byte(v >> 8)
	return nil
}

// ReadWord reads a little-endian 32-bit value. addr must be 4-aligned.
func (m *Memory) ReadWord(addr uint32) (uint32, error) {
	if addr&3 != 0 {
		return 0, misaligned(addr, 4)
	}
	p := m.page(addr)
	o := addr & offMask
	return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24, nil
}

// WriteWord writes a little-endian 32-bit value. addr must be 4-aligned.
func (m *Memory) WriteWord(addr uint32, v uint32) error {
	if addr&3 != 0 {
		return misaligned(addr, 4)
	}
	p := m.page(addr)
	o := addr & offMask
	p[o] = byte(v)
	p[o+1] = byte(v >> 8)
	p[o+2] = byte(v >> 16)
	p[o+3] = byte(v >> 24)
	return nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint32(i))
	}
	return out
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for i, v := range b {
		m.StoreByte(addr+uint32(i), v)
	}
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes (to bound damage from an unterminated string).
func (m *Memory) ReadCString(addr uint32, max int) string {
	var b []byte
	for i := 0; i < max; i++ {
		c := m.LoadByte(addr + uint32(i))
		if c == 0 {
			break
		}
		b = append(b, c)
	}
	return string(b)
}
