package cliutil

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/obs"
)

// TestWriteMetricsValidates: the artifact lands schema-valid, in a
// directory created on demand, carrying this command's run metadata.
func TestWriteMetricsValidates(t *testing.T) {
	c := New("testcmd")
	c.MetricsPath = filepath.Join(t.TempDir(), "results", "testcmd.metrics.json")
	reg := obs.NewRegistry()
	reg.Counter("sim_cycles_total", "simulated cycles", obs.Labels{"workload": "x"}).Add(42)
	reg.Gauge("sim_ipc", "ipc", nil).Set(1.5)

	if err := c.WriteMetrics(reg); err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(c.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateMetrics(doc); err != nil {
		t.Fatalf("artifact failed its own schema: %v", err)
	}
	var a obs.Artifact
	if err := json.Unmarshal(doc, &a); err != nil {
		t.Fatal(err)
	}
	if a.Schema != obs.ArtifactSchema {
		t.Errorf("schema = %q, want %q", a.Schema, obs.ArtifactSchema)
	}
	if a.Run.Cmd != "testcmd" || a.Run.GoVersion != runtime.Version() {
		t.Errorf("run meta = %+v", a.Run)
	}
	if len(a.Metrics) != 2 {
		t.Errorf("artifact carries %d metrics, want 2", len(a.Metrics))
	}
}

// TestRunnerReflectsFlags: the Runner inherits the parsed flag state,
// including the metrics registry when -metrics selects a path.
func TestRunnerReflectsFlags(t *testing.T) {
	c := New("testcmd")
	c.Scale = 2
	c.MaxInsts = 1000
	c.Parallel = 3
	c.Quiet = true
	c.Timeout = 5e9
	c.MetricsPath = "m.json"
	r := c.Runner()
	if r.Scale != 2 || r.MaxInsts != 1000 || r.Parallel != 3 {
		t.Errorf("runner shape = scale %d n %d parallel %d", r.Scale, r.MaxInsts, r.Parallel)
	}
	if !r.Degrade || r.WorkloadTimeout != c.Timeout {
		t.Error("timeout did not arm degradation")
	}
	if r.Log != nil {
		t.Error("quiet runner still logs")
	}
	if r.Obs == nil {
		t.Error("-metrics did not attach a registry")
	}
	if len(r.Workloads) == 0 {
		t.Error("no workloads selected by default")
	}
}
