package cliutil

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/obs"
)

// TestWriteMetricsValidates: the artifact lands schema-valid, in a
// directory created on demand, carrying this command's run metadata.
func TestWriteMetricsValidates(t *testing.T) {
	c := New("testcmd")
	c.MetricsPath = filepath.Join(t.TempDir(), "results", "testcmd.metrics.json")
	reg := obs.NewRegistry()
	reg.Counter("sim_cycles_total", "simulated cycles", obs.Labels{"workload": "x"}).Add(42)
	reg.Gauge("sim_ipc", "ipc", nil).Set(1.5)

	if err := c.WriteMetrics(reg); err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(c.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateMetrics(doc); err != nil {
		t.Fatalf("artifact failed its own schema: %v", err)
	}
	var a obs.Artifact
	if err := json.Unmarshal(doc, &a); err != nil {
		t.Fatal(err)
	}
	if a.Schema != obs.ArtifactSchema {
		t.Errorf("schema = %q, want %q", a.Schema, obs.ArtifactSchema)
	}
	if a.Run.Cmd != "testcmd" || a.Run.GoVersion != runtime.Version() {
		t.Errorf("run meta = %+v", a.Run)
	}
	if len(a.Metrics) != 2 {
		t.Errorf("artifact carries %d metrics, want 2", len(a.Metrics))
	}
}

// TestFatalfFlushesArtifacts is the regression test for the fatal
// mid-campaign path: Fatalf must run the same drain/flush protocol the
// SIGINT handler uses — cancel the campaign context and write the
// -metrics artifact (including the store provenance gauges) — instead
// of dropping them with a bare os.Exit(1).
func TestFatalfFlushesArtifacts(t *testing.T) {
	dir := t.TempDir()
	c := New("testcmd")
	c.Quiet = true
	c.StoreDir = filepath.Join(dir, "store")
	c.MetricsPath = filepath.Join(dir, "fatal.metrics.json")
	ctx := c.HandleSignals()
	r := c.Runner()
	r.Obs.Counter("sim_cycles_total", "simulated cycles", nil).Add(7)

	var code int
	c.exit = func(n int) { code = n; panic("exit") }
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Fatalf returned without exiting")
			}
		}()
		c.Fatalf("mid-campaign failure: %s", "boom")
	}()
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if ctx.Err() == nil {
		t.Fatal("Fatalf did not cancel the campaign context (workers would not drain)")
	}
	doc, err := os.ReadFile(c.MetricsPath)
	if err != nil {
		t.Fatalf("metrics artifact was dropped: %v", err)
	}
	if err := obs.ValidateMetrics(doc); err != nil {
		t.Fatalf("flushed artifact failed its own schema: %v", err)
	}
	var a obs.Artifact
	if err := json.Unmarshal(doc, &a); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, m := range a.Metrics {
		names[m.Name] = true
	}
	if !names["sim_cycles_total"] || !names["harness_store_hits_total"] {
		t.Fatalf("artifact missing run or store-provenance metrics: %v", names)
	}

	// A failure inside the flush itself must not recurse forever: a
	// second Fatalf goes straight to the exit.
	func() {
		defer func() { recover() }()
		c.Fatalf("failure during flush")
	}()
	if code != 1 {
		t.Fatalf("re-entrant Fatalf exit code = %d", code)
	}
}

// TestRunnerReflectsFlags: the Runner inherits the parsed flag state,
// including the metrics registry when -metrics selects a path.
func TestRunnerReflectsFlags(t *testing.T) {
	c := New("testcmd")
	c.Scale = 2
	c.MaxInsts = 1000
	c.Parallel = 3
	c.Quiet = true
	c.Timeout = 5e9
	c.MetricsPath = "m.json"
	r := c.Runner()
	if r.Scale != 2 || r.MaxInsts != 1000 || r.Parallel != 3 {
		t.Errorf("runner shape = scale %d n %d parallel %d", r.Scale, r.MaxInsts, r.Parallel)
	}
	if !r.Degrade || r.WorkloadTimeout != c.Timeout {
		t.Error("timeout did not arm degradation")
	}
	if r.Log != nil {
		t.Error("quiet runner still logs")
	}
	if r.Obs == nil {
		t.Error("-metrics did not attach a registry")
	}
	if len(r.Workloads) == 0 {
		t.Error("no workloads selected by default")
	}
}
