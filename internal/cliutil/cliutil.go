// Package cliutil centralizes the flag surface and observability
// plumbing shared by the arl* commands: workload selection, harness
// shaping (-parallel, -timeout, -seed), Go profiling hooks
// (-cpuprofile, -memprofile, -pprof), the per-run metrics artifact
// (-metrics, see obs.Artifact) and the cycle-event trace
// (-trace-events). Each command registers only the flag groups it
// supports, so `arlasm -h` stays small while the shared flags spell
// and behave identically across every binary.
package cliutil

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/resilience/chaosnet"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/store/faultfs"
	"repro/internal/workload"
)

// ExitInterrupted is the exit code of a run ended by SIGINT/SIGTERM
// after draining its workers and flushing its artifacts — distinct
// from 0 (complete) and 1 (failed), so campaign scripts can tell an
// interrupted run apart and resume it.
const ExitInterrupted = 130

// Common carries the shared command state: the parsed flag values plus
// the run clock and profiling handles. Build one with New before
// registering flags, call Start after flag.Parse, and Finish (usually
// deferred) before exit.
type Common struct {
	Cmd string // command name, used in error prefixes and artifact metadata

	// Workload selection (WorkloadFlags).
	Workload string
	Scale    int
	MaxInsts uint64

	// Harness shaping (RunnerFlags / SeedFlag).
	Parallel int
	Timeout  time.Duration
	Quiet    bool
	Seed     uint64

	// Observability (ObsFlags / TraceFlags).
	CPUProfile  string
	MemProfile  string
	PprofAddr   string
	MetricsPath string
	TraceEvents string
	TraceCap    int

	// Resilience (StoreFlags): the durable artifact store, resuming
	// from it, per-stage retries, and the deterministic storage-fault
	// plan chaos runs inject under the store and journal.
	StoreDir    string
	Resume      bool
	Retries     int
	StoreFaults string

	// NetFaults (NetFaultsFlag) is the deterministic network-fault plan
	// chaos runs inject under arld's listener or arlworker's transport.
	NetFaults string

	// Store is the artifact store opened by Runner when -store-dir is
	// set (nil otherwise); Finish publishes its counters.
	Store *store.Store

	// Server / Tenant are the -server mode flags (ServerFlags): when
	// Server names an arld base URL, campaign units are submitted
	// there instead of simulated in-process.
	Server string
	Tenant string

	start       time.Time
	fs          store.FS
	cpuOut      *os.File
	ctx         context.Context
	cancel      context.CancelFunc
	reg         *obs.Registry
	interrupted atomic.Bool
	failing     atomic.Bool
	exit        func(int) // os.Exit, overridable by tests
}

// New returns the shared state for one command invocation and starts
// its wall clock.
func New(cmd string) *Common {
	return &Common{Cmd: cmd, start: time.Now(), exit: os.Exit}
}

// WorkloadFlags registers -w, -scale and -n. defMaxInsts is the -n
// default (0 = full runs).
func (c *Common) WorkloadFlags(defMaxInsts uint64) {
	flag.StringVar(&c.Workload, "w", "", "restrict to one workload")
	flag.IntVar(&c.Scale, "scale", 0, "workload scale (0 = defaults)")
	flag.Uint64Var(&c.MaxInsts, "n", defMaxInsts, "truncate runs (0 = full)")
}

// RunnerFlags registers the harness-shaping flags -parallel, -timeout
// and -q.
func (c *Common) RunnerFlags() {
	flag.IntVar(&c.Parallel, "parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	flag.DurationVar(&c.Timeout, "timeout", 0,
		"per-workload stage watchdog; implies graceful degradation (0 = off)")
	flag.BoolVar(&c.Quiet, "q", false, "suppress progress output")
}

// SeedFlag registers -seed with the given default.
func (c *Common) SeedFlag(def uint64) {
	flag.Uint64Var(&c.Seed, "seed", def, "campaign seed (same seed, same campaign, same output)")
}

// ServerFlags registers the -server mode flags: submitting campaign
// units to a running arld instead of simulating in-process.
func (c *Common) ServerFlags() {
	flag.StringVar(&c.Server, "server", "",
		"submit campaign units to the arld at this base URL (e.g. http://localhost:8080) instead of simulating locally")
	flag.StringVar(&c.Tenant, "tenant", "",
		"tenant identity reported to -server for quotas and metrics (default: the command name)")
}

// ServiceClient builds the arld client the -server flags describe,
// defaulting the tenant identity to the command name.
func (c *Common) ServiceClient() *service.Client {
	tenant := c.Tenant
	if tenant == "" {
		tenant = c.Cmd
	}
	cl := &service.Client{Base: c.Server, Tenant: tenant}
	if !c.Quiet {
		cl.Log = os.Stderr
	}
	return cl
}

// StoreFlags registers the crash-safety flags -store-dir, -resume,
// -retries and -store-faults.
func (c *Common) StoreFlags() {
	flag.StringVar(&c.StoreDir, "store-dir", "",
		"durable artifact store directory; completed stages are written through (empty = off)")
	flag.BoolVar(&c.Resume, "resume", false,
		"satisfy stages from verified -store-dir records before recomputing")
	flag.IntVar(&c.Retries, "retries", 0,
		"retry a failed stage up to this many times (deterministic backoff keyed by -seed)")
	flag.StringVar(&c.StoreFaults, "store-faults", "",
		"inject deterministic storage faults under the store and journal: seed:count:window (see internal/store/faultfs)")
}

// NetFaultsFlag registers -net-faults, the network sibling of
// -store-faults: a seeded chaos plan injected under arld's listener
// (accepted-connection faults) or arlworker's HTTP transport
// (round-trip faults).
func (c *Common) NetFaultsFlag() {
	flag.StringVar(&c.NetFaults, "net-faults", "",
		"inject deterministic network faults: seed:count:window (see internal/resilience/chaosnet)")
}

// NetInjector builds the -net-faults injector, nil when the flag is
// unset. Fatal on a malformed plan spec.
func (c *Common) NetInjector() *chaosnet.Injector {
	if c.NetFaults == "" {
		return nil
	}
	plan, err := chaosnet.ParsePlan(c.NetFaults)
	if err != nil {
		c.Fatalf("-net-faults: %v", err)
	}
	logf := func(string, ...any) {}
	if !c.Quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, c.Cmd+": "+format+"\n", args...)
		}
	}
	return chaosnet.New(plan, logf)
}

// StoreFS returns the filesystem the store and journal run on: the OS
// filesystem, wrapped with the -store-faults injection plan when one
// was given. The wrapper is built once and shared, so every component
// draws faults from the same deterministic plan.
func (c *Common) StoreFS() store.FS {
	if c.fs != nil {
		return c.fs
	}
	c.fs = store.OS()
	if c.StoreFaults != "" {
		plan, err := faultfs.ParsePlan(c.StoreFaults)
		if err != nil {
			c.Fatalf("-store-faults: %v", err)
		}
		logf := func(string, ...any) {}
		if !c.Quiet {
			logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, c.Cmd+": "+format+"\n", args...)
			}
		}
		c.fs = faultfs.New(c.fs, plan, logf)
	}
	return c.fs
}

// OpenStore opens the -store-dir artifact store over StoreFS, wires
// its log, and records it for Finish's provenance publish. Fatal when
// the directory cannot be initialized.
func (c *Common) OpenStore() *store.Store {
	s, err := store.OpenFS(c.StoreDir, c.StoreFS())
	if err != nil {
		c.Fatalf("%v", err)
	}
	if !c.Quiet {
		s.SetLog(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, c.Cmd+": "+format+"\n", args...)
		})
	}
	c.Store = s
	return s
}

// HandleSignals installs the graceful-shutdown protocol and returns
// the campaign context: the first SIGINT/SIGTERM cancels it — workers
// drain, finished artifacts flush, and Exit reports ExitInterrupted —
// while a second signal ends the process immediately.
func (c *Common) HandleSignals() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	c.ctx, c.cancel = ctx, cancel
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		c.interrupted.Store(true)
		fmt.Fprintf(os.Stderr, "%s: %v: draining workers and flushing artifacts (signal again to kill)\n",
			c.Cmd, sig)
		cancel()
		sig = <-ch
		fmt.Fprintf(os.Stderr, "%s: %v: killed\n", c.Cmd, sig)
		os.Exit(ExitInterrupted)
	}()
	return ctx
}

// Interrupted reports whether a shutdown signal cancelled the run.
func (c *Common) Interrupted() bool { return c.interrupted.Load() }

// Exit ends the process with the interruption-aware exit code: call it
// last in main, after Finish, so a drained run still reports it did
// not complete.
func (c *Common) Exit() {
	if c.Interrupted() {
		os.Exit(ExitInterrupted)
	}
}

// ObsFlags registers the profiling and metrics flags. defMetrics is
// the -metrics default ("" disables the artifact unless requested).
func (c *Common) ObsFlags(defMetrics string) {
	flag.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.StringVar(&c.MetricsPath, "metrics", defMetrics,
		"write the run's metrics artifact (JSON) to this file (empty = off)")
}

// TraceFlags registers the cycle-event trace flags -trace-events and
// -trace-cap.
func (c *Common) TraceFlags() {
	flag.StringVar(&c.TraceEvents, "trace-events", "",
		"write a Chrome trace-event JSON of one simulation to this file")
	flag.IntVar(&c.TraceCap, "trace-cap", 0,
		fmt.Sprintf("cycle-event ring capacity (0 = %d)", obs.DefaultRingCap))
}

// Start begins the instrumentation selected by the parsed flags: the
// CPU profile and the background pprof server. Call it once, right
// after flag.Parse.
func (c *Common) Start() {
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			c.Fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			c.Fatalf("cpuprofile: %v", err)
		}
		c.cpuOut = f
	}
	if c.PprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(c.PprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: pprof: %v\n", c.Cmd, err)
			}
		}()
	}
}

// Finish flushes the instrumentation: stops the CPU profile, writes
// the heap profile, and — when reg is non-nil and -metrics selected a
// path — writes the schema-validated metrics artifact. Safe to call
// when Start was not.
func (c *Common) Finish(reg *obs.Registry) {
	if c.cpuOut != nil {
		pprof.StopCPUProfile()
		if err := c.cpuOut.Close(); err != nil {
			c.Fatalf("cpuprofile: %v", err)
		}
		c.cpuOut = nil
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			c.Fatalf("%v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			c.Fatalf("memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			c.Fatalf("memprofile: %v", err)
		}
	}
	if reg != nil && c.MetricsPath != "" {
		if c.Store != nil {
			// Provenance, published last: how this run obtained its
			// results (recomputed vs resumed), kept out of the
			// deterministic simulation metrics until the artifact is
			// about to be written.
			c.Store.Publish(reg)
		}
		if err := c.WriteMetrics(reg); err != nil {
			c.Fatalf("metrics: %v", err)
		}
		if !c.Quiet {
			fmt.Fprintf(os.Stderr, "%s: metrics artifact written to %s\n", c.Cmd, c.MetricsPath)
		}
	}
}

// RunMeta describes this invocation for the metrics artifact.
func (c *Common) RunMeta() obs.RunMeta {
	return obs.RunMeta{
		Cmd:         c.Cmd,
		Args:        os.Args[1:],
		GoVersion:   runtime.Version(),
		StartedAt:   c.start.UTC().Format(time.RFC3339),
		WallSeconds: time.Since(c.start).Seconds(),
	}
}

// WriteMetrics serializes reg to the -metrics path, validating the
// encoded artifact against the embedded schema before anything touches
// disk — a command can never publish an artifact arlmetrics rejects.
// The write is atomic (temp + rename), so a crash mid-write leaves the
// previous artifact intact rather than a truncated JSON document.
func (c *Common) WriteMetrics(reg *obs.Registry) error {
	var buf bytes.Buffer
	if err := obs.EncodeArtifact(&buf, reg.Artifact(c.RunMeta())); err != nil {
		return err
	}
	if err := obs.ValidateMetrics(buf.Bytes()); err != nil {
		return fmt.Errorf("artifact does not validate against its own schema: %w", err)
	}
	return store.WriteFileAtomic(c.MetricsPath, buf.Bytes(), 0o644)
}

// Runner builds the experiment Runner the parsed flags describe,
// including the metrics registry when -metrics selected a path (read
// it back via Runner.Obs and hand it to Finish), the artifact store
// when -store-dir is set, retries, and the graceful-shutdown context
// when HandleSignals was called.
func (c *Common) Runner() *experiments.Runner {
	r := experiments.NewRunner()
	r.Scale = c.Scale
	r.MaxInsts = c.MaxInsts
	r.Parallel = c.Parallel
	r.Ctx = c.ctx
	if c.Timeout > 0 {
		r.WorkloadTimeout = c.Timeout
		r.Degrade = true
	}
	if !c.Quiet {
		r.Log = os.Stderr
	}
	if c.MetricsPath != "" {
		r.Obs = obs.NewRegistry()
		c.reg = r.Obs
	}
	if c.StoreDir != "" {
		r.Store = c.OpenStore()
		r.Resume = c.Resume
	}
	if c.Retries > 0 {
		r.Retry = resilience.Retry{Attempts: c.Retries + 1, Seed: c.Seed}
	}
	if c.Timeout > 0 || c.Retries > 0 {
		// Repeated-failure protection only matters once failures are
		// survivable events; pair the breaker with degradation.
		r.Breaker = resilience.NewBreaker(0)
		r.Degrade = true
	}
	r.Workloads = c.Workloads()
	return r
}

// Workloads resolves the -w selection (all workloads when unset); an
// unknown name is fatal.
func (c *Common) Workloads() []*workload.Workload {
	if c.Workload == "" {
		return workload.All()
	}
	w, ok := workload.ByName(c.Workload)
	if !ok {
		c.Fatalf("unknown workload %q (see internal/workload)", c.Workload)
	}
	return []*workload.Workload{w}
}

// Fatalf prints "<cmd>: <message>" to stderr and exits 1 — after
// running the same drain/flush path the SIGINT handler uses: the
// campaign context is cancelled so outstanding workers stop, and
// Finish flushes the profiles, the -metrics artifact and the store
// provenance gauges. A fatal mid-campaign therefore keeps the
// observability of every stage that did complete instead of dropping
// it on the floor. A failure inside the flush itself (Finish calls
// Fatalf on write errors) skips straight to the exit.
func (c *Common) Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, c.Cmd+": "+format+"\n", args...)
	if c.failing.CompareAndSwap(false, true) {
		if c.cancel != nil {
			c.cancel()
		}
		c.Finish(c.reg)
	}
	if c.exit == nil { // zero-value Common, not built with New
		os.Exit(1)
	}
	c.exit(1)
}

// ObserveRegistry names the registry Fatalf's emergency flush should
// write to the -metrics artifact. Runner() installs its own registry
// automatically; commands that build a registry by hand (e.g. the
// single-run trace mode) call this so a fatal still flushes it.
func (c *Common) ObserveRegistry(reg *obs.Registry) { c.reg = reg }
