package profile

import (
	"testing"

	"repro/internal/minicc"
	"repro/internal/prog"
	"repro/internal/region"
)

func run(t *testing.T, src string, max uint64) *Profile {
	t.Helper()
	p, err := minicc.Compile("t.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	pr, err := Run(p, max, nil)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return pr
}

const threeRegionSrc = `
int g[64];
int sink;
int main() {
	int a[64];
	int *h = malloc(64 * sizeof(int));
	int i;
	int it;
	for (it = 0; it < 50; it++) {
		for (i = 0; i < 64; i++) {
			g[i] = i;
			a[i] = i + 1;
			h[i] = i + 2;
		}
		sink += g[it & 63] + a[it & 63] + h[it & 63];
	}
	return sink & 255;
}`

func TestCountsAndRegions(t *testing.T) {
	pr := run(t, threeRegionSrc, 0)
	if pr.DynInsts == 0 || pr.DynRefs() == 0 {
		t.Fatal("empty profile")
	}
	if pr.DynLoads+pr.DynStores != pr.DynRefs() {
		t.Error("loads+stores != refs")
	}
	for r := 0; r < region.Count; r++ {
		if pr.RegionRefs[r] == 0 {
			t.Errorf("no %v references", region.Region(r))
		}
	}
	if pr.LoadPct() <= 0 || pr.StorePct() <= 0 || pr.LoadPct()+pr.StorePct() >= 100 {
		t.Errorf("percentages: %f / %f", pr.LoadPct(), pr.StorePct())
	}
}

func TestClassesSingleRegionDominates(t *testing.T) {
	pr := run(t, threeRegionSrc, 0)
	b := pr.Classes()
	if b.StaticTotal == 0 {
		t.Fatal("no static memory instructions")
	}
	if b.MultiRegionStaticPct() > 10 {
		t.Errorf("multi-region static = %.1f%%", b.MultiRegionStaticPct())
	}
	var sum int
	for _, n := range b.StaticByClass {
		sum += n
	}
	if sum != b.StaticTotal {
		t.Errorf("class counts sum %d != total %d", sum, b.StaticTotal)
	}
}

func TestWindowInvariants(t *testing.T) {
	pr := run(t, threeRegionSrc, 0)
	if len(pr.Windows) != len(WindowSizes) {
		t.Fatalf("windows = %d", len(pr.Windows))
	}
	for _, w := range pr.Windows {
		var meanSum float64
		for r := 0; r < region.Count; r++ {
			m := w.Mean(region.Region(r))
			if m < 0 || m > float64(w.Size) {
				t.Errorf("window %d: mean %v out of range", w.Size, m)
			}
			meanSum += m
		}
		// Total memory accesses per window cannot exceed the window.
		if meanSum > float64(w.Size) {
			t.Errorf("window %d: region means sum to %.2f", w.Size, meanSum)
		}
	}
	// The 64-window means should be about double the 32-window means.
	for r := 0; r < region.Count; r++ {
		m32 := pr.Windows[0].Mean(region.Region(r))
		m64 := pr.Windows[1].Mean(region.Region(r))
		if m32 > 0.2 && (m64 < 1.5*m32 || m64 > 2.5*m32) {
			t.Errorf("%v: w64 %.2f vs w32 %.2f", region.Region(r), m64, m32)
		}
	}
}

func TestOracleHints(t *testing.T) {
	pr := run(t, threeRegionSrc, 0)
	oracle := pr.Oracle()
	counts := map[prog.Hint]int{}
	for i := range pr.PerInst {
		counts[oracle(i)]++
	}
	if counts[prog.HintStack] == 0 || counts[prog.HintNonStack] == 0 {
		t.Errorf("oracle produced no classifications: %v", counts)
	}
	// Out-of-range indices are harmless.
	if oracle(-1) != prog.HintNone || oracle(1<<20) != prog.HintNone {
		t.Error("oracle out-of-range not HintNone")
	}
}

func TestOracleUnknownForMixedInstruction(t *testing.T) {
	// One static instruction (inside deref()) alternates stack and data.
	pr := run(t, `
int g[8];
int deref(int *p) { return *p; }
int main() {
	int a[8];
	int i;
	int s = 0;
	for (i = 0; i < 8; i++) { g[i] = i; a[i] = i; }
	for (i = 0; i < 8; i++) s += deref(g) + deref(a);
	return s & 255;
}`, 0)
	oracle := pr.Oracle()
	unknown := 0
	for i := range pr.PerInst {
		if oracle(i) == prog.HintUnknown {
			unknown++
		}
	}
	if unknown == 0 {
		t.Error("no instruction classified unknown despite region mixing")
	}
}

func TestTruncation(t *testing.T) {
	pr := run(t, threeRegionSrc, 5000)
	if pr.DynInsts != 5000 {
		t.Errorf("truncated run = %d instructions", pr.DynInsts)
	}
}

func TestBurstinessPredicate(t *testing.T) {
	var w WindowStat
	w.Size = 32
	// Clustered accesses: mostly zero with occasional bursts.
	for i := 0; i < 100; i++ {
		w.Regions[region.Heap].Add(0)
	}
	for i := 0; i < 5; i++ {
		w.Regions[region.Heap].Add(20)
	}
	if !w.StrictlyBursty(region.Heap) {
		t.Errorf("clustered distribution not bursty: mean %.2f sd %.2f",
			w.Mean(region.Heap), w.StdDev(region.Heap))
	}
	// Steady accesses: constant occupancy.
	for i := 0; i < 100; i++ {
		w.Regions[region.Data].Add(10)
	}
	if w.StrictlyBursty(region.Data) {
		t.Error("constant distribution reported bursty")
	}
}
