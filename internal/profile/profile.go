// Package profile implements the paper's §3 profiling methodology: it
// executes a program on the functional simulator and collects, per
// static memory instruction, the set of regions it accesses (Figure 2),
// per-benchmark dynamic instruction mixes (Table 1), sliding-window
// per-region access distributions (Table 2), and the profile oracle the
// paper used as its upper-bound "compiler information" (§3.5.2).
package profile

import (
	"context"
	"fmt"
	"io"

	"repro/internal/prog"
	"repro/internal/region"
	"repro/internal/stats"
	"repro/internal/vm"
)

// WindowSizes are the sliding-window lengths of Table 2.
var WindowSizes = []int{32, 64}

// InstProfile accumulates per-static-instruction facts.
type InstProfile struct {
	Regions region.Set // regions accessed at run time
	Count   uint64     // dynamic executions that accessed memory
}

// WindowStat is the Table 2 cell: the distribution of per-region access
// counts in the trailing window.
type WindowStat struct {
	Size    int
	Regions [region.Count]stats.Running
}

// Mean reports the average number of accesses to r in the window.
func (w *WindowStat) Mean(r region.Region) float64 { return w.Regions[r].Mean() }

// StdDev reports the standard deviation of accesses to r in the window.
func (w *WindowStat) StdDev(r region.Region) float64 { return w.Regions[r].StdDev() }

// StrictlyBursty reports the paper's burstiness criterion: accesses to
// a region are strictly bursty when the window mean is smaller than the
// standard deviation.
func (w *WindowStat) StrictlyBursty(r region.Region) bool {
	return w.Mean(r) < w.StdDev(r)
}

// Profile is the result of profiling one program run.
type Profile struct {
	Name      string
	DynInsts  uint64
	DynLoads  uint64
	DynStores uint64
	ExitCode  int

	// PerInst is indexed by static instruction index; entries for
	// non-memory or never-executed instructions stay zero.
	PerInst []InstProfile

	// RegionRefs counts dynamic references per region.
	RegionRefs [region.Count]uint64

	// Windows holds one WindowStat per entry in WindowSizes.
	Windows []WindowStat
}

// Run profiles program p. maxInsts bounds execution (0 uses the VM
// default); out receives program output (nil discards it).
func Run(p *prog.Program, maxInsts uint64, out io.Writer) (*Profile, error) {
	return RunContext(context.Background(), p, maxInsts, out)
}

// RunContext is Run under a context: cancellation (or a watchdog
// deadline) is checked every few thousand instructions and surfaces
// as a vm.FaultError wrapping the context's error, so a hung or
// oversized workload aborts cleanly instead of pinning the process.
func RunContext(ctx context.Context, p *prog.Program, maxInsts uint64, out io.Writer) (*Profile, error) {
	m, err := vm.New(vm.Config{Program: p, Out: out})
	if err != nil {
		return nil, err
	}
	limit := maxInsts
	if limit == 0 {
		limit = vm.DefaultMaxInsts
	}
	m.MaxInsts = limit + 1 // the loop below truncates before the VM faults
	if ctx != nil && ctx != context.Background() {
		m.FaultHook = func(seq uint64, _ uint32) error {
			if seq&0x3FF == 0 {
				return ctx.Err()
			}
			return nil
		}
	}

	pr := &Profile{
		Name:    p.Name,
		PerInst: make([]InstProfile, len(p.Text)),
	}
	type winTrack struct {
		ws   [region.Count]*stats.Window
		stat *WindowStat
	}
	tracks := make([]winTrack, len(WindowSizes))
	pr.Windows = make([]WindowStat, len(WindowSizes))
	for i, size := range WindowSizes {
		pr.Windows[i].Size = size
		tracks[i].stat = &pr.Windows[i]
		for r := 0; r < region.Count; r++ {
			w, err := stats.NewWindow(size)
			if err != nil {
				return nil, fmt.Errorf("profile: %w", err)
			}
			tracks[i].ws[r] = w
		}
	}

	observe := func(ev vm.Event) {
		pr.DynInsts++
		isMem := ev.Inst.IsMem()
		if isMem {
			if ev.Inst.IsLoad() {
				pr.DynLoads++
			} else {
				pr.DynStores++
			}
			ip := &pr.PerInst[ev.Index]
			ip.Regions = ip.Regions.Add(ev.Region)
			ip.Count++
			pr.RegionRefs[ev.Region]++
		}
		for ti := range tracks {
			tr := &tracks[ti]
			for r := 0; r < region.Count; r++ {
				hit := isMem && ev.Region == region.Region(r)
				n := tr.ws[r].Step(hit)
				if tr.ws[r].Warm() {
					tr.stat.Regions[r].Add(float64(n))
				}
			}
		}
	}
	for !m.Halted() && m.Seq() < limit {
		ev, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		observe(ev)
	}
	pr.ExitCode = m.ExitCode()
	return pr, nil
}

// DynRefs reports the total dynamic memory references.
func (p *Profile) DynRefs() uint64 { return p.DynLoads + p.DynStores }

// LoadPct and StorePct report the Table 1 percentages (relative to the
// total instruction count).
func (p *Profile) LoadPct() float64 { return pct(p.DynLoads, p.DynInsts) }

// StorePct reports the store share of all dynamic instructions.
func (p *Profile) StorePct() float64 { return pct(p.DynStores, p.DynInsts) }

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// ClassBreakdown is Figure 2's data for one program: static instruction
// counts and dynamic reference counts per region-set class.
type ClassBreakdown struct {
	StaticByClass map[region.Set]int
	DynByClass    map[region.Set]uint64
	StaticTotal   int
	DynTotal      uint64
}

// Classes computes the Figure 2 breakdown over static instructions that
// accessed memory at least once.
func (p *Profile) Classes() ClassBreakdown {
	b := ClassBreakdown{
		StaticByClass: make(map[region.Set]int),
		DynByClass:    make(map[region.Set]uint64),
	}
	for i := range p.PerInst {
		ip := &p.PerInst[i]
		if ip.Regions == 0 {
			continue
		}
		b.StaticByClass[ip.Regions]++
		b.DynByClass[ip.Regions] += ip.Count
		b.StaticTotal++
		b.DynTotal += ip.Count
	}
	return b
}

// MultiRegionStaticPct reports the share of static memory instructions
// that touched more than one region (paper: 1.8-1.9% on average).
func (b ClassBreakdown) MultiRegionStaticPct() float64 {
	multi := 0
	for set, n := range b.StaticByClass {
		if !set.Single() {
			multi += n
		}
	}
	if b.StaticTotal == 0 {
		return 0
	}
	return 100 * float64(multi) / float64(b.StaticTotal)
}

// MultiRegionDynPct reports the share of dynamic references issued by
// multi-region static instructions (paper: 0%-9.6%).
func (b ClassBreakdown) MultiRegionDynPct() float64 {
	var multi uint64
	for set, n := range b.DynByClass {
		if !set.Single() {
			multi += n
		}
	}
	if b.DynTotal == 0 {
		return 0
	}
	return 100 * float64(multi) / float64(b.DynTotal)
}

// StackOnlyStaticPct reports the share of static memory instructions in
// the "S" class (paper: over 50% on average).
func (b ClassBreakdown) StackOnlyStaticPct() float64 {
	if b.StaticTotal == 0 {
		return 0
	}
	sOnly := b.StaticByClass[region.Set(0).Add(region.Stack)]
	return 100 * float64(sOnly) / float64(b.StaticTotal)
}

// Oracle builds the paper's §3.5.2 profile-based hint source: a static
// instruction is tagged stack or non-stack when the profile shows it
// never mixed the two, and unknown otherwise. This is the "very
// accurate compiler analysis (upper bound)" variant.
func (p *Profile) Oracle() func(index int) prog.Hint {
	hints := make([]prog.Hint, len(p.PerInst))
	stackSet := region.Set(0).Add(region.Stack)
	for i := range p.PerInst {
		set := p.PerInst[i].Regions
		switch {
		case set == 0:
			hints[i] = prog.HintNone
		case set == stackSet:
			hints[i] = prog.HintStack
		case !set.Has(region.Stack):
			hints[i] = prog.HintNonStack
		default:
			hints[i] = prog.HintUnknown
		}
	}
	return func(index int) prog.Hint {
		if index < 0 || index >= len(hints) {
			return prog.HintNone
		}
		return hints[index]
	}
}
