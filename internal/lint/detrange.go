package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detrange flags `range` over a map whose body is order-sensitive:
// emitting report text or encoder output, collecting into a slice that
// is never sorted afterwards, accumulating floats (non-associative),
// or returning an iteration-dependent value (first-match-wins). Map
// iteration order is randomized per run, so each of these breaks the
// byte-identical-output invariant the store keys, -resume, and the
// arld server/local cmp checks all rest on.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc:  "flags order-sensitive work inside range-over-map, which breaks byte-identical reports",
	Run:  runDetrange,
}

// emitMethods are method names that commit bytes to an output stream
// in call order.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "EncodeToken": true, "Print": true, "Printf": true, "Println": true,
}

func runDetrange(pass *Pass) error {
	// walk tracks the innermost enclosing function body, the scope a
	// collected slice must be sorted in.
	var walk func(n ast.Node, enclosing *ast.BlockStmt)
	walk = func(n ast.Node, enclosing *ast.BlockStmt) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncDecl:
				if m.Body != nil {
					walk(m.Body, m.Body)
				}
				return false
			case *ast.FuncLit:
				if m.Body != nil {
					walk(m.Body, m.Body)
				}
				return false
			case *ast.RangeStmt:
				if isMapType(pass.TypeOf(m.X)) {
					checkMapRange(pass, m, enclosing)
				}
			}
			return true
		})
	}
	for _, file := range pass.Files {
		walk(file, nil)
	}
	return nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body inside enclosing and
// reports its order-sensitive effects.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) {
	bodyVars := bodyLocals(pass, rs)
	rangeVars := iterationVars(pass, rs)
	var appends []*types.Var

	inBody(rs.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map: receiver observes a random order")
		case *ast.AssignStmt:
			checkAssign(pass, n, rangeVars, &appends)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if refersToAny(pass, res, bodyVars) {
					pass.Reportf(n.Pos(),
						"return of iteration-dependent value inside range over map: which element wins is random")
					break
				}
			}
		case *ast.CallExpr:
			if name, ok := emitCall(pass, n); ok {
				pass.Reportf(n.Pos(), "%s inside range over map emits output in random order", name)
			}
		}
	})

	for _, obj := range appends {
		if !sortedAfter(pass, enclosing, rs, obj) {
			pass.Reportf(rs.Pos(),
				"range over map collects into %s, which is never sorted before use", obj.Name())
		}
	}
}

// inBody walks a range body without descending into function literals
// (their bodies run elsewhere, under their own analysis).
func inBody(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

func addVarOf(pass *Pass, set map[*types.Var]bool, e ast.Expr) {
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
			set[v] = true
		} else if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
			set[v] = true
		}
	}
}

// iterationVars is the key/value pair of the range statement.
func iterationVars(pass *Pass, rs *ast.RangeStmt) map[*types.Var]bool {
	set := make(map[*types.Var]bool)
	if rs.Key != nil {
		addVarOf(pass, set, rs.Key)
	}
	if rs.Value != nil {
		addVarOf(pass, set, rs.Value)
	}
	return set
}

// bodyLocals collects the iteration variables and every variable
// assigned inside the body — the values whose identity depends on
// which iteration is executing.
func bodyLocals(pass *Pass, rs *ast.RangeStmt) map[*types.Var]bool {
	set := iterationVars(pass, rs)
	add := func(e ast.Expr) { addVarOf(pass, set, e) }
	inBody(rs.Body, func(n ast.Node) {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				add(lhs)
			}
		}
	})
	return set
}

func refersToAny(pass *Pass, e ast.Expr, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkAssign classifies one assignment inside a map-range body:
// appends to track, float accumulation and string building to flag,
// map writes to ignore (commutative).
func checkAssign(pass *Pass, as *ast.AssignStmt, rangeVars map[*types.Var]bool, appends *[]*types.Var) {
	// x += expr / x -= expr: order-sensitive when x is a float
	// (non-associative) or a string (builds text in random order) —
	// unless the target slot itself is selected by the iteration
	// variables (m2[k] += v), where each iteration owns its own slot
	// and accumulation order per slot follows the outer control flow.
	if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN {
		if refersToAny(pass, as.Lhs[0], rangeVars) {
			return
		}
		t := pass.TypeOf(as.Lhs[0])
		if t != nil {
			switch b := t.Underlying().(type) {
			case *types.Basic:
				switch {
				case b.Info()&types.IsFloat != 0:
					pass.Reportf(as.Pos(), "float accumulation inside range over map: addition order changes the sum")
				case b.Info()&types.IsString != 0 && as.Tok == token.ADD_ASSIGN:
					pass.Reportf(as.Pos(), "string concatenation inside range over map builds text in random order")
				}
			}
		}
		return
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
			continue
		}
		// Appending to a local slice is fine if the slice is sorted
		// before use; track the target and decide at the end.
		if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				*appends = append(*appends, v)
				continue
			}
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				*appends = append(*appends, v)
				continue
			}
		}
		// Appends through a field or index can't be proven sorted
		// later; they usually feed a report or an artifact.
		pass.Reportf(as.Pos(), "append to %s inside range over map records elements in random order",
			types.ExprString(as.Lhs[i]))
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// emitCall reports whether call writes to an output stream: a fmt/log
// print function or a writer/encoder method.
func emitCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	if f := pass.calleeFunc(call); f != nil && f.Pkg() != nil {
		sig, _ := f.Type().(*types.Signature)
		isMethod := sig != nil && sig.Recv() != nil
		switch f.Pkg().Path() {
		case "fmt":
			if !isMethod {
				switch f.Name() {
				case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
					return "fmt." + f.Name(), true
				}
			}
		case "log":
			if !isMethod {
				switch f.Name() {
				case "Print", "Printf", "Println":
					return "log." + f.Name(), true
				}
			}
		default:
			if isMethod && emitMethods[f.Name()] {
				return f.Name(), true
			}
		}
	}
	return "", false
}

// sortedAfter reports whether a sort call mentioning obj appears in
// the enclosing function after the range statement.
func sortedAfter(pass *Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt, obj *types.Var) bool {
	if enclosing == nil {
		return false
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rs.End() {
			// Keep walking: a later sibling statement can still start
			// after the range even when this node begins before it.
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := pass.calleeFunc(call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if pkg := f.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if refersToAny(pass, arg, map[*types.Var]bool{obj: true}) {
				found = true
			}
		}
		return !found
	})
	return found
}
