package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Obskey enforces the arl-metrics/v1 schema at its source: every
// metric registered on an obs.Registry must have a compile-time
// constant snake_case name, constant snake_case label keys, and a
// single label-key set across the whole tree. A metric registered
// with differing label sets in two places splits into distinct series
// that merge tools and the schema validator cannot reconcile.
var Obskey = &Analyzer{
	Name: "obskey",
	Doc:  "flags non-constant or non-snake_case obs metric names and label-set drift",
	Run:  runObskey,
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// regMethods maps obs.Registry registration methods to the index of
// their name argument (name, help, labels).
var regMethods = map[string]bool{"Counter": true, "Gauge": true, "Hist": true}

// labelRec remembers where a metric's label-key set was first seen.
type labelRec struct {
	keys  string
	where token.Position
}

func runObskey(pass *Pass) error {
	// Wrappers forwarding a string parameter into a registration call
	// (service.counter/service.gauge) are treated as registration
	// functions themselves: the literal lives at their call sites.
	wrappers := findObsWrappers(pass)

	for _, file := range pass.Files {
		var enclosing *ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = n
			case *ast.CallExpr:
				nameIdx, labelIdx, ok := registrationCall(pass, n, wrappers)
				if !ok {
					return true
				}
				checkRegistration(pass, n, enclosing, wrappers, nameIdx, labelIdx)
			}
			return true
		})
	}
	return nil
}

// obsWrapper records one forwarding function: which parameter carries
// the metric name and which (if any) carries the labels.
type obsWrapper struct {
	nameParam  int
	labelParam int // -1 when the wrapper fixes its own labels
}

// findObsWrappers locates package functions that pass one of their own
// string parameters straight through as a registration name.
func findObsWrappers(pass *Pass) map[*types.Func]obsWrapper {
	out := map[*types.Func]obsWrapper{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fobj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fobj == nil {
				continue
			}
			params := paramVars(pass, fd.Type)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isObsRegistryMethod(pass, call) || len(call.Args) < 1 {
					return true
				}
				nameParam := paramIndex(pass, call.Args[0], params)
				if nameParam < 0 {
					return true
				}
				w := obsWrapper{nameParam: nameParam, labelParam: -1}
				if len(call.Args) >= 3 {
					w.labelParam = paramIndex(pass, call.Args[2], params)
				}
				out[fobj] = w
				return true
			})
		}
	}
	return out
}

func paramVars(pass *Pass, ftyp *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ftyp.Params == nil {
		return out
	}
	for _, field := range ftyp.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

func paramIndex(pass *Pass, arg ast.Expr, params []*types.Var) int {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return -1
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return -1
	}
	for i, p := range params {
		if p == v {
			return i
		}
	}
	return -1
}

func isObsRegistryMethod(pass *Pass, call *ast.CallExpr) bool {
	f := pass.calleeFunc(call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "repro/internal/obs" || !regMethods[f.Name()] {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil
}

// registrationCall classifies call as a registration site, returning
// the argument indices of the metric name and labels (-1 if the call
// shape fixes the labels elsewhere).
func registrationCall(pass *Pass, call *ast.CallExpr, wrappers map[*types.Func]obsWrapper) (nameIdx, labelIdx int, ok bool) {
	if isObsRegistryMethod(pass, call) {
		return 0, 2, true
	}
	if f := pass.calleeFunc(call); f != nil {
		if w, isWrapper := wrappers[f]; isWrapper {
			return w.nameParam, w.labelParam, true
		}
	}
	return 0, 0, false
}

func checkRegistration(pass *Pass, call *ast.CallExpr, enclosing *ast.FuncDecl, wrappers map[*types.Func]obsWrapper, nameIdx, labelIdx int) {
	if nameIdx >= len(call.Args) {
		return
	}
	nameArg := call.Args[nameIdx]
	// Inside a wrapper, the forwarded parameter is the name; the real
	// literal is checked at the wrapper's call sites.
	if enclosing != nil {
		if p := paramIndex(pass, nameArg, paramVars(pass, enclosing.Type)); p >= 0 {
			return
		}
	}
	name, isConst := constantString(pass, nameArg)
	if !isConst {
		pass.Reportf(nameArg.Pos(),
			"obs metric name %s is not a compile-time constant: the arl-metrics/v1 schema cannot be checked statically",
			types.ExprString(nameArg))
		return
	}
	if !snakeCase.MatchString(name) {
		pass.Reportf(nameArg.Pos(), "obs metric name %q is not snake_case", name)
	}

	keys, known := labelKeys(pass, call, enclosing, labelIdx)
	if !known {
		return
	}
	for _, k := range keys {
		if !snakeCase.MatchString(k) {
			pass.Reportf(call.Pos(), "obs label key %q on metric %q is not snake_case", k, name)
		}
	}
	keyset := strings.Join(keys, ",")
	sharedKey := "obskey/" + name
	if prev, ok := pass.Shared[sharedKey].(labelRec); ok {
		if prev.keys != keyset {
			pass.Reportf(call.Pos(),
				"metric %q registered with label set {%s} here but {%s} at %s: one metric, one label schema",
				name, keyset, prev.keys, prev.where)
		}
		return
	}
	pass.Shared[sharedKey] = labelRec{keys: keyset, where: pass.Fset.Position(call.Pos())}
}

func constantString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// labelKeys resolves the label-key set of a registration call: nil, a
// Labels composite literal, or a local variable whose definition in
// the enclosing function is a Labels composite literal. Anything more
// dynamic returns known=false and is exempt from set comparison.
func labelKeys(pass *Pass, call *ast.CallExpr, enclosing *ast.FuncDecl, labelIdx int) ([]string, bool) {
	if labelIdx < 0 {
		return nil, true // wrapper fixes labels to nil internally
	}
	if labelIdx >= len(call.Args) {
		return nil, false
	}
	arg := ast.Unparen(call.Args[labelIdx])
	switch a := arg.(type) {
	case *ast.Ident:
		if a.Name == "nil" {
			return nil, true
		}
		if lit := localCompositeDef(pass, a, enclosing); lit != nil {
			return keysOfComposite(pass, lit)
		}
		return nil, false
	case *ast.CompositeLit:
		return keysOfComposite(pass, a)
	case *ast.CallExpr:
		return nil, false // Labels.With and friends: dynamic
	}
	return nil, false
}

// localCompositeDef finds `x := obs.Labels{...}` for ident x in the
// enclosing function, requiring exactly one assignment to x so a
// reassigned variable is treated as dynamic.
func localCompositeDef(pass *Pass, id *ast.Ident, enclosing *ast.FuncDecl) *ast.CompositeLit {
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || enclosing == nil || enclosing.Body == nil {
		return nil
	}
	var lit *ast.CompositeLit
	assigns := 0
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[lid]
			if obj == nil {
				obj = pass.TypesInfo.Uses[lid]
			}
			if obj != v {
				continue
			}
			assigns++
			if i < len(as.Rhs) {
				if cl, ok := ast.Unparen(as.Rhs[i]).(*ast.CompositeLit); ok {
					lit = cl
				}
			}
		}
		return true
	})
	if assigns != 1 {
		return nil
	}
	return lit
}

func keysOfComposite(pass *Pass, lit *ast.CompositeLit) ([]string, bool) {
	var keys []string
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return nil, false
		}
		k, isConst := constantString(pass, kv.Key)
		if !isConst {
			return nil, false
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, true
}
