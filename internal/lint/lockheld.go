package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockheldPkgs are the packages where a mutex held across a blocking
// call has already caused real trouble (PR 1 fixed Runner holding its
// lock across Compile) and where the store/service concurrency model
// forbids it by design: locks there protect in-memory maps only, and
// store I/O, channel waits, and HTTP round-trips must happen outside.
var lockheldPkgs = map[string]bool{
	"repro/internal/service":     true,
	"repro/internal/store":       true,
	"repro/internal/experiments": true,
}

// Lockheld flags sync.Mutex/RWMutex critical sections that reach a
// blocking operation — channel send/receive, select without default,
// time.Sleep, WaitGroup.Wait, net/http traffic, resilience retry
// loops, artifact-store I/O, or write-ahead journal I/O — before
// unlocking. A blocked critical section stalls every other goroutine
// behind the lock and is the classic shape of the memoization
// deadlocks PR 1 removed. The journal's write-ahead discipline
// (append before the state change becomes visible) deliberately
// appends under the service locks; those sites carry //arlvet:allow
// annotations stating why, so any new journal-under-lock call site
// has to argue its ordering requirement explicitly.
var Lockheld = &Analyzer{
	Name: "lockheld",
	Doc:  "flags locks held across blocking calls (store/journal I/O, channels, HTTP, sleeps)",
	Run:  runLockheld,
}

func runLockheld(pass *Pass) error {
	if !lockheldPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				checkLockFlow(pass, body, nil)
			}
			return true
		})
	}
	return nil
}

// heldLock is one acquired mutex: the receiver expression text
// identifies it well enough for intra-function matching.
type heldLock struct {
	expr string
	pos  token.Pos
}

// checkLockFlow walks one statement list with the set of locks held on
// entry, reporting blocking operations reached while any lock is held.
// Branch bodies are analyzed with a copy of the held set: acquisitions
// inside a branch do not leak out, a sound approximation for the
// lock/defer-unlock idiom this codebase uses exclusively.
func checkLockFlow(pass *Pass, body *ast.BlockStmt, held []heldLock) {
	for _, stmt := range body.List {
		held = lockStep(pass, stmt, held)
	}
}

func lockStep(pass *Pass, stmt ast.Stmt, held []heldLock) []heldLock {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if recv, kind := lockCall(pass, s.X); kind == "lock" {
			return append(append([]heldLock(nil), held...), heldLock{expr: recv, pos: s.Pos()})
		} else if kind == "unlock" {
			return dropLock(held, recv)
		}
	case *ast.DeferStmt:
		if recv, kind := lockCall(pass, s.Call); kind == "unlock" {
			// Deferred unlock: the lock stays held for the rest of the
			// function, so keep it in the set and keep checking.
			_ = recv
			return held
		}
	case *ast.BlockStmt:
		checkLockFlow(pass, s, held)
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			lockStep(pass, s.Init, held)
		}
		reportBlockingIn(pass, s.Cond, held)
		checkLockFlow(pass, s.Body, held)
		if s.Else != nil {
			lockStep(pass, s.Else, held)
		}
		return held
	case *ast.ForStmt:
		checkLockFlow(pass, s.Body, held)
		return held
	case *ast.RangeStmt:
		if len(held) > 0 {
			if t := pass.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.Reportf(s.Pos(), "range over channel while %s is held blocks the critical section", held[0].expr)
				}
			}
		}
		reportBlockingIn(pass, s.X, held)
		checkLockFlow(pass, s.Body, held)
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		reportBlockingIn(pass, s, held)
		return held
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			pass.Reportf(s.Pos(), "select with no default while %s is held blocks the critical section (lock acquired at %s)",
				held[0].expr, pass.Fset.Position(held[0].pos))
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				checkLockFlowStmts(pass, cc.Body, held)
			}
		}
		return held
	}
	reportBlockingIn(pass, stmt, held)
	return held
}

func checkLockFlowStmts(pass *Pass, stmts []ast.Stmt, held []heldLock) {
	for _, s := range stmts {
		held = lockStep(pass, s, held)
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func dropLock(held []heldLock, recv string) []heldLock {
	out := make([]heldLock, 0, len(held))
	for _, h := range held {
		if h.expr != recv {
			out = append(out, h)
		}
	}
	return out
}

// lockCall classifies e as a Lock/RLock ("lock") or Unlock/RUnlock
// ("unlock") call on a sync mutex, returning the receiver text.
func lockCall(pass *Pass, e ast.Expr) (recv, kind string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	f, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", ""
	}
	switch f.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), "lock"
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), "unlock"
	}
	return "", ""
}

// reportBlockingIn scans one statement or expression subtree (without
// entering function literals) for blocking operations while held is
// non-empty.
func reportBlockingIn(pass *Pass, n ast.Node, held []heldLock) {
	if len(held) == 0 || n == nil {
		return
	}
	h := held[len(held)-1]
	lockNote := func() string {
		return h.expr + " is held (lock acquired at " + pass.Fset.Position(h.pos).String() + ")"
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(m) {
				pass.Reportf(m.Pos(), "select with no default while %s", lockNote())
			}
		case *ast.SendStmt:
			pass.Reportf(m.Pos(), "channel send while %s", lockNote())
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				pass.Reportf(m.Pos(), "channel receive while %s", lockNote())
			}
		case *ast.CallExpr:
			if why := blockingCallee(pass, m); why != "" {
				pass.Reportf(m.Pos(), "%s while %s", why, lockNote())
			}
		}
		return true
	})
}

// blockingCallee describes why a call blocks, or returns "".
func blockingCallee(pass *Pass, call *ast.CallExpr) string {
	f := pass.calleeFunc(call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	pkg, name := f.Pkg().Path(), f.Name()
	sig, _ := f.Type().(*types.Signature)
	recvType := ""
	if sig != nil && sig.Recv() != nil {
		recvType = sig.Recv().Type().String()
	}
	switch {
	case pkg == "time" && name == "Sleep":
		return "time.Sleep"
	case pkg == "net/http":
		return "net/http call " + name
	case pkg == "sync" && name == "Wait":
		return "sync " + recvShort(recvType) + ".Wait"
	case pkg == "os/exec" && (name == "Run" || name == "Wait" || name == "Output" || name == "CombinedOutput"):
		return "exec.Cmd." + name
	case strings.HasPrefix(recvType, "*repro/internal/store.Store"):
		return "store I/O " + name
	case pkg == "repro/internal/store" && (name == "Open" || name == "OpenFS" ||
		name == "WriteFileAtomic" || name == "WriteFileAtomicFS"):
		return "store I/O " + name
	case strings.HasPrefix(recvType, "*repro/internal/service/journal.Journal") &&
		(name == "Append" || name == "Replay" || name == "Close"):
		// Append fsyncs, Replay reads every segment, Close flushes: all
		// real file I/O, never free under a service lock.
		return "journal I/O " + name
	case pkg == "repro/internal/service/journal" && (name == "Open" || name == "OpenFS"):
		return "journal I/O " + name
	case strings.Contains(recvType, "repro/internal/resilience.Retry") && name == "Do":
		return "resilience retry loop"
	}
	return ""
}

func recvShort(t string) string {
	if i := strings.LastIndexByte(t, '.'); i >= 0 {
		return t[i+1:]
	}
	return t
}
