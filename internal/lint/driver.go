package lint

import "sort"

// Analyzers returns every arlvet analyzer, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Detrange,
		Wallclock,
		Lockheld,
		Ctxflow,
		Atomicmix,
		Obskey,
	}
}

// Run applies analyzers to pkgs, honors //arlvet:allow annotations,
// and returns the surviving findings sorted by position. Packages are
// visited in the (sorted) order Load returned them so Shared-state
// analyzers report deterministically.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	shared := make(map[string]any)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Shared:    shared,
				report:    func(d Diagnostic) { pkgDiags = append(pkgDiags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		diags = append(diags, suppress(pkgDiags, pkg.Fset, pkg.Files)...)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		if di.Pos.Column != dj.Pos.Column {
			return di.Pos.Column < dj.Pos.Column
		}
		return di.Analyzer < dj.Analyzer
	})
	return diags, nil
}
