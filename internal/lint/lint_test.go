package lint

import (
	"fmt"
	"regexp"
	"testing"
)

// wantPattern pulls the backquoted expectation patterns out of one
// "// want" fixture comment, in the style of analysistest.
var wantPattern = regexp.MustCompile("`([^`]+)`")

type expectation struct {
	re      *regexp.Regexp
	line    int
	matched bool
}

// expectationsOf scans a loaded fixture package for // want comments
// and returns them keyed by "filename:line".
func expectationsOf(t *testing.T, pkg *Package) map[string][]*expectation {
	t.Helper()
	out := map[string][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := indexWant(text)
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantPattern.FindAllStringSubmatch(text[i:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					out[key] = append(out[key], &expectation{re: re, line: pos.Line})
				}
			}
		}
	}
	return out
}

// indexWant finds the start of a "want" marker in a comment, or -1.
func indexWant(text string) int {
	for i := 0; i+4 <= len(text); i++ {
		if text[i:i+4] == "want" {
			return i
		}
	}
	return -1
}

// runFixture loads testdata/src/<rel> and checks the analyzers'
// findings against the fixture's // want comments, both directions:
// every finding needs a want, every want needs a finding.
func runFixture(t *testing.T, rel string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := LoadDir("testdata/src/" + rel)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	diags, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", rel, err)
	}
	exps := expectationsOf(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, e := range exps[key] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, list := range exps {
		for _, e := range list {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.re)
			}
		}
	}
}

func TestDetrange(t *testing.T)  { runFixture(t, "detrange", Detrange) }
func TestWallclock(t *testing.T) { runFixture(t, "wallclock/cpu", Wallclock) }
func TestLockheld(t *testing.T)  { runFixture(t, "lockheld/service", Lockheld) }
func TestCtxflow(t *testing.T)   { runFixture(t, "ctxflow", Ctxflow) }
func TestAtomicmix(t *testing.T) { runFixture(t, "atomicmix", Atomicmix) }
func TestObskey(t *testing.T)    { runFixture(t, "obskey", Obskey) }

// TestFixturesTripAllAnalyzers is the arlvet -dir acceptance check:
// every buggy fixture must make the full analyzer suite report at
// least one finding, so the fixtures stay honest as analyzers evolve.
func TestFixturesTripAllAnalyzers(t *testing.T) {
	for _, rel := range []string{
		"detrange", "wallclock/cpu", "lockheld/service",
		"ctxflow", "atomicmix", "obskey",
	} {
		pkg, err := LoadDir("testdata/src/" + rel)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", rel, err)
		}
		diags, err := Run([]*Package{pkg}, Analyzers())
		if err != nil {
			t.Fatalf("running suite on %s: %v", rel, err)
		}
		if len(diags) == 0 {
			t.Errorf("fixture %s produced no findings from the full suite", rel)
		}
	}
}

// TestLoadDirSyntheticPath pins the fixture-path contract the
// path-scoped analyzers rely on.
func TestLoadDirSyntheticPath(t *testing.T) {
	pkg, err := LoadDir("testdata/src/wallclock/cpu")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "repro/internal/cpu" {
		t.Fatalf("synthetic import path = %q, want repro/internal/cpu", pkg.Path)
	}
}

// TestAllowAnnotationParsing pins the annotation grammar: the analyzer
// name list ends at the first field that is not a lower-case word, and
// an annotation waives its own line and the next.
func TestAllowAnnotationParsing(t *testing.T) {
	if !isAnalyzerName("wallclock") || isAnalyzerName("Wallclock") || isAnalyzerName("") {
		t.Fatal("isAnalyzerName grammar broken")
	}
}

// A broken pattern must surface as a load error, not as a silently
// clean run over zero packages — a typo'd CI gate must fail loudly.
func TestLoadRejectsBadPattern(t *testing.T) {
	if _, err := Load("./does/not/exist"); err == nil {
		t.Fatal("Load of a nonexistent pattern succeeded; want an error")
	}
}
