// Package lint implements arlvet's static analyzers: go/analysis-style
// passes that mechanically enforce the invariants the rest of the
// harness only checks dynamically — deterministic report rendering
// (detrange), no wall-clock or global-rand reads in the deterministic
// simulator packages (wallclock), no locks held across blocking calls
// (lockheld), context propagation (ctxflow), consistent atomic access
// (atomicmix), and a stable obs metric schema (obskey).
//
// The environment this repo builds in has no network and no module
// cache, so golang.org/x/tools is unavailable. The package therefore
// carries its own minimal driver: packages are located and compiled
// with `go list -export`, type-checked from source with go/types using
// export data for every import, and analyzed through an Analyzer/Pass
// API that mirrors golang.org/x/tools/go/analysis closely enough that
// the analyzers would port to a real multichecker unchanged.
//
// A finding the author has judged intentional is suppressed with an
// annotation on the flagged line or the line above it:
//
//	start := time.Now() //arlvet:allow wallclock harness cost table is wall-time by definition
//
// The annotation names the analyzer being waived; everything after the
// name is free-form justification. Annotations are deliberately loud in
// review: the escape hatch documents the exception instead of hiding
// it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string // short lower-case identifier, used in //arlvet:allow
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) error
}

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Shared is scratch space that lives for one driver run across
	// every (package, analyzer) pair, letting an analyzer correlate
	// facts between packages (obskey uses it to detect label-set
	// drift). Keys should be prefixed with the analyzer name.
	Shared map[string]any

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, with a resolved file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// TypeOf is a nil-tolerant p.TypesInfo.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, function-typed variables, and type conversions.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := p.TypesInfo.Uses[id].(*types.Func)
	return f
}

// pkgFunc reports whether call invokes the package-level function
// pkgpath.name.
func (p *Pass) pkgFunc(call *ast.CallExpr, pkgpath, name string) bool {
	f := p.calleeFunc(call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgpath &&
		f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

const allowPrefix = "arlvet:allow"

// allowSet maps file line numbers to the analyzer names waived on that
// line. An annotation waives its own line and the line below it, so it
// can share the flagged line or sit on its own line above.
type allowSet map[int]map[string]bool

// allowedIn scans a file's comments for //arlvet:allow annotations.
func allowedIn(fset *token.FileSet, f *ast.File) allowSet {
	var set allowSet
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimLeft(c.Text, "/* \t"))
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if set == nil {
				set = make(allowSet)
			}
			for _, name := range strings.Fields(text[len(allowPrefix):]) {
				if !isAnalyzerName(name) {
					break // rest of the comment is justification prose
				}
				for _, l := range []int{line, line + 1} {
					if set[l] == nil {
						set[l] = make(map[string]bool)
					}
					set[l][name] = true
				}
			}
		}
	}
	return set
}

func isAnalyzerName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

// suppress drops diagnostics waived by an //arlvet:allow annotation in
// the package's files.
func suppress(diags []Diagnostic, fset *token.FileSet, files []*ast.File) []Diagnostic {
	byFile := make(map[string]allowSet)
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if set := allowedIn(fset, f); set != nil {
			byFile[name] = set
		}
	}
	if len(byFile) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if set := byFile[d.Pos.Filename]; set != nil && set[d.Pos.Line][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
