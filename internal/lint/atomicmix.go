package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Atomicmix flags struct fields that are accessed both through
// sync/atomic calls and through plain reads or writes in the same
// package. Mixed access is a data race the race detector only catches
// when both paths run concurrently under -race; the analyzer catches
// the shape unconditionally. Fields of the method-based atomic.*
// types (atomic.Uint64 and friends) cannot mix and are out of scope.
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags fields accessed both via sync/atomic and plainly",
	Run:  runAtomicmix,
}

func runAtomicmix(pass *Pass) error {
	// First pass: fields whose address is taken by a sync/atomic call.
	atomicFields := map[*types.Var]token.Pos{}
	inAtomicArg := map[ast.Expr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := pass.calleeFunc(call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldOf(pass, sel); v != nil {
					if _, seen := atomicFields[v]; !seen {
						atomicFields[v] = call.Pos()
					}
					inAtomicArg[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Second pass: plain accesses of those fields.
	type finding struct {
		pos token.Pos
		v   *types.Var
	}
	var findings []finding
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicArg[sel] {
				return true
			}
			v := fieldOf(pass, sel)
			if v == nil {
				return true
			}
			if _, ok := atomicFields[v]; ok {
				findings = append(findings, finding{pos: sel.Pos(), v: v})
			}
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos,
			"field %s is accessed with sync/atomic at %s but plainly here: every access must go through atomic",
			f.v.Name(), pass.Fset.Position(atomicFields[f.v]))
	}
	return nil
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
