package lint

import (
	"go/ast"
	"go/types"
)

// Ctxflow flags functions that accept a context.Context and then fail
// to propagate it: either by calling a context-taking callee with a
// fresh context.Background()/TODO(), or by never using the parameter
// at all. Both shapes detach the callee from cancellation — the PR 3
// watchdog, per-attempt retry deadlines, and graceful drain all stop
// working below such a call.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags ctx-taking functions that drop the context instead of passing it on",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) error {
	for _, file := range pass.Files {
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(m ast.Node) bool {
				var ftyp *ast.FuncType
				var body *ast.BlockStmt
				switch m := m.(type) {
				case *ast.FuncDecl:
					ftyp, body = m.Type, m.Body
				case *ast.FuncLit:
					ftyp, body = m.Type, m.Body
				default:
					return true
				}
				if body != nil {
					checkCtxFunc(pass, ftyp, body, walk)
				}
				return false
			})
		}
		walk(file)
	}
	return nil
}

// checkCtxFunc analyzes one function with its own parameter list; walk
// recurses into nested function literals so each gets judged against
// its own signature.
func checkCtxFunc(pass *Pass, ftyp *ast.FuncType, body *ast.BlockStmt, walk func(ast.Node)) {
	ctxParams, ordered := contextParams(pass, ftyp)
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal capturing ctx counts as a use for the outer
			// function; the literal's own body is checked separately.
			if len(ctxParams) > 0 && usesAny(pass, n.Body, ctxParams) {
				used = true
			}
			walk(n)
			return false
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && ctxParams[obj] {
				used = true
			}
		case *ast.CallExpr:
			if len(ctxParams) > 0 {
				checkCtxCall(pass, n)
			}
		}
		return true
	})
	if !used && len(ordered) > 0 {
		if v := ordered[0]; v.Name() != "" && v.Name() != "_" {
			pass.Reportf(v.Pos(),
				"context parameter %s is never used: cancellation and deadlines do not propagate past this function",
				v.Name())
		}
	}
}

// contextParams collects the function's context.Context parameters, in
// declaration order.
func contextParams(pass *Pass, ftyp *ast.FuncType) (map[*types.Var]bool, []*types.Var) {
	out := map[*types.Var]bool{}
	var ordered []*types.Var
	if ftyp.Params == nil {
		return out, nil
	}
	for _, field := range ftyp.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				out[v] = true
				ordered = append(ordered, v)
			}
		}
	}
	return out, ordered
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxCall flags calls that hand a context-taking callee a fresh
// Background/TODO context while the caller has one to give.
func checkCtxCall(pass *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		inner, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue
		}
		for _, name := range []string{"Background", "TODO"} {
			if pass.pkgFunc(inner, "context", name) {
				callee := "callee"
				if f := pass.calleeFunc(call); f != nil {
					callee = f.Name()
				}
				pass.Reportf(arg.Pos(),
					"context.%s passed to %s inside a function that has its own ctx: caller cancellation is dropped",
					name, callee)
			}
		}
	}
}

func usesAny(pass *Pass, n ast.Node, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}
