package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the packages whose outputs must be a pure
// function of (workload, config, seed): the simulator core and every
// layer the store keys or the differential tests compare bytewise.
// internal/experiments is included because its memoized artifacts and
// report tables feed the same comparisons; its two legitimate
// wall-clock sites (the RunStats harness-cost table) carry
// //arlvet:allow annotations.
var deterministicPkgs = map[string]bool{
	"repro/internal/cpu":         true,
	"repro/internal/cache":       true,
	"repro/internal/decouple":    true,
	"repro/internal/vm":          true,
	"repro/internal/core":        true,
	"repro/internal/stats":       true,
	"repro/internal/faultinject": true,
	"repro/internal/static":      true,
	"repro/internal/experiments": true,
}

// wallclockFuncs are the time functions that read the wall clock or
// the scheduler; timers and tickers are included because they make
// control flow depend on elapsed real time.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

// randConstructors are the math/rand entry points that build an
// explicitly-seeded generator — the deterministic way in.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Wallclock flags wall-clock reads and global math/rand use inside the
// deterministic packages. time.Now in a simulation path makes results
// differ run to run; the global rand source is both nondeterministic
// (randomly seeded since Go 1.20) and a hidden cross-test coupling.
// Explicitly seeded rand.New(rand.NewSource(seed)) generators pass.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "flags time.Now/time.Since and global math/rand in deterministic packages",
	Run:  runWallclock,
}

func runWallclock(pass *Pass) error {
	if !deterministicPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := pass.calleeFunc(call)
			if f == nil || f.Pkg() == nil {
				return true
			}
			if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (t.Sub, r.Intn on a seeded *Rand) are fine
			}
			switch f.Pkg().Path() {
			case "time":
				if wallclockFuncs[f.Name()] {
					pass.Reportf(call.Pos(),
						"time.%s in deterministic package %s: simulation output must not depend on the wall clock",
						f.Name(), pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[f.Name()] {
					pass.Reportf(call.Pos(),
						"global %s.%s in deterministic package %s: use an explicitly seeded generator",
						f.Pkg().Name(), f.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}
