package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *listError
}

type listError struct {
	Err string
}

// goList runs `go list -e -export -deps -json` on the patterns from
// dir and decodes the package stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(out)
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data gathered
// by `go list -export`. It satisfies both types.Importer and
// types.ImporterFrom by delegating to the stdlib gc importer with a
// lookup over the export file table.
type exportImporter struct {
	underlying types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	return &exportImporter{underlying: imp.(types.ImporterFrom)}
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.underlying.ImportFrom(path, dir, 0)
}

var moduleRoot = sync.OnceValues(func() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
})

// Load locates the packages matching patterns (resolved from the
// enclosing module root), type-checks each from source with imports
// satisfied by export data, and returns them sorted by import path.
func Load(patterns ...string) ([]*Package, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	pkgs, err := goList(root, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	var roots []*listPkg
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		// Check Error before skipping empty GoFiles: a broken pattern
		// (`go list -e ./no/such/dir`) comes back with no files at all,
		// and silently analyzing zero packages would let a typo in a CI
		// gate pass as a clean run.
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		roots = append(roots, p)
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("go list %s: matched no Go packages", strings.Join(patterns, " "))
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	out := make([]*Package, 0, len(roots))
	for _, p := range roots {
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := typeCheck(fset, imp, p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the .go files of one directory as a standalone
// package — the fixture path used by tests and arlvet -dir, which must
// reach packages the go tool's wildcard patterns skip (testdata).
// The synthetic import path "repro/internal/<base>" puts fixtures in
// scope of the path-scoped analyzers.
func LoadDir(dir string) (*Package, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	if !filepath.IsAbs(dir) {
		if wd, err := os.Getwd(); err == nil {
			dir = filepath.Join(wd, dir)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no .go files", dir)
	}
	sort.Strings(files)

	// Parse once just to collect the import set, then gather export
	// data for it (plus transitive deps) in one go list call.
	fset := token.NewFileSet()
	imports := map[string]bool{}
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path != "unsafe" {
				imports[path] = true
			}
		}
	}
	patterns := make([]string, 0, len(imports))
	for path := range imports {
		patterns = append(patterns, path)
	}
	sort.Strings(patterns)
	exports := make(map[string]string)
	if len(patterns) > 0 {
		pkgs, err := goList(root, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := newExportImporter(fset, exports)
	pkgpath := "repro/internal/" + filepath.Base(dir)
	return typeCheckParsed(fset, imp, pkgpath, asts)
}

func typeCheck(fset *token.FileSet, imp types.Importer, path string, filenames []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	return typeCheckParsed(fset, imp, path, asts)
}

func typeCheckParsed(fset *token.FileSet, imp types.Importer, path string, asts []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, asts, info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}
