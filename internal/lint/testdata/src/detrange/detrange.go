// Package detrange is an arlvet fixture: order-sensitive work inside
// range-over-map. Lines marked `want` must produce exactly the matching
// diagnostic; unmarked code must stay clean.
package detrange

import (
	"fmt"
	"io"
	"sort"
)

// Bad: report text committed in map iteration order.
func emit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map emits output in random order`
	}
}

// Bad: collected slice is never sorted before use.
func collect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `collects into keys, which is never sorted before use`
		keys = append(keys, k)
	}
	return keys
}

// Good: the slice is sorted after collection.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Bad: float addition is not associative, so the sum depends on order.
func total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation inside range over map`
	}
	return sum
}

// Bad: text built in random order.
func join(m map[string]int) string {
	var s string
	for k := range m {
		s += k // want `string concatenation inside range over map builds text in random order`
	}
	return s
}

// Bad: which element wins is random.
func anyKey(m map[string]int) string {
	for k := range m {
		return k // want `return of iteration-dependent value inside range over map`
	}
	return ""
}

// Bad: the receiver observes a random order.
func feed(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

// Good: each iteration accumulates into its own slot, so per-slot
// order follows the (deterministic) enclosing control flow.
func rescale(m map[string]float64, out map[string]float64) {
	for k, v := range m {
		out[k] += v / 2
	}
}

// Allowed: the annotation waives the finding on the next line.
func debugDump(m map[string]int) {
	for k, v := range m {
		//arlvet:allow detrange fixture exercises the allow path
		fmt.Println(k, v)
	}
}
