// Package obskey is an arlvet fixture: obs metric registration must
// use constant snake_case names, snake_case label keys, and one label
// set per metric.
package obskey

import "repro/internal/obs"

func register(reg *obs.Registry) {
	reg.Counter("requests_total", "requests served", nil)
	reg.Gauge("queue_depth", "queued units", obs.Labels{"shard": "0"})

	badName := "dynamic_" + suffix()
	reg.Counter(badName, "bad", nil)                                // want `obs metric name badName is not a compile-time constant`
	reg.Counter("BadName", "bad", nil)                              // want `obs metric name "BadName" is not snake_case`
	reg.Counter("labeled_total", "bad key", obs.Labels{"Rank": ""}) // want `obs label key "Rank" on metric "labeled_total" is not snake_case`
}

// Bad: same metric, different label set than the registration above.
func drift(reg *obs.Registry) {
	reg.Gauge("queue_depth", "queued units", obs.Labels{"worker": "0"}) // want `metric "queue_depth" registered with label set \{worker\} here but \{shard\}`
}

func suffix() string { return "x" }

// counter forwards its name parameter into a registration call, so
// arlvet treats it as a registration function and checks literals at
// its call sites instead.
func counter(reg *obs.Registry, name string) {
	reg.Counter(name, "forwarded", nil)
}

func useWrapper(reg *obs.Registry) {
	counter(reg, "wrapped_total")
	counter(reg, "NotSnake") // want `obs metric name "NotSnake" is not snake_case`
}

var dynamicName = "replayed_total"

// Allowed: the annotation waives a deliberately dynamic name.
func replay(reg *obs.Registry) {
	//arlvet:allow obskey fixture exercises the allow path
	reg.Counter(dynamicName, "replayed", nil)
}

// The per-partition cache publish path (cpu.Result.Publish): every
// cache metric carries exactly {cache, partition} — the L2 rides the
// same schema with partition "shared". A registration that drops the
// partition label is set drift and must not compile past arlvet.
func partitions(reg *obs.Registry) {
	reg.Counter("cache_hits_total", "hits", obs.Labels{"cache": "L1D", "partition": "0"})
	reg.Counter("cache_hits_total", "hits", obs.Labels{"cache": "LVC", "partition": "1"})
	reg.Counter("cache_hits_total", "hits", obs.Labels{"cache": "L2"}) // want `metric "cache_hits_total" registered with label set \{cache\} here but \{cache,partition\}`
}
