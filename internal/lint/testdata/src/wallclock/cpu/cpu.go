// Package cpu is an arlvet fixture standing in for a deterministic
// simulator package: the loader's synthetic import path
// repro/internal/cpu puts it in wallclock's scope.
package cpu

import (
	"math/rand"
	"time"
)

// Bad: wall-clock read in a deterministic package.
func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package cpu`
}

// Bad: elapsed real time reaches a result.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in deterministic package cpu`
}

// Bad: the global rand source is randomly seeded and process-shared.
func jitter() int {
	return rand.Intn(8) // want `global rand\.Intn in deterministic package cpu`
}

// Good: an explicitly seeded generator is the deterministic way in.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// Good: duration arithmetic never reads the clock.
func budget(d time.Duration) time.Duration {
	return 2 * d
}

// Allowed: the annotation waives its own line and the line below.
func harnessCost() time.Duration {
	start := time.Now() //arlvet:allow wallclock fixture exercises the allow path
	return time.Since(start)
}
