// Package atomicmix is an arlvet fixture: a field updated through
// sync/atomic must never also be read or written plainly.
package atomicmix

import "sync/atomic"

type counter struct {
	hits  int64
	total int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
	c.total++
}

// Bad: plain read of a field the package updates atomically.
func (c *counter) snapshot() int64 {
	return c.hits // want `field hits is accessed with sync/atomic`
}

// Good: every other access goes through atomic.
func (c *counter) load() int64 {
	return atomic.LoadInt64(&c.hits)
}

// Good: total is only ever accessed plainly.
func (c *counter) sum() int64 { return c.total }

// Allowed: the annotation waives the finding on the next line.
func (c *counter) racyPeek() int64 {
	//arlvet:allow atomicmix fixture exercises the allow path
	return c.hits
}
