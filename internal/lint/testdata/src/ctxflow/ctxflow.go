// Package ctxflow is an arlvet fixture: functions that accept a
// context and then detach their callees from it.
package ctxflow

import "context"

// Good: the context flows through.
func lookup(ctx context.Context, key string) error {
	return fetch(ctx, key)
}

func fetch(ctx context.Context, key string) error {
	_ = key
	<-ctx.Done()
	return ctx.Err()
}

// Bad: a fresh Background context severs the caller's cancellation.
func refresh(ctx context.Context, key string) error {
	_ = ctx
	return fetch(context.Background(), key) // want `context\.Background passed to fetch`
}

// Bad: the parameter is accepted and then dropped entirely.
func drop(ctx context.Context, key string) error { // want `context parameter ctx is never used`
	return fetch(context.TODO(), key) // want `context\.TODO passed to fetch`
}

// Good: the blank name opts out explicitly.
func tick(_ context.Context) int { return 1 }

// Good: a function literal capturing ctx counts as a use.
func spawn(ctx context.Context) func() error {
	return func() error { return fetch(ctx, "spawn") }
}

// Allowed: the annotation waives a deliberate detach.
func detach(ctx context.Context, key string) error {
	_ = ctx
	//arlvet:allow ctxflow fixture exercises the allow path
	return fetch(context.Background(), key)
}
