// Package service is an arlvet fixture standing in for a lock-scoped
// package: the loader's synthetic import path repro/internal/service
// puts it in lockheld's scope.
package service

import (
	"sync"
	"time"
)

type queue struct {
	mu    sync.Mutex
	items []int
	ch    chan int
}

// Bad: an unbuffered send can block every goroutine behind mu.
func (q *queue) push(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.ch <- v // want `channel send while q\.mu is held`
	q.mu.Unlock()
}

// Good: the blocking send happens after the critical section.
func (q *queue) pushOutside(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.ch <- v
}

// Bad: the deferred unlock keeps mu held across the sleep.
func (q *queue) slowScan() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while q\.mu is held`
	return len(q.items)
}

// Bad: an unbounded wait inside the critical section.
func (q *queue) waitDrain(done chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want `select with no default while q\.mu is held`
	case <-done:
	}
}

// Good: a select with default polls without blocking.
func (q *queue) tryNotify(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
	default:
	}
}

// Allowed: the annotation waives the finding on the next line.
func (q *queue) pushChecked(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//arlvet:allow lockheld fixture exercises the allow path
	q.ch <- v
}
