// Package service is an arlvet fixture standing in for a lock-scoped
// package: the loader's synthetic import path repro/internal/service
// puts it in lockheld's scope.
package service

import (
	"sync"
	"time"

	"repro/internal/service/journal"
)

type queue struct {
	mu    sync.Mutex
	items []int
	ch    chan int
}

// Bad: an unbuffered send can block every goroutine behind mu.
func (q *queue) push(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.ch <- v // want `channel send while q\.mu is held`
	q.mu.Unlock()
}

// Good: the blocking send happens after the critical section.
func (q *queue) pushOutside(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.ch <- v
}

// Bad: the deferred unlock keeps mu held across the sleep.
func (q *queue) slowScan() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while q\.mu is held`
	return len(q.items)
}

// Bad: an unbounded wait inside the critical section.
func (q *queue) waitDrain(done chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want `select with no default while q\.mu is held`
	case <-done:
	}
}

// Good: a select with default polls without blocking.
func (q *queue) tryNotify(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
	default:
	}
}

// Allowed: the annotation waives the finding on the next line.
func (q *queue) pushChecked(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//arlvet:allow lockheld fixture exercises the allow path
	q.ch <- v
}

// Bad: a write-ahead append fsyncs; holding mu across it stalls every
// goroutine behind the lock for the duration of a disk flush.
func (q *queue) journalUnderLock(j *journal.Journal) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return j.Append(journal.Record{T: journal.TypeEnd}) // want `journal I/O Append while q\.mu is held`
}

// Allowed: the real WAL sites hold the lock on purpose — the record
// must be durable before the state change becomes visible — and say so.
func (q *queue) journalOrdered(j *journal.Journal) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	//arlvet:allow lockheld fixture: append-before-visible ordering requires the lock
	return j.Append(journal.Record{T: journal.TypeEnd})
}
