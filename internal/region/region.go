// Package region defines the memory-region model at the heart of the
// paper: a program's address space is partitioned into data, heap, and
// stack regions, every memory access falls in exactly one of them, and a
// static memory instruction is characterized by the *set* of regions it
// touches over a run (the paper's Figure 2 classes).
package region

import (
	"fmt"
	"strings"
)

// Region identifies one of the three data memory regions. The paper's
// predictor collapses Data and Heap into "non-stack"; see IsStack.
type Region uint8

// The three regions.
const (
	Data Region = iota
	Heap
	Stack
	numRegions
)

// Count is the number of regions.
const Count = int(numRegions)

func (r Region) String() string {
	switch r {
	case Data:
		return "data"
	case Heap:
		return "heap"
	case Stack:
		return "stack"
	}
	return fmt.Sprintf("region(%d)", uint8(r))
}

// IsStack reports whether the region is the stack. The binary
// stack/non-stack split is the one the ARPT predicts.
func (r Region) IsStack() bool { return r == Stack }

// Set is a bitset of regions, characterizing which regions a static
// memory instruction has accessed at run time.
type Set uint8

// Add returns the set with r added.
func (s Set) Add(r Region) Set { return s | 1<<r }

// Has reports whether r is in the set.
func (s Set) Has(r Region) bool { return s&(1<<r) != 0 }

// Len reports the number of regions in the set.
func (s Set) Len() int {
	n := 0
	for r := Data; r < numRegions; r++ {
		if s.Has(r) {
			n++
		}
	}
	return n
}

// Single reports whether exactly one region is in the set — the access
// region locality property.
func (s Set) Single() bool { return s.Len() == 1 }

// Class renders the set in the paper's Figure 2 notation: "D", "H", "S",
// "D/H", "D/S", "H/S", "D/H/S", or "-" for the empty set.
func (s Set) Class() string {
	if s == 0 {
		return "-"
	}
	var parts []string
	if s.Has(Data) {
		parts = append(parts, "D")
	}
	if s.Has(Heap) {
		parts = append(parts, "H")
	}
	if s.Has(Stack) {
		parts = append(parts, "S")
	}
	return strings.Join(parts, "/")
}

func (s Set) String() string { return s.Class() }

// AllClasses lists the seven non-empty Figure 2 classes in the paper's
// presentation order.
var AllClasses = []Set{
	Set(0).Add(Data),
	Set(0).Add(Heap),
	Set(0).Add(Stack),
	Set(0).Add(Data).Add(Heap),
	Set(0).Add(Data).Add(Stack),
	Set(0).Add(Heap).Add(Stack),
	Set(0).Add(Data).Add(Heap).Add(Stack),
}

// Layout captures the segment boundaries a run-time system establishes.
// DataBase..HeapBase is the static data segment; HeapBase..Brk the heap
// (grown by sbrk); addresses at or above StackFloor are stack. The
// paper's TLB stores the same information as one bit per page.
type Layout struct {
	TextBase   uint32 // start of the text segment
	DataBase   uint32 // start of static data
	HeapBase   uint32 // start of the heap (end of static data)
	Brk        uint32 // current heap break (exclusive)
	StackTop   uint32 // highest stack address (exclusive)
	StackFloor uint32 // lowest address ever considered stack
}

// Classify reports which region addr belongs to. Addresses between the
// heap break and the stack floor (untouched territory) classify as heap:
// a real run-time system grows the heap into that space, and treating it
// as heap keeps the classification total.
func (l Layout) Classify(addr uint32) Region {
	if addr >= l.StackFloor {
		return Stack
	}
	if addr < l.HeapBase {
		return Data
	}
	return Heap
}

// ValidData reports whether addr falls in the static data segment.
func (l Layout) ValidData(addr uint32) bool {
	return addr >= l.DataBase && addr < l.HeapBase
}

// ValidHeap reports whether addr falls below the current break in the
// heap segment.
func (l Layout) ValidHeap(addr uint32) bool {
	return addr >= l.HeapBase && addr < l.Brk
}

// ValidStack reports whether addr falls in the stack segment.
func (l Layout) ValidStack(addr uint32) bool {
	return addr >= l.StackFloor && addr < l.StackTop
}
