package region

import (
	"testing"
	"testing/quick"
)

func layout() Layout {
	return Layout{
		TextBase:   0x0040_0000,
		DataBase:   0x1000_0000,
		HeapBase:   0x1001_0000,
		Brk:        0x1002_0000,
		StackTop:   0x7FFF_F000,
		StackFloor: 0x7FEF_F000,
	}
}

func TestClassify(t *testing.T) {
	l := layout()
	cases := []struct {
		addr uint32
		want Region
	}{
		{0x1000_0000, Data},
		{0x1000_FFFF, Data},
		{0x1001_0000, Heap},
		{0x1001_FFFC, Heap},
		{0x2000_0000, Heap}, // untouched territory classifies as heap
		{0x7FEF_F000, Stack},
		{0x7FFF_EFFC, Stack},
		{0x0000_0000, Data}, // below data base still "data" side of the split
	}
	for _, c := range cases {
		if got := l.Classify(c.addr); got != c.want {
			t.Errorf("Classify(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

// TestClassifySegmentBoundaries pins the first and last byte of every
// segment, the bytes just outside each, and address-space extremes
// (including the wrap-around candidate 0xFFFF_FFFF, which sits above
// StackFloor and must classify as stack, not wrap into data).
func TestClassifySegmentBoundaries(t *testing.T) {
	l := layout()
	cases := []struct {
		name string
		addr uint32
		want Region
	}{
		{"first data byte", l.DataBase, Data},
		{"last data byte", l.HeapBase - 1, Data},
		{"first heap byte", l.HeapBase, Heap},
		{"last byte below break", l.Brk - 1, Heap},
		{"break itself (untouched)", l.Brk, Heap},
		{"last byte below stack floor", l.StackFloor - 1, Heap},
		{"first stack byte", l.StackFloor, Stack},
		{"last in-bounds stack byte", l.StackTop - 1, Stack},
		{"stack top (exclusive bound)", l.StackTop, Stack},
		{"address zero", 0, Data},
		{"text segment", l.TextBase, Data},
		{"wrap-around candidate", 0xFFFF_FFFF, Stack},
	}
	for _, c := range cases {
		if got := l.Classify(c.addr); got != c.want {
			t.Errorf("%s: Classify(%#x) = %v, want %v", c.name, c.addr, got, c.want)
		}
	}
}

// TestValidatorBoundaries pins the half-open edges of the three
// validity checks at both ends of each segment.
func TestValidatorBoundaries(t *testing.T) {
	l := layout()
	cases := []struct {
		name string
		got  bool
		want bool
	}{
		{"data first byte", l.ValidData(l.DataBase), true},
		{"data last byte", l.ValidData(l.HeapBase - 1), true},
		{"data one below base", l.ValidData(l.DataBase - 1), false},
		{"data at heap base", l.ValidData(l.HeapBase), false},
		{"heap first byte", l.ValidHeap(l.HeapBase), true},
		{"heap last byte", l.ValidHeap(l.Brk - 1), true},
		{"heap at break", l.ValidHeap(l.Brk), false},
		{"heap one below base", l.ValidHeap(l.HeapBase - 1), false},
		{"stack floor", l.ValidStack(l.StackFloor), true},
		{"stack last byte", l.ValidStack(l.StackTop - 1), true},
		{"stack at top", l.ValidStack(l.StackTop), false},
		{"stack below floor", l.ValidStack(l.StackFloor - 1), false},
		{"stack wrap-around", l.ValidStack(0xFFFF_FFFF), false},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestValidators(t *testing.T) {
	l := layout()
	if !l.ValidData(0x1000_0004) || l.ValidData(0x1001_0000) {
		t.Error("ValidData boundaries")
	}
	if !l.ValidHeap(0x1001_0000) || l.ValidHeap(l.Brk) {
		t.Error("ValidHeap boundaries")
	}
	if !l.ValidStack(l.StackFloor) || l.ValidStack(l.StackTop) {
		t.Error("ValidStack boundaries")
	}
}

func TestSetOperations(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Single() {
		t.Error("empty set")
	}
	s = s.Add(Data)
	if !s.Single() || s.Class() != "D" {
		t.Errorf("D set: %v", s)
	}
	s = s.Add(Stack)
	if s.Single() || s.Class() != "D/S" {
		t.Errorf("D/S set: %v", s)
	}
	s = s.Add(Heap)
	if s.Class() != "D/H/S" || s.Len() != 3 {
		t.Errorf("full set: %v", s)
	}
	if !s.Has(Heap) || !s.Has(Data) || !s.Has(Stack) {
		t.Error("Has after adds")
	}
	// Adding twice is idempotent.
	if s.Add(Heap) != s {
		t.Error("Add not idempotent")
	}
}

func TestAllClassesDistinct(t *testing.T) {
	if len(AllClasses) != 7 {
		t.Fatalf("AllClasses = %d entries, want 7", len(AllClasses))
	}
	seen := map[Set]bool{}
	for _, s := range AllClasses {
		if s == 0 || seen[s] {
			t.Errorf("class %v empty or duplicated", s)
		}
		seen[s] = true
	}
}

func TestIsStack(t *testing.T) {
	if !Stack.IsStack() || Data.IsStack() || Heap.IsStack() {
		t.Error("IsStack misclassifies")
	}
}

// Property: classification is a total partition — every address maps to
// exactly one region, and stack iff >= StackFloor.
func TestClassifyPartitionProperty(t *testing.T) {
	l := layout()
	f := func(addr uint32) bool {
		r := l.Classify(addr)
		if addr >= l.StackFloor {
			return r == Stack
		}
		if addr < l.HeapBase {
			return r == Data
		}
		return r == Heap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
