package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrOpen is wrapped by every error a tripped breaker returns; test
// with errors.Is. A stage skipped because its breaker is open is a
// run-shaping event, not a workload defect — see Transient.
var ErrOpen = errors.New("circuit breaker open")

// DefaultBreakerThreshold is the consecutive-failure count that trips
// a breaker when NewBreaker is given a non-positive threshold.
const DefaultBreakerThreshold = 4

// Breaker is a per-key circuit breaker: after threshold consecutive
// recorded failures for one key, Allow rejects further work for that
// key immediately, so a persistently broken workload degrades to one
// rendered error instead of burning the campaign's time budget stage
// after stage. A breaker never closes again within a process — the
// inputs of a batch are fixed, so a workload that failed N times in a
// row will not heal by itself; rerun (or resume) to try again.
//
// Safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	consec    map[string]int
	open      map[string]error
	trips     int
}

// NewBreaker returns a breaker tripping after threshold consecutive
// failures per key (non-positive selects DefaultBreakerThreshold).
func NewBreaker(threshold int) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	return &Breaker{
		threshold: threshold,
		consec:    make(map[string]int),
		open:      make(map[string]error),
	}
}

// Allow reports whether work for key may proceed; when the breaker is
// open it returns an error wrapping ErrOpen that names the failure
// that tripped it.
func (b *Breaker) Allow(key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cause, tripped := b.open[key]; tripped {
		return fmt.Errorf("%w for %q after %d consecutive failures (first kept cause: %v)",
			ErrOpen, key, b.threshold, cause)
	}
	return nil
}

// Record feeds one outcome for key: success closes the failure streak;
// a failure extends it and trips the breaker at the threshold.
// Cancellation is recorded as neither — a campaign shutting down says
// nothing about the workload — and breaker-open errors never re-count.
func (b *Breaker) Record(key string, err error) {
	if err != nil && (errors.Is(err, ErrOpen) || isCanceled(err)) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.consec[key] = 0
		return
	}
	if _, tripped := b.open[key]; tripped {
		return
	}
	b.consec[key]++
	if b.consec[key] >= b.threshold {
		b.open[key] = err
		b.trips++
	}
}

// Tripped reports whether key's breaker is open.
func (b *Breaker) Tripped(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, tripped := b.open[key]
	return tripped
}

// Trips reports how many keys have tripped so far.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// isCanceled matches a parent-cancellation error without claiming
// watchdog expiries: a deadline blown by one workload is evidence
// against that workload, but an explicit cancel (shutdown) is not.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled)
}
