package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrOpen is wrapped by every error a tripped breaker returns; test
// with errors.Is. A stage skipped because its breaker is open is a
// run-shaping event, not a workload defect — see Transient.
var ErrOpen = errors.New("circuit breaker open")

// DefaultBreakerThreshold is the consecutive-failure count that trips
// a breaker when NewBreaker is given a non-positive threshold.
const DefaultBreakerThreshold = 4

// DefaultBreakerCooldown is how many arrivals an open breaker rejects
// before granting a half-open probe. Cooldowns are counted in rejected
// Allow calls, not wall time: the breaker stays a pure function of the
// sequence of Allow/Record calls, so a chaos run replays identically
// and the wallclock analyzer has nothing to flag. The default is large
// enough that a batch run which trips on a genuinely broken workload
// never reaches a probe (preserving the one-error-per-workload
// degradation), while a long-lived service crossing a transient outage
// probes and heals within a few dozen arrivals.
const DefaultBreakerCooldown = 32

// maxBreakerCooldown caps the exponential cooldown growth of a key
// whose probes keep failing.
const maxBreakerCooldown = 1 << 16

// openState tracks one key's open circuit.
type openState struct {
	cause    error // the failure that tripped (or re-tripped) the breaker
	wait     int   // rejections remaining before the next probe is granted
	cooldown int   // current cooldown length; doubles on a failed probe
	probing  bool  // a half-open probe is in flight
}

// Breaker is a per-key circuit breaker with a half-open probe state:
// after threshold consecutive recorded failures for one key, Allow
// rejects further work for that key, so a persistently broken workload
// degrades to one rendered error instead of burning the campaign's
// time budget stage after stage. After a cooldown — counted in
// rejected arrivals, never wall time — Allow grants exactly one probe
// attempt. A successful probe closes the circuit; a failed probe
// re-opens it with the cooldown doubled (capped), so a key that keeps
// failing costs asymptotically one attempt per ~2^k arrivals while a
// transient outage heals at the first probe.
//
// Safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  int
	consec    map[string]int
	open      map[string]*openState
	trips     int
	reopens   int
	closes    int
}

// NewBreaker returns a breaker tripping after threshold consecutive
// failures per key (non-positive selects DefaultBreakerThreshold),
// with the default probe cooldown.
func NewBreaker(threshold int) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  DefaultBreakerCooldown,
		consec:    make(map[string]int),
		open:      make(map[string]*openState),
	}
}

// SetCooldown overrides the initial probe cooldown (rejected arrivals
// before the first probe; non-positive selects the default). Applies
// to circuits opened after the call.
func (b *Breaker) SetCooldown(n int) {
	if n <= 0 {
		n = DefaultBreakerCooldown
	}
	b.mu.Lock()
	b.cooldown = n
	b.mu.Unlock()
}

// Allow reports whether work for key may proceed. While the circuit is
// open it returns an error wrapping ErrOpen that names the tripping
// failure; each rejection counts down the cooldown, and once it is
// exhausted exactly one caller is granted a half-open probe (further
// arrivals keep rejecting until that probe's outcome is Recorded).
func (b *Breaker) Allow(key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, tripped := b.open[key]
	if !tripped {
		return nil
	}
	if !st.probing && st.wait <= 0 {
		st.probing = true
		return nil // the half-open probe
	}
	if !st.probing {
		st.wait--
	}
	return fmt.Errorf("%w for %q after %d consecutive failures (first kept cause: %v)",
		ErrOpen, key, b.threshold, st.cause)
}

// Record feeds one outcome for key: success closes the failure streak
// (and, during a probe, the circuit); a failure extends the streak,
// trips the breaker at the threshold, and re-opens a probing circuit
// with its cooldown doubled. Cancellation is recorded as neither — a
// campaign shutting down says nothing about the workload — and during
// a probe it re-arms the probe so the next arrival retries it.
// Breaker-open errors never re-count.
func (b *Breaker) Record(key string, err error) {
	if err != nil && errors.Is(err, ErrOpen) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, tripped := b.open[key]
	if err != nil && isCanceled(err) {
		if tripped && st.probing {
			st.probing = false // the probe never ran; hand it to the next arrival
		}
		return
	}
	if err == nil {
		if tripped && st.probing {
			delete(b.open, key)
			b.closes++
		}
		b.consec[key] = 0
		return
	}
	if tripped {
		if st.probing {
			st.probing = false
			st.cooldown = min(st.cooldown*2, maxBreakerCooldown)
			st.wait = st.cooldown
			st.cause = err
			b.reopens++
		}
		return
	}
	b.consec[key]++
	if b.consec[key] >= b.threshold {
		b.open[key] = &openState{cause: err, wait: b.cooldown, cooldown: b.cooldown}
		b.trips++
	}
}

// Tripped reports whether key's circuit is open.
func (b *Breaker) Tripped(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, tripped := b.open[key]
	return tripped
}

// Trips reports how many circuits have opened from the closed state.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Reopens reports how many half-open probes have failed, re-opening
// their circuit with a doubled cooldown.
func (b *Breaker) Reopens() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reopens
}

// Closes reports how many circuits a successful probe has closed.
func (b *Breaker) Closes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closes
}

// isCanceled matches a parent-cancellation error without claiming
// watchdog expiries: a deadline blown by one workload is evidence
// against that workload, but an explicit cancel (shutdown) is not.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled)
}
