package chaosnet

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func TestNewPlanDeterministic(t *testing.T) {
	a, b := NewPlan(7, 16, 64), NewPlan(7, 16, 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := NewPlan(8, 16, 64)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatal("different seeds produced identical plans")
	}
	for _, f := range a.Faults {
		if f.Op >= 64 {
			t.Fatalf("fault %v outside window", f)
		}
		if f.Kind >= numKinds {
			t.Fatalf("fault %v has unknown kind", f)
		}
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("7:4:64")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Faults) != 4 {
		t.Fatalf("ParsePlan = %+v", p)
	}
	for _, bad := range []string{"", "x", "7:4", "7:-1:64"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

// one builds an injector with a single planned fault at the given
// address.
func one(kind Kind, op uint64) *Injector {
	return New(&Plan{Faults: []Fault{{Kind: kind, Op: op}}}, nil)
}

func TestTransportReset(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	inj := one(Reset, 0)
	client := &http.Client{Transport: Transport(nil, inj)}
	_, err := client.Get(srv.URL)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("reset round trip error = %v, want injected ECONNRESET", err)
	}
	if hits.Load() != 0 {
		t.Fatal("reset request reached the server")
	}
	// The address fired once: the retry goes through.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" || hits.Load() != 1 {
		t.Fatalf("retry = %q, hits = %d", body, hits.Load())
	}
	if inj.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", inj.Fired())
	}
}

// Half-open is the at-least-once trap: the server does the work, the
// client gets an error and cannot tell the difference from a lost
// request.
func TestTransportHalfOpen(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	client := &http.Client{Transport: Transport(nil, one(HalfOpen, 0))}
	_, err := client.Get(srv.URL)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("half-open error = %v, want injected", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want 1 (request must be delivered)", hits.Load())
	}
}

func TestTransportTruncate(t *testing.T) {
	big := make([]byte, 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(big)
	}))
	defer srv.Close()

	client := &http.Client{Transport: Transport(nil, one(Truncate, 0))}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read error = %v after %d bytes, want injected unexpected EOF", err, len(body))
	}
	if len(body) >= len(big) {
		t.Fatal("truncate delivered the whole body")
	}
}

func TestTransportLatency(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	inj := one(Latency, 0)
	inj.Delay = time.Millisecond
	client := &http.Client{Transport: Transport(nil, inj)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("latency spike must not fail the round trip: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if inj.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", inj.Fired())
	}
}

// chaosServer serves HTTP through a fault-wrapped listener.
func chaosServer(t *testing.T, inj *Injector, h http.Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(Listen(ln, inj))
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

func TestListenerReset(t *testing.T) {
	var hits atomic.Int32
	url := chaosServer(t, one(Reset, 0), http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))

	// Fresh connection per request so conn ordinals are predictable.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	if _, err := client.Get(url); err == nil {
		t.Fatal("reset connection served a response")
	}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("second connection: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("hits = %d, want 1", hits.Load())
	}
}

func TestListenerHalfOpen(t *testing.T) {
	var hits atomic.Int32
	url := chaosServer(t, one(HalfOpen, 0), http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))

	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   300 * time.Millisecond,
	}
	_, err := client.Get(url)
	if err == nil {
		t.Fatal("half-open connection delivered a response")
	}
	waitFor(t, func() bool { return hits.Load() == 1 })

	client.Timeout = 5 * time.Second
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("second connection: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2", hits.Load())
	}
}

func TestListenerTruncate(t *testing.T) {
	big := make([]byte, 4096)
	url := chaosServer(t, one(Truncate, 0), http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(big)
	}))

	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := client.Get(url)
	if err == nil {
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && len(body) >= len(big) {
			t.Fatal("truncate delivered the whole response")
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
