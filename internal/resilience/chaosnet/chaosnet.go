// Package chaosnet is the deterministic network-fault injection layer
// for the arld fleet: a seeded proxy that fails exact network events —
// a latency spike, a connection reset, a half-open partition, a
// truncated response — according to a splitmix64 plan, mirroring
// store/faultfs so network-chaos runs reproduce from a single seed the
// same way storage-chaos runs do.
//
// Faults are addressed by (kind, per-class event ordinal). There are
// two event classes: accepted connections (the server side, wrapped by
// Listen) and HTTP round trips (the client side, wrapped by
// Transport). The plan entry {Kind: Reset, Op: 3} resets the fourth
// faultable event the wrapped endpoint sees. One Injector serves one
// endpoint — arld wraps its listener, arlworker wraps its transport —
// so a plan spec names the same events on whichever side it lands.
// Every injected failure wraps ErrInjected, and each address fires at
// most once: injected faults model transient network weather, not a
// cut cable, so retries succeed.
//
// The half-open kind is the nasty one: the request is delivered and
// processed but the response never comes back, so the caller cannot
// tell a lost request from a lost reply and must retry into
// at-least-once delivery. That is exactly the duplicate-completion
// path the coordinator's fencing tokens and the store's memoization
// have to absorb.
package chaosnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected marks every fault this package injects; test with
// errors.Is. Reset faults also carry ECONNRESET in the chain so code
// classifying by errno sees the real thing.
var ErrInjected = errors.New("chaosnet: injected fault")

// Kind classifies an injected network fault.
type Kind uint8

const (
	// Latency delays one event by the injector's Delay: the GC-pause /
	// congested-link model. The event then proceeds normally.
	Latency Kind = iota
	// Reset kills one event with a connection reset before any byte of
	// the response is delivered.
	Reset
	// HalfOpen delivers the request but loses the response: the far
	// side processes the event, the near side times out — the
	// at-least-once ambiguity every retry layer must survive.
	HalfOpen
	// Truncate cuts the response off mid-body, leaving the reader with
	// an unexpected EOF.
	Truncate

	numKinds
)

var kindNames = [numKinds]string{"latency", "reset", "half-open", "truncate"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fault is one planned injection: the Op-th faultable event (0-based)
// of the endpoint's class fails with the fault's kind. All four kinds
// share one ordinal space per class, so {Reset, Op: 5} and {Latency,
// Op: 5} address the same event.
type Fault struct {
	Kind Kind
	Op   uint64
}

func (f Fault) String() string { return fmt.Sprintf("%s@op%d", f.Kind, f.Op) }

// Plan is a seeded set of network faults.
type Plan struct {
	Seed   uint64
	Faults []Fault
}

// NewPlan expands seed into n faults, each addressing an event ordinal
// in [0, window) of a kind drawn uniformly — a pure function of its
// arguments (splitmix64, the repo's standard seeded stream).
func NewPlan(seed uint64, n int, window uint64) *Plan {
	if window == 0 {
		window = 1
	}
	p := &Plan{Seed: seed, Faults: make([]Fault, 0, n)}
	state := seed
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := 0; i < n; i++ {
		p.Faults = append(p.Faults, Fault{
			Kind: Kind(next() % uint64(numKinds)),
			Op:   next() % window,
		})
	}
	return p
}

// ParsePlan renders a "seed:count:window" flag value into a plan —
// the -net-faults CLI surface, same grammar as -store-faults.
func ParsePlan(spec string) (*Plan, error) {
	var seed, window uint64
	var n int
	if _, err := fmt.Sscanf(spec, "%d:%d:%d", &seed, &n, &window); err != nil || n < 0 {
		return nil, fmt.Errorf(`chaosnet: bad plan %q, want "seed:count:window" like "7:4:64"`, spec)
	}
	return NewPlan(seed, n, window), nil
}

// The event classes that draw ordinals: accepted connections and HTTP
// round trips.
const (
	classConn = iota
	classRT
	numClasses
)

// DefaultDelay is the Latency spike length when the Injector's Delay
// is zero.
const DefaultDelay = 250 * time.Millisecond

// Injector realizes a Plan against the network events of one endpoint.
// Safe for concurrent use; per-class ordinals are atomic, so the set
// of injected faults is stable under concurrency even when which
// caller draws each ordinal is not.
type Injector struct {
	Delay time.Duration // Latency spike length; 0 = DefaultDelay
	log   func(format string, args ...any)

	mu      sync.Mutex
	pending map[Kind]map[uint64]bool
	ops     [numClasses]atomic.Uint64
	fired   atomic.Uint64
}

// New builds an injector from the plan. log (optional) receives one
// line per injected fault.
func New(plan *Plan, log func(format string, args ...any)) *Injector {
	inj := &Injector{log: log, pending: make(map[Kind]map[uint64]bool)}
	if plan != nil {
		for _, flt := range plan.Faults {
			if inj.pending[flt.Kind] == nil {
				inj.pending[flt.Kind] = make(map[uint64]bool)
			}
			inj.pending[flt.Kind][flt.Op] = true
		}
	}
	return inj
}

// Fired reports how many planned faults have been injected so far.
func (inj *Injector) Fired() uint64 { return inj.fired.Load() }

func (inj *Injector) delay() time.Duration {
	if inj.Delay > 0 {
		return inj.Delay
	}
	return DefaultDelay
}

// trip advances class's ordinal and reports which kind (if any) is
// planned for this event. Each address fires once.
func (inj *Injector) trip(class int) (Kind, bool) {
	op := inj.ops[class].Add(1) - 1
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for kind := Kind(0); kind < numKinds; kind++ {
		if inj.pending[kind][op] {
			delete(inj.pending[kind], op)
			inj.fired.Add(1)
			if inj.log != nil {
				inj.log("chaosnet: injecting %s@op%d", kind, op)
			}
			return kind, true
		}
	}
	return 0, false
}

func injected(kind Kind) error {
	if kind == Reset {
		return fmt.Errorf("%w: %s: %w", ErrInjected, kind, syscall.ECONNRESET)
	}
	return fmt.Errorf("%w: %s", ErrInjected, kind)
}

// Listen wraps a listener: each accepted connection draws one ordinal
// from the connection class and, when planned, misbehaves per its
// kind. A nil injector returns inner unchanged.
func Listen(inner net.Listener, inj *Injector) net.Listener {
	if inj == nil {
		return inner
	}
	return &listener{Listener: inner, inj: inj}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return conn, err
	}
	kind, ok := l.inj.trip(classConn)
	if !ok {
		return conn, nil
	}
	switch kind {
	case Reset:
		conn.Close()
		return &faultConn{Conn: conn, kind: Reset}, nil
	case Latency:
		return &faultConn{Conn: conn, kind: Latency, delay: l.inj.delay()}, nil
	case HalfOpen:
		return &faultConn{Conn: conn, kind: HalfOpen}, nil
	default: // Truncate
		return &faultConn{Conn: conn, kind: Truncate, budget: truncateAfter}, nil
	}
}

// truncateAfter is how many response bytes a Truncate connection lets
// through before cutting the stream — enough for the status line and
// some headers, never a full JSON body.
const truncateAfter = 64

// faultConn realizes one connection-scoped fault.
type faultConn struct {
	net.Conn
	kind   Kind
	delay  time.Duration // Latency: sleep before the first Read
	slept  atomic.Bool
	budget int // Truncate: response bytes allowed through
	mu     sync.Mutex
	cut    bool
}

func (c *faultConn) Read(p []byte) (int, error) {
	switch c.kind {
	case Reset:
		return 0, injected(Reset)
	case Latency:
		if c.slept.CompareAndSwap(false, true) {
			time.Sleep(c.delay)
		}
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	switch c.kind {
	case Reset:
		return 0, injected(Reset)
	case HalfOpen:
		// The peer never hears back, but the local writer sees success:
		// a half-open partition, not an error the server could react to.
		return len(p), nil
	case Truncate:
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.cut {
			return 0, injected(Truncate)
		}
		if len(p) > c.budget {
			n, _ := c.Conn.Write(p[:c.budget])
			c.cut = true
			c.Conn.Close()
			return n, injected(Truncate)
		}
		c.budget -= len(p)
	}
	return c.Conn.Write(p)
}

// Transport wraps an http.RoundTripper: each round trip draws one
// ordinal from the round-trip class. A nil injector returns inner
// unchanged (nil inner means http.DefaultTransport).
func Transport(inner http.RoundTripper, inj *Injector) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if inj == nil {
		return inner
	}
	return &transport{inner: inner, inj: inj}
}

type transport struct {
	inner http.RoundTripper
	inj   *Injector
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	kind, ok := t.inj.trip(classRT)
	if !ok {
		return t.inner.RoundTrip(req)
	}
	switch kind {
	case Latency:
		time.Sleep(t.inj.delay())
		return t.inner.RoundTrip(req)
	case Reset:
		// The request is never delivered.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, injected(Reset)
	case HalfOpen:
		// Deliver the request, lose the response: the far side did the
		// work, the caller cannot know.
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, injected(HalfOpen)
	default: // Truncate
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncateBody{inner: resp.Body, budget: truncateAfter}
		return resp, nil
	}
}

// truncateBody cuts a response body off after its byte budget with an
// injected unexpected-EOF.
type truncateBody struct {
	inner  io.ReadCloser
	budget int
}

func (b *truncateBody) Read(p []byte) (int, error) {
	if b.budget <= 0 {
		return 0, fmt.Errorf("%w: %s: %w", ErrInjected, Truncate, io.ErrUnexpectedEOF)
	}
	if len(p) > b.budget {
		p = p[:b.budget]
	}
	n, err := b.inner.Read(p)
	b.budget -= n
	return n, err
}

func (b *truncateBody) Close() error { return b.inner.Close() }
