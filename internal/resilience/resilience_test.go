package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRetrySucceedsAfterFailures(t *testing.T) {
	r := Retry{Attempts: 4, BaseDelay: time.Microsecond, MaxDelay: 4 * time.Microsecond, Seed: 7}
	calls := 0
	var retried []int
	r.OnRetry = func(name string, attempt int, delay time.Duration, err error) {
		retried = append(retried, attempt)
	}
	err := r.Do(context.Background(), "op", func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("flaky %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(retried) != 2 {
		t.Fatalf("calls=%d retried=%v", calls, retried)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	r := Retry{Attempts: 3, BaseDelay: time.Microsecond, Seed: 1}
	calls := 0
	sentinel := errors.New("permanent")
	err := r.Do(context.Background(), "op", func(ctx context.Context) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryZeroValueRunsOnce(t *testing.T) {
	var r Retry
	calls := 0
	if err := r.Do(nil, "op", func(ctx context.Context) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls=%d", calls)
	}
}

// TestRetryStopsOnParentCancel proves shutdown wins immediately: a
// cancelled parent context suppresses all remaining attempts.
func TestRetryStopsOnParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Retry{Attempts: 10, BaseDelay: time.Hour, Seed: 3}
	calls := 0
	err := r.Do(ctx, "op", func(c context.Context) error {
		calls++
		cancel()
		return c.Err()
	})
	if calls != 1 {
		t.Fatalf("calls=%d, want 1 (no retry after parent cancel)", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v", err)
	}
}

// TestRetryStopsOnParentDeadline pins the watchdog classification: a
// parent deadline blowing mid-attempt surfaces from fn exactly like a
// per-attempt timeout (context.DeadlineExceeded), but must not be
// retried — shutdown would otherwise burn the whole attempt budget,
// one watchdog period per attempt.
func TestRetryStopsOnParentDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	r := Retry{Attempts: 5, BaseDelay: time.Microsecond, Seed: 9}
	calls := 0
	err := r.Do(ctx, "op", func(c context.Context) error {
		calls++
		<-c.Done() // wedged attempt, released only by the parent watchdog
		return c.Err()
	})
	if calls != 1 {
		t.Fatalf("calls=%d, want 1 (no retry after parent watchdog expiry)", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v", err)
	}
	if !Transient(err) {
		t.Fatal("parent watchdog expiry must classify as transient")
	}
}

// TestRetryParentShutdownClassifiesTransient proves that a failure
// observed while the parent is already done is reported as transient
// even when the attempt's own error looks permanent: the teardown may
// have provoked it, so it must never be cached against the workload.
func TestRetryParentShutdownClassifiesTransient(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Retry{Attempts: 5, BaseDelay: time.Hour, Seed: 11}
	calls := 0
	err := r.Do(ctx, "op", func(context.Context) error {
		calls++
		cancel()
		return errors.New("torn down under me")
	})
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
	if !Transient(err) {
		t.Fatalf("err=%v must be transient (wraps the parent's cancellation)", err)
	}
	if !strings.Contains(err.Error(), "torn down under me") {
		t.Fatalf("err=%v lost the attempt's failure", err)
	}
}

// TestRetryAttemptTimeout proves each attempt gets its own deadline
// while the parent survives, so a wedged attempt is retried.
func TestRetryAttemptTimeout(t *testing.T) {
	r := Retry{Attempts: 2, AttemptTimeout: time.Millisecond, BaseDelay: time.Microsecond, Seed: 5}
	calls := 0
	err := r.Do(context.Background(), "op", func(ctx context.Context) error {
		calls++
		if calls == 1 {
			<-ctx.Done() // wedged first attempt, released by its own deadline
			return ctx.Err()
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

// TestBackoffDeterministic pins the jitter contract: same (seed, name,
// attempt) → same delay; different seeds or names → (almost surely)
// different delays; every delay in [cap/2, cap] bounds.
func TestBackoffDeterministic(t *testing.T) {
	r := Retry{Attempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 42}
	for attempt := 1; attempt <= 6; attempt++ {
		a := r.backoff("trace/099.go", attempt)
		b := r.backoff("trace/099.go", attempt)
		if a != b {
			t.Fatalf("attempt %d: nondeterministic backoff %v vs %v", attempt, a, b)
		}
		want := r.BaseDelay << (attempt - 1)
		if want > r.MaxDelay {
			want = r.MaxDelay
		}
		if a < want/2 || a > want {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, a, want/2, want)
		}
	}
	r2 := r
	r2.Seed = 43
	if r.backoff("x", 1) == r2.backoff("x", 1) && r.backoff("x", 2) == r2.backoff("x", 2) {
		t.Fatal("seed does not influence jitter")
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b := NewBreaker(3)
	fail := errors.New("boom")
	for i := 0; i < 2; i++ {
		if err := b.Allow("w"); err != nil {
			t.Fatalf("tripped early at %d", i)
		}
		b.Record("w", fail)
	}
	if b.Tripped("w") {
		t.Fatal("tripped below threshold")
	}
	b.Record("w", fail)
	if !b.Tripped("w") || b.Trips() != 1 {
		t.Fatalf("tripped=%v trips=%d", b.Tripped("w"), b.Trips())
	}
	err := b.Allow("w")
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow = %v, want ErrOpen", err)
	}
	if !Transient(err) {
		t.Fatal("breaker-open error must be transient (never memoized)")
	}
	// Other keys are unaffected.
	if err := b.Allow("v"); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(2)
	fail := errors.New("boom")
	b.Record("w", fail)
	b.Record("w", nil)
	b.Record("w", fail)
	if b.Tripped("w") {
		t.Fatal("streak not reset by success")
	}
}

func TestBreakerIgnoresCancelAndOpen(t *testing.T) {
	b := NewBreaker(1)
	b.Record("w", context.Canceled)
	b.Record("w", fmt.Errorf("wrapped: %w", context.Canceled))
	if b.Tripped("w") {
		t.Fatal("cancellation tripped the breaker")
	}
	b.Record("w", errors.New("real failure"))
	if !b.Tripped("w") {
		t.Fatal("not tripped")
	}
	trips := b.Trips()
	b.Record("w", b.Allow("w")) // feeding the open error back must not re-count
	if b.Trips() != trips {
		t.Fatal("open error re-counted")
	}
}

func TestTransient(t *testing.T) {
	for _, err := range []error{
		context.Canceled,
		context.DeadlineExceeded,
		fmt.Errorf("stage: %w", context.DeadlineExceeded),
		fmt.Errorf("skip: %w", ErrOpen),
	} {
		if !Transient(err) {
			t.Fatalf("%v not transient", err)
		}
	}
	if Transient(errors.New("compile error")) || Transient(nil) {
		t.Fatal("misclassified")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := NewBreaker(2)
	b.SetCooldown(3)
	fail := errors.New("boom")
	b.Record("w", fail)
	b.Record("w", fail)
	if !b.Tripped("w") {
		t.Fatal("not tripped at threshold")
	}
	// The cooldown is counted in rejected arrivals, never wall time.
	for i := 0; i < 3; i++ {
		if err := b.Allow("w"); !errors.Is(err, ErrOpen) {
			t.Fatalf("arrival %d during cooldown: %v, want ErrOpen", i, err)
		}
	}
	if err := b.Allow("w"); err != nil {
		t.Fatalf("probe not granted after cooldown: %v", err)
	}
	// Only one probe may be in flight; concurrent arrivals keep rejecting.
	if err := b.Allow("w"); !errors.Is(err, ErrOpen) {
		t.Fatalf("second in-flight probe granted: %v", err)
	}
	// Failed probe: re-open with the cooldown doubled.
	b.Record("w", fail)
	if b.Reopens() != 1 {
		t.Fatalf("Reopens = %d, want 1", b.Reopens())
	}
	for i := 0; i < 6; i++ {
		if err := b.Allow("w"); !errors.Is(err, ErrOpen) {
			t.Fatalf("arrival %d during doubled cooldown: %v, want ErrOpen", i, err)
		}
	}
	if err := b.Allow("w"); err != nil {
		t.Fatalf("second probe not granted after doubled cooldown: %v", err)
	}
	// Successful probe closes the circuit for good.
	b.Record("w", nil)
	if b.Tripped("w") {
		t.Fatal("circuit still open after successful probe")
	}
	if b.Closes() != 1 {
		t.Fatalf("Closes = %d, want 1", b.Closes())
	}
	for i := 0; i < 10; i++ {
		if err := b.Allow("w"); err != nil {
			t.Fatalf("closed circuit rejecting: %v", err)
		}
	}
	// One fresh failure must not instantly re-trip: the streak restarts.
	b.Record("w", fail)
	if b.Tripped("w") {
		t.Fatal("single post-close failure re-tripped the circuit")
	}
}

func TestBreakerProbeCancelRearms(t *testing.T) {
	b := NewBreaker(1)
	b.SetCooldown(1)
	b.Record("w", errors.New("boom"))
	if err := b.Allow("w"); !errors.Is(err, ErrOpen) {
		t.Fatal("cooldown arrival not rejected")
	}
	if err := b.Allow("w"); err != nil {
		t.Fatalf("probe not granted: %v", err)
	}
	// The probe's attempt was cancelled by shutdown: no verdict on the
	// key, so the probe slot is handed to the next arrival unpenalized.
	b.Record("w", context.Canceled)
	if err := b.Allow("w"); err != nil {
		t.Fatalf("probe not re-armed after cancel: %v", err)
	}
	if b.Reopens() != 0 {
		t.Fatalf("cancel counted as a failed probe: Reopens = %d", b.Reopens())
	}
	b.Record("w", nil)
	if b.Tripped("w") {
		t.Fatal("circuit still open after successful re-armed probe")
	}
}

func TestBreakerOpenErrorDuringProbeKeepsProbe(t *testing.T) {
	// Feeding an ErrOpen outcome back (another stage of the same unit
	// rejected) must not consume or fail the in-flight probe.
	b := NewBreaker(1)
	b.SetCooldown(1)
	b.Record("w", errors.New("boom"))
	if err := b.Allow("w"); !errors.Is(err, ErrOpen) {
		t.Fatal("cooldown arrival not rejected")
	}
	if err := b.Allow("w"); err != nil {
		t.Fatalf("probe not granted: %v", err)
	}
	rejected := b.Allow("w")
	if !errors.Is(rejected, ErrOpen) {
		t.Fatal("second arrival not rejected during probe")
	}
	b.Record("w", rejected)
	b.Record("w", nil)
	if b.Tripped("w") {
		t.Fatal("probe lost to a fed-back open error")
	}
}
