// Package resilience provides the failure-handling primitives of the
// experiment engine: bounded retry with deterministic seeded
// exponential backoff and jitter, per-attempt deadlines layered on the
// campaign watchdog, and a per-key circuit breaker that converts a
// persistently failing workload into a fast, rendered error instead of
// an aborted campaign.
//
// Everything here is deterministic by construction — backoff jitter
// comes from a seeded splitmix64 stream keyed by (seed, operation
// name, attempt), never from wall-clock or global randomness — so a
// retried campaign remains byte-reproducible under the same seed.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Defaults used when a Retry field is zero.
const (
	DefaultBaseDelay = 50 * time.Millisecond
	DefaultMaxDelay  = 2 * time.Second
)

// Retry bounds and paces re-attempts of one operation. The zero value
// runs the operation exactly once with no deadline.
type Retry struct {
	// Attempts is the total number of tries (1 = no retry). Values
	// below 1 behave as 1.
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry up to MaxDelay. Zero selects DefaultBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero selects DefaultMaxDelay.
	MaxDelay time.Duration
	// AttemptTimeout, when positive, is the per-attempt deadline: each
	// try gets its own context.WithTimeout child, so one wedged attempt
	// cannot consume the whole retry budget.
	AttemptTimeout time.Duration
	// Seed feeds the deterministic jitter stream.
	Seed uint64
	// OnRetry, when non-nil, observes every scheduled retry before its
	// backoff sleep: the operation name, the attempt that just failed
	// (1-based), the chosen delay, and the error.
	OnRetry func(name string, attempt int, delay time.Duration, err error)
}

// Do runs fn until it succeeds, the attempt budget is spent, or the
// parent context ends. fn receives the per-attempt context (the parent
// bounded by AttemptTimeout). A parent-context cancellation or
// deadline expiry is never retried — shutdown must win immediately,
// without burning the remaining attempt budget — while an
// attempt-deadline expiry is retried like any other failure. The two
// surface identically from fn (both are context.DeadlineExceeded on
// the attempt context), so Do classifies by the parent's own ctx.Err:
// when the parent is done, the returned error always wraps the
// parent's error, and therefore always reads as Transient even if the
// attempt's failure looked like a permanent workload defect — a stage
// torn down mid-shutdown says nothing about the workload and must
// never be cached against it. Otherwise the error of the final
// attempt is returned.
func (r Retry) Do(ctx context.Context, name string, fn func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := r.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if r.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, r.AttemptTimeout)
		}
		err = fn(attemptCtx)
		cancel()
		if err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// The campaign itself is shutting down or its watchdog
			// expired: hand the failure back immediately, classified
			// by the parent.
			if errors.Is(err, cerr) {
				return err
			}
			return fmt.Errorf("%v (parent context: %w)", err, cerr)
		}
		if attempt >= attempts {
			return err
		}
		delay := r.backoff(name, attempt)
		if r.OnRetry != nil {
			r.OnRetry(name, attempt, delay, err)
		}
		if !sleep(ctx, delay) {
			return err
		}
	}
}

// backoff computes the deterministic jittered delay after the given
// failed attempt (1-based): an exponentially grown base, capped, then
// jittered into [delay/2, delay] by a splitmix64 stream keyed by
// (seed, name, attempt).
func (r Retry) backoff(name string, attempt int) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	max := r.MaxDelay
	if max <= 0 {
		max = DefaultMaxDelay
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	u := splitmix64(r.Seed ^ hashString(name) ^ uint64(attempt)*0x9E3779B97F4A7C15)
	return half + time.Duration(u%uint64(half+1))
}

// sleep waits for d or the context, reporting whether the full delay
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality 64-bit mix suitable for deterministic jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Transient reports whether err stems from cancellation, a watchdog
// deadline, or an open circuit breaker — failures that describe the
// run, not the workload, and therefore must never be cached against
// the workload (a later caller retries instead).
func Transient(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrOpen)
}
