package prog

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// tiny builds a minimal valid program: two instructions and 8 data
// bytes.
func tiny(t *testing.T) *Program {
	t.Helper()
	insts := []isa.Inst{
		{Op: isa.OpADDI, Rd: isa.V0, Rs: isa.Zero, Imm: 7},
		{Op: isa.OpJR, Rs: isa.RA},
	}
	p := &Program{
		Name:  "tiny",
		Text:  insts,
		Data:  []byte{1, 2, 3, 4, 5, 6, 7, 8},
		Entry: TextBase,
		Syms: []Symbol{
			{Name: "main", Addr: TextBase},
			{Name: "blob", Addr: DataBase + 4},
		},
	}
	p.Words = make([]uint32, len(insts))
	for i, in := range insts {
		w, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		p.Words[i] = w
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("tiny program invalid: %v", err)
	}
	return p
}

func TestPCIndexRoundTrip(t *testing.T) {
	p := tiny(t)
	for i := range p.Text {
		pc := p.Index2PC(i)
		j, ok := p.PC2Index(pc)
		if !ok || j != i {
			t.Errorf("index %d -> pc %#x -> (%d,%v)", i, pc, j, ok)
		}
	}
	if _, ok := p.PC2Index(TextBase - 4); ok {
		t.Error("pc below text accepted")
	}
	if _, ok := p.PC2Index(TextBase + 2); ok {
		t.Error("misaligned pc accepted")
	}
	if _, ok := p.PC2Index(p.Index2PC(len(p.Text))); ok {
		t.Error("pc past text accepted")
	}
}

func TestLookup(t *testing.T) {
	p := tiny(t)
	if a, ok := p.Lookup("blob"); !ok || a != DataBase+4 {
		t.Errorf("blob = %#x, %v", a, ok)
	}
	if _, ok := p.Lookup("nope"); ok {
		t.Error("bogus symbol resolved")
	}
}

func TestInitialLayout(t *testing.T) {
	p := tiny(t)
	l := p.InitialLayout()
	if l.DataBase != DataBase || l.StackTop != StackTop {
		t.Errorf("layout bases: %+v", l)
	}
	if l.HeapBase < DataBase+uint32(len(p.Data)) {
		t.Error("heap overlaps data")
	}
	if l.HeapBase%mem.PageSize != 0 {
		t.Error("heap base not page aligned")
	}
	if l.Brk != l.HeapBase {
		t.Error("initial heap not empty")
	}
	if l.StackFloor != StackTop-StackSize {
		t.Error("stack floor")
	}
}

func TestLoadInto(t *testing.T) {
	p := tiny(t)
	m := mem.New()
	if _, err := p.LoadInto(m); err != nil {
		t.Fatal(err)
	}
	w, err := m.ReadWord(TextBase)
	if err != nil || w != p.Words[0] {
		t.Errorf("text[0] = %#x, %v", w, err)
	}
	if got := m.LoadByte(DataBase + 2); got != 3 {
		t.Errorf("data byte = %d", got)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(p *Program)
		wantSub string
	}{
		{"empty text", func(p *Program) { p.Text = nil; p.Words = nil }, "empty text"},
		{"length mismatch", func(p *Program) { p.Words = p.Words[:1] }, "encoded"},
		{"bad entry", func(p *Program) { p.Entry = 0x1234 }, "entry"},
		{"pos mismatch", func(p *Program) { p.Pos = make([]SourcePos, 1) }, "positions"},
		{"hint mismatch", func(p *Program) { p.Hints = make([]Hint, 1) }, "hints"},
		{"stale encoding", func(p *Program) { p.Words[0] ^= 1 << 16 }, "decoded"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := tiny(t)
			c.mutate(p)
			err := p.Validate()
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("Validate = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestHintAndPosAccessors(t *testing.T) {
	p := tiny(t)
	p.Hints = []Hint{HintStack, HintNone}
	p.Pos = []SourcePos{{File: "a.s", Line: 3}, {File: "a.s", Line: 4}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.HintAt(0) != HintStack || p.HintAt(1) != HintNone {
		t.Error("HintAt")
	}
	if p.HintAt(-1) != HintNone || p.HintAt(99) != HintNone {
		t.Error("HintAt out of range")
	}
	if p.PosAt(1).Line != 4 || p.PosAt(99).Line != 0 {
		t.Error("PosAt")
	}
}

func TestHintStrings(t *testing.T) {
	want := map[Hint]string{
		HintNone: "none", HintStack: "stack",
		HintNonStack: "nonstack", HintUnknown: "unknown",
	}
	for h, s := range want {
		if h.String() != s {
			t.Errorf("%d.String() = %q, want %q", h, h.String(), s)
		}
	}
}
