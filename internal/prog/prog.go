// Package prog defines the linked program image produced by the
// assembler and consumed by the simulators: a text segment of encoded
// instructions, an initialized data segment, a symbol table, and the
// address-space layout constants shared by the whole toolchain.
package prog

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/region"
)

// Address-space layout, SimpleScalar-PISA style. The global pointer sits
// 32 KB into the data segment so that signed 16-bit displacements reach
// the first 64 KB of static data, which is what makes the paper's
// "$gp-based access => non-stack" heuristic productive.
const (
	TextBase  uint32 = 0x0040_0000
	DataBase  uint32 = 0x1000_0000
	GPValue   uint32 = DataBase + 0x8000
	StackTop  uint32 = 0x7FFF_F000
	StackSize uint32 = 0x0010_0000 // 1 MB of legal stack growth
)

// Symbol is one label with its resolved address.
type Symbol struct {
	Name string
	Addr uint32
}

// SourcePos locates an instruction in its assembly source, for
// diagnostics and for carrying MiniC compiler hints through to the
// predictor study. Text is the source statement the instruction was
// assembled from (several instructions share it when a pseudo-op
// expands), so lint output can quote the offending line.
type SourcePos struct {
	File string
	Line int
	Text string
}

// Hint is a per-instruction compiler region hint (paper §3.5.2). The
// zero value means "no hint".
type Hint uint8

// Compiler hints attached to memory instructions.
const (
	HintNone     Hint = iota // compiler said nothing
	HintStack                // compiler proved: stack access
	HintNonStack             // compiler proved: non-stack access
	HintUnknown              // compiler analyzed but could not tell
)

func (h Hint) String() string {
	switch h {
	case HintNone:
		return "none"
	case HintStack:
		return "stack"
	case HintNonStack:
		return "nonstack"
	case HintUnknown:
		return "unknown"
	}
	return fmt.Sprintf("hint(%d)", uint8(h))
}

// Program is a fully linked RISA program image.
type Program struct {
	Name  string
	Text  []isa.Inst  // decoded text segment, one entry per word
	Words []uint32    // encoded text segment (same order)
	Data  []byte      // initialized data segment, loaded at DataBase
	Entry uint32      // entry point address
	Syms  []Symbol    // sorted by address
	Pos   []SourcePos // per-instruction source position (may be empty)
	Hints []Hint      // per-instruction compiler hints (may be empty)

	symByName map[string]uint32
}

// PC2Index converts a text address to an instruction index.
func (p *Program) PC2Index(pc uint32) (int, bool) {
	if pc < TextBase || (pc-TextBase)%isa.InstBytes != 0 {
		return 0, false
	}
	i := int((pc - TextBase) / isa.InstBytes)
	if i >= len(p.Text) {
		return 0, false
	}
	return i, true
}

// Index2PC converts an instruction index to its text address.
func (p *Program) Index2PC(i int) uint32 {
	return TextBase + uint32(i)*isa.InstBytes
}

// Lookup resolves a symbol name to its address.
func (p *Program) Lookup(name string) (uint32, bool) {
	if p.symByName == nil {
		p.symByName = make(map[string]uint32, len(p.Syms))
		for _, s := range p.Syms {
			p.symByName[s.Name] = s.Addr
		}
	}
	a, ok := p.symByName[name]
	return a, ok
}

// HintAt reports the compiler hint for the instruction at index i
// (HintNone when the program carries no hints).
func (p *Program) HintAt(i int) Hint {
	if i < 0 || i >= len(p.Hints) {
		return HintNone
	}
	return p.Hints[i]
}

// PosAt reports the source position for the instruction at index i.
func (p *Program) PosAt(i int) SourcePos {
	if i < 0 || i >= len(p.Pos) {
		return SourcePos{}
	}
	return p.Pos[i]
}

// InitialLayout returns the region layout at program start: the heap
// begins at the page-aligned end of static data and is empty; the full
// stack window is classified as stack.
func (p *Program) InitialLayout() region.Layout {
	heapBase := DataBase + uint32(len(p.Data))
	heapBase = (heapBase + mem.PageSize - 1) &^ (mem.PageSize - 1)
	return region.Layout{
		TextBase:   TextBase,
		DataBase:   DataBase,
		HeapBase:   heapBase,
		Brk:        heapBase,
		StackTop:   StackTop,
		StackFloor: StackTop - StackSize,
	}
}

// LoadInto writes the text and data segments into m and returns the
// initial layout.
func (p *Program) LoadInto(m *mem.Memory) (region.Layout, error) {
	for i, w := range p.Words {
		if err := m.WriteWord(p.Index2PC(i), w); err != nil {
			return region.Layout{}, fmt.Errorf("prog: loading text: %w", err)
		}
	}
	m.WriteBytes(DataBase, p.Data)
	return p.InitialLayout(), nil
}

// Validate performs structural checks: entry in range, parallel slices
// consistent, encodings decodable. The assembler and compiler call it
// before handing a program to a simulator.
func (p *Program) Validate() error {
	if len(p.Text) == 0 {
		return fmt.Errorf("prog %q: empty text segment", p.Name)
	}
	if len(p.Words) != len(p.Text) {
		return fmt.Errorf("prog %q: %d decoded vs %d encoded instructions",
			p.Name, len(p.Text), len(p.Words))
	}
	if _, ok := p.PC2Index(p.Entry); !ok {
		return fmt.Errorf("prog %q: entry %#x outside text", p.Name, p.Entry)
	}
	if len(p.Pos) != 0 && len(p.Pos) != len(p.Text) {
		return fmt.Errorf("prog %q: %d positions vs %d instructions", p.Name, len(p.Pos), len(p.Text))
	}
	if len(p.Hints) != 0 && len(p.Hints) != len(p.Text) {
		return fmt.Errorf("prog %q: %d hints vs %d instructions", p.Name, len(p.Hints), len(p.Text))
	}
	for i, w := range p.Words {
		d, err := isa.Decode(w)
		if err != nil {
			return fmt.Errorf("prog %q: instruction %d: %w", p.Name, i, err)
		}
		if d != p.Text[i] {
			return fmt.Errorf("prog %q: instruction %d: decoded %v != stored %v",
				p.Name, i, d, p.Text[i])
		}
	}
	return nil
}
