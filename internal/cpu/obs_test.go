package cpu

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/obs"
)

// tenInstSrc is a fixed 10-instruction straight-line workload: four
// $sp-relative memory references (two stores, two loads, each load
// forwarding from the store before it) plus ALU glue. Every reference
// is statically covered, so a decoupled machine steers all four to the
// LVAQ and the pipeline schedule below is fully deterministic.
const tenInstSrc = `
.text
main:
	addi $sp, $sp, -8
	addi $t0, $zero, 7
	sw $t0, 0($sp)
	lw $t1, 0($sp)
	addi $t1, $t1, 1
	sw $t1, 4($sp)
	lw $v0, 4($sp)
	add $t2, $t1, $t0
	addi $sp, $sp, 8
	jr $ra
`

func tenInstTrace(t *testing.T, opts TraceOptions) *Trace {
	t.Helper()
	p, err := asm.Assemble("ten.s", tenInstSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	tr, err := BuildTrace(p, opts)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if len(tr.Insts) != 10 {
		t.Fatalf("workload has %d instructions, want 10", len(tr.Insts))
	}
	return tr
}

// fakeTracer records every emitted event.
type fakeTracer struct{ evs []obs.Event }

func (f *fakeTracer) Emit(ev obs.Event) { f.evs = append(f.evs, ev) }

// TestTracerEventSequence pins the exact event stream of the
// 10-instruction workload on the (3+3) machine: the observer seam must
// report precisely what the pipeline did, in emission order.
func TestTracerEventSequence(t *testing.T) {
	tr := tenInstTrace(t, TraceOptions{})
	var ft fakeTracer
	sim, err := New(Decoupled(3, 3), WithTracer(&ft))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 8 || res.Insts != 10 || res.Recoveries != 0 {
		t.Fatalf("result = cycles %d insts %d recoveries %d, want 8/10/0",
			res.Cycles, res.Insts, res.Recoveries)
	}

	ev := func(cycle, seq int64, kind obs.EventKind, arg int64) obs.Event {
		return obs.Event{Cycle: cycle, Seq: seq, Kind: kind, Arg: arg}
	}
	storeArg := obs.DispatchArg(true, false)
	loadArg := obs.DispatchArg(true, true)
	lvcWrMem := obs.CacheArg(true, true, obs.LevelMem)
	lvcWrHit := obs.CacheArg(true, true, obs.LevelFirst)
	want := []obs.Event{
		// Cycle 1: all ten ops dispatch; the four memory ops enter the LVAQ.
		ev(1, 0, obs.EvDispatch, 0),
		ev(1, 1, obs.EvDispatch, 0),
		ev(1, 2, obs.EvDispatch, storeArg),
		ev(1, 2, obs.EvQueueEnter, obs.QueueLVAQ),
		ev(1, 3, obs.EvDispatch, loadArg),
		ev(1, 3, obs.EvQueueEnter, obs.QueueLVAQ),
		ev(1, 4, obs.EvDispatch, 0),
		ev(1, 5, obs.EvDispatch, storeArg),
		ev(1, 5, obs.EvQueueEnter, obs.QueueLVAQ),
		ev(1, 6, obs.EvDispatch, loadArg),
		ev(1, 6, obs.EvQueueEnter, obs.QueueLVAQ),
		ev(1, 7, obs.EvDispatch, 0),
		ev(1, 8, obs.EvDispatch, 0),
		ev(1, 9, obs.EvDispatch, 0),
		// Cycle 2: the three ops with no outstanding operands issue.
		ev(2, 0, obs.EvIssue, 0),
		ev(2, 1, obs.EvIssue, 0),
		ev(2, 9, obs.EvIssue, 0),
		// Cycle 3: their results complete; dependents issue (memory ops
		// take their AGU slot).
		ev(3, 0, obs.EvComplete, 0),
		ev(3, 9, obs.EvComplete, 0),
		ev(3, 1, obs.EvComplete, 0),
		ev(3, 2, obs.EvIssue, 0),
		ev(3, 3, obs.EvIssue, 0),
		ev(3, 5, obs.EvIssue, 0),
		ev(3, 6, obs.EvIssue, 0),
		ev(3, 8, obs.EvIssue, 0),
		// Cycle 4: addresses resolve; the first store misses the cold LVC
		// all the way to memory, both loads forward from older stores.
		ev(4, 0, obs.EvCommit, 0),
		ev(4, 1, obs.EvCommit, 0),
		ev(4, 2, obs.EvAddrReady, 0),
		ev(4, 8, obs.EvComplete, 0),
		ev(4, 6, obs.EvAddrReady, 0),
		ev(4, 5, obs.EvAddrReady, 0),
		ev(4, 3, obs.EvAddrReady, 0),
		ev(4, 2, obs.EvCacheAccess, lvcWrMem),
		ev(4, 2, obs.EvComplete, 0),
		ev(4, 3, obs.EvForward, 0),
		// Cycles 5-8: the chain drains and retires in order.
		ev(5, 2, obs.EvCommit, 0),
		ev(5, 3, obs.EvComplete, 0),
		ev(5, 4, obs.EvIssue, 0),
		ev(6, 3, obs.EvCommit, 0),
		ev(6, 4, obs.EvComplete, 0),
		ev(6, 5, obs.EvCacheAccess, lvcWrHit),
		ev(6, 5, obs.EvComplete, 0),
		ev(6, 6, obs.EvForward, 0),
		ev(6, 7, obs.EvIssue, 0),
		ev(7, 4, obs.EvCommit, 0),
		ev(7, 5, obs.EvCommit, 0),
		ev(7, 6, obs.EvComplete, 0),
		ev(7, 7, obs.EvComplete, 0),
		ev(8, 6, obs.EvCommit, 0),
		ev(8, 7, obs.EvCommit, 0),
		ev(8, 8, obs.EvCommit, 0),
		ev(8, 9, obs.EvCommit, 0),
	}
	if len(ft.evs) != len(want) {
		t.Fatalf("got %d events, want %d:\n%v", len(ft.evs), len(want), ft.evs)
	}
	for i := range want {
		if ft.evs[i] != want[i] {
			t.Errorf("event %d = {c%d s%d %v arg=%d}, want {c%d s%d %v arg=%d}",
				i, ft.evs[i].Cycle, ft.evs[i].Seq, ft.evs[i].Kind, ft.evs[i].Arg,
				want[i].Cycle, want[i].Seq, want[i].Kind, want[i].Arg)
		}
	}
}

// TestTracerRecoverySpansMatchResult forces one steering misprediction
// and checks the acceptance contract end to end: the emitted
// detect→cancel→replay events pair into exactly Result.Recoveries
// Chrome spans.
func TestTracerRecoverySpansMatchResult(t *testing.T) {
	tr := tenInstTrace(t, TraceOptions{
		// Flip the steering prediction of the second memory reference
		// (the first load): it dispatches to the LSQ, its actual region
		// is stack, and address translation triggers recovery.
		SteerFault: func(ref uint64, pred core.Prediction) core.Prediction {
			if ref == 1 {
				return !pred
			}
			return pred
		},
	})
	ring := obs.NewRing(0)
	sim, err := New(Decoupled(3, 3), WithTracer(ring))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 || res.ARPTMispredicts != 1 {
		t.Fatalf("recoveries=%d mispredicts=%d, want 1/1", res.Recoveries, res.ARPTMispredicts)
	}

	// Protocol order in the event stream: detect, then cancel, then
	// replay, all for the same seq.
	var detect, cancel, replay []obs.Event
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case obs.EvRecoveryDetect:
			detect = append(detect, ev)
		case obs.EvRecoveryCancel:
			cancel = append(cancel, ev)
		case obs.EvRecoveryReplay:
			replay = append(replay, ev)
		}
	}
	if len(detect) != 1 || len(cancel) != 1 || len(replay) != 1 {
		t.Fatalf("recovery events: %d detect, %d cancel, %d replay, want 1 each",
			len(detect), len(cancel), len(replay))
	}
	if detect[0].Seq != cancel[0].Seq || cancel[0].Seq != replay[0].Seq {
		t.Fatal("recovery events disagree on seq")
	}
	if replay[0].Arg != int64(sim.Config().MispredictPenalty) {
		t.Errorf("replay penalty arg = %d, want %d", replay[0].Arg, sim.Config().MispredictPenalty)
	}

	var buf bytes.Buffer
	stats, err := obs.WriteChromeTrace(&buf, ring.Events(), obs.ChromeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(stats.RecoverySpans) != res.Recoveries {
		t.Errorf("chrome recovery spans = %d, Result.Recoveries = %d",
			stats.RecoverySpans, res.Recoveries)
	}
}

// TestNopTracerStripped: WithTracer(obs.Nop{}) must leave the Sim on
// the uninstrumented path — that is the basis of the <2% no-op
// overhead guarantee.
func TestNopTracerStripped(t *testing.T) {
	sim, err := New(Decoupled(3, 3), WithTracer(obs.Nop{}))
	if err != nil {
		t.Fatal(err)
	}
	if sim.tracer != nil {
		t.Fatal("obs.Nop not stripped at construction")
	}
	tr := tenInstTrace(t, TraceOptions{})
	plain, err := Simulate(tr, Decoupled(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Errorf("Nop-traced result differs from plain result:\n%+v\n%+v", res, plain)
	}
}

// TestRunPublishesMetrics: WithMetrics must surface the Result counters
// and the per-cycle occupancy histograms in the registry.
func TestRunPublishesMetrics(t *testing.T) {
	tr := tenInstTrace(t, TraceOptions{})
	reg := obs.NewRegistry()
	sim, err := New(Decoupled(3, 3), WithMetrics(reg, obs.Labels{"suite": "test"}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	l := obs.Labels{"suite": "test", "workload": tr.Name, "config": "(3+3)"}
	if got := reg.Counter("sim_cycles_total", "", l).Value(); got != res.Cycles {
		t.Errorf("sim_cycles_total = %d, want %d", got, res.Cycles)
	}
	if got := reg.Hist("sim_lsq_occupancy", "", l).Count(); got != res.Cycles {
		t.Errorf("LSQ occupancy samples = %d, want one per cycle (%d)", got, res.Cycles)
	}
	if got := reg.Hist("sim_lvaq_occupancy", "", l).Count(); got != res.Cycles {
		t.Errorf("LVAQ occupancy samples = %d, want one per cycle (%d)", got, res.Cycles)
	}
}
