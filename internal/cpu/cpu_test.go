package cpu

import (
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/minicc"
	"repro/internal/workload"
)

func trace(t *testing.T, src string) *Trace {
	t.Helper()
	p, err := minicc.Compile("t.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr, err := BuildTrace(p, TraceOptions{})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return tr
}

const loopSrc = `
int a[256];
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 256; i++) a[i] = i;
	for (i = 0; i < 256; i++) s += a[i] * 3;
	return s & 255;
}`

func TestBuildTraceBasics(t *testing.T) {
	tr := trace(t, loopSrc)
	if len(tr.Insts) == 0 {
		t.Fatal("empty trace")
	}
	mems, loads, stores := 0, 0, 0
	for i := range tr.Insts {
		ti := &tr.Insts[i]
		if ti.IsMem() {
			mems++
			if ti.IsLoad() {
				loads++
			} else {
				stores++
			}
			if ti.Addr == 0 {
				t.Fatal("memory instruction with zero address")
			}
		}
	}
	if mems == 0 || loads == 0 || stores == 0 {
		t.Fatalf("mems=%d loads=%d stores=%d", mems, loads, stores)
	}
	if tr.PredictorStats.Total != uint64(mems) {
		t.Errorf("classifier saw %d refs, trace has %d", tr.PredictorStats.Total, mems)
	}
}

func TestSimulateCompletes(t *testing.T) {
	tr := trace(t, loopSrc)
	for _, cfg := range Figure8Configs() {
		res, err := Simulate(tr, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.Insts != uint64(len(tr.Insts)) {
			t.Errorf("%s: committed %d of %d", cfg.Name, res.Insts, len(tr.Insts))
		}
		if res.Cycles == 0 {
			t.Errorf("%s: zero cycles", cfg.Name)
		}
		ipc := res.IPC()
		if ipc <= 0 || ipc > float64(cfg.IssueWidth) {
			t.Errorf("%s: implausible IPC %.2f", cfg.Name, ipc)
		}
	}
}

// More ports must never hurt: cycles((N+0)) >= cycles((N'+0)) for N'>N.
func TestMorePortsMonotone(t *testing.T) {
	tr := trace(t, loopSrc)
	prev := uint64(0)
	for i, ports := range []int{1, 2, 4, 16} {
		cfg := Conventional(ports, 2)
		res, err := Simulate(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Cycles > prev {
			t.Errorf("%d ports slower than fewer ports: %d > %d cycles", ports, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

// Dependence chains must serialize: a chain of dependent multiplies
// cannot run at high IPC.
func TestDependenceChainSerializes(t *testing.T) {
	chain := trace(t, `
int main() {
	int x = 3;
	int i;
	for (i = 0; i < 2000; i++) x = x * 7 + 1;
	return x & 255;
}`)
	res, err := Simulate(chain, Conventional(16, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Each iteration carries mul(6)+add on the critical path; IPC must
	// reflect a long dependence chain, far below the issue width.
	if ipc := res.IPC(); ipc > 2.0 {
		t.Errorf("dependent chain IPC %.2f, expected serialization", ipc)
	}
}

func TestValuePredictorBreaksChains(t *testing.T) {
	// A strided accumulator is exactly what the stride predictor eats.
	src := `
int main() {
	int x = 0;
	int i;
	for (i = 0; i < 4000; i++) x = x + 3;
	return x & 255;
}`
	p, err := minicc.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	with, err := BuildTrace(p, TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := BuildTrace(p, TraceOptions{DisableValuePred: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Conventional(4, 2)
	rw, err := Simulate(with, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Simulate(without, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rw.VPUsed == 0 {
		t.Fatal("value predictor never used on a strided accumulator")
	}
	if rw.Cycles >= ro.Cycles {
		t.Errorf("value prediction did not help: %d vs %d cycles", rw.Cycles, ro.Cycles)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// Write-then-read of the same stack slot through a pointer forces
	// queue forwarding.
	tr := trace(t, `
int g;
void touch(int *p) {
	*p = *p + 1;
}
int main() {
	int x = 0;
	int i;
	for (i = 0; i < 500; i++) touch(&x);
	g = x;
	return x & 255;
}`)
	res, err := Simulate(tr, Conventional(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Forwards == 0 {
		t.Error("no store-to-load forwarding observed")
	}
}

func TestDecoupledStatsAndSteering(t *testing.T) {
	w, _ := workload.ByName("vortex")
	p, err := w.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := BuildTrace(p, TraceOptions{MaxInsts: 400_000})
	if err != nil {
		// The budget fault is fine; build a shorter trace instead.
		t.Skipf("trace: %v", err)
	}
	res, err := Simulate(tr, Decoupled(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.LVCStats.Accesses == 0 {
		t.Error("decoupled run never touched the LVC")
	}
	if res.L1Stats.Accesses == 0 {
		t.Error("decoupled run never touched the L1")
	}
	// The steering accuracy is >99%, so mispredicts must be rare.
	if res.ARPTMispredicts*100 > res.LVCStats.Accesses+res.L1Stats.Accesses {
		t.Errorf("implausible misprediction count %d", res.ARPTMispredicts)
	}
}

func TestConfigNames(t *testing.T) {
	cases := map[string]Config{
		"(2+0)":      Conventional(2, 2),
		"(3+0,3cyc)": Conventional(3, 3),
		"(3+3)":      Decoupled(3, 3),
	}
	for want, cfg := range cases {
		if cfg.Name != want {
			t.Errorf("name = %q, want %q", cfg.Name, want)
		}
	}
	if len(Figure8Configs()) != 8 {
		t.Errorf("Figure8Configs has %d entries, want 8", len(Figure8Configs()))
	}
}

func TestDepRegMapping(t *testing.T) {
	if depReg(isa.Zero, false) != noReg {
		t.Error("$zero should carry no dependence")
	}
	if depReg(isa.T0, false) != int8(isa.T0) {
		t.Error("integer register id")
	}
	if depReg(5, true) != 37 {
		t.Error("fp register id")
	}
}

// TestConcurrentSimulateSharesTrace pins the contract the parallel
// experiment harness depends on: Simulate never mutates its trace, so
// concurrent simulations over one trace are race-free and each yields
// the same result as a solo run.
func TestConcurrentSimulateSharesTrace(t *testing.T) {
	tr := trace(t, loopSrc)
	configs := []Config{Conventional(2, 2), Decoupled(2, 2), Decoupled(3, 3), Conventional(16, 2)}
	want := make([]*Result, len(configs))
	for i, cfg := range configs {
		res, err := Simulate(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	const rounds = 4
	got := make([]*Result, len(configs)*rounds)
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Simulate(tr, configs[i%len(configs)])
			if err != nil {
				t.Errorf("concurrent Simulate: %v", err)
				return
			}
			got[i] = res
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, res := range got {
		w := want[i%len(configs)]
		if res.Cycles != w.Cycles || res.Insts != w.Insts || res.ARPTMispredicts != w.ARPTMispredicts {
			t.Errorf("%s: concurrent run diverged: cycles %d vs %d, mispredicts %d vs %d",
				res.Config.Name, res.Cycles, w.Cycles, res.ARPTMispredicts, w.ARPTMispredicts)
		}
	}
}
