package cpu

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "126.gcc",
		Insts: []TraceInst{
			{Addr: 0x7FFF_0000, Index: 3, Class: 2, Src1: 4, Src2: -1, Dest: 7, Flags: FlagMem | FlagLoad | FlagStack},
			{Addr: 0x1000_0040, Index: 9, Class: 1, Src1: -1, Src2: -1, Dest: 40, Flags: FlagMem | FlagFPMem},
			{Index: 10, Class: 5, Src1: 63, Src2: 12, Dest: -1},
		},
		PredictorStats: core.ClassifyStats{
			Total: 100, Correct: 97, StaticCovered: 40,
			HintCovered: 10, HintCorrect: 9, TableLookups: 50, TableCorrect: 48,
		},
	}
}

func TestTraceCodecRoundTrip(t *testing.T) {
	want := sampleTrace()
	data, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Trace
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", &got, want)
	}

	// Deterministic byte image: encoding the same trace twice agrees.
	again, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatal("non-deterministic encoding")
	}

	// Empty trace round-trips too.
	empty := &Trace{Name: ""}
	data, err = empty.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(back.Insts) != 0 {
		t.Fatalf("empty trace decoded to %d insts", len(back.Insts))
	}
}

func TestTraceCodecRejectsMangledInput(t *testing.T) {
	data, err := sampleTrace().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }},
		{"truncated record", func(b []byte) []byte { return b[:len(b)-1] }},
		{"name overruns", func(b []byte) []byte { b[5] = 0xFF; return b }},
		{"count overruns", func(b []byte) []byte { b[len(b)-3*13-8] = 0xFF; return b }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := tc.mangle(append([]byte(nil), data...))
			var tr Trace
			if err := tr.UnmarshalBinary(in); err == nil {
				t.Fatal("mangled input decoded without error")
			}
		})
	}
}
