package cpu

import "fmt"

// Latencies follow the MIPS R10000 as Table 4 specifies.
const (
	LatIntALU = 1
	LatIntMul = 6
	LatIntDiv = 35
	LatFPALU  = 2
	LatFPMul  = 2
	LatFPDiv  = 12
	LatL2     = 12 // L2 hit
	LatMem    = 50 // main memory
)

// Config is one machine configuration. The paper's (N+M) notation maps
// to L1Ports=N / LVCPorts=M; M=0 is a conventional single-pipeline
// memory system.
type Config struct {
	Name string

	IssueWidth        int // also decode and commit width (Table 4)
	ROBSize           int
	LSQSize           int
	LVAQSize          int // 0 disables the LVAQ (conventional design)
	L1Ports           int
	L1Latency         int
	LVCPorts          int
	LVCLatency        int
	IntALU            int
	FPALU             int
	IntMulDiv         int
	FPMulDiv          int
	MispredictPenalty int  // extra cycles after an ARPT steering miss
	FastForward       bool // LVAQ offset-based store-to-load fast forwarding
}

// Decoupled reports whether the configuration runs two memory
// pipelines.
func (c Config) Decoupled() bool { return c.LVAQSize > 0 }

// Validate checks structural sanity.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 || c.ROBSize <= 0 || c.LSQSize <= 0 {
		return fmt.Errorf("cpu config %q: non-positive core sizes", c.Name)
	}
	if c.L1Ports <= 0 || c.L1Latency <= 0 {
		return fmt.Errorf("cpu config %q: bad L1 parameters", c.Name)
	}
	if c.Decoupled() && (c.LVCPorts <= 0 || c.LVCLatency <= 0) {
		return fmt.Errorf("cpu config %q: decoupled but bad LVC parameters", c.Name)
	}
	if c.IntALU <= 0 || c.FPALU <= 0 || c.IntMulDiv <= 0 || c.FPMulDiv <= 0 {
		return fmt.Errorf("cpu config %q: non-positive FU counts", c.Name)
	}
	return nil
}

// baseTable4 is the fixed part of the Table 4 machine.
func baseTable4(name string) Config {
	return Config{
		Name:       name,
		IssueWidth: 16,
		ROBSize:    256,
		IntALU:     16, FPALU: 16, IntMulDiv: 4, FPMulDiv: 4,
		MispredictPenalty: 1,
		LVCLatency:        1,
	}
}

// Conventional builds an (N+0) configuration: a single LSQ (128
// entries) in front of an N-ported L1 with the given hit latency.
func Conventional(ports, latency int) Config {
	c := baseTable4(fmt.Sprintf("(%d+0)", ports))
	if latency != 2 {
		c.Name = fmt.Sprintf("(%d+0,%dcyc)", ports, latency)
	}
	c.LSQSize = 128
	c.L1Ports = ports
	c.L1Latency = latency
	return c
}

// Decoupled builds an (N+M) configuration: LSQ/LVAQ of 96 entries each
// (§4.3), an N-ported L1 and an M-ported 1-cycle LVC, with fast
// forwarding enabled in the LVAQ.
func Decoupled(l1Ports, lvcPorts int) Config {
	c := baseTable4(fmt.Sprintf("(%d+%d)", l1Ports, lvcPorts))
	c.LSQSize = 96
	c.LVAQSize = 96
	c.L1Ports = l1Ports
	c.L1Latency = 2
	c.LVCPorts = lvcPorts
	c.FastForward = true
	return c
}

// Figure8Configs returns the configurations of the paper's Figure 8 in
// presentation order: (2+0) baseline, (3+0) at 2 and 3 cycles, (4+0) at
// 3 cycles, the decoupled (2+2), (2+3), (3+3), and the (16+0)
// upper bound.
func Figure8Configs() []Config {
	return []Config{
		Conventional(2, 2),
		Conventional(3, 2),
		Conventional(3, 3),
		Conventional(4, 3),
		Decoupled(2, 2),
		Decoupled(2, 3),
		Decoupled(3, 3),
		Conventional(16, 2),
	}
}
