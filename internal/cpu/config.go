package cpu

import (
	"fmt"
	"strings"

	"repro/internal/cache"
)

// Latencies follow the MIPS R10000 as Table 4 specifies.
const (
	LatIntALU = 1
	LatIntMul = 6
	LatIntDiv = 35
	LatFPALU  = 2
	LatFPMul  = 2
	LatFPDiv  = 12
	LatL2     = 12 // L2 hit
	LatMem    = 50 // main memory
)

// Config is one machine configuration. The paper's (N+M) notation maps
// to an N-ported L1 partition plus an M-ported LVC partition; M=0 is a
// conventional single-pipeline memory system.
//
// The first-level cache is described solely by the Partitions +
// SteerPolicy surface (the legacy L1Ports/L1Latency/LVCPorts/LVCLatency
// fields were removed after their one-PR compatibility window). Build
// configs through Conventional, Decoupled or Custom rather than filling
// Partitions by hand.
type Config struct {
	Name string

	IssueWidth int // also decode and commit width (Table 4)
	ROBSize    int
	LSQSize    int
	LVAQSize   int // 0 disables the LVAQ (conventional design)

	// Partitions lists the first-level cache partitions explicitly
	// (per-partition size/assoc/line/ports/latency); SteerPolicy names
	// the cache.NewSteer predicate that routes accesses between them
	// ("" defaults to region when there are two or more partitions,
	// none otherwise).
	Partitions  []cache.PartitionConfig
	SteerPolicy string

	IntALU            int
	FPALU             int
	IntMulDiv         int
	FPMulDiv          int
	MispredictPenalty int  // extra cycles after an ARPT steering miss
	FastForward       bool // LVAQ offset-based store-to-load fast forwarding
}

// String returns the canonical configuration name — "(3+3)",
// "(2+0,3cyc)", "(3+3,lvc8K,pen4)". The name is the identity used by
// store keys and the arld grid shorthand; ParseConfigName in
// internal/service inverts it.
func (c Config) String() string { return c.Name }

// configKey is Config without the Stringer, so %+v renders every
// field rather than collapsing to the name.
type configKey Config

// Key returns a full-field rendering of the configuration for memo
// and store keys: unlike Name it distinguishes configs that differ in
// any field, and unlike %+v on Config it does not collapse to String.
func (c Config) Key() string { return fmt.Sprintf("%+v", configKey(c)) }

// Decoupled reports whether the configuration runs two memory
// pipelines.
func (c Config) Decoupled() bool { return c.LVAQSize > 0 }

// partitions returns the first-level partition list and steering
// policy without validating them, defaulting the policy by partition
// count (region for split hierarchies, none for a unified cache).
func (c Config) partitions() ([]cache.PartitionConfig, string) {
	parts := append([]cache.PartitionConfig(nil), c.Partitions...)
	policy := c.SteerPolicy
	if policy == "" {
		if len(parts) > 1 {
			policy = cache.SteerRegion
		} else {
			policy = cache.SteerNone
		}
	}
	return parts, policy
}

// ResolvePartitions resolves the configuration's first-level cache to
// an explicit, validated partition list plus steering policy.
func (c Config) ResolvePartitions() ([]cache.PartitionConfig, string, error) {
	parts, policy := c.partitions()
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("no first-level cache partitions")
	}
	for i, p := range parts {
		if err := p.Validate(); err != nil {
			return nil, "", fmt.Errorf("partition %d: %w", i, err)
		}
	}
	if _, err := cache.NewSteer(policy, len(parts)); err != nil {
		return nil, "", err
	}
	return parts, policy, nil
}

// Validate checks structural sanity.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 || c.ROBSize <= 0 || c.LSQSize <= 0 {
		return fmt.Errorf("cpu config %q: non-positive core sizes", c.Name)
	}
	if _, _, err := c.ResolvePartitions(); err != nil {
		return fmt.Errorf("cpu config %q: %w", c.Name, err)
	}
	if c.IntALU <= 0 || c.FPALU <= 0 || c.IntMulDiv <= 0 || c.FPMulDiv <= 0 {
		return fmt.Errorf("cpu config %q: non-positive FU counts", c.Name)
	}
	return nil
}

// baseTable4 is the fixed part of the Table 4 machine.
func baseTable4(name string) Config {
	return Config{
		Name:       name,
		IssueWidth: 16,
		ROBSize:    256,
		IntALU:     16, FPALU: 16, IntMulDiv: 4, FPMulDiv: 4,
		MispredictPenalty: 1,
	}
}

// Conventional builds an (N+0) configuration: a single LSQ (128
// entries) in front of an N-ported L1 with the given hit latency.
func Conventional(ports, latency int) Config {
	c := baseTable4(fmt.Sprintf("(%d+0)", ports))
	if latency != 2 {
		c.Name = fmt.Sprintf("(%d+0,%dcyc)", ports, latency)
	}
	c.LSQSize = 128
	c.Partitions = []cache.PartitionConfig{cache.L1Config(ports, latency)}
	return c
}

// Decoupled builds an (N+M) configuration: LSQ/LVAQ of 96 entries each
// (§4.3), a region-steered split of an N-ported 2-cycle L1 and an
// M-ported 1-cycle LVC, with fast forwarding enabled in the LVAQ.
func Decoupled(l1Ports, lvcPorts int) Config {
	c := baseTable4(fmt.Sprintf("(%d+%d)", l1Ports, lvcPorts))
	c.LSQSize = 96
	c.LVAQSize = 96
	c.Partitions = []cache.PartitionConfig{
		cache.L1Config(l1Ports, 2), cache.LVCConfig(lvcPorts)}
	c.FastForward = true
	return c
}

// WithPenalty returns the configuration with the given ARPT steering
// mispredict penalty, renaming it canonically: the ",penP" token is
// appended (always last) when P differs from the Table 4 default of 1,
// and stripped when P == 1, so "(3+3)".WithPenalty(4) is
// "(3+3,pen4)" and back.
func (c Config) WithPenalty(pen int) Config {
	name := strings.TrimSuffix(c.Name, ")")
	if i := strings.LastIndex(name, ",pen"); i >= 0 {
		name = name[:i]
	}
	if pen != 1 {
		name += fmt.Sprintf(",pen%d", pen)
	}
	c.Name = name + ")"
	c.MispredictPenalty = pen
	return c
}

// CustomParams parameterizes Custom. Zero values mean the Table 4
// defaults: L1Latency 2, LVCSizeKB 4, Steer region (decoupled) or none
// (conventional), Penalty 1. LVCPorts 0 selects the conventional
// single-pipeline machine.
type CustomParams struct {
	L1Ports   int
	L1Latency int    // 0 means 2 cycles
	LVCPorts  int    // 0 means conventional (no LVC)
	LVCSizeKB int    // 0 means 4 KB
	Steer     string // "" means region when decoupled, none when conventional
	Penalty   int    // 0 means 1 cycle

	// ARPTEntries is carried by the explorer's grid, not by Config:
	// the steering predictor is a front-end table sized at trace time.
	// It lives here so one params struct names a full design point.
	ARPTEntries int
}

// Custom builds a configuration for an arbitrary design point and
// names it canonically: "(N+M[,Lcyc][,lvcSK][,<policy>][,penP])" with
// segments emitted only when they differ from the Table 4 defaults.
// Non-canonical combinations — an LVC dimension or a splitting policy
// on a conventional machine — are rejected rather than silently
// collapsed, so every name denotes exactly one machine.
func Custom(p CustomParams) (Config, error) {
	lat := p.L1Latency
	if lat == 0 {
		lat = 2
	}
	kb := p.LVCSizeKB
	if kb == 0 {
		kb = 4
	}
	pen := p.Penalty
	if pen == 0 {
		pen = 1
	}
	if p.L1Ports <= 0 {
		return Config{}, fmt.Errorf("cpu: custom config with %d L1 ports", p.L1Ports)
	}
	if p.LVCPorts < 0 {
		return Config{}, fmt.Errorf("cpu: custom config with %d LVC ports", p.LVCPorts)
	}

	if p.LVCPorts == 0 {
		if p.Steer != "" && p.Steer != cache.SteerNone {
			return Config{}, fmt.Errorf("cpu: %s steering needs an LVC partition", p.Steer)
		}
		if p.LVCSizeKB != 0 && p.LVCSizeKB != 4 {
			return Config{}, fmt.Errorf("cpu: LVC size on a conventional (%d+0) config", p.L1Ports)
		}
		if pen != 1 {
			return Config{}, fmt.Errorf("cpu: steering penalty on a conventional (%d+0) config", p.L1Ports)
		}
		return Conventional(p.L1Ports, lat), nil
	}

	switch p.Steer {
	case "", cache.SteerRegion, cache.SteerPattern, cache.SteerPCHash, cache.SteerNone:
	default:
		return Config{}, fmt.Errorf("cpu: unknown steering policy %q", p.Steer)
	}
	c := Decoupled(p.L1Ports, p.LVCPorts)
	lvc := cache.LVCConfig(p.LVCPorts)
	lvc.SizeBytes = kb << 10
	c.Partitions = []cache.PartitionConfig{cache.L1Config(p.L1Ports, lat), lvc}
	name := fmt.Sprintf("(%d+%d", p.L1Ports, p.LVCPorts)
	if lat != 2 {
		name += fmt.Sprintf(",%dcyc", lat)
	}
	if kb != 4 {
		name += fmt.Sprintf(",lvc%dK", kb)
	}
	if p.Steer != "" && p.Steer != cache.SteerRegion {
		name += "," + p.Steer
		c.SteerPolicy = p.Steer
	}
	c.Name = name + ")"
	c = c.WithPenalty(pen)
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Figure8Configs returns the configurations of the paper's Figure 8 in
// presentation order: (2+0) baseline, (3+0) at 2 and 3 cycles, (4+0) at
// 3 cycles, the decoupled (2+2), (2+3), (3+3), and the (16+0)
// upper bound.
func Figure8Configs() []Config {
	return []Config{
		Conventional(2, 2),
		Conventional(3, 2),
		Conventional(3, 3),
		Conventional(4, 3),
		Decoupled(2, 2),
		Decoupled(2, 3),
		Decoupled(3, 3),
		Conventional(16, 2),
	}
}
