package cpu

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// benchInsts keeps one benchmark iteration around a hundred
// milliseconds: long enough that per-Run setup noise vanishes, short
// enough for -count=N comparison runs.
const benchInsts = 200_000

var (
	benchOnce sync.Once
	benchTr   *Trace
	benchErr  error
)

// benchTrace builds (once) the trace both overhead benchmarks share.
func benchTrace(b *testing.B) *Trace {
	b.Helper()
	benchOnce.Do(func() {
		w, ok := workload.ByName("129.compress")
		if !ok {
			panic("129.compress missing")
		}
		p, err := w.Compile(0)
		if err != nil {
			benchErr = err
			return
		}
		benchTr, benchErr = BuildTrace(p, TraceOptions{MaxInsts: benchInsts})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchTr
}

// BenchmarkSimNoObs is the baseline: the plain Simulate path with no
// observability construct in sight.
func BenchmarkSimNoObs(b *testing.B) {
	tr := benchTrace(b)
	cfg := Decoupled(3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimNopObs is the same simulation run through the
// observability API with the no-op tracer attached. WithTracer strips
// obs.Nop to nil at construction, so this measures the cost of the
// instrumented engine's nil-tracer guards — the CI guard asserts it
// stays within 2% of BenchmarkSimNoObs (results/obs_overhead.txt).
func BenchmarkSimNopObs(b *testing.B) {
	tr := benchTrace(b)
	sim, err := New(Decoupled(3, 3), WithTracer(obs.Nop{}))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRingObs bounds the cost of live tracing: every pipeline
// event emitted into the default ring buffer. Not guarded in CI — it
// documents the price of -trace-events, not a regression budget.
func BenchmarkSimRingObs(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring := obs.NewRing(0)
		sim, err := New(Decoupled(3, 3), WithTracer(ring))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
}
