package cpu

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/obs"
)

// ErrInvariant marks a violated internal pipeline invariant: the
// simulation's bookkeeping contradicted itself (e.g. a memory queue
// head out of program order). It is returned, wrapped, by Simulate —
// never panicked — so an embedding process survives a corrupted run.
var ErrInvariant = errors.New("cpu: pipeline invariant violated")

// MemFaulter perturbs the timing model's memory pipeline. It is the
// simulation-level fault-injection hook: implementations must be
// deterministic functions of their arguments and internal seeded
// state, never of wall-clock or map order. Faults injected here may
// change cycle counts only; the committed instruction stream is fixed
// by the trace, which the differential harness verifies.
type MemFaulter interface {
	// PortDenied reports whether the n-th cache-port grant of the run
	// should be denied; a denied access retries on a later cycle.
	// lvc distinguishes the LVC port pool from the L1 pool.
	PortDenied(n uint64, lvc bool) bool
	// ExtraLatency reports extra cycles to add to the n-th granted
	// load access (0 for none).
	ExtraLatency(n uint64) int
}

// RecoveryObserver witnesses the ARPT misprediction-recovery state
// machine as the simulator drives it: every detected wrong-queue
// dispatch must be cancelled from the mispredicted queue and replayed
// into the correct one at the configured penalty. A non-nil error
// from any method aborts the simulation — observers validate protocol
// order (see decouple.Recovery) and turn sequencing bugs into hard
// failures instead of silent mis-modelling.
type RecoveryObserver interface {
	Detect(seq int64) error
	Cancel(seq int64) error
	Replay(seq int64, penalty int) error
}

// Result is the outcome of one timing simulation.
type Result struct {
	Config Config
	Name   string // trace name

	Cycles uint64
	Insts  uint64

	// PartStats holds per-partition first-level statistics in partition
	// order. L1Stats and LVCStats mirror partitions 0 and 1 for the
	// paper's two-partition reports (LVCStats stays zero with a single
	// partition).
	PartStats []cache.Stats
	L1Stats   cache.Stats
	LVCStats  cache.Stats
	L2Stats   cache.Stats

	ARPTMispredicts uint64
	Recoveries      uint64 // completed detect→cancel→replay sequences
	Forwards        uint64 // store-to-load forwards (both queues)
	FastForwards    uint64 // LVAQ offset-based forwards
	VPUsed          uint64 // results supplied by the value predictor
	StallROB        uint64 // dispatch cycles lost to a full ROB
	StallQueue      uint64 // dispatch cycles lost to a full LSQ/LVAQ
}

// IPC reports committed instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// Speedup reports this result's performance relative to a baseline.
func (r *Result) Speedup(base *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// Entry states.
const (
	stWaiting = iota // operands outstanding
	stReady          // in the ready queue
	stIssued         // executing / in the memory pipeline
	stDone           // result available, retirable
)

const (
	qNone = iota
	qLSQ
	qLVAQ
)

// Dependence mask bits: bit 0 is the first source (the address base for
// memory operations), bit 1 the second (the store data).
const (
	depA = 1 << 0
	depB = 1 << 1
)

type robEntry struct {
	ti        int // trace index
	state     uint8
	queue     uint8
	mask      uint8 // outstanding source operands
	addrDone  bool
	earlyAddr bool  // LVAQ fast forwarding: address usable from dispatch
	readyAt   int64 // earliest cycle the cache access may start (recovery)
	consumers []int64
}

// event kinds.
const (
	evComplete = iota
	evAddrDone
)

type event struct {
	cycle int64
	seq   int64
	kind  uint8
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].cycle < h[j].cycle }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type seqHeap []int64

func (h seqHeap) Len() int           { return len(h) }
func (h seqHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h seqHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *seqHeap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *seqHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type simulator struct {
	cfg Config
	tr  *Trace
	res *Result

	rob      []robEntry
	headSeq  int64 // oldest in-flight
	tailSeq  int64 // next to allocate
	nextDisp int   // next trace index to dispatch

	lastWriter [numDepRegs]int64

	ready  seqHeap
	events eventHeap
	now    int64

	// Queue contents in program order (seqs); entries leave at commit.
	lsq  []int64
	lvaq []int64

	// Memory entries past address generation, awaiting disambiguation
	// and a cache port.
	memPending []int64
	pendDirty  bool

	// First-level partitions plus shared L2, with the per-partition
	// timing parameters the hierarchy leaves to the pipeline model.
	hier   *cache.Hierarchy
	ports  []int // static per-partition port counts
	plats  []int // per-partition hit latencies
	budget []int // ports left this cycle, refilled by memScan

	ctx      context.Context
	faults   MemFaulter
	recovery RecoveryObserver
	nGrant   uint64 // cache-port grant ordinal (MemFaulter hook index)

	// trc is nil for uninstrumented runs: every emission site is behind
	// a nil check, so the no-op path does no interface calls.
	trc obs.Tracer

	// Per-cycle occupancy histograms, nil without WithMetrics.
	occLSQ  *obs.Hist
	occLVAQ *obs.Hist
}

func (s *simulator) emit(seq int64, kind obs.EventKind, arg int64) {
	s.trc.Emit(obs.Event{Cycle: s.now, Seq: seq, Kind: kind, Arg: arg})
}

func (s *simulator) slot(seq int64) *robEntry { return &s.rob[seq%int64(len(s.rob))] }

func (s *simulator) inst(seq int64) *TraceInst { return &s.tr.Insts[s.slot(seq).ti] }

// writerOutstanding reports whether the producer at seq has not yet
// delivered its value.
func (s *simulator) writerOutstanding(seq int64) bool {
	if seq < 0 || seq < s.headSeq {
		return false // retired: value architecturally available
	}
	return s.slot(seq).state != stDone
}

// Simulate runs trace tr on configuration cfg with no instrumentation
// attached. All mutable machine state (ROB, queues, caches, statistics)
// lives in the per-call simulator; tr is never written, so concurrent
// Simulate calls may share one trace.
func Simulate(tr *Trace, cfg Config) (*Result, error) {
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.run(tr)
}

// run is the simulation engine behind Sim.Run (which adds metrics
// publication on top).
func (sm *Sim) run(tr *Trace) (*Result, error) {
	cfg := sm.cfg
	if len(tr.Insts) == 0 {
		return nil, fmt.Errorf("cpu: empty trace %q", tr.Name)
	}
	parts, policy, err := cfg.ResolvePartitions()
	if err != nil {
		return nil, fmt.Errorf("cpu config %q: %w", cfg.Name, err)
	}
	steer, err := cache.NewSteer(policy, len(parts))
	if err != nil {
		return nil, fmt.Errorf("cpu config %q: %w", cfg.Name, err)
	}
	hier, err := cache.NewHierarchy(cache.HierarchyConfig{Partitions: parts, Steer: steer})
	if err != nil {
		return nil, fmt.Errorf("cpu config %q: %w", cfg.Name, err)
	}
	s := &simulator{
		cfg:      cfg,
		tr:       tr,
		res:      &Result{Config: cfg, Name: tr.Name},
		rob:      make([]robEntry, cfg.ROBSize),
		hier:     hier,
		ports:    make([]int, len(parts)),
		plats:    make([]int, len(parts)),
		budget:   make([]int, len(parts)),
		ctx:      sm.ctx,
		faults:   sm.faults,
		recovery: sm.recovery,
		trc:      sm.tracer,
	}
	for i, p := range parts {
		s.ports[i] = p.Ports
		s.plats[i] = p.HitLatency
	}
	if sm.reg != nil {
		l := sm.labels.With(obs.Labels{"workload": tr.Name, "config": cfg.Name})
		s.occLSQ = sm.reg.Hist("sim_lsq_occupancy", "LSQ entries per cycle", l)
		if cfg.Decoupled() {
			s.occLVAQ = sm.reg.Hist("sim_lvaq_occupancy", "LVAQ entries per cycle", l)
		}
	}
	for i := range s.lastWriter {
		s.lastWriter[i] = -1
	}

	total := int64(len(tr.Insts))
	idle := 0
	for s.headSeq < total {
		s.now++
		if s.ctx != nil && s.now&0x3FFF == 0 {
			if err := s.ctx.Err(); err != nil {
				return nil, fmt.Errorf("cpu: simulate %s: %w", tr.Name, err)
			}
		}
		c, err := s.commit()
		if err != nil {
			return nil, err
		}
		if err := s.processEvents(); err != nil {
			return nil, err
		}
		s.memScan()
		i := s.issue()
		d := s.dispatch()
		if s.occLSQ != nil {
			s.occLSQ.Observe(int64(len(s.lsq)))
			if s.occLVAQ != nil {
				s.occLVAQ.Observe(int64(len(s.lvaq)))
			}
		}
		if c == 0 && i == 0 && d == 0 && len(s.events) == 0 {
			idle++
			if idle > 10_000 {
				return nil, fmt.Errorf("cpu: simulation wedged at cycle %d (retired %d/%d, pending %d)",
					s.now, s.headSeq, total, len(s.memPending))
			}
		} else {
			idle = 0
		}
	}
	s.res.Cycles = uint64(s.now)
	s.res.Insts = uint64(total)
	s.res.PartStats = make([]cache.Stats, s.hier.NumPartitions())
	for i := range s.res.PartStats {
		s.res.PartStats[i] = s.hier.Partition(i).Stats()
	}
	s.res.L1Stats = s.res.PartStats[0]
	if len(s.res.PartStats) > 1 {
		s.res.LVCStats = s.res.PartStats[1]
	}
	s.res.L2Stats = s.hier.L2().Stats()
	return s.res, nil
}

// commit retires up to the commit width of completed entries from the
// ROB head.
func (s *simulator) commit() (int, error) {
	n := 0
	for n < s.cfg.IssueWidth && s.headSeq < s.tailSeq {
		e := s.slot(s.headSeq)
		if e.state != stDone {
			break
		}
		var err error
		switch e.queue {
		case qLSQ:
			s.lsq, err = popHead(s.lsq, s.headSeq)
		case qLVAQ:
			s.lvaq, err = popHead(s.lvaq, s.headSeq)
		}
		if err != nil {
			return n, err
		}
		if s.trc != nil {
			s.emit(s.headSeq, obs.EvCommit, 0)
		}
		s.headSeq++
		n++
	}
	return n, nil
}

// popHead removes seq from the front of a program-ordered queue. A
// mismatched head means the simulator's queue bookkeeping is corrupt;
// the wrapped ErrInvariant surfaces through Simulate's error return.
func popHead(q []int64, seq int64) ([]int64, error) {
	if len(q) == 0 || q[0] != seq {
		head := int64(-1)
		if len(q) > 0 {
			head = q[0]
		}
		return q, fmt.Errorf("%w: memory queue head %d, expected retiring seq %d",
			ErrInvariant, head, seq)
	}
	copy(q, q[1:])
	return q[:len(q)-1], nil
}

func (s *simulator) processEvents() error {
	for len(s.events) > 0 && s.events[0].cycle <= s.now {
		ev := heap.Pop(&s.events).(event)
		e := s.slot(ev.seq)
		switch ev.kind {
		case evComplete:
			s.finish(ev.seq)
		case evAddrDone:
			e.addrDone = true
			ti := s.inst(ev.seq)
			if s.trc != nil {
				s.emit(ev.seq, obs.EvAddrReady, 0)
			}
			// The extended TLB verifies the steering prediction at
			// address translation; a mismatch starts recovery and the
			// access is re-steered to the correct pipeline.
			if s.cfg.Decoupled() && ti.Mispredicted() {
				if err := s.recoverSteering(ev.seq, e, ti); err != nil {
					return err
				}
			}
			s.memPending = append(s.memPending, ev.seq)
			s.pendDirty = true
		}
	}
	return nil
}

// recoverSteering runs the misprediction-recovery state machine for one
// wrong-queue dispatch: detect the mismatch at address translation,
// cancel the entry from the mispredicted queue, and replay it into the
// correct queue with the configured penalty before it may touch a cache
// port. The destination queue may transiently exceed its size limit —
// hardware reserves a recovery slot; dispatch still observes the limit,
// so occupancy self-corrects.
func (s *simulator) recoverSteering(seq int64, e *robEntry, ti *TraceInst) error {
	s.res.ARPTMispredicts++
	rec := s.recovery
	if s.trc != nil {
		s.emit(seq, obs.EvRecoveryDetect, 0)
	}
	if rec != nil {
		if err := rec.Detect(seq); err != nil {
			return err
		}
	}
	from, to := &s.lsq, &s.lvaq
	toQ := uint8(qLVAQ)
	if e.queue == qLVAQ {
		from, to = &s.lvaq, &s.lsq
		toQ = qLSQ
	}
	var ok bool
	if *from, ok = removeSeq(*from, seq); !ok {
		return fmt.Errorf("%w: seq %d absent from its steering queue during recovery",
			ErrInvariant, seq)
	}
	if s.trc != nil {
		s.emit(seq, obs.EvRecoveryCancel, 0)
	}
	if rec != nil {
		if err := rec.Cancel(seq); err != nil {
			return err
		}
	}
	*to = insertSeq(*to, seq)
	e.queue = toQ
	e.earlyAddr = !ti.IsLoad() &&
		(ti.Flags&FlagEarlyAddr != 0 || (toQ == qLVAQ && s.cfg.FastForward))
	e.readyAt = s.now + int64(s.cfg.MispredictPenalty)
	s.res.Recoveries++
	if s.trc != nil {
		s.emit(seq, obs.EvRecoveryReplay, int64(s.cfg.MispredictPenalty))
		queueArg := int64(obs.QueueLVAQ)
		if toQ == qLSQ {
			queueArg = obs.QueueLSQ
		}
		s.emit(seq, obs.EvQueueEnter, queueArg)
	}
	if rec != nil {
		if err := rec.Replay(seq, s.cfg.MispredictPenalty); err != nil {
			return err
		}
	}
	return nil
}

// removeSeq deletes seq from a program-ordered queue, reporting whether
// it was present.
func removeSeq(q []int64, seq int64) ([]int64, bool) {
	for i, v := range q {
		if v == seq {
			copy(q[i:], q[i+1:])
			return q[:len(q)-1], true
		}
		if v > seq {
			break
		}
	}
	return q, false
}

// insertSeq adds seq to a program-ordered queue, keeping the order.
func insertSeq(q []int64, seq int64) []int64 {
	i := sort.Search(len(q), func(i int) bool { return q[i] >= seq })
	q = append(q, 0)
	copy(q[i+1:], q[i:])
	q[i] = seq
	return q
}

// finish marks an entry done and wakes its consumers.
func (s *simulator) finish(seq int64) {
	e := s.slot(seq)
	e.state = stDone
	if s.trc != nil {
		s.emit(seq, obs.EvComplete, 0)
	}
	for _, c := range e.consumers {
		cseq, bit := c>>1, uint8(depA)
		if c&1 != 0 {
			bit = depB
		}
		if cseq < s.headSeq {
			continue
		}
		ce := s.slot(cseq)
		ce.mask &^= bit
		s.maybeWake(cseq, ce)
	}
	e.consumers = e.consumers[:0]
}

// maybeWake moves a waiting entry to the ready queue once its issue
// condition holds: all operands for ALU operations, the address base
// for memory operations (a store's data may arrive after its address
// generation, as in the paper's pipeline).
func (s *simulator) maybeWake(seq int64, e *robEntry) {
	if e.state != stWaiting {
		return
	}
	ti := s.inst(seq)
	ok := e.mask == 0
	if ti.IsMem() {
		ok = e.mask&depA == 0
	}
	if ok {
		e.state = stReady
		heap.Push(&s.ready, seq)
	}
}

// memScan walks pending memory operations oldest-first, resolving
// store-to-load forwarding and granting cache ports.
func (s *simulator) memScan() {
	if len(s.memPending) == 0 {
		return
	}
	if s.pendDirty {
		sort.Slice(s.memPending, func(i, j int) bool { return s.memPending[i] < s.memPending[j] })
		s.pendDirty = false
	}
	copy(s.budget, s.ports)

	keep := s.memPending[:0]
	for _, seq := range s.memPending {
		e := s.slot(seq)
		ti := s.inst(seq)
		if e.readyAt > s.now {
			keep = append(keep, seq)
			continue
		}
		if !ti.IsLoad() && e.mask&depB != 0 {
			keep = append(keep, seq) // store data not produced yet
			continue
		}
		pi := s.hier.Steer(ti.AccessInfo())

		if ti.IsLoad() {
			switch s.resolveLoad(seq, e, ti) {
			case loadBlocked:
				keep = append(keep, seq)
				continue
			case loadForwarded:
				if s.trc != nil {
					s.emit(seq, obs.EvForward, 0)
				}
				s.schedule(evComplete, seq, s.now+1)
				continue
			}
		}
		pool := int64(obs.PoolL1)
		if pi != 0 {
			pool = obs.PoolLVC
		}
		if s.budget[pi] == 0 {
			if s.trc != nil {
				s.emit(seq, obs.EvPortStall, pool)
			}
			keep = append(keep, seq)
			continue
		}
		grant := s.nGrant
		s.nGrant++
		if s.faults != nil && s.faults.PortDenied(grant, pi != 0) {
			// Injected port fault: the grant is withdrawn this cycle and
			// the access retries later under a fresh grant ordinal.
			if s.trc != nil {
				s.emit(seq, obs.EvPortStall, pool)
			}
			keep = append(keep, seq)
			continue
		}
		s.budget[pi]--
		lat, level := s.accessLatency(ti.Addr, !ti.IsLoad(), pi)
		if s.trc != nil {
			s.emit(seq, obs.EvCacheAccess, obs.CacheArg(pi != 0, !ti.IsLoad(), level))
		}
		if ti.IsLoad() {
			if s.faults != nil {
				lat += s.faults.ExtraLatency(grant)
			}
			s.schedule(evComplete, seq, s.now+int64(lat))
		} else {
			// Stores complete into the write buffer once they own a
			// port; the cache content is already updated above.
			s.finish(seq)
		}
	}
	s.memPending = keep
}

const (
	loadProceed = iota
	loadBlocked
	loadForwarded
)

// resolveLoad applies the disambiguation rules of §4.3: a load waits
// until every older store in its queue has a known address, forwards
// from the youngest matching older store whose data is ready, and
// blocks on a matching store whose data is not. With fast forwarding,
// LVAQ store addresses (frame+offset) count as known from dispatch.
func (s *simulator) resolveLoad(seq int64, e *robEntry, ti *TraceInst) int {
	q := s.lsq
	if e.queue == qLVAQ {
		q = s.lvaq
	}
	word := ti.Addr >> 2
	var match int64 = -1
	for _, os := range q {
		if os >= seq {
			break
		}
		oe := s.slot(os)
		oi := s.inst(os)
		if oi.IsLoad() {
			continue
		}
		if !oe.addrDone && !oe.earlyAddr {
			return loadBlocked
		}
		if oi.Addr>>2 == word {
			match = os
		}
	}
	if match >= 0 {
		me := s.slot(match)
		if me.mask&depB != 0 {
			return loadBlocked // store data not produced yet
		}
		s.res.Forwards++
		if e.queue == qLVAQ && s.cfg.FastForward {
			s.res.FastForwards++
		}
		return loadForwarded
	}
	return loadProceed
}

// accessLatency charges the hierarchy: the steered partition first,
// then the shared L2, then memory. It also reports the level that
// satisfied the access (obs.LevelFirst / LevelL2 / LevelMem).
func (s *simulator) accessLatency(addr uint32, write bool, pi int) (lat, level int) {
	lat = s.plats[pi]
	switch s.hier.Access(pi, addr, write) {
	case cache.LevelFirst:
		return lat, obs.LevelFirst
	case cache.LevelL2:
		return lat + LatL2, obs.LevelL2
	}
	return lat + LatL2 + LatMem, obs.LevelMem
}

// issue moves ready entries to the function units, oldest first,
// bounded by the issue width and per-class FU counts. Memory
// instructions spend their issue slot on address generation.
func (s *simulator) issue() int {
	budget := s.cfg.IssueWidth
	intALU, fpALU := s.cfg.IntALU, s.cfg.FPALU
	intMD, fpMD := s.cfg.IntMulDiv, s.cfg.FPMulDiv

	var deferred []int64
	issued := 0
	for budget > 0 && len(s.ready) > 0 {
		seq := heap.Pop(&s.ready).(int64)
		if seq < s.headSeq {
			continue
		}
		e := s.slot(seq)
		if e.state != stReady {
			continue
		}
		ti := s.inst(seq)
		ok := true
		var lat int
		switch ti.Class {
		case isa.ClassIntMul:
			ok, lat = take(&intMD), LatIntMul
		case isa.ClassIntDiv:
			ok, lat = take(&intMD), LatIntDiv
		case isa.ClassFPALU:
			ok, lat = take(&fpALU), LatFPALU
		case isa.ClassFPMul:
			ok, lat = take(&fpMD), LatFPMul
		case isa.ClassFPDiv:
			ok, lat = take(&fpMD), LatFPDiv
		default:
			// Integer ALU, branches, jumps, syscalls and memory AGU
			// share the integer ALU pool.
			ok, lat = take(&intALU), LatIntALU
		}
		if !ok {
			deferred = append(deferred, seq)
			continue
		}
		budget--
		issued++
		e.state = stIssued
		if s.trc != nil {
			s.emit(seq, obs.EvIssue, 0)
		}
		if ti.IsMem() {
			s.schedule(evAddrDone, seq, s.now+1)
			continue
		}
		s.schedule(evComplete, seq, s.now+int64(lat))
	}
	for _, seq := range deferred {
		s.slot(seq).state = stReady
		heap.Push(&s.ready, seq)
	}
	return issued
}

func take(n *int) bool {
	if *n > 0 {
		*n--
		return true
	}
	return false
}

func (s *simulator) schedule(kind uint8, seq, cycle int64) {
	heap.Push(&s.events, event{cycle: cycle, seq: seq, kind: kind})
}

// dispatch brings new trace instructions into the ROB (and LSQ/LVAQ),
// in order, bounded by the decode width and structural space.
func (s *simulator) dispatch() int {
	n := 0
	for n < s.cfg.IssueWidth && s.nextDisp < len(s.tr.Insts) {
		if s.tailSeq-s.headSeq >= int64(s.cfg.ROBSize) {
			s.res.StallROB++
			break
		}
		ti := &s.tr.Insts[s.nextDisp]
		queue := uint8(qNone)
		if ti.IsMem() {
			queue = qLSQ
			if s.cfg.Decoupled() && ti.PredStack() {
				queue = qLVAQ
			}
			if queue == qLSQ && len(s.lsq) >= s.cfg.LSQSize {
				s.res.StallQueue++
				break
			}
			if queue == qLVAQ && len(s.lvaq) >= s.cfg.LVAQSize {
				s.res.StallQueue++
				break
			}
		}

		seq := s.tailSeq
		s.tailSeq++
		e := s.slot(seq)
		*e = robEntry{ti: s.nextDisp, queue: queue, consumers: e.consumers[:0]}
		s.nextDisp++
		n++
		if s.trc != nil {
			s.emit(seq, obs.EvDispatch, obs.DispatchArg(ti.IsMem(), ti.IsLoad()))
			switch queue {
			case qLSQ:
				s.emit(seq, obs.EvQueueEnter, obs.QueueLSQ)
			case qLVAQ:
				s.emit(seq, obs.EvQueueEnter, obs.QueueLVAQ)
			}
		}

		for bit, src := range []int8{ti.Src1, ti.Src2} {
			if src == noReg {
				continue
			}
			w := s.lastWriter[src]
			if w >= 0 && s.writerOutstanding(w) {
				e.mask |= depA << bit
				we := s.slot(w)
				we.consumers = append(we.consumers, seq<<1|int64(bit))
			}
		}
		if ti.Dest != noReg {
			if ti.Flags&FlagVPHit != 0 {
				// The stride value predictor supplies the result at
				// dispatch; consumers need not wait. The producer still
				// executes to verify.
				s.lastWriter[ti.Dest] = -1
				s.res.VPUsed++
			} else {
				s.lastWriter[ti.Dest] = seq
			}
		}
		switch queue {
		case qLSQ:
			s.lsq = append(s.lsq, seq)
		case qLVAQ:
			s.lvaq = append(s.lvaq, seq)
			if s.cfg.FastForward && !ti.IsLoad() {
				e.earlyAddr = true
			}
		}
		if queue != qNone && !ti.IsLoad() && ti.Flags&FlagEarlyAddr != 0 {
			e.earlyAddr = true
		}
		s.maybeWake(seq, e)
	}
	return n
}
