// Package cpu implements the paper's detailed timing simulator: a
// trace-driven, cycle-level model of the Table 4 machine — a 16-wide
// out-of-order superscalar with a 256-entry ROB, an LSQ (and, when
// data-decoupled, an LVAQ), multi-ported L1/LVC caches backed by an L2
// and memory, per-class function units with MIPS R10000 latencies, a
// stride value predictor, and ARPT-driven steering with misprediction
// recovery.
//
// The paper's own methodology uses a perfect instruction cache and
// perfect branch prediction "to assert the maximum pressure on the data
// memory bandwidth"; under perfect fetch the dynamic instruction stream
// equals the committed path, which is exactly what a trace-driven model
// replays. Register data dependences, structural hazards, memory-port
// contention, store-to-load forwarding and ARPT mispredictions are all
// modeled cycle by cycle.
package cpu

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/vm"
)

// Register-id space for dependence tracking: integer registers are
// 0..31, floating-point registers 32..63.
const (
	numDepRegs = 64
	noReg      = -1
)

// TraceInst is one dynamic instruction prepared for timing simulation.
type TraceInst struct {
	Addr  uint32 // effective address (memory instructions)
	Index int32  // static instruction index
	Class isa.Class
	Src1  int8 // dependence-register ids, noReg when absent
	Src2  int8
	Dest  int8
	Flags uint8
}

// TraceInst flags.
const (
	FlagMem       = 1 << iota // load or store
	FlagLoad                  // load (valid when FlagMem)
	FlagStack                 // actual region is stack
	FlagPredStack             // ARPT/dispatch predicted stack
	FlagVPHit                 // stride value predictor supplies the result
	FlagFPMem                 // memory value is floating point
	FlagEarlyAddr             // address manifest in the addressing mode
)

// IsMem reports whether the instruction touches memory.
func (t *TraceInst) IsMem() bool { return t.Flags&FlagMem != 0 }

// IsLoad reports whether the instruction is a load.
func (t *TraceInst) IsLoad() bool { return t.Flags&FlagLoad != 0 }

// Stack reports whether the access actually fell in the stack region.
func (t *TraceInst) Stack() bool { return t.Flags&FlagStack != 0 }

// PredStack reports the dispatch-time steering prediction.
func (t *TraceInst) PredStack() bool { return t.Flags&FlagPredStack != 0 }

// Mispredicted reports an ARPT steering misprediction.
func (t *TraceInst) Mispredicted() bool {
	return t.IsMem() && t.Stack() != t.PredStack()
}

// AccessInfo projects the instruction onto the cache-steering view:
// the value a cache.Steer predicate sees when the simulator grants
// this access a port.
func (t *TraceInst) AccessInfo() core.AccessInfo {
	return core.AccessInfo{
		Addr:      t.Addr,
		Index:     t.Index,
		IsLoad:    t.IsLoad(),
		IsFP:      t.Flags&FlagFPMem != 0,
		Stack:     t.Stack(),
		PredStack: t.PredStack(),
		EarlyAddr: t.Flags&FlagEarlyAddr != 0,
	}
}

// Trace is a program's dynamic instruction stream with steering
// predictions and value-prediction outcomes precomputed. Predictor
// state evolves in fetch order, which the trace preserves, so one trace
// serves every machine configuration.
//
// A Trace is immutable after BuildTrace returns: Simulate only reads
// it, so a single trace may back any number of concurrent simulations
// (the parallel experiment harness relies on this).
type Trace struct {
	Name  string
	Insts []TraceInst

	// PredictorStats is the classification accounting of the steering
	// classifier used to build the trace.
	PredictorStats core.ClassifyStats
}

// TraceOptions configures trace generation.
type TraceOptions struct {
	// MaxInsts bounds the functional run (0 = VM default).
	MaxInsts uint64
	// Classifier steers memory instructions. Nil uses the paper's
	// pipeline default (static rules + 32K-entry hybrid ARPT, no
	// compiler hints).
	Classifier *core.Classifier
	// DisableValuePred turns the stride value predictor off (the base
	// machine model has it on).
	DisableValuePred bool
	// PerfectSteering steers every reference to its true region,
	// bypassing the classifier — the contamination-free upper bound for
	// steering-policy ablations.
	PerfectSteering bool

	// Ctx cancels trace generation cooperatively: it is checked every
	// few thousand instructions and surfaces (wrapped) through the
	// returned error, so a per-workload watchdog deadline aborts the
	// functional pre-pass cleanly. Nil means no cancellation.
	Ctx context.Context

	// SteerFault perturbs the steering prediction of the n-th dynamic
	// memory reference (0-based) after the classifier has produced
	// pred. It is the trace-level fault-injection hook: forced
	// mispredictions and predictor-state corruption enter here. The
	// hook must be deterministic; nil injects nothing.
	SteerFault func(ref uint64, pred core.Prediction) core.Prediction

	// VMFault is installed as the functional machine's FaultHook (see
	// vm.Machine.FaultHook): a non-nil return from it aborts trace
	// generation with a vm.FaultError. Nil injects nothing.
	VMFault func(seq uint64, pc uint32) error

	// Observer, when non-nil, receives every retired vm.Event after it
	// has been folded into the trace — the differential-validation tap
	// used to digest the architectural instruction stream of a faulted
	// trace build without a second functional run.
	Observer func(ev vm.Event)

	// Final, when non-nil, is called once with the functional machine
	// after a successful build, so callers can digest final
	// architectural state (registers, memory, exit code).
	Final func(m *vm.Machine)

	// Out receives program output from the functional run (nil
	// discards it).
	Out io.Writer
}

// valuePredictor is the Table 4 stride-based register value predictor.
type valuePredictor struct {
	last   [16384]uint32
	stride [16384]int32
	conf   [16384]uint8
	seen   [16384]bool
}

func (v *valuePredictor) idx(pc uint32) uint32 { return (pc >> 2) & 16383 }

// observe processes one produced register value and reports whether the
// predictor would have supplied it (confident and correct).
func (v *valuePredictor) observe(pc uint32, val uint32) bool {
	i := v.idx(pc)
	hit := false
	if v.seen[i] {
		pred := v.last[i] + uint32(v.stride[i])
		if v.conf[i] >= 2 && pred == val {
			hit = true
		}
		newStride := int32(val - v.last[i])
		if newStride == v.stride[i] {
			if v.conf[i] < 3 {
				v.conf[i]++
			}
		} else {
			v.conf[i] = 0
			v.stride[i] = newStride
		}
	}
	v.last[i] = val
	v.seen[i] = true
	return hit
}

// depReg maps an architectural register to a dependence id.
func depReg(r isa.Register, fp bool) int8 {
	if fp {
		return int8(r) + 32
	}
	if r == isa.Zero {
		return noReg // $zero never carries a dependence
	}
	return int8(r)
}

// BuildTrace runs program p functionally and produces its timing trace.
func BuildTrace(p *prog.Program, opts TraceOptions) (*Trace, error) {
	m, err := vm.New(vm.Config{Program: p, Out: opts.Out})
	if err != nil {
		return nil, err
	}
	limit := opts.MaxInsts
	if limit == 0 {
		limit = vm.DefaultMaxInsts
	}
	m.MaxInsts = limit + 1 // the loop below truncates before the VM faults
	if opts.Ctx != nil || opts.VMFault != nil {
		ctx, vmFault := opts.Ctx, opts.VMFault
		m.FaultHook = func(seq uint64, pc uint32) error {
			if ctx != nil && seq&0x3FF == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if vmFault != nil {
				return vmFault(seq, pc)
			}
			return nil
		}
	}
	cls := opts.Classifier
	if cls == nil {
		table, err := core.NewARPT(core.DefaultPipelineConfig())
		if err != nil {
			return nil, err
		}
		cls, err = core.NewClassifier(
			core.ClassifierConfig{Scheme: Scheme1BitHybridPipeline},
			core.WithTable(table))
		if err != nil {
			return nil, err
		}
	}

	tr := &Trace{Name: p.Name}
	var vp valuePredictor
	var ctx core.Context
	var memRef uint64 // dynamic memory-reference ordinal for SteerFault

	observe := func(ev vm.Event) {
		in := ev.Inst
		ti := TraceInst{
			Index: int32(ev.Index),
			Class: in.Classify(),
			Src1:  noReg, Src2: noReg, Dest: noReg,
		}

		srcs := make([]int8, 0, 4)
		for _, r := range in.Sources() {
			if d := depReg(r, false); d != noReg {
				srcs = append(srcs, d)
			}
		}
		for _, r := range in.FPSources() {
			srcs = append(srcs, depReg(r, true))
		}
		if len(srcs) > 0 {
			ti.Src1 = srcs[0]
		}
		if len(srcs) > 1 {
			ti.Src2 = srcs[1]
		}
		if d, ok := in.Dest(); ok {
			ti.Dest = depReg(d, false)
		} else if d, ok := in.FPDest(); ok {
			ti.Dest = depReg(d, true)
		}

		if in.IsMem() {
			ti.Flags |= FlagMem
			if in.IsLoad() {
				ti.Flags |= FlagLoad
			}
			if in.IsFPMem() {
				ti.Flags |= FlagFPMem
			}
			ti.Addr = ev.MemAddr
			if _, covered := core.StaticPredict(in); covered {
				// $sp/$fp/$gp/constant addressing: the effective address
				// is computable at dispatch in any machine (the base
				// register is architecturally stable), so disambiguation
				// need not wait for the AGU.
				ti.Flags |= FlagEarlyAddr
			}
			actual := core.ActualOf(ev.Region)
			if actual == core.PredictStack {
				ti.Flags |= FlagStack
			}
			var pred core.Prediction
			if opts.PerfectSteering {
				pred = actual
				cls.Stats.Total++
				cls.Stats.Correct++
			} else {
				ctx.CID = m.Reg(isa.RA)
				pred = cls.Classify(ev.Index, ev.PC, in, ctx, actual)
			}
			if opts.SteerFault != nil {
				pred = opts.SteerFault(memRef, pred)
			}
			memRef++
			if pred == core.PredictStack {
				ti.Flags |= FlagPredStack
			}
		}
		if in.IsBranch() {
			ctx.UpdateGBH(ev.Taken)
		}

		if !opts.DisableValuePred && ti.Dest != noReg && ti.Dest < 32 {
			// The stride predictor covers the integer register stream
			// (the paper: "for the register values").
			if vp.observe(ev.PC, m.Reg(isa.Register(ti.Dest))) {
				ti.Flags |= FlagVPHit
			}
		}

		tr.Insts = append(tr.Insts, ti)
	}
	for !m.Halted() && m.Seq() < limit {
		ev, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("cpu: trace generation: %w", err)
		}
		observe(ev)
		if opts.Observer != nil {
			opts.Observer(ev)
		}
	}
	tr.PredictorStats = cls.Stats
	if opts.Final != nil {
		opts.Final(m)
	}
	return tr, nil
}

// Scheme1BitHybridPipeline names the steering classifier configuration
// used in traces (for reporting only).
const Scheme1BitHybridPipeline = core.Scheme1BitHybrid
