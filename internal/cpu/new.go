package cpu

import (
	"context"
	"strconv"

	"repro/internal/obs"
)

// Sim is a configured timing simulation: one machine Config plus the
// instrumentation attached at construction. Build one with New, then
// Run it over any number of traces — all mutable pipeline state lives
// per Run call, so a Sim is reusable. Concurrent Run calls on one Sim
// are safe only when the attached tracer and registry are (obs.Ring is
// not; obs.Registry is).
type Sim struct {
	cfg      Config
	ctx      context.Context
	faults   MemFaulter
	recovery RecoveryObserver
	tracer   obs.Tracer
	reg      *obs.Registry
	labels   obs.Labels
}

// Option attaches instrumentation to a Sim.
type Option func(*Sim)

// WithContext cancels simulations cooperatively (checked every few
// thousand cycles).
func WithContext(ctx context.Context) Option {
	return func(s *Sim) { s.ctx = ctx }
}

// WithFaults perturbs the memory pipeline (see MemFaulter).
func WithFaults(f MemFaulter) Option {
	return func(s *Sim) { s.faults = f }
}

// WithRecovery attaches a misprediction-recovery protocol witness (see
// RecoveryObserver).
func WithRecovery(o RecoveryObserver) Option {
	return func(s *Sim) { s.recovery = o }
}

// WithTracer attaches a cycle-event tracer; every pipeline event of the
// run is emitted to it. obs.Nop is recognized and stripped at
// construction, so a Nop-traced simulation runs the exact
// uninstrumented code path (the <2% no-op overhead guarantee).
func WithTracer(t obs.Tracer) Option {
	return func(s *Sim) {
		if _, nop := t.(obs.Nop); nop {
			t = nil
		}
		s.tracer = t
	}
}

// WithMetrics attaches a metrics registry: Run publishes the Result
// counters (plus per-cycle LSQ/LVAQ occupancy histograms) there under
// the given labels, extended with the workload and config names.
func WithMetrics(r *obs.Registry, labels obs.Labels) Option {
	return func(s *Sim) {
		s.reg = r
		s.labels = labels
	}
}

// New builds a simulation from cfg; the configuration must validate.
func New(cfg Config, opts ...Option) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Config reports the machine configuration.
func (s *Sim) Config() Config { return s.cfg }

// Run simulates trace tr on this machine. The trace is only read, so
// one trace may back any number of concurrent Run calls.
func (s *Sim) Run(tr *Trace) (*Result, error) {
	res, err := s.run(tr)
	if err != nil {
		return nil, err
	}
	if s.reg != nil {
		res.Publish(s.reg, s.labels)
	}
	return res, nil
}

// Publish copies the result's counters into r under the given labels,
// extended with the workload and config names; call once per result.
func (r *Result) Publish(reg *obs.Registry, labels obs.Labels) {
	if reg == nil {
		return
	}
	l := labels.With(obs.Labels{"workload": r.Name, "config": r.Config.Name})
	reg.Counter("sim_cycles_total", "simulated cycles", l).Add(r.Cycles)
	reg.Counter("sim_insts_total", "committed instructions", l).Add(r.Insts)
	reg.Gauge("sim_ipc", "committed instructions per cycle", l).Set(r.IPC())
	reg.Counter("sim_arpt_mispredicts_total", "ARPT steering mispredictions", l).Add(r.ARPTMispredicts)
	reg.Counter("sim_recoveries_total", "completed detect-cancel-replay recoveries", l).Add(r.Recoveries)
	reg.Counter("sim_forwards_total", "store-to-load forwards", l).Add(r.Forwards)
	reg.Counter("sim_fast_forwards_total", "LVAQ offset-based fast forwards", l).Add(r.FastForwards)
	reg.Counter("sim_vp_used_total", "results supplied by the value predictor", l).Add(r.VPUsed)
	reg.Counter("sim_stall_rob_cycles_total", "dispatch cycles lost to a full ROB", l).Add(r.StallROB)
	reg.Counter("sim_stall_queue_cycles_total", "dispatch cycles lost to a full LSQ/LVAQ", l).Add(r.StallQueue)
	// One publish path for every cache: each first-level partition under
	// labels{cache, partition}, the shared L2 under partition "shared".
	parts, _ := r.Config.partitions()
	for i, st := range r.PartStats {
		name := "L1D"
		if i < len(parts) {
			name = parts[i].Name
		}
		st.Publish(reg, l.With(obs.Labels{"cache": name, "partition": strconv.Itoa(i)}))
	}
	r.L2Stats.Publish(reg, l.With(obs.Labels{"cache": "L2", "partition": "shared"}))
}
