package cpu

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
)

// Trace serialization: a trace is by far the largest artifact the
// durable store holds (one 13-byte record per dynamic instruction),
// so it gets a packed little-endian codec instead of reflective gob —
// encoding is a flat copy and the byte image is deterministic for a
// given trace.
//
// Layout: magic "ARLT", u8 version, u32 name length + name bytes,
// 8 × u64 classifier counters, u64 instruction count, then count
// packed records of traceInstBytes each.
const (
	traceMagic        = "ARLT"
	traceCodecVersion = 1
	traceInstBytes    = 4 + 4 + 1 + 1 + 1 + 1 + 1 // Addr, Index, Class, Src1, Src2, Dest, Flags
)

// MarshalBinary encodes the trace in the packed record format. It
// implements encoding.BinaryMarshaler, which the artifact store
// prefers over gob.
func (t *Trace) MarshalBinary() ([]byte, error) {
	if len(t.Name) > 1<<20 {
		return nil, fmt.Errorf("cpu: trace name %d bytes long", len(t.Name))
	}
	size := len(traceMagic) + 1 + 4 + len(t.Name) + 8*8 + 8 + len(t.Insts)*traceInstBytes
	buf := make([]byte, 0, size)
	buf = append(buf, traceMagic...)
	buf = append(buf, traceCodecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Name)))
	buf = append(buf, t.Name...)
	s := &t.PredictorStats
	for _, v := range []uint64{s.Total, s.Correct, s.StaticCovered, s.HintCovered,
		s.HintCorrect, s.TableLookups, s.TableCorrect, uint64(len(t.Insts))} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	for i := range t.Insts {
		in := &t.Insts[i]
		buf = binary.LittleEndian.AppendUint32(buf, in.Addr)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.Index))
		buf = append(buf, byte(in.Class), byte(in.Src1), byte(in.Src2), byte(in.Dest), in.Flags)
	}
	return buf, nil
}

// UnmarshalBinary decodes a trace encoded by MarshalBinary. It
// implements encoding.BinaryUnmarshaler; any framing violation is an
// error (the store quarantines the record and recomputes).
func (t *Trace) UnmarshalBinary(data []byte) error {
	bad := func(what string) error { return fmt.Errorf("cpu: trace codec: %s", what) }
	if len(data) < len(traceMagic)+1+4 || string(data[:len(traceMagic)]) != traceMagic {
		return bad("bad magic")
	}
	data = data[len(traceMagic):]
	if data[0] != traceCodecVersion {
		return bad(fmt.Sprintf("version %d, want %d", data[0], traceCodecVersion))
	}
	data = data[1:]
	nameLen := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if nameLen < 0 || nameLen > len(data) {
		return bad("name length out of range")
	}
	name := string(data[:nameLen])
	data = data[nameLen:]
	if len(data) < 8*8 {
		return bad("truncated counters")
	}
	var counters [8]uint64
	for i := range counters {
		counters[i] = binary.LittleEndian.Uint64(data)
		data = data[8:]
	}
	count := counters[7]
	if uint64(len(data)) != count*traceInstBytes {
		return bad(fmt.Sprintf("%d payload bytes for %d records", len(data), count))
	}
	insts := make([]TraceInst, count)
	for i := range insts {
		in := &insts[i]
		in.Addr = binary.LittleEndian.Uint32(data)
		in.Index = int32(binary.LittleEndian.Uint32(data[4:]))
		in.Class = isa.Class(data[8])
		in.Src1 = int8(data[9])
		in.Src2 = int8(data[10])
		in.Dest = int8(data[11])
		in.Flags = data[12]
		data = data[traceInstBytes:]
	}
	t.Name = name
	t.Insts = insts
	t.PredictorStats = core.ClassifyStats{
		Total: counters[0], Correct: counters[1],
		StaticCovered: counters[2], HintCovered: counters[3], HintCorrect: counters[4],
		TableLookups: counters[5], TableCorrect: counters[6],
	}
	return nil
}
