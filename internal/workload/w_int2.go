package workload

import "fmt"

// 130.li — a lisp interpreter: cons cells from an arena on the heap,
// deeply recursive list construction, reversal, mapping and reduction.
// Heap and stack dominate; the data region holds only the interpreter's
// small globals — the namesake's signature.
var li = &Workload{
	Name: "130.li", Short: "li", DefaultScale: 1,
	About: "lisp-style cons/eval kernel (heap cells + deep recursion)",
	Source: func(scale int) string {
		return lcg + fmt.Sprintf(`
int *car_;
int *cdr_;
int free_;
int conses_;
int gcs_;

int cons(int a, int d) {
	car_[free_] = a;
	cdr_[free_] = d;
	free_++;
	conses_++;
	return free_ - 1;
}

int buildlist(int n) {
	if (n == 0) return -1;
	return cons(rnd(50), buildlist(n - 1));
}

int sumlist(int l) {
	if (l < 0) return 0;
	return car_[l] + sumlist(cdr_[l]);
}

int revappend(int l, int acc) {
	if (l < 0) return acc;
	return revappend(cdr_[l], cons(car_[l], acc));
}

int maplist(int l) {
	if (l < 0) return -1;
	return cons(car_[l] * 2 + 1, maplist(cdr_[l]));
}

int zipadd(int a, int b) {
	if (a < 0 || b < 0) return -1;
	return cons(car_[a] + car_[b], zipadd(cdr_[a], cdr_[b]));
}

int main() {
	car_ = malloc(400000 * sizeof(int));
	cdr_ = malloc(400000 * sizeof(int));
	int check = 0;
	int it;
	for (it = 0; it < %d * 50; it++) {
		free_ = 0;
		gcs_++;
		int l = buildlist(90);
		int r = revappend(l, -1);
		int m = maplist(r);
		int z = zipadd(l, m);
		check ^= sumlist(z) + sumlist(r);
	}
	return (check + conses_ + gcs_) & 255;
}
`, scale)
	},
}

// 132.ijpeg — image compression: the image lives on the heap, each 8x8
// block is staged through a local (stack) array for its transform, and
// the quantization tables are static data. All three streams are
// bursty, as the paper observes for ijpeg.
var ijpeg = &Workload{
	Name: "132.ijpeg", Short: "ijpeg", DefaultScale: 1,
	About: "blockwise image transform: heap image, stack block buffers, data tables",
	Source: func(scale int) string {
		const w, h = 128, 64
		return lcg + fmt.Sprintf(`
int qtab[64];
int zigzag[64];
int *image;
int blocks_;

void transform(int bx, int by) {
	int blk[64];
	int i;
	int j;
	for (i = 0; i < 8; i++)
		for (j = 0; j < 8; j++)
			blk[i * 8 + j] = image[(by * 8 + i) * %d + bx * 8 + j];
	for (i = 0; i < 8; i++) {
		for (j = 0; j < 4; j++) {
			int a = blk[i * 8 + j];
			int b = blk[i * 8 + 7 - j];
			blk[i * 8 + j] = a + b;
			blk[i * 8 + 7 - j] = (a - b) * (j + 2) / 2;
		}
	}
	for (j = 0; j < 8; j++) {
		for (i = 0; i < 4; i++) {
			int a = blk[i * 8 + j];
			int b = blk[(7 - i) * 8 + j];
			blk[i * 8 + j] = a + b;
			blk[(7 - i) * 8 + j] = (a - b) * (i + 2) / 2;
		}
	}
	for (i = 0; i < 64; i++) {
		int z = zigzag[i];
		image[(by * 8 + z / 8) * %d + bx * 8 + z %% 8] = blk[z] / qtab[z];
	}
	blocks_++;
}

int main() {
	image = malloc(%d * sizeof(int));
	int i;
	for (i = 0; i < %d; i++) image[i] = rnd(256) - 128;
	for (i = 0; i < 64; i++) {
		qtab[i] = 1 + (i / 8) + (i %% 8);
		zigzag[i] = (i * 37) %% 64;
	}
	int pass;
	int check = 0;
	for (pass = 0; pass < %d * 2; pass++) {
		int bx;
		int by;
		for (by = 0; by < %d; by++)
			for (bx = 0; bx < %d; bx++)
				transform(bx, by);
		check ^= image[(pass * 1021) %% %d];
	}
	return (check + blocks_) & 255;
}
`, w, w, w*h, w*h, scale, h/8, w/8, w*h)
	},
}

// 134.perl — script interpretation: a heap-resident hash of variables,
// string-ish byte handling, and a recursive evaluator. Heap and stack
// both heavy, modest data.
var perl = &Workload{
	Name: "134.perl", Short: "perl", DefaultScale: 1,
	About: "hash-table driven recursive evaluator (heap hash + call-heavy eval)",
	Source: func(scale int) string {
		return lcg + fmt.Sprintf(`
int *hkey;
int *hval;
int probes_;
int evals_;

int hash(int k) {
	int x = k * 40503 + 1;
	return ((x >> 4) ^ x) & 4095;
}

void hput(int k, int v) {
	int i = hash(k);
	while (hkey[i] != 0 && hkey[i] != k) {
		i = (i + 1) & 4095;
		probes_++;
	}
	hkey[i] = k;
	hval[i] = v;
}

int hget(int k) {
	int i = hash(k);
	while (hkey[i] != 0) {
		if (hkey[i] == k) return hval[i];
		i = (i + 1) & 4095;
		probes_++;
	}
	return 0;
}

int bufhash(int *s, int n) {
	int h = 5381;
	int i;
	for (i = 0; i < n; i++) h = h * 33 + s[i];
	return h;
}

int eval(int depth, int x) {
	evals_++;
	if (depth == 0) {
		// Interpolate a "string": stage it on the stack, hash it with
		// the same helper that also hashes heap-resident values.
		int word[4];
		word[0] = x & 255;
		word[1] = (x >> 8) & 255;
		word[2] = (x >> 16) & 255;
		word[3] = (x >> 24) & 255;
		return hget(1 + (x & 1023)) + hget(1 + ((x * 3) & 1023)) ^ (bufhash(word, 4) & 15);
	}
	int a = eval(depth - 1, x * 3 + 1);
	int b = eval(depth - 1, x * 5 + 2);
	hput(1 + ((a + b) & 1023), a ^ b);
	if ((a & 63) == 0) probes_ ^= bufhash(hval + (a & 2047), 8);
	return a + b;
}

int main() {
	hkey = malloc(4096 * sizeof(int));
	hval = malloc(4096 * sizeof(int));
	int i;
	for (i = 0; i < 4096; i++) { hkey[i] = 0; hval[i] = 0; }
	for (i = 1; i <= 1024; i++) hput(i, rnd(1000));
	int check = 0;
	int it;
	for (it = 0; it < %d * 62; it++) {
		check ^= eval(7, it);
	}
	return (check + probes_ + evals_) & 255;
}
`, scale)
	},
}

// 147.vortex — an object-oriented database: every field access goes
// through an accessor function and operations stack four or five calls
// deep, reproducing the namesake's extreme stack dominance (the paper
// measures 11.8 stack accesses per 32 instructions).
var vortex = &Workload{
	Name: "147.vortex", Short: "vortex", DefaultScale: 1,
	About: "object database with accessor-call discipline (stack-dominant)",
	Source: func(scale int) string {
		return lcg + fmt.Sprintf(`
int *fid;
int *fkey;
int *fval;
int *fnext;
int nrec_;
int buckets[4096];
int lookups_;

int getkey(int r) { return fkey[r]; }
int getval(int r) { return fval[r]; }
int getnext(int r) { return fnext[r]; }
void setval(int r, int v) { fval[r] = v; }

int keyhash(int k) { return (k ^ (k >> 5) ^ (k >> 11)) & 4095; }

int makerec(int key, int v) {
	int r = nrec_;
	nrec_++;
	fid[r] = r;
	fkey[r] = key;
	fval[r] = v;
	int b = keyhash(key);
	fnext[r] = buckets[b];
	buckets[b] = r;
	return r;
}

int findrec(int key) {
	lookups_++;
	int r = buckets[keyhash(key)];
	while (r >= 0) {
		if (getkey(r) == key) return r;
		r = getnext(r);
	}
	return -1;
}

int checksum(int r) {
	if (r < 0) return 0;
	return getkey(r) * 7 + getval(r);
}

void copyrec(int *dst, int *src) {
	dst[0] = src[0];
	dst[1] = src[1];
	dst[2] = src[2];
	dst[3] = src[3];
}

int touch(int key, int delta) {
	int r = findrec(key);
	if (r < 0) return 0;
	setval(r, getval(r) + delta);
	if ((delta & 7) == 0) {
		// Stage the record through a stack buffer and write it back:
		// copyrec's accesses mix heap and stack depending on call site.
		int rec[4];
		int tmp[4];
		rec[0] = fid[r]; rec[1] = fkey[r]; rec[2] = fval[r]; rec[3] = fnext[r];
		copyrec(tmp, rec);          // stack <- stack
		copyrec(fid + r * 0 + r, tmp);  // heap <- stack (fid row)
	}
	return checksum(r);
}

int *queries;

int main() {
	int cap = 200000;
	fid = malloc(cap * sizeof(int));
	fkey = malloc(cap * sizeof(int));
	fval = malloc(cap * sizeof(int));
	fnext = malloc(cap * sizeof(int));
	int i;
	for (i = 0; i < 4096; i++) buckets[i] = -1;
	for (i = 0; i < 4000; i++) makerec(rnd(30000), rnd(1000));
	// Precompute the query mix (the original reads it from its input
	// database); the query loop itself is then pure object traffic.
	int nq = 4096;
	queries = malloc(nq * sizeof(int));
	for (i = 0; i < nq; i++) queries[i] = rnd(30000);
	int check = 0;
	int it;
	for (it = 0; it < %d * 5000; it += 4) {
		check ^= touch(queries[it & 4095], it & 15);
		check ^= touch(queries[(it + 1) & 4095], it & 7);
		check ^= touch(queries[(it + 2) & 4095], it & 3);
		check ^= touch(queries[(it + 3) & 4095], it & 31);
	}
	return (check + lookups_ + nrec_) & 255;
}
`, scale)
	},
}
