package workload

import "fmt"

// 099.go — game playing. Like its namesake, it keeps the board and
// evaluation tables in static arrays (no heap at all) and burns time in
// a recursive game-tree search: data-region reads from the evaluator
// plus stack traffic from the recursion.
var goBench = &Workload{
	Name: "099.go", Short: "go", DefaultScale: 3,
	About: "recursive game-tree search over static board arrays (data+stack, no heap)",
	Source: func(scale int) string {
		return lcg + fmt.Sprintf(`
int board[361];
int weights[16];
int history[256];
int nodes_;

int evalpos(int pos) {
	int s = board[pos] * weights[pos & 15];
	int r = pos / 19;
	int c = pos %% 19;
	if (r > 0)  s += board[pos - 19];
	if (r < 18) s += board[pos + 19];
	if (c > 0)  s += board[pos - 1];
	if (c < 18) s += board[pos + 1];
	return s;
}

int scoreline(int *cells, int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) s += cells[i] * (i + 1);
	return s;
}

int evaluate(int player) {
	int e = 0;
	int i;
	int line[19];
	for (i = 0; i < 361; i += 5) e += evalpos(i);
	// Score one board row in place (data) and a locally staged copy of
	// the next row (stack) with the same helper.
	int row = (nodes_ %% 17) * 19;
	for (i = 0; i < 19; i++) line[i] = board[row + 19 + i];
	e += scoreline(board + row, 19) - scoreline(line, 19);
	return e * player;
}

int search(int depth, int player, int alpha, int beta) {
	nodes_++;
	if (depth == 0) return evaluate(player);
	int best = -1000000;
	int m;
	for (m = 0; m < 5; m++) {
		int pos = rnd(361);
		int old = board[pos];
		board[pos] = player;
		history[(nodes_ + m) & 255] = pos;
		int v = -search(depth - 1, -player, -beta, -alpha);
		board[pos] = old;
		if (v > best) best = v;
		if (best > alpha) alpha = best;
		if (alpha >= beta) break;
	}
	return best;
}

int main() {
	int i;
	for (i = 0; i < 361; i++) board[i] = (i %% 7) - 3;
	for (i = 0; i < 16; i++) weights[i] = i - 8;
	int total = 0;
	int g;
	for (g = 0; g < %d; g++) {
		total += search(4, 1, -1000000, 1000000);
		board[rnd(361)] = 1 - 2 * (g & 1);
	}
	return (total + nodes_) & 255;
}
`, scale)
	},
}

// 124.m88ksim — a CPU simulator simulating a CPU: the interpreted
// program lives on the heap, the simulated register file and memory in
// static data, and the dispatch loop makes moderate stack use. Like the
// original, it is the one program with comparable data and heap
// traffic.
var m88ksim = &Workload{
	Name: "124.m88ksim", Short: "m88ksim", DefaultScale: 1,
	About: "instruction-set interpreter: heap-resident program, data-resident machine state",
	Source: func(scale int) string {
		const progWords = 2048
		return lcg + fmt.Sprintf(`
int regs[32];
int dmem[4096];
int opcount[8];
int *imem;
int pc_;
int icount_;

void genprog(int n) {
	int i;
	for (i = 0; i < n; i++) {
		int op = rnd(8);
		int a = 1 + rnd(31);
		int b = rnd(32);
		int c = rnd(32);
		imem[i] = op * 16777216 + a * 65536 + b * 256 + c;
	}
}

int step() {
	int w = imem[pc_];
	int op = (w >> 24) & 255;
	int a = (w >> 16) & 255;
	int b = (w >> 8) & 255;
	int c = w & 255;
	opcount[op] += 1;
	if (op == 0) regs[a] = regs[b] + regs[c];
	else if (op == 1) regs[a] = regs[b] - regs[c];
	else if (op == 2) regs[a] = dmem[(regs[b] + c) & 4095];
	else if (op == 3) dmem[(regs[a] + c) & 4095] = regs[b];
	else if (op == 4) regs[a] = regs[b] * 3 + c;
	else if (op == 5) { if (regs[a] > 0) pc_ = (pc_ + c) %% %d; }
	else if (op == 6) regs[a] = regs[b] ^ regs[c];
	else regs[a] = c - 128;
	pc_ = (pc_ + 1) %% %d;
	icount_++;
	return regs[a];
}

int checkregs(int *r, int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) s ^= r[i];
	return s;
}

int main() {
	imem = malloc(%d * sizeof(int));
	genprog(%d);
	int i;
	for (i = 0; i < 4096; i++) dmem[i] = i * 3;
	int check = 0;
	int snap[32];
	int n = %d * 16000;
	for (i = 0; i < n; i++) {
		check ^= step();
		if ((i & 1023) == 0) {
			// Periodic state audit: the same helper walks the live
			// register file (data region) and a stack snapshot of it.
			int r;
			for (r = 0; r < 32; r++) snap[r] = regs[r];
			check ^= checkregs(regs, 32) ^ checkregs(snap, 32);
		}
	}
	int r;
	for (r = 0; r < 32; r++) check += regs[r];
	return check & 255;
}
`, progWords, progWords, progWords, progWords, scale)
	},
}

// 126.gcc — compiler passes: builds expression trees of heap-allocated
// nodes and runs recursive analysis/transform passes over them. Short
// recursive functions everywhere give it the original's stack-heavy,
// many-static-instructions profile with a heap component.
var gcc = &Workload{
	Name: "126.gcc", Short: "gcc", DefaultScale: 1,
	About: "expression-tree construction, folding and measurement passes (stack-heavy + heap)",
	Source: func(scale int) string {
		return lcg + fmt.Sprintf(`
int *nkind;
int *nval;
int *nleft;
int *nright;
int nnodes_;
int folds_;
int passes_[8];

int newnode(int k, int v, int l, int r) {
	nkind[nnodes_] = k;
	nval[nnodes_] = v;
	nleft[nnodes_] = l;
	nright[nnodes_] = r;
	nnodes_++;
	return nnodes_ - 1;
}

int build(int depth) {
	if (depth == 0) return newnode(0, rnd(100), -1, -1);
	int l = build(depth - 1);
	int r = build(depth - 1);
	return newnode(1 + rnd(4), 0, l, r);
}

int fold(int n) {
	int k = nkind[n];
	if (k == 0) return nval[n];
	int a = fold(nleft[n]);
	int b = fold(nright[n]);
	int v;
	if (k == 1) v = a + b;
	else if (k == 2) v = a - b;
	else if (k == 3) v = a * b;
	else v = a ^ b;
	nval[n] = v;
	nkind[n] = 0;
	folds_++;
	return v;
}

int height(int n) {
	if (n < 0) return 0;
	if (nkind[n] == 0 && nleft[n] < 0) return 1;
	int hl = height(nleft[n]);
	int hr = height(nright[n]);
	if (hl > hr) return hl + 1;
	return hr + 1;
}

int weigh(int n) {
	if (n < 0) return 0;
	return 1 + weigh(nleft[n]) + weigh(nright[n]);
}

// Shared helpers take a pointer that is a stack buffer at one call site
// and a heap array at another: their loads/stores access multiple
// regions at run time (the paper's *parm1 case).
int sumbuf(int *v, int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) s += v[i];
	return s;
}

void fillbuf(int *v, int n, int seed) {
	int i;
	for (i = 0; i < n; i++) v[i] = seed ^ i;
}

int main() {
	int cap = 70000;
	nkind = malloc(cap * sizeof(int));
	nval = malloc(cap * sizeof(int));
	nleft = malloc(cap * sizeof(int));
	nright = malloc(cap * sizeof(int));
	int check = 0;
	int it;
	int scratch[32];
	for (it = 0; it < %d * 3; it++) {
		nnodes_ = 0;
		int t = build(10);
		check ^= fold(t);
		check += height(t) + weigh(t);
		fillbuf(scratch, 32, it);          // stack
		fillbuf(nval + (it & 1023), 32, it); // heap
		check ^= sumbuf(scratch, 32) + sumbuf(nkind + (it & 1023), 32);
		passes_[it & 7] += 1;
	}
	return (check + folds_) & 255;
}
`, scale)
	},
}

// 129.compress — LZW compression: the hash dictionary and the input
// buffer are static arrays, the main loop is call-free. Its profile is
// the paper's most data-dominant integer program with almost no heap or
// stack traffic.
var compress = &Workload{
	Name: "129.compress", Short: "compress", DefaultScale: 1,
	About: "LZW over static tables and buffers (data-dominant, ~no heap, little stack)",
	Source: func(scale int) string {
		return lcg + fmt.Sprintf(`
int input[65536];
int htab[16384];
int codetab[16384];
int outbuf[65536];
int n_;
int outn_;
int freecode_;

int main() {
	n_ = %d * 12000;
	if (n_ > 65536) n_ = 65536;
	int i;
	int prev = 0;
	for (i = 0; i < n_; i++) {
		// Inline LCG: input generation is part of the measured loop and
		// must stay call-free like the original's file read.
		seed_ = seed_ * 1103515245 + 12345;
		if (((seed_ >> 16) & 3) == 0) prev = (seed_ >> 18) & 255;
		input[i] = prev;
	}
	for (i = 0; i < 16384; i++) { htab[i] = -1; codetab[i] = 0; }

	freecode_ = 256;
	int ent = input[0];
	int pass;
	int check = 0;
	for (pass = 0; pass < %d * 3; pass++) {
		int *pin = &input[1];
		for (i = 1; i < n_; i++) {
			int ch = *pin;
			pin = pin + 1;
			int fcode = ent * 256 + ch;
			int h = (fcode ^ (fcode >> 7)) & 16383;
			int hit = 0;
			while (htab[h] != -1) {
				if (htab[h] == fcode) { hit = 1; break; }
				h = (h + 61) & 16383;
			}
			if (hit) {
				ent = codetab[h];
			} else {
				outbuf[outn_ & 65535] = ent;
				outn_++;
				// Cap occupancy well below the table size so probe
				// chains always terminate.
				if (freecode_ < 14000) {
					htab[h] = fcode;
					codetab[h] = freecode_;
					freecode_++;
				}
				ent = ch;
			}
		}
		check += outn_ + freecode_;
	}
	return check & 255;
}
`, scale, scale)
	},
}
