// Package workload provides the twelve benchmark programs of the
// paper's evaluation (Table 1): eight integer and four floating-point
// SPEC95 programs. SPEC sources cannot be shipped, so each workload is
// a MiniC kernel engineered to reproduce its namesake's *memory-region
// signature* — where its data structures live (static data, heap,
// stack), how call-heavy it is, and roughly how its accesses interleave
// (Table 2) — which is what every experiment in the paper measures.
// DESIGN.md documents this substitution.
//
// Each program is parameterized by a scale factor so runs can be sized
// from quick tests (scale 1) to the full experiment defaults.
package workload

import (
	"fmt"
	"sync"

	"repro/internal/minicc"
	"repro/internal/prog"
)

// Workload is one benchmark program.
type Workload struct {
	// Name is the SPEC95-style name used in the paper's tables, e.g.
	// "099.go".
	Name string
	// Short is the bare name, e.g. "go".
	Short string
	// FP marks the four floating-point programs.
	FP bool
	// DefaultScale is the scale used by the experiment drivers.
	DefaultScale int
	// Source renders the MiniC program at a given scale.
	Source func(scale int) string
	// About describes which SPEC95 behaviour the kernel mimics.
	About string
}

var (
	cacheMu sync.Mutex
	cached  = map[string]*compileEntry{}
)

// compileEntry is one (name, scale) cache slot; the sync.Once lets
// concurrent first callers share a single compilation without holding
// the cache lock across it.
type compileEntry struct {
	once sync.Once
	p    *prog.Program
	err  error
}

// Compile compiles the workload at the given scale (0 uses
// DefaultScale). Compiled programs are memoized per (name, scale);
// concurrent calls compile each program exactly once, and compiling
// one workload never blocks lookups of another.
func (w *Workload) Compile(scale int) (*prog.Program, error) {
	if scale <= 0 {
		scale = w.DefaultScale
	}
	key := fmt.Sprintf("%s@%d", w.Name, scale)
	cacheMu.Lock()
	e := cached[key]
	if e == nil {
		e = &compileEntry{}
		cached[key] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() {
		p, err := minicc.Compile(w.Name, w.Source(scale))
		if err != nil {
			e.err = fmt.Errorf("workload %s: %w", w.Name, err)
			return
		}
		p.Name = w.Name
		e.p = p
	})
	return e.p, e.err
}

// All returns the twelve workloads in the paper's Table 1 order:
// integer programs first, then floating point.
func All() []*Workload {
	return []*Workload{
		goBench, m88ksim, gcc, compress, li, ijpeg, perl, vortex,
		tomcatv, swim, su2cor, mgrid,
	}
}

// Integer returns the eight integer workloads.
func Integer() []*Workload { return All()[:8] }

// Float returns the four floating-point workloads.
func Float() []*Workload { return All()[8:] }

// ByName finds a workload by full or short name.
func ByName(name string) (*Workload, bool) {
	for _, w := range All() {
		if w.Name == name || w.Short == name {
			return w, true
		}
	}
	return nil, false
}

// lcg is the deterministic pseudo-random generator shared by the
// workload sources (MiniC has no rand builtin by design: SPEC programs
// bring their own).
const lcg = `
int seed_ = 12345;
int rnd(int n) {
	seed_ = seed_ * 1103515245 + 12345;
	return ((seed_ >> 16) & 32767) % n;
}
`
