package workload

import (
	"testing"

	"repro/internal/profile"
	"repro/internal/region"
)

func TestAllCompile(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Short, func(t *testing.T) {
			p, err := w.Compile(1)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
		})
	}
}

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("got %d workloads, want 12", len(all))
	}
	if len(Integer()) != 8 || len(Float()) != 4 {
		t.Fatalf("integer/float split wrong: %d/%d", len(Integer()), len(Float()))
	}
	for _, w := range Integer() {
		if w.FP {
			t.Errorf("%s: integer workload marked FP", w.Name)
		}
	}
	for _, w := range Float() {
		if !w.FP {
			t.Errorf("%s: float workload not marked FP", w.Name)
		}
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate name %s", w.Name)
		}
		seen[w.Name] = true
		if w.DefaultScale <= 0 {
			t.Errorf("%s: non-positive default scale", w.Name)
		}
		if w.About == "" {
			t.Errorf("%s: missing About", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if w, ok := ByName("099.go"); !ok || w.Short != "go" {
		t.Error("lookup by full name failed")
	}
	if w, ok := ByName("vortex"); !ok || w.Name != "147.vortex" {
		t.Error("lookup by short name failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus name resolved")
	}
}

// TestRunDeterministic runs every workload twice at scale 1 and checks
// that execution is fully deterministic (same exit code, same dynamic
// instruction count) — a prerequisite for every experiment.
func TestRunDeterministic(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Short, func(t *testing.T) {
			t.Parallel()
			p, err := w.Compile(1)
			if err != nil {
				t.Fatal(err)
			}
			a, err := profile.Run(p, 0, nil)
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			b, err := profile.Run(p, 0, nil)
			if err != nil {
				t.Fatalf("run 2: %v", err)
			}
			if a.ExitCode != b.ExitCode || a.DynInsts != b.DynInsts {
				t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)",
					a.ExitCode, a.DynInsts, b.ExitCode, b.DynInsts)
			}
			if a.DynInsts < 50_000 {
				t.Errorf("only %d dynamic instructions at scale 1; too small to profile", a.DynInsts)
			}
			if a.DynRefs() == 0 {
				t.Error("no memory references")
			}
			t.Logf("%s: %d insts, %.0f%% loads, %.0f%% stores, exit %d",
				w.Name, a.DynInsts, a.LoadPct(), a.StorePct(), a.ExitCode)
		})
	}
}

// TestRegionSignatures checks that each workload reproduces the coarse
// region mix of its SPEC95 namesake (the property the substitution must
// preserve; see DESIGN.md).
func TestRegionSignatures(t *testing.T) {
	profiles := map[string]*profile.Profile{}
	for _, w := range All() {
		p, err := w.Compile(1)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := profile.Run(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		profiles[w.Short] = pr
	}
	frac := func(pr *profile.Profile, r region.Region) float64 {
		return float64(pr.RegionRefs[r]) / float64(pr.DynRefs())
	}

	// go and compress: essentially no heap.
	for _, name := range []string{"go", "compress"} {
		if f := frac(profiles[name], region.Heap); f > 0.02 {
			t.Errorf("%s: heap fraction %.3f, want ~0", name, f)
		}
	}
	// compress and mgrid: data-dominant.
	for _, name := range []string{"compress", "mgrid"} {
		pr := profiles[name]
		if frac(pr, region.Data) < frac(pr, region.Stack) {
			t.Errorf("%s: data fraction %.3f below stack %.3f, want data-dominant",
				name, frac(pr, region.Data), frac(pr, region.Stack))
		}
	}
	// vortex: stack-dominant.
	pr := profiles["vortex"]
	if frac(pr, region.Stack) < frac(pr, region.Data) || frac(pr, region.Stack) < frac(pr, region.Heap) {
		t.Errorf("vortex: stack %.3f not dominant (data %.3f heap %.3f)",
			frac(pr, region.Stack), frac(pr, region.Data), frac(pr, region.Heap))
	}
	// li and perl: significant heap traffic.
	for _, name := range []string{"li", "perl"} {
		if f := frac(profiles[name], region.Heap); f < 0.08 {
			t.Errorf("%s: heap fraction %.3f, want >= 0.08", name, f)
		}
	}
	// FP programs: near-zero heap except su2cor's small scratch.
	for _, name := range []string{"tomcatv", "swim", "mgrid"} {
		if f := frac(profiles[name], region.Heap); f > 0.02 {
			t.Errorf("%s: heap fraction %.3f, want ~0", name, f)
		}
	}
}
