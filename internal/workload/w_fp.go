package workload

import "fmt"

// The FP kernels are written the way EGCS -O3 with loop unrolling
// compiles Fortran stencils: induction variables strength-reduced to
// walking pointers and inner loops unrolled, so the instruction mix is
// dominated by loads/stores and FP ops rather than index arithmetic.
// This is what makes them exert the data-bandwidth pressure the paper
// measures (Table 2: 4-10 data accesses per 32 instructions).

// 101.tomcatv — vectorized mesh generation. Global float grids (data
// region) with a stencil sweep that stages many float intermediates in
// stack slots (MiniC float locals always live on the stack, matching
// the spill-heavy FP code the paper measures: tomcatv has the largest
// stack share of the FP programs).
var tomcatv = &Workload{
	Name: "101.tomcatv", Short: "tomcatv", FP: true, DefaultScale: 1,
	About: "2-D mesh stencil over global float grids with spilled FP temporaries",
	Source: func(scale int) string {
		const gridN = 64 // grid edge; the paper used N=253
		return lcg + fmt.Sprintf(`
float x_[4096];
float y_[4096];
float rx_[4096];
float ry_[4096];
float dd_[4096];

float rowsum(float *row) {
	float s = 0.0;
	int i;
	for (i = 0; i < 64; i += 4) {
		s += row[i] + row[i + 1] + row[i + 2] + row[i + 3];
	}
	return s;
}

int main() {
	int i;
	int j;
	float stage[64];
	for (i = 0; i < 64 * 64; i++) {
		x_[i] = (float)(i %% 97) * 0.031;
		y_[i] = (float)(i %% 89) * 0.043;
	}
	int iter;
	float check = 0.0;
	for (iter = 0; iter < %d * 3; iter++) {
		// Residual bookkeeping: the same helper sums a grid row in
		// place (data) and a stack-staged boundary row, so its loads
		// access multiple regions (tomcatv is the paper's FP program
		// with the most such instructions).
		for (i = 0; i < 64; i++) stage[i] = x_[(iter %% 63) * 64 + i];
		check += rowsum(x_ + (iter %% 63) * 64) - rowsum(stage);
		for (i = 1; i < 64 - 1; i++) {
			float *px = &x_[i * 64 + 1];
			float *py = &y_[i * 64 + 1];
			float *prx = &rx_[i * 64 + 1];
			float *pry = &ry_[i * 64 + 1];
			float *pdd = &dd_[i * 64 + 1];
			for (j = 1; j < 64 - 1; j++) {
				float xx = px[1] - px[-1];
				float yx = py[1] - py[-1];
				float xy = px[64] - px[-64];
				float yy = py[64] - py[-64];
				float a = 0.25 * (xy * xy + yy * yy);
				float b = 0.25 * (xx * xx + yx * yx);
				float c = 0.125 * (xx * xy + yx * yy);
				float qc = c * (px[64 + 1] - px[64 - 1] - px[-64 + 1] + px[-64 - 1]);
				float rc = c * (py[64 + 1] - py[64 - 1] - py[-64 + 1] + py[-64 - 1]);
				*prx = a * (px[1] + px[-1]) + b * (px[64] + px[-64]) - 2.0 * (a + b) * px[0] - qc;
				*pry = a * (py[1] + py[-1]) + b * (py[64] + py[-64]) - 2.0 * (a + b) * py[0] - rc;
				*pdd = b + 0.0001;
				px = px + 1;
				py = py + 1;
				prx = prx + 1;
				pry = pry + 1;
				pdd = pdd + 1;
			}
		}
		for (i = 1; i < 64 - 1; i++) {
			float *px = &x_[i * 64 + 1];
			float *py = &y_[i * 64 + 1];
			float *prx = &rx_[i * 64 + 1];
			float *pry = &ry_[i * 64 + 1];
			float *pdd = &dd_[i * 64 + 1];
			for (j = 1; j < 64 - 1; j += 2) {
				px[0] = px[0] + prx[0] * 0.3 / pdd[0];
				py[0] = py[0] + pry[0] * 0.3 / pdd[0];
				px[1] = px[1] + prx[1] * 0.3 / pdd[1];
				py[1] = py[1] + pry[1] * 0.3 / pdd[1];
				px = px + 2;
				py = py + 2;
				prx = prx + 2;
				pry = pry + 2;
				pdd = pdd + 2;
			}
		}
		check += x_[iter %% 4096] + y_[(iter * 7) %% 4096];
	}
	return (int)(fabsf(check)) & 255;
}
`, scale)
	},
}

// 102.swim — shallow water equations: three global grids updated by a
// light stencil with few live float temporaries, matching the
// namesake's data-dominant, low-stack profile.
var swim = &Workload{
	Name: "102.swim", Short: "swim", FP: true, DefaultScale: 1,
	About: "shallow-water stencil over global float grids (data-dominant)",
	Source: func(scale int) string {
		const gridN = 64
		return fmt.Sprintf(`
float u_[4096];
float v_[4096];
float p_[4096];
float unew_[4096];
float vnew_[4096];
float pnew_[4096];

int main() {
	int i;
	int j;
	for (i = 0; i < 64 * 64; i++) {
		u_[i] = (float)(i %% 13) * 0.1;
		v_[i] = (float)(i %% 17) * 0.2;
		p_[i] = 50.0 + (float)(i %% 19);
	}
	int iter;
	float check = 0.0;
	for (iter = 0; iter < %d * 5; iter++) {
		for (i = 1; i < 64 - 1; i++) {
			float *pu = &u_[i * 64 + 1];
			float *pv = &v_[i * 64 + 1];
			float *pp = &p_[i * 64 + 1];
			float *qu = &unew_[i * 64 + 1];
			float *qv = &vnew_[i * 64 + 1];
			float *qp = &pnew_[i * 64 + 1];
			for (j = 1; j < 64 - 1; j++) {
				qu[0] = pu[0] + 0.1 * (pv[1] - pv[-1]) - 0.05 * (pp[1] - pp[-1]);
				qv[0] = pv[0] + 0.1 * (pu[64] - pu[-64]) - 0.05 * (pp[64] - pp[-64]);
				qp[0] = pp[0] - 0.1 * (pu[1] - pu[-1] + pv[64] - pv[-64]);
				pu = pu + 1;
				pv = pv + 1;
				pp = pp + 1;
				qu = qu + 1;
				qv = qv + 1;
				qp = qp + 1;
			}
		}
		for (i = 1; i < 64 - 1; i++) {
			float *pu = &u_[i * 64 + 1];
			float *pv = &v_[i * 64 + 1];
			float *pp = &p_[i * 64 + 1];
			float *qu = &unew_[i * 64 + 1];
			float *qv = &vnew_[i * 64 + 1];
			float *qp = &pnew_[i * 64 + 1];
			for (j = 1; j < 64 - 1; j += 2) {
				pu[0] = qu[0];
				pv[0] = qv[0];
				pp[0] = qp[0];
				pu[1] = qu[1];
				pv[1] = qv[1];
				pp[1] = qp[1];
				pu = pu + 2;
				pv = pv + 2;
				pp = pp + 2;
				qu = qu + 2;
				qv = qv + 2;
				qp = qp + 2;
			}
		}
		check += p_[(iter * 31) %% 4096];
	}
	return (int)(fabsf(check)) & 255;
}
`, scale)
	},
}

// 103.su2cor — quantum physics monte carlo: global float matrices with
// dot-product kernels and an LCG-driven update sweep. Data-dominant
// with a small heap scratch buffer (the original has a little heap
// traffic, unlike the other FP programs).
var su2cor = &Workload{
	Name: "103.su2cor", Short: "su2cor", FP: true, DefaultScale: 1,
	About: "monte-carlo matrix sweeps over global float arrays with a small heap scratch",
	Source: func(scale int) string {
		return lcg + fmt.Sprintf(`
float lat_[8192];
float prop_[8192];
float corr_[256];
float *scratch_;

float dot(int a, int b) {
	// 16-element dot product, unrolled by 4 as -O3 would.
	float *pa = &lat_[a];
	float *pb = &lat_[b];
	float s0 = 0.0;
	float s1 = 0.0;
	float s2 = 0.0;
	float s3 = 0.0;
	int i;
	for (i = 0; i < 16; i += 4) {
		s0 += pa[0] * pb[0];
		s1 += pa[1] * pb[1];
		s2 += pa[2] * pb[2];
		s3 += pa[3] * pb[3];
		pa = pa + 4;
		pb = pb + 4;
	}
	return (s0 + s1) + (s2 + s3);
}

int main() {
	scratch_ = (float*)malloc(1024 * sizeof(float));
	int i;
	for (i = 0; i < 8192; i++) lat_[i] = (float)((i * 37) %% 101) * 0.0198;
	for (i = 0; i < 1024; i++) scratch_[i] = 0.0;
	int iter;
	float check = 0.0;
	for (iter = 0; iter < %d * 70; iter++) {
		int base = rnd(7000);
		for (i = 0; i < 64; i++) {
			float d = dot(base + i, base + i + 64);
			prop_[(base + i) & 8191] = d * 0.5 + prop_[(base + i) & 8191] * 0.5;
			scratch_[i & 1023] = d;
		}
		for (i = 0; i < 64; i += 2) {
			corr_[i & 255] += scratch_[i] * 0.01;
			corr_[(i + 1) & 255] += scratch_[i + 1] * 0.01;
			lat_[(base + i * 3) & 8191] += 0.0005 * (float)(rnd(100) - 50);
		}
		check += corr_[iter & 255];
	}
	return (int)(fabsf(check)) & 255;
}
`, scale)
	},
}

// 107.mgrid — multigrid solver: 3-D 27-point stencils over global float
// arrays. The heaviest data-region consumer of the twelve (the paper
// measures 9.6 data accesses per 32 instructions) with very little
// stack or heap.
var mgrid = &Workload{
	Name: "107.mgrid", Short: "mgrid", FP: true, DefaultScale: 1,
	About: "3-D 27-point multigrid stencil over global float arrays (most data-heavy)",
	Source: func(scale int) string {
		const gridN = 16 // 16^3 grid
		return fmt.Sprintf(`
float u3_[4096];
float r3_[4096];
float v3_[4096];

int main() {
	int i;
	int j;
	int k;
	for (i = 0; i < 16 * 256; i++) {
		u3_[i] = (float)((i * 29) %% 53) * 0.019;
		v3_[i] = (float)((i * 13) %% 47) * 0.021;
	}
	int iter;
	float check = 0.0;
	for (iter = 0; iter < %d * 6; iter++) {
		for (i = 1; i < 16 - 1; i++) {
			for (j = 1; j < 16 - 1; j++) {
				float *pu = &u3_[i * 256 + j * 16 + 1];
				float *pr = &r3_[i * 256 + j * 16 + 1];
				float *pv = &v3_[i * 256 + j * 16 + 1];
				for (k = 1; k < 16 - 1; k++) {
					float faces = pu[-1] + pu[1] + pu[-16] + pu[16] + pu[-256] + pu[256];
					float edges = pu[-16 - 1] + pu[-16 + 1] + pu[16 - 1] + pu[16 + 1]
						+ pu[-256 - 1] + pu[-256 + 1] + pu[256 - 1] + pu[256 + 1]
						+ pu[-256 - 16] + pu[-256 + 16] + pu[256 - 16] + pu[256 + 16];
					pr[0] = pv[0] - 2.6 * pu[0] + 0.16 * faces + 0.04 * edges;
					pu = pu + 1;
					pr = pr + 1;
					pv = pv + 1;
				}
			}
		}
		for (i = 1; i < 16 - 1; i++) {
			for (j = 1; j < 16 - 1; j++) {
				float *pu = &u3_[i * 256 + j * 16 + 1];
				float *pr = &r3_[i * 256 + j * 16 + 1];
				for (k = 1; k < 16 - 1; k += 2) {
					pu[0] = pu[0] + 0.4 * pr[0];
					pu[1] = pu[1] + 0.4 * pr[1];
					pu = pu + 2;
					pr = pr + 2;
				}
			}
		}
		check += u3_[(iter * 113) %% 4096];
	}
	return (int)(fabsf(check)) & 255;
}
`, scale)
	},
}
