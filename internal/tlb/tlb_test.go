package tlb

import (
	"testing"

	"repro/internal/region"
)

func layout() region.Layout {
	return region.Layout{
		DataBase: 0x1000_0000, HeapBase: 0x1001_0000, Brk: 0x1002_0000,
		StackTop: 0x7FFF_F000, StackFloor: 0x7FEF_F000,
	}
}

func mustNew(t *testing.T, entries int) *TLB {
	t.Helper()
	tb, err := New(Config{Entries: entries, Layout: layout()})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestStackBit(t *testing.T) {
	tb := mustNew(t, 4)
	if stack, _ := tb.Lookup(0x7FFF_0000); !stack {
		t.Error("stack page not flagged")
	}
	if stack, _ := tb.Lookup(0x1000_0100); stack {
		t.Error("data page flagged as stack")
	}
	if stack, _ := tb.Lookup(0x1001_0100); stack {
		t.Error("heap page flagged as stack")
	}
}

func TestHitAfterFill(t *testing.T) {
	tb := mustNew(t, 4)
	if _, hit := tb.Lookup(0x1000_0000); hit {
		t.Error("cold lookup hit")
	}
	if _, hit := tb.Lookup(0x1000_0004); !hit {
		t.Error("same-page lookup missed")
	}
	st := tb.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	tb := mustNew(t, 2)
	a, b, c := uint32(0x1000_0000), uint32(0x1000_1000), uint32(0x1000_2000)
	tb.Lookup(a)
	tb.Lookup(b)
	tb.Lookup(a) // a MRU
	tb.Lookup(c) // evicts b
	if _, hit := tb.Lookup(a); !hit {
		t.Error("a evicted, want b")
	}
	if _, hit := tb.Lookup(b); hit {
		t.Error("b survived")
	}
}

func TestDefaultEntries(t *testing.T) {
	tb := mustNew(t, 0)
	if len(tb.entries) != DefaultEntries {
		t.Errorf("entries = %d", len(tb.entries))
	}
}

func TestConfigValidate(t *testing.T) {
	if _, err := New(Config{Entries: -1}); err == nil {
		t.Error("negative entry count accepted")
	}
}

func TestZeroEntriesWithLayout(t *testing.T) {
	tb, err := New(Config{Layout: layout()})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.entries) != DefaultEntries {
		t.Errorf("entries = %d", len(tb.entries))
	}
}

func TestSetLayoutMovesBrk(t *testing.T) {
	l := layout()
	tb, err := New(Config{Entries: 4, Layout: l})
	if err != nil {
		t.Fatal(err)
	}
	l.Brk += 0x1000
	tb.SetLayout(l)
	// New heap page classifies by the updated layout.
	if stack, _ := tb.Lookup(l.Brk - 4); stack {
		t.Error("heap page flagged after brk move")
	}
}
