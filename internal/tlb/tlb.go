// Package tlb models the translation look-aside buffer extension of
// §4.2: every entry carries one extra bit saying whether the translated
// page belongs to the stack. The memory-access stage consults this bit
// to verify the ARPT's prediction; a mismatch triggers the recovery
// path. Address translation itself is identity (the simulators run
// physically addressed), so the TLB's interesting outputs are the
// stack bit and hit/miss statistics.
package tlb

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/region"
)

// Stats counts TLB events.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// Publish copies the counters into r under the given labels; call once
// when a run finishes.
func (s Stats) Publish(r *obs.Registry, labels obs.Labels) {
	if r == nil {
		return
	}
	r.Counter("tlb_accesses_total", "TLB lookups", labels).Add(s.Accesses)
	r.Counter("tlb_hits_total", "TLB hits", labels).Add(s.Hits)
	r.Counter("tlb_misses_total", "TLB misses", labels).Add(s.Misses)
}

type entry struct {
	page  uint32
	stack bool
	used  uint64
	valid bool
}

// TLB is a fully associative, LRU-replaced translation buffer with a
// per-page stack bit.
type TLB struct {
	entries []entry
	layout  region.Layout
	clock   uint64
	stats   Stats
}

// DefaultEntries matches a typical late-90s data TLB.
const DefaultEntries = 64

// Config describes a TLB.
type Config struct {
	// Entries is the number of (fully associative) entries; 0 selects
	// DefaultEntries.
	Entries int
	// Layout is the initial address-space snapshot pages are classified
	// against (see SetLayout for updates).
	Layout region.Layout
}

// Validate checks structural sanity.
func (c Config) Validate() error {
	if c.Entries < 0 {
		return fmt.Errorf("tlb: negative entry count %d", c.Entries)
	}
	return nil
}

// Option configures a TLB beyond its geometry.
type Option func(*TLB)

// New builds a TLB from cfg; the configuration must validate.
func New(cfg Config, opts ...Option) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	entries := cfg.Entries
	if entries == 0 {
		entries = DefaultEntries
	}
	t := &TLB{entries: make([]entry, entries), layout: cfg.Layout}
	for _, opt := range opts {
		opt(t)
	}
	return t, nil
}

// SetLayout updates the layout (the heap break moves as the program
// sbrks; the stack boundary is fixed, so cached stack bits stay valid).
func (t *TLB) SetLayout(l region.Layout) { t.layout = l }

// Lookup translates addr and returns whether the page is a stack page
// and whether the lookup hit the TLB. On a miss the entry is filled
// from the layout (the run-time system "page table").
func (t *TLB) Lookup(addr uint32) (stack, hit bool) {
	t.clock++
	t.stats.Accesses++
	page := addr >> mem.PageBits
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			t.stats.Hits++
			e.used = t.clock
			return e.stack, true
		}
		if !t.entries[victim].valid {
			continue
		}
		if !e.valid || e.used < t.entries[victim].used {
			victim = i
		}
	}
	t.stats.Misses++
	stack = t.layout.Classify(addr).IsStack()
	t.entries[victim] = entry{page: page, stack: stack, used: t.clock, valid: true}
	return stack, false
}

// Stats reports accumulated statistics.
func (t *TLB) Stats() Stats { return t.stats }
