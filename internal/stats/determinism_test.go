package stats

import "testing"

// Regression: Hist.Mean and Hist.StdDev used to range over the counts
// map, and float addition is not associative — the same histogram
// could report different moments call to call. The buckets here are
// engineered so only the ascending-order sum is exact: 1+2 = 3 first,
// then 2^54+3 rounds up to 2^54+4; any order that adds 2^54 before
// both small values loses them to rounding and lands on 2^54 exactly.
func TestHistMomentsDeterministic(t *testing.T) {
	h := NewHist()
	h.Add(1)
	h.Add(2)
	h.Add(1 << 54)

	big := float64(int64(1) << 54)
	wantSum := (1.0 + 2.0) + big // ascending order: 2^54 + 4
	if wantSum == big {
		t.Fatal("test buckets no longer distinguish summation orders")
	}
	wantMean := wantSum / 3

	first := h.StdDev()
	for i := 0; i < 100; i++ {
		if got := h.Mean(); got != wantMean {
			t.Fatalf("run %d: Mean() = %v, want ascending-order %v", i, got, wantMean)
		}
		if got := h.StdDev(); got != first {
			t.Fatalf("run %d: StdDev() = %v, want stable %v", i, got, first)
		}
	}
}
