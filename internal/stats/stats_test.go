package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g", r.Mean())
	}
	if math.Abs(r.StdDev()-2) > 1e-12 {
		t.Errorf("stddev = %g", r.StdDev())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.StdDev() != 0 || r.N() != 0 {
		t.Errorf("empty accumulator not zero: %v", &r)
	}
}

func TestRunningMerge(t *testing.T) {
	var a, b, all Running
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for i, x := range xs {
		all.Add(x)
		if i < 4 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.StdDev()-all.StdDev()) > 1e-9 {
		t.Errorf("merge: got (%g,%g), want (%g,%g)", a.Mean(), a.StdDev(), all.Mean(), all.StdDev())
	}
}

// Property: Running agrees with the two-pass formulas.
func TestRunningMatchesTwoPass(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		var sum float64
		ok := true
		for _, x := range xs {
			// Constrain to sane magnitudes to avoid float blowup noise.
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) {
				continue
			}
			r.Add(x)
			sum += x
		}
		if r.N() == 0 {
			return true
		}
		mean := sum / float64(r.N())
		ok = ok && math.Abs(r.Mean()-mean) < 1e-6*(1+math.Abs(mean))
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHist(t *testing.T) {
	h := NewHist()
	for _, v := range []int{1, 2, 2, 3, 3, 3} {
		h.Add(v)
	}
	if h.Total() != 6 || h.Count(3) != 3 || h.Count(9) != 0 {
		t.Errorf("hist counts wrong: %v", h)
	}
	if math.Abs(h.Mean()-14.0/6) > 1e-12 {
		t.Errorf("mean = %g", h.Mean())
	}
	if got := h.Buckets(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("buckets = %v", got)
	}
}

func TestWindowCounts(t *testing.T) {
	w := mustWindow(t, 4)
	seq := []bool{true, false, true, true, false, false, false, false}
	want := []int{1, 1, 2, 3, 2, 2, 1, 0}
	for i, hit := range seq {
		if got := w.Step(hit); got != want[i] {
			t.Errorf("step %d: count = %d, want %d", i, got, want[i])
		}
	}
	if !w.Warm() {
		t.Error("window should be warm after size steps")
	}
}

func TestWindowWarmup(t *testing.T) {
	w := mustWindow(t, 3)
	w.Step(true)
	w.Step(true)
	if w.Warm() {
		t.Error("warm too early")
	}
	w.Step(false)
	if !w.Warm() {
		t.Error("not warm after 3 steps")
	}
}

func mustWindow(t *testing.T, size int) *Window {
	t.Helper()
	w, err := NewWindow(size)
	if err != nil {
		t.Fatalf("NewWindow(%d): %v", size, err)
	}
	return w
}

func TestWindowRejectsBadSize(t *testing.T) {
	for _, size := range []int{0, -1, -100} {
		if _, err := NewWindow(size); err == nil {
			t.Errorf("NewWindow(%d) accepted", size)
		}
	}
}

// Property: window count is always in [0, size] and equals the number
// of true values among the last `size` inputs.
func TestWindowCountProperty(t *testing.T) {
	f := func(bits []bool) bool {
		const size = 8
		w, err := NewWindow(size)
		if err != nil {
			return false
		}
		for i, b := range bits {
			got := w.Step(b)
			lo := i - size + 1
			if lo < 0 {
				lo = 0
			}
			want := 0
			for _, x := range bits[lo : i+1] {
				if x {
					want++
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Error("empty ratio")
	}
	r.Add(true)
	r.Add(true)
	r.Add(false)
	if math.Abs(r.Percent()-66.666) > 0.01 {
		t.Errorf("percent = %g", r.Percent())
	}
}
