// Package stats provides the small statistics toolkit used throughout the
// simulator: counters, running mean/standard deviation accumulators,
// integer histograms, and the sliding-window accumulator that backs the
// paper's Table 2 (per-region access counts over the last 32/64
// instructions).
package stats

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running accumulates a stream of float64 observations and reports count,
// mean, variance and standard deviation using Welford's online algorithm,
// which is numerically stable for the long streams the profiler produces.
type Running struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddN records the same observation n times.
func (r *Running) AddN(x float64, n uint64) {
	for i := uint64(0); i < n; i++ {
		r.Add(x)
	}
}

// N reports the number of observations.
func (r *Running) N() uint64 { return r.n }

// Mean reports the arithmetic mean of the observations (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance reports the population variance of the observations.
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev reports the population standard deviation of the observations.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Merge folds other into r, as if every observation fed to other had been
// fed to r as well.
func (r *Running) Merge(other Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = other
		return
	}
	n := r.n + other.n
	d := other.mean - r.mean
	mean := r.mean + d*float64(other.n)/float64(n)
	m2 := r.m2 + other.m2 + d*d*float64(r.n)*float64(other.n)/float64(n)
	r.n, r.mean, r.m2 = n, mean, m2
}

func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f", r.n, r.Mean(), r.StdDev())
}

// runningGobBytes is the fixed wire image of a Running: count, mean
// bits, M2 bits, little-endian.
const runningGobBytes = 24

// GobEncode makes Running durable despite its unexported fields (the
// type guards Welford's invariants): the artifact store's gob payloads
// round-trip it through an explicit fixed-width image.
func (r Running) GobEncode() ([]byte, error) {
	buf := make([]byte, runningGobBytes)
	binary.LittleEndian.PutUint64(buf[0:], r.n)
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(r.mean))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(r.m2))
	return buf, nil
}

// GobDecode restores a Running encoded by GobEncode.
func (r *Running) GobDecode(data []byte) error {
	if len(data) != runningGobBytes {
		return fmt.Errorf("stats: Running image is %d bytes, want %d", len(data), runningGobBytes)
	}
	r.n = binary.LittleEndian.Uint64(data[0:])
	r.mean = math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	r.m2 = math.Float64frombits(binary.LittleEndian.Uint64(data[16:]))
	return nil
}

// Hist is a sparse integer histogram.
type Hist struct {
	counts map[int]uint64
	total  uint64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{counts: make(map[int]uint64)} }

// Add increments the bucket for v.
func (h *Hist) Add(v int) { h.counts[v]++; h.total++ }

// Count reports the number of observations equal to v.
func (h *Hist) Count(v int) uint64 { return h.counts[v] }

// Total reports the total number of observations.
func (h *Hist) Total() uint64 { return h.total }

// Mean reports the mean of the observed values. Float addition is not
// associative, so the sum walks the buckets in ascending value order:
// map iteration order must never reach a reported number.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.Buckets() {
		sum += float64(v) * float64(h.counts[v])
	}
	return sum / float64(h.total)
}

// StdDev reports the population standard deviation of the observed
// values, accumulated in ascending bucket order for the same
// determinism reason as Mean.
func (h *Hist) StdDev() float64 {
	if h.total == 0 {
		return 0
	}
	m := h.Mean()
	var sq float64
	for _, v := range h.Buckets() {
		d := float64(v) - m
		sq += d * d * float64(h.counts[v])
	}
	return math.Sqrt(sq / float64(h.total))
}

// Buckets returns the observed values in ascending order.
func (h *Hist) Buckets() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

func (h *Hist) String() string {
	var b strings.Builder
	for _, v := range h.Buckets() {
		fmt.Fprintf(&b, "%d:%d ", v, h.counts[v])
	}
	return strings.TrimSpace(b.String())
}

// Window counts how many of the last Size events were "hits" (e.g. memory
// accesses to one region within the last 32 retired instructions). Every
// Step(hit) both advances the window one event and reports the current
// hit population, which the caller typically feeds into a Running.
type Window struct {
	size  int
	ring  []bool
	pos   int
	count int
	warm  int
}

// NewWindow returns a sliding window over the last size events. It
// returns an error if size is not positive.
func NewWindow(size int) (*Window, error) {
	if size <= 0 {
		return nil, fmt.Errorf("stats: invalid window size %d", size)
	}
	return &Window{size: size, ring: make([]bool, size)}, nil
}

// Size reports the window length.
func (w *Window) Size() int { return w.size }

// Step pushes one event (hit or miss) into the window and returns the
// number of hits among the last Size events.
func (w *Window) Step(hit bool) int {
	if w.ring[w.pos] {
		w.count--
	}
	w.ring[w.pos] = hit
	if hit {
		w.count++
	}
	w.pos = (w.pos + 1) % w.size
	if w.warm < w.size {
		w.warm++
	}
	return w.count
}

// Count reports the current number of hits in the window.
func (w *Window) Count() int { return w.count }

// Warm reports true once Size events have been observed, i.e. once the
// window content is meaningful. The Table 2 profiler only samples warm
// windows so start-up transients do not bias the distribution.
func (w *Window) Warm() bool { return w.warm >= w.size }

// Ratio is a convenience pair of counters reporting hits/total.
type Ratio struct {
	Hits  uint64
	Total uint64
}

// Add records one trial.
func (r *Ratio) Add(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value reports hits/total in [0,1]; 0 when empty.
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Percent reports the ratio as a percentage.
func (r *Ratio) Percent() float64 { return r.Value() * 100 }

func (r *Ratio) String() string {
	return fmt.Sprintf("%d/%d (%.2f%%)", r.Hits, r.Total, r.Percent())
}
