package static

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/region"
)

// kind enumerates the shapes of an abstract value. The lattice order is
// kBottom below everything, kTop above everything, and kConst below the
// kEntry/kInt/kRegions layer (joining two unequal members of that layer
// demotes toward kRegions or kTop; see Value.join).
type kind uint8

const (
	kBottom  kind = iota // unreachable / never written
	kConst               // exactly one 32-bit value
	kEntry               // the value a register held at function entry, plus a constant offset
	kInt                 // an integer the program never uses as a region pointer
	kRegions             // a pointer into a known, non-empty set of regions
	kTop                 // anything
)

// Value is one element of the per-register lattice the analyzer
// propagates: ⊥ (kBottom), exact constants, symbolic
// "entry value of register r plus offset" terms (which is how
// $sp/$fp-relative addressing stays exact across the prologue), plain
// integers, region sets (the paper's Stack / Global / Heap / Mixed
// layer), and ⊤.
//
// The zero Value is ⊥.
type Value struct {
	k   kind
	reg isa.Register // kEntry: whose entry value
	off int32        // kEntry: constant offset from that entry value
	c   uint32       // kConst
	set region.Set   // kRegions: non-empty region set
}

func bot() Value          { return Value{} }
func top() Value          { return Value{k: kTop} }
func intv() Value         { return Value{k: kInt} }
func cval(c uint32) Value { return Value{k: kConst, c: c} }
func entry(r isa.Register) Value {
	return Value{k: kEntry, reg: r}
}
func rset(s region.Set) Value {
	if s == 0 {
		return top()
	}
	return Value{k: kRegions, set: s}
}

var stackSet = region.Set(0).Add(region.Stack)

func (v Value) String() string {
	switch v.k {
	case kBottom:
		return "⊥"
	case kConst:
		return fmt.Sprintf("const(%#x)", v.c)
	case kEntry:
		if v.off == 0 {
			return fmt.Sprintf("entry(%v)", v.reg)
		}
		return fmt.Sprintf("entry(%v)%+d", v.reg, v.off)
	case kInt:
		return "int"
	case kRegions:
		return "regions(" + v.set.Class() + ")"
	case kTop:
		return "⊤"
	}
	return fmt.Sprintf("value(%d)", v.k)
}

// isStackEntry reports whether v is the symbolic entry value of a stack
// register ($sp or the caller's $fp), i.e. a provable stack pointer.
func (v Value) isStackEntry() bool {
	return v.k == kEntry && (v.reg == isa.SP || v.reg == isa.FP)
}

// addrRegions reports the set of regions v may point into when used as
// an address, and whether the analyzer actually knows that set. A known
// empty set means "provably not an address" (the ⊤-region lint signal);
// known=false means the analyzer makes no claim (⊤, or an entry value
// of a non-stack register).
func (v Value) addrRegions(lay region.Layout) (region.Set, bool) {
	switch v.k {
	case kConst:
		// Layout.Classify is total and independent of the run-time
		// break, so a constant address classifies exactly.
		return region.Set(0).Add(lay.Classify(v.c)), true
	case kEntry:
		if v.reg == isa.SP || v.reg == isa.FP {
			return stackSet, true
		}
		return 0, false
	case kInt:
		return 0, true
	case kRegions:
		return v.set, true
	}
	return 0, false
}

// classOf is shorthand for the singleton set of a constant's region.
func classOf(lay region.Layout, c uint32) region.Set {
	return region.Set(0).Add(lay.Classify(c))
}

// join computes the least upper bound of two values.
func (v Value) join(o Value, lay region.Layout) Value {
	if v == o {
		return v
	}
	if v.k == kBottom {
		return o
	}
	if o.k == kBottom {
		return v
	}
	if v.k == kTop || o.k == kTop {
		return top()
	}
	// Normalize so v.k <= o.k in the kind ordering below.
	if v.k > o.k {
		v, o = o, v
	}
	switch v.k {
	case kConst:
		switch o.k {
		case kConst:
			if v.c < prog.DataBase && o.c < prog.DataBase {
				// Two small integers (below every data region base):
				// a plain integer, not a pointer.
				return intv()
			}
			return rset(classOf(lay, v.c) | classOf(lay, o.c))
		case kEntry:
			if o.isStackEntry() {
				return rset(stackSet | classOf(lay, v.c))
			}
			return top()
		case kInt:
			if v.c < prog.DataBase {
				return intv()
			}
			return top()
		case kRegions:
			return rset(o.set | classOf(lay, v.c))
		}
	case kEntry:
		switch o.k {
		case kEntry:
			if v.isStackEntry() && o.isStackEntry() {
				return rset(stackSet)
			}
			return top()
		case kInt:
			return top()
		case kRegions:
			if v.isStackEntry() {
				return rset(o.set | stackSet)
			}
			return top()
		}
	case kInt:
		// kInt ⊔ kRegions: "maybe an integer, maybe a pointer" — no claim.
		return top()
	case kRegions:
		return rset(v.set | o.set)
	}
	return top()
}

// addConst displaces a value by a compile-time constant. Region values
// stay in their region under the in-bounds pointer-arithmetic
// assumption DESIGN.md documents (and the soundness test validates).
func addConst(v Value, d uint32, lay region.Layout) Value {
	if d == 0 {
		return v
	}
	switch v.k {
	case kBottom:
		return v
	case kConst:
		return cval(v.c + d)
	case kEntry:
		w := v
		w.off += int32(d)
		return w
	case kInt:
		if d >= prog.DataBase {
			// integer + address constant: a displaced pointer.
			return rset(classOf(lay, d))
		}
		return intv()
	case kRegions:
		return v
	}
	return top()
}

// addValues models integer addition. Pointer plus integer keeps the
// pointer's region (in-bounds assumption); pointer plus pointer is
// meaningless and goes to ⊤.
func addValues(a, b Value, lay region.Layout) Value {
	if a.k == kBottom || b.k == kBottom {
		return bot()
	}
	if a.k == kConst {
		return addConst(b, a.c, lay)
	}
	if b.k == kConst {
		return addConst(a, b.c, lay)
	}
	if a.k == kTop || b.k == kTop {
		return top()
	}
	// Remaining kinds: kInt, kEntry, kRegions.
	if a.k == kInt && b.k == kInt {
		return intv()
	}
	if a.k == kInt || b.k == kInt {
		p := a
		if p.k == kInt {
			p = b
		}
		switch {
		case p.isStackEntry():
			return rset(stackSet)
		case p.k == kRegions:
			return p
		}
		return top()
	}
	return top() // pointer + pointer
}

// subValues models integer subtraction: pointer minus integer stays in
// region, pointer minus pointer is an integer, same-register entry
// values subtract exactly.
func subValues(a, b Value, lay region.Layout) Value {
	if a.k == kBottom || b.k == kBottom {
		return bot()
	}
	if b.k == kConst {
		return addConst(a, -b.c, lay)
	}
	if a.k == kEntry && b.k == kEntry && a.reg == b.reg {
		return cval(uint32(a.off - b.off))
	}
	if a.k == kTop || b.k == kTop {
		return top()
	}
	aPtr := a.k == kEntry || a.k == kRegions
	bPtr := b.k == kEntry || b.k == kRegions
	switch {
	case aPtr && bPtr:
		return intv() // pointer difference
	case aPtr && b.k == kInt:
		if a.isStackEntry() {
			return rset(stackSet)
		}
		if a.k == kRegions {
			return a
		}
		return top()
	case a.k == kInt && b.k == kInt:
		return intv()
	case a.k == kConst:
		// constant minus integer/pointer
		if b.k == kInt {
			if a.c >= prog.DataBase {
				return rset(classOf(lay, a.c))
			}
			return intv()
		}
		return top()
	}
	return top()
}

// demote translates a value across a call boundary, where the callee's
// frame symbols lose their meaning: stack-register entry values become
// plain stack pointers, other entry values are unknown, and everything
// else survives unchanged.
func demote(v Value) Value {
	switch v.k {
	case kEntry:
		if v.isStackEntry() {
			return rset(stackSet)
		}
		return top()
	case kBottom, kConst, kInt, kRegions:
		return v
	}
	return top()
}
