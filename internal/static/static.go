// Package static is a binary-level region analyzer for assembled RISA
// programs. It runs an interprocedural abstract interpretation that
// propagates a per-register lattice — ⊥, exact constants, symbolic
// frame addresses, plain integers, region sets (Stack / Global / Heap /
// Mixed), and ⊤ — through moves, address arithmetic, loads/stores, and
// call/return boundaries, to a fixed point over a CFG recovered from
// branch targets.
//
// Two consumers sit on top: cmd/arlcheck lints programs (stack-pointer
// imbalance, clobbered callee-saved registers, loads from never-stored
// stack slots, unreachable blocks, memory ops through a non-address
// base), and Analysis.HintAt is a core.HintSource giving binary-level
// region hints that the experiments compare against the paper's
// source-level Fig. 6 hints and the dynamic oracle. DESIGN.md §static
// documents the lattice, the transfer functions, and the soundness
// argument.
package static

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/prog"
)

// Severity ranks a diagnostic: errors are convention violations or
// provably bad accesses; notes report analysis limitations.
type Severity uint8

const (
	SevError Severity = iota
	SevNote
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "note"
}

// Diag is one analyzer diagnostic, anchored to an instruction and (when
// the program was assembled from text) its source position.
type Diag struct {
	Index int            // instruction index into Program.Text
	Pos   prog.SourcePos // zero when the program carries no positions
	Fn    string         // enclosing function name
	Sev   Severity
	Code  string // stable machine-readable code, e.g. "sp-imbalance"
	Msg   string
}

func (d Diag) String() string {
	loc := fmt.Sprintf("inst %d", d.Index)
	if d.Pos.File != "" {
		loc = fmt.Sprintf("%s:%d", d.Pos.File, d.Pos.Line)
	}
	return fmt.Sprintf("%s: %s: [%s] %s", loc, d.Sev, d.Code, d.Msg)
}

// Analysis is the result of analyzing one program.
type Analysis struct {
	Prog  *prog.Program
	Diags []Diag

	hints []prog.Hint
	sound bool
}

// Analyze runs the abstract interpretation over p and returns the
// hints and diagnostics. It never executes the program.
func Analyze(p *prog.Program) *Analysis {
	az := newAnalyzer(p)
	az.run()
	az.finalize()
	sound := true
	for _, f := range az.funcs {
		if f.entrySt != nil && f.imprecise {
			sound = false
		}
	}
	return &Analysis{Prog: p, Diags: az.diags, hints: az.hints, sound: sound}
}

// Sound reports whether the analyzer followed every control path it
// saw. When false (indirect jumps, control leaving a function's
// extent), the hints are withheld rather than trusted.
func (a *Analysis) Sound() bool { return a.sound }

// HintAt is a core.HintSource: the binary-level region hint for the
// instruction at index i. Instructions the analysis never reached (or
// any instruction of an unsound program) report HintNone.
func (a *Analysis) HintAt(i int) prog.Hint {
	if !a.sound || i < 0 || i >= len(a.hints) {
		return prog.HintNone
	}
	return a.hints[i]
}

// Errors returns the error-severity diagnostics.
func (a *Analysis) Errors() []Diag {
	var errs []Diag
	for _, d := range a.Diags {
		if d.Sev == SevError {
			errs = append(errs, d)
		}
	}
	return errs
}

// Hints analyzes p and returns its binary-level hint source; the
// compile-time assertion below keeps the signature aligned with the
// classifier's.
func Hints(p *prog.Program) core.HintSource {
	return Analyze(p).HintAt
}

var _ core.HintSource = (*Analysis)(nil).HintAt
