package static

import (
	"io"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/region"
	"repro/internal/vm"
	"repro/internal/workload"
)

// TestSoundnessAllWorkloads is the headline property: across every
// workload, the binary-level hints must never contradict the region
// the dynamic trace observes, and compiled code must lint clean.
func TestSoundnessAllWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Short, func(t *testing.T) {
			t.Parallel()
			p, err := w.Compile(1)
			if err != nil {
				t.Fatal(err)
			}
			a := Analyze(p)
			if !a.Sound() {
				t.Errorf("analysis of %s not sound", w.Name)
			}
			for _, d := range a.Errors() {
				t.Errorf("unexpected diagnostic: %v", d)
			}

			m, err := vm.New(vm.Config{Program: p, Out: io.Discard})
			if err != nil {
				t.Fatal(err)
			}
			m.MaxInsts = 1_000_000
			checked := uint64(0)
			for !m.Halted() && m.Seq() < 1_000_000 {
				ev, err := m.Step()
				if err != nil {
					t.Fatal(err)
				}
				if ev.Done || !ev.Inst.IsMem() {
					continue
				}
				pred, usable := core.HintPrediction(a.HintAt(ev.Index))
				if !usable {
					continue
				}
				checked++
				if pred != core.ActualOf(ev.Region) {
					t.Fatalf("hint contradicts dynamic region at %v: hint %v, region %v",
						p.PosAt(ev.Index), a.HintAt(ev.Index), ev.Region)
				}
			}
			if checked == 0 {
				t.Error("no dynamic reference was covered by a binary hint")
			}
		})
	}
}

func mustAnalyze(t *testing.T, src string) *Analysis {
	t.Helper()
	p, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(p)
}

func codes(a *Analysis) map[string]int {
	m := map[string]int{}
	for _, d := range a.Diags {
		if d.Sev == SevError {
			m[d.Code]++
		}
	}
	return m
}

func TestCleanProgram(t *testing.T) {
	a := mustAnalyze(t, `
	.data
tab:	.word 1, 2, 3, 4
	.text
main:
	addi $sp, $sp, -16
	sw   $ra, 12($sp)
	sw   $s0, 8($sp)
	la   $a0, tab
	jal  first
	add  $s0, $v0, $zero
	sw   $s0, 4($sp)
	lw   $v0, 4($sp)
	lw   $s0, 8($sp)
	lw   $ra, 12($sp)
	addi $sp, $sp, 16
	jr   $ra
first:
	lw   $v0, 0($a0)
	jr   $ra
`)
	if len(a.Diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", a.Diags)
	}
	if !a.Sound() {
		t.Fatal("clean program should analyze soundly")
	}
	var stack, nonstack int
	for i := range a.Prog.Text {
		switch a.HintAt(i) {
		case prog.HintStack:
			stack++
		case prog.HintNonStack:
			nonstack++
		}
	}
	if stack == 0 || nonstack == 0 {
		t.Fatalf("want both hint kinds, got %d stack / %d nonstack", stack, nonstack)
	}
}

func TestLintSPImbalanceAndCalleeSaved(t *testing.T) {
	a := mustAnalyze(t, `
	.text
main:
	addi $sp, $sp, -8
	sw   $ra, 4($sp)
	jal  leaky
	lw   $ra, 4($sp)
	addi $sp, $sp, 8
	jr   $ra
leaky:
	addi $sp, $sp, -8
	li   $s0, 1
	jr   $ra
`)
	c := codes(a)
	if c["sp-imbalance"] != 1 || c["callee-saved"] != 1 {
		t.Fatalf("want sp-imbalance and callee-saved, got %v", a.Diags)
	}
}

func TestLintRAClobber(t *testing.T) {
	a := mustAnalyze(t, `
	.text
main:
	addi $sp, $sp, -8
	sw   $ra, 4($sp)
	jal  clobber
	lw   $ra, 4($sp)
	addi $sp, $sp, 8
	jr   $ra
clobber:
	li   $ra, 0
	jr   $ra
`)
	if codes(a)["ra-clobber"] == 0 {
		t.Fatalf("want ra-clobber, got %v", a.Diags)
	}
}

func TestLintUninitStackLoad(t *testing.T) {
	a := mustAnalyze(t, `
	.text
main:
	addi $sp, $sp, -16
	lw   $t0, 4($sp)
	addi $sp, $sp, 16
	jr   $ra
`)
	if codes(a)["uninit-stack-load"] != 1 {
		t.Fatalf("want one uninit-stack-load, got %v", a.Diags)
	}
}

func TestLintBadBaseAndUnreachable(t *testing.T) {
	a := mustAnalyze(t, `
	.text
main:
	slt  $t0, $a0, $a1
	lw   $t1, 0($t0)
	j    done
dead:
	addi $t2, $t2, 1
done:
	jr   $ra
`)
	c := codes(a)
	if c["bad-base"] != 1 || c["unreachable"] != 1 {
		t.Fatalf("want bad-base and unreachable, got %v", a.Diags)
	}
}

func TestLintBadConstantAddress(t *testing.T) {
	a := mustAnalyze(t, `
	.text
main:
	lw   $t0, 16($zero)
	jr   $ra
`)
	if codes(a)["bad-address"] != 1 {
		t.Fatalf("want bad-address, got %v", a.Diags)
	}
}

// TestEscapedFrameKeepsSaves exercises the escape path: passing &local
// to a callee must not break the convention checks (the register-save
// slots survive), and the uninit lint must go quiet.
func TestEscapedFrameKeepsSaves(t *testing.T) {
	a := mustAnalyze(t, `
	.text
main:
	addi $sp, $sp, -16
	sw   $ra, 12($sp)
	sw   $s0, 8($sp)
	addi $a0, $sp, 0       # escape a pointer to a local
	jal  store42
	lw   $t0, 0($sp)       # callee may have written it: not uninit
	lw   $s0, 8($sp)
	lw   $ra, 12($sp)
	addi $sp, $sp, 16
	jr   $ra
store42:
	li   $t0, 42
	sw   $t0, 0($a0)
	jr   $ra
`)
	if len(a.Errors()) != 0 {
		t.Fatalf("escaped frame must not trip lints, got %v", a.Diags)
	}
}

func TestValueLattice(t *testing.T) {
	lay := region.Layout{
		DataBase: prog.DataBase, HeapBase: prog.DataBase + 0x1000,
		StackFloor: prog.StackTop - prog.StackSize, StackTop: prog.StackTop,
	}
	heapAddr := lay.HeapBase + 8
	cases := []struct {
		name string
		got  Value
		want Value
	}{
		{"const⊔const small", cval(1).join(cval(2), lay), intv()},
		{"const⊔const data", cval(prog.DataBase).join(cval(prog.DataBase+4), lay), rset(region.Set(0).Add(region.Data))},
		{"sp-entry⊔heap", entry(isa.SP).join(rset(region.Set(0).Add(region.Heap)), lay),
			rset(region.Set(0).Add(region.Heap).Add(region.Stack))},
		{"int⊔regions", intv().join(rset(stackSet), lay), top()},
		{"ptr+int", addValues(rset(stackSet), intv(), lay), rset(stackSet)},
		{"ptr-ptr", subValues(rset(stackSet), rset(stackSet), lay), intv()},
		{"entry-entry", subValues(addConst(entry(isa.SP), 8, lay), entry(isa.SP), lay), cval(8)},
		{"heap const+disp", addConst(cval(heapAddr), 4, lay), cval(heapAddr + 4)},
		{"demote sp-entry", demote(addConst(entry(isa.SP), 4, lay)), rset(stackSet)},
		{"demote other entry", demote(entry(isa.RA)), top()},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
	// Join is commutative on a sample of mixed kinds.
	vals := []Value{bot(), top(), intv(), cval(3), cval(heapAddr),
		entry(isa.SP), rset(stackSet)}
	for _, x := range vals {
		for _, y := range vals {
			if x.join(y, lay) != y.join(x, lay) {
				t.Errorf("join not commutative: %v vs %v", x, y)
			}
		}
	}
}

// TestLintDeadStore: a leaf function's spill that is never reloaded is
// flagged; the slot that is reloaded is not, and neither is the
// caller's frame (calls disable the lint, since a callee reads its
// incoming arguments from below the caller's entry $sp).
func TestLintDeadStore(t *testing.T) {
	a := mustAnalyze(t, `
	.text
main:
	addi $sp, $sp, -8
	sw   $ra, 4($sp)
	jal  wastes
	lw   $ra, 4($sp)
	addi $sp, $sp, 8
	jr   $ra
wastes:
	addi $sp, $sp, -8
	li   $t0, 21
	sw   $t0, 0($sp)
	sw   $t0, 4($sp)
	lw   $t1, 0($sp)
	add  $v0, $t1, $t1
	addi $sp, $sp, 8
	jr   $ra
`)
	if codes(a)["dead-store"] != 1 {
		t.Fatalf("want exactly one dead-store, got %v", a.Diags)
	}
}

// TestLintDeadStorePrintStrSuppresses: print_str reads memory through
// $a0, so a frame buffer handed to it counts as loaded and the lint
// must stay quiet.
func TestLintDeadStorePrintStrSuppresses(t *testing.T) {
	a := mustAnalyze(t, `
	.text
main:
	addi $sp, $sp, -8
	li   $t0, 65
	sw   $t0, 0($sp)
	addi $a0, $sp, 0
	li   $v0, 4
	syscall
	addi $sp, $sp, 8
	jr   $ra
`)
	if codes(a)["dead-store"] != 0 {
		t.Fatalf("print_str must suppress dead-store, got %v", a.Diags)
	}
}
