package static

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/region"
)

// recorder carries the per-function bookkeeping of the final reporting
// pass: which frame bytes some path stores, which own-frame slots are
// loaded, and whether an untracked store could have hit the frame.
type recorder struct {
	f            *fnInfo
	stored       map[int32]bool // frame bytes (entry-$sp-relative) some store covers
	loaded       map[int32]bool // frame bytes (entry-$sp-relative) some load reads
	loads        []loadRec
	stores       []storeRec // own-frame stores, for the dead-store lint
	hasCall      bool
	unknownLoad  bool
	unknownStore bool
}

// loadRec is one load from a constant own-frame slot.
type loadRec struct {
	idx  int
	off  int32
	size int32
}

// storeRec is one store to a constant own-frame slot.
type storeRec struct {
	idx  int
	off  int32
	size int32
}

func (r *recorder) storeBytes(off int32, n int) {
	for i := 0; i < n; i++ {
		r.stored[off+int32(i)] = true
	}
}

func (r *recorder) loadBytes(off int32, n int) {
	for i := 0; i < n; i++ {
		r.loaded[off+int32(i)] = true
	}
}

func (r *recorder) covered(off, size int32) bool {
	for i := int32(0); i < size; i++ {
		if !r.stored[off+i] {
			return false
		}
	}
	return true
}

// loadedAny reports whether any byte of the slot is ever loaded.
func (r *recorder) loadedAny(off, size int32) bool {
	for i := int32(0); i < size; i++ {
		if r.loaded[off+i] {
			return true
		}
	}
	return false
}

// memRef records one load/store during the final pass: the region hint
// for the instruction, address diagnostics, and frame-slot traffic for
// the never-stored lint.
func (r *recorder) memRef(az *analyzer, idx int, in isa.Inst, addr Value) {
	set, known := addr.addrRegions(az.lay)
	var h prog.Hint
	switch {
	case !known || set == 0:
		h = prog.HintUnknown
	case set == stackSet:
		h = prog.HintStack
	case !set.Has(region.Stack):
		h = prog.HintNonStack
	default:
		h = prog.HintUnknown
	}
	az.hints[idx] = h

	if known && set == 0 {
		az.diag(idx, r.f, SevError, "bad-base",
			"memory access through a non-address value (base %s)", addr)
	}
	if addr.k == kConst && addr.c < prog.DataBase {
		az.diag(idx, r.f, SevError, "bad-address",
			"constant address %#x is below every data region", addr.c)
	}

	if addr.k == kEntry && addr.reg == isa.SP {
		size := int32(in.MemSize())
		if in.IsStore() {
			r.storeBytes(addr.off, int(size))
			if addr.off < 0 {
				// Own-frame slot: a candidate for the dead-store lint.
				// Offsets >= 0 write the caller's argument area, which
				// is caller-visible and never dead from here.
				r.stores = append(r.stores, storeRec{idx: idx, off: addr.off, size: size})
			}
		} else {
			r.loadBytes(addr.off, int(size))
			if addr.off < 0 {
				// Offsets >= 0 are incoming stack arguments the caller
				// initialized; below-entry slots must be stored locally.
				r.loads = append(r.loads, loadRec{idx: idx, off: addr.off, size: size})
			}
		}
	} else if !in.IsStore() && (!known || set.Has(region.Stack)) {
		// A load whose address the analyzer cannot keep off the stack
		// may observe any frame slot: no store can be proven dead.
		r.unknownLoad = true
	}
}

// checkReturn verifies the calling convention at a reachable `jr $ra`:
// $sp restored, $ra intact, every callee-saved register holding its
// entry value.
func (az *analyzer) checkReturn(f *fnInfo, st *state, idx int) {
	sp := st.regs[isa.SP]
	if !(sp.k == kEntry && sp.reg == isa.SP && sp.off == 0) {
		az.diag(idx, f, SevError, "sp-imbalance",
			"function %s returns with $sp = %s, not its entry $sp", f.name, sp)
	}
	ra := st.regs[isa.RA]
	if !(ra.k == kEntry && ra.reg == isa.RA && ra.off == 0) {
		az.diag(idx, f, SevError, "ra-clobber",
			"function %s returns through a clobbered $ra (%s)", f.name, ra)
	}
	for _, r := range calleeSaved {
		if st.regs[r] != f.entrySt.regs[r] {
			az.diag(idx, f, SevError, "callee-saved",
				"function %s returns with callee-saved %v = %s, entry value not preserved",
				f.name, r, st.regs[r])
		}
	}
}

// finalize replays every analyzed function at its fixed point to emit
// hints and diagnostics, then runs the whole-function lints.
func (az *analyzer) finalize() {
	for _, f := range az.funcs {
		if f.entrySt == nil || f.in == nil {
			continue // never called: dead code, no claims either way
		}
		rec := &recorder{f: f, stored: map[int32]bool{}, loaded: map[int32]bool{}}
		reach := f.structReach()
		for bid, b := range f.blocks {
			if f.in[bid] == nil {
				// Structurally unlinked blocks are dead code;
				// semantically dead ones (e.g. an epilogue after an
				// exit syscall) are not worth a diagnostic.
				if !reach[bid] && !f.imprecise {
					az.diag(b.start, f, SevError, "unreachable",
						"unreachable code in function %s", f.name)
				}
				continue
			}
			st := f.in[bid].clone()
			az.execBlock(f, b, st, rec)
		}
		if f.imprecise {
			az.diag(f.entryIdx, f, SevNote, "imprecise",
				"function %s has control flow the analyzer cannot follow; hints suppressed", f.name)
		}
		if !rec.unknownStore && !f.escaped && !f.imprecise {
			for _, ld := range rec.loads {
				if !rec.covered(ld.off, ld.size) {
					az.diag(ld.idx, f, SevError, "uninit-stack-load",
						"function %s loads stack slot %d(entry $sp) that no store covers", f.name, ld.off)
				}
			}
		}
		// Dead-store lint: an own-frame slot stored but never loaded
		// anywhere in the function. Sound only for leaf functions with
		// fully tracked memory traffic — a callee reads its incoming
		// arguments from below the caller's entry $sp, and any escaped
		// or untracked access could observe the slot.
		if !rec.hasCall && !rec.unknownLoad && !rec.unknownStore &&
			!f.escaped && !f.imprecise {
			for _, sr := range rec.stores {
				if !rec.loadedAny(sr.off, sr.size) {
					az.diag(sr.idx, f, SevError, "dead-store",
						"function %s stores stack slot %d(entry $sp) that is never loaded before return", f.name, sr.off)
				}
			}
		}
	}
	sort.SliceStable(az.diags, func(i, j int) bool { return az.diags[i].Index < az.diags[j].Index })
}

// structReach computes block reachability over the recovered CFG edges
// alone, ignoring abstract semantics, so that code made dead by an exit
// call is not reported as unreachable.
func (f *fnInfo) structReach() []bool {
	reach := make([]bool, len(f.blocks))
	wl := []int{0}
	reach[0] = true
	for len(wl) > 0 {
		bid := wl[0]
		wl = wl[1:]
		for _, s := range f.blocks[bid].succ {
			if !reach[s] {
				reach[s] = true
				wl = append(wl, s)
			}
		}
	}
	return reach
}

func (az *analyzer) diag(idx int, f *fnInfo, sev Severity, code, format string, args ...any) {
	az.diags = append(az.diags, Diag{
		Index: idx,
		Pos:   az.p.PosAt(idx),
		Fn:    f.name,
		Sev:   sev,
		Code:  code,
		Msg:   fmt.Sprintf(format, args...),
	})
}
