package static

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// termKind describes how a basic block hands off control.
type termKind uint8

const (
	termFall    termKind = iota // falls into the next block
	termBranch                  // conditional branch: target + fall-through
	termJump                    // unconditional j: target only
	termCall                    // jal/jalr: fall-through if the callee returns
	termRet                     // jr $ra
	termJR                      // jr through a non-$ra register: opaque
	termSyscall                 // syscall: falls through unless it is exit
	termEnd                     // runs off the function's last instruction
)

// block is one basic block of a recovered intra-function CFG.
// Instruction indices are global (into prog.Program.Text).
type block struct {
	start, end int   // [start, end)
	succ       []int // intra-function successor block ids
	term       termKind
	target     int // jal/jalr: callee entry index (-1 when unknown)
}

// fnInfo is one discovered function: its extent, CFG, the
// interprocedural summary the fixed point iterates on, and the entry
// state joined over all call sites.
type fnInfo struct {
	entryIdx int
	endIdx   int // exclusive
	name     string

	blocks  []*block
	blockAt map[int]int // leader instruction index -> block id

	callers map[*fnInfo]bool

	// Joined entry state (nil until the function is first called).
	entrySt *state

	// Summary fields, all monotone over the fixed point.
	returns          bool  // a reachable `jr $ra` exists
	exitV0           Value // join of demoted $v0 at return sites
	maxIncomingWrite int32 // bytes the function stores above its entry $sp
	writesCaller     bool  // stores through (or leaks) the incoming $fp
	escaped          bool  // a pointer into this function's frame escaped
	imprecise        bool  // control flow the analyzer cannot follow

	// Fixed-point block input states, indexed by block id.
	in []*state
}

// summarySig captures the caller-visible summary for change detection.
type summarySig struct {
	returns      bool
	exitV0       Value
	incoming     int32
	writesCaller bool
}

func (f *fnInfo) sig() summarySig {
	return summarySig{f.returns, f.exitV0, f.maxIncomingWrite, f.writesCaller}
}

// jumpTargetIdx resolves a J/JAL instruction's absolute word target to
// an instruction index (ok=false when outside the text segment).
func jumpTargetIdx(p *prog.Program, in isa.Inst) (int, bool) {
	addr := uint32(in.Imm) * isa.InstBytes
	return p.PC2Index(addr)
}

// discoverFuncs partitions the text segment into functions: boundaries
// are the program entry plus every JAL target. Extents run to the next
// boundary (minicc emits functions contiguously; a jump crossing an
// extent is handled conservatively during analysis).
func discoverFuncs(p *prog.Program) []*fnInfo {
	entryIdx, _ := p.PC2Index(p.Entry)
	starts := map[int]bool{entryIdx: true}
	for _, in := range p.Text {
		if in.Op == isa.OpJAL {
			if t, ok := jumpTargetIdx(p, in); ok {
				starts[t] = true
			}
		}
	}
	var sorted []int
	for s := range starts {
		sorted = append(sorted, s)
	}
	sort.Ints(sorted)

	names := fnNames(p)
	funcs := make([]*fnInfo, len(sorted))
	for i, s := range sorted {
		end := len(p.Text)
		if i+1 < len(sorted) {
			end = sorted[i+1]
		}
		f := &fnInfo{entryIdx: s, endIdx: end, callers: map[*fnInfo]bool{}}
		if n, ok := names[s]; ok {
			f.name = n
		} else {
			f.name = fmt.Sprintf("func@%#x", p.Index2PC(s))
		}
		buildBlocks(p, f)
		funcs[i] = f
	}
	return funcs
}

// fnNames maps instruction indices to the best symbol defined there
// (preferring non-local, non-".L" names).
func fnNames(p *prog.Program) map[int]string {
	names := make(map[int]string)
	for _, s := range p.Syms {
		i, ok := p.PC2Index(s.Addr)
		if !ok {
			continue
		}
		cur, have := names[i]
		if !have || (strings.HasPrefix(cur, ".") && !strings.HasPrefix(s.Name, ".")) {
			names[i] = s.Name
		}
	}
	return names
}

// buildBlocks recovers f's basic blocks from branch and jump targets.
func buildBlocks(p *prog.Program, f *fnInfo) {
	lo, hi := f.entryIdx, f.endIdx
	leaders := map[int]bool{lo: true}
	mark := func(i int) {
		if i > lo && i < hi {
			leaders[i] = true
		}
	}
	for i := lo; i < hi; i++ {
		in := p.Text[i]
		switch in.Classify() {
		case isa.ClassBranch:
			mark(i + 1 + int(in.Imm))
			mark(i + 1)
		case isa.ClassJump:
			if in.Op == isa.OpJ {
				if t, ok := jumpTargetIdx(p, in); ok {
					mark(t)
				}
			}
			mark(i + 1)
		case isa.ClassCall, isa.ClassReturn, isa.ClassSyscall:
			mark(i + 1)
		}
	}
	var starts []int
	for l := range leaders {
		starts = append(starts, l)
	}
	sort.Ints(starts)

	f.blockAt = make(map[int]int, len(starts))
	for bi, s := range starts {
		end := hi
		if bi+1 < len(starts) {
			end = starts[bi+1]
		}
		b := &block{start: s, end: end, target: -1}
		f.blockAt[s] = bi
		f.blocks = append(f.blocks, b)
	}
	for _, b := range f.blocks {
		f.classifyTerm(p, b)
	}
}

// classifyTerm sets a block's terminator kind and successors.
func (f *fnInfo) classifyTerm(p *prog.Program, b *block) {
	lo, hi := f.entryIdx, f.endIdx
	last := b.end - 1
	in := p.Text[last]

	intra := func(i int) (int, bool) {
		if i < lo || i >= hi {
			return 0, false
		}
		bi, ok := f.blockAt[i]
		return bi, ok
	}
	addSucc := func(i int) {
		if bi, ok := intra(i); ok {
			b.succ = append(b.succ, bi)
		} else {
			// A control edge out of the extent: nothing the analyzer
			// can follow.
			f.imprecise = true
		}
	}

	switch in.Classify() {
	case isa.ClassBranch:
		b.term = termBranch
		addSucc(last + 1 + int(in.Imm))
		addSucc(last + 1)
	case isa.ClassJump:
		if in.Op == isa.OpJ {
			b.term = termJump
			if t, ok := jumpTargetIdx(p, in); ok {
				addSucc(t)
			} else {
				f.imprecise = true
			}
		} else { // jr through a non-$ra register
			b.term = termJR
			f.imprecise = true
		}
	case isa.ClassCall:
		b.term = termCall
		if in.Op == isa.OpJAL {
			if t, ok := jumpTargetIdx(p, in); ok {
				b.target = t
			}
		}
		addSucc(last + 1)
	case isa.ClassReturn:
		b.term = termRet
	case isa.ClassSyscall:
		b.term = termSyscall
		addSucc(last + 1)
	default:
		if b.end == hi {
			b.term = termEnd
		} else {
			b.term = termFall
			addSucc(last + 1)
		}
	}
}
