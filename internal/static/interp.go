package static

import (
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/region"
)

// state is the abstract machine state at one program point: a lattice
// value per register plus the tracked stack slots of the current frame.
// Slots are keyed by byte offset from the function's entry $sp and hold
// the value of the aligned word stored there; absence means "unknown".
type state struct {
	regs  [isa.NumRegs]Value
	slots map[int32]Value
}

func (s *state) clone() *state {
	c := &state{regs: s.regs}
	if len(s.slots) > 0 {
		c.slots = make(map[int32]Value, len(s.slots))
		for k, v := range s.slots {
			c.slots[k] = v
		}
	}
	return c
}

// joinState folds o into s (registers pointwise, slots by
// intersect-and-join) and reports whether s changed.
func (s *state) joinState(o *state, lay region.Layout) bool {
	changed := false
	for i := range s.regs {
		j := s.regs[i].join(o.regs[i], lay)
		if j != s.regs[i] {
			s.regs[i] = j
			changed = true
		}
	}
	for k, v := range s.slots {
		ov, ok := o.slots[k]
		if !ok {
			delete(s.slots, k)
			changed = true
			continue
		}
		j := v.join(ov, lay)
		if j != v {
			s.slots[k] = j
			changed = true
		}
	}
	return changed
}

func (s *state) setSlot(off int32, v Value) {
	if s.slots == nil {
		s.slots = make(map[int32]Value)
	}
	s.slots[off] = v
}

// dropSlotRange forgets every tracked word overlapping [lo, hi).
func (s *state) dropSlotRange(lo, hi int32) {
	for k := range s.slots {
		if k < hi && k+4 > lo {
			delete(s.slots, k)
		}
	}
}

func (s *state) clearSlots() { s.slots = nil }

// dropEscapedSlots forgets every slot that could alias an escaped
// local, keeping only the convention-save slots (those holding
// symbolic entry values, written by the prologue). DESIGN.md documents
// the assumption this encodes: writes through an escaped frame pointer
// stay within the escaped object and never smash the register-save
// area — the soundness test validates it on every workload.
func (s *state) dropEscapedSlots() {
	for k, v := range s.slots {
		if v.k != kEntry {
			delete(s.slots, k)
		}
	}
}

// calleeSaved lists the registers the RISA calling convention requires
// a function to preserve ($v1 joins the s-pool because minicc allocates
// it as one; $gp and $fp are convention-preserved too).
var calleeSaved = []isa.Register{
	isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7,
	isa.K0, isa.K1, isa.V1, isa.GP, isa.FP,
}

// callerClobbered lists the registers a call may freely trash.
var callerClobbered = []isa.Register{
	isa.AT, isa.V0,
	isa.A0, isa.A1, isa.A2, isa.A3,
	isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6, isa.T7,
	isa.T8, isa.T9,
}

// analyzer drives the interprocedural fixed point over the recovered
// functions and records the hints and diagnostics its consumers read.
type analyzer struct {
	p   *prog.Program
	lay region.Layout

	funcs []*fnInfo
	fnAt  map[int]*fnInfo // entry instruction index -> function

	queue   []*fnInfo
	inQueue map[*fnInfo]bool

	hints []prog.Hint
	diags []Diag
}

func newAnalyzer(p *prog.Program) *analyzer {
	az := &analyzer{
		p:       p,
		lay:     p.InitialLayout(),
		funcs:   discoverFuncs(p),
		fnAt:    make(map[int]*fnInfo),
		inQueue: make(map[*fnInfo]bool),
		hints:   make([]prog.Hint, len(p.Text)),
	}
	for _, f := range az.funcs {
		az.fnAt[f.entryIdx] = f
	}
	// Call graph edges (jal only; jalr callees are unknown).
	for _, f := range az.funcs {
		for _, b := range f.blocks {
			if b.term == termCall && b.target >= 0 {
				if callee := az.fnAt[b.target]; callee != nil {
					callee.callers[f] = true
				}
			}
		}
	}
	return az
}

// baseEntry is the callee-side entry state shared by every call site:
// convention-preserved registers are symbolic entry values, everything
// a caller may pass or trash starts at ⊤, and the caller fills in $gp
// and $a0-$a3.
func baseEntry() *state {
	st := &state{}
	for i := range st.regs {
		st.regs[i] = top()
	}
	st.regs[isa.Zero] = cval(0)
	st.regs[isa.SP] = entry(isa.SP)
	st.regs[isa.RA] = entry(isa.RA)
	for _, r := range calleeSaved { // includes $fp and $gp
		st.regs[r] = entry(r)
	}
	return st
}

func (az *analyzer) enqueue(f *fnInfo) {
	if f == nil || az.inQueue[f] {
		return
	}
	az.inQueue[f] = true
	az.queue = append(az.queue, f)
}

// run iterates the interprocedural worklist to a fixed point. The step
// cap is a defensive bound only: the lattice has finite height, so the
// monotone fixed point terminates long before it; if it ever trips, the
// whole program is marked imprecise (no hints) rather than wrong.
func (az *analyzer) run() {
	entryIdx, ok := az.p.PC2Index(az.p.Entry)
	if !ok {
		return
	}
	main := az.fnAt[entryIdx]
	if main == nil {
		return
	}
	st := baseEntry()
	st.regs[isa.GP] = cval(prog.GPValue)
	main.entrySt = st
	az.enqueue(main)

	maxSteps := 1000 + 500*len(az.funcs)
	for steps := 0; len(az.queue) > 0; steps++ {
		if steps > maxSteps {
			for _, f := range az.funcs {
				f.imprecise = true
			}
			return
		}
		f := az.queue[0]
		az.queue = az.queue[1:]
		az.inQueue[f] = false
		if f.entrySt == nil {
			continue // a summary change woke a caller never itself reached
		}
		before := f.sig()
		az.analyzeFn(f)
		if f.sig() != before {
			for caller := range f.callers {
				az.enqueue(caller)
			}
		}
	}
}

// analyzeFn runs f's intra-function block worklist to a fixed point,
// restarting once if the frame-escape flag flips mid-analysis (escape
// weakens the transfer functions, so states computed before the flip
// are stale).
func (az *analyzer) analyzeFn(f *fnInfo) {
	for {
		escBefore := f.escaped
		f.in = make([]*state, len(f.blocks))
		f.in[0] = f.entrySt.clone()
		wl := []int{0}
		inWL := map[int]bool{0: true}
		for len(wl) > 0 {
			bid := wl[0]
			wl = wl[1:]
			inWL[bid] = false
			st := f.in[bid].clone()
			out, flows := az.execBlock(f, f.blocks[bid], st, nil)
			if !flows {
				continue
			}
			for _, succ := range f.blocks[bid].succ {
				if f.in[succ] == nil {
					f.in[succ] = out.clone()
				} else if !f.in[succ].joinState(out, az.lay) {
					continue
				}
				if !inWL[succ] {
					inWL[succ] = true
					wl = append(wl, succ)
				}
			}
		}
		if f.escaped == escBefore {
			return
		}
	}
}

// execBlock abstractly executes one block from st, mutating st in
// place. It reports whether control continues to b.succ. A non-nil rec
// switches on the diagnostic/hint recording done by the final pass.
func (az *analyzer) execBlock(f *fnInfo, b *block, st *state, rec *recorder) (*state, bool) {
	last := b.end - 1
	for i := b.start; i < last; i++ {
		az.stepInst(f, st, i, rec)
	}
	switch b.term {
	case termFall, termEnd:
		az.stepInst(f, st, last, rec)
		if b.term == termEnd {
			f.imprecise = true
			if rec != nil {
				az.diag(last, f, SevError, "fall-off-end",
					"control falls off the end of function %s", f.name)
			}
			return st, false
		}
		return st, true
	case termBranch, termJump:
		// Branches and j write no registers.
		return st, true
	case termRet:
		f.returns = true
		f.exitV0 = f.exitV0.join(demote(st.regs[isa.V0]), az.lay)
		if rec != nil {
			az.checkReturn(f, st, last)
		}
		return st, false
	case termJR:
		// Indirect jump: nothing downstream of it can be trusted.
		f.imprecise = true
		return st, false
	case termSyscall:
		return st, az.execSyscall(st, rec)
	case termCall:
		return st, az.execCall(f, st, b, last, rec)
	}
	return st, true
}

// execSyscall models the kernel interface: only $v0 is ever written,
// sbrk returns a heap pointer, exit stops the program.
func (az *analyzer) execSyscall(st *state, rec *recorder) bool {
	code := st.regs[isa.V0]
	if code.k != kConst {
		st.regs[isa.V0] = top()
		if rec != nil {
			// The syscall number is unknown, so it may be print_str
			// reading through $a0: assume the frame was observed.
			rec.unknownLoad = true
		}
		return true
	}
	switch code.c {
	case 4:
		// print_str reads memory at $a0; unless the analyzer can keep
		// that buffer off the stack, it may observe any frame slot.
		if rec != nil {
			a0 := st.regs[isa.A0]
			if set, known := a0.addrRegions(az.lay); !known || set.Has(region.Stack) {
				rec.unknownLoad = true
			}
		}
		return true
	case 1, 2, 11: // prints: $v0 preserved
		return true
	case 9: // sbrk: old break, always a heap address
		st.regs[isa.V0] = rset(region.Set(0).Add(region.Heap))
		return true
	case 10: // exit
		return false
	default: // the VM faults
		return false
	}
}

// execCall models a jal/jalr at instruction index `last`: propagate an
// entry-state contribution to the callee, then apply the calling
// convention to the caller-side state.
func (az *analyzer) execCall(f *fnInfo, st *state, b *block, last int, rec *recorder) bool {
	if rec != nil {
		// Any call disables the dead-store lint for this function: the
		// callee legitimately reads its incoming arguments from below
		// the caller's entry $sp.
		rec.hasCall = true
	}
	var callee *fnInfo
	if b.target >= 0 {
		callee = az.fnAt[b.target]
	}

	// Passing a pointer into the current (or the caller's) frame lets
	// the callee write through it behind the slot tracking's back.
	for r := isa.A0; r <= isa.A3; r++ {
		v := st.regs[r]
		if v.k == kEntry {
			if v.reg == isa.SP {
				f.escaped = true
			}
			if v.reg == isa.FP {
				f.writesCaller = true
			}
		}
	}

	if callee != nil && rec == nil {
		az.contribute(f, st, callee)
	}

	spOff, spKnown := int32(0), false
	if v := st.regs[isa.SP]; v.k == kEntry && v.reg == isa.SP {
		spOff, spKnown = v.off, true
	}

	for _, r := range callerClobbered {
		st.regs[r] = top()
	}
	st.regs[isa.RA] = cval(az.p.Index2PC(last) + isa.InstBytes)

	if callee == nil {
		// jalr: unknown callee, assume the worst on both sides.
		f.escaped = true
		f.imprecise = true
		st.clearSlots()
		if rec != nil {
			rec.unknownStore = true
		}
		return true
	}

	if callee.returns {
		st.regs[isa.V0] = callee.exitV0
	} else {
		st.regs[isa.V0] = bot()
	}
	if callee.writesCaller {
		// The callee writes through its incoming $fp — our frame.
		f.escaped = true
	}
	if f.escaped || !spKnown {
		st.dropEscapedSlots()
		if rec != nil {
			rec.unknownStore = true
		}
	} else if callee.maxIncomingWrite > 0 {
		// The callee stores to its incoming stack arguments, which sit
		// just above the call-site $sp in our frame.
		st.dropSlotRange(spOff, spOff+callee.maxIncomingWrite)
		if rec != nil {
			rec.storeBytes(spOff, int(callee.maxIncomingWrite))
		}
	}
	return callee.returns
}

// contribute joins this call site's argument state into the callee's
// entry state and queues the callee if it changed.
func (az *analyzer) contribute(f *fnInfo, st *state, callee *fnInfo) {
	e := baseEntry()
	e.regs[isa.GP] = demote(st.regs[isa.GP])
	for r := isa.A0; r <= isa.A3; r++ {
		e.regs[r] = demote(st.regs[r])
	}
	if callee.entrySt == nil {
		callee.entrySt = e
		az.enqueue(callee)
	} else if callee.entrySt.joinState(e, az.lay) {
		az.enqueue(callee)
	}
}

// stepInst is the transfer function for one non-terminator instruction
// (plus termFall/termEnd block tails, which are ordinary instructions).
func (az *analyzer) stepInst(f *fnInfo, st *state, idx int, rec *recorder) {
	in := az.p.Text[idx]
	lay := az.lay
	get := func(r isa.Register) Value {
		if r == isa.Zero {
			return cval(0)
		}
		return st.regs[r]
	}
	set := func(r isa.Register, v Value) {
		if r != isa.Zero {
			st.regs[r] = v
		}
	}

	if in.IsMem() {
		az.stepMem(f, st, idx, in, rec)
		return
	}

	switch in.Op {
	case isa.OpNop, isa.OpSYSCALL:
		// Non-terminator syscalls do not occur (every syscall ends its
		// block); nops do nothing.

	case isa.OpReg:
		vs, vt := get(in.Rs), get(in.Rt)
		var v Value
		switch in.Funct {
		case isa.FnADD:
			v = addValues(vs, vt, lay)
		case isa.FnSUB:
			v = subValues(vs, vt, lay)
		case isa.FnAND:
			v = bitwise(vs, vt, func(a, b uint32) uint32 { return a & b })
		case isa.FnOR:
			v = bitwise(vs, vt, func(a, b uint32) uint32 { return a | b })
		case isa.FnXOR:
			v = bitwise(vs, vt, func(a, b uint32) uint32 { return a ^ b })
		case isa.FnNOR:
			v = bitwise(vs, vt, func(a, b uint32) uint32 { return ^(a | b) })
		case isa.FnSLL:
			v = shiftReg(vs, vt, func(a, s uint32) uint32 { return a << s })
		case isa.FnSRL:
			v = shiftReg(vs, vt, func(a, s uint32) uint32 { return a >> s })
		case isa.FnSRA:
			v = shiftReg(vs, vt, func(a, s uint32) uint32 { return uint32(int32(a) >> s) })
		case isa.FnMUL:
			v = bitwise(vs, vt, func(a, b uint32) uint32 { return uint32(int32(a) * int32(b)) })
		case isa.FnMULH:
			v = bitwise(vs, vt, func(a, b uint32) uint32 {
				return uint32((int64(int32(a)) * int64(int32(b))) >> 32)
			})
		case isa.FnDIV, isa.FnREM:
			// Folding would have to model the divide-by-zero fault;
			// results are integers either way.
			v = intv()
		case isa.FnSLT:
			v = bitwise(vs, vt, func(a, b uint32) uint32 {
				if int32(a) < int32(b) {
					return 1
				}
				return 0
			})
		case isa.FnSLTU:
			v = bitwise(vs, vt, func(a, b uint32) uint32 {
				if a < b {
					return 1
				}
				return 0
			})
		default:
			v = top()
		}
		set(in.Rd, v)

	case isa.OpADDI:
		set(in.Rd, addConst(get(in.Rs), uint32(in.Imm), lay))
	case isa.OpANDI:
		v := get(in.Rs)
		if v.k == kConst {
			set(in.Rd, cval(v.c&uint32(uint16(in.Imm))))
		} else {
			// Masked to 16 bits: always a small integer.
			set(in.Rd, intv())
		}
	case isa.OpORI, isa.OpXORI:
		v := get(in.Rs)
		m := uint32(uint16(in.Imm))
		switch {
		case v.k == kConst && in.Op == isa.OpORI:
			set(in.Rd, cval(v.c|m))
		case v.k == kConst:
			set(in.Rd, cval(v.c^m))
		default:
			set(in.Rd, intOrTop(v))
		}
	case isa.OpSLTI:
		set(in.Rd, intv())
	case isa.OpLUI:
		set(in.Rd, cval(uint32(in.Imm)<<16))
	case isa.OpSLLI, isa.OpSRLI, isa.OpSRAI:
		v := get(in.Rs)
		sh := uint32(in.Imm) & 31
		if sh == 0 {
			set(in.Rd, v)
			break
		}
		if v.k == kConst {
			switch in.Op {
			case isa.OpSLLI:
				set(in.Rd, cval(v.c<<sh))
			case isa.OpSRLI:
				set(in.Rd, cval(v.c>>sh))
			default:
				set(in.Rd, cval(uint32(int32(v.c)>>sh)))
			}
			break
		}
		set(in.Rd, intOrTop(v))

	case isa.OpJAL, isa.OpJALR:
		// Handled by execCall; a call always terminates its block.

	case isa.OpFP:
		// FP register file is untracked; the cross-file moves and
		// compares that write an integer register produce integers
		// (float bits are never region pointers).
		if rd, ok := in.Dest(); ok {
			set(rd, intv())
		}

	default:
		if rd, ok := in.Dest(); ok {
			set(rd, top())
		}
	}
}

// stepMem is the transfer function for loads and stores: compute the
// abstract address, track frame slots, raise the escape flags, and (in
// recording mode) emit the hint and address diagnostics.
func (az *analyzer) stepMem(f *fnInfo, st *state, idx int, in isa.Inst, rec *recorder) {
	base := st.regs[in.Rs]
	if in.Rs == isa.Zero {
		base = cval(0)
	}
	addr := addConst(base, uint32(in.Imm), az.lay)
	size := int32(in.MemSize())

	if rec != nil {
		rec.memRef(az, idx, in, addr)
	}

	if in.IsStore() {
		sv := intv() // swc1: float bits
		if in.Op == isa.OpSB || in.Op == isa.OpSH || in.Op == isa.OpSW {
			if in.Rd == isa.Zero {
				sv = cval(0)
			} else {
				sv = st.regs[in.Rd]
			}
		}
		if sv.k == kEntry {
			if sv.reg == isa.SP {
				f.escaped = true
			}
			if sv.reg == isa.FP {
				f.writesCaller = true
			}
		}
		if addr.k == kEntry && addr.reg == isa.SP {
			key := addr.off
			st.dropSlotRange(key, key+size)
			if size == 4 && key%4 == 0 {
				st.setSlot(key, sv)
			}
			if key >= 0 && key+size > f.maxIncomingWrite {
				f.maxIncomingWrite = key + size
			}
			return
		}
		if addr.k == kEntry && addr.reg == isa.FP {
			// A store relative to the caller's frame pointer.
			f.writesCaller = true
		}
		regs, known := addr.addrRegions(az.lay)
		if !known || regs.Has(region.Stack) {
			// May alias the current frame's locals.
			st.dropEscapedSlots()
			if rec != nil {
				rec.unknownStore = true
			}
		}
		return
	}

	// Loads: only aligned word loads from tracked slots are precise.
	var v Value
	switch in.Op {
	case isa.OpLW:
		v = top()
		if addr.k == kEntry && addr.reg == isa.SP && addr.off%4 == 0 {
			if sv, ok := st.slots[addr.off]; ok {
				v = sv
			}
		}
	case isa.OpLWC1:
		return // FP destination, untracked
	default:
		v = intv() // byte/half loads zero- or sign-extend: small integers
	}
	if in.Rd != isa.Zero {
		st.regs[in.Rd] = v
	}
}

// bitwise folds constant operands and otherwise yields a plain integer
// (bitwise/multiply results are never used as region pointers — the
// "integer results" assumption DESIGN.md documents).
func bitwise(a, b Value, op func(x, y uint32) uint32) Value {
	if a.k == kConst && b.k == kConst {
		return cval(op(a.c, b.c))
	}
	if a.k == kBottom || b.k == kBottom {
		return bot()
	}
	return intv()
}

// shiftReg models a register-amount shift: the VM masks the amount to 5
// bits, so a constant 0 amount is the identity.
func shiftReg(a, amt Value, op func(x, s uint32) uint32) Value {
	if amt.k == kConst {
		s := amt.c & 31
		if s == 0 {
			return a
		}
		if a.k == kConst {
			return cval(op(a.c, s))
		}
	}
	return intOrTop(a)
}

// intOrTop keeps the integer claim when the operand was a known
// integer/constant and gives up otherwise (shifted or masked pointers
// are no longer pointers the analyzer can reason about).
func intOrTop(v Value) Value {
	switch v.k {
	case kBottom:
		return bot()
	case kConst, kInt:
		return intv()
	}
	return top()
}
