package experiments

import (
	"strings"
	"testing"
)

func TestStaticHintStudy(t *testing.T) {
	r := quickRunner(t, "compress", "li")
	rows, err := r.StaticHintStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Disagreements != 0 {
			t.Errorf("%s: %d binary hints contradicted the dynamic region", row.Name, row.Disagreements)
		}
		if row.AnalyzerErrs != 0 {
			t.Errorf("%s: analyzer raised %d errors on compiled code", row.Name, row.AnalyzerErrs)
		}
		if row.BinaryCoveredPct <= 0 {
			t.Errorf("%s: binary hints covered nothing", row.Name)
		}
		if row.BinaryAccPct != 100 {
			t.Errorf("%s: fired binary hints %.3f%% accurate, want 100%%", row.Name, row.BinaryAccPct)
		}
		// A sound hint source can only help the hybrid predictor.
		if row.AccuracyPct[HintsBinary] < row.AccuracyPct[HintsOff]-0.01 {
			t.Errorf("%s: binary hints made the classifier worse: %.3f vs %.3f",
				row.Name, row.AccuracyPct[HintsBinary], row.AccuracyPct[HintsOff])
		}
	}
	out := RenderStaticHints(rows)
	for _, want := range []string{"E14", "binary", "129.compress", "130.li"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
