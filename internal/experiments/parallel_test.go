package experiments

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cpu"
	"repro/internal/workload"
)

// countingWorkload wraps an existing workload's source under a fresh
// name (dodging the package-level compile cache) so the test can count
// how many times the Runner actually compiles it.
func countingWorkload(t *testing.T, base, name string, compiles *atomic.Int32) *workload.Workload {
	t.Helper()
	bw, ok := workload.ByName(base)
	if !ok {
		t.Fatalf("unknown base workload %q", base)
	}
	return &workload.Workload{
		Name:         name,
		Short:        name,
		DefaultScale: bw.DefaultScale,
		Source: func(scale int) string {
			compiles.Add(1)
			return bw.Source(scale)
		},
	}
}

// TestRunnerMemosSingleFlight hammers Program/Profile/Trace from many
// goroutines and asserts the workload compiles exactly once and every
// caller observes the identical memoized objects.
func TestRunnerMemosSingleFlight(t *testing.T) {
	var compiles atomic.Int32
	w := countingWorkload(t, "compress", "test.memo-singleflight", &compiles)
	r := NewRunner()
	r.Workloads = []*workload.Workload{w}
	r.MaxInsts = 50_000

	const callers = 16
	programs := make([]any, callers)
	profiles := make([]any, callers)
	traces := make([]any, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := r.Program(w)
			if err != nil {
				t.Errorf("Program: %v", err)
				return
			}
			pr, err := r.Profile(w)
			if err != nil {
				t.Errorf("Profile: %v", err)
				return
			}
			tr, err := r.Trace(w)
			if err != nil {
				t.Errorf("Trace: %v", err)
				return
			}
			programs[i], profiles[i], traces[i] = p, pr, tr
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if n := compiles.Load(); n != 1 {
		t.Errorf("workload compiled %d times, want exactly 1", n)
	}
	for i := 1; i < callers; i++ {
		if programs[i] != programs[0] {
			t.Errorf("caller %d got a different *prog.Program", i)
		}
		if profiles[i] != profiles[0] {
			t.Errorf("caller %d got a different *profile.Profile", i)
		}
		if traces[i] != traces[0] {
			t.Errorf("caller %d got a different *cpu.Trace", i)
		}
	}
}

// TestParallelMatchesSerial asserts the parallel harness renders
// byte-identical tables to the serial one, across the profiling,
// prediction and timing drivers.
func TestParallelMatchesSerial(t *testing.T) {
	configs := []cpu.Config{cpu.Conventional(2, 2), cpu.Decoupled(3, 3)}
	render := func(parallel int) string {
		r := quickRunner(t, "compress", "li", "vortex")
		r.Parallel = parallel
		var b strings.Builder
		t1, err := r.Table1()
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(RenderTable1(t1))
		study, err := r.RunPredictorStudy()
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(RenderFigure4(study.Figure4))
		b.WriteString(RenderTable3(study.Table3))
		ctx, err := r.ContextSweep([]int{0, 8}, []int{0, 8})
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(RenderContextSweep(ctx))
		f8, err := r.FigureWithConfigs(configs)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(RenderFigure8(f8, configs))
		pen, err := r.PenaltySweep([]int{1, 8})
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(RenderPenaltySweep(pen))
		return b.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("parallel output differs from serial output\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestTraceAndBaselineReuse asserts a report-style sequence builds each
// trace once and that the penalty sweep rides entirely on simulation
// results Figure 8 already memoized.
func TestTraceAndBaselineReuse(t *testing.T) {
	r := quickRunner(t, "compress", "li")
	r.Parallel = 4
	configs := []cpu.Config{cpu.Conventional(2, 2), cpu.Decoupled(3, 3)}
	if _, err := r.FigureWithConfigs(configs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FastForwardAblation(); err != nil {
		t.Fatal(err)
	}
	if got, want := r.traces.len(), len(r.Workloads); got != want {
		t.Errorf("trace memo holds %d entries after Figure8+ffwd, want %d (one per workload)", got, want)
	}
	sims := r.results.len()
	if want := len(r.Workloads) * len(configs); sims != want {
		t.Errorf("result memo holds %d entries after Figure8, want %d", sims, want)
	}
	// Penalty 1 is Decoupled(3,3)'s default, and the (2+0) baseline is
	// configs[0]: the sweep must not trigger a single new simulation.
	if _, err := r.PenaltySweep([]int{1}); err != nil {
		t.Fatal(err)
	}
	if got := r.results.len(); got != sims {
		t.Errorf("penalty sweep added %d simulations, want 0 (baseline and (3+3) memoized)", got-sims)
	}
	if got, want := r.traces.len(), len(r.Workloads); got != want {
		t.Errorf("trace memo holds %d entries after penalty sweep, want %d", got, want)
	}
}

// TestSteeringReusesMemoTrace asserts the steering ablation pulls the
// PolicyARPT trace from the Runner memo rather than rebuilding it.
func TestSteeringReusesMemoTrace(t *testing.T) {
	r := quickRunner(t, "compress")
	r.MaxInsts = 100_000
	if _, err := r.SteeringPolicies(); err != nil {
		t.Fatal(err)
	}
	if got := r.traces.len(); got != 1 {
		t.Errorf("trace memo holds %d entries, want 1", got)
	}
}

// TestFigure8AverageComplete guards the Figure8Average bugfix: the
// average row must carry an initialized Mispredicts map, averaged
// mispredict counts, and the averaged (3+3) LVC hit rate.
func TestFigure8AverageComplete(t *testing.T) {
	configs := []cpu.Config{cpu.Conventional(2, 2), cpu.Decoupled(3, 3)}
	rows := []Figure8Row{
		{
			Name:        "a",
			Speedup:     map[string]float64{"(2+0)": 1, "(3+3)": 1.5},
			IPC:         map[string]float64{"(2+0)": 2, "(3+3)": 3},
			Mispredicts: map[string]uint64{"(2+0)": 0, "(3+3)": 100},
			LVCHitRate:  0.998,
		},
		{
			Name:        "b",
			Speedup:     map[string]float64{"(2+0)": 1, "(3+3)": 1.3},
			IPC:         map[string]float64{"(2+0)": 2, "(3+3)": 2.6},
			Mispredicts: map[string]uint64{"(2+0)": 0, "(3+3)": 300},
			LVCHitRate:  1.0,
		},
	}
	avg := Figure8Average(rows, configs)
	if avg.Mispredicts == nil {
		t.Fatal("average row has nil Mispredicts map")
	}
	// Writing through the map must not panic (the original bug: a nil
	// map write in renderers extending the average row).
	avg.Mispredicts["probe"] = 1
	if got := avg.Mispredicts["(3+3)"]; got != 200 {
		t.Errorf("average (3+3) mispredicts = %d, want 200", got)
	}
	if avg.LVCHitRate < 0.9989 || avg.LVCHitRate > 0.9991 {
		t.Errorf("average LVC hit rate = %v, want 0.999", avg.LVCHitRate)
	}
	if got := avg.Speedup["(3+3)"]; got < 1.399 || got > 1.401 {
		t.Errorf("average (3+3) speedup = %v, want 1.4", got)
	}
	// Empty input still yields writable maps.
	empty := Figure8Average(nil, configs)
	empty.Mispredicts["probe"] = 1
	empty.Speedup["probe"] = 1
	empty.IPC["probe"] = 1
}
