package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/region"
	"repro/internal/workload"
)

// quickRunner limits to three representative workloads and truncated
// runs so the suite stays fast; the full experiments run via the CLIs
// and benchmarks.
func quickRunner(t *testing.T, names ...string) *Runner {
	t.Helper()
	r := NewRunner()
	r.MaxInsts = 300_000
	if len(names) > 0 {
		r.Workloads = nil
		for _, n := range names {
			w, ok := workload.ByName(n)
			if !ok {
				t.Fatalf("unknown workload %q", n)
			}
			r.Workloads = append(r.Workloads, w)
		}
	}
	return r
}

func TestTable1(t *testing.T) {
	r := quickRunner(t, "compress", "li")
	rows, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Insts == 0 || row.LoadPct <= 0 || row.StorePct <= 0 {
			t.Errorf("%s: degenerate row %+v", row.Name, row)
		}
		if row.LoadPct+row.StorePct > 60 {
			t.Errorf("%s: implausible memory mix %+v", row.Name, row)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "129.compress") || !strings.Contains(out, "130.li") {
		t.Errorf("render missing rows:\n%s", out)
	}
}

func TestFigure2AccessRegionLocality(t *testing.T) {
	r := quickRunner(t, "compress", "li", "vortex")
	rows, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		// The headline property: most static memory instructions access
		// a single region (paper: ~98%).
		if row.MultiStaticPct > 15 {
			t.Errorf("%s: %.1f%% multi-region static instructions, expected few",
				row.Name, row.MultiStaticPct)
		}
		var sum float64
		for _, v := range row.StaticPct {
			sum += v
		}
		if sum < 99.0 || sum > 101.0 {
			t.Errorf("%s: class percentages sum to %.2f", row.Name, sum)
		}
	}
	_ = RenderFigure2(rows)
}

func TestTable2WindowStats(t *testing.T) {
	r := quickRunner(t, "compress")
	rows, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	for reg := 0; reg < region.Count; reg++ {
		// The 64-window mean must be about twice the 32-window mean.
		m32, m64 := row.W32[reg].Mean, row.W64[reg].Mean
		if m32 > 0.5 && (m64 < 1.6*m32 || m64 > 2.4*m32) {
			t.Errorf("region %v: w64 mean %.2f vs w32 mean %.2f (want ~2x)",
				region.Region(reg), m64, m32)
		}
	}
	// Window occupancy can never exceed the window size.
	for reg := 0; reg < region.Count; reg++ {
		if row.W32[reg].Mean > 32 || row.W64[reg].Mean > 64 {
			t.Errorf("window mean exceeds window size: %+v", row)
		}
	}
	_ = RenderTable2(rows)
}

func TestPredictorStudyHeadlines(t *testing.T) {
	r := quickRunner(t, "li", "vortex")
	study, err := r.RunPredictorStudy()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range study.Figure4 {
		oneBit := row.AccuracyPct[core.Scheme1Bit.String()]
		hybrid := row.AccuracyPct[core.Scheme1BitHybrid.String()]
		static := row.AccuracyPct[core.SchemeStatic.String()]
		if oneBit < 99.0 {
			t.Errorf("%s: 1BIT accuracy %.2f%%, paper reports >99%%", row.Name, oneBit)
		}
		if hybrid < 99.0 {
			t.Errorf("%s: hybrid accuracy %.2f%%", row.Name, hybrid)
		}
		// STATIC never beats a trained table (ties are possible on short
		// truncated runs where every reference is trivially classified).
		if static > oneBit+0.001 {
			t.Errorf("%s: STATIC (%.2f%%) beats 1BIT (%.2f%%)", row.Name, static, oneBit)
		}
	}
	for _, row := range study.Table3 {
		// Context indexing can only occupy more entries.
		if row.GBH < row.Static || row.Hybrid < row.Static {
			t.Errorf("%s: context occupies fewer entries: %+v", row.Name, row)
		}
	}
	for _, row := range study.Figure5 {
		unlimited := row.AccuracyPct[0][HintsOff]
		small := row.AccuracyPct[8*1024][HintsOff]
		if small > unlimited+0.5 {
			t.Errorf("%s: 8K table (%.3f) beats unlimited (%.3f) by too much",
				row.Name, small, unlimited)
		}
		// Hints can only help (oracle covers most references).
		if row.AccuracyPct[8*1024][HintsOracle]+0.2 < small {
			t.Errorf("%s: oracle hints hurt: %.3f vs %.3f",
				row.Name, row.AccuracyPct[8*1024][HintsOracle], small)
		}
	}
	_ = RenderFigure4(study.Figure4)
	_ = RenderTable3(study.Table3)
	_ = RenderFigure5(study.Figure5)
	_ = RenderAblation(study.Ablation)
}

func TestLVCHitRate(t *testing.T) {
	r := quickRunner(t, "vortex", "gcc")
	rows, err := r.LVCHitRate()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.StackRefs == 0 {
			t.Errorf("%s: no stack references", row.Name)
		}
		// §3.3: a 4 KB stack cache achieves over 99.5% hit rate.
		if row.HitRate < 0.99 {
			t.Errorf("%s: LVC hit rate %.4f, paper reports >0.995", row.Name, row.HitRate)
		}
	}
	_ = RenderLVC(rows)
}

func TestFigure8Quick(t *testing.T) {
	r := quickRunner(t, "li")
	r.MaxInsts = 0 // full run: truncated traces measure setup, not the kernel
	configs := []cpu.Config{cpu.Conventional(2, 2), cpu.Decoupled(3, 3), cpu.Conventional(16, 2)}
	rows, err := r.FigureWithConfigs(configs)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if row.Speedup["(2+0)"] != 1.0 {
		t.Errorf("baseline speedup = %.3f", row.Speedup["(2+0)"])
	}
	if row.Speedup["(16+0)"] < 1.05 {
		t.Errorf("li should be bandwidth-starved at (2+0): (16+0) speedup %.3f", row.Speedup["(16+0)"])
	}
	if row.Speedup["(3+3)"] < 1.05 {
		t.Errorf("(3+3) should relieve li: speedup %.3f", row.Speedup["(3+3)"])
	}
	if row.LVCHitRate < 0.99 {
		t.Errorf("LVC hit rate %.4f in (3+3)", row.LVCHitRate)
	}
	_ = RenderFigure8(rows, configs)
}

func TestPenaltySweep(t *testing.T) {
	r := quickRunner(t, "li")
	r.MaxInsts = 0
	rows, err := r.PenaltySweep([]int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// A larger penalty can never help.
	if rows[1].Speedup > rows[0].Speedup+0.001 {
		t.Errorf("penalty 8 (%.3f) beats penalty 1 (%.3f)", rows[1].Speedup, rows[0].Speedup)
	}
	_ = RenderPenaltySweep(rows)
}

func TestContextSweep(t *testing.T) {
	r := quickRunner(t, "li")
	rows, err := r.ContextSweep([]int{0, 8}, []int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.AccuracyPct < 95 {
			t.Errorf("context (%d,%d): accuracy %.2f", row.GBHBits, row.CIDBits, row.AccuracyPct)
		}
	}
	_ = RenderContextSweep(rows)
}

func TestSteeringAndFastForwardDrivers(t *testing.T) {
	r := quickRunner(t, "go")
	r.MaxInsts = 250_000
	rows, err := r.SteeringPolicies()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Results) != 5 {
		t.Fatalf("steering rows = %+v", rows)
	}
	for _, res := range rows[0].Results {
		if res.Cycles == 0 {
			t.Errorf("%v: zero cycles", res.Policy)
		}
	}
	_ = RenderSteering(rows)

	ff, err := r.FastForwardAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(ff) != 1 || ff[0].SpeedupFF <= 0 {
		t.Fatalf("ffwd rows = %+v", ff)
	}
	_ = RenderFastForward(ff)
}
