package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/static"
	"repro/internal/vm"
	"repro/internal/workload"
)

// HintsBinary is the fourth hint mode: region hints recovered from the
// assembled binary by internal/static's abstract interpretation (as
// opposed to the source-level Figure 6 pass).
const HintsBinary HintMode = HintsCompiler + 1

// StaticHintRow compares, for one workload, the binary-level analyzer's
// hints against the source-level hints and the profile oracle: how many
// dynamic references each hint source covers, how often the fired hints
// are right, and the end-to-end 1BIT-HYBRID accuracy with each source.
type StaticHintRow struct {
	Name string

	// Coverage and accuracy of fired hints, % of dynamic references.
	BinaryCoveredPct float64
	BinaryAccPct     float64
	SourceCoveredPct float64
	SourceAccPct     float64

	// Disagreements counts binary hints that contradicted the dynamic
	// region — the soundness headline; it must be zero.
	Disagreements uint64

	// AnalyzerErrs counts error-severity diagnostics the analyzer
	// raised against the compiled program (also zero for sound codegen).
	AnalyzerErrs int

	// AccuracyPct is end-to-end 1BIT-HYBRID (unlimited table) accuracy
	// per hint mode.
	AccuracyPct map[HintMode]float64
}

// StaticHintModes orders the modes of the E14 study.
var StaticHintModes = []HintMode{HintsOff, HintsCompiler, HintsBinary, HintsOracle}

// StaticHintStudy runs E14: the binary-level static analyzer as a hint
// source for every workload, against the Fig. 6 source hints and the
// dynamic oracle.
func (r *Runner) StaticHintStudy() ([]StaticHintRow, error) {
	return forEach(r, r.staticHintPass)
}

func (r *Runner) staticHintPass(w *workload.Workload) (StaticHintRow, error) {
	row := StaticHintRow{Name: w.Name, AccuracyPct: map[HintMode]float64{}}
	p, err := r.Program(w)
	if err != nil {
		return row, err
	}
	pr, err := r.Profile(w)
	if err != nil {
		return row, err
	}
	an := static.Analyze(p)
	row.AnalyzerErrs = len(an.Errors())

	oracle := pr.Oracle()
	cls := make(map[HintMode]*core.Classifier, len(StaticHintModes))
	for _, mode := range StaticHintModes {
		var hints core.HintSource
		switch mode {
		case HintsOracle:
			hints = oracle
		case HintsCompiler:
			hints = p.HintAt
		case HintsBinary:
			hints = an.HintAt
		}
		c, err := core.NewClassifier(core.ClassifierConfig{Scheme: core.Scheme1BitHybrid}, core.WithHints(hints))
		if err != nil {
			return row, err
		}
		cls[mode] = c
	}

	r.logf("static hint study %s ...", w.Name)
	m, err := vm.New(vm.Config{Program: p})
	if err != nil {
		return row, err
	}
	limit := r.MaxInsts
	if limit == 0 {
		limit = vm.DefaultMaxInsts
	}
	m.MaxInsts = limit + 1
	var ctx core.Context
	for !m.Halted() && m.Seq() < limit {
		ev, err := m.Step()
		if err != nil {
			return row, fmt.Errorf("%s: %w", w.Name, err)
		}
		if ev.Inst.IsMem() {
			ctx.CID = m.Reg(isa.RA)
			actual := core.ActualOf(ev.Region)
			for _, c := range cls {
				c.Classify(ev.Index, ev.PC, ev.Inst, ctx, actual)
			}
			if pred, usable := core.HintPrediction(an.HintAt(ev.Index)); usable && pred != actual {
				row.Disagreements++
			}
		}
		if ev.Inst.IsBranch() {
			ctx.UpdateGBH(ev.Taken)
		}
	}

	bin, src := cls[HintsBinary].Stats, cls[HintsCompiler].Stats
	if bin.Total > 0 {
		row.BinaryCoveredPct = 100 * float64(bin.HintCovered) / float64(bin.Total)
		row.SourceCoveredPct = 100 * float64(src.HintCovered) / float64(src.Total)
	}
	row.BinaryAccPct = bin.HintAccuracy()
	row.SourceAccPct = src.HintAccuracy()
	for mode, c := range cls {
		row.AccuracyPct[mode] = c.Stats.Accuracy()
	}
	return row, nil
}
