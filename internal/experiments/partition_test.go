package experiments

import (
	"os"
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
)

// TestFigure8GoldenPartitioned gates the partitioned-cache redesign's
// central claim: the Figure-8 report is byte-identical to the golden
// capture from the dedicated L1/LVC engine, whether the machines come
// from the stock constructors or from hand-rolled Partitions lists
// (with the steering policy left to default per partition count).
func TestFigure8GoldenPartitioned(t *testing.T) {
	golden, err := os.ReadFile("testdata/figure8_li_20k.golden")
	if err != nil {
		t.Fatal(err)
	}
	run := func(label string, configs []cpu.Config) {
		r := quickRunner(t, "li")
		r.MaxInsts = 20000
		rows, err := r.FigureWithConfigs(configs)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if got := RenderFigure8(rows, configs); got != string(golden) {
			t.Errorf("%s configs diverge from the golden Figure-8 report:\n got:\n%s\nwant:\n%s",
				label, got, golden)
		}
	}
	run("constructed", cpu.Figure8Configs())

	// The same machines with the partition lists rebuilt by hand and
	// SteerPolicy cleared: the region/none defaulting must reproduce
	// the constructors exactly.
	explicit := cpu.Figure8Configs()
	for i, c := range explicit {
		parts := make([]cache.PartitionConfig, len(c.Partitions))
		copy(parts, c.Partitions)
		explicit[i].Partitions = parts
		explicit[i].SteerPolicy = ""
	}
	run("explicit", explicit)
}
