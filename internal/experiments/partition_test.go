package experiments

import (
	"os"
	"testing"

	"repro/internal/cpu"
)

// TestFigure8GoldenPartitioned gates the partitioned-cache redesign's
// central claim: the Figure-8 report is byte-identical to the golden
// capture from the dedicated L1/LVC engine, whether the machines are
// built through the deprecated L1Ports/LVCPorts fields or through the
// explicit Partitions surface they now derive into.
func TestFigure8GoldenPartitioned(t *testing.T) {
	golden, err := os.ReadFile("testdata/figure8_li_20k.golden")
	if err != nil {
		t.Fatal(err)
	}
	run := func(label string, configs []cpu.Config) {
		r := quickRunner(t, "li")
		r.MaxInsts = 20000
		rows, err := r.FigureWithConfigs(configs)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if got := RenderFigure8(rows, configs); got != string(golden) {
			t.Errorf("%s configs diverge from the golden Figure-8 report:\n got:\n%s\nwant:\n%s",
				label, got, golden)
		}
	}
	run("legacy", cpu.Figure8Configs())

	explicit := cpu.Figure8Configs()
	for i := range explicit {
		explicit[i] = explicit[i].Partitioned()
	}
	run("partitioned", explicit)
}
