// Package experiments implements the drivers that regenerate every
// table and figure of the paper's evaluation (the E1-E11 index in
// DESIGN.md). Each experiment returns structured rows; the render
// functions print them in the paper's layout so results can be read
// side by side with the original.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/workload"
)

// Runner holds the shared setup for a batch of experiments.
type Runner struct {
	// Workloads selects the programs (default: all twelve).
	Workloads []*workload.Workload
	// Scale overrides the per-workload default scale when positive.
	Scale int
	// MaxInsts truncates functional runs and traces when positive,
	// useful for quick runs and benchmarks.
	MaxInsts uint64
	// Log receives progress lines (nil for silence).
	Log io.Writer

	mu       sync.Mutex
	programs map[string]*prog.Program
	profiles map[string]*profile.Profile
}

// NewRunner returns a Runner over all twelve workloads.
func NewRunner() *Runner {
	return &Runner{Workloads: workload.All()}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// Program compiles (and memoizes) one workload.
func (r *Runner) Program(w *workload.Workload) (*prog.Program, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.programs == nil {
		r.programs = make(map[string]*prog.Program)
	}
	if p, ok := r.programs[w.Name]; ok {
		return p, nil
	}
	p, err := w.Compile(r.Scale)
	if err != nil {
		return nil, err
	}
	r.programs[w.Name] = p
	return p, nil
}

// Profile runs (and memoizes) the region profile of one workload. The
// profile backs Table 1, Figure 2, Table 2 and the §3.5.2 oracle hints.
func (r *Runner) Profile(w *workload.Workload) (*profile.Profile, error) {
	p, err := r.Program(w)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.profiles == nil {
		r.profiles = make(map[string]*profile.Profile)
	}
	if pr, ok := r.profiles[w.Name]; ok {
		r.mu.Unlock()
		return pr, nil
	}
	r.mu.Unlock()

	r.logf("profiling %s ...", w.Name)
	pr, err := profile.Run(p, r.MaxInsts, nil)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	r.mu.Lock()
	r.profiles[w.Name] = pr
	r.mu.Unlock()
	return pr, nil
}

// forEach runs f over the runner's workloads, collecting results in
// order.
func forEach[T any](r *Runner, f func(w *workload.Workload) (T, error)) ([]T, error) {
	out := make([]T, 0, len(r.Workloads))
	for _, w := range r.Workloads {
		v, err := f(w)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
