// Package experiments implements the drivers that regenerate every
// table and figure of the paper's evaluation (the E1-E11 index in
// DESIGN.md). Each experiment returns structured rows; the render
// functions print them in the paper's layout so results can be read
// side by side with the original.
//
// The Runner is the single memoizing, concurrency-safe source of
// compiled programs, region profiles, timing traces and baseline
// simulation results. Drivers fan out over workloads and
// (workload, configuration) pairs on a bounded worker pool (see
// Runner.Parallel); rows always come back in workload order, so the
// parallel harness renders byte-identical tables to the serial one.
package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/workload"
)

// WorkloadError is one workload's failure inside an experiment batch:
// which workload, which pipeline stage (compile, profile, trace,
// simulate), and the underlying cause. With Runner.Degrade set,
// drivers record these and drop the workload's rows instead of
// aborting the whole batch.
type WorkloadError struct {
	Workload string
	Stage    string
	Err      error
}

func (e *WorkloadError) Error() string {
	return fmt.Sprintf("%s: %s: %v", e.Workload, e.Stage, e.Err)
}

func (e *WorkloadError) Unwrap() error { return e.Err }

// Timeout reports whether the failure was a watchdog expiry or
// cancellation rather than a genuine workload defect.
func (e *WorkloadError) Timeout() bool {
	return errors.Is(e.Err, context.DeadlineExceeded) || errors.Is(e.Err, context.Canceled)
}

// Runner holds the shared setup for a batch of experiments.
type Runner struct {
	// Workloads selects the programs (default: all twelve).
	Workloads []*workload.Workload
	// Scale overrides the per-workload default scale when positive.
	Scale int
	// MaxInsts truncates functional runs and traces when positive,
	// useful for quick runs and benchmarks.
	MaxInsts uint64
	// Log receives progress lines (nil for silence).
	Log io.Writer
	// Parallel bounds the worker pool the drivers fan out on. Zero
	// uses runtime.GOMAXPROCS(0); 1 forces the serial path. Every
	// worker gets its own classifier/ARPT state, so results are
	// independent of the pool size.
	Parallel int

	// Ctx, when non-nil, cancels all outstanding work when it ends;
	// functional runs and simulations poll it cooperatively.
	Ctx context.Context
	// WorkloadTimeout, when positive, is the per-stage watchdog: each
	// profile, trace build, and simulation of one workload gets its
	// own deadline, so a single wedged workload cannot stall a batch.
	WorkloadTimeout time.Duration
	// Degrade turns per-workload failures into recorded
	// WorkloadErrors (see Errors) instead of batch aborts; drivers
	// then report the surviving workloads.
	Degrade bool

	// Obs, when non-nil, receives the metrics of every simulation the
	// runner performs (memo misses only — a memoized result is
	// published exactly once). Drivers render or archive the registry
	// after the batch; see obs.EncodeArtifact.
	Obs *obs.Registry

	// Store, when non-nil, makes the memoized stages durable: every
	// compiled program, profile, trace and simulation result is written
	// through to the artifact store, so a campaign killed mid-flight
	// leaves its completed work on disk.
	Store *store.Store
	// Resume, with Store set, satisfies stage requests from verified
	// store records before recomputing — the read side of crash
	// recovery. Store hits replay the simulation's stored metrics
	// fragment into Obs, so a resumed campaign's metrics artifact is
	// identical to an uninterrupted run's.
	Resume bool
	// Retry paces re-attempts of failed stages (deterministic seeded
	// backoff; see resilience.Retry). The zero value runs each stage
	// once. When Retry.AttemptTimeout is zero, WorkloadTimeout bounds
	// each attempt.
	Retry resilience.Retry
	// Breaker, when non-nil, trips per workload after consecutive
	// stage failures: further stages of that workload degrade to fast
	// rendered errors instead of burning the retry budget again.
	Breaker *resilience.Breaker

	logMu     sync.Mutex
	programs  memo[*prog.Program]
	profiles  memo[*profile.Profile]
	traces    memo[*cpu.Trace]
	results   memo[*cpu.Result]
	campaigns memo[*faultinject.Summary]

	errMu  sync.Mutex
	wlErrs []*WorkloadError

	statMu   sync.Mutex
	runStats map[string]*RunStat
}

// RunStat aggregates the harness-side cost of one workload across a
// batch: how long the expensive memoized stages took and how fast the
// timing model ran. Memo hits cost nothing and are not counted.
type RunStat struct {
	Workload   string
	TraceInsts uint64        // instructions in the memoized trace
	TraceWall  time.Duration // wall time spent building the trace
	Sims       int           // timing simulations run
	SimCycles  uint64        // simulated cycles summed over them
	SimWall    time.Duration // wall time summed over them
}

// CyclesPerSecond reports the aggregate simulation speed of the
// workload: simulated cycles per wall-clock second.
func (s RunStat) CyclesPerSecond() float64 {
	if s.SimWall <= 0 {
		return 0
	}
	return float64(s.SimCycles) / s.SimWall.Seconds()
}

func (r *Runner) stat(name string) *RunStat {
	if r.runStats == nil {
		r.runStats = make(map[string]*RunStat)
	}
	s := r.runStats[name]
	if s == nil {
		s = &RunStat{Workload: name}
		r.runStats[name] = s
	}
	return s
}

func (r *Runner) noteTrace(name string, insts uint64, d time.Duration) {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	s := r.stat(name)
	s.TraceInsts = insts
	s.TraceWall += d
}

func (r *Runner) noteSim(name string, cycles uint64, d time.Duration) {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	s := r.stat(name)
	s.Sims++
	s.SimCycles += cycles
	s.SimWall += d
}

// RunStats reports the per-workload run statistics collected so far,
// sorted by workload name.
func (r *Runner) RunStats() []RunStat {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	out := make([]RunStat, 0, len(r.runStats))
	for _, s := range r.runStats {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workload < out[j].Workload })
	return out
}

// RenderRunStats prints the per-workload harness cost table: trace
// build time, simulation count, and simulated-cycles-per-second.
func RenderRunStats(w io.Writer, rows []RunStat) {
	fmt.Fprintln(w, "Run statistics (per workload; memoized stages counted once)")
	fmt.Fprintf(w, "%-12s %12s %9s %5s %14s %9s %12s\n",
		"workload", "trace insts", "trace s", "sims", "sim cycles", "sim s", "Mcycles/s")
	var tot RunStat
	for _, s := range rows {
		fmt.Fprintf(w, "%-12s %12d %9.3f %5d %14d %9.3f %12.2f\n",
			s.Workload, s.TraceInsts, s.TraceWall.Seconds(), s.Sims,
			s.SimCycles, s.SimWall.Seconds(), s.CyclesPerSecond()/1e6)
		tot.TraceInsts += s.TraceInsts
		tot.TraceWall += s.TraceWall
		tot.Sims += s.Sims
		tot.SimCycles += s.SimCycles
		tot.SimWall += s.SimWall
	}
	fmt.Fprintf(w, "%-12s %12d %9.3f %5d %14d %9.3f %12.2f\n",
		"total", tot.TraceInsts, tot.TraceWall.Seconds(), tot.Sims,
		tot.SimCycles, tot.SimWall.Seconds(), tot.CyclesPerSecond()/1e6)
}

// NewRunner returns a Runner over all twelve workloads.
func NewRunner() *Runner {
	return &Runner{Workloads: workload.All()}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		r.logMu.Lock()
		fmt.Fprintf(r.Log, format+"\n", args...)
		r.logMu.Unlock()
	}
}

// memo is a concurrency-safe compute-once cache. A miss claims a
// per-key entry under the map lock and computes with the lock
// released, so one slow computation never blocks lookups of other
// keys; concurrent callers of the same key share the single
// computation through the entry's mutex instead of duplicating it.
//
// Transient failures — cancellation, watchdog expiry, an open circuit
// breaker — are never cached: they describe the run, not the key, so
// the entry stays unresolved and the next caller recomputes. A
// cancelled campaign therefore does not poison the memo for a resume
// within the same process.
type memo[T any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[T]
}

type memoEntry[T any] struct {
	mu   sync.Mutex
	done bool
	val  T
	err  error
}

func (c *memo[T]) get(key string, compute func() (T, error)) (T, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*memoEntry[T])
	}
	e := c.m[key]
	if e == nil {
		e = &memoEntry[T]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return e.val, e.err
	}
	val, err := compute()
	if err != nil && resilience.Transient(err) {
		var zero T
		return zero, err
	}
	e.val, e.err, e.done = val, err, true
	return e.val, e.err
}

// len reports how many keys have been claimed (for tests).
func (c *memo[T]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// ctx reports the runner's campaign context (Background when unset).
func (r *Runner) ctx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// watched reports whether cooperative cancellation is worth installing
// in functional runs and simulations: there is a campaign context, a
// per-stage watchdog, or a per-attempt deadline that could fire.
func (r *Runner) watched() bool {
	return r.Ctx != nil || r.WorkloadTimeout > 0 || r.Retry.AttemptTimeout > 0
}

// stage runs one named pipeline step of one workload under the
// runner's resilience policy: the workload's circuit breaker gates
// entry, the retry policy paces re-attempts (each attempt bounded by
// Retry.AttemptTimeout, defaulting to the WorkloadTimeout watchdog),
// and the outcome feeds back into the breaker. fn receives the
// per-attempt context.
func (r *Runner) stage(wl, stage string, fn func(ctx context.Context) error) error {
	if r.Breaker != nil {
		if err := r.Breaker.Allow(wl); err != nil {
			return err
		}
	}
	retry := r.Retry
	if retry.AttemptTimeout <= 0 {
		retry.AttemptTimeout = r.WorkloadTimeout
	}
	user := retry.OnRetry
	retry.OnRetry = func(name string, attempt int, delay time.Duration, err error) {
		r.logf("retrying %s: attempt %d failed (%v); next try in %v", name, attempt, err, delay)
		if r.Obs != nil {
			r.Obs.Counter("harness_retries_total", "stage attempts retried after a failure",
				obs.Labels{"workload": wl, "stage": stage}).Inc()
		}
		if user != nil {
			user(name, attempt, delay, err)
		}
	}
	err := retry.Do(r.ctx(), wl+"/"+stage, fn)
	if r.Breaker != nil {
		wasOpen := r.Breaker.Tripped(wl)
		r.Breaker.Record(wl, err)
		if !wasOpen && r.Breaker.Tripped(wl) {
			r.logf("circuit breaker tripped for %s (last failure: %v)", wl, err)
			if r.Obs != nil {
				r.Obs.Counter("harness_breaker_trips_total", "workloads whose circuit breaker tripped",
					obs.Labels{"workload": wl}).Inc()
			}
		}
	}
	return err
}

// storeVersion names the producing code version inside store keys, so
// records written by an incompatible pipeline never alias current
// ones. Bump whenever compilation, profiling, tracing or simulation
// semantics change.
//
// v2: configs key on cpu.Config.Key() (full-field, Stringer-proof),
// results carry per-partition statistics, and cache metrics gained the
// partition label — v1 records would replay the old label set.
const storeVersion = "arl/v2"

// storeKey builds the canonical store key for one artifact of this
// runner's campaign (its scale and instruction budget are part of the
// identity; config distinguishes per-configuration artifacts).
func (r *Runner) storeKey(kind, wl, config string) store.Key {
	return store.Key{
		Kind:     kind,
		Workload: wl,
		Scale:    r.Scale,
		MaxInsts: r.MaxInsts,
		Config:   config,
		Version:  storeVersion,
	}
}

// storeLoad attempts to satisfy a stage from the artifact store,
// reporting whether v now holds a verified record. Only resuming runs
// read; corruption and I/O problems degrade to a miss.
func (r *Runner) storeLoad(k store.Key, v any) bool {
	if r.Store == nil || !r.Resume {
		return false
	}
	ok, err := r.Store.Get(k, v)
	if err != nil {
		r.logf("store: reading %s: %v", k, err)
		return false
	}
	if ok {
		r.logf("resumed %s from store", k)
	}
	return ok
}

// storePut writes a freshly computed artifact through to the store.
// Persistence failures are logged, not fatal: the result is already in
// memory and the campaign proceeds; only resumability suffers.
func (r *Runner) storePut(k store.Key, v any) {
	if r.Store == nil {
		return
	}
	if err := r.Store.Put(k, v); err != nil {
		r.logf("store: %v", err)
	}
}

// record stores one degraded workload failure (once per
// workload/stage; memoized errors are sticky, so many drivers may
// observe the same failure). An open circuit breaker reports at most
// once per workload — after a trip every remaining stage fails the
// same way, and one line says it all.
func (r *Runner) record(we *WorkloadError) {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	open := errors.Is(we.Err, resilience.ErrOpen)
	for _, old := range r.wlErrs {
		if old.Workload != we.Workload {
			continue
		}
		if old.Stage == we.Stage {
			return
		}
		if open && errors.Is(old.Err, resilience.ErrOpen) {
			return
		}
	}
	r.wlErrs = append(r.wlErrs, we)
}

// Errors reports the workload failures recorded while degrading,
// sorted by workload then stage. Empty means every requested row was
// produced.
func (r *Runner) Errors() []*WorkloadError {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	out := append([]*WorkloadError(nil), r.wlErrs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// degraded absorbs err as a recorded workload failure when the runner
// is degrading, reporting whether the caller should skip the workload
// instead of failing the batch.
func (r *Runner) degraded(err error) bool {
	if !r.Degrade {
		return false
	}
	var we *WorkloadError
	if !errors.As(err, &we) {
		return false
	}
	r.record(we)
	return true
}

// Program compiles (and memoizes) one workload.
func (r *Runner) Program(w *workload.Workload) (*prog.Program, error) {
	return r.programs.get(w.Name, func() (*prog.Program, error) {
		key := r.storeKey("program", w.Name, "")
		var stored prog.Program
		if r.storeLoad(key, &stored) {
			err := stored.Validate()
			if err == nil {
				return &stored, nil
			}
			r.logf("store: %s decoded but fails validation (%v); recompiling", key, err)
		}
		var p *prog.Program
		err := r.stage(w.Name, "compile", func(context.Context) error {
			var err error
			p, err = w.Compile(r.Scale)
			return err
		})
		if err != nil {
			return nil, &WorkloadError{Workload: w.Name, Stage: "compile", Err: err}
		}
		r.storePut(key, p)
		return p, nil
	})
}

// Profile runs (and memoizes) the region profile of one workload. The
// profile backs Table 1, Figure 2, Table 2 and the §3.5.2 oracle hints.
func (r *Runner) Profile(w *workload.Workload) (*profile.Profile, error) {
	return r.profiles.get(w.Name, func() (*profile.Profile, error) {
		key := r.storeKey("profile", w.Name, "")
		var stored profile.Profile
		if r.storeLoad(key, &stored) {
			return &stored, nil
		}
		p, err := r.Program(w)
		if err != nil {
			return nil, err
		}
		r.logf("profiling %s ...", w.Name)
		var pr *profile.Profile
		err = r.stage(w.Name, "profile", func(ctx context.Context) error {
			var err error
			pr, err = profile.RunContext(ctx, p, r.MaxInsts, nil)
			return err
		})
		if err != nil {
			return nil, &WorkloadError{Workload: w.Name, Stage: "profile", Err: err}
		}
		r.storePut(key, pr)
		return pr, nil
	})
}

// Trace builds (and memoizes) one workload's default-steering timing
// trace — the expensive full functional re-execution every timing
// driver needs. cpu.Simulate treats traces as read-only, so the one
// memoized trace safely backs any number of concurrent simulations
// across machine configurations.
func (r *Runner) Trace(w *workload.Workload) (*cpu.Trace, error) {
	return r.trace(w, w.Name, "", nil)
}

// TraceARPT builds (and memoizes) a workload's timing trace with the
// steering predictor's ARPT sized to entries (0 means the 32K-entry
// pipeline default, sharing the default trace's memo and store
// records). Distinct ARPT sizes steer differently, so each size is its
// own trace identity.
func (r *Runner) TraceARPT(w *workload.Workload, entries int) (*cpu.Trace, error) {
	if entries == 0 {
		return r.Trace(w)
	}
	tag := fmt.Sprintf("arpt=%d", entries)
	return r.trace(w, w.Name+"|"+tag, tag, func() (*core.Classifier, error) {
		pcfg := core.DefaultPipelineConfig()
		pcfg.Entries = entries
		table, err := core.NewARPT(pcfg)
		if err != nil {
			return nil, err
		}
		return core.NewClassifier(
			core.ClassifierConfig{Scheme: cpu.Scheme1BitHybridPipeline},
			core.WithTable(table))
	})
}

// trace is the shared trace stage behind Trace and TraceARPT: memoKey
// names the memo entry, storeCfg the store key's config field, and
// classifier (when non-nil) builds the steering classifier per attempt
// (classifier state is mutable and must not be shared across retries).
func (r *Runner) trace(w *workload.Workload, memoKey, storeCfg string,
	classifier func() (*core.Classifier, error)) (*cpu.Trace, error) {
	return r.traces.get(memoKey, func() (*cpu.Trace, error) {
		key := r.storeKey("trace", w.Name, storeCfg)
		stored := new(cpu.Trace)
		if r.storeLoad(key, stored) {
			r.noteTrace(w.Name, uint64(len(stored.Insts)), 0)
			return stored, nil
		}
		p, err := r.Program(w)
		if err != nil {
			return nil, err
		}
		r.logf("tracing %s ...", w.Name)
		var tr *cpu.Trace
		err = r.stage(w.Name, "trace", func(ctx context.Context) error {
			opts := cpu.TraceOptions{MaxInsts: r.MaxInsts}
			if r.watched() {
				opts.Ctx = ctx
			}
			if classifier != nil {
				cls, err := classifier()
				if err != nil {
					return err
				}
				opts.Classifier = cls
			}
			start := time.Now() //arlvet:allow wallclock RunStats measures harness cost; wall time never reaches simulation results
			var err error
			tr, err = cpu.BuildTrace(p, opts)
			if err != nil {
				return err
			}
			r.noteTrace(w.Name, uint64(len(tr.Insts)), time.Since(start)) //arlvet:allow wallclock RunStats measures harness cost; wall time never reaches simulation results
			return nil
		})
		if err != nil {
			return nil, &WorkloadError{Workload: w.Name, Stage: "trace", Err: err}
		}
		r.storePut(key, tr)
		return tr, nil
	})
}

// storedResult is the simulation artifact: the timing result plus the
// metrics fragment that simulation published. Replaying the fragment
// into Runner.Obs on a store hit reproduces exactly the samples a live
// simulation would have contributed, which is what keeps a resumed
// campaign's metrics artifact byte-identical to an uninterrupted one.
//
// The fragment travels as JSON, not gob: gob drops zero-valued fields,
// so a counter sample holding a pointer to 0 would come back with a
// nil value and the replay would lose every never-incremented series a
// live run still registers.
type storedResult struct {
	Result  *cpu.Result
	Metrics []byte // JSON-encoded []obs.Sample
}

// SimulateConfig simulates (and memoizes) one workload's default trace
// under one machine configuration. The memo key covers every Config
// field (cpu.Config.Key, not the display name), so e.g. the (3+3)
// machine at different misprediction penalties occupies distinct
// entries, while the (2+0) baseline that both Figure 8 and the penalty
// sweep need is simulated exactly once.
func (r *Runner) SimulateConfig(w *workload.Workload, cfg cpu.Config) (*cpu.Result, error) {
	return r.simulate(w, cfg, 0)
}

// SimulateConfigARPT simulates one workload under one machine
// configuration with the steering ARPT sized to entries (0 means the
// pipeline default, collapsing onto SimulateConfig's records so
// explorer points dedupe against plain campaigns).
func (r *Runner) SimulateConfigARPT(w *workload.Workload, entries int, cfg cpu.Config) (*cpu.Result, error) {
	return r.simulate(w, cfg, entries)
}

// simulate is the shared simulation stage: the ARPT size prefixes both
// keys because it changes the trace the config runs over.
func (r *Runner) simulate(w *workload.Workload, cfg cpu.Config, entries int) (*cpu.Result, error) {
	cfgKey := cfg.Key()
	if entries > 0 {
		cfgKey = fmt.Sprintf("arpt=%d|%s", entries, cfgKey)
	}
	key := w.Name + "|" + cfgKey
	return r.results.get(key, func() (*cpu.Result, error) {
		skey := r.storeKey("result", w.Name, cfgKey)
		var stored storedResult
		if r.storeLoad(skey, &stored) && stored.Result != nil {
			if r.Obs != nil && len(stored.Metrics) > 0 {
				var samples []obs.Sample
				err := json.Unmarshal(stored.Metrics, &samples)
				if err == nil {
					err = r.Obs.ImportSamples(samples)
				}
				if err != nil {
					r.logf("store: replaying metrics of %s: %v", skey, err)
				}
			}
			return stored.Result, nil
		}
		tr, err := r.TraceARPT(w, entries)
		if err != nil {
			return nil, err
		}
		r.logf("  %s %s ...", w.Name, cfg.Name)
		var res *cpu.Result
		var frag *obs.Registry
		err = r.stage(w.Name, "simulate "+cfg.Name, func(ctx context.Context) error {
			// Each attempt publishes into a private registry so a
			// failed attempt's partial metrics never leak into Obs or
			// the store.
			reg := obs.NewRegistry()
			var simOpts []cpu.Option
			if r.watched() {
				simOpts = append(simOpts, cpu.WithContext(ctx))
			}
			if r.Obs != nil || r.Store != nil {
				simOpts = append(simOpts, cpu.WithMetrics(reg, nil))
			}
			sim, err := cpu.New(cfg, simOpts...)
			if err != nil {
				return err
			}
			start := time.Now() //arlvet:allow wallclock RunStats measures harness cost; wall time never reaches simulation results
			res, err = sim.Run(tr)
			if err != nil {
				return err
			}
			r.noteSim(w.Name, res.Cycles, time.Since(start)) //arlvet:allow wallclock RunStats measures harness cost; wall time never reaches simulation results
			frag = reg
			return nil
		})
		if err != nil {
			return nil, &WorkloadError{Workload: w.Name,
				Stage: "simulate " + cfg.Name, Err: err}
		}
		var fragJSON []byte
		if frag != nil {
			samples := frag.Snapshot()
			if r.Obs != nil {
				if err := r.Obs.ImportSamples(samples); err != nil {
					r.logf("obs: publishing %s %s: %v", w.Name, cfg.Name, err)
				}
			}
			var err error
			if fragJSON, err = json.Marshal(samples); err != nil {
				r.logf("obs: encoding metrics of %s %s: %v", w.Name, cfg.Name, err)
				fragJSON = nil
			}
		}
		r.storePut(skey, storedResult{Result: res, Metrics: fragJSON})
		return res, nil
	})
}

// workers resolves the worker-pool bound.
func (r *Runner) workers() int {
	if r.Parallel > 0 {
		return r.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelDo runs fn(i) for every i in [0, n) on the runner's worker
// pool — the same pool the experiment drivers use, exported for
// drivers (like the design-space explorer) that fan out over something
// other than the workload list.
func (r *Runner) ParallelDo(n int, fn func(i int) error) error {
	return r.parallelDo(n, fn)
}

// parallelDo runs fn(i) for every i in [0, n) on a pool of at most
// r.workers() goroutines. All invocations run regardless of failures;
// the first error in index order is returned, so the error a caller
// sees does not depend on goroutine scheduling.
func (r *Runner) parallelDo(n int, fn func(i int) error) error {
	workers := r.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEach runs f over the runner's workloads on the worker pool,
// collecting results in workload order. While degrading, failed
// workloads are recorded (see Errors) and their rows dropped.
func forEach[T any](r *Runner, f func(w *workload.Workload) (T, error)) ([]T, error) {
	out := make([]T, len(r.Workloads))
	skip := make([]bool, len(r.Workloads))
	err := r.parallelDo(len(r.Workloads), func(i int) error {
		v, err := f(r.Workloads[i])
		if err != nil {
			if r.degraded(err) {
				skip[i] = true
				return nil
			}
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	kept := make([]T, 0, len(out))
	for i := range out {
		if !skip[i] {
			kept = append(kept, out[i])
		}
	}
	return kept, nil
}
