// Package experiments implements the drivers that regenerate every
// table and figure of the paper's evaluation (the E1-E11 index in
// DESIGN.md). Each experiment returns structured rows; the render
// functions print them in the paper's layout so results can be read
// side by side with the original.
//
// The Runner is the single memoizing, concurrency-safe source of
// compiled programs, region profiles, timing traces and baseline
// simulation results. Drivers fan out over workloads and
// (workload, configuration) pairs on a bounded worker pool (see
// Runner.Parallel); rows always come back in workload order, so the
// parallel harness renders byte-identical tables to the serial one.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/workload"
)

// WorkloadError is one workload's failure inside an experiment batch:
// which workload, which pipeline stage (compile, profile, trace,
// simulate), and the underlying cause. With Runner.Degrade set,
// drivers record these and drop the workload's rows instead of
// aborting the whole batch.
type WorkloadError struct {
	Workload string
	Stage    string
	Err      error
}

func (e *WorkloadError) Error() string {
	return fmt.Sprintf("%s: %s: %v", e.Workload, e.Stage, e.Err)
}

func (e *WorkloadError) Unwrap() error { return e.Err }

// Timeout reports whether the failure was a watchdog expiry or
// cancellation rather than a genuine workload defect.
func (e *WorkloadError) Timeout() bool {
	return errors.Is(e.Err, context.DeadlineExceeded) || errors.Is(e.Err, context.Canceled)
}

// Runner holds the shared setup for a batch of experiments.
type Runner struct {
	// Workloads selects the programs (default: all twelve).
	Workloads []*workload.Workload
	// Scale overrides the per-workload default scale when positive.
	Scale int
	// MaxInsts truncates functional runs and traces when positive,
	// useful for quick runs and benchmarks.
	MaxInsts uint64
	// Log receives progress lines (nil for silence).
	Log io.Writer
	// Parallel bounds the worker pool the drivers fan out on. Zero
	// uses runtime.GOMAXPROCS(0); 1 forces the serial path. Every
	// worker gets its own classifier/ARPT state, so results are
	// independent of the pool size.
	Parallel int

	// Ctx, when non-nil, cancels all outstanding work when it ends;
	// functional runs and simulations poll it cooperatively.
	Ctx context.Context
	// WorkloadTimeout, when positive, is the per-stage watchdog: each
	// profile, trace build, and simulation of one workload gets its
	// own deadline, so a single wedged workload cannot stall a batch.
	WorkloadTimeout time.Duration
	// Degrade turns per-workload failures into recorded
	// WorkloadErrors (see Errors) instead of batch aborts; drivers
	// then report the surviving workloads.
	Degrade bool

	// Obs, when non-nil, receives the metrics of every simulation the
	// runner performs (memo misses only — a memoized result is
	// published exactly once). Drivers render or archive the registry
	// after the batch; see obs.EncodeArtifact.
	Obs *obs.Registry

	logMu    sync.Mutex
	programs memo[*prog.Program]
	profiles memo[*profile.Profile]
	traces   memo[*cpu.Trace]
	results  memo[*cpu.Result]

	errMu  sync.Mutex
	wlErrs []*WorkloadError

	statMu   sync.Mutex
	runStats map[string]*RunStat
}

// RunStat aggregates the harness-side cost of one workload across a
// batch: how long the expensive memoized stages took and how fast the
// timing model ran. Memo hits cost nothing and are not counted.
type RunStat struct {
	Workload   string
	TraceInsts uint64        // instructions in the memoized trace
	TraceWall  time.Duration // wall time spent building the trace
	Sims       int           // timing simulations run
	SimCycles  uint64        // simulated cycles summed over them
	SimWall    time.Duration // wall time summed over them
}

// CyclesPerSecond reports the aggregate simulation speed of the
// workload: simulated cycles per wall-clock second.
func (s RunStat) CyclesPerSecond() float64 {
	if s.SimWall <= 0 {
		return 0
	}
	return float64(s.SimCycles) / s.SimWall.Seconds()
}

func (r *Runner) stat(name string) *RunStat {
	if r.runStats == nil {
		r.runStats = make(map[string]*RunStat)
	}
	s := r.runStats[name]
	if s == nil {
		s = &RunStat{Workload: name}
		r.runStats[name] = s
	}
	return s
}

func (r *Runner) noteTrace(name string, insts uint64, d time.Duration) {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	s := r.stat(name)
	s.TraceInsts = insts
	s.TraceWall += d
}

func (r *Runner) noteSim(name string, cycles uint64, d time.Duration) {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	s := r.stat(name)
	s.Sims++
	s.SimCycles += cycles
	s.SimWall += d
}

// RunStats reports the per-workload run statistics collected so far,
// sorted by workload name.
func (r *Runner) RunStats() []RunStat {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	out := make([]RunStat, 0, len(r.runStats))
	for _, s := range r.runStats {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workload < out[j].Workload })
	return out
}

// RenderRunStats prints the per-workload harness cost table: trace
// build time, simulation count, and simulated-cycles-per-second.
func RenderRunStats(w io.Writer, rows []RunStat) {
	fmt.Fprintln(w, "Run statistics (per workload; memoized stages counted once)")
	fmt.Fprintf(w, "%-12s %12s %9s %5s %14s %9s %12s\n",
		"workload", "trace insts", "trace s", "sims", "sim cycles", "sim s", "Mcycles/s")
	var tot RunStat
	for _, s := range rows {
		fmt.Fprintf(w, "%-12s %12d %9.3f %5d %14d %9.3f %12.2f\n",
			s.Workload, s.TraceInsts, s.TraceWall.Seconds(), s.Sims,
			s.SimCycles, s.SimWall.Seconds(), s.CyclesPerSecond()/1e6)
		tot.TraceInsts += s.TraceInsts
		tot.TraceWall += s.TraceWall
		tot.Sims += s.Sims
		tot.SimCycles += s.SimCycles
		tot.SimWall += s.SimWall
	}
	fmt.Fprintf(w, "%-12s %12d %9.3f %5d %14d %9.3f %12.2f\n",
		"total", tot.TraceInsts, tot.TraceWall.Seconds(), tot.Sims,
		tot.SimCycles, tot.SimWall.Seconds(), tot.CyclesPerSecond()/1e6)
}

// NewRunner returns a Runner over all twelve workloads.
func NewRunner() *Runner {
	return &Runner{Workloads: workload.All()}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		r.logMu.Lock()
		fmt.Fprintf(r.Log, format+"\n", args...)
		r.logMu.Unlock()
	}
}

// memo is a concurrency-safe compute-once cache. A miss claims a
// per-key entry under the map lock and computes with the lock
// released, so one slow computation never blocks lookups of other
// keys; concurrent callers of the same key share the single
// computation through the entry's sync.Once instead of duplicating
// it.
type memo[T any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[T]
}

type memoEntry[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (c *memo[T]) get(key string, compute func() (T, error)) (T, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*memoEntry[T])
	}
	e := c.m[key]
	if e == nil {
		e = &memoEntry[T]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// len reports how many keys have been claimed (for tests).
func (c *memo[T]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// stageCtx derives the context for one workload pipeline stage: the
// runner context (Background when unset) bounded by the per-workload
// watchdog. watched reports whether cooperative cancellation is worth
// installing at all.
func (r *Runner) stageCtx() (ctx context.Context, cancel context.CancelFunc, watched bool) {
	ctx = r.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if r.WorkloadTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, r.WorkloadTimeout)
		return ctx, cancel, true
	}
	return ctx, func() {}, r.Ctx != nil
}

// record stores one degraded workload failure (once per
// workload/stage; memoized errors are sticky, so many drivers may
// observe the same failure).
func (r *Runner) record(we *WorkloadError) {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	for _, old := range r.wlErrs {
		if old.Workload == we.Workload && old.Stage == we.Stage {
			return
		}
	}
	r.wlErrs = append(r.wlErrs, we)
}

// Errors reports the workload failures recorded while degrading,
// sorted by workload then stage. Empty means every requested row was
// produced.
func (r *Runner) Errors() []*WorkloadError {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	out := append([]*WorkloadError(nil), r.wlErrs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// degraded absorbs err as a recorded workload failure when the runner
// is degrading, reporting whether the caller should skip the workload
// instead of failing the batch.
func (r *Runner) degraded(err error) bool {
	if !r.Degrade {
		return false
	}
	var we *WorkloadError
	if !errors.As(err, &we) {
		return false
	}
	r.record(we)
	return true
}

// Program compiles (and memoizes) one workload.
func (r *Runner) Program(w *workload.Workload) (*prog.Program, error) {
	return r.programs.get(w.Name, func() (*prog.Program, error) {
		p, err := w.Compile(r.Scale)
		if err != nil {
			return nil, &WorkloadError{Workload: w.Name, Stage: "compile", Err: err}
		}
		return p, nil
	})
}

// Profile runs (and memoizes) the region profile of one workload. The
// profile backs Table 1, Figure 2, Table 2 and the §3.5.2 oracle hints.
func (r *Runner) Profile(w *workload.Workload) (*profile.Profile, error) {
	return r.profiles.get(w.Name, func() (*profile.Profile, error) {
		p, err := r.Program(w)
		if err != nil {
			return nil, err
		}
		r.logf("profiling %s ...", w.Name)
		ctx, cancel, _ := r.stageCtx()
		defer cancel()
		pr, err := profile.RunContext(ctx, p, r.MaxInsts, nil)
		if err != nil {
			return nil, &WorkloadError{Workload: w.Name, Stage: "profile", Err: err}
		}
		return pr, nil
	})
}

// Trace builds (and memoizes) one workload's default-steering timing
// trace — the expensive full functional re-execution every timing
// driver needs. cpu.Simulate treats traces as read-only, so the one
// memoized trace safely backs any number of concurrent simulations
// across machine configurations.
func (r *Runner) Trace(w *workload.Workload) (*cpu.Trace, error) {
	return r.traces.get(w.Name, func() (*cpu.Trace, error) {
		p, err := r.Program(w)
		if err != nil {
			return nil, err
		}
		r.logf("tracing %s ...", w.Name)
		ctx, cancel, watched := r.stageCtx()
		defer cancel()
		opts := cpu.TraceOptions{MaxInsts: r.MaxInsts}
		if watched {
			opts.Ctx = ctx
		}
		start := time.Now()
		tr, err := cpu.BuildTrace(p, opts)
		if err != nil {
			return nil, &WorkloadError{Workload: w.Name, Stage: "trace", Err: err}
		}
		r.noteTrace(w.Name, uint64(len(tr.Insts)), time.Since(start))
		return tr, nil
	})
}

// SimulateConfig simulates (and memoizes) one workload's default trace
// under one machine configuration. The memo key covers every Config
// field, so e.g. the (3+3) machine at different misprediction
// penalties occupies distinct entries, while the (2+0) baseline that
// both Figure 8 and the penalty sweep need is simulated exactly once.
func (r *Runner) SimulateConfig(w *workload.Workload, cfg cpu.Config) (*cpu.Result, error) {
	key := fmt.Sprintf("%s|%+v", w.Name, cfg)
	return r.results.get(key, func() (*cpu.Result, error) {
		tr, err := r.Trace(w)
		if err != nil {
			return nil, err
		}
		r.logf("  %s %s ...", w.Name, cfg.Name)
		ctx, cancel, watched := r.stageCtx()
		defer cancel()
		var simOpts []cpu.Option
		if watched {
			simOpts = append(simOpts, cpu.WithContext(ctx))
		}
		if r.Obs != nil {
			simOpts = append(simOpts, cpu.WithMetrics(r.Obs, nil))
		}
		sim, err := cpu.New(cfg, simOpts...)
		if err != nil {
			return nil, &WorkloadError{Workload: w.Name,
				Stage: "simulate " + cfg.Name, Err: err}
		}
		start := time.Now()
		res, err := sim.Run(tr)
		if err != nil {
			return nil, &WorkloadError{Workload: w.Name,
				Stage: "simulate " + cfg.Name, Err: err}
		}
		r.noteSim(w.Name, res.Cycles, time.Since(start))
		return res, nil
	})
}

// workers resolves the worker-pool bound.
func (r *Runner) workers() int {
	if r.Parallel > 0 {
		return r.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// parallelDo runs fn(i) for every i in [0, n) on a pool of at most
// r.workers() goroutines. All invocations run regardless of failures;
// the first error in index order is returned, so the error a caller
// sees does not depend on goroutine scheduling.
func (r *Runner) parallelDo(n int, fn func(i int) error) error {
	workers := r.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEach runs f over the runner's workloads on the worker pool,
// collecting results in workload order. While degrading, failed
// workloads are recorded (see Errors) and their rows dropped.
func forEach[T any](r *Runner, f func(w *workload.Workload) (T, error)) ([]T, error) {
	out := make([]T, len(r.Workloads))
	skip := make([]bool, len(r.Workloads))
	err := r.parallelDo(len(r.Workloads), func(i int) error {
		v, err := f(r.Workloads[i])
		if err != nil {
			if r.degraded(err) {
				skip[i] = true
				return nil
			}
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	kept := make([]T, 0, len(out))
	for i := range out {
		if !skip[i] {
			kept = append(kept, out[i])
		}
	}
	return kept, nil
}
