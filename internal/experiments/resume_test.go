package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/workload"
)

// resumeWorkloads and resumeConfigs define the small campaign the
// kill/resume tests run: enough stages that a SIGKILL lands mid-flight,
// small enough to stay test-fast.
var resumeConfigs = []cpu.Config{
	cpu.Conventional(2, 2),
	cpu.Decoupled(3, 3),
}

func resumeRunner(t *testing.T, dir string, resume bool) *Runner {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := quickRunner(t, "compress", "li")
	r.MaxInsts = 120_000
	r.Parallel = 1 // deterministic stage order; the store works regardless
	r.Obs = obs.NewRegistry()
	r.Store = s
	r.Resume = resume
	return r
}

// resumeCampaign runs the fixed campaign and renders its deterministic
// report: the Figure 8 table over the two configurations.
func resumeCampaign(r *Runner) (string, error) {
	type cell struct {
		w   *workload.Workload
		res [2]*cpu.Result
	}
	cells := make([]cell, len(r.Workloads))
	for i, w := range r.Workloads {
		cells[i].w = w
		for j, cfg := range resumeConfigs {
			res, err := r.SimulateConfig(w, cfg)
			if err != nil {
				return "", err
			}
			cells[i].res[j] = res
		}
	}
	var b strings.Builder
	for _, c := range cells {
		fmt.Fprintf(&b, "%s:", c.w.Name)
		for j, res := range c.res {
			fmt.Fprintf(&b, " %s cycles=%d ipc=%.4f", resumeConfigs[j].Name, res.Cycles, res.IPC())
		}
		fmt.Fprintln(&b)
	}
	return b.String(), nil
}

// artifactBytes renders the registry as a metrics artifact under a
// fixed RunMeta, so two byte-identical registries produce byte-identical
// artifacts regardless of wall clock.
func artifactBytes(t *testing.T, reg *obs.Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	meta := obs.RunMeta{Cmd: "resume-test", GoVersion: "go", WallSeconds: 1}
	if err := obs.EncodeArtifact(&buf, reg.Artifact(meta)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeHelper is not a test of its own: TestKillResumeDifferential
// re-executes the test binary with ARL_RESUME_STORE set and SIGKILLs it
// mid-campaign to produce a genuinely crashed store directory.
func TestResumeHelper(t *testing.T) {
	dir := os.Getenv("ARL_RESUME_STORE")
	if dir == "" {
		t.Skip("helper process for TestKillResumeDifferential")
	}
	r := resumeRunner(t, dir, false)
	if _, err := resumeCampaign(r); err != nil {
		t.Fatal(err)
	}
}

func countFiles(dir string) int {
	n := 0
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			n++
		}
		return nil
	})
	return n
}

// TestKillResumeDifferential is the crash-recovery acceptance test:
// SIGKILL a child process mid-campaign, resume the campaign from its
// store in a fresh "process" (a fresh Runner and registry here), and
// require the final report and metrics artifact to be byte-identical
// to an uninterrupted run's. Then flip one byte of a stored record and
// require the resumed report to survive unchanged, with the mangled
// record quarantined and recomputed.
func TestKillResumeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a child process")
	}
	base := t.TempDir()
	killedDir := filepath.Join(base, "killed")

	// Run the campaign in a child and SIGKILL it once the store holds
	// some — but plausibly not all — records. A campaign that outruns
	// the poller just degrades this into a fully-warm resume, which
	// the differential below still validates.
	cmd := exec.Command(os.Args[0], "-test.run=^TestResumeHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "ARL_RESUME_STORE="+killedDir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// With Parallel=1 the helper commits program, trace, then results
	// per workload: three objects guarantee at least one result record
	// — the kind that carries a metrics fragment — is on disk.
	objects := filepath.Join(killedDir, "objects")
	deadline := time.Now().Add(2 * time.Minute)
	for countFiles(objects) < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("killing helper: %v", err)
	}
	cmd.Wait() // reap; a kill error is expected
	if countFiles(objects) == 0 {
		t.Fatal("helper was killed before writing any store records; campaign too small")
	}

	// Reference: the same campaign, uninterrupted, fresh store.
	ref := resumeRunner(t, filepath.Join(base, "ref"), false)
	refReport, err := resumeCampaign(ref)
	if err != nil {
		t.Fatal(err)
	}
	refArt := artifactBytes(t, ref.Obs)

	// Resume from the killed store in a fresh runner.
	res := resumeRunner(t, killedDir, true)
	resReport, err := resumeCampaign(res)
	if err != nil {
		t.Fatal(err)
	}
	resArt := artifactBytes(t, res.Obs)

	if resReport != refReport {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- uninterrupted\n%s--- resumed\n%s",
			refReport, resReport)
	}
	if !bytes.Equal(resArt, refArt) {
		t.Fatalf("resumed metrics artifact differs from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s",
			refArt, resArt)
	}
	if hits := res.Store.Stats().Hits; hits == 0 {
		t.Fatal("resumed run reported zero store hits; it recomputed everything")
	}

	// Corruption leg: flip one byte in every record the killed store
	// holds, then resume again. Every mangled record must be detected,
	// quarantined and recomputed — and the report must not change.
	var flipped int
	err = filepath.Walk(objects, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)/2] ^= 0x01
		flipped++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if flipped == 0 {
		t.Fatal("no records to corrupt")
	}
	cor := resumeRunner(t, killedDir, true)
	corReport, err := resumeCampaign(cor)
	if err != nil {
		t.Fatalf("resume over corrupted store failed: %v", err)
	}
	if corReport != refReport {
		t.Fatalf("corrupted-store resume changed the report:\n--- uninterrupted\n%s--- corrupted resume\n%s",
			refReport, corReport)
	}
	if !bytes.Equal(artifactBytes(t, cor.Obs), refArt) {
		t.Fatal("corrupted-store resume changed the metrics artifact")
	}
	st := cor.Store.Stats()
	if st.Corrupt == 0 {
		t.Fatalf("no corruption detected after flipping %d records: %+v", flipped, st)
	}
	if q, err := cor.Store.Quarantined(); err != nil || q == 0 {
		t.Fatalf("quarantine empty after corruption (n=%d, err=%v)", q, err)
	}
}

// TestTransientFailureDoesNotPoisonMemo pins the non-poisoning memo
// contract: a stage cancelled mid-memoization is not cached, so the
// next caller — e.g. an in-process resume after a graceful shutdown
// request was withdrawn — recomputes and succeeds.
func TestTransientFailureDoesNotPoisonMemo(t *testing.T) {
	r := quickRunner(t, "li")
	r.MaxInsts = 40_000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.Ctx = ctx
	w := r.Workloads[0]
	if _, err := r.Profile(w); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := r.SimulateConfig(w, cpu.Conventional(2, 2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	r.Ctx = nil // the cancellation is over; same process retries
	if _, err := r.Profile(w); err != nil {
		t.Fatalf("profile after cancellation poisoned: %v", err)
	}
	if _, err := r.SimulateConfig(w, cpu.Conventional(2, 2)); err != nil {
		t.Fatalf("simulate after cancellation poisoned: %v", err)
	}
}

// TestBreakerDegradesWorkload drives one workload's profile stage into
// repeated watchdog expiries until the circuit breaker trips, then
// checks that further stages fail fast with ErrOpen, that degraded
// batches record the breaker once, and that the trip is published to
// the metrics registry.
func TestBreakerDegradesWorkload(t *testing.T) {
	r := quickRunner(t, "li")
	r.MaxInsts = 10_000_000 // far too big for the watchdog below
	r.Degrade = true
	r.WorkloadTimeout = time.Nanosecond
	r.Breaker = resilience.NewBreaker(3)
	r.Obs = obs.NewRegistry()
	w := r.Workloads[0]

	for i := 0; i < 3; i++ {
		if _, err := r.Profile(w); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("attempt %d: err = %v, want DeadlineExceeded", i, err)
		}
	}
	if !r.Breaker.Tripped(w.Name) {
		t.Fatal("breaker not tripped after threshold failures")
	}
	if _, err := r.Profile(w); !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("tripped workload err = %v, want ErrOpen", err)
	}
	if _, err := r.Trace(w); !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("trace on tripped workload err = %v, want ErrOpen", err)
	}

	// A degraded batch over the tripped workload renders exactly one
	// breaker entry (plus nothing else for this workload).
	if _, err := r.Table1(); err != nil {
		t.Fatalf("degraded batch aborted: %v", err)
	}
	if _, err := r.Table2(); err != nil {
		t.Fatalf("degraded batch aborted: %v", err)
	}
	var open int
	for _, we := range r.Errors() {
		if errors.Is(we, resilience.ErrOpen) {
			open++
		}
	}
	if open != 1 {
		t.Fatalf("recorded %d breaker-open errors, want exactly 1: %v", open, r.Errors())
	}

	var tripped bool
	for _, s := range r.Obs.Snapshot() {
		if s.Name == "harness_breaker_trips_total" && s.Value != nil && *s.Value >= 1 {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("harness_breaker_trips_total not published")
	}
}

// TestStoreWriteThroughAndReload checks the plain (non-crash) store
// path: a second runner over the same store resumes every stage
// without recomputing, and its results agree exactly.
func TestStoreWriteThroughAndReload(t *testing.T) {
	dir := t.TempDir()
	first := resumeRunner(t, dir, false)
	refReport, err := resumeCampaign(first)
	if err != nil {
		t.Fatal(err)
	}
	if w := first.Store.Stats().Writes; w == 0 {
		t.Fatal("write-through produced no store records")
	}

	second := resumeRunner(t, dir, true)
	gotReport, err := resumeCampaign(second)
	if err != nil {
		t.Fatal(err)
	}
	if gotReport != refReport {
		t.Fatalf("reloaded report differs:\n%s\nvs\n%s", refReport, gotReport)
	}
	st := second.Store.Stats()
	if st.Hits == 0 {
		t.Fatalf("second run had no store hits: %+v", st)
	}
	// The resumed run must not have rebuilt the expensive trace.
	for _, s := range second.RunStats() {
		if s.TraceWall != 0 {
			t.Fatalf("resumed run rebuilt a trace: %+v", s)
		}
	}
	if !bytes.Equal(artifactBytes(t, second.Obs), artifactBytes(t, first.Obs)) {
		t.Fatal("reloaded metrics artifact differs")
	}
}
