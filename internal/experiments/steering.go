package experiments

import (
	"fmt"
	"strings"

	"repro/internal/decouple"
	"repro/internal/workload"
)

// SteeringRow is one cell of the E12 steering-policy ablation: the
// (3+3) machine driven by different dispatch-steering policies.
type SteeringRow struct {
	Name    string
	Results []decouple.PolicyResult
}

// SteeringPolicies runs E12 over the runner's workloads.
func (r *Runner) SteeringPolicies() ([]SteeringRow, error) {
	return forEach(r, func(w *workload.Workload) (SteeringRow, error) {
		p, err := r.Program(w)
		if err != nil {
			return SteeringRow{}, err
		}
		pr, err := r.Profile(w)
		if err != nil {
			return SteeringRow{}, err
		}
		// The default-steering memo trace is exactly the PolicyARPT
		// trace, so the ablation rebuilds only the other policies.
		tr, err := r.Trace(w)
		if err != nil {
			return SteeringRow{}, err
		}
		r.logf("steering ablation %s ...", w.Name)
		results, err := decouple.ComparePoliciesReusing(p, pr, r.MaxInsts, tr)
		if err != nil {
			return SteeringRow{}, err
		}
		return SteeringRow{Name: w.Name, Results: results}, nil
	})
}

// RenderSteering prints E12: cycles of each policy relative to perfect
// steering.
func RenderSteering(rows []SteeringRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: (3+3) steering policy (cycles relative to perfect steering)\n")
	fmt.Fprintf(&b, "%-14s", "Benchmark")
	for _, p := range decouple.AllPolicies {
		fmt.Fprintf(&b, "%15s", p)
	}
	fmt.Fprintln(&b)
	for _, row := range rows {
		var perfect uint64
		for _, res := range row.Results {
			if res.Policy == decouple.PolicyPerfect {
				perfect = res.Cycles
			}
		}
		fmt.Fprintf(&b, "%-14s", row.Name)
		for _, res := range row.Results {
			rel := float64(res.Cycles) / float64(perfect)
			fmt.Fprintf(&b, "%15.3f", rel)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FFRow is one row of the E13 fast-forwarding ablation.
type FFRow struct {
	Name         string
	SpeedupFF    float64 // cycles(without) / cycles(with)
	FastForwards uint64
}

// FastForwardAblation runs E13: (3+3) with and without LVAQ fast
// forwarding.
func (r *Runner) FastForwardAblation() ([]FFRow, error) {
	return forEach(r, func(w *workload.Workload) (FFRow, error) {
		r.logf("fast-forward ablation %s ...", w.Name)
		tr, err := r.Trace(w)
		if err != nil {
			return FFRow{}, err
		}
		results, err := decouple.CompareFastForward(tr)
		if err != nil {
			return FFRow{}, err
		}
		with, without := results[0], results[1]
		return FFRow{
			Name:         w.Name,
			SpeedupFF:    float64(without.Cycles) / float64(with.Cycles),
			FastForwards: with.FastForwards,
		}, nil
	})
}

// RenderFastForward prints E13.
func RenderFastForward(rows []FFRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: LVAQ fast forwarding on the (3+3) machine\n")
	fmt.Fprintf(&b, "%-14s %12s %14s\n", "Benchmark", "speedup", "fast forwards")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12.3f %14d\n", r.Name, r.SpeedupFF, r.FastForwards)
	}
	return b.String()
}
