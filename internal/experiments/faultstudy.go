package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/decouple"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

// StormRow is one cell of E15: the (3+3) machine riding out an
// injected misprediction storm at one (rate, penalty) point. Speedup
// is against the unstormed (2+0) baseline, so the row reads as "how
// much of the decoupling win survives when steering degrades this
// badly and recovery costs this much".
type StormRow struct {
	Name        string
	Rate        float64 // per-reference misprediction injection probability
	Penalty     int     // recovery penalty, cycles
	Speedup     float64 // vs the unstormed (2+0) baseline
	IPC         float64
	Mispredicts uint64
	Recoveries  uint64
}

// RecoveryStorm runs E15: for every workload and storm rate it builds
// a trace whose steering predictions are inverted with probability
// rate (deterministic in seed; see faultinject.Storm), then simulates
// the (3+3) machine across the recovery penalties with the full
// detect→cancel→replay protocol validated. One stormed trace is built
// per (workload, rate) and shared read-only by all penalty points.
func (r *Runner) RecoveryStorm(seed uint64, rates []float64, penalties []int) ([]StormRow, error) {
	if len(rates) == 0 || len(penalties) == 0 {
		return nil, nil
	}
	nr, np := len(rates), len(penalties)
	rows := make([]StormRow, len(r.Workloads)*nr*np)
	err := r.parallelDo(len(r.Workloads)*nr, func(i int) error {
		w, rate := r.Workloads[i/nr], rates[i%nr]
		err := func() error {
			p, err := r.Program(w)
			if err != nil {
				return err
			}
			base, err := r.SimulateConfig(w, cpu.Conventional(2, 2))
			if err != nil {
				return err
			}
			r.logf("storming %s at rate %.3f ...", w.Name, rate)
			serr := r.stage(w.Name, fmt.Sprintf("storm %.3f", rate), func(ctx context.Context) error {
				watched := r.watched()
				opts := cpu.TraceOptions{
					MaxInsts:   r.MaxInsts,
					SteerFault: faultinject.Storm(seed, rate),
				}
				if watched {
					opts.Ctx = ctx
				}
				tr, err := cpu.BuildTrace(p, opts)
				if err != nil {
					return &WorkloadError{Workload: w.Name, Stage: "storm trace", Err: err}
				}
				for pi, pen := range penalties {
					cfg := cpu.Decoupled(3, 3)
					cfg.MispredictPenalty = pen
					rec := decouple.NewRecovery()
					simOpts := []cpu.Option{cpu.WithRecovery(rec)}
					if watched {
						simOpts = append(simOpts, cpu.WithContext(ctx))
					}
					sim, err := cpu.New(cfg, simOpts...)
					if err != nil {
						return &WorkloadError{Workload: w.Name, Stage: "storm simulate", Err: err}
					}
					res, err := sim.Run(tr)
					if err != nil {
						return &WorkloadError{Workload: w.Name, Stage: "storm simulate", Err: err}
					}
					if !rec.Complete() {
						return &WorkloadError{Workload: w.Name, Stage: "storm simulate",
							Err: fmt.Errorf("%d recoveries incomplete", rec.Outstanding())}
					}
					rows[i*np+pi] = StormRow{
						Name: w.Name, Rate: rate, Penalty: pen,
						Speedup:     res.Speedup(base),
						IPC:         res.IPC(),
						Mispredicts: res.ARPTMispredicts,
						Recoveries:  res.Recoveries,
					}
				}
				return nil
			})
			var we *WorkloadError
			if serr != nil && !errors.As(serr, &we) {
				// The breaker tripping (or retry exhaustion on a bare
				// error) surfaces here unwrapped; dress it so degraded
				// batches render it like any other workload failure.
				serr = &WorkloadError{Workload: w.Name, Stage: "storm", Err: serr}
			}
			return serr
		}()
		if err != nil && r.degraded(err) {
			return nil // the workload's rows stay zero; filtered below
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	kept := rows[:0]
	for _, row := range rows {
		if row.Name != "" {
			kept = append(kept, row)
		}
	}
	return kept, nil
}

// FaultCampaignConfig canonicalizes one differential fault campaign's
// parameters into the store-key Config string. It must stay in sync
// with what cmd/arlfault historically wrote, so records produced by a
// local arlfault run, a resumed one, and an arld service worker all
// address the same artifact.
func FaultCampaignConfig(seed uint64, runs, faults int, cfg cpu.Config) string {
	return fmt.Sprintf("seed=%d runs=%d faults=%d %s", seed, runs, faults, cfg.Key())
}

// FaultCampaign runs (and memoizes) one workload's seeded differential
// fault-injection campaign — the arlfault unit of work — under the
// runner's full resilience policy: store write-through and resume,
// breaker gating, retry pacing, and the per-stage watchdog. The memo
// key covers every campaign parameter, so overlapping submissions of
// the same (workload, seed, runs, faults, config) unit from concurrent
// service clients share one computation.
func (r *Runner) FaultCampaign(w *workload.Workload, seed uint64, runs, faults int, cfg cpu.Config) (*faultinject.Summary, error) {
	campaign := FaultCampaignConfig(seed, runs, faults, cfg)
	return r.campaigns.get(w.Name+"|"+campaign, func() (*faultinject.Summary, error) {
		key := r.storeKey("faultsummary", w.Name, campaign)
		var stored faultinject.Summary
		if r.storeLoad(key, &stored) {
			return &stored, nil
		}
		p, err := r.Program(w)
		if err != nil {
			return nil, err
		}
		r.logf("fault campaign %s (seed %d, %d runs x %d faults) ...", w.Name, seed, runs, faults)
		var sum *faultinject.Summary
		err = r.stage(w.Name, "faultcampaign", func(context.Context) error {
			var err error
			sum, err = faultinject.RunCampaign(p, w.Name, seed, runs, faults, r.MaxInsts, cfg)
			return err
		})
		if err != nil {
			return nil, &WorkloadError{Workload: w.Name, Stage: "faultcampaign", Err: err}
		}
		r.storePut(key, sum)
		return sum, nil
	})
}

// FaultCampaigns runs the differential campaign over the runner's
// workloads on the worker pool, returning summaries in workload order.
func (r *Runner) FaultCampaigns(seed uint64, runs, faults int, cfg cpu.Config) ([]*faultinject.Summary, error) {
	return forEach(r, func(w *workload.Workload) (*faultinject.Summary, error) {
		return r.FaultCampaign(w, seed, runs, faults, cfg)
	})
}
