package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/profile"
)

func TestRecoveryStormQuick(t *testing.T) {
	r := quickRunner(t, "go")
	r.MaxInsts = 60_000
	rates := []float64{0, 0.05}
	penalties := []int{2, 16}
	rows, err := r.RecoveryStorm(11, rates, penalties)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rates)*len(penalties) {
		t.Fatalf("got %d rows, want %d", len(rows), len(rates)*len(penalties))
	}
	byKey := make(map[[2]float64]StormRow)
	for _, row := range rows {
		if row.Recoveries != row.Mispredicts {
			t.Fatalf("row %+v: recoveries != mispredicts", row)
		}
		byKey[[2]float64{row.Rate, float64(row.Penalty)}] = row
	}
	// A storm must inject strictly more mispredictions than no storm.
	calm := byKey[[2]float64{0, 2}]
	stormy := byKey[[2]float64{0.05, 2}]
	if stormy.Mispredicts <= calm.Mispredicts {
		t.Fatalf("storm mispredicts %d <= calm %d", stormy.Mispredicts, calm.Mispredicts)
	}
	// At the same storm rate, a larger penalty cannot be faster.
	cheap := byKey[[2]float64{0.05, 2}]
	dear := byKey[[2]float64{0.05, 16}]
	if dear.Speedup > cheap.Speedup+1e-9 {
		t.Fatalf("penalty 16 speedup %.4f > penalty 2 speedup %.4f", dear.Speedup, cheap.Speedup)
	}

	out := RenderRecoveryStorm(rows)
	if !strings.Contains(out, "E15") || !strings.Contains(out, "099.go") {
		t.Fatalf("render missing headline or workload:\n%s", out)
	}
}

func TestRecoveryStormDeterministic(t *testing.T) {
	rates := []float64{0.02}
	penalties := []int{8}
	var first []StormRow
	for i := 0; i < 2; i++ {
		r := quickRunner(t, "li")
		r.MaxInsts = 40_000
		rows, err := r.RecoveryStorm(77, rates, penalties)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = rows
			continue
		}
		if len(rows) != len(first) {
			t.Fatalf("row counts differ: %d vs %d", len(rows), len(first))
		}
		for j := range rows {
			if rows[j] != first[j] {
				t.Fatalf("same-seed storm rows differ:\n%+v\n%+v", first[j], rows[j])
			}
		}
	}
}

// TestWorkloadTimeoutDegrades forces a watchdog expiry on one workload
// and checks the batch survives with a structured WorkloadError
// instead of aborting.
func TestWorkloadTimeoutDegrades(t *testing.T) {
	r := quickRunner(t, "compress", "li")
	r.MaxInsts = 2_000_000
	r.Degrade = true
	r.WorkloadTimeout = 1 * time.Nanosecond // expires before any stage finishes

	rows, err := r.Table1()
	if err != nil {
		t.Fatalf("degraded batch aborted: %v", err)
	}
	if len(rows) != 0 {
		t.Fatalf("all workloads should have timed out, got %d rows", len(rows))
	}
	errs := r.Errors()
	if len(errs) != 2 {
		t.Fatalf("recorded %d errors, want 2: %v", len(errs), errs)
	}
	for _, we := range errs {
		if !we.Timeout() {
			t.Fatalf("error not classified as timeout: %v", we)
		}
		if !errors.Is(we, context.DeadlineExceeded) {
			t.Fatalf("errors.Is(DeadlineExceeded) = false for %v", we)
		}
		if we.Stage != "profile" {
			t.Fatalf("stage = %q, want profile", we.Stage)
		}
	}
	out := RenderWorkloadErrors(errs)
	if !strings.Contains(out, "timeout") || !strings.Contains(out, "compress") {
		t.Fatalf("render missing timeout marker:\n%s", out)
	}
	if RenderWorkloadErrors(nil) != "" {
		t.Fatalf("empty error list should render nothing")
	}
}

// TestWorkloadFailurePartialReport checks graceful degradation: with
// one workload's memo holding a genuine (non-transient) stage defect,
// the report covers the survivors. Timeouts and cancellations are no
// longer sticky — see TestTransientFailureDoesNotPoisonMemo — so the
// poison here is a persistent workload defect.
func TestWorkloadFailurePartialReport(t *testing.T) {
	r := quickRunner(t, "compress", "li")
	r.MaxInsts = 50_000
	r.Degrade = true
	we := &WorkloadError{Workload: "130.li", Stage: "profile",
		Err: errors.New("synthetic persistent defect")}
	if _, err := r.profiles.get("130.li", func() (*profile.Profile, error) {
		return nil, we
	}); err == nil {
		t.Fatal("poisoning the memo failed")
	}

	rows, err := r.Table1()
	if err != nil {
		t.Fatalf("degraded batch aborted: %v", err)
	}
	if len(rows) != 1 || rows[0].Name != "129.compress" {
		t.Fatalf("rows = %+v, want just 129.compress", rows)
	}
	errs := r.Errors()
	if len(errs) != 1 || errs[0].Workload != "130.li" || errs[0].Timeout() {
		t.Fatalf("errors = %v, want one persistent li defect", errs)
	}
}

// TestBatchAbortsWithoutDegrade pins the default contract: the same
// failure without Degrade aborts the batch.
func TestBatchAbortsWithoutDegrade(t *testing.T) {
	r := quickRunner(t, "compress")
	r.MaxInsts = 1_000_000
	r.WorkloadTimeout = 1 * time.Nanosecond
	if _, err := r.Table1(); err == nil {
		t.Fatal("timed-out batch returned no error without Degrade")
	} else {
		var we *WorkloadError
		if !errors.As(err, &we) {
			t.Fatalf("error is not a WorkloadError: %v", err)
		}
	}
}

func TestRunnerCtxCancelsSimulation(t *testing.T) {
	r := quickRunner(t, "li")
	r.MaxInsts = 40_000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.Ctx = ctx
	_, err := r.SimulateConfig(r.Workloads[0], cpu.Conventional(2, 2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
