package experiments

import (
	"repro/internal/cache"
	"repro/internal/region"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Table1Row reproduces one row of the paper's Table 1: dynamic
// instruction count and load/store percentages.
type Table1Row struct {
	Name     string
	Insts    uint64
	LoadPct  float64
	StorePct float64
}

// Table1 runs E1.
func (r *Runner) Table1() ([]Table1Row, error) {
	return forEach(r, func(w *workload.Workload) (Table1Row, error) {
		pr, err := r.Profile(w)
		if err != nil {
			return Table1Row{}, err
		}
		return Table1Row{
			Name:     w.Name,
			Insts:    pr.DynInsts,
			LoadPct:  pr.LoadPct(),
			StorePct: pr.StorePct(),
		}, nil
	})
}

// Figure2Row reproduces one bar of Figure 2: the breakdown of static
// memory instructions by the set of regions they access.
type Figure2Row struct {
	Name string
	// StaticPct maps the class label ("D", "H", "S", "D/H", ...) to its
	// share of static memory instructions, in percent.
	StaticPct map[string]float64
	// MultiStaticPct and MultiDynPct are the §3.2.1 headline numbers.
	MultiStaticPct float64
	MultiDynPct    float64
	// StackOnlyPct is the "S" class share (paper: >50% on average).
	StackOnlyPct float64
	StaticTotal  int
}

// Figure2 runs E2.
func (r *Runner) Figure2() ([]Figure2Row, error) {
	return forEach(r, func(w *workload.Workload) (Figure2Row, error) {
		pr, err := r.Profile(w)
		if err != nil {
			return Figure2Row{}, err
		}
		b := pr.Classes()
		row := Figure2Row{
			Name:           w.Name,
			StaticPct:      make(map[string]float64, len(region.AllClasses)),
			MultiStaticPct: b.MultiRegionStaticPct(),
			MultiDynPct:    b.MultiRegionDynPct(),
			StackOnlyPct:   b.StackOnlyStaticPct(),
			StaticTotal:    b.StaticTotal,
		}
		for _, set := range region.AllClasses {
			row.StaticPct[set.Class()] = 100 * float64(b.StaticByClass[set]) / float64(max(b.StaticTotal, 1))
		}
		return row, nil
	})
}

// Table2Cell is one mean/stddev pair of Table 2.
type Table2Cell struct {
	Mean   float64
	StdDev float64
}

// Table2Row reproduces one row of Table 2: average (and standard
// deviation of) data/heap/stack accesses in the trailing 32- and
// 64-instruction windows.
type Table2Row struct {
	Name string
	W32  [region.Count]Table2Cell
	W64  [region.Count]Table2Cell
}

// Bursty reports the paper's "strictly bursty" predicate for a region
// at the given window size.
func (t Table2Row) Bursty(r region.Region, size int) bool {
	c := t.W32[r]
	if size == 64 {
		c = t.W64[r]
	}
	return c.Mean < c.StdDev
}

// Table2 runs E3.
func (r *Runner) Table2() ([]Table2Row, error) {
	return forEach(r, func(w *workload.Workload) (Table2Row, error) {
		pr, err := r.Profile(w)
		if err != nil {
			return Table2Row{}, err
		}
		row := Table2Row{Name: w.Name}
		for i := range pr.Windows {
			ws := &pr.Windows[i]
			dst := &row.W32
			if ws.Size == 64 {
				dst = &row.W64
			}
			for reg := 0; reg < region.Count; reg++ {
				dst[reg] = Table2Cell{
					Mean:   ws.Mean(region.Region(reg)),
					StdDev: ws.StdDev(region.Region(reg)),
				}
			}
		}
		return row, nil
	})
}

// Table2Average computes the paper's "Average" row.
func Table2Average(rows []Table2Row) Table2Row {
	avg := Table2Row{Name: "Average"}
	if len(rows) == 0 {
		return avg
	}
	n := float64(len(rows))
	for _, row := range rows {
		for reg := 0; reg < region.Count; reg++ {
			avg.W32[reg].Mean += row.W32[reg].Mean / n
			avg.W32[reg].StdDev += row.W32[reg].StdDev / n
			avg.W64[reg].Mean += row.W64[reg].Mean / n
			avg.W64[reg].StdDev += row.W64[reg].StdDev / n
		}
	}
	return avg
}

// LVCRow reproduces the §3.3 claim: the hit rate a 4 KB direct-mapped
// stack cache achieves on each program's stack reference stream
// (paper: over 99.5%, average about 99.9%).
type LVCRow struct {
	Name      string
	StackRefs uint64
	HitRate   float64
}

// LVCHitRate runs E8 by replaying each program and feeding its stack
// references into a fresh LVC model.
func (r *Runner) LVCHitRate() ([]LVCRow, error) {
	return forEach(r, func(w *workload.Workload) (LVCRow, error) {
		p, err := r.Program(w)
		if err != nil {
			return LVCRow{}, err
		}
		m, err := vm.New(vm.Config{Program: p})
		if err != nil {
			return LVCRow{}, err
		}
		limit := r.MaxInsts
		if limit == 0 {
			limit = vm.DefaultMaxInsts
		}
		m.MaxInsts = limit + 1
		lvc, err := cache.New(cache.LVCConfig(1))
		if err != nil {
			return LVCRow{}, err
		}
		for !m.Halted() && m.Seq() < limit {
			ev, err := m.Step()
			if err != nil {
				return LVCRow{}, err
			}
			if ev.Inst.IsMem() && ev.Region == region.Stack {
				lvc.Access(ev.MemAddr, ev.Inst.IsStore())
			}
		}
		st := lvc.Stats()
		return LVCRow{Name: w.Name, StackRefs: st.Accesses, HitRate: st.HitRate()}, nil
	})
}
