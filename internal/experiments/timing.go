package experiments

import (
	"fmt"

	"repro/internal/cpu"
)

// Figure8Row reproduces one group of Figure 8 bars: performance of each
// machine configuration relative to the (2+0) baseline.
type Figure8Row struct {
	Name string
	// Speedup maps configuration name to cycles(2+0)/cycles(config).
	Speedup map[string]float64
	// IPC maps configuration name to instructions per cycle.
	IPC map[string]float64
	// Mispredicts maps configuration name to ARPT steering misses.
	Mispredicts map[string]uint64
	// LVCHitRate is the LVC hit rate in the (3+3) configuration.
	LVCHitRate float64
}

// Figure8 runs E7: every Figure 8 configuration over every workload.
// The first configuration in cpu.Figure8Configs — (2+0) — is the
// baseline.
func (r *Runner) Figure8() ([]Figure8Row, error) {
	return r.FigureWithConfigs(cpu.Figure8Configs())
}

// FigureWithConfigs runs the timing study over an arbitrary
// configuration list; the first entry is the speedup baseline. The
// study fans out over every (workload, configuration) pair: each pair
// simulates the workload's memoized trace independently (traces are
// read-only under cpu.Simulate), so the trace is built once per
// workload no matter how many configurations run.
func (r *Runner) FigureWithConfigs(configs []cpu.Config) ([]Figure8Row, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("experiments: no configurations")
	}
	nc := len(configs)
	results := make([]*cpu.Result, len(r.Workloads)*nc)
	err := r.parallelDo(len(results), func(i int) error {
		res, err := r.SimulateConfig(r.Workloads[i/nc], configs[i%nc])
		if err != nil {
			if r.degraded(err) {
				return nil // results[i] stays nil; the row is dropped
			}
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Figure8Row, 0, len(r.Workloads))
	for wi, w := range r.Workloads {
		if degradedRow(results[wi*nc : (wi+1)*nc]) {
			continue
		}
		row := Figure8Row{
			Name:        w.Name,
			Speedup:     make(map[string]float64, nc),
			IPC:         make(map[string]float64, nc),
			Mispredicts: make(map[string]uint64, nc),
		}
		base := results[wi*nc]
		for ci, cfg := range configs {
			res := results[wi*nc+ci]
			row.Speedup[cfg.Name] = res.Speedup(base)
			row.IPC[cfg.Name] = res.IPC()
			row.Mispredicts[cfg.Name] = res.ARPTMispredicts
			if cfg.Name == "(3+3)" {
				row.LVCHitRate = res.LVCStats.HitRate()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure8Average computes the per-configuration geometric-mean-free
// arithmetic average the paper quotes ("improves the performance by
// 33% ... on average"): speedup, IPC, mean mispredict count, and the
// (3+3) LVC hit rate.
func Figure8Average(rows []Figure8Row, configs []cpu.Config) Figure8Row {
	avg := Figure8Row{
		Name:        "Average",
		Speedup:     map[string]float64{},
		IPC:         map[string]float64{},
		Mispredicts: map[string]uint64{},
	}
	if len(rows) == 0 {
		return avg
	}
	n := float64(len(rows))
	mispredicts := make(map[string]uint64, len(configs))
	for _, row := range rows {
		for _, cfg := range configs {
			avg.Speedup[cfg.Name] += row.Speedup[cfg.Name] / n
			avg.IPC[cfg.Name] += row.IPC[cfg.Name] / n
			mispredicts[cfg.Name] += row.Mispredicts[cfg.Name]
		}
		avg.LVCHitRate += row.LVCHitRate / n
	}
	for _, cfg := range configs {
		avg.Mispredicts[cfg.Name] = mispredicts[cfg.Name] / uint64(len(rows))
	}
	return avg
}

// PenaltyRow is one cell of E11: sensitivity of the (3+3) configuration
// to the ARPT misprediction recovery penalty.
type PenaltyRow struct {
	Name        string
	Penalty     int
	Speedup     float64 // vs (2+0)
	Mispredicts uint64
}

// PenaltySweep runs E11 over the given penalty values, fanning out
// over (workload, penalty) pairs. Both the trace and the (2+0)
// baseline result come from the Runner memos, so a sweep following
// Figure 8 re-simulates neither.
func (r *Runner) PenaltySweep(penalties []int) ([]PenaltyRow, error) {
	if len(penalties) == 0 {
		return nil, nil
	}
	np := len(penalties)
	rows := make([]PenaltyRow, len(r.Workloads)*np)
	err := r.parallelDo(len(rows), func(i int) error {
		w, pen := r.Workloads[i/np], penalties[i%np]
		base, err := r.SimulateConfig(w, cpu.Conventional(2, 2))
		if err == nil {
			cfg := cpu.Decoupled(3, 3)
			cfg.MispredictPenalty = pen
			var res *cpu.Result
			if res, err = r.SimulateConfig(w, cfg); err == nil {
				rows[i] = PenaltyRow{
					Name: w.Name, Penalty: pen,
					Speedup:     res.Speedup(base),
					Mispredicts: res.ARPTMispredicts,
				}
				return nil
			}
		}
		if r.degraded(err) {
			return nil // rows[i] stays zero; filtered below
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	kept := rows[:0]
	for _, row := range rows {
		if row.Name != "" {
			kept = append(kept, row)
		}
	}
	return kept, nil
}

// degradedRow reports whether any cell of one workload's result row
// was dropped by degradation.
func degradedRow(results []*cpu.Result) bool {
	for _, res := range results {
		if res == nil {
			return true
		}
	}
	return false
}
