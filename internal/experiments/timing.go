package experiments

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/workload"
)

// Figure8Row reproduces one group of Figure 8 bars: performance of each
// machine configuration relative to the (2+0) baseline.
type Figure8Row struct {
	Name string
	// Speedup maps configuration name to cycles(2+0)/cycles(config).
	Speedup map[string]float64
	// IPC maps configuration name to instructions per cycle.
	IPC map[string]float64
	// Mispredicts maps configuration name to ARPT steering misses.
	Mispredicts map[string]uint64
	// LVCHitRate is the LVC hit rate in the (3+3) configuration.
	LVCHitRate float64
}

// Figure8 runs E7: every Figure 8 configuration over every workload.
// The first configuration in cpu.Figure8Configs — (2+0) — is the
// baseline.
func (r *Runner) Figure8() ([]Figure8Row, error) {
	return r.FigureWithConfigs(cpu.Figure8Configs())
}

// FigureWithConfigs runs the timing study over an arbitrary
// configuration list; the first entry is the speedup baseline.
func (r *Runner) FigureWithConfigs(configs []cpu.Config) ([]Figure8Row, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("experiments: no configurations")
	}
	return forEach(r, func(w *workload.Workload) (Figure8Row, error) {
		p, err := r.Program(w)
		if err != nil {
			return Figure8Row{}, err
		}
		r.logf("tracing %s ...", w.Name)
		tr, err := cpu.BuildTrace(p, cpu.TraceOptions{MaxInsts: r.MaxInsts})
		if err != nil {
			return Figure8Row{}, err
		}
		row := Figure8Row{
			Name:        w.Name,
			Speedup:     make(map[string]float64, len(configs)),
			IPC:         make(map[string]float64, len(configs)),
			Mispredicts: make(map[string]uint64, len(configs)),
		}
		var base *cpu.Result
		for _, cfg := range configs {
			r.logf("  %s %s ...", w.Name, cfg.Name)
			res, err := cpu.Simulate(tr, cfg)
			if err != nil {
				return Figure8Row{}, fmt.Errorf("%s/%s: %w", w.Name, cfg.Name, err)
			}
			if base == nil {
				base = res
			}
			row.Speedup[cfg.Name] = res.Speedup(base)
			row.IPC[cfg.Name] = res.IPC()
			row.Mispredicts[cfg.Name] = res.ARPTMispredicts
			if cfg.Name == "(3+3)" {
				row.LVCHitRate = res.LVCStats.HitRate()
			}
		}
		return row, nil
	})
}

// Figure8Average computes the per-configuration geometric-mean-free
// arithmetic average the paper quotes ("improves the performance by
// 33% ... on average").
func Figure8Average(rows []Figure8Row, configs []cpu.Config) Figure8Row {
	avg := Figure8Row{Name: "Average", Speedup: map[string]float64{}, IPC: map[string]float64{}}
	if len(rows) == 0 {
		return avg
	}
	for _, row := range rows {
		for _, cfg := range configs {
			avg.Speedup[cfg.Name] += row.Speedup[cfg.Name] / float64(len(rows))
			avg.IPC[cfg.Name] += row.IPC[cfg.Name] / float64(len(rows))
		}
	}
	return avg
}

// PenaltyRow is one cell of E11: sensitivity of the (3+3) configuration
// to the ARPT misprediction recovery penalty.
type PenaltyRow struct {
	Name        string
	Penalty     int
	Speedup     float64 // vs (2+0)
	Mispredicts uint64
}

// PenaltySweep runs E11 over the given penalty values.
func (r *Runner) PenaltySweep(penalties []int) ([]PenaltyRow, error) {
	var rows []PenaltyRow
	for _, w := range r.Workloads {
		p, err := r.Program(w)
		if err != nil {
			return nil, err
		}
		tr, err := cpu.BuildTrace(p, cpu.TraceOptions{MaxInsts: r.MaxInsts})
		if err != nil {
			return nil, err
		}
		base, err := cpu.Simulate(tr, cpu.Conventional(2, 2))
		if err != nil {
			return nil, err
		}
		for _, pen := range penalties {
			cfg := cpu.Decoupled(3, 3)
			cfg.MispredictPenalty = pen
			res, err := cpu.Simulate(tr, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PenaltyRow{
				Name: w.Name, Penalty: pen,
				Speedup:     res.Speedup(base),
				Mispredicts: res.ARPTMispredicts,
			})
		}
	}
	return rows, nil
}
