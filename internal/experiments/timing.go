package experiments

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/workload"
)

// Figure8Row reproduces one group of Figure 8 bars: performance of each
// machine configuration relative to the (2+0) baseline.
type Figure8Row struct {
	Name string
	// Speedup maps configuration name to cycles(2+0)/cycles(config).
	Speedup map[string]float64
	// IPC maps configuration name to instructions per cycle.
	IPC map[string]float64
	// Mispredicts maps configuration name to ARPT steering misses.
	Mispredicts map[string]uint64
	// LVCHitRate is the LVC hit rate in the (3+3) configuration.
	LVCHitRate float64
}

// Figure8 runs E7: every Figure 8 configuration over every workload.
// The first configuration in cpu.Figure8Configs — (2+0) — is the
// baseline.
func (r *Runner) Figure8() ([]Figure8Row, error) {
	return r.FigureWithConfigs(cpu.Figure8Configs())
}

// FigureWithConfigs runs the timing study over an arbitrary
// configuration list; the first entry is the speedup baseline. The
// study fans out over every (workload, configuration) pair: each pair
// simulates the workload's memoized trace independently (traces are
// read-only under cpu.Simulate), so the trace is built once per
// workload no matter how many configurations run.
func (r *Runner) FigureWithConfigs(configs []cpu.Config) ([]Figure8Row, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("experiments: no configurations")
	}
	nc := len(configs)
	results := make([]*cpu.Result, len(r.Workloads)*nc)
	err := r.parallelDo(len(results), func(i int) error {
		res, err := r.SimulateConfig(r.Workloads[i/nc], configs[i%nc])
		if err != nil {
			if r.degraded(err) {
				return nil // results[i] stays nil; the row is dropped
			}
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return AssembleFigure8(r.Workloads, configs, results), nil
}

// AssembleFigure8 builds the Figure 8 rows out of one simulation
// result per (workload, configuration) unit, laid out workload-major:
// results[wi*len(configs)+ci]. The first configuration is the speedup
// baseline. A workload with any missing (nil) cell is dropped —
// that is what graceful degradation and a partially-failed remote
// campaign both look like. The assembly is shared by the in-process
// Runner drivers and the arld service client, which is what keeps a
// -server report byte-identical to a local one.
func AssembleFigure8(workloads []*workload.Workload, configs []cpu.Config, results []*cpu.Result) []Figure8Row {
	nc := len(configs)
	rows := make([]Figure8Row, 0, len(workloads))
	for wi, w := range workloads {
		if degradedRow(results[wi*nc : (wi+1)*nc]) {
			continue
		}
		row := Figure8Row{
			Name:        w.Name,
			Speedup:     make(map[string]float64, nc),
			IPC:         make(map[string]float64, nc),
			Mispredicts: make(map[string]uint64, nc),
		}
		base := results[wi*nc]
		for ci, cfg := range configs {
			res := results[wi*nc+ci]
			row.Speedup[cfg.Name] = res.Speedup(base)
			row.IPC[cfg.Name] = res.IPC()
			row.Mispredicts[cfg.Name] = res.ARPTMispredicts
			if cfg.Name == "(3+3)" {
				row.LVCHitRate = res.LVCStats.HitRate()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Figure8Average computes the per-configuration geometric-mean-free
// arithmetic average the paper quotes ("improves the performance by
// 33% ... on average"): speedup, IPC, mean mispredict count, and the
// (3+3) LVC hit rate.
func Figure8Average(rows []Figure8Row, configs []cpu.Config) Figure8Row {
	avg := Figure8Row{
		Name:        "Average",
		Speedup:     map[string]float64{},
		IPC:         map[string]float64{},
		Mispredicts: map[string]uint64{},
	}
	if len(rows) == 0 {
		return avg
	}
	n := float64(len(rows))
	mispredicts := make(map[string]uint64, len(configs))
	for _, row := range rows {
		for _, cfg := range configs {
			avg.Speedup[cfg.Name] += row.Speedup[cfg.Name] / n
			avg.IPC[cfg.Name] += row.IPC[cfg.Name] / n
			mispredicts[cfg.Name] += row.Mispredicts[cfg.Name]
		}
		avg.LVCHitRate += row.LVCHitRate / n
	}
	for _, cfg := range configs {
		avg.Mispredicts[cfg.Name] = mispredicts[cfg.Name] / uint64(len(rows))
	}
	return avg
}

// PenaltyRow is one cell of E11: sensitivity of the (3+3) configuration
// to the ARPT misprediction recovery penalty.
type PenaltyRow struct {
	Name        string
	Penalty     int
	Speedup     float64 // vs (2+0)
	Mispredicts uint64
}

// PenaltyConfig is the (3+3) machine at one ARPT misprediction
// recovery penalty — the E11 sweep's unit configuration. WithPenalty
// renames canonically ("(3+3,pen4)"), so each penalty point has its
// own name identity; pen=1 stays plain "(3+3)" and dedupes with
// Figure 8's.
func PenaltyConfig(pen int) cpu.Config {
	return cpu.Decoupled(3, 3).WithPenalty(pen)
}

// PenaltySweep runs E11 over the given penalty values, fanning out
// over (workload, penalty) pairs. Both the trace and the (2+0)
// baseline result come from the Runner memos, so a sweep following
// Figure 8 re-simulates neither.
func (r *Runner) PenaltySweep(penalties []int) ([]PenaltyRow, error) {
	if len(penalties) == 0 {
		return nil, nil
	}
	np := len(penalties)
	bases := make([]*cpu.Result, len(r.Workloads)*np)
	results := make([]*cpu.Result, len(r.Workloads)*np)
	err := r.parallelDo(len(results), func(i int) error {
		w, pen := r.Workloads[i/np], penalties[i%np]
		base, err := r.SimulateConfig(w, cpu.Conventional(2, 2))
		if err == nil {
			var res *cpu.Result
			if res, err = r.SimulateConfig(w, PenaltyConfig(pen)); err == nil {
				bases[i], results[i] = base, res
				return nil
			}
		}
		if r.degraded(err) {
			return nil // the cell stays nil; filtered by the assembler
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return AssemblePenaltySweep(r.Workloads, penalties, bases, results), nil
}

// AssemblePenaltySweep builds the E11 rows out of per-unit results
// laid out workload-major (index wi*len(penalties)+pi): the stormed
// (3+3) result in results and its (2+0) baseline in bases. Units with
// a missing (nil) cell are dropped. Shared by the Runner driver and
// the arld service client.
func AssemblePenaltySweep(workloads []*workload.Workload, penalties []int, bases, results []*cpu.Result) []PenaltyRow {
	np := len(penalties)
	rows := make([]PenaltyRow, 0, len(results))
	for wi, w := range workloads {
		for pi, pen := range penalties {
			base, res := bases[wi*np+pi], results[wi*np+pi]
			if base == nil || res == nil {
				continue
			}
			rows = append(rows, PenaltyRow{
				Name: w.Name, Penalty: pen,
				Speedup:     res.Speedup(base),
				Mispredicts: res.ARPTMispredicts,
			})
		}
	}
	return rows
}

// degradedRow reports whether any cell of one workload's result row
// was dropped by degradation.
func degradedRow(results []*cpu.Result) bool {
	for _, res := range results {
		if res == nil {
			return true
		}
	}
	return false
}
