package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/vm"
	"repro/internal/workload"
)

// HintMode selects the compiler-information variant for the Figure 5
// study.
type HintMode int

// The three hint modes: none (pure hardware), the paper's profile
// oracle, and this reproduction's real MiniC Figure 6 static analysis.
const (
	HintsOff HintMode = iota
	HintsOracle
	HintsCompiler
)

func (h HintMode) String() string {
	switch h {
	case HintsOff:
		return "none"
	case HintsOracle:
		return "oracle"
	case HintsCompiler:
		return "compiler"
	case HintsBinary:
		return "binary"
	}
	return fmt.Sprintf("hints(%d)", int(h))
}

// Figure4Row reproduces one group of Figure 4 bars: correct
// classification rate per scheme, with the STATIC coverage fraction.
type Figure4Row struct {
	Name string
	// AccuracyPct maps the scheme name to the percentage of dynamic
	// references correctly classified.
	AccuracyPct map[string]float64
	// StaticCoveredPct is the share of references whose region is
	// manifest in the addressing mode (Figure 4's dark lower bars).
	StaticCoveredPct float64
}

// Table3Row reproduces one row of Table 3: entries occupied in an
// unlimited ARPT per context variant.
type Table3Row struct {
	Name   string
	Static int // occupied without context bits (1BIT)
	GBH    int
	CID    int
	Hybrid int
}

// Figure5Row reproduces one group of Figure 5 bars: 1BIT-HYBRID
// accuracy as the ARPT shrinks, with and without compiler information.
type Figure5Row struct {
	Name string
	// AccuracyPct[size][mode]; size 0 means unlimited.
	AccuracyPct map[int]map[HintMode]float64
}

// Figure5Sizes are the table sizes of Figure 5 (0 = unlimited).
var Figure5Sizes = []int{0, 64 * 1024, 32 * 1024, 16 * 1024, 8 * 1024}

// AblationRow compares 1-bit against 2-bit schemes (the paper's
// footnote 8: 2-bit performance "is consistently lower").
type AblationRow struct {
	Name      string
	OneBit    float64
	TwoBit    float64
	OneHybrid float64
	TwoHybrid float64
}

// ContextRow is one cell of the E10 context-width sweep.
type ContextRow struct {
	Name        string
	GBHBits     int
	CIDBits     int
	AccuracyPct float64
}

// PredictorStudy bundles every experiment that shares a single
// functional pass per workload.
type PredictorStudy struct {
	Figure4  []Figure4Row
	Table3   []Table3Row
	Figure5  []Figure5Row
	Ablation []AblationRow
}

// classifierSet is everything evaluated during one program run.
type classifierSet struct {
	schemes map[core.Scheme]*core.Classifier      // Figure 4 + Table 3
	sized   map[int]map[HintMode]*core.Classifier // Figure 5
	twoBit  map[core.Scheme]*core.Classifier      // E9
}

func buildClassifiers(p *prog.Program, oracle core.HintSource) (*classifierSet, error) {
	cs := &classifierSet{
		schemes: make(map[core.Scheme]*core.Classifier),
		sized:   make(map[int]map[HintMode]*core.Classifier),
		twoBit:  make(map[core.Scheme]*core.Classifier),
	}
	for _, s := range core.AllSchemes {
		c, err := core.NewClassifier(core.ClassifierConfig{Scheme: s})
		if err != nil {
			return nil, err
		}
		cs.schemes[s] = c
	}
	for _, s := range []core.Scheme{core.Scheme2Bit, core.Scheme2BitHybrid} {
		c, err := core.NewClassifier(core.ClassifierConfig{Scheme: s})
		if err != nil {
			return nil, err
		}
		cs.twoBit[s] = c
	}
	for _, size := range Figure5Sizes {
		cs.sized[size] = make(map[HintMode]*core.Classifier)
		for _, mode := range []HintMode{HintsOff, HintsOracle, HintsCompiler} {
			var hints core.HintSource
			switch mode {
			case HintsOracle:
				hints = oracle
			case HintsCompiler:
				hints = p.HintAt
			}
			c, err := core.NewClassifier(
				core.ClassifierConfig{Scheme: core.Scheme1BitHybrid, Entries: size},
				core.WithHints(hints))
			if err != nil {
				return nil, err
			}
			cs.sized[size][mode] = c
		}
	}
	return cs, nil
}

func (cs *classifierSet) classify(ev core.RefEvent) {
	for _, c := range cs.schemes {
		c.Classify(ev.Index, ev.PC, ev.Inst, ev.Ctx, ev.Actual)
	}
	for _, c := range cs.twoBit {
		c.Classify(ev.Index, ev.PC, ev.Inst, ev.Ctx, ev.Actual)
	}
	for _, byMode := range cs.sized {
		for _, c := range byMode {
			c.Classify(ev.Index, ev.PC, ev.Inst, ev.Ctx, ev.Actual)
		}
	}
}

// predictorRows is one workload's slice of the predictor study.
type predictorRows struct {
	f4 Figure4Row
	t3 Table3Row
	f5 Figure5Row
	ab AblationRow
}

// RunPredictorStudy executes E4, E5, E6 and E9 in one functional pass
// per workload, fanning workloads out over the worker pool. Every
// workload builds its own classifierSet (each with private ARPT
// state), so no predictor state is shared across goroutines.
func (r *Runner) RunPredictorStudy() (*PredictorStudy, error) {
	rows, err := forEach(r, r.predictorPass)
	if err != nil {
		return nil, err
	}
	study := &PredictorStudy{}
	for _, row := range rows {
		study.Figure4 = append(study.Figure4, row.f4)
		study.Table3 = append(study.Table3, row.t3)
		study.Figure5 = append(study.Figure5, row.f5)
		study.Ablation = append(study.Ablation, row.ab)
	}
	return study, nil
}

// predictorPass runs the single shared functional pass for one
// workload and extracts its Figure 4 / Table 3 / Figure 5 / E9 rows.
func (r *Runner) predictorPass(w *workload.Workload) (predictorRows, error) {
	var rows predictorRows
	p, err := r.Program(w)
	if err != nil {
		return rows, err
	}
	pr, err := r.Profile(w) // memoized; supplies the oracle
	if err != nil {
		return rows, err
	}
	cs, err := buildClassifiers(p, pr.Oracle())
	if err != nil {
		return rows, err
	}

	r.logf("predictor study %s ...", w.Name)
	m, err := vm.New(vm.Config{Program: p})
	if err != nil {
		return rows, err
	}
	limit := r.MaxInsts
	if limit == 0 {
		limit = vm.DefaultMaxInsts
	}
	m.MaxInsts = limit + 1
	var ctx core.Context
	for !m.Halted() && m.Seq() < limit {
		ev, err := m.Step()
		if err != nil {
			return rows, fmt.Errorf("%s: %w", w.Name, err)
		}
		if ev.Inst.IsMem() {
			ctx.CID = m.Reg(isa.RA)
			cs.classify(core.RefEvent{
				Index: ev.Index, PC: ev.PC, Addr: ev.MemAddr,
				Inst: ev.Inst, Ctx: ctx,
				Actual: core.ActualOf(ev.Region),
			})
		}
		if ev.Inst.IsBranch() {
			ctx.UpdateGBH(ev.Taken)
		}
	}

	// Figure 4.
	rows.f4 = Figure4Row{Name: w.Name, AccuracyPct: map[string]float64{}}
	for s, c := range cs.schemes {
		rows.f4.AccuracyPct[s.String()] = c.Stats.Accuracy()
	}
	rows.f4.StaticCoveredPct = cs.schemes[core.SchemeStatic].Stats.StaticFraction()

	// Table 3.
	rows.t3 = Table3Row{
		Name:   w.Name,
		Static: cs.schemes[core.Scheme1Bit].Table.Occupied(),
		GBH:    cs.schemes[core.Scheme1BitGBH].Table.Occupied(),
		CID:    cs.schemes[core.Scheme1BitCID].Table.Occupied(),
		Hybrid: cs.schemes[core.Scheme1BitHybrid].Table.Occupied(),
	}

	// Figure 5.
	rows.f5 = Figure5Row{Name: w.Name, AccuracyPct: map[int]map[HintMode]float64{}}
	for size, byMode := range cs.sized {
		rows.f5.AccuracyPct[size] = map[HintMode]float64{}
		for mode, c := range byMode {
			rows.f5.AccuracyPct[size][mode] = c.Stats.Accuracy()
		}
	}

	// E9 ablation.
	rows.ab = AblationRow{
		Name:      w.Name,
		OneBit:    cs.schemes[core.Scheme1Bit].Stats.Accuracy(),
		TwoBit:    cs.twoBit[core.Scheme2Bit].Stats.Accuracy(),
		OneHybrid: cs.schemes[core.Scheme1BitHybrid].Stats.Accuracy(),
		TwoHybrid: cs.twoBit[core.Scheme2BitHybrid].Stats.Accuracy(),
	}
	return rows, nil
}

// ContextSweep runs E10: hybrid-context accuracy across GBH/CID width
// combinations, on an unlimited table. Workloads fan out over the
// worker pool; each builds its own table cells, and rows come back
// grouped in workload order.
func (r *Runner) ContextSweep(gbhWidths, cidWidths []int) ([]ContextRow, error) {
	perW, err := forEach(r, func(w *workload.Workload) ([]ContextRow, error) {
		var rows []ContextRow
		p, err := r.Program(w)
		if err != nil {
			return nil, err
		}
		type cell struct {
			gbh, cid int
			c        *core.Classifier
		}
		var cells []cell
		for _, g := range gbhWidths {
			for _, ci := range cidWidths {
				cfg := core.Config{Bits: 1, GBHBits: g, CIDBits: ci}
				t, err := core.NewARPT(cfg)
				if err != nil {
					return nil, err
				}
				c, err := core.NewClassifier(
					core.ClassifierConfig{Scheme: core.Scheme1BitHybrid}, core.WithTable(t))
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell{g, ci, c})
			}
		}
		m, err := vm.New(vm.Config{Program: p})
		if err != nil {
			return nil, err
		}
		limit := r.MaxInsts
		if limit == 0 {
			limit = vm.DefaultMaxInsts
		}
		m.MaxInsts = limit + 1
		var ctx core.Context
		for !m.Halted() && m.Seq() < limit {
			ev, err := m.Step()
			if err != nil {
				return nil, err
			}
			if ev.Inst.IsMem() {
				ctx.CID = m.Reg(isa.RA)
				for _, cl := range cells {
					cl.c.Classify(ev.Index, ev.PC, ev.Inst, ctx, core.ActualOf(ev.Region))
				}
			}
			if ev.Inst.IsBranch() {
				ctx.UpdateGBH(ev.Taken)
			}
		}
		for _, cl := range cells {
			rows = append(rows, ContextRow{
				Name: w.Name, GBHBits: cl.gbh, CIDBits: cl.cid,
				AccuracyPct: cl.c.Stats.Accuracy(),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []ContextRow
	for _, part := range perW {
		rows = append(rows, part...)
	}
	return rows, nil
}

// Figure4Average computes the per-scheme average across rows.
func Figure4Average(rows []Figure4Row) Figure4Row {
	avg := Figure4Row{Name: "Average", AccuracyPct: map[string]float64{}}
	if len(rows) == 0 {
		return avg
	}
	for _, row := range rows {
		for k, v := range row.AccuracyPct {
			avg.AccuracyPct[k] += v / float64(len(rows))
		}
		avg.StaticCoveredPct += row.StaticCoveredPct / float64(len(rows))
	}
	return avg
}
