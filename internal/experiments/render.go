package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/region"
)

// RenderTable1 prints E1 in the paper's Table 1 layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Dynamic instruction count and load/store mix\n")
	fmt.Fprintf(&b, "%-14s %12s %8s %8s\n", "Benchmark", "Inst. count", "L%", "S%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12d %7.0f%% %7.0f%%\n", r.Name, r.Insts, r.LoadPct, r.StorePct)
	}
	return b.String()
}

// RenderFigure2 prints E2 as the per-class percentage table behind the
// paper's stacked bars.
func RenderFigure2(rows []Figure2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2. Static memory instructions by accessed region set (%%)\n")
	fmt.Fprintf(&b, "%-14s", "Benchmark")
	for _, set := range region.AllClasses {
		fmt.Fprintf(&b, "%7s", set.Class())
	}
	fmt.Fprintf(&b, "%8s %8s\n", "multiS%", "multiD%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.Name)
		for _, set := range region.AllClasses {
			fmt.Fprintf(&b, "%7.1f", r.StaticPct[set.Class()])
		}
		fmt.Fprintf(&b, "%8.1f %8.1f\n", r.MultiStaticPct, r.MultiDynPct)
	}
	return b.String()
}

// RenderTable2 prints E3 in the paper's Table 2 layout.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Accesses in the last 32/64 instructions: mean (stddev)\n")
	fmt.Fprintf(&b, "%-14s | %-29s | %-29s\n", "", "Window = 32", "Window = 64")
	fmt.Fprintf(&b, "%-14s | %9s %9s %9s | %9s %9s %9s\n",
		"Benchmark", "Data", "Heap", "Stack", "Data", "Heap", "Stack")
	cell := func(c Table2Cell) string {
		return fmt.Sprintf("%4.2f(%4.2f)", c.Mean, c.StdDev)
	}
	all := append(append([]Table2Row{}, rows...), Table2Average(rows))
	for _, r := range all {
		fmt.Fprintf(&b, "%-14s | %11s %11s %11s | %11s %11s %11s\n", r.Name,
			cell(r.W32[region.Data]), cell(r.W32[region.Heap]), cell(r.W32[region.Stack]),
			cell(r.W64[region.Data]), cell(r.W64[region.Heap]), cell(r.W64[region.Stack]))
	}
	return b.String()
}

// RenderFigure4 prints E4 per scheme.
func RenderFigure4(rows []Figure4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4. Correctly classified dynamic references (%%)\n")
	fmt.Fprintf(&b, "%-14s %8s |", "Benchmark", "static%")
	for _, s := range core.AllSchemes {
		fmt.Fprintf(&b, "%12s", s)
	}
	fmt.Fprintln(&b)
	all := append(append([]Figure4Row{}, rows...), Figure4Average(rows))
	for _, r := range all {
		fmt.Fprintf(&b, "%-14s %7.1f%% |", r.Name, r.StaticCoveredPct)
		for _, s := range core.AllSchemes {
			fmt.Fprintf(&b, "%12.3f", r.AccuracyPct[s.String()])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RenderTable3 prints E5 in the paper's Table 3 layout, with the
// percentage growth over the no-context table.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. Entries occupied in an unlimited ARPT\n")
	fmt.Fprintf(&b, "%-14s %8s %14s %14s %14s\n", "Benchmark", "STATIC", "w/ GBH", "w/ CID", "w/ HYBRID")
	grow := func(n, base int) string {
		if base == 0 {
			return fmt.Sprintf("%d", n)
		}
		return fmt.Sprintf("%d (%+d%%)", n, (n-base)*100/base)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %14s %14s %14s\n", r.Name, r.Static,
			grow(r.GBH, r.Static), grow(r.CID, r.Static), grow(r.Hybrid, r.Static))
	}
	return b.String()
}

// RenderFigure5 prints E6: accuracy vs table size, for each hint mode.
func RenderFigure5(rows []Figure5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5. 1BIT-HYBRID accuracy (%%) vs ARPT size and compiler information\n")
	sizeName := func(s int) string {
		if s == 0 {
			return "unlim"
		}
		return fmt.Sprintf("%dK", s/1024)
	}
	fmt.Fprintf(&b, "%-14s %-9s", "Benchmark", "hints")
	for _, s := range Figure5Sizes {
		fmt.Fprintf(&b, "%9s", sizeName(s))
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		for _, mode := range []HintMode{HintsOff, HintsOracle, HintsCompiler} {
			fmt.Fprintf(&b, "%-14s %-9s", r.Name, mode)
			for _, s := range Figure5Sizes {
				fmt.Fprintf(&b, "%9.3f", r.AccuracyPct[s][mode])
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// RenderFigure8 prints E7 as relative performance per configuration.
func RenderFigure8(rows []Figure8Row, configs []cpu.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8. Performance relative to the (2+0) baseline\n")
	fmt.Fprintf(&b, "%-14s", "Benchmark")
	for _, cfg := range configs {
		fmt.Fprintf(&b, "%12s", cfg.Name)
	}
	fmt.Fprintln(&b)
	all := append(append([]Figure8Row{}, rows...), Figure8Average(rows, configs))
	for _, r := range all {
		fmt.Fprintf(&b, "%-14s", r.Name)
		for _, cfg := range configs {
			fmt.Fprintf(&b, "%12.3f", r.Speedup[cfg.Name])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "\nIPC per configuration\n%-14s", "Benchmark")
	for _, cfg := range configs {
		fmt.Fprintf(&b, "%12s", cfg.Name)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.Name)
		for _, cfg := range configs {
			fmt.Fprintf(&b, "%12.2f", r.IPC[cfg.Name])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RenderLVC prints E8.
func RenderLVC(rows []LVCRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stack-cache (4 KB direct-mapped LVC) hit rate, per §3.3\n")
	fmt.Fprintf(&b, "%-14s %12s %10s\n", "Benchmark", "stack refs", "hit rate")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12d %9.3f%%\n", r.Name, r.StackRefs, 100*r.HitRate)
		sum += r.HitRate
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "%-14s %12s %9.3f%%\n", "Average", "", 100*sum/float64(len(rows)))
	}
	return b.String()
}

// RenderAblation prints E9.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: 1-bit vs 2-bit prediction accuracy (%%), footnote 8\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %12s %12s\n", "Benchmark", "1BIT", "2BIT", "1BIT-HYB", "2BIT-HYB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.3f %10.3f %12.3f %12.3f\n",
			r.Name, r.OneBit, r.TwoBit, r.OneHybrid, r.TwoHybrid)
	}
	return b.String()
}

// RenderContextSweep prints E10 grouped by workload.
func RenderContextSweep(rows []ContextRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: hybrid context width sweep (accuracy %%)\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %10s\n", "Benchmark", "GBH", "CID", "accuracy")
	sorted := append([]ContextRow{}, rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		if sorted[i].GBHBits != sorted[j].GBHBits {
			return sorted[i].GBHBits < sorted[j].GBHBits
		}
		return sorted[i].CIDBits < sorted[j].CIDBits
	})
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-14s %8d %8d %10.3f\n", r.Name, r.GBHBits, r.CIDBits, r.AccuracyPct)
	}
	return b.String()
}

// RenderPenaltySweep prints E11.
func RenderPenaltySweep(rows []PenaltyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: (3+3) speedup vs ARPT misprediction penalty\n")
	fmt.Fprintf(&b, "%-14s %8s %10s %12s\n", "Benchmark", "penalty", "speedup", "mispredicts")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %10.3f %12d\n", r.Name, r.Penalty, r.Speedup, r.Mispredicts)
	}
	return b.String()
}

// RenderRecoveryStorm prints E15 grouped by workload, one line per
// (rate, penalty) point.
func RenderRecoveryStorm(rows []StormRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E15. (3+3) under injected misprediction storms (speedup vs unstormed (2+0))\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %10s %8s %12s %12s\n",
		"Benchmark", "rate", "penalty", "speedup", "IPC", "mispredicts", "recoveries")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8.3f %8d %10.3f %8.2f %12d %12d\n",
			r.Name, r.Rate, r.Penalty, r.Speedup, r.IPC, r.Mispredicts, r.Recoveries)
	}
	return b.String()
}

// RenderWorkloadErrors prints the failures a degraded batch recorded;
// empty input renders nothing.
func RenderWorkloadErrors(errs []*WorkloadError) string {
	if len(errs) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Workload errors (batch degraded; rows above omit these)\n")
	for _, e := range errs {
		kind := "error"
		if e.Timeout() {
			kind = "timeout"
		}
		fmt.Fprintf(&b, "  %-14s %-18s %-8s %v\n", e.Workload, e.Stage, kind, e.Err)
	}
	return b.String()
}

// RenderStaticHints prints E14: the binary-level analyzer as a hint
// source, against the source-level Fig. 6 hints and the oracle.
func RenderStaticHints(rows []StaticHintRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E14. Binary-level static hints vs source hints (1BIT-HYBRID, unlimited)\n")
	fmt.Fprintf(&b, "%-14s | %8s %8s | %8s %8s |", "", "binary", "binary", "source", "source")
	for _, mode := range StaticHintModes {
		fmt.Fprintf(&b, "%10s", mode)
	}
	fmt.Fprintf(&b, " | %8s %6s\n", "disagree", "diags")
	fmt.Fprintf(&b, "%-14s | %8s %8s | %8s %8s |", "Benchmark", "cover%", "acc%", "cover%", "acc%")
	for range StaticHintModes {
		fmt.Fprintf(&b, "%10s", "")
	}
	fmt.Fprintf(&b, " | %8s %6s\n", "", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s | %7.1f%% %7.1f%% | %7.1f%% %7.1f%% |", r.Name,
			r.BinaryCoveredPct, r.BinaryAccPct, r.SourceCoveredPct, r.SourceAccPct)
		for _, mode := range StaticHintModes {
			fmt.Fprintf(&b, "%10.3f", r.AccuracyPct[mode])
		}
		fmt.Fprintf(&b, " | %8d %6d\n", r.Disagreements, r.AnalyzerErrs)
	}
	return b.String()
}
