package vm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
)

// faultyRun assembles src, runs it to completion or fault, and returns
// the terminal error (nil if the program halted cleanly).
func faultyRun(t *testing.T, src string, setup func(*Machine)) error {
	t.Helper()
	p, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := New(Config{Program: p})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if setup != nil {
		setup(m)
	}
	return m.Run(nil)
}

const loopForever = `
main:
	li $t0, 0
loop:
	addi $t0, $t0, 1
	j loop
`

func TestMaxInstsWatchdog(t *testing.T) {
	err := faultyRun(t, loopForever, func(m *Machine) { m.MaxInsts = 1000 })
	if err == nil {
		t.Fatal("runaway loop did not trip the watchdog")
	}
	if !errors.Is(err, ErrMaxInsts) {
		t.Fatalf("errors.Is(err, ErrMaxInsts) = false for %v", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("errors.As(*FaultError) = false for %v", err)
	}
	if fe.Seq != 1000 {
		t.Fatalf("fault seq = %d, want exactly the budget 1000", fe.Seq)
	}
}

func TestFaultHookAbortsWithContext(t *testing.T) {
	sentinel := errors.New("planted fault")
	var hookPC uint32
	err := faultyRun(t, loopForever, func(m *Machine) {
		m.FaultHook = func(seq uint64, pc uint32) error {
			if seq == 37 {
				hookPC = pc
				return fmt.Errorf("wrapped: %w", sentinel)
			}
			return nil
		}
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is(err, sentinel) = false for %v", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("errors.As(*FaultError) = false for %v", err)
	}
	if fe.Seq != 37 {
		t.Fatalf("fault seq = %d, want 37 (the hook's abort point)", fe.Seq)
	}
	if fe.PC != hookPC {
		t.Fatalf("fault pc = %#x, hook saw %#x", fe.PC, hookPC)
	}
	if fe.Unwrap() == nil || !errors.Is(fe.Unwrap(), sentinel) {
		t.Fatalf("Unwrap() does not reach the hook's error: %v", fe.Unwrap())
	}
}

func TestFaultErrorMessageHasContext(t *testing.T) {
	fe := &FaultError{PC: 0x1234, Seq: 42, Err: errors.New("boom")}
	msg := fe.Error()
	for _, want := range []string{"0x00001234", "42", "boom"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("FaultError message %q missing %q", msg, want)
		}
	}
}

func TestCleanRunAfterWatchdogHeadroom(t *testing.T) {
	// The watchdog must not fire when the budget covers the program.
	err := faultyRun(t, `
main:
	li $v0, 7
	jr $ra
`, func(m *Machine) { m.MaxInsts = 100 })
	if err != nil {
		t.Fatalf("bounded clean run faulted: %v", err)
	}
}
