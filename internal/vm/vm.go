// Package vm implements the functional RISA simulator: it executes a
// linked program instruction by instruction, maintaining architectural
// state, the data/heap/stack layout, and a small syscall layer (sbrk,
// print, exit). Both the profiler and the timing simulator's trace
// generator drive programs through this machine and observe each retired
// instruction via the Event it returns.
package vm

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/region"
)

// HaltPC is the sentinel return address planted in $ra at startup: when
// main returns to it, or when the exit syscall runs, the machine halts.
const HaltPC uint32 = 0

// Syscall numbers (passed in $v0), a subset of the SPIM conventions.
const (
	SysPrintInt   = 1
	SysPrintFloat = 2
	SysPrintStr   = 4
	SysSbrk       = 9
	SysExit       = 10
	SysPrintChar  = 11
)

// Event describes one retired instruction. The Mem* fields are only
// meaningful when Inst.IsMem(); Taken only when the instruction is a
// control transfer.
type Event struct {
	Seq     uint64   // dynamic instruction number (0-based)
	PC      uint32   // address of the instruction
	Index   int      // static instruction index (PC-derived)
	Inst    isa.Inst // the decoded instruction
	NextPC  uint32   // PC after this instruction
	MemAddr uint32   // effective address of a load/store
	MemSize int      // access width in bytes
	Region  region.Region
	Taken   bool // branch/jump transferred control
	Done    bool // machine halted at/after this instruction
	Exit    int  // exit code, valid when Done
}

// FaultError wraps an execution fault with its dynamic context.
type FaultError struct {
	PC  uint32
	Seq uint64
	Err error
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("vm: fault at pc=%#08x (inst %d): %v", e.PC, e.Seq, e.Err)
}

func (e *FaultError) Unwrap() error { return e.Err }

// Machine is a functional RISA machine. Create one with New, then call
// Step until the returned event has Done set (or use Run).
type Machine struct {
	Prog   *prog.Program
	Mem    *mem.Memory
	Layout region.Layout

	pc    uint32
	regs  [isa.NumRegs]uint32
	fregs [isa.NumRegs]uint32 // float32 bit patterns

	seq    uint64
	halted bool
	exit   int
	out    io.Writer

	// MaxInsts bounds execution; Step returns an error past it.
	MaxInsts uint64

	// FaultHook, when non-nil, is consulted before every instruction
	// with the dynamic instruction number and PC about to execute. A
	// non-nil return aborts the step with a FaultError wrapping the
	// returned error. This is the library's deterministic injection
	// point: the fault-injection engine plants architectural memory
	// faults here, and watchdogs plant context-cancellation checks.
	FaultHook func(seq uint64, pc uint32) error
}

// ErrMaxInsts is wrapped by the FaultError a run returns when it
// exhausts its instruction budget (the MaxInsts watchdog).
var ErrMaxInsts = errors.New("instruction budget exhausted")

// DefaultMaxInsts bounds a run when the caller does not override it.
const DefaultMaxInsts = 200_000_000

// Config describes a machine to build.
type Config struct {
	// Program is the linked program to load (required).
	Program *prog.Program
	// Out receives print-syscall output; nil drops it.
	Out io.Writer
	// MaxInsts bounds execution; 0 selects DefaultMaxInsts.
	MaxInsts uint64
}

// Validate checks the configuration, including the program itself.
func (c Config) Validate() error {
	if c.Program == nil {
		return errors.New("vm: Config.Program is nil")
	}
	return c.Program.Validate()
}

// Option configures a Machine beyond its Config.
type Option func(*Machine)

// WithFaultHook installs the pre-instruction hook (see Machine.FaultHook).
func WithFaultHook(hook func(seq uint64, pc uint32) error) Option {
	return func(m *Machine) { m.FaultHook = hook }
}

// New loads cfg.Program into a fresh machine.
func New(cfg Config, opts ...Option) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := cfg.Program
	m := &Machine{
		Prog:     p,
		Mem:      mem.New(),
		out:      cfg.Out,
		MaxInsts: cfg.MaxInsts,
	}
	if m.out == nil {
		m.out = io.Discard
	}
	if m.MaxInsts == 0 {
		m.MaxInsts = DefaultMaxInsts
	}
	layout, err := p.LoadInto(m.Mem)
	if err != nil {
		return nil, err
	}
	m.Layout = layout
	m.pc = p.Entry
	m.regs[isa.GP] = prog.GPValue
	m.regs[isa.SP] = prog.StackTop - 16
	m.regs[isa.FP] = prog.StackTop - 16
	m.regs[isa.RA] = HaltPC
	for _, opt := range opts {
		opt(m)
	}
	return m, nil
}

// PC reports the current program counter.
func (m *Machine) PC() uint32 { return m.pc }

// Seq reports how many instructions have retired.
func (m *Machine) Seq() uint64 { return m.seq }

// Halted reports whether the machine has stopped.
func (m *Machine) Halted() bool { return m.halted }

// ExitCode reports the program's exit code (valid once halted).
func (m *Machine) ExitCode() int { return m.exit }

// Reg reads a general-purpose register.
func (m *Machine) Reg(r isa.Register) uint32 { return m.regs[r] }

// SetReg writes a general-purpose register ($zero writes are dropped).
func (m *Machine) SetReg(r isa.Register, v uint32) {
	if r != isa.Zero {
		m.regs[r] = v
	}
}

// FReg reads a floating-point register as its float32 value.
func (m *Machine) FReg(r isa.Register) float32 {
	return math.Float32frombits(m.fregs[r])
}

func (m *Machine) fault(err error) (Event, error) {
	return Event{}, &FaultError{PC: m.pc, Seq: m.seq, Err: err}
}

// Step executes one instruction and reports what happened.
func (m *Machine) Step() (Event, error) {
	if m.halted {
		return Event{Done: true, Exit: m.exit, Seq: m.seq, PC: m.pc}, nil
	}
	if m.seq >= m.MaxInsts {
		return m.fault(fmt.Errorf("%w (budget %d)", ErrMaxInsts, m.MaxInsts))
	}
	if m.FaultHook != nil {
		if err := m.FaultHook(m.seq, m.pc); err != nil {
			return m.fault(err)
		}
	}
	idx, ok := m.Prog.PC2Index(m.pc)
	if !ok {
		return m.fault(fmt.Errorf("pc outside text segment"))
	}
	in := m.Prog.Text[idx]
	ev := Event{Seq: m.seq, PC: m.pc, Index: idx, Inst: in}
	next := m.pc + isa.InstBytes

	r := func(x isa.Register) uint32 { return m.regs[x] }
	rs, rd := r(in.Rs), r(in.Rd)
	sImm := in.Imm

	switch in.Op {
	case isa.OpNop:

	case isa.OpReg:
		rt := r(in.Rt)
		var v uint32
		switch in.Funct {
		case isa.FnADD:
			v = rs + rt
		case isa.FnSUB:
			v = rs - rt
		case isa.FnMUL:
			v = uint32(int32(rs) * int32(rt))
		case isa.FnMULH:
			v = uint32((int64(int32(rs)) * int64(int32(rt))) >> 32)
		case isa.FnDIV:
			if rt == 0 {
				return m.fault(fmt.Errorf("integer divide by zero"))
			}
			v = uint32(int32(rs) / int32(rt))
		case isa.FnREM:
			if rt == 0 {
				return m.fault(fmt.Errorf("integer modulo by zero"))
			}
			v = uint32(int32(rs) % int32(rt))
		case isa.FnAND:
			v = rs & rt
		case isa.FnOR:
			v = rs | rt
		case isa.FnXOR:
			v = rs ^ rt
		case isa.FnNOR:
			v = ^(rs | rt)
		case isa.FnSLL:
			v = rs << (rt & 31)
		case isa.FnSRL:
			v = rs >> (rt & 31)
		case isa.FnSRA:
			v = uint32(int32(rs) >> (rt & 31))
		case isa.FnSLT:
			if int32(rs) < int32(rt) {
				v = 1
			}
		case isa.FnSLTU:
			if rs < rt {
				v = 1
			}
		}
		m.SetReg(in.Rd, v)

	case isa.OpFP:
		if err := m.stepFP(in); err != nil {
			return m.fault(err)
		}

	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW, isa.OpLWC1,
		isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSWC1:
		addr := rs + uint32(sImm)
		ev.MemAddr = addr
		ev.MemSize = in.MemSize()
		ev.Region = m.Layout.Classify(addr)
		if err := m.access(in, addr); err != nil {
			return m.fault(err)
		}

	case isa.OpADDI:
		m.SetReg(in.Rd, rs+uint32(sImm))
	case isa.OpANDI:
		m.SetReg(in.Rd, rs&uint32(uint16(sImm)))
	case isa.OpORI:
		m.SetReg(in.Rd, rs|uint32(uint16(sImm)))
	case isa.OpXORI:
		m.SetReg(in.Rd, rs^uint32(uint16(sImm)))
	case isa.OpSLTI:
		var v uint32
		if int32(rs) < sImm {
			v = 1
		}
		m.SetReg(in.Rd, v)
	case isa.OpSLLI:
		m.SetReg(in.Rd, rs<<(uint32(sImm)&31))
	case isa.OpSRLI:
		m.SetReg(in.Rd, rs>>(uint32(sImm)&31))
	case isa.OpSRAI:
		m.SetReg(in.Rd, uint32(int32(rs)>>(uint32(sImm)&31)))
	case isa.OpLUI:
		m.SetReg(in.Rd, uint32(sImm)<<16)

	case isa.OpBEQ:
		if rs == rd {
			next = branchTarget(m.pc, sImm)
			ev.Taken = true
		}
	case isa.OpBNE:
		if rs != rd {
			next = branchTarget(m.pc, sImm)
			ev.Taken = true
		}
	case isa.OpBLEZ:
		if int32(rs) <= 0 {
			next = branchTarget(m.pc, sImm)
			ev.Taken = true
		}
	case isa.OpBGTZ:
		if int32(rs) > 0 {
			next = branchTarget(m.pc, sImm)
			ev.Taken = true
		}
	case isa.OpBLTZ:
		if int32(rs) < 0 {
			next = branchTarget(m.pc, sImm)
			ev.Taken = true
		}
	case isa.OpBGEZ:
		if int32(rs) >= 0 {
			next = branchTarget(m.pc, sImm)
			ev.Taken = true
		}

	case isa.OpJ:
		next = uint32(sImm) * isa.InstBytes
		ev.Taken = true
	case isa.OpJAL:
		m.SetReg(isa.RA, m.pc+isa.InstBytes)
		next = uint32(sImm) * isa.InstBytes
		ev.Taken = true
	case isa.OpJR:
		next = rs
		ev.Taken = true
	case isa.OpJALR:
		m.SetReg(in.Rd, m.pc+isa.InstBytes)
		next = rs
		ev.Taken = true

	case isa.OpSYSCALL:
		done, err := m.syscall()
		if err != nil {
			return m.fault(err)
		}
		if done {
			m.halted = true
		}

	default:
		return m.fault(fmt.Errorf("unimplemented opcode %v", in.Op))
	}

	m.seq++
	if next == HaltPC && !m.halted {
		// main returned to the sentinel: clean exit with $v0.
		m.halted = true
		m.exit = int(int32(m.regs[isa.V0]))
	}
	m.pc = next
	ev.NextPC = next
	ev.Done = m.halted
	ev.Exit = m.exit
	return ev, nil
}

func branchTarget(pc uint32, off int32) uint32 {
	return uint32(int64(pc) + isa.InstBytes + int64(off)*isa.InstBytes)
}

func (m *Machine) stepFP(in isa.Inst) error {
	f := func(x isa.Register) float32 { return math.Float32frombits(m.fregs[x]) }
	setf := func(x isa.Register, v float32) { m.fregs[x] = math.Float32bits(v) }
	fs, ft := f(in.Rs), f(in.Rt)
	switch in.Funct {
	case isa.FnFADD:
		setf(in.Rd, fs+ft)
	case isa.FnFSUB:
		setf(in.Rd, fs-ft)
	case isa.FnFMUL:
		setf(in.Rd, fs*ft)
	case isa.FnFDIV:
		setf(in.Rd, fs/ft) // IEEE semantics: inf/NaN, no trap
	case isa.FnFNEG:
		setf(in.Rd, -fs)
	case isa.FnFABS:
		setf(in.Rd, float32(math.Abs(float64(fs))))
	case isa.FnFSQRT:
		setf(in.Rd, float32(math.Sqrt(float64(fs))))
	case isa.FnCEQ:
		m.SetReg(in.Rd, b2u(fs == ft))
	case isa.FnCLT:
		m.SetReg(in.Rd, b2u(fs < ft))
	case isa.FnCLE:
		m.SetReg(in.Rd, b2u(fs <= ft))
	case isa.FnCVTSW:
		setf(in.Rd, float32(int32(m.regs[in.Rs])))
	case isa.FnCVTWS:
		m.SetReg(in.Rd, uint32(int32(fs)))
	case isa.FnMFC1:
		m.SetReg(in.Rd, m.fregs[in.Rs])
	case isa.FnMTC1:
		m.fregs[in.Rd] = m.regs[in.Rs]
	default:
		return fmt.Errorf("unimplemented fp funct %d", in.Funct)
	}
	return nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) access(in isa.Inst, addr uint32) error {
	switch in.Op {
	case isa.OpLB:
		m.SetReg(in.Rd, uint32(int32(int8(m.Mem.LoadByte(addr)))))
	case isa.OpLBU:
		m.SetReg(in.Rd, uint32(m.Mem.LoadByte(addr)))
	case isa.OpLH:
		v, err := m.Mem.ReadHalf(addr)
		if err != nil {
			return err
		}
		m.SetReg(in.Rd, uint32(int32(int16(v))))
	case isa.OpLHU:
		v, err := m.Mem.ReadHalf(addr)
		if err != nil {
			return err
		}
		m.SetReg(in.Rd, uint32(v))
	case isa.OpLW:
		v, err := m.Mem.ReadWord(addr)
		if err != nil {
			return err
		}
		m.SetReg(in.Rd, v)
	case isa.OpLWC1:
		v, err := m.Mem.ReadWord(addr)
		if err != nil {
			return err
		}
		m.fregs[in.Rd] = v
	case isa.OpSB:
		m.Mem.StoreByte(addr, byte(m.regs[in.Rd]))
	case isa.OpSH:
		return m.Mem.WriteHalf(addr, uint16(m.regs[in.Rd]))
	case isa.OpSW:
		return m.Mem.WriteWord(addr, m.regs[in.Rd])
	case isa.OpSWC1:
		return m.Mem.WriteWord(addr, m.fregs[in.Rd])
	}
	return nil
}

func (m *Machine) syscall() (done bool, err error) {
	code := m.regs[isa.V0]
	a0 := m.regs[isa.A0]
	switch code {
	case SysPrintInt:
		fmt.Fprintf(m.out, "%d", int32(a0))
	case SysPrintFloat:
		fmt.Fprintf(m.out, "%g", math.Float32frombits(a0))
	case SysPrintStr:
		fmt.Fprint(m.out, m.Mem.ReadCString(a0, 4096))
	case SysPrintChar:
		fmt.Fprintf(m.out, "%c", rune(a0))
	case SysSbrk:
		old := m.Layout.Brk
		grow := int32(a0)
		nb := int64(old) + int64(grow)
		if nb < int64(m.Layout.HeapBase) || nb >= int64(m.Layout.StackFloor) {
			return false, fmt.Errorf("sbrk(%d): heap would leave [%#x,%#x)",
				grow, m.Layout.HeapBase, m.Layout.StackFloor)
		}
		m.Layout.Brk = uint32(nb)
		m.SetReg(isa.V0, old)
	case SysExit:
		m.exit = int(int32(a0))
		return true, nil
	default:
		return false, fmt.Errorf("unknown syscall %d", code)
	}
	return false, nil
}

// Run steps the machine to completion (or error), invoking observe for
// every retired instruction when observe is non-nil.
func (m *Machine) Run(observe func(Event)) error {
	for !m.halted {
		ev, err := m.Step()
		if err != nil {
			return err
		}
		if observe != nil {
			observe(ev)
		}
	}
	return nil
}
