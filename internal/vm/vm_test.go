package vm

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/region"
)

func run(t *testing.T, src string) (*Machine, string) {
	t.Helper()
	p, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	var out bytes.Buffer
	m, err := New(Config{Program: p, Out: &out})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := m.Run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, out.String()
}

func TestArithmeticAndExitCode(t *testing.T) {
	m, _ := run(t, `
main:
	li $t0, 6
	li $t1, 7
	mul $v0, $t0, $t1
	jr $ra
`)
	if m.ExitCode() != 42 {
		t.Errorf("exit = %d, want 42", m.ExitCode())
	}
}

func TestLoadsStores(t *testing.T) {
	m, _ := run(t, `
.data
w: .word 0x11223344
.text
main:
	la $t0, w
	lw $t1, 0($t0)
	lb $t2, 0($t0)
	lbu $t3, 3($t0)
	lh $t4, 2($t0)
	sw $t1, 4($t0)
	lw $v0, 4($t0)
	jr $ra
`)
	if m.ExitCode() != 0x11223344 {
		t.Errorf("exit = %#x, want 0x11223344", uint32(m.ExitCode()))
	}
	if got := m.Reg(isa.T2); got != 0x44 {
		t.Errorf("lb = %#x", got)
	}
	if got := m.Reg(isa.T3); got != 0x11 {
		t.Errorf("lbu byte3 = %#x", got)
	}
	if got := m.Reg(isa.T4); got != 0x1122 {
		t.Errorf("lh = %#x", got)
	}
}

func TestSignExtension(t *testing.T) {
	m, _ := run(t, `
.data
b: .word 0x000080FF
.text
main:
	la $t0, b
	lb $t1, 0($t0)    # 0xFF -> -1
	lb $t2, 1($t0)    # 0x80 -> -128
	lh $t3, 0($t0)    # 0x80FF -> negative
	jr $ra
`)
	if got := int32(m.Reg(isa.T1)); got != -1 {
		t.Errorf("lb sign = %d, want -1", got)
	}
	if got := int32(m.Reg(isa.T2)); got != -128 {
		t.Errorf("lb sign = %d, want -128", got)
	}
	if got := int32(m.Reg(isa.T3)); got != -32513 {
		t.Errorf("lh sign = %d, want -32513", got)
	}
}

func TestControlFlowLoop(t *testing.T) {
	m, _ := run(t, `
main:
	li $t0, 0
	li $t1, 10
	li $v0, 0
loop:
	add $v0, $v0, $t0
	addi $t0, $t0, 1
	blt $t0, $t1, loop
	jr $ra
`)
	if m.ExitCode() != 45 {
		t.Errorf("sum 0..9 = %d, want 45", m.ExitCode())
	}
}

func TestFunctionCall(t *testing.T) {
	m, _ := run(t, `
main:
	addi $sp, $sp, -8
	sw $ra, 4($sp)
	li $a0, 5
	jal double
	lw $ra, 4($sp)
	addi $sp, $sp, 8
	jr $ra
double:
	add $v0, $a0, $a0
	jr $ra
`)
	if m.ExitCode() != 10 {
		t.Errorf("exit = %d, want 10", m.ExitCode())
	}
}

func TestRecursion(t *testing.T) {
	// fib(10) = 55, deliberately naive recursion to exercise the stack.
	m, _ := run(t, `
main:
	addi $sp, $sp, -8
	sw $ra, 4($sp)
	li $a0, 10
	jal fib
	lw $ra, 4($sp)
	addi $sp, $sp, 8
	jr $ra
fib:
	li $at, 2
	blt $a0, $at, base
	addi $sp, $sp, -12
	sw $ra, 8($sp)
	sw $a0, 4($sp)
	addi $a0, $a0, -1
	jal fib
	sw $v0, 0($sp)
	lw $a0, 4($sp)
	addi $a0, $a0, -2
	jal fib
	lw $t0, 0($sp)
	add $v0, $v0, $t0
	lw $ra, 8($sp)
	addi $sp, $sp, 12
	jr $ra
base:
	move $v0, $a0
	jr $ra
`)
	if m.ExitCode() != 55 {
		t.Errorf("fib(10) = %d, want 55", m.ExitCode())
	}
}

func TestSyscallPrints(t *testing.T) {
	_, out := run(t, `
.data
msg: .asciiz "x="
.text
main:
	li $v0, 4
	la $a0, msg
	syscall
	li $v0, 1
	li $a0, -7
	syscall
	li $v0, 11
	li $a0, 10
	syscall
	li $v0, 10
	li $a0, 0
	syscall
`)
	if out != "x=-7\n" {
		t.Errorf("output = %q, want %q", out, "x=-7\n")
	}
}

func TestSbrkGrowsHeap(t *testing.T) {
	m, _ := run(t, `
main:
	li $v0, 9
	li $a0, 4096
	syscall
	move $t0, $v0      # old brk = heap base
	sw $t0, 0($t0)     # store into the new heap page
	lw $v0, 0($t0)
	jr $ra
`)
	heapBase := m.Prog.InitialLayout().HeapBase
	if uint32(m.ExitCode()) != heapBase {
		t.Errorf("heap base = %#x, want %#x", uint32(m.ExitCode()), heapBase)
	}
	if m.Layout.Brk != heapBase+4096 {
		t.Errorf("brk = %#x, want %#x", m.Layout.Brk, heapBase+4096)
	}
}

func TestSbrkOverflowFaults(t *testing.T) {
	p, err := asm.Assemble("t.s", `
main:
	li $v0, 9
	li $a0, -1
	syscall
	jr $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "sbrk") {
		t.Errorf("want sbrk fault, got %v", err)
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	p, err := asm.Assemble("t.s", `
main:
	li $t0, 1
	div $v0, $t0, $zero
	jr $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Errorf("want div fault, got %v", err)
	}
	var fe *FaultError
	if !asFault(err, &fe) {
		t.Errorf("fault not a *FaultError: %T", err)
	}
}

func asFault(err error, out **FaultError) bool {
	for err != nil {
		if fe, ok := err.(*FaultError); ok {
			*out = fe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestZeroRegisterImmutable(t *testing.T) {
	m, _ := run(t, `
main:
	li $zero, 99
	move $v0, $zero
	jr $ra
`)
	if m.ExitCode() != 0 {
		t.Errorf("$zero = %d, want 0", m.ExitCode())
	}
}

func TestFloatingPoint(t *testing.T) {
	m, _ := run(t, `
main:
	li.s $f0, 1.5
	li.s $f1, 2.25
	add.s $f2, $f0, $f1
	mul.s $f3, $f2, $f2    # 14.0625
	cvt.w.s $v0, $f3       # 14
	c.lt.s $t0, $f0, $f1   # 1
	add $v0, $v0, $t0
	jr $ra
`)
	if m.ExitCode() != 15 {
		t.Errorf("fp result = %d, want 15", m.ExitCode())
	}
}

func TestEventRegions(t *testing.T) {
	p, err := asm.Assemble("t.s", `
.data
g: .word 0
.text
main:
	lw $t0, g              # data access (via $at)
	sw $t0, -4($sp)        # stack access
	li $v0, 9
	li $a0, 64
	syscall
	lw $t1, 0($v0)         # heap access
	jr $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	var regions []region.Region
	if err := m.Run(func(ev Event) {
		if ev.Inst.IsMem() {
			regions = append(regions, ev.Region)
		}
	}); err != nil {
		t.Fatal(err)
	}
	want := []region.Region{region.Data, region.Stack, region.Heap}
	if len(regions) != len(want) {
		t.Fatalf("regions = %v, want %v", regions, want)
	}
	for i := range want {
		if regions[i] != want[i] {
			t.Errorf("region[%d] = %v, want %v", i, regions[i], want[i])
		}
	}
}

func TestEventSequenceNumbers(t *testing.T) {
	p, err := asm.Assemble("t.s", "main:\n nop\n nop\n jr $ra\n")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if err := m.Run(func(ev Event) { seqs = append(seqs, ev.Seq) }); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("retired %d, want 3", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Errorf("seq[%d] = %d", i, s)
		}
	}
	if m.Seq() != 3 {
		t.Errorf("Seq() = %d", m.Seq())
	}
}

func TestInstructionBudget(t *testing.T) {
	p, err := asm.Assemble("t.s", "main:\nloop:\n b loop\n")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInsts = 100
	err = m.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("want budget fault, got %v", err)
	}
}

func TestInitialRegisters(t *testing.T) {
	p, err := asm.Assemble("t.s", "main:\n jr $ra\n")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	if m.Reg(isa.GP) != prog.GPValue {
		t.Errorf("$gp = %#x", m.Reg(isa.GP))
	}
	if m.Reg(isa.SP) != prog.StackTop-16 {
		t.Errorf("$sp = %#x", m.Reg(isa.SP))
	}
	if m.Reg(isa.RA) != HaltPC {
		t.Errorf("$ra = %#x", m.Reg(isa.RA))
	}
}
