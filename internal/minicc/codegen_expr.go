package minicc

import (
	"fmt"

	"repro/internal/isa"
)

// owned reports whether v's register is a pool temporary this codegen
// allocated (as opposed to a promoted variable's s-register).
func (g *codegen) owned(v val) bool {
	live := g.intLive
	if v.fp {
		live = g.fpLive
	}
	for _, r := range live {
		if r == v.reg {
			return true
		}
	}
	return false
}

// ownInt guarantees v is a mutable integer temporary, copying it into a
// fresh one when it aliases a variable's home register.
func (g *codegen) ownInt(v val, line int) (val, error) {
	if g.owned(v) {
		return v, nil
	}
	nv, err := g.allocInt(line)
	if err != nil {
		return val{}, err
	}
	g.emitf("move %s, %s", nv.reg, v.reg)
	return nv, nil
}

func fpName(r isa.Register) string { return fmt.Sprintf("$f%d", r) }

// genExpr evaluates e into a register.
func (g *codegen) genExpr(e *Expr) (val, error) {
	switch e.Kind {
	case ExprIntLit:
		v, err := g.allocInt(e.Line)
		if err != nil {
			return val{}, err
		}
		g.emitf("li %s, %d", v.reg, int32(e.Ival))
		return v, nil

	case ExprFloatLit:
		v, err := g.allocFP(e.Line)
		if err != nil {
			return val{}, err
		}
		g.emitf("li.s %s, %g", fpName(v.reg), e.Fval)
		return v, nil

	case ExprStrLit:
		v, err := g.allocInt(e.Line)
		if err != nil {
			return val{}, err
		}
		g.emitf("la %s, str_%d", v.reg, e.Ival)
		return v, nil

	case ExprIdent:
		if e.Sym.Type.Kind == TypeArray {
			base, disp, _, err := g.genAddr(e)
			if err != nil {
				return val{}, err
			}
			return g.materialize(base, disp, e.Line)
		}
		return g.loadVar(e.Sym, e.Line)

	case ExprUnary:
		return g.genUnary(e)
	case ExprBinary:
		return g.genBinary(e)
	case ExprAssign:
		return g.genAssign(e)
	case ExprIndex:
		addr, disp, hint, err := g.genAddr(e)
		if err != nil {
			return val{}, err
		}
		return g.genLoad(addr, disp, e.Type, hint, e.Line)
	case ExprCall:
		return g.genCall(e)
	case ExprCast:
		return g.genCast(e)
	}
	return val{}, g.errf(e.Line, "internal: genExpr kind %d", e.Kind)
}

// genLoad loads a scalar of type t from base+disp (consuming the base
// register when it is a temporary).
func (g *codegen) genLoad(addr val, disp int32, t *Type, hint string, line int) (val, error) {
	if t.Kind == TypeFloat {
		v, err := g.allocFP(line)
		if err != nil {
			return val{}, err
		}
		g.emitf("l.s %s, %d(%s)   ;@%s", fpName(v.reg), disp, addr.reg, hint)
		g.free(addr)
		return v, nil
	}
	v, err := g.allocInt(line)
	if err != nil {
		return val{}, err
	}
	g.emitf("lw %s, %d(%s)   ;@%s", v.reg, disp, addr.reg, hint)
	g.free(addr)
	return v, nil
}

func (g *codegen) genUnary(e *Expr) (val, error) {
	switch e.Op {
	case "&":
		base, disp, _, err := g.genAddr(e.L)
		if err != nil {
			return val{}, err
		}
		return g.materialize(base, disp, e.Line)
	case "*":
		addr, disp, hint, err := g.genAddr(e)
		if err != nil {
			return val{}, err
		}
		return g.genLoad(addr, disp, e.Type, hint, e.Line)
	}

	l, err := g.genExpr(e.L)
	if err != nil {
		return val{}, err
	}
	if e.Type.Kind == TypeFloat {
		v, err := g.allocFP(e.Line)
		if err != nil {
			return val{}, err
		}
		g.emitf("neg.s %s, %s", fpName(v.reg), fpName(l.reg))
		g.free(l)
		return v, nil
	}
	v, err := g.allocInt(e.Line)
	if err != nil {
		return val{}, err
	}
	switch e.Op {
	case "-":
		g.emitf("neg %s, %s", v.reg, l.reg)
	case "~":
		g.emitf("nor %s, %s, $zero", v.reg, l.reg)
	case "!":
		g.emitf("sltu %s, $zero, %s", v.reg, l.reg) // v = (l != 0)
		g.emitf("xori %s, %s, 1", v.reg, v.reg)
	}
	g.free(l)
	return v, nil
}

var intBinOp = map[string]string{
	"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
	"&": "and", "|": "or", "^": "xor", "<<": "sll", ">>": "sra",
}

var fpBinOp = map[string]string{
	"+": "add.s", "-": "sub.s", "*": "mul.s", "/": "div.s",
}

func (g *codegen) genBinary(e *Expr) (val, error) {
	switch e.Op {
	case "&&", "||":
		return g.genLogical(e)
	case "<", "<=", ">", ">=", "==", "!=":
		return g.genCompare(e)
	}

	l, err := g.genExpr(e.L)
	if err != nil {
		return val{}, err
	}
	r, err := g.genExpr(e.R)
	if err != nil {
		return val{}, err
	}

	// Float arithmetic.
	if e.Type.Kind == TypeFloat {
		v, err := g.allocFP(e.Line)
		if err != nil {
			return val{}, err
		}
		g.emitf("%s %s, %s, %s", fpBinOp[e.Op], fpName(v.reg), fpName(l.reg), fpName(r.reg))
		g.free(l)
		g.free(r)
		return v, nil
	}

	lt, rt := decayType(e.L.Type), decayType(e.R.Type)

	// Pointer arithmetic: scale the integer operand by the element size
	// (always 4 in MiniC).
	if e.Op == "+" || e.Op == "-" {
		switch {
		case lt.Kind == TypePtr && rt.Kind == TypeInt:
			r, err = g.ownInt(r, e.Line)
			if err != nil {
				return val{}, err
			}
			g.emitf("slli %s, %s, 2", r.reg, r.reg)
		case lt.Kind == TypeInt && rt.Kind == TypePtr:
			l, err = g.ownInt(l, e.Line)
			if err != nil {
				return val{}, err
			}
			g.emitf("slli %s, %s, 2", l.reg, l.reg)
		}
	}

	v, err := g.allocInt(e.Line)
	if err != nil {
		return val{}, err
	}
	g.emitf("%s %s, %s, %s", intBinOp[e.Op], v.reg, l.reg, r.reg)
	// Pointer difference: convert bytes to elements.
	if e.Op == "-" && lt.Kind == TypePtr && rt.Kind == TypePtr {
		g.emitf("srai %s, %s, 2", v.reg, v.reg)
	}
	g.free(l)
	g.free(r)
	return v, nil
}

// genCompare lowers relational operators to slt/sltu/xor sequences (or
// c.*.s for floats), producing 0/1 in an integer register.
func (g *codegen) genCompare(e *Expr) (val, error) {
	l, err := g.genExpr(e.L)
	if err != nil {
		return val{}, err
	}
	r, err := g.genExpr(e.R)
	if err != nil {
		return val{}, err
	}
	v, err := g.allocInt(e.Line)
	if err != nil {
		return val{}, err
	}

	if l.fp {
		op, swap, negate := "", false, false
		switch e.Op {
		case "==":
			op = "c.eq.s"
		case "!=":
			op, negate = "c.eq.s", true
		case "<":
			op = "c.lt.s"
		case "<=":
			op = "c.le.s"
		case ">":
			op, swap = "c.lt.s", true
		case ">=":
			op, swap = "c.le.s", true
		}
		a, b := l, r
		if swap {
			a, b = r, l
		}
		g.emitf("%s %s, %s, %s", op, v.reg, fpName(a.reg), fpName(b.reg))
		if negate {
			g.emitf("xori %s, %s, 1", v.reg, v.reg)
		}
		g.free(l)
		g.free(r)
		return v, nil
	}

	// Pointers compare unsigned; ints signed.
	slt := "slt"
	if decayType(e.L.Type).Kind == TypePtr || decayType(e.R.Type).Kind == TypePtr {
		slt = "sltu"
	}
	switch e.Op {
	case "<":
		g.emitf("%s %s, %s, %s", slt, v.reg, l.reg, r.reg)
	case ">":
		g.emitf("%s %s, %s, %s", slt, v.reg, r.reg, l.reg)
	case ">=":
		g.emitf("%s %s, %s, %s", slt, v.reg, l.reg, r.reg)
		g.emitf("xori %s, %s, 1", v.reg, v.reg)
	case "<=":
		g.emitf("%s %s, %s, %s", slt, v.reg, r.reg, l.reg)
		g.emitf("xori %s, %s, 1", v.reg, v.reg)
	case "==":
		g.emitf("xor %s, %s, %s", v.reg, l.reg, r.reg)
		g.emitf("sltu %s, $zero, %s", v.reg, v.reg)
		g.emitf("xori %s, %s, 1", v.reg, v.reg)
	case "!=":
		g.emitf("xor %s, %s, %s", v.reg, l.reg, r.reg)
		g.emitf("sltu %s, $zero, %s", v.reg, v.reg)
	}
	g.free(l)
	g.free(r)
	return v, nil
}

// genLogical emits short-circuit && and ||, producing 0/1.
func (g *codegen) genLogical(e *Expr) (val, error) {
	v, err := g.allocInt(e.Line)
	if err != nil {
		return val{}, err
	}
	short, end := g.label(), g.label()

	l, err := g.genExpr(e.L)
	if err != nil {
		return val{}, err
	}
	if e.Op == "&&" {
		g.emitf("beqz %s, %s", l.reg, short)
	} else {
		g.emitf("bnez %s, %s", l.reg, short)
	}
	g.free(l)

	r, err := g.genExpr(e.R)
	if err != nil {
		return val{}, err
	}
	g.emitf("sltu %s, $zero, %s", v.reg, r.reg) // normalize to 0/1
	g.free(r)
	g.emitf("b %s", end)

	g.emitLabel(short)
	if e.Op == "&&" {
		g.emitf("li %s, 0", v.reg)
	} else {
		g.emitf("li %s, 1", v.reg)
	}
	g.emitLabel(end)
	return v, nil
}

func (g *codegen) genAssign(e *Expr) (val, error) {
	// Simple scalar variable target.
	if e.L.Kind == ExprIdent && e.L.Sym.Type.IsScalar() {
		v, err := g.genExpr(e.R)
		if err != nil {
			return val{}, err
		}
		g.storeVar(e.L.Sym, v, e.Line)
		return v, nil
	}
	addr, disp, hint, err := g.genAddr(e.L)
	if err != nil {
		return val{}, err
	}
	v, err := g.genExpr(e.R)
	if err != nil {
		return val{}, err
	}
	if v.fp {
		g.emitf("s.s %s, %d(%s)   ;@%s", fpName(v.reg), disp, addr.reg, hint)
	} else {
		g.emitf("sw %s, %d(%s)   ;@%s", v.reg, disp, addr.reg, hint)
	}
	g.free(addr)
	return v, nil
}

func (g *codegen) genCast(e *Expr) (val, error) {
	l, err := g.genExpr(e.L)
	if err != nil {
		return val{}, err
	}
	from := decayType(e.L.Type)
	to := e.CastTo
	switch {
	case from.Kind == TypeInt && to.Kind == TypeFloat:
		v, err := g.allocFP(e.Line)
		if err != nil {
			return val{}, err
		}
		g.emitf("cvt.s.w %s, %s", fpName(v.reg), l.reg)
		g.free(l)
		return v, nil
	case from.Kind == TypeFloat && to.Kind == TypeInt:
		v, err := g.allocInt(e.Line)
		if err != nil {
			return val{}, err
		}
		g.emitf("cvt.w.s %s, %s", v.reg, fpName(l.reg))
		g.free(l)
		return v, nil
	default:
		// Pointer<->pointer and int<->pointer casts are bit-identical.
		return l, nil
	}
}

// --- calls ---

// spillRec pairs a spilled temporary with its positional frame slot.
type spillRec struct {
	v    val
	slot int
}

// spillLive saves every live temporary to a positional frame slot
// before a call and returns the records to reload afterwards. The
// registers stay "allocated" the whole time; only their values take a
// round trip. Nested calls re-spill to the same slot indices, which is
// safe because the live set only grows inward.
func (g *codegen) spillLive() ([]spillRec, error) {
	if len(g.intLive)+len(g.fpLive) > numSpill {
		return nil, g.errf(0, "expression holds %d temporaries across a call (max %d)",
			len(g.intLive)+len(g.fpLive), numSpill)
	}
	var saved []spillRec
	slot := 0
	for _, r := range g.intLive {
		off := g.spillBot + 4*slot
		g.emitf("sw %s, %d($fp)   ;@stack", r, off)
		saved = append(saved, spillRec{val{reg: r}, slot})
		slot++
	}
	for _, r := range g.fpLive {
		off := g.spillBot + 4*slot
		g.emitf("s.s %s, %d($fp)   ;@stack", fpName(r), off)
		saved = append(saved, spillRec{val{reg: r, fp: true}, slot})
		slot++
	}
	return saved, nil
}

func (g *codegen) reload(saved []spillRec) {
	for _, rec := range saved {
		off := g.spillBot + 4*rec.slot
		if rec.v.fp {
			g.emitf("l.s %s, %d($fp)   ;@stack", fpName(rec.v.reg), off)
		} else {
			g.emitf("lw %s, %d($fp)   ;@stack", rec.v.reg, off)
		}
	}
}

func (g *codegen) genCall(e *Expr) (val, error) {
	switch e.Callee {
	case "malloc":
		return g.genMalloc(e)
	case "exit":
		return g.genSyscall(e, 10)
	case "print_int":
		return g.genSyscall(e, 1)
	case "print_float":
		return g.genSyscall(e, 2)
	case "print_char":
		return g.genSyscall(e, 11)
	case "print_str":
		return g.genSyscall(e, 4)
	case "sqrtf", "fabsf":
		l, err := g.genExpr(e.Args[0])
		if err != nil {
			return val{}, err
		}
		v, err := g.allocFP(e.Line)
		if err != nil {
			return val{}, err
		}
		op := "sqrt.s"
		if e.Callee == "fabsf" {
			op = "abs.s"
		}
		g.emitf("%s %s, %s", op, fpName(v.reg), fpName(l.reg))
		g.free(l)
		return v, nil
	}

	// User function call. Save live temporaries, evaluate all arguments
	// into temps, place them per the convention, then jump.
	saved, err := g.spillLive()
	if err != nil {
		return val{}, err
	}
	args := make([]val, len(e.Args))
	for i, a := range e.Args {
		v, err := g.genExpr(a)
		if err != nil {
			return val{}, err
		}
		args[i] = v
	}
	for i, a := range args {
		if i < maxRegArgs {
			dst := isa.Register(int(isa.A0) + i)
			if a.fp {
				g.emitf("mfc1 %s, %s", dst, fpName(a.reg))
			} else {
				g.emitf("move %s, %s", dst, a.reg)
			}
		} else {
			off := 4 * (i - maxRegArgs)
			if a.fp {
				g.emitf("s.s %s, %d($sp)   ;@stack", fpName(a.reg), off)
			} else {
				g.emitf("sw %s, %d($sp)   ;@stack", a.reg, off)
			}
		}
		g.free(a)
	}
	g.emitf("jal %s", e.Fn.Name)

	var result val
	if e.Type.Kind != TypeVoid {
		var err error
		if e.Type.Kind == TypeFloat {
			result, err = g.allocFP(e.Line)
			if err != nil {
				return val{}, err
			}
			g.emitf("mtc1 %s, $v0", fpName(result.reg))
		} else {
			result, err = g.allocInt(e.Line)
			if err != nil {
				return val{}, err
			}
			g.emitf("move %s, $v0", result.reg)
		}
	}
	g.reload(saved)
	if e.Type.Kind == TypeVoid {
		// Hand back a harmless placeholder the caller can free.
		return val{reg: isa.Zero}, nil
	}
	return result, nil
}

// genMalloc inlines the allocator: round the size up to a word multiple
// and sbrk it.
func (g *codegen) genMalloc(e *Expr) (val, error) {
	size, err := g.genExpr(e.Args[0])
	if err != nil {
		return val{}, err
	}
	size, err = g.ownInt(size, e.Line)
	if err != nil {
		return val{}, err
	}
	g.emitf("addi %s, %s, 3", size.reg, size.reg)
	g.emitf("srli %s, %s, 2", size.reg, size.reg)
	g.emitf("slli %s, %s, 2", size.reg, size.reg)
	g.emitf("move $a0, %s", size.reg)
	g.emitf("li $v0, 9")
	g.emitf("syscall")
	g.free(size)
	v, err := g.allocInt(e.Line)
	if err != nil {
		return val{}, err
	}
	g.emitf("move %s, $v0", v.reg)
	return v, nil
}

// genSyscall emits a one-argument print/exit syscall.
func (g *codegen) genSyscall(e *Expr, code int) (val, error) {
	if len(e.Args) > 0 {
		a, err := g.genExpr(e.Args[0])
		if err != nil {
			return val{}, err
		}
		if a.fp {
			g.emitf("mfc1 $a0, %s", fpName(a.reg))
		} else {
			g.emitf("move $a0, %s", a.reg)
		}
		g.free(a)
	}
	g.emitf("li $v0, %d", code)
	g.emitf("syscall")
	return val{reg: isa.Zero}, nil
}
