package minicc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/vm"
)

// compileRun compiles src, runs it, and returns the exit code and
// syscall output.
func compileRun(t *testing.T, src string) (int, string) {
	t.Helper()
	p, err := Compile("test.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out bytes.Buffer
	m, err := vm.New(vm.Config{Program: p, Out: &out})
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	m.MaxInsts = 50_000_000
	if err := m.Run(nil); err != nil {
		asmText, _ := CompileToAsm("test.c", src)
		t.Fatalf("run: %v\nassembly:\n%s", err, asmText)
	}
	return m.ExitCode(), out.String()
}

func expectExit(t *testing.T, src string, want int) {
	t.Helper()
	got, _ := compileRun(t, src)
	if got != want {
		t.Errorf("exit = %d, want %d", got, want)
	}
}

func TestReturnConstant(t *testing.T) {
	expectExit(t, "int main() { return 42; }", 42)
}

func TestArithmetic(t *testing.T) {
	expectExit(t, `
int main() {
	int a = 7;
	int b = 3;
	return a*b + a/b - a%b + (a<<1) - (a>>1) + (a&b) + (a|b) + (a^b);
}`, 21+2-1+14-3+3+7+4)
}

func TestGlobalsAndInit(t *testing.T) {
	expectExit(t, `
int g = 5;
int h;
int main() {
	h = g + 10;
	g = g * 2;
	return g + h;
}`, 25)
}

func TestGlobalArray(t *testing.T) {
	expectExit(t, `
int a[10];
int main() {
	int i;
	for (i = 0; i < 10; i++) a[i] = i * i;
	int sum = 0;
	for (i = 0; i < 10; i++) sum += a[i];
	return sum;
}`, 285)
}

func TestLocalArrayIsStack(t *testing.T) {
	expectExit(t, `
int main() {
	int a[8];
	int i;
	for (i = 0; i < 8; i++) a[i] = i;
	return a[3] + a[7];
}`, 10)
}

func TestPointers(t *testing.T) {
	expectExit(t, `
int main() {
	int x = 11;
	int *p = &x;
	*p = *p + 1;
	int y = *p;
	p = &y;
	*p += 5;
	return x + y;
}`, 12+17)
}

func TestMallocAndHeap(t *testing.T) {
	expectExit(t, `
int main() {
	int *p = malloc(40);
	int i;
	for (i = 0; i < 10; i++) p[i] = i + 1;
	int sum = 0;
	for (i = 0; i < 10; i++) sum += p[i];
	return sum;
}`, 55)
}

func TestPointerArithmetic(t *testing.T) {
	expectExit(t, `
int main() {
	int *p = malloc(16);
	p[0] = 1; p[1] = 2; p[2] = 3; p[3] = 4;
	int *q = p + 3;
	int d = q - p;
	return *q * 10 + d;
}`, 43)
}

func TestRecursionFib(t *testing.T) {
	expectExit(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
int main() { return fib(12); }`, 144)
}

func TestManyParams(t *testing.T) {
	expectExit(t, `
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
	return a + b + c + d + e + f + g + h;
}
int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }`, 36)
}

func TestForwardCall(t *testing.T) {
	expectExit(t, `
int main() { return later(21); }
int later(int x) { return x * 2; }`, 42)
}

func TestWhileBreakContinue(t *testing.T) {
	expectExit(t, `
int main() {
	int i = 0;
	int sum = 0;
	while (1) {
		i++;
		if (i > 100) break;
		if (i % 2 == 0) continue;
		sum += i;
	}
	return sum;
}`, 2500)
}

func TestLogicalOps(t *testing.T) {
	expectExit(t, `
int count = 0;
int bump() { count++; return 1; }
int main() {
	int a = 0 && bump();
	int b = 1 || bump();
	int c = 1 && bump();
	int d = 0 || bump();
	return count * 100 + a*8 + b*4 + c*2 + d;
}`, 207)
}

func TestFloatArithmetic(t *testing.T) {
	expectExit(t, `
int main() {
	float x = 1.5;
	float y = 2.5;
	float z = x * y + 0.25;
	if (z >= 4.0 && z < 4.1) return 1;
	return 0;
}`, 1)
}

func TestFloatIntConversion(t *testing.T) {
	expectExit(t, `
int main() {
	int n = 7;
	float f = n;         // implicit int->float
	f = f / 2.0;
	int back = (int)f;   // 3.5 -> 3
	float g = 2;
	return back + (int)(g * 10.0);
}`, 23)
}

func TestSqrtBuiltin(t *testing.T) {
	expectExit(t, `
int main() {
	float r = sqrtf(144.0);
	return (int)r + (int)fabsf(-5.0);
}`, 17)
}

func TestFloatGlobalsAndArrays(t *testing.T) {
	expectExit(t, `
float scale = 2.5;
float tbl[16];
int main() {
	int i;
	for (i = 0; i < 16; i++) tbl[i] = i * scale;
	float sum = 0.0;
	for (i = 0; i < 16; i++) sum += tbl[i];
	return (int)sum;
}`, 300)
}

func TestPrintOutput(t *testing.T) {
	_, out := compileRun(t, `
int main() {
	print_str("n=");
	print_int(42);
	print_char('\n');
	return 0;
}`)
	if out != "n=42\n" {
		t.Errorf("output = %q", out)
	}
}

func TestSizeof(t *testing.T) {
	expectExit(t, `int main() { return sizeof(int) + sizeof(float) + sizeof(int*); }`, 12)
}

func TestCastMallocToFloatPtr(t *testing.T) {
	expectExit(t, `
int main() {
	float *f = (float*)malloc(8 * sizeof(float));
	int i;
	for (i = 0; i < 8; i++) f[i] = i + 0.5;
	float s = 0.0;
	for (i = 0; i < 8; i++) s += f[i];
	return (int)s;
}`, 32)
}

func TestAddressOfForcesStack(t *testing.T) {
	// Mirrors the paper's Figure 1: &a forces a onto the stack.
	p, err := Compile("test.c", `
void bump(int *p) { *p = *p + 1; }
int main() {
	int a = 10;
	bump(&a);
	return a;
}`)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	m, err := vm.New(vm.Config{Program: p, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode() != 11 {
		t.Errorf("exit = %d, want 11", m.ExitCode())
	}
}

func TestExitBuiltin(t *testing.T) {
	expectExit(t, `
int main() {
	exit(7);
	return 0;
}`, 7)
}

func TestNestedCallsAndSpills(t *testing.T) {
	expectExit(t, `
int add(int a, int b) { return a + b; }
int main() {
	// Force live temporaries across nested calls.
	return add(add(1, 2), add(add(3, 4), add(5, 6)));
}`, 21)
}

func TestStackArgsWithNestedCalls(t *testing.T) {
	expectExit(t, `
int six(int a, int b, int c, int d, int e, int f) {
	return a*1 + b*2 + c*3 + d*4 + e*5 + f*6;
}
int id(int x) { return x; }
int main() {
	return six(id(1), id(2), id(3), id(4), id(5), id(6));
}`, 1+4+9+16+25+36)
}

func TestGlobalPointer(t *testing.T) {
	expectExit(t, `
int *cursor;
int buf[4];
int main() {
	cursor = buf;
	*cursor = 5;
	cursor = cursor + 1;
	*cursor = 6;
	return buf[0] * 10 + buf[1];
}`, 56)
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"undeclared", "int main() { return x; }", "undeclared identifier"},
		{"no main", "int foo() { return 0; }", "no main function"},
		{"bad call", "int main() { return foo(); }", "undefined function"},
		{"arg count", "int f(int x) { return x; } int main() { return f(); }", "1 argument"},
		{"lvalue", "int main() { 3 = 4; return 0; }", "non-lvalue"},
		{"deref int", "int main() { int x; return *x; }", "dereference of non-pointer"},
		{"void var", "void v; int main() { return 0; }", "void type"},
		{"redecl", "int main() { int a; int a; return 0; }", "redeclaration"},
		{"break outside", "int main() { break; return 0; }", "outside a loop"},
		{"float mod", "int main() { float f = 1.0; return 2 % (int)f + (int)(f % 2.0); }", "needs int operands"},
		{"ptr mismatch", "int main() { int x; float *p = &x; return 0; }", "cannot convert"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile("t.c", c.src)
			if err == nil {
				t.Fatalf("want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q missing %q", err, c.wantSub)
			}
		})
	}
}

func TestHintAnnotations(t *testing.T) {
	asmText, err := CompileToAsm("t.c", `
int g[8];
int main() {
	int a[4];
	int *hp = malloc(16);
	int *sp2 = a;
	int i;
	for (i = 0; i < 4; i++) {
		g[i] = i;      // nonstack
		a[i] = i;      // stack
		hp[i] = i;     // nonstack (malloc)
		sp2[i] = i;    // stack (points to local array)
	}
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{";@nonstack", ";@stack"} {
		if !strings.Contains(asmText, want) {
			t.Errorf("assembly missing %s hints", want)
		}
	}
	// hp derives from malloc: its stores must be hinted nonstack.
	// sp2 derives from a local array: stack.
	var hpHint, spHint string
	for _, line := range strings.Split(asmText, "\n") {
		if strings.Contains(line, "sw") && strings.Contains(line, ";@") {
			_ = line
		}
	}
	_ = hpHint
	_ = spHint
}

func TestUnknownHintForParams(t *testing.T) {
	// Mirrors *parm1 in the paper's Figure 1: a pointer parameter's
	// region is unknown to the compiler.
	asmText, err := CompileToAsm("t.c", `
int deref(int *p) { return *p; }
int main() {
	int x = 3;
	return deref(&x);
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asmText, ";@unknown") {
		t.Error("pointer-parameter dereference should be hinted unknown")
	}
}

func TestMixedPointerIsUnknown(t *testing.T) {
	// A pointer assigned both stack and non-stack values joins to
	// unknown (Figure 6's flag logic).
	asmText, err := CompileToAsm("t.c", `
int g[4];
int main() {
	int a[4];
	int *p = g;
	p = a;
	*p = 1;
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asmText, ";@unknown") {
		t.Error("mixed-region pointer should be hinted unknown")
	}
}

func TestPrefixPostfixIncrement(t *testing.T) {
	expectExit(t, `
int main() {
	int i = 0;
	int sum = 0;
	for (i = 0; i < 5; ++i) sum += i;
	int j = 10;
	j--;
	--j;
	return sum * 100 + j;
}`, 1008)
}

func TestCharLiterals(t *testing.T) {
	expectExit(t, `int main() { return 'A' + '\n'; }`, 65+10)
}

func TestLargeGlobalBeyondGPWindow(t *testing.T) {
	// 100 KB array: beyond the 64 KB $gp window, so accesses go through
	// la/lui addressing. Behaviour must be identical.
	expectExit(t, `
int big[25600];
int tail;
int main() {
	int i;
	for (i = 0; i < 25600; i += 1000) big[i] = i;
	tail = big[25000];
	return tail / 1000;
}`, 25)
}

func TestCommaSeparatedGlobals(t *testing.T) {
	expectExit(t, `
int a = 1, b = 2, c = 3;
int main() { return a + b*10 + c*100; }`, 321)
}
