package minicc

import "fmt"

// checker resolves calls, assigns types bottom-up, inserts implicit
// int<->float conversions as cast nodes, validates lvalues, and marks
// address-taken symbols (which forces their stack homes, exactly the
// property the paper's example uses: "a is a local variable whose
// address is taken ... the reference to a becomes a stack access").
type checker struct {
	unit *Unit
	fn   *Func
	strs map[string]int
	loop int
}

type builtin struct {
	params []*Type
	ret    *Type
}

var builtins = map[string]builtin{
	"malloc":      {params: []*Type{tyInt}, ret: ptrTo(tyInt)},
	"exit":        {params: []*Type{tyInt}, ret: tyVoid},
	"print_int":   {params: []*Type{tyInt}, ret: tyVoid},
	"print_float": {params: []*Type{tyFloat}, ret: tyVoid},
	"print_char":  {params: []*Type{tyInt}, ret: tyVoid},
	"print_str":   {params: nil, ret: tyVoid}, // special-cased: literal arg
	"sqrtf":       {params: []*Type{tyFloat}, ret: tyFloat},
	"fabsf":       {params: []*Type{tyFloat}, ret: tyFloat},
}

func check(u *Unit) error {
	c := &checker{unit: u, strs: make(map[string]int)}
	// Global initializer types, in declaration order: iterating the
	// GlobalInit map here made the first-reported error (and any
	// checker side effects, like string interning) depend on map
	// iteration order, so the same bad source produced different
	// compiler output run to run.
	for _, g := range u.Globals {
		init, ok := u.GlobalInit[g.Name]
		if !ok {
			continue
		}
		e, err := c.expr(init)
		if err != nil {
			return err
		}
		e, err = c.convert(e, g.Type, g.Line)
		if err != nil {
			return err
		}
		u.GlobalInit[g.Name] = e
	}
	for _, fn := range u.Funcs {
		c.fn = fn
		if err := c.stmts(fn.Body); err != nil {
			return err
		}
	}
	if _, ok := u.FuncByName["main"]; !ok {
		return &CompileError{File: u.File, Line: 1, Msg: "no main function"}
	}
	return nil
}

func (c *checker) errf(line int, format string, args ...any) error {
	return &CompileError{File: c.unit.File, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) stmts(ss []*Stmt) error {
	for _, s := range ss {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s *Stmt) error {
	switch s.Kind {
	case StmtDecl:
		if s.Init != nil {
			if s.Decl.Type.Kind == TypeArray {
				return c.errf(s.Line, "array %q cannot have an initializer", s.Decl.Name)
			}
			e, err := c.expr(s.Init)
			if err != nil {
				return err
			}
			e, err = c.convert(e, s.Decl.Type, s.Line)
			if err != nil {
				return err
			}
			s.Init = e
		}
		return nil
	case StmtExpr:
		e, err := c.expr(s.Expr)
		if err != nil {
			return err
		}
		s.Expr = e
		return nil
	case StmtIf, StmtWhile:
		e, err := c.cond(s.Expr)
		if err != nil {
			return err
		}
		s.Expr = e
		if s.Kind == StmtWhile {
			c.loop++
			defer func() { c.loop-- }()
		}
		if err := c.stmts(s.Body); err != nil {
			return err
		}
		return c.stmts(s.Else)
	case StmtFor:
		if s.InitStmt != nil {
			if err := c.stmt(s.InitStmt); err != nil {
				return err
			}
		}
		if s.Expr != nil {
			e, err := c.cond(s.Expr)
			if err != nil {
				return err
			}
			s.Expr = e
		}
		if s.Post != nil {
			e, err := c.expr(s.Post)
			if err != nil {
				return err
			}
			s.Post = e
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.stmts(s.Body)
	case StmtReturn:
		if c.fn.Ret.Kind == TypeVoid {
			if s.Expr != nil {
				return c.errf(s.Line, "void function %q returns a value", c.fn.Name)
			}
			return nil
		}
		if s.Expr == nil {
			return c.errf(s.Line, "function %q must return %s", c.fn.Name, c.fn.Ret)
		}
		e, err := c.expr(s.Expr)
		if err != nil {
			return err
		}
		e, err = c.convert(e, c.fn.Ret, s.Line)
		if err != nil {
			return err
		}
		s.Expr = e
		return nil
	case StmtBreak, StmtContinue:
		if c.loop == 0 {
			return c.errf(s.Line, "break/continue outside a loop")
		}
		return nil
	case StmtBlock:
		return c.stmts(s.Body)
	}
	return c.errf(s.Line, "internal: unknown statement kind %d", s.Kind)
}

// cond type-checks a condition: int or pointer (non-zero means true).
func (c *checker) cond(e *Expr) (*Expr, error) {
	e, err := c.expr(e)
	if err != nil {
		return nil, err
	}
	t := decayType(e.Type)
	if t.Kind == TypeFloat {
		return nil, c.errf(e.Line, "float condition; compare explicitly")
	}
	if t.Kind != TypeInt && t.Kind != TypePtr {
		return nil, c.errf(e.Line, "condition has type %s", e.Type)
	}
	return e, nil
}

// decayType converts an array type to a pointer to its element.
func decayType(t *Type) *Type {
	if t != nil && t.Kind == TypeArray {
		return ptrTo(t.Elem)
	}
	return t
}

// convert coerces e to want, inserting an implicit cast when needed.
func (c *checker) convert(e *Expr, want *Type, line int) (*Expr, error) {
	have := decayType(e.Type)
	if have.Equal(want) {
		return e, nil
	}
	switch {
	case have.Kind == TypeInt && want.Kind == TypeFloat,
		have.Kind == TypeFloat && want.Kind == TypeInt:
		return &Expr{Kind: ExprCast, CastTo: want, L: e, Type: want, Line: line}, nil
	case have.Kind == TypePtr && want.Kind == TypePtr:
		// Only identical pointer types convert implicitly, except that
		// malloc's int* converts to any pointer (MiniC's void*).
		if e.Kind == ExprCall && e.Callee == "malloc" {
			return &Expr{Kind: ExprCast, CastTo: want, L: e, Type: want, Line: line}, nil
		}
	case have.Kind == TypeInt && want.Kind == TypePtr:
		if e.Kind == ExprIntLit && e.Ival == 0 {
			return &Expr{Kind: ExprCast, CastTo: want, L: e, Type: want, Line: line}, nil
		}
	}
	return nil, c.errf(line, "cannot convert %s to %s", e.Type, want)
}

// isLvalue reports whether e designates a storage location.
func isLvalue(e *Expr) bool {
	switch e.Kind {
	case ExprIdent:
		return e.Sym.Type.Kind != TypeArray // arrays are not assignable
	case ExprIndex:
		return true
	case ExprUnary:
		return e.Op == "*"
	}
	return false
}

func (c *checker) expr(e *Expr) (*Expr, error) {
	switch e.Kind {
	case ExprIntLit:
		e.Type = tyInt
		return e, nil
	case ExprFloatLit:
		e.Type = tyFloat
		return e, nil
	case ExprStrLit:
		idx, ok := c.strs[e.Str]
		if !ok {
			idx = len(c.unit.Strings)
			c.strs[e.Str] = idx
			c.unit.Strings = append(c.unit.Strings, e.Str)
		}
		e.Ival = int64(idx)
		e.Type = ptrTo(tyInt)
		return e, nil
	case ExprIdent:
		e.Type = e.Sym.Type
		return e, nil
	case ExprUnary:
		return c.unary(e)
	case ExprBinary:
		return c.binary(e)
	case ExprAssign:
		return c.assign(e)
	case ExprIndex:
		return c.index(e)
	case ExprCall:
		return c.call(e)
	case ExprCast:
		l, err := c.expr(e.L)
		if err != nil {
			return nil, err
		}
		e.L = l
		from, to := decayType(l.Type), e.CastTo
		okCast := (from.Kind == TypeInt || from.Kind == TypeFloat || from.Kind == TypePtr) &&
			(to.Kind == TypeInt || to.Kind == TypeFloat || to.Kind == TypePtr)
		if !okCast || (from.Kind == TypeFloat && to.Kind == TypePtr) ||
			(from.Kind == TypePtr && to.Kind == TypeFloat) {
			return nil, c.errf(e.Line, "cannot cast %s to %s", l.Type, to)
		}
		e.Type = to
		return e, nil
	}
	return nil, c.errf(e.Line, "internal: unknown expression kind %d", e.Kind)
}

// fold evaluates constant integer/float expressions at compile time —
// the folding any optimizing compiler performs, and what keeps constant
// array indices foldable into displacement addressing.
func fold(e *Expr) *Expr {
	switch e.Kind {
	case ExprUnary:
		l := e.L
		if l.Kind == ExprIntLit {
			switch e.Op {
			case "-":
				return &Expr{Kind: ExprIntLit, Ival: -l.Ival, Type: tyInt, Line: e.Line}
			case "~":
				return &Expr{Kind: ExprIntLit, Ival: ^l.Ival, Type: tyInt, Line: e.Line}
			case "!":
				v := int64(0)
				if l.Ival == 0 {
					v = 1
				}
				return &Expr{Kind: ExprIntLit, Ival: v, Type: tyInt, Line: e.Line}
			}
		}
		if l.Kind == ExprFloatLit && e.Op == "-" {
			return &Expr{Kind: ExprFloatLit, Fval: -l.Fval, Type: tyFloat, Line: e.Line}
		}
	case ExprBinary:
		l, r := e.L, e.R
		if l.Kind == ExprIntLit && r.Kind == ExprIntLit {
			a, b := l.Ival, r.Ival
			var v int64
			switch e.Op {
			case "+":
				v = a + b
			case "-":
				v = a - b
			case "*":
				v = a * b
			case "/":
				if b == 0 {
					return e
				}
				v = a / b
			case "%":
				if b == 0 {
					return e
				}
				v = a % b
			case "&":
				v = a & b
			case "|":
				v = a | b
			case "^":
				v = a ^ b
			case "<<":
				v = int64(int32(a) << (uint(b) & 31))
			case ">>":
				v = int64(int32(a) >> (uint(b) & 31))
			default:
				return e
			}
			return &Expr{Kind: ExprIntLit, Ival: int64(int32(v)), Type: tyInt, Line: e.Line}
		}
	}
	return e
}

func (c *checker) unary(e *Expr) (*Expr, error) {
	l, err := c.expr(e.L)
	if err != nil {
		return nil, err
	}
	e.L = l
	switch e.Op {
	case "-":
		t := decayType(l.Type)
		if t.Kind != TypeInt && t.Kind != TypeFloat {
			return nil, c.errf(e.Line, "unary - on %s", l.Type)
		}
		e.Type = t
	case "!", "~":
		if decayType(l.Type).Kind != TypeInt {
			return nil, c.errf(e.Line, "unary %s on %s", e.Op, l.Type)
		}
		e.Type = tyInt
	case "*":
		t := decayType(l.Type)
		if t.Kind != TypePtr {
			return nil, c.errf(e.Line, "dereference of non-pointer %s", l.Type)
		}
		e.Type = t.Elem
	case "&":
		if l.Kind == ExprIdent && l.Sym.Type.Kind == TypeArray {
			// &arr is the array's address: same as arr decayed.
			e.Type = ptrTo(l.Sym.Type.Elem)
		} else {
			if !isLvalue(l) {
				return nil, c.errf(e.Line, "cannot take address of this expression")
			}
			e.Type = ptrTo(l.Type)
		}
		if l.Kind == ExprIdent {
			l.Sym.IsAddrT = true
		}
	default:
		return nil, c.errf(e.Line, "internal: unary op %q", e.Op)
	}
	return fold(e), nil
}

func (c *checker) binary(e *Expr) (*Expr, error) {
	l, err := c.expr(e.L)
	if err != nil {
		return nil, err
	}
	r, err := c.expr(e.R)
	if err != nil {
		return nil, err
	}
	e.L, e.R = l, r
	lt, rt := decayType(l.Type), decayType(r.Type)

	switch e.Op {
	case "+", "-":
		// Pointer arithmetic.
		if lt.Kind == TypePtr && rt.Kind == TypeInt {
			e.Type = lt
			return e, nil
		}
		if e.Op == "+" && lt.Kind == TypeInt && rt.Kind == TypePtr {
			e.Type = rt
			return e, nil
		}
		if e.Op == "-" && lt.Kind == TypePtr && rt.Kind == TypePtr {
			if !lt.Elem.Equal(rt.Elem) {
				return nil, c.errf(e.Line, "pointer subtraction of %s and %s", lt, rt)
			}
			e.Type = tyInt
			return e, nil
		}
		fallthrough
	case "*", "/":
		if lt.Kind == TypeFloat || rt.Kind == TypeFloat {
			if e.L, err = c.convert(l, tyFloat, e.Line); err != nil {
				return nil, err
			}
			if e.R, err = c.convert(r, tyFloat, e.Line); err != nil {
				return nil, err
			}
			e.Type = tyFloat
			return e, nil
		}
		if lt.Kind != TypeInt || rt.Kind != TypeInt {
			return nil, c.errf(e.Line, "operator %s on %s and %s", e.Op, l.Type, r.Type)
		}
		e.Type = tyInt
		return fold(e), nil

	case "%", "<<", ">>", "&", "|", "^":
		if lt.Kind != TypeInt || rt.Kind != TypeInt {
			return nil, c.errf(e.Line, "operator %s needs int operands, got %s and %s",
				e.Op, l.Type, r.Type)
		}
		e.Type = tyInt
		return fold(e), nil

	case "<", "<=", ">", ">=", "==", "!=":
		if lt.Kind == TypePtr && rt.Kind == TypePtr {
			e.Type = tyInt
			return e, nil
		}
		if lt.Kind == TypePtr && r.Kind == ExprIntLit && r.Ival == 0 ||
			rt.Kind == TypePtr && l.Kind == ExprIntLit && l.Ival == 0 {
			e.Type = tyInt
			return e, nil
		}
		if lt.Kind == TypeFloat || rt.Kind == TypeFloat {
			if e.L, err = c.convert(l, tyFloat, e.Line); err != nil {
				return nil, err
			}
			if e.R, err = c.convert(r, tyFloat, e.Line); err != nil {
				return nil, err
			}
			e.Type = tyInt
			return e, nil
		}
		if lt.Kind != TypeInt || rt.Kind != TypeInt {
			return nil, c.errf(e.Line, "comparison of %s and %s", l.Type, r.Type)
		}
		e.Type = tyInt
		return e, nil

	case "&&", "||":
		for _, t := range []*Type{lt, rt} {
			if t.Kind != TypeInt && t.Kind != TypePtr {
				return nil, c.errf(e.Line, "operator %s on %s", e.Op, t)
			}
		}
		e.Type = tyInt
		return e, nil
	}
	return nil, c.errf(e.Line, "internal: binary op %q", e.Op)
}

func (c *checker) assign(e *Expr) (*Expr, error) {
	l, err := c.expr(e.L)
	if err != nil {
		return nil, err
	}
	if !isLvalue(l) {
		return nil, c.errf(e.Line, "assignment to non-lvalue")
	}
	r, err := c.expr(e.R)
	if err != nil {
		return nil, err
	}
	e.L = l
	if e.Op != "=" {
		// Compound assignment: type-check the implied binary op.
		binOp := e.Op[:len(e.Op)-1]
		bin := &Expr{Kind: ExprBinary, Op: binOp, L: l, R: r, Line: e.Line}
		bin, err = c.binary(bin)
		if err != nil {
			return nil, err
		}
		r = bin
		e.Op = "="
	}
	r, err = c.convert(r, l.Type, e.Line)
	if err != nil {
		return nil, err
	}
	e.R = r
	e.Type = l.Type
	return e, nil
}

func (c *checker) index(e *Expr) (*Expr, error) {
	l, err := c.expr(e.L)
	if err != nil {
		return nil, err
	}
	r, err := c.expr(e.R)
	if err != nil {
		return nil, err
	}
	e.L, e.R = l, r
	base := decayType(l.Type)
	if base.Kind != TypePtr {
		return nil, c.errf(e.Line, "indexing non-array %s", l.Type)
	}
	if decayType(r.Type).Kind != TypeInt {
		return nil, c.errf(e.Line, "array index has type %s", r.Type)
	}
	e.Type = base.Elem
	return e, nil
}

func (c *checker) call(e *Expr) (*Expr, error) {
	if e.Callee == "print_str" {
		if len(e.Args) != 1 || e.Args[0].Kind != ExprStrLit {
			return nil, c.errf(e.Line, "print_str takes one string literal")
		}
		a, err := c.expr(e.Args[0])
		if err != nil {
			return nil, err
		}
		e.Args[0] = a
		e.Type = tyVoid
		return e, nil
	}
	if b, ok := builtins[e.Callee]; ok {
		if len(e.Args) != len(b.params) {
			return nil, c.errf(e.Line, "%s takes %d argument(s), got %d",
				e.Callee, len(b.params), len(e.Args))
		}
		for i, a := range e.Args {
			a, err := c.expr(a)
			if err != nil {
				return nil, err
			}
			a, err = c.convert(a, b.params[i], e.Line)
			if err != nil {
				return nil, err
			}
			e.Args[i] = a
		}
		e.Type = b.ret
		return e, nil
	}
	fn, ok := c.unit.FuncByName[e.Callee]
	if !ok {
		// The callee may be defined later in the file; the driver runs
		// the checker only after the whole unit is parsed, so this is a
		// genuine unknown.
		return nil, c.errf(e.Line, "call to undefined function %q", e.Callee)
	}
	if len(e.Args) != len(fn.Params) {
		return nil, c.errf(e.Line, "%s takes %d argument(s), got %d",
			e.Callee, len(fn.Params), len(e.Args))
	}
	for i, a := range e.Args {
		a, err := c.expr(a)
		if err != nil {
			return nil, err
		}
		a, err = c.convert(a, fn.Params[i].Type, e.Line)
		if err != nil {
			return nil, err
		}
		e.Args[i] = a
	}
	e.Fn = fn
	e.Type = fn.Ret
	return e, nil
}
