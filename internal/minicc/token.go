// Package minicc implements a compiler for MiniC, a small C subset, to
// RISA assembly. The paper's workloads are written in MiniC (standing in
// for the EGCS-compiled SPEC95 sources), and the compiler implements the
// paper's Figure 6 classify_mem region analysis: every emitted load and
// store carries a stack / non-stack / unknown hint derived from a simple
// flow-insensitive points-to analysis, which feeds the §3.5.2
// compiler-hints experiment.
//
// MiniC supports: int, float, pointers, fixed-size global and local
// arrays, global and local scalars, functions with up to 8 parameters,
// recursion, if/else, while, for, break/continue, return, C expression
// syntax with the usual precedence, address-of, dereference, array
// indexing, pointer arithmetic, and the builtins malloc, exit,
// print_int, print_float, print_char, print_str, and sqrtf.
package minicc

import "fmt"

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokIntLit
	tokFloatLit
	tokStrLit
	tokCharLit
	tokPunct   // operators and punctuation, identified by text
	tokKeyword // language keywords, identified by text
)

var keywords = map[string]bool{
	"int": true, "float": true, "void": true, "if": true, "else": true,
	"while": true, "for": true, "return": true, "break": true,
	"continue": true, "sizeof": true,
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string  // identifier text, punctuation, or keyword
	ival int64   // value for tokIntLit / tokCharLit
	fval float64 // value for tokFloatLit
	str  string  // decoded value for tokStrLit
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "EOF"
	case tokIntLit:
		return fmt.Sprintf("%d", t.ival)
	case tokFloatLit:
		return fmt.Sprintf("%g", t.fval)
	case tokStrLit:
		return fmt.Sprintf("%q", t.str)
	default:
		return t.text
	}
}

// CompileError is a diagnostic with source position.
type CompileError struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}
