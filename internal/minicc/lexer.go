package minicc

import (
	"fmt"
	"strconv"
	"strings"
)

// lexer turns MiniC source into tokens. It is a straightforward
// hand-written scanner; MiniC has no preprocessor.
type lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (l *lexer) errf(line, col int, format string, args ...any) error {
	return &CompileError{File: l.file, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return l.errf(line, col, "unterminated block comment")
				}
				if l.peekByte() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-char punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ",", ";",
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.peekByte()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && (isIdentStart(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		k := tokIdent
		if keywords[text] {
			k = tokKeyword
		}
		return token{kind: k, text: text, line: line, col: col}, nil

	case isDigit(c):
		start := l.pos
		isFloat := false
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			for l.pos < len(l.src) && isHex(l.peekByte()) {
				l.advance()
			}
		} else {
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
			if l.peekByte() == '.' && isDigit(l.peek2()) {
				isFloat = true
				l.advance()
				for l.pos < len(l.src) && isDigit(l.peekByte()) {
					l.advance()
				}
			}
			if l.peekByte() == 'e' || l.peekByte() == 'E' {
				save := l.pos
				l.advance()
				if l.peekByte() == '+' || l.peekByte() == '-' {
					l.advance()
				}
				if isDigit(l.peekByte()) {
					isFloat = true
					for l.pos < len(l.src) && isDigit(l.peekByte()) {
						l.advance()
					}
				} else {
					l.pos = save
				}
			}
			if l.peekByte() == 'f' && isFloat {
				l.advance()
			}
		}
		text := strings.TrimSuffix(l.src[start:l.pos], "f")
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return token{}, l.errf(line, col, "bad float literal %q", text)
			}
			return token{kind: tokFloatLit, fval: f, line: line, col: col}, nil
		}
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, l.errf(line, col, "bad integer literal %q", text)
		}
		return token{kind: tokIntLit, ival: v, line: line, col: col}, nil

	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(line, col, "unterminated string literal")
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' {
				if l.pos >= len(l.src) {
					return token{}, l.errf(line, col, "unterminated escape")
				}
				e := l.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '0':
					sb.WriteByte(0)
				case '\\', '"', '\'':
					sb.WriteByte(e)
				default:
					return token{}, l.errf(line, col, "bad escape \\%c", e)
				}
				continue
			}
			sb.WriteByte(c)
		}
		return token{kind: tokStrLit, str: sb.String(), line: line, col: col}, nil

	case c == '\'':
		l.advance()
		if l.pos >= len(l.src) {
			return token{}, l.errf(line, col, "unterminated char literal")
		}
		var v byte
		cc := l.advance()
		if cc == '\\' {
			if l.pos >= len(l.src) {
				return token{}, l.errf(line, col, "unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				v = '\n'
			case 't':
				v = '\t'
			case '0':
				v = 0
			case '\\', '\'', '"':
				v = e
			default:
				return token{}, l.errf(line, col, "bad escape \\%c", e)
			}
		} else {
			v = cc
		}
		if l.pos >= len(l.src) || l.advance() != '\'' {
			return token{}, l.errf(line, col, "unterminated char literal")
		}
		return token{kind: tokCharLit, ival: int64(v), line: line, col: col}, nil
	}

	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			for range p {
				l.advance()
			}
			return token{kind: tokPunct, text: p, line: line, col: col}, nil
		}
	}
	return token{}, l.errf(line, col, "unexpected character %q", string(c))
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// lexAll tokenizes the whole source (including the trailing EOF token).
func lexAll(file, src string) ([]token, error) {
	l := newLexer(file, src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
