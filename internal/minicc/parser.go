package minicc

import "fmt"

// parser builds the AST. Variable scoping is resolved during parsing
// (declare-before-use, block scoped); types and function calls are
// resolved by the checker afterwards, so functions may be used before
// their definitions.
type parser struct {
	file string
	toks []token
	pos  int

	unit   *Unit
	scopes []map[string]*Sym
	fn     *Func // function being parsed
}

func parse(file, src string) (*Unit, error) {
	toks, err := lexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		file: file,
		toks: toks,
		unit: &Unit{
			File:       file,
			GlobalInit: make(map[string]*Expr),
			FuncByName: make(map[string]*Func),
		},
	}
	p.pushScope()
	if err := p.parseUnit(); err != nil {
		return nil, err
	}
	return p.unit, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return &CompileError{File: p.file, Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

func (p *parser) isKeyword(s string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) || p.isKeyword(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.accept(s) {
		return p.errf(p.cur(), "expected %q, found %q", s, p.cur().String())
	}
	return nil
}

func (p *parser) pushScope() {
	p.scopes = append(p.scopes, make(map[string]*Sym))
}

func (p *parser) popScope() {
	p.scopes = p.scopes[:len(p.scopes)-1]
}

func (p *parser) declare(s *Sym, t token) error {
	top := p.scopes[len(p.scopes)-1]
	if _, dup := top[s.Name]; dup {
		return p.errf(t, "redeclaration of %q", s.Name)
	}
	top[s.Name] = s
	return nil
}

func (p *parser) lookup(name string) *Sym {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if s, ok := p.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

// typeStart reports whether the current token starts a type.
func (p *parser) typeStart() bool {
	return p.isKeyword("int") || p.isKeyword("float") || p.isKeyword("void")
}

// parseBaseType parses "int", "float" or "void" plus pointer stars.
func (p *parser) parseBaseType() (*Type, error) {
	t := p.cur()
	var ty *Type
	switch {
	case p.accept("int"):
		ty = tyInt
	case p.accept("float"):
		ty = tyFloat
	case p.accept("void"):
		ty = tyVoid
	default:
		return nil, p.errf(t, "expected type, found %q", t.String())
	}
	for p.accept("*") {
		ty = ptrTo(ty)
	}
	return ty, nil
}

func (p *parser) parseUnit() error {
	for p.cur().kind != tokEOF {
		t := p.cur()
		ty, err := p.parseBaseType()
		if err != nil {
			return err
		}
		nameTok := p.cur()
		if nameTok.kind != tokIdent {
			return p.errf(nameTok, "expected name, found %q", nameTok.String())
		}
		p.advance()
		if p.isPunct("(") {
			if err := p.parseFunc(ty, nameTok); err != nil {
				return err
			}
			continue
		}
		// Global variable(s): type name [ '[' N ']' ] [= const] {, ...} ;
		for {
			gty := ty
			if p.accept("[") {
				n := p.cur()
				if n.kind != tokIntLit || n.ival <= 0 {
					return p.errf(n, "array length must be a positive integer literal")
				}
				p.advance()
				if err := p.expect("]"); err != nil {
					return err
				}
				gty = arrayOf(ty, int(n.ival))
			}
			if gty.Kind == TypeVoid {
				return p.errf(t, "variable %q has void type", nameTok.text)
			}
			sym := &Sym{Name: nameTok.text, Type: gty, Stor: StorGlobal, Line: nameTok.line}
			if err := p.declare(sym, nameTok); err != nil {
				return err
			}
			sym.Index = len(p.unit.Globals)
			p.unit.Globals = append(p.unit.Globals, sym)
			if p.accept("=") {
				init, err := p.parseConstExpr()
				if err != nil {
					return err
				}
				if gty.Kind == TypeArray {
					return p.errf(nameTok, "array initializers are not supported")
				}
				p.unit.GlobalInit[sym.Name] = init
			}
			if p.accept(",") {
				nameTok = p.cur()
				if nameTok.kind != tokIdent {
					return p.errf(nameTok, "expected name after ','")
				}
				p.advance()
				continue
			}
			break
		}
		if err := p.expect(";"); err != nil {
			return err
		}
	}
	return nil
}

// parseConstExpr parses the restricted constant expressions allowed in
// global initializers: [-] int/float literal.
func (p *parser) parseConstExpr() (*Expr, error) {
	neg := p.accept("-")
	t := p.cur()
	switch t.kind {
	case tokIntLit, tokCharLit:
		p.advance()
		v := t.ival
		if neg {
			v = -v
		}
		return &Expr{Kind: ExprIntLit, Ival: v, Line: t.line}, nil
	case tokFloatLit:
		p.advance()
		v := t.fval
		if neg {
			v = -v
		}
		return &Expr{Kind: ExprFloatLit, Fval: v, Line: t.line}, nil
	}
	return nil, p.errf(t, "global initializer must be a literal")
}

func (p *parser) parseFunc(ret *Type, nameTok token) error {
	if _, dup := p.unit.FuncByName[nameTok.text]; dup {
		return p.errf(nameTok, "redefinition of function %q", nameTok.text)
	}
	fn := &Func{Name: nameTok.text, Ret: ret, Line: nameTok.line}
	p.fn = fn
	p.pushScope()
	defer func() { p.popScope(); p.fn = nil }()

	if err := p.expect("("); err != nil {
		return err
	}
	if !p.accept(")") {
		// "void" alone means no parameters.
		if p.isKeyword("void") && p.peek().kind == tokPunct && p.peek().text == ")" {
			p.advance()
		} else {
			for {
				pt := p.cur()
				ty, err := p.parseBaseType()
				if err != nil {
					return err
				}
				if ty.Kind == TypeVoid {
					return p.errf(pt, "parameter has void type")
				}
				nt := p.cur()
				if nt.kind != tokIdent {
					return p.errf(nt, "expected parameter name")
				}
				p.advance()
				sym := &Sym{Name: nt.text, Type: ty, Stor: StorParam,
					Line: nt.line, Index: len(fn.Params)}
				if err := p.declare(sym, nt); err != nil {
					return err
				}
				fn.Params = append(fn.Params, sym)
				if !p.accept(",") {
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return err
		}
	}
	if len(fn.Params) > 8 {
		return p.errf(nameTok, "function %q has %d parameters (max 8)", fn.Name, len(fn.Params))
	}

	if err := p.expect("{"); err != nil {
		return err
	}
	body, err := p.parseBlockBody()
	if err != nil {
		return err
	}
	fn.Body = body
	p.unit.Funcs = append(p.unit.Funcs, fn)
	p.unit.FuncByName[fn.Name] = fn
	return nil
}

// parseBlockBody parses statements until the matching '}'.
func (p *parser) parseBlockBody() ([]*Stmt, error) {
	var out []*Stmt
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf(p.cur(), "unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
	return out, nil
}

func (p *parser) parseStmt() (*Stmt, error) {
	t := p.cur()
	switch {
	case p.typeStart():
		return p.parseDecl()

	case p.accept("{"):
		p.pushScope()
		body, err := p.parseBlockBody()
		p.popScope()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtBlock, Line: t.line, Body: body}, nil

	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		thenS, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		var elseS []*Stmt
		if p.accept("else") {
			elseS, err = p.parseStmtAsBlock()
			if err != nil {
				return nil, err
			}
		}
		return &Stmt{Kind: StmtIf, Line: t.line, Expr: cond, Body: thenS, Else: elseS}, nil

	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtWhile, Line: t.line, Expr: cond, Body: body}, nil

	case p.accept("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		p.pushScope()
		defer p.popScope()
		var initStmt *Stmt
		if !p.accept(";") {
			var err error
			if p.typeStart() {
				initStmt, err = p.parseDecl() // consumes ';'
			} else {
				var e *Expr
				e, err = p.parseExpr()
				if err == nil {
					initStmt = &Stmt{Kind: StmtExpr, Line: t.line, Expr: e}
					err = p.expect(";")
				}
			}
			if err != nil {
				return nil, err
			}
		}
		var cond *Expr
		if !p.isPunct(";") {
			var err error
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		var post *Expr
		if !p.isPunct(")") {
			var err error
			post, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtFor, Line: t.line, InitStmt: initStmt,
			Expr: cond, Post: post, Body: body}, nil

	case p.accept("return"):
		var e *Expr
		if !p.isPunct(";") {
			var err error
			e, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtReturn, Line: t.line, Expr: e}, nil

	case p.accept("break"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtBreak, Line: t.line}, nil

	case p.accept("continue"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtContinue, Line: t.line}, nil

	case p.accept(";"):
		return nil, nil

	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtExpr, Line: t.line, Expr: e}, nil
	}
}

// parseStmtAsBlock parses one statement (or block) as a statement list.
func (p *parser) parseStmtAsBlock() ([]*Stmt, error) {
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	if s.Kind == StmtBlock {
		return s.Body, nil
	}
	return []*Stmt{s}, nil
}

// parseDecl parses a local declaration "type name [N] [= expr] ;" and
// registers the symbol in the current scope and the function.
func (p *parser) parseDecl() (*Stmt, error) {
	t := p.cur()
	ty, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	nt := p.cur()
	if nt.kind != tokIdent {
		return nil, p.errf(nt, "expected variable name")
	}
	p.advance()
	if p.accept("[") {
		n := p.cur()
		if n.kind != tokIntLit || n.ival <= 0 {
			return nil, p.errf(n, "array length must be a positive integer literal")
		}
		p.advance()
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		ty = arrayOf(ty, int(n.ival))
	}
	if ty.Kind == TypeVoid {
		return nil, p.errf(t, "variable %q has void type", nt.text)
	}
	sym := &Sym{Name: nt.text, Type: ty, Stor: StorLocal, Line: nt.line}
	if err := p.declare(sym, nt); err != nil {
		return nil, err
	}
	if p.fn == nil {
		return nil, p.errf(nt, "local declaration outside a function")
	}
	sym.Index = len(p.fn.Locals)
	p.fn.Locals = append(p.fn.Locals, sym)

	st := &Stmt{Kind: StmtDecl, Line: t.line, Decl: sym}
	if p.accept("=") {
		init, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return st, nil
}
