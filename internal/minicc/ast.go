package minicc

import "fmt"

// Type is a MiniC type. MiniC has int (32-bit signed), float (float32),
// pointers, and fixed-size arrays of int/float/pointer.
type Type struct {
	Kind TypeKind
	Elem *Type // element type for Ptr and Array
	Len  int   // array length for Array
}

// TypeKind discriminates Type.
type TypeKind int

// Type kinds.
const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeFloat
	TypePtr
	TypeArray
)

var (
	tyVoid  = &Type{Kind: TypeVoid}
	tyInt   = &Type{Kind: TypeInt}
	tyFloat = &Type{Kind: TypeFloat}
)

func ptrTo(t *Type) *Type { return &Type{Kind: TypePtr, Elem: t} }
func arrayOf(t *Type, n int) *Type {
	return &Type{Kind: TypeArray, Elem: t, Len: n}
}

// Size reports the storage size in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TypeInt, TypeFloat, TypePtr:
		return 4
	case TypeArray:
		return t.Elem.Size() * t.Len
	}
	return 0
}

// IsScalar reports whether the type fits in one register.
func (t *Type) IsScalar() bool {
	return t.Kind == TypeInt || t.Kind == TypeFloat || t.Kind == TypePtr
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind || t.Len != o.Len {
		return false
	}
	if t.Elem == nil && o.Elem == nil {
		return true
	}
	return t.Elem.Equal(o.Elem)
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	}
	return "?"
}

// Storage says where a variable lives — the compile-time counterpart of
// the paper's access regions.
type Storage int

// Variable storage classes.
const (
	StorGlobal Storage = iota // static data region
	StorLocal                 // stack frame
	StorParam                 // incoming parameter (stack frame home)
)

// Sym is a declared variable.
type Sym struct {
	Name    string
	Type    *Type
	Stor    Storage
	Line    int
	Index   int  // declaration order within its scope owner
	IsAddrT bool // address taken somewhere (forces stack home for locals)

	// Codegen fields.
	Offset int  // frame offset (locals/params) or data offset (globals)
	InReg  bool // promoted to a callee-saved register
	Reg    int  // s-register index when InReg
}

// Expr is an expression node.
type Expr struct {
	Kind ExprKind
	Line int

	Type *Type // set by the checker

	// Literals.
	Ival int64
	Fval float64
	Str  string

	// Identifiers.
	Sym *Sym

	// Operators.
	Op   string
	L, R *Expr

	// Calls.
	Callee string
	Fn     *Func // resolved user function (nil for builtins)
	Args   []*Expr

	// Casts.
	CastTo *Type
}

// ExprKind discriminates Expr.
type ExprKind int

// Expression kinds.
const (
	ExprIntLit ExprKind = iota
	ExprFloatLit
	ExprStrLit
	ExprIdent
	ExprUnary  // Op in {-, !, ~, *, &}; operand in L
	ExprBinary // Op arithmetic/relational/logical; operands L, R
	ExprAssign // Op in {=, +=, -=, ...}; L is lvalue
	ExprIndex  // L[R]
	ExprCall
	ExprCast // (CastTo) L
)

// Stmt is a statement node.
type Stmt struct {
	Kind StmtKind
	Line int

	Decl *Sym  // declared variable for StmtDecl
	Init *Expr // initializer (StmtDecl) or init expr (StmtFor uses InitStmt)
	Expr *Expr // condition or expression

	InitStmt *Stmt // for-loop init
	Post     *Expr // for-loop post expression

	Body []*Stmt // block body / loop body / then-branch
	Else []*Stmt // else-branch
}

// StmtKind discriminates Stmt.
type StmtKind int

// Statement kinds.
const (
	StmtDecl StmtKind = iota
	StmtExpr
	StmtIf
	StmtWhile
	StmtFor
	StmtReturn
	StmtBreak
	StmtContinue
	StmtBlock
)

// Func is a function definition.
type Func struct {
	Name    string
	Ret     *Type
	Params  []*Sym
	Body    []*Stmt
	Line    int
	Locals  []*Sym // every local declared anywhere in the body, in order
	IsProto bool   // declaration without body (not supported; kept false)
}

// Unit is a parsed+checked compilation unit.
type Unit struct {
	File    string
	Globals []*Sym
	// GlobalInit holds constant initializers for scalar globals (by
	// symbol name); arrays are zero-initialized.
	GlobalInit map[string]*Expr
	Funcs      []*Func
	FuncByName map[string]*Func
	// Strings interned from string literals, in first-use order.
	Strings []string
}
