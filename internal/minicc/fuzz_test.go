// Fuzz targets live in an external test package so they can seed the
// corpus from the workload sources without a workload -> minicc import
// cycle.
package minicc_test

import (
	"testing"

	"repro/internal/minicc"
	"repro/internal/workload"
)

// FuzzCompile drives the full lexer -> parser -> checker -> codegen
// path on arbitrary source: it must either compile or return an error,
// never panic.
func FuzzCompile(f *testing.F) {
	for _, w := range workload.All() {
		f.Add(w.Source(1))
	}
	f.Add("int main() { return 42; }")
	f.Add("int g[10]; int main() { int i; for (i = 0; i < 10; i = i + 1) g[i] = i; return g[3]; }")
	f.Add("float f(float x) { return x * 2.0; } int main() { return (int)f(1.5); }")
	f.Add("int main() { /* unterminated")
	f.Add("int main() { '\\") // unterminated escape at EOF (regression)
	f.Add("int main() { return \"str\"; }")
	f.Add("struct s { int a; }; int main() { struct s v; v.a = 1; return v.a; }")
	f.Add("int main() { int x = 0x; }")       // bad literal
	f.Add("\x00\x01 int main()")              // binary garbage
	f.Add("int if(int while) { return for }") // keywords as identifiers
	f.Add("int main() { return ((((((1)))))); }")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := minicc.Compile("fuzz.c", src)
		if err == nil && p == nil {
			t.Fatal("nil program with nil error")
		}
	})
}
