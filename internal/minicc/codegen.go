package minicc

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Compile compiles MiniC source to a linked RISA program, running the
// parser, checker, points-to analysis, and code generator.
func Compile(file, src string) (*prog.Program, error) {
	text, err := CompileToAsm(file, src)
	if err != nil {
		return nil, err
	}
	p, err := asm.Assemble(file, text)
	if err != nil {
		return nil, fmt.Errorf("minicc: internal: generated assembly rejected: %w", err)
	}
	return p, nil
}

// CompileToAsm compiles MiniC source to RISA assembly text. Every
// emitted memory instruction carries a ;@stack / ;@nonstack / ;@unknown
// compiler hint per the Figure 6 analysis.
func CompileToAsm(file, src string) (string, error) {
	unit, err := parse(file, src)
	if err != nil {
		return "", err
	}
	if err := check(unit); err != nil {
		return "", err
	}
	g := &codegen{unit: unit, pt: analyzePointers(unit)}
	return g.generate()
}

// Calling convention constants.
const (
	maxRegArgs = 4 // arguments passed in $a0..$a3
	// numSpill is the per-frame spill area for temporaries live across
	// calls, in slots. Slots are assigned positionally at each call
	// site; expressions never hold more than a handful of temporaries
	// across a call, so six slots keep frames small (which is also what
	// keeps stack footprints friendly to a 4 KB stack cache).
	numSpill = 6
)

// codegen emits assembly for one unit.
type codegen struct {
	unit *Unit
	pt   *pointsTo
	b    strings.Builder

	labelN int

	fn       *Func
	frame    int // frame size in bytes
	savedS   []isa.Register
	spillBot int // fp-relative offset of spill slot 0
	retLabel string

	intFree []isa.Register
	fpFree  []isa.Register
	intLive []isa.Register
	fpLive  []isa.Register

	breakL []string
	contL  []string
}

// val is a value held in a register during expression evaluation.
type val struct {
	reg isa.Register
	fp  bool
}

var intPool = []isa.Register{isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6, isa.T7}

// FP temp pool: $f4..$f11 ($f0 is the conventional return scratch).
var fpPool = []isa.Register{4, 5, 6, 7, 8, 9, 10, 11}

// Callee-saved promotion pool. Beyond the MIPS s-registers, this
// compiler's private convention treats $k0, $k1 and $v1 as callee-saved
// too (nothing else uses them), giving eleven promotable scalars per
// function.
var sRegs = []isa.Register{
	isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7,
	isa.K0, isa.K1, isa.V1,
}

func (g *codegen) emitf(format string, args ...any) {
	fmt.Fprintf(&g.b, "\t"+format+"\n", args...)
}

func (g *codegen) emitLabel(l string) {
	g.b.WriteString(l + ":\n")
}

func (g *codegen) label() string {
	g.labelN++
	return fmt.Sprintf(".L%d", g.labelN)
}

func (g *codegen) errf(line int, format string, args ...any) error {
	return &CompileError{File: g.unit.File, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (g *codegen) allocInt(line int) (val, error) {
	if len(g.intFree) == 0 {
		return val{}, g.errf(line, "expression too complex (out of integer temporaries)")
	}
	r := g.intFree[len(g.intFree)-1]
	g.intFree = g.intFree[:len(g.intFree)-1]
	g.intLive = append(g.intLive, r)
	return val{reg: r}, nil
}

func (g *codegen) allocFP(line int) (val, error) {
	if len(g.fpFree) == 0 {
		return val{}, g.errf(line, "expression too complex (out of fp temporaries)")
	}
	r := g.fpFree[len(g.fpFree)-1]
	g.fpFree = g.fpFree[:len(g.fpFree)-1]
	g.fpLive = append(g.fpLive, r)
	return val{reg: r, fp: true}, nil
}

// free returns a temporary to its pool. Values living in s-registers
// (promoted variables) or other non-pool registers are left alone.
func (g *codegen) free(v val) {
	if v.fp {
		for i, r := range g.fpLive {
			if r == v.reg {
				g.fpLive = append(g.fpLive[:i], g.fpLive[i+1:]...)
				g.fpFree = append(g.fpFree, v.reg)
				return
			}
		}
		return
	}
	for i, r := range g.intLive {
		if r == v.reg {
			g.intLive = append(g.intLive[:i], g.intLive[i+1:]...)
			g.intFree = append(g.intFree, v.reg)
			return
		}
	}
}

// generate emits the whole unit.
func (g *codegen) generate() (string, error) {
	g.layoutGlobals()
	g.emitData()
	g.b.WriteString(".text\n")
	for _, fn := range g.unit.Funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	return g.b.String(), nil
}

// --- global data layout ---

// layoutGlobals assigns data-segment offsets: scalars first (so they all
// land inside the $gp window), then arrays in declaration order.
func (g *codegen) layoutGlobals() {
	off := 0
	for _, s := range g.unit.Globals {
		if s.Type.Kind != TypeArray {
			s.Offset = off
			off += 4
		}
	}
	for _, s := range g.unit.Globals {
		if s.Type.Kind == TypeArray {
			s.Offset = off
			off += s.Type.Size()
		}
	}
}

func (g *codegen) emitData() {
	g.b.WriteString(".data\n")
	emitOne := func(s *Sym) {
		g.emitLabel("g_" + s.Name)
		if s.Type.Kind == TypeArray {
			g.emitf(".space %d", s.Type.Size())
			return
		}
		init := g.unit.GlobalInit[s.Name]
		switch {
		case init == nil && s.Type.Kind == TypeFloat:
			g.emitf(".float 0")
		case init == nil:
			g.emitf(".word 0")
		case s.Type.Kind == TypeFloat:
			g.emitf(".float %g", constFloat(init))
		default:
			g.emitf(".word %d", constInt(init))
		}
	}
	for _, s := range g.unit.Globals {
		if s.Type.Kind != TypeArray {
			emitOne(s)
		}
	}
	for _, s := range g.unit.Globals {
		if s.Type.Kind == TypeArray {
			emitOne(s)
		}
	}
	for i, str := range g.unit.Strings {
		g.emitLabel(fmt.Sprintf("str_%d", i))
		g.emitf(".asciiz %q", str)
	}
}

func constInt(e *Expr) int64 {
	for e.Kind == ExprCast {
		e = e.L
	}
	if e.Kind == ExprFloatLit {
		return int64(e.Fval)
	}
	return e.Ival
}

func constFloat(e *Expr) float64 {
	for e.Kind == ExprCast {
		e = e.L
	}
	if e.Kind == ExprIntLit {
		return float64(e.Ival)
	}
	return e.Fval
}

// gpOffset reports the $gp-relative displacement of a global, and
// whether it fits the signed 16-bit window.
func gpOffset(s *Sym) (int32, bool) {
	off := int64(s.Offset) - 0x8000
	return int32(off), off >= -32768 && off <= 32767
}

// --- function generation ---

// assignFrame lays out the stack frame and promotes register-friendly
// scalars into callee-saved registers. Returns the local-area size.
func (g *codegen) assignFrame(fn *Func) int {
	g.savedS = nil
	next := 0
	promote := func(s *Sym) bool {
		if next >= len(sRegs) || s.IsAddrT || s.Type.Kind == TypeArray ||
			s.Type.Kind == TypeFloat {
			return false
		}
		s.InReg = true
		s.Reg = int(sRegs[next])
		g.savedS = append(g.savedS, sRegs[next])
		next++
		return true
	}
	for _, p := range fn.Params {
		promote(p)
	}
	for _, l := range fn.Locals {
		promote(l)
	}

	// Stack homes. Offsets are fp-relative and negative; the area below
	// -8 - 4*len(savedS) belongs to locals.
	off := -8 - 4*len(g.savedS)
	home := func(s *Sym) {
		off -= s.Type.Size()
		s.Offset = off
	}
	for i, p := range fn.Params {
		if i >= maxRegArgs {
			// Incoming slot above fp; promoted params load from here in
			// the prologue, unpromoted ones use it as their home.
			p.Offset = 4 * (i - maxRegArgs)
			continue
		}
		if !p.InReg {
			home(p)
		}
	}
	for _, l := range fn.Locals {
		if !l.InReg {
			home(l)
		}
	}
	return -off - 8 - 4*len(g.savedS)
}

// maxOutArgs reports the outgoing stack-argument bytes any call in the
// body needs.
func maxOutArgs(fn *Func) int {
	max := 0
	walkStmts(fn.Body, func(e *Expr) {
		if e.Kind == ExprCall && len(e.Args) > maxRegArgs {
			if n := len(e.Args) - maxRegArgs; n > max {
				max = n
			}
		}
	})
	return max * 4
}

func (g *codegen) genFunc(fn *Func) error {
	g.fn = fn
	g.intFree = append(g.intFree[:0], intPool...)
	g.fpFree = append(g.fpFree[:0], fpPool...)
	g.intLive, g.fpLive = g.intLive[:0], g.fpLive[:0]
	g.breakL, g.contL = nil, nil

	localBytes := g.assignFrame(fn)
	outBytes := maxOutArgs(fn)
	spillBytes := numSpill * 4
	frame := 8 + 4*len(g.savedS) + localBytes + spillBytes + outBytes
	frame = (frame + 7) &^ 7
	g.frame = frame
	// Spill slot 0 sits just above the outgoing-args area.
	g.spillBot = -frame + outBytes
	g.retLabel = fmt.Sprintf(".Lret_%s", fn.Name)

	g.b.WriteString("\n")
	g.emitLabel(fn.Name)
	g.emitf("addi $sp, $sp, %d", -frame)
	g.emitf("sw $ra, %d($sp)   ;@stack", frame-4)
	g.emitf("sw $fp, %d($sp)   ;@stack", frame-8)
	g.emitf("addi $fp, $sp, %d", frame)
	for i, s := range g.savedS {
		g.emitf("sw %s, %d($fp)   ;@stack", s, -12-4*i)
	}
	// Park incoming arguments in their homes.
	for i, p := range fn.Params {
		switch {
		case p.InReg && i < maxRegArgs:
			g.emitf("move %s, %s", isa.Register(p.Reg), isa.Register(int(isa.A0)+i))
		case p.InReg:
			g.emitf("lw %s, %d($fp)   ;@stack", isa.Register(p.Reg), p.Offset)
		case i < maxRegArgs:
			g.emitf("sw %s, %d($fp)   ;@stack", isa.Register(int(isa.A0)+i), p.Offset)
			// Stack-passed, stack-homed params live in their incoming slot.
		}
	}

	if err := g.genStmts(fn.Body); err != nil {
		return err
	}

	// Fall-through return (void functions, or C-style missing return).
	g.emitLabel(g.retLabel)
	for i, s := range g.savedS {
		g.emitf("lw %s, %d($fp)   ;@stack", s, -12-4*i)
	}
	g.emitf("lw $ra, -4($fp)   ;@stack")
	g.emitf("lw $t8, -8($fp)   ;@stack")
	g.emitf("move $sp, $fp")
	g.emitf("move $fp, $t8")
	g.emitf("jr $ra")
	return nil
}

// --- statements ---

func (g *codegen) genStmts(ss []*Stmt) error {
	for _, s := range ss {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s *Stmt) error {
	switch s.Kind {
	case StmtDecl:
		if s.Init == nil {
			return nil
		}
		v, err := g.genExpr(s.Init)
		if err != nil {
			return err
		}
		g.storeVar(s.Decl, v, s.Line)
		g.free(v)
		return nil

	case StmtExpr:
		v, err := g.genExpr(s.Expr)
		if err != nil {
			return err
		}
		g.free(v)
		return nil

	case StmtIf:
		elseL, endL := g.label(), g.label()
		if err := g.genBranchFalse(s.Expr, elseL); err != nil {
			return err
		}
		if err := g.genStmts(s.Body); err != nil {
			return err
		}
		if len(s.Else) > 0 {
			g.emitf("b %s", endL)
		}
		g.emitLabel(elseL)
		if len(s.Else) > 0 {
			if err := g.genStmts(s.Else); err != nil {
				return err
			}
			g.emitLabel(endL)
		}
		return nil

	case StmtWhile:
		top, end := g.label(), g.label()
		g.emitLabel(top)
		if err := g.genBranchFalse(s.Expr, end); err != nil {
			return err
		}
		g.breakL = append(g.breakL, end)
		g.contL = append(g.contL, top)
		err := g.genStmts(s.Body)
		g.breakL = g.breakL[:len(g.breakL)-1]
		g.contL = g.contL[:len(g.contL)-1]
		if err != nil {
			return err
		}
		g.emitf("b %s", top)
		g.emitLabel(end)
		return nil

	case StmtFor:
		if s.InitStmt != nil {
			if err := g.genStmt(s.InitStmt); err != nil {
				return err
			}
		}
		top, cont, end := g.label(), g.label(), g.label()
		g.emitLabel(top)
		if s.Expr != nil {
			if err := g.genBranchFalse(s.Expr, end); err != nil {
				return err
			}
		}
		g.breakL = append(g.breakL, end)
		g.contL = append(g.contL, cont)
		err := g.genStmts(s.Body)
		g.breakL = g.breakL[:len(g.breakL)-1]
		g.contL = g.contL[:len(g.contL)-1]
		if err != nil {
			return err
		}
		g.emitLabel(cont)
		if s.Post != nil {
			v, err := g.genExpr(s.Post)
			if err != nil {
				return err
			}
			g.free(v)
		}
		g.emitf("b %s", top)
		g.emitLabel(end)
		return nil

	case StmtReturn:
		if s.Expr != nil {
			v, err := g.genExpr(s.Expr)
			if err != nil {
				return err
			}
			if v.fp {
				g.emitf("mfc1 $v0, $f%d", v.reg)
			} else if v.reg != isa.V0 {
				g.emitf("move $v0, %s", v.reg)
			}
			g.free(v)
		}
		g.emitf("b %s", g.retLabel)
		return nil

	case StmtBreak:
		g.emitf("b %s", g.breakL[len(g.breakL)-1])
		return nil
	case StmtContinue:
		g.emitf("b %s", g.contL[len(g.contL)-1])
		return nil
	case StmtBlock:
		return g.genStmts(s.Body)
	}
	return g.errf(s.Line, "internal: statement kind %d", s.Kind)
}

// genBranchFalse evaluates a condition and branches to label when it is
// zero.
func (g *codegen) genBranchFalse(cond *Expr, label string) error {
	v, err := g.genExpr(cond)
	if err != nil {
		return err
	}
	g.emitf("beqz %s, %s", v.reg, label)
	g.free(v)
	return nil
}

// --- variable access ---

// loadVar produces the value of a scalar variable.
func (g *codegen) loadVar(s *Sym, line int) (val, error) {
	if s.InReg {
		return val{reg: isa.Register(s.Reg)}, nil
	}
	fp := s.Type.Kind == TypeFloat
	var v val
	var err error
	if fp {
		v, err = g.allocFP(line)
	} else {
		v, err = g.allocInt(line)
	}
	if err != nil {
		return val{}, err
	}
	op := "lw"
	dst := v.reg.String()
	if fp {
		op = "l.s"
		dst = fmt.Sprintf("$f%d", v.reg)
	}
	switch s.Stor {
	case StorGlobal:
		if off, ok := gpOffset(s); ok {
			g.emitf("%s %s, %d($gp)   ;@nonstack", op, dst, off)
		} else {
			g.emitf("%s %s, g_%s   ;@nonstack", op, dst, s.Name)
		}
	default:
		g.emitf("%s %s, %d($fp)   ;@stack", op, dst, s.Offset)
	}
	return v, nil
}

// storeVar stores v into a scalar variable (v keeps its register).
func (g *codegen) storeVar(s *Sym, v val, line int) {
	if s.InReg {
		if v.fp {
			g.emitf("cvt.w.s %s, $f%d", isa.Register(s.Reg), v.reg)
		} else if isa.Register(s.Reg) != v.reg {
			g.emitf("move %s, %s", isa.Register(s.Reg), v.reg)
		}
		return
	}
	op, src := "sw", v.reg.String()
	if v.fp {
		op, src = "s.s", fmt.Sprintf("$f%d", v.reg)
	}
	switch s.Stor {
	case StorGlobal:
		if off, ok := gpOffset(s); ok {
			g.emitf("%s %s, %d($gp)   ;@nonstack", op, src, off)
		} else {
			g.emitf("%s %s, g_%s   ;@nonstack", op, src, s.Name)
		}
	default:
		g.emitf("%s %s, %d($fp)   ;@stack", op, src, s.Offset)
	}
}

// genAddr computes the address of an lvalue (or array/global base) as a
// base register plus a constant displacement — the form every RISA load
// and store consumes directly — and reports the Figure 6 hint for
// accesses through it. Constant array indices fold into the
// displacement (the strength reduction any optimizing compiler
// performs), and stack/global bases come back as $fp/$gp so the
// addressing mode manifests the region, exactly as compiled SPEC code
// does.
func (g *codegen) genAddr(e *Expr) (val, int32, string, error) {
	switch e.Kind {
	case ExprIdent:
		s := e.Sym
		switch s.Stor {
		case StorGlobal:
			if off, ok := gpOffset(s); ok {
				return val{reg: isa.GP}, off, "nonstack", nil
			}
			v, err := g.allocInt(e.Line)
			if err != nil {
				return val{}, 0, "", err
			}
			g.emitf("la %s, g_%s", v.reg, s.Name)
			return v, 0, "nonstack", nil
		default:
			return val{reg: isa.FP}, int32(s.Offset), "stack", nil
		}

	case ExprUnary:
		if e.Op != "*" {
			break
		}
		hint := hintOf(g.pt.addrClass(e.L))
		v, err := g.genExpr(e.L)
		if err != nil {
			return val{}, 0, "", err
		}
		return v, 0, hint, nil

	case ExprIndex:
		var base val
		var disp int32
		var hint string
		var err error
		if e.L.Kind == ExprIdent && e.L.Sym.Type.Kind == TypeArray {
			base, disp, hint, err = g.genAddr(e.L)
		} else {
			hint = hintOf(g.pt.addrClass(e.L))
			base, err = g.genExpr(e.L)
		}
		if err != nil {
			return val{}, 0, "", err
		}
		if e.R.Kind == ExprIntLit {
			nd := int64(disp) + 4*e.R.Ival
			if nd >= -32000 && nd <= 32000 {
				return base, int32(nd), hint, nil
			}
		}
		idx, err := g.genExpr(e.R)
		if err != nil {
			return val{}, 0, "", err
		}
		// The scale-and-add below mutates idx in place, so it must not
		// alias a promoted variable's home register.
		idx, err = g.ownInt(idx, e.Line)
		if err != nil {
			return val{}, 0, "", err
		}
		g.emitf("slli %s, %s, 2", idx.reg, idx.reg)
		g.emitf("add %s, %s, %s", idx.reg, base.reg, idx.reg)
		g.free(base)
		return idx, disp, hint, nil

	case ExprCast:
		return g.genAddr(e.L)
	}
	return val{}, 0, "", g.errf(e.Line, "internal: genAddr on expression kind %d", e.Kind)
}

// materialize turns a (base, displacement) address into a plain value
// register, for address-of expressions and array decay.
func (g *codegen) materialize(base val, disp int32, line int) (val, error) {
	if disp == 0 && g.owned(base) {
		return base, nil
	}
	v, err := g.allocInt(line)
	if err != nil {
		return val{}, err
	}
	g.emitf("addi %s, %s, %d", v.reg, base.reg, disp)
	g.free(base)
	return v, nil
}
