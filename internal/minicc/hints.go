package minicc

// Region-hint analysis: a faithful implementation of the paper's
// Figure 6 classify_mem algorithm. For every pointer variable we compute
// a flow-insensitive points-to class over all assignments reaching it
// (its UD-chain, collapsed):
//
//	if is_local_var  -> stack
//	if is_static_var -> non-stack
//	pointer deref: join over defs; function parameters and unanalyzable
//	defs are unknown; mixing stack and non-stack defs is unknown.
//
// The codegen consults these classes when emitting loads and stores and
// attaches the resulting stack/nonstack/unknown hint to each memory
// instruction.

// ptClass is the points-to lattice: bottom < {stack, nonstack} < unknown.
type ptClass uint8

const (
	ptBottom ptClass = iota
	ptStack
	ptNonStack
	ptUnknown
)

func (a ptClass) join(b ptClass) ptClass {
	if a == ptBottom {
		return b
	}
	if b == ptBottom {
		return a
	}
	if a == b {
		return a
	}
	return ptUnknown
}

func (c ptClass) String() string {
	switch c {
	case ptBottom:
		return "bottom"
	case ptStack:
		return "stack"
	case ptNonStack:
		return "nonstack"
	}
	return "unknown"
}

// pointsTo holds the per-variable points-to classes for a unit.
type pointsTo struct {
	class map[*Sym]ptClass
}

// analyzePointers runs the fixpoint. Pointer-typed parameters are
// unknown by definition (Figure 6's is_function_param case); pointer
// globals and locals take the join of their assigned values.
func analyzePointers(u *Unit) *pointsTo {
	pt := &pointsTo{class: make(map[*Sym]ptClass)}

	// Seed: parameters are unknown.
	for _, fn := range u.Funcs {
		for _, p := range fn.Params {
			if p.Type.Kind == TypePtr {
				pt.class[p] = ptUnknown
			}
		}
	}

	// Iterate to a fixpoint; the lattice has height 2 so this is quick.
	for {
		changed := false
		for _, fn := range u.Funcs {
			walkStmts(fn.Body, func(e *Expr) {
				if e.Kind != ExprAssign {
					return
				}
				l := e.L
				if l.Kind != ExprIdent || l.Sym.Type.Kind != TypePtr {
					return
				}
				if pt.class[l.Sym] == ptUnknown {
					return // already at top
				}
				cls := pt.valueClass(e.R)
				nc := pt.class[l.Sym].join(cls)
				if nc != pt.class[l.Sym] {
					pt.class[l.Sym] = nc
					changed = true
				}
			})
			// Declaration initializers are assignments too.
			walkDecls(fn.Body, func(s *Stmt) {
				if s.Decl.Type.Kind != TypePtr || s.Init == nil {
					return
				}
				if pt.class[s.Decl] == ptUnknown {
					return
				}
				cls := pt.valueClass(s.Init)
				nc := pt.class[s.Decl].join(cls)
				if nc != pt.class[s.Decl] {
					pt.class[s.Decl] = nc
					changed = true
				}
			})
		}
		if !changed {
			return pt
		}
	}
}

// valueClass classifies the region a pointer-valued expression can
// point to.
func (pt *pointsTo) valueClass(e *Expr) ptClass {
	switch e.Kind {
	case ExprCall:
		if e.Callee == "malloc" {
			return ptNonStack // heap
		}
		return ptUnknown // other calls are not analyzed (Fig. 6 has none)
	case ExprCast:
		return pt.valueClass(e.L)
	case ExprIdent:
		switch e.Sym.Type.Kind {
		case TypeArray:
			return storageClass(e.Sym)
		case TypePtr:
			return pt.class[e.Sym]
		}
		return ptUnknown
	case ExprUnary:
		if e.Op == "&" {
			return addrOfClass(e.L)
		}
		if e.Op == "*" {
			return ptUnknown // pointer loaded from memory: not tracked
		}
		return ptUnknown
	case ExprBinary:
		// Pointer arithmetic preserves the region.
		lc, rc := pt.valueClass(e.L), pt.valueClass(e.R)
		if isPtrType(e.L.Type) {
			return lc
		}
		if isPtrType(e.R.Type) {
			return rc
		}
		return ptUnknown
	case ExprIntLit:
		return ptBottom // NULL constrains nothing
	case ExprIndex:
		return ptUnknown // pointer value loaded from an array
	case ExprStrLit:
		return ptNonStack
	}
	return ptUnknown
}

func isPtrType(t *Type) bool {
	return t != nil && (t.Kind == TypePtr || t.Kind == TypeArray)
}

// addrOfClass classifies &lvalue by the storage of the object.
func addrOfClass(l *Expr) ptClass {
	switch l.Kind {
	case ExprIdent:
		return storageClass(l.Sym)
	case ExprIndex:
		if l.L.Kind == ExprIdent {
			switch l.L.Sym.Type.Kind {
			case TypeArray:
				return storageClass(l.L.Sym)
			case TypePtr:
				return ptUnknown // class of the pointer, resolved at use
			}
		}
		return ptUnknown
	case ExprUnary:
		if l.Op == "*" {
			return ptUnknown
		}
	}
	return ptUnknown
}

// storageClass maps a variable's storage to a points-to class.
func storageClass(s *Sym) ptClass {
	switch s.Stor {
	case StorGlobal:
		return ptNonStack
	case StorLocal, StorParam:
		return ptStack
	}
	return ptUnknown
}

// addrClass classifies the address computed by an address expression at
// a memory access site, using the points-to classes. This is what the
// codegen consults for deref and index accesses.
func (pt *pointsTo) addrClass(e *Expr) ptClass {
	switch e.Kind {
	case ExprIdent:
		switch e.Sym.Type.Kind {
		case TypeArray:
			return storageClass(e.Sym)
		case TypePtr:
			c := pt.class[e.Sym]
			if c == ptBottom {
				return ptUnknown
			}
			return c
		}
		return ptUnknown
	case ExprCast:
		return pt.addrClass(e.L)
	case ExprCall:
		if e.Callee == "malloc" {
			return ptNonStack
		}
		return ptUnknown
	case ExprUnary:
		if e.Op == "&" {
			return addrOfClass(e.L)
		}
		return ptUnknown
	case ExprBinary:
		if isPtrType(e.L.Type) {
			return pt.addrClass(e.L)
		}
		if isPtrType(e.R.Type) {
			return pt.addrClass(e.R)
		}
		return ptUnknown
	case ExprStrLit:
		return ptNonStack
	case ExprAssign:
		return pt.addrClass(e.R)
	}
	return ptUnknown
}

// hintOf renders a points-to class as the assembler hint tag.
func hintOf(c ptClass) string {
	switch c {
	case ptStack:
		return "stack"
	case ptNonStack:
		return "nonstack"
	}
	return "unknown"
}

// walkStmts applies f to every expression in the statement tree.
func walkStmts(ss []*Stmt, f func(*Expr)) {
	for _, s := range ss {
		if s == nil {
			continue
		}
		for _, e := range []*Expr{s.Init, s.Expr, s.Post} {
			if e != nil {
				walkExpr(e, f)
			}
		}
		if s.InitStmt != nil {
			walkStmts([]*Stmt{s.InitStmt}, f)
		}
		walkStmts(s.Body, f)
		walkStmts(s.Else, f)
	}
}

// walkDecls applies f to every declaration statement in the tree.
func walkDecls(ss []*Stmt, f func(*Stmt)) {
	for _, s := range ss {
		if s == nil {
			continue
		}
		if s.Kind == StmtDecl {
			f(s)
		}
		if s.InitStmt != nil {
			walkDecls([]*Stmt{s.InitStmt}, f)
		}
		walkDecls(s.Body, f)
		walkDecls(s.Else, f)
	}
}

// walkExpr applies f to e and all subexpressions.
func walkExpr(e *Expr, f func(*Expr)) {
	if e == nil {
		return
	}
	f(e)
	walkExpr(e.L, f)
	walkExpr(e.R, f)
	for _, a := range e.Args {
		walkExpr(a, f)
	}
}
