package minicc

import (
	"strings"
	"testing"
)

// Regression: the checker used to type global initializers by ranging
// over the GlobalInit map, so when several initializers were invalid,
// which error the compiler reported depended on map iteration order.
// Errors must follow declaration order: the first bad global wins,
// every run.
func TestGlobalInitErrorOrderDeterministic(t *testing.T) {
	src := "int* p = 5;\nint* q = 7;\nint main() { return 0; }\n"
	for i := 0; i < 100; i++ {
		_, err := Compile("order.c", src)
		if err == nil {
			t.Fatal("globals with bad initializers compiled")
		}
		if !strings.Contains(err.Error(), "order.c:1:") {
			t.Fatalf("run %d: error %q does not point at the first bad global on line 1", i, err)
		}
	}
}

// Regression companion: valid initializers must keep compiling whatever
// order the checker visits them in.
func TestGlobalInitOrderStillCompiles(t *testing.T) {
	src := "int a = 1;\nfloat b = 2.5;\nint main() { return a; }\n"
	if _, err := Compile("ok.c", src); err != nil {
		t.Fatalf("valid globals failed: %v", err)
	}
}
