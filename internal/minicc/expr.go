package minicc

// Expression parsing: standard C precedence via precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true,
	"%=": true, "&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

// parseExpr parses a full expression (assignment level).
func (p *parser) parseExpr() (*Expr, error) { return p.parseAssign() }

func (p *parser) parseAssign() (*Expr, error) {
	lhs, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct && assignOps[t.text] {
		p.advance()
		rhs, err := p.parseAssign() // right associative
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprAssign, Op: t.text, L: lhs, R: rhs, Line: t.line}, nil
	}
	return lhs, nil
}

func (p *parser) parseBinary(minPrec int) (*Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Expr{Kind: ExprBinary, Op: t.text, L: lhs, R: rhs, Line: t.line}
	}
}

func (p *parser) parseUnary() (*Expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~", "*", "&":
			p.advance()
			operand, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprUnary, Op: t.text, L: operand, Line: t.line}, nil
		case "++", "--":
			// Prefix increment: sugar for x += 1; value is the new value.
			p.advance()
			operand, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			op := "+="
			if t.text == "--" {
				op = "-="
			}
			one := &Expr{Kind: ExprIntLit, Ival: 1, Line: t.line}
			return &Expr{Kind: ExprAssign, Op: op, L: operand, R: one, Line: t.line}, nil
		case "(":
			// Cast or parenthesized expression.
			if p.peek().kind == tokKeyword &&
				(p.peek().text == "int" || p.peek().text == "float" || p.peek().text == "void") {
				p.advance() // '('
				ty, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				operand, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &Expr{Kind: ExprCast, CastTo: ty, L: operand, Line: t.line}, nil
			}
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (*Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.accept("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Expr{Kind: ExprIndex, L: e, R: idx, Line: t.line}
		case p.isPunct("++") || p.isPunct("--"):
			// Postfix increment: same sugar as prefix (documented
			// divergence: the value is the updated value).
			p.advance()
			op := "+="
			if t.text == "--" {
				op = "-="
			}
			one := &Expr{Kind: ExprIntLit, Ival: 1, Line: t.line}
			e = &Expr{Kind: ExprAssign, Op: op, L: e, R: one, Line: t.line}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (*Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokIntLit, tokCharLit:
		p.advance()
		return &Expr{Kind: ExprIntLit, Ival: t.ival, Line: t.line}, nil
	case tokFloatLit:
		p.advance()
		return &Expr{Kind: ExprFloatLit, Fval: t.fval, Line: t.line}, nil
	case tokStrLit:
		p.advance()
		return &Expr{Kind: ExprStrLit, Str: t.str, Line: t.line}, nil
	case tokKeyword:
		if t.text == "sizeof" {
			p.advance()
			if err := p.expect("("); err != nil {
				return nil, err
			}
			ty, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprIntLit, Ival: int64(ty.Size()), Line: t.line}, nil
		}
	case tokIdent:
		p.advance()
		if p.accept("(") {
			call := &Expr{Kind: ExprCall, Callee: t.text, Line: t.line}
			if !p.accept(")") {
				for {
					arg, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		sym := p.lookup(t.text)
		if sym == nil {
			return nil, p.errf(t, "undeclared identifier %q", t.text)
		}
		return &Expr{Kind: ExprIdent, Sym: sym, Line: t.line}, nil
	}
	if p.accept("(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf(t, "unexpected token %q in expression", t.String())
}
