package decouple

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/minicc"
	"repro/internal/profile"
)

const src = `
int g[128];
int acc;
int mix(int *v, int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) s += v[i];
	return s;
}
int main() {
	int a[128];
	int *h = malloc(128 * sizeof(int));
	int it;
	for (it = 0; it < 300; it++) {
		int i;
		for (i = 0; i < 128; i++) { g[i] = i; a[i] = i; h[i] = i; }
		acc += mix(g, 128) + mix(a, 128) + mix(h, 128);
	}
	return acc & 255;
}`

func TestPolicyNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range AllPolicies {
		n := p.String()
		if n == "" || seen[n] {
			t.Errorf("policy name %q empty or duplicated", n)
		}
		seen[n] = true
	}
}

func TestClassifierConstruction(t *testing.T) {
	p, err := minicc.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := profile.Run(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range AllPolicies {
		cls, err := Classifier(pol, p, pr)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if pol == PolicyPerfect {
			if cls != nil {
				t.Error("perfect policy should have no classifier")
			}
			continue
		}
		if pol == PolicyStaticOnly {
			if cls.Table != nil {
				t.Error("static-only policy should have no table")
			}
			continue
		}
		if cls.Table == nil {
			t.Errorf("%v: missing ARPT", pol)
		}
		wantHints := pol == PolicyCompiler || pol == PolicyOracle
		if (cls.Hints != nil) != wantHints {
			t.Errorf("%v: hints presence = %v", pol, cls.Hints != nil)
		}
	}
	if _, err := Classifier(PolicyOracle, p, nil); err == nil {
		t.Error("oracle policy without a profile should fail")
	}
}

func TestComparePolicies(t *testing.T) {
	p, err := minicc.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := profile.Run(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	results, err := ComparePolicies(p, pr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(AllPolicies) {
		t.Fatalf("got %d results", len(results))
	}
	byPolicy := map[Policy]PolicyResult{}
	for _, r := range results {
		byPolicy[r.Policy] = r
		if r.Cycles == 0 || r.IPC <= 0 {
			t.Errorf("%v: degenerate result %+v", r.Policy, r)
		}
	}
	// Perfect steering never mispredicts and is at least as fast as
	// static-only steering (which sends the mixed helper's stack work
	// through the wrong pipeline).
	if byPolicy[PolicyPerfect].Mispredicts != 0 {
		t.Errorf("perfect steering mispredicted %d times", byPolicy[PolicyPerfect].Mispredicts)
	}
	if byPolicy[PolicyPerfect].Accuracy != 100 {
		t.Errorf("perfect accuracy = %.2f", byPolicy[PolicyPerfect].Accuracy)
	}
	if byPolicy[PolicyPerfect].Cycles > byPolicy[PolicyStaticOnly].Cycles+byPolicy[PolicyStaticOnly].Cycles/50 {
		t.Errorf("perfect (%d cycles) slower than static-only (%d)",
			byPolicy[PolicyPerfect].Cycles, byPolicy[PolicyStaticOnly].Cycles)
	}
	// The ARPT must land close to perfect — that is the paper's thesis.
	gap := float64(byPolicy[PolicyARPT].Cycles) / float64(byPolicy[PolicyPerfect].Cycles)
	if gap > 1.05 {
		t.Errorf("ARPT steering %.3fx slower than perfect", gap)
	}
}

func TestCompareFastForward(t *testing.T) {
	p, err := minicc.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cpu.BuildTrace(p, cpu.TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := CompareFastForward(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	with, without := results[0], results[1]
	if !with.FastForward || without.FastForward {
		t.Fatal("result order")
	}
	if without.FastForwards != 0 {
		t.Errorf("fast forwards counted while disabled: %d", without.FastForwards)
	}
	if with.Cycles > without.Cycles {
		t.Errorf("fast forwarding slowed the machine: %d vs %d", with.Cycles, without.Cycles)
	}
}
