package decouple

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/workload"
)

func TestRecoveryProtocolOrder(t *testing.T) {
	r := NewRecovery()
	if err := r.Detect(5); err != nil {
		t.Fatalf("Detect: %v", err)
	}
	if err := r.Cancel(5); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if err := r.Replay(5, 3); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !r.Complete() {
		t.Fatalf("Complete = false after full sequence")
	}
	if r.Detects != 1 || r.Cancels != 1 || r.Replays != 1 {
		t.Fatalf("counters = %d/%d/%d, want 1/1/1", r.Detects, r.Cancels, r.Replays)
	}
	if r.TotalPen != 3 || r.MaxPen != 3 {
		t.Fatalf("penalty accounting = total %d max %d, want 3/3", r.TotalPen, r.MaxPen)
	}
}

func TestRecoveryProtocolViolations(t *testing.T) {
	cases := []struct {
		name string
		run  func(r *Recovery) error
	}{
		{"cancel without detect", func(r *Recovery) error { return r.Cancel(1) }},
		{"replay without cancel", func(r *Recovery) error {
			if err := r.Detect(1); err != nil {
				return err
			}
			return r.Replay(1, 2)
		}},
		{"double detect", func(r *Recovery) error {
			if err := r.Detect(1); err != nil {
				return err
			}
			return r.Detect(1)
		}},
		{"double replay", func(r *Recovery) error {
			if err := r.Detect(1); err != nil {
				return err
			}
			if err := r.Cancel(1); err != nil {
				return err
			}
			if err := r.Replay(1, 0); err != nil {
				return err
			}
			return r.Replay(1, 0)
		}},
		{"negative penalty", func(r *Recovery) error {
			if err := r.Detect(1); err != nil {
				return err
			}
			if err := r.Cancel(1); err != nil {
				return err
			}
			return r.Replay(1, -1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRecovery()
			if err := tc.run(r); err == nil {
				t.Fatalf("protocol violation not rejected")
			}
		})
	}
}

func TestRecoveryOutstanding(t *testing.T) {
	r := NewRecovery()
	if err := r.Detect(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Detect(2); err != nil {
		t.Fatal(err)
	}
	if err := r.Cancel(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Replay(1, 4); err != nil {
		t.Fatal(err)
	}
	if got := r.Outstanding(); got != 1 {
		t.Fatalf("Outstanding = %d, want 1", got)
	}
	if r.Complete() {
		t.Fatalf("Complete = true with a recovery outstanding")
	}
}

// TestSimulationDrivesRecovery runs a real workload through the
// decoupled machine with the state machine attached: the simulator must
// complete every recovery, and completed recoveries must equal the
// misprediction count it reports.
func TestSimulationDrivesRecovery(t *testing.T) {
	w, ok := workload.ByName("go")
	if !ok {
		t.Fatal("workload go not found")
	}
	p, err := w.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cpu.BuildTrace(p, cpu.TraceOptions{MaxInsts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecovery()
	sim, err := cpu.New(cpu.Decoupled(3, 3), cpu.WithRecovery(rec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Complete() {
		t.Fatalf("%d recoveries incomplete after simulation", rec.Outstanding())
	}
	if rec.Replays != res.ARPTMispredicts {
		t.Fatalf("replays %d != reported mispredicts %d", rec.Replays, res.ARPTMispredicts)
	}
	if res.Recoveries != res.ARPTMispredicts {
		t.Fatalf("Result.Recoveries %d != ARPTMispredicts %d", res.Recoveries, res.ARPTMispredicts)
	}
	if res.ARPTMispredicts == 0 {
		t.Fatalf("expected the ARPT to mispredict at least once on 099.go")
	}
}

func TestRecoveryStateString(t *testing.T) {
	for st, want := range map[recoveryState]string{
		recIdle: "idle", recDetected: "detected",
		recCancelled: "cancelled", recReplayed: "replayed",
	} {
		if got := st.String(); got != want {
			t.Fatalf("state %d String = %q, want %q", st, got, want)
		}
	}
	if !strings.HasPrefix(recoveryState(9).String(), "recoveryState(") {
		t.Fatalf("unknown state String = %q", recoveryState(9).String())
	}
}
