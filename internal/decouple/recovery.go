package decouple

import (
	"fmt"

	"repro/internal/cpu"
)

// recoveryState is the per-instruction position in the misprediction
// recovery protocol.
type recoveryState uint8

const (
	recIdle recoveryState = iota // never mispredicted
	recDetected
	recCancelled
	recReplayed
)

func (s recoveryState) String() string {
	switch s {
	case recIdle:
		return "idle"
	case recDetected:
		return "detected"
	case recCancelled:
		return "cancelled"
	case recReplayed:
		return "replayed"
	}
	return fmt.Sprintf("recoveryState(%d)", uint8(s))
}

// Recovery is the explicit ARPT misprediction-recovery state machine:
// each mispredicted instruction must move detect → cancel → replay, in
// that order, exactly once. It implements cpu.RecoveryObserver, so
// attaching it to a simulation (cpu.WithRecovery) turns any protocol
// violation — a cancel without a detect, a double replay, a skipped
// cancel — into a hard simulation error instead of a silently
// mis-modelled penalty. After the run, Complete reports whether every
// detected recovery finished.
type Recovery struct {
	states map[int64]recoveryState

	Detects  uint64
	Cancels  uint64
	Replays  uint64
	MaxPen   int // largest replay penalty seen, cycles
	TotalPen uint64
}

var _ cpu.RecoveryObserver = (*Recovery)(nil)

// NewRecovery builds an empty state machine.
func NewRecovery() *Recovery {
	return &Recovery{states: make(map[int64]recoveryState)}
}

func (r *Recovery) transition(seq int64, from, to recoveryState) error {
	if got := r.states[seq]; got != from {
		return fmt.Errorf("decouple: recovery protocol violated for seq %d: %s while %s (want %s)",
			seq, to, got, from)
	}
	r.states[seq] = to
	return nil
}

// Detect witnesses the address-translation stage flagging a wrong-queue
// dispatch.
func (r *Recovery) Detect(seq int64) error {
	if err := r.transition(seq, recIdle, recDetected); err != nil {
		return err
	}
	r.Detects++
	return nil
}

// Cancel witnesses the entry leaving its mispredicted queue.
func (r *Recovery) Cancel(seq int64) error {
	if err := r.transition(seq, recDetected, recCancelled); err != nil {
		return err
	}
	r.Cancels++
	return nil
}

// Replay witnesses the entry re-entering the correct queue with its
// recovery penalty applied.
func (r *Recovery) Replay(seq int64, penalty int) error {
	if penalty < 0 {
		return fmt.Errorf("decouple: negative recovery penalty %d for seq %d", penalty, seq)
	}
	if err := r.transition(seq, recCancelled, recReplayed); err != nil {
		return err
	}
	r.Replays++
	r.TotalPen += uint64(penalty)
	if penalty > r.MaxPen {
		r.MaxPen = penalty
	}
	return nil
}

// Outstanding reports how many detected recoveries have not replayed.
func (r *Recovery) Outstanding() int {
	n := 0
	for _, st := range r.states {
		if st != recReplayed {
			n++
		}
	}
	return n
}

// Complete reports whether every detected recovery ran the full
// detect → cancel → replay sequence.
func (r *Recovery) Complete() bool {
	return r.Outstanding() == 0 && r.Detects == r.Cancels && r.Cancels == r.Replays
}
