// Package decouple models the data-decoupling design space of §4: how
// memory instructions are steered into the LSQ or LVAQ, and which
// mechanisms (fast forwarding, recovery policy) the dual memory
// pipeline enables. It builds the steering classifiers used by the
// timing simulator and provides the ablation drivers comparing steering
// policies — the paper's hardware ARPT against compiler-informed,
// profile-oracle, and perfect steering.
package decouple

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/profile"
	"repro/internal/prog"
)

// Policy selects how dispatch decides stack vs non-stack.
type Policy int

// Steering policies.
const (
	// PolicyARPT is the paper's hardware mechanism: addressing-mode
	// rules plus the 32K-entry hybrid-context ARPT (§4.2-4.3). Runs
	// existing binaries unmodified.
	PolicyARPT Policy = iota
	// PolicyCompiler adds the MiniC Figure 6 static hints in front of
	// the ARPT (tagged instructions bypass the table).
	PolicyCompiler
	// PolicyOracle adds the §3.5.2 profile-based hints (the paper's
	// idealized compiler information).
	PolicyOracle
	// PolicyStaticOnly uses only the addressing-mode rules; uncovered
	// references default to non-stack (no table at all).
	PolicyStaticOnly
	// PolicyPerfect steers every reference to its true region — the
	// contamination-free upper bound.
	PolicyPerfect
)

var policyNames = map[Policy]string{
	PolicyARPT:       "arpt",
	PolicyCompiler:   "arpt+compiler",
	PolicyOracle:     "arpt+oracle",
	PolicyStaticOnly: "static-only",
	PolicyPerfect:    "perfect",
}

func (p Policy) String() string {
	if n, ok := policyNames[p]; ok {
		return n
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// AllPolicies lists the steering policies in ablation order.
var AllPolicies = []Policy{
	PolicyStaticOnly, PolicyARPT, PolicyCompiler, PolicyOracle, PolicyPerfect,
}

// Classifier builds the core classifier implementing a policy for
// program p. PolicyOracle requires a profile pr (it is ignored
// otherwise); PolicyPerfect returns nil: callers enable perfect
// steering in the trace options instead.
func Classifier(policy Policy, p *prog.Program, pr *profile.Profile) (*core.Classifier, error) {
	switch policy {
	case PolicyARPT, PolicyCompiler, PolicyOracle:
		table, err := core.NewARPT(core.DefaultPipelineConfig())
		if err != nil {
			return nil, err
		}
		opts := []core.ClassifierOption{core.WithTable(table)}
		if policy == PolicyCompiler {
			opts = append(opts, core.WithHints(p.HintAt))
		}
		if policy == PolicyOracle {
			if pr == nil {
				return nil, fmt.Errorf("decouple: oracle policy requires a profile")
			}
			opts = append(opts, core.WithHints(pr.Oracle()))
		}
		return core.NewClassifier(core.ClassifierConfig{Scheme: core.Scheme1BitHybrid}, opts...)
	case PolicyStaticOnly:
		return core.NewClassifier(core.ClassifierConfig{Scheme: core.SchemeStatic})
	case PolicyPerfect:
		return nil, nil
	}
	return nil, fmt.Errorf("decouple: unknown policy %v", policy)
}

// TraceOptions renders a policy into cpu trace options.
func TraceOptions(policy Policy, p *prog.Program, pr *profile.Profile) (cpu.TraceOptions, error) {
	if policy == PolicyPerfect {
		return cpu.TraceOptions{PerfectSteering: true}, nil
	}
	cls, err := Classifier(policy, p, pr)
	if err != nil {
		return cpu.TraceOptions{}, err
	}
	return cpu.TraceOptions{Classifier: cls}, nil
}

// PolicyResult is one cell of the steering-policy ablation.
type PolicyResult struct {
	Policy      Policy
	Cycles      uint64
	IPC         float64
	Mispredicts uint64
	Accuracy    float64 // steering accuracy over the trace, percent
}

// ComparePolicies runs program p through the (3+3) configuration under
// every steering policy and reports the results. maxInsts truncates the
// trace when positive. It rebuilds every policy trace from scratch;
// callers that already hold the default-steering trace should use
// ComparePoliciesReusing.
func ComparePolicies(p *prog.Program, pr *profile.Profile, maxInsts uint64) ([]PolicyResult, error) {
	return ComparePoliciesReusing(p, pr, maxInsts, nil)
}

// ComparePoliciesReusing is ComparePolicies with an optional pre-built
// PolicyARPT trace. The default cpu.BuildTrace options (nil classifier)
// produce exactly the PolicyARPT steering, so a caller holding that
// trace — e.g. the experiment Runner's memo — passes it as arpt and
// saves one full functional re-execution; the trace must have been
// built with the same maxInsts. A nil arpt rebuilds every policy.
func ComparePoliciesReusing(p *prog.Program, pr *profile.Profile, maxInsts uint64, arpt *cpu.Trace) ([]PolicyResult, error) {
	var out []PolicyResult
	cfg := cpu.Decoupled(3, 3)
	for _, pol := range AllPolicies {
		tr := arpt
		if pol != PolicyARPT || tr == nil {
			opts, err := TraceOptions(pol, p, pr)
			if err != nil {
				return nil, err
			}
			opts.MaxInsts = maxInsts
			tr, err = cpu.BuildTrace(p, opts)
			if err != nil {
				return nil, err
			}
		}
		rec := NewRecovery()
		sim, err := cpu.New(cfg, cpu.WithRecovery(rec))
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(tr)
		if err != nil {
			return nil, err
		}
		if !rec.Complete() {
			return nil, fmt.Errorf("decouple: %s/%s: %d recoveries left incomplete",
				tr.Name, pol, rec.Outstanding())
		}
		out = append(out, PolicyResult{
			Policy:      pol,
			Cycles:      res.Cycles,
			IPC:         res.IPC(),
			Mispredicts: res.ARPTMispredicts,
			Accuracy:    tr.PredictorStats.Accuracy(),
		})
	}
	return out, nil
}

// FastForwardResult is one cell of the fast-forwarding ablation.
type FastForwardResult struct {
	FastForward  bool
	Cycles       uint64
	IPC          float64
	FastForwards uint64
}

// CompareFastForward runs one trace through (3+3) with and without the
// LVAQ's offset-based fast forwarding (§4.2's "more specialized
// handling of each partitioned stream").
func CompareFastForward(tr *cpu.Trace) ([]FastForwardResult, error) {
	var out []FastForwardResult
	for _, ff := range []bool{true, false} {
		cfg := cpu.Decoupled(3, 3)
		cfg.FastForward = ff
		res, err := cpu.Simulate(tr, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, FastForwardResult{
			FastForward:  ff,
			Cycles:       res.Cycles,
			IPC:          res.IPC(),
			FastForwards: res.FastForwards,
		})
	}
	return out, nil
}
