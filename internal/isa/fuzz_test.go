package isa

import "testing"

// FuzzDecode checks that Decode never panics and that every decodable
// word round-trips at the instruction level: re-encoding a decoded
// instruction and decoding again must reproduce it. (Word-level
// round-tripping does not hold: I-format words carry don't-care bits
// in the rt field that Decode ignores and Encode zeroes.)
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	for _, in := range []Inst{
		{Op: OpADDI, Rd: T0, Rs: T1, Imm: -32768},
		{Op: OpReg, Rd: V0, Rs: T0, Rt: T1, Funct: FnSLTU},
		{Op: OpJ, Imm: 0x03FFFFFF},
		{Op: OpLW, Rd: T2, Rs: SP, Imm: 32767},
	} {
		w, err := Encode(in)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(w)
		if err != nil {
			return // undecodable words just need to not panic
		}
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded inst %v does not re-encode: %v", in, err)
		}
		in2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded word %#08x does not decode: %v", w2, err)
		}
		if in2 != in {
			t.Fatalf("round trip changed the instruction:\n  %#08x -> %v\n  %#08x -> %v",
				w, in, w2, in2)
		}
	})
}
