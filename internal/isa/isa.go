// Package isa defines RISA, the 32-bit RISC instruction set used by every
// component of this reproduction: the MiniC compiler targets it, the
// assembler encodes it, the functional simulator executes it, and the
// timing simulator models it.
//
// RISA is deliberately close to SimpleScalar's PISA / MIPS: 32 general
// registers with the MIPS software conventions ($gp, $sp, $fp, $ra), 32
// float32 registers, fixed 32-bit encodings, and base+displacement
// addressing for every load and store. The paper's static access-region
// heuristics key on exactly this addressing-mode information (base
// register is $sp/$fp -> stack, $gp -> non-stack, r0 -> constant address),
// so the ISA exposes it via BaseReg and friends.
package isa

import "fmt"

// Register names the 32 general-purpose registers. r0 is hard-wired to
// zero. The software conventions mirror MIPS o32, which is what the
// paper's heuristics assume.
type Register uint8

// General-purpose register conventions.
const (
	Zero Register = 0 // hard-wired zero
	AT   Register = 1 // assembler temporary
	V0   Register = 2 // function result
	V1   Register = 3 // function result (second word)
	A0   Register = 4 // argument 0
	A1   Register = 5 // argument 1
	A2   Register = 6 // argument 2
	A3   Register = 7 // argument 3
	T0   Register = 8 // caller-saved temporaries T0..T7
	T1   Register = 9
	T2   Register = 10
	T3   Register = 11
	T4   Register = 12
	T5   Register = 13
	T6   Register = 14
	T7   Register = 15
	S0   Register = 16 // callee-saved S0..S7
	S1   Register = 17
	S2   Register = 18
	S3   Register = 19
	S4   Register = 20
	S5   Register = 21
	S6   Register = 22
	S7   Register = 23
	T8   Register = 24
	T9   Register = 25
	K0   Register = 26
	K1   Register = 27
	GP   Register = 28 // global pointer: anchors the static data segment
	SP   Register = 29 // stack pointer
	FP   Register = 30 // frame pointer
	RA   Register = 31 // return address (link register; the paper's CID)
)

// NumRegs is the number of general-purpose (and of floating-point)
// registers.
const NumRegs = 32

var regNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the conventional register name, e.g. "$sp".
func (r Register) String() string {
	if int(r) < len(regNames) {
		return "$" + regNames[r]
	}
	return fmt.Sprintf("$r%d", uint8(r))
}

// RegByName resolves a register name ("sp", "$sp", "r29", "$29") to its
// number. It reports ok=false for unknown names.
func RegByName(name string) (Register, bool) {
	if len(name) > 0 && name[0] == '$' {
		name = name[1:]
	}
	for i, n := range regNames {
		if n == name {
			return Register(i), true
		}
	}
	// rNN or bare NN
	if len(name) > 0 {
		s := name
		if s[0] == 'r' {
			s = s[1:]
		}
		v := 0
		for _, c := range s {
			if c < '0' || c > '9' {
				return 0, false
			}
			v = v*10 + int(c-'0')
		}
		if len(s) > 0 && v < NumRegs {
			return Register(v), true
		}
	}
	return 0, false
}

// FPRegByName resolves "f0".."f31" (with optional $) to a register index.
func FPRegByName(name string) (Register, bool) {
	if len(name) > 0 && name[0] == '$' {
		name = name[1:]
	}
	if len(name) < 2 || name[0] != 'f' {
		return 0, false
	}
	v := 0
	for _, c := range name[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
	}
	if v >= NumRegs {
		return 0, false
	}
	return Register(v), true
}

// Op enumerates RISA opcodes. The numeric values are also the primary
// opcode field of the binary encoding (6 bits for I/J formats; R-format
// instructions share OpReg/OpFP with an 11-bit function code).
type Op uint8

// Opcode space. OpReg and OpFP select the R-format function-code space.
const (
	OpNop Op = iota
	OpReg    // R-format integer (funct selects)
	OpFP     // R-format floating point (funct selects)

	// Loads. All use base+displacement addressing: rd <- mem[rs+imm].
	OpLB
	OpLBU
	OpLH
	OpLHU
	OpLW
	OpLWC1 // load float32 into FP register

	// Stores: mem[rs+imm] <- rd.
	OpSB
	OpSH
	OpSW
	OpSWC1 // store float32 from FP register

	// ALU immediates: rd <- rs op imm.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLTI
	OpSLLI
	OpSRLI
	OpSRAI
	OpLUI // rd <- imm << 16

	// Branches: PC-relative, imm counts words from the next instruction.
	OpBEQ
	OpBNE
	OpBLEZ
	OpBGTZ
	OpBLTZ
	OpBGEZ

	// Jumps.
	OpJ    // absolute word target (26 bits)
	OpJAL  // and link into $ra
	OpJR   // jump register (rs)
	OpJALR // jump register and link into rd

	OpSYSCALL

	numOps
)

// Funct enumerates the R-format function codes used with OpReg and OpFP.
type Funct uint16

// Integer R-format function codes (OpReg).
const (
	FnADD Funct = iota
	FnSUB
	FnMUL
	FnMULH // high 32 bits of signed product
	FnDIV
	FnREM
	FnAND
	FnOR
	FnXOR
	FnNOR
	FnSLL
	FnSRL
	FnSRA
	FnSLT
	FnSLTU
)

// Floating-point R-format function codes (OpFP). Comparison results and
// conversions move between the FP and integer register files: C* write an
// integer register, MTC1/CVTSW read one.
const (
	FnFADD Funct = iota
	FnFSUB
	FnFMUL
	FnFDIV
	FnFNEG
	FnFABS
	FnFSQRT
	FnCEQ   // rd(int) <- fs == ft
	FnCLT   // rd(int) <- fs < ft
	FnCLE   // rd(int) <- fs <= ft
	FnCVTSW // fd <- float32(rs int)
	FnCVTWS // rd(int) <- int32(fs)
	FnMFC1  // rd(int) <- bits(fs)
	FnMTC1  // fd <- bits(rs int)
)

// Inst is one decoded RISA instruction. Rd/Rs/Rt index the integer or FP
// register file depending on the opcode; Imm is the sign-extended
// immediate (or the jump target word index for J/JAL).
type Inst struct {
	Op    Op
	Funct Funct
	Rd    Register // destination (or store source for S*)
	Rs    Register // first source / base register for loads+stores
	Rt    Register // second source
	Imm   int32
}

// Class partitions instructions for the timing model's functional-unit
// selection and the profiler's bookkeeping.
type Class uint8

// Instruction classes.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassFPALU
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassCall
	ClassReturn
	ClassSyscall
)

var classNames = map[Class]string{
	ClassNop: "nop", ClassIntALU: "ialu", ClassIntMul: "imul",
	ClassIntDiv: "idiv", ClassFPALU: "falu", ClassFPMul: "fmul",
	ClassFPDiv: "fdiv", ClassLoad: "load", ClassStore: "store",
	ClassBranch: "branch", ClassJump: "jump", ClassCall: "call",
	ClassReturn: "return", ClassSyscall: "syscall",
}

func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Classify reports the instruction's class. JAL and JALR classify as
// calls; JR $ra classifies as a return (the idiom the compiler emits).
func (i Inst) Classify() Class {
	switch i.Op {
	case OpNop:
		return ClassNop
	case OpReg:
		switch i.Funct {
		case FnMUL, FnMULH:
			return ClassIntMul
		case FnDIV, FnREM:
			return ClassIntDiv
		default:
			return ClassIntALU
		}
	case OpFP:
		switch i.Funct {
		case FnFMUL:
			return ClassFPMul
		case FnFDIV, FnFSQRT:
			return ClassFPDiv
		default:
			return ClassFPALU
		}
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWC1:
		return ClassLoad
	case OpSB, OpSH, OpSW, OpSWC1:
		return ClassStore
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLTI, OpSLLI, OpSRLI, OpSRAI, OpLUI:
		return ClassIntALU
	case OpBEQ, OpBNE, OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ:
		return ClassBranch
	case OpJ:
		return ClassJump
	case OpJAL:
		return ClassCall
	case OpJR:
		if i.Rs == RA {
			return ClassReturn
		}
		return ClassJump
	case OpJALR:
		return ClassCall
	case OpSYSCALL:
		return ClassSyscall
	}
	return ClassNop
}

// IsMem reports whether the instruction is a load or store.
func (i Inst) IsMem() bool {
	c := i.Classify()
	return c == ClassLoad || c == ClassStore
}

// IsLoad reports whether the instruction is a load.
func (i Inst) IsLoad() bool { return i.Classify() == ClassLoad }

// IsStore reports whether the instruction is a store.
func (i Inst) IsStore() bool { return i.Classify() == ClassStore }

// IsBranch reports whether the instruction is a conditional branch.
func (i Inst) IsBranch() bool { return i.Classify() == ClassBranch }

// IsFPMem reports whether the instruction moves a floating-point value
// to or from memory.
func (i Inst) IsFPMem() bool { return i.Op == OpLWC1 || i.Op == OpSWC1 }

// BaseReg returns the base (index) register of a load or store; ok is
// false for non-memory instructions. This is the addressing-mode signal
// the paper's static prediction heuristics consume.
func (i Inst) BaseReg() (Register, bool) {
	if !i.IsMem() {
		return 0, false
	}
	return i.Rs, true
}

// MemSize reports the access width in bytes of a load or store (0 for
// non-memory instructions).
func (i Inst) MemSize() int {
	switch i.Op {
	case OpLB, OpLBU, OpSB:
		return 1
	case OpLH, OpLHU, OpSH:
		return 2
	case OpLW, OpSW, OpLWC1, OpSWC1:
		return 4
	}
	return 0
}

// Sources returns the integer registers the instruction reads. FP
// register reads are reported by FPSources.
func (i Inst) Sources() []Register {
	switch i.Op {
	case OpNop, OpJ, OpJAL, OpLUI:
		return nil
	case OpReg:
		return []Register{i.Rs, i.Rt}
	case OpFP:
		switch i.Funct {
		case FnCVTSW, FnMTC1:
			return []Register{i.Rs}
		default:
			return nil
		}
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWC1:
		return []Register{i.Rs}
	case OpSB, OpSH, OpSW:
		return []Register{i.Rs, i.Rd}
	case OpSWC1:
		return []Register{i.Rs}
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLTI, OpSLLI, OpSRLI, OpSRAI:
		return []Register{i.Rs}
	case OpBEQ, OpBNE:
		// I-format: the second comparison operand is carried in Rd.
		return []Register{i.Rs, i.Rd}
	case OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ:
		return []Register{i.Rs}
	case OpJR, OpJALR:
		return []Register{i.Rs}
	case OpSYSCALL:
		// By convention syscalls read $v0 and $a0.
		return []Register{V0, A0}
	}
	return nil
}

// FPSources returns the floating-point registers the instruction reads.
func (i Inst) FPSources() []Register {
	switch i.Op {
	case OpFP:
		switch i.Funct {
		case FnFNEG, FnFABS, FnFSQRT, FnCVTWS, FnMFC1:
			return []Register{i.Rs}
		case FnCVTSW, FnMTC1:
			return nil
		default:
			return []Register{i.Rs, i.Rt}
		}
	case OpSWC1:
		return []Register{i.Rd}
	}
	return nil
}

// Dest returns the integer destination register, or ok=false when the
// instruction does not write an integer register. Writes to $zero are
// reported (the VM discards them).
func (i Inst) Dest() (Register, bool) {
	switch i.Op {
	case OpReg, OpLB, OpLBU, OpLH, OpLHU, OpLW,
		OpADDI, OpANDI, OpORI, OpXORI, OpSLTI, OpSLLI, OpSRLI, OpSRAI, OpLUI:
		return i.Rd, true
	case OpFP:
		switch i.Funct {
		case FnCEQ, FnCLT, FnCLE, FnCVTWS, FnMFC1:
			return i.Rd, true
		}
		return 0, false
	case OpJAL:
		return RA, true
	case OpJALR:
		return i.Rd, true
	case OpSYSCALL:
		return V0, true // result convention
	}
	return 0, false
}

// FPDest returns the floating-point destination register, or ok=false.
func (i Inst) FPDest() (Register, bool) {
	switch i.Op {
	case OpLWC1:
		return i.Rd, true
	case OpFP:
		switch i.Funct {
		case FnFADD, FnFSUB, FnFMUL, FnFDIV, FnFNEG, FnFABS, FnFSQRT,
			FnCVTSW, FnMTC1:
			return i.Rd, true
		}
	}
	return 0, false
}
