package isa

import (
	"testing"
	"testing/quick"
)

func TestRegByName(t *testing.T) {
	cases := []struct {
		in   string
		want Register
		ok   bool
	}{
		{"$sp", SP, true}, {"sp", SP, true}, {"$fp", FP, true},
		{"$gp", GP, true}, {"$ra", RA, true}, {"$zero", Zero, true},
		{"r29", SP, true}, {"$29", SP, true}, {"t0", T0, true},
		{"$v0", V0, true}, {"a3", A3, true}, {"s7", S7, true},
		{"$bogus", 0, false}, {"r32", 0, false}, {"", 0, false},
	}
	for _, c := range cases {
		got, ok := RegByName(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("RegByName(%q) = (%v,%v), want (%v,%v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestFPRegByName(t *testing.T) {
	if r, ok := FPRegByName("$f12"); !ok || r != 12 {
		t.Errorf("f12 = %v,%v", r, ok)
	}
	if _, ok := FPRegByName("f32"); ok {
		t.Error("f32 accepted")
	}
	if _, ok := FPRegByName("t0"); ok {
		t.Error("t0 accepted as fp")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		in   Inst
		want Class
	}{
		{Inst{Op: OpNop}, ClassNop},
		{Inst{Op: OpReg, Funct: FnADD}, ClassIntALU},
		{Inst{Op: OpReg, Funct: FnMUL}, ClassIntMul},
		{Inst{Op: OpReg, Funct: FnREM}, ClassIntDiv},
		{Inst{Op: OpFP, Funct: FnFADD}, ClassFPALU},
		{Inst{Op: OpFP, Funct: FnFMUL}, ClassFPMul},
		{Inst{Op: OpFP, Funct: FnFDIV}, ClassFPDiv},
		{Inst{Op: OpLW}, ClassLoad},
		{Inst{Op: OpSWC1}, ClassStore},
		{Inst{Op: OpBEQ}, ClassBranch},
		{Inst{Op: OpJAL}, ClassCall},
		{Inst{Op: OpJR, Rs: RA}, ClassReturn},
		{Inst{Op: OpJR, Rs: T0}, ClassJump},
		{Inst{Op: OpSYSCALL}, ClassSyscall},
	}
	for _, c := range cases {
		if got := c.in.Classify(); got != c.want {
			t.Errorf("%v classifies as %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMemIntrospection(t *testing.T) {
	lw := Inst{Op: OpLW, Rd: T0, Rs: SP, Imm: 8}
	if !lw.IsMem() || !lw.IsLoad() || lw.IsStore() {
		t.Error("lw predicates")
	}
	if base, ok := lw.BaseReg(); !ok || base != SP {
		t.Error("lw base register")
	}
	if lw.MemSize() != 4 {
		t.Error("lw size")
	}
	sb := Inst{Op: OpSB, Rd: T1, Rs: GP}
	if sb.MemSize() != 1 || !sb.IsStore() {
		t.Error("sb predicates")
	}
	if _, ok := (Inst{Op: OpADDI}).BaseReg(); ok {
		t.Error("non-mem has a base register")
	}
	ls := Inst{Op: OpLWC1, Rd: 4, Rs: T2}
	if !ls.IsFPMem() || ls.MemSize() != 4 {
		t.Error("l.s predicates")
	}
}

func TestSourcesAndDests(t *testing.T) {
	// sw $t1, 8($sp): reads sp (base) and t1 (data), writes nothing.
	sw := Inst{Op: OpSW, Rd: T1, Rs: SP, Imm: 8}
	srcs := sw.Sources()
	if len(srcs) != 2 || srcs[0] != SP || srcs[1] != T1 {
		t.Errorf("sw sources = %v", srcs)
	}
	if _, ok := sw.Dest(); ok {
		t.Error("sw has a dest")
	}
	// lw writes its Rd.
	lw := Inst{Op: OpLW, Rd: T3, Rs: GP}
	if d, ok := lw.Dest(); !ok || d != T3 {
		t.Error("lw dest")
	}
	// jal writes $ra.
	if d, ok := (Inst{Op: OpJAL}).Dest(); !ok || d != RA {
		t.Error("jal dest")
	}
	// s.s reads the FP data register.
	ss := Inst{Op: OpSWC1, Rd: 5, Rs: SP}
	if fs := ss.FPSources(); len(fs) != 1 || fs[0] != 5 {
		t.Errorf("s.s fp sources = %v", fs)
	}
	// add.s writes an FP register.
	adds := Inst{Op: OpFP, Funct: FnFADD, Rd: 2, Rs: 0, Rt: 1}
	if d, ok := adds.FPDest(); !ok || d != 2 {
		t.Error("add.s fp dest")
	}
	if _, ok := adds.Dest(); ok {
		t.Error("add.s int dest")
	}
	// c.lt.s writes an int register from FP sources.
	clt := Inst{Op: OpFP, Funct: FnCLT, Rd: T0, Rs: 1, Rt: 2}
	if d, ok := clt.Dest(); !ok || d != T0 {
		t.Error("c.lt.s int dest")
	}
	if fs := clt.FPSources(); len(fs) != 2 {
		t.Errorf("c.lt.s fp sources = %v", fs)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(0xFFFF_FFFF); err == nil {
		t.Error("garbage decoded")
	}
	// OpReg with out-of-range funct.
	w := uint32(OpReg)<<26 | 0x7FF
	if _, err := Decode(w); err == nil {
		t.Error("bad funct decoded")
	}
}

func TestEncodeRangeChecks(t *testing.T) {
	if _, err := Encode(Inst{Op: OpADDI, Imm: 40000}); err == nil {
		t.Error("oversized immediate encoded")
	}
	if _, err := Encode(Inst{Op: OpJ, Imm: -1}); err == nil {
		t.Error("negative jump target encoded")
	}
}

// Property: every well-formed I-format instruction round-trips.
func TestRoundTripAllOpsProperty(t *testing.T) {
	ops := []Op{OpLW, OpSW, OpADDI, OpORI, OpBEQ, OpSLTI, OpLUI, OpLB, OpSH}
	f := func(opIdx uint8, rd, rs uint8, imm int16) bool {
		in := Inst{
			Op: ops[int(opIdx)%len(ops)],
			Rd: Register(rd % 32), Rs: Register(rs % 32),
			Imm: int32(imm),
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: R-format instructions round-trip across all functs.
func TestRoundTripRFormatProperty(t *testing.T) {
	f := func(fn uint16, rd, rs, rt uint8) bool {
		in := Inst{
			Op: OpReg, Funct: Funct(fn) % (FnSLTU + 1),
			Rd: Register(rd % 32), Rs: Register(rs % 32), Rt: Register(rt % 32),
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]Inst{
		"lw $t0, 8($sp)":      {Op: OpLW, Rd: T0, Rs: SP, Imm: 8},
		"add $v0, $a0, $a1":   {Op: OpReg, Funct: FnADD, Rd: V0, Rs: A0, Rt: A1},
		"add.s $f2, $f0, $f1": {Op: OpFP, Funct: FnFADD, Rd: 2, Rs: 0, Rt: 1},
		"jr $ra":              {Op: OpJR, Rs: RA},
		"syscall":             {Op: OpSYSCALL},
		"s.s $f4, -12($fp)":   {Op: OpSWC1, Rd: 4, Rs: FP, Imm: -12},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
