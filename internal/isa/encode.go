package isa

import "fmt"

// Binary layout. Three formats share a 6-bit primary opcode in the top
// bits:
//
//	I-format:  op(6) | rd(5) | rs(5) | imm(16, signed)
//	R-format:  op(6) | rd(5) | rs(5) | rt(5) | funct(11)
//	J-format:  op(6) | target(26, word index)
//
// OpReg and OpFP use the R format; J and JAL use the J format; everything
// else uses the I format (unused fields are zero).
const (
	opShift = 26
	rdShift = 21
	rsShift = 16
	rtShift = 11

	immMask    = 0xFFFF
	functMask  = 0x7FF
	targetMask = 0x03FFFFFF
)

// InstBytes is the size of one encoded instruction in bytes.
const InstBytes = 4

// ErrBadEncoding is returned (wrapped) by Decode for undecodable words.
var ErrBadEncoding = fmt.Errorf("isa: bad instruction encoding")

// Encode packs an instruction into its 32-bit binary form. It returns an
// error if a field does not fit (immediate out of 16-bit range, jump
// target out of 26-bit range, or function code out of 11-bit range).
func Encode(in Inst) (uint32, error) {
	if in.Op >= numOps {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", in.Op)
	}
	w := uint32(in.Op) << opShift
	switch in.Op {
	case OpReg, OpFP:
		if uint32(in.Funct) > functMask {
			return 0, fmt.Errorf("isa: encode: funct %d out of range", in.Funct)
		}
		w |= uint32(in.Rd&31) << rdShift
		w |= uint32(in.Rs&31) << rsShift
		w |= uint32(in.Rt&31) << rtShift
		w |= uint32(in.Funct)
	case OpJ, OpJAL:
		if in.Imm < 0 || uint32(in.Imm) > targetMask {
			return 0, fmt.Errorf("isa: encode: jump target %#x out of range", in.Imm)
		}
		w |= uint32(in.Imm) & targetMask
	default:
		if in.Imm < -32768 || in.Imm > 32767 {
			return 0, fmt.Errorf("isa: encode: immediate %d out of 16-bit range", in.Imm)
		}
		w |= uint32(in.Rd&31) << rdShift
		w |= uint32(in.Rs&31) << rsShift
		w |= uint32(in.Imm) & immMask
	}
	return w, nil
}

// Decode unpacks a 32-bit word into an instruction.
func Decode(w uint32) (Inst, error) {
	op := Op(w >> opShift)
	if op >= numOps {
		return Inst{}, fmt.Errorf("%w: opcode %d in %#08x", ErrBadEncoding, op, w)
	}
	var in Inst
	in.Op = op
	switch op {
	case OpReg, OpFP:
		in.Rd = Register(w >> rdShift & 31)
		in.Rs = Register(w >> rsShift & 31)
		in.Rt = Register(w >> rtShift & 31)
		in.Funct = Funct(w & functMask)
		if op == OpReg && in.Funct > FnSLTU {
			return Inst{}, fmt.Errorf("%w: int funct %d", ErrBadEncoding, in.Funct)
		}
		if op == OpFP && in.Funct > FnMTC1 {
			return Inst{}, fmt.Errorf("%w: fp funct %d", ErrBadEncoding, in.Funct)
		}
	case OpJ, OpJAL:
		in.Imm = int32(w & targetMask)
	default:
		in.Rd = Register(w >> rdShift & 31)
		in.Rs = Register(w >> rsShift & 31)
		in.Imm = int32(int16(w & immMask)) // sign-extend
	}
	return in, nil
}

var opNames = map[Op]string{
	OpNop: "nop", OpLB: "lb", OpLBU: "lbu", OpLH: "lh", OpLHU: "lhu",
	OpLW: "lw", OpLWC1: "l.s", OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpSWC1: "s.s", OpADDI: "addi", OpANDI: "andi", OpORI: "ori",
	OpXORI: "xori", OpSLTI: "slti", OpSLLI: "slli", OpSRLI: "srli",
	OpSRAI: "srai", OpLUI: "lui", OpBEQ: "beq", OpBNE: "bne",
	OpBLEZ: "blez", OpBGTZ: "bgtz", OpBLTZ: "bltz", OpBGEZ: "bgez",
	OpJ: "j", OpJAL: "jal", OpJR: "jr", OpJALR: "jalr",
	OpSYSCALL: "syscall",
}

var intFnNames = map[Funct]string{
	FnADD: "add", FnSUB: "sub", FnMUL: "mul", FnMULH: "mulh",
	FnDIV: "div", FnREM: "rem", FnAND: "and", FnOR: "or", FnXOR: "xor",
	FnNOR: "nor", FnSLL: "sll", FnSRL: "srl", FnSRA: "sra",
	FnSLT: "slt", FnSLTU: "sltu",
}

var fpFnNames = map[Funct]string{
	FnFADD: "add.s", FnFSUB: "sub.s", FnFMUL: "mul.s", FnFDIV: "div.s",
	FnFNEG: "neg.s", FnFABS: "abs.s", FnFSQRT: "sqrt.s",
	FnCEQ: "c.eq.s", FnCLT: "c.lt.s", FnCLE: "c.le.s",
	FnCVTSW: "cvt.s.w", FnCVTWS: "cvt.w.s", FnMFC1: "mfc1", FnMTC1: "mtc1",
}

// Mnemonic reports the assembler mnemonic for the instruction.
func (i Inst) Mnemonic() string {
	switch i.Op {
	case OpReg:
		if n, ok := intFnNames[i.Funct]; ok {
			return n
		}
	case OpFP:
		if n, ok := fpFnNames[i.Funct]; ok {
			return n
		}
	default:
		if n, ok := opNames[i.Op]; ok {
			return n
		}
	}
	return fmt.Sprintf("op(%d,%d)", i.Op, i.Funct)
}

func fpName(r Register) string { return fmt.Sprintf("$f%d", uint8(r)) }

// String renders the instruction in assembler syntax.
func (i Inst) String() string {
	m := i.Mnemonic()
	switch i.Op {
	case OpNop, OpSYSCALL:
		return m
	case OpReg:
		return fmt.Sprintf("%s %s, %s, %s", m, i.Rd, i.Rs, i.Rt)
	case OpFP:
		switch i.Funct {
		case FnFNEG, FnFABS, FnFSQRT:
			return fmt.Sprintf("%s %s, %s", m, fpName(i.Rd), fpName(i.Rs))
		case FnCEQ, FnCLT, FnCLE:
			return fmt.Sprintf("%s %s, %s, %s", m, i.Rd, fpName(i.Rs), fpName(i.Rt))
		case FnCVTSW, FnMTC1:
			return fmt.Sprintf("%s %s, %s", m, fpName(i.Rd), i.Rs)
		case FnCVTWS, FnMFC1:
			return fmt.Sprintf("%s %s, %s", m, i.Rd, fpName(i.Rs))
		default:
			return fmt.Sprintf("%s %s, %s, %s", m, fpName(i.Rd), fpName(i.Rs), fpName(i.Rt))
		}
	case OpLWC1, OpSWC1:
		return fmt.Sprintf("%s %s, %d(%s)", m, fpName(i.Rd), i.Imm, i.Rs)
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpSB, OpSH, OpSW:
		return fmt.Sprintf("%s %s, %d(%s)", m, i.Rd, i.Imm, i.Rs)
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLTI, OpSLLI, OpSRLI, OpSRAI:
		return fmt.Sprintf("%s %s, %s, %d", m, i.Rd, i.Rs, i.Imm)
	case OpLUI:
		return fmt.Sprintf("%s %s, %d", m, i.Rd, i.Imm)
	case OpBEQ, OpBNE:
		return fmt.Sprintf("%s %s, %s, %d", m, i.Rs, i.Rd, i.Imm)
	case OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ:
		return fmt.Sprintf("%s %s, %d", m, i.Rs, i.Imm)
	case OpJ, OpJAL:
		return fmt.Sprintf("%s %#x", m, uint32(i.Imm)*InstBytes)
	case OpJR:
		return fmt.Sprintf("%s %s", m, i.Rs)
	case OpJALR:
		return fmt.Sprintf("%s %s, %s", m, i.Rd, i.Rs)
	}
	return m
}
