package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/store"
)

func TestNewPlanDeterministic(t *testing.T) {
	a := NewPlan(42, 16, 64)
	b := NewPlan(42, 16, 64)
	if len(a.Faults) != 16 {
		t.Fatalf("plan has %d faults, want 16", len(a.Faults))
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs across same-seed plans: %v vs %v", i, a.Faults[i], b.Faults[i])
		}
		if a.Faults[i].Op >= 64 {
			t.Fatalf("fault %d op %d outside window 64", i, a.Faults[i].Op)
		}
	}
	c := NewPlan(43, 16, 64)
	same := true
	for i := range a.Faults {
		if a.Faults[i] != c.Faults[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("7:4:64")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 7 || len(p.Faults) != 4 {
		t.Fatalf("got seed %d, %d faults; want 7, 4", p.Seed, len(p.Faults))
	}
	want := NewPlan(7, 4, 64)
	for i := range p.Faults {
		if p.Faults[i] != want.Faults[i] {
			t.Fatalf("ParsePlan fault %d = %v, want %v", i, p.Faults[i], want.Faults[i])
		}
	}
	for _, bad := range []string{"", "x", "1:2", "1:-2:3"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

// TestEachKindFiresOnce walks every fault kind through a real write
// path and checks the fault fires at its exact ordinal, exactly once.
func TestEachKindFiresOnce(t *testing.T) {
	dir := t.TempDir()

	t.Run("write-eio", func(t *testing.T) {
		fs := New(nil, &Plan{Faults: []Fault{{Kind: WriteEIO, Op: 1}}}, t.Logf)
		f := mustAppend(t, fs, filepath.Join(dir, "w1"))
		if _, err := f.Write([]byte("op0")); err != nil {
			t.Fatalf("op0 should pass: %v", err)
		}
		_, err := f.Write([]byte("op1"))
		if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
			t.Fatalf("op1 err = %v, want injected EIO", err)
		}
		if _, err := f.Write([]byte("op2")); err != nil {
			t.Fatalf("address fired once, op2 should pass: %v", err)
		}
		f.Close()
		if fs.Fired() != 1 {
			t.Fatalf("Fired = %d, want 1", fs.Fired())
		}
	})

	t.Run("short-write", func(t *testing.T) {
		fs := New(nil, &Plan{Faults: []Fault{{Kind: ShortWrite, Op: 0}}}, t.Logf)
		path := filepath.Join(dir, "w2")
		f := mustAppend(t, fs, path)
		n, err := f.Write([]byte("abcdefgh"))
		if !errors.Is(err, ErrInjected) || n != 4 {
			t.Fatalf("short write: n=%d err=%v, want 4 bytes then injected error", n, err)
		}
		f.Close()
		data, _ := os.ReadFile(path)
		if string(data) != "abcd" {
			t.Fatalf("file holds %q, want the torn half %q", data, "abcd")
		}
	})

	t.Run("enospc", func(t *testing.T) {
		fs := New(nil, &Plan{Faults: []Fault{{Kind: WriteENOSPC, Op: 0}}}, t.Logf)
		f := mustAppend(t, fs, filepath.Join(dir, "w3"))
		_, err := f.Write([]byte("x"))
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("err = %v, want ENOSPC", err)
		}
		f.Close()
	})

	t.Run("sync-fail", func(t *testing.T) {
		fs := New(nil, &Plan{Faults: []Fault{{Kind: SyncFail, Op: 0}}}, t.Logf)
		f := mustAppend(t, fs, filepath.Join(dir, "w4"))
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync err = %v, want injected", err)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("second sync should pass: %v", err)
		}
		f.Close()
	})

	t.Run("rename-drop", func(t *testing.T) {
		fs := New(nil, &Plan{Faults: []Fault{{Kind: RenameDrop, Op: 0}}}, t.Logf)
		src := filepath.Join(dir, "r-src")
		dst := filepath.Join(dir, "r-dst")
		if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename(src, dst); err != nil {
			t.Fatalf("dropped rename must report success, got %v", err)
		}
		if _, err := os.Stat(dst); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("destination appeared despite rename drop")
		}
		if _, err := os.Stat(src); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("source survived rename drop")
		}
	})

	t.Run("read-eio", func(t *testing.T) {
		fs := New(nil, &Plan{Faults: []Fault{{Kind: ReadEIO, Op: 0}}}, t.Logf)
		path := filepath.Join(dir, "r1")
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.ReadFile(path); !errors.Is(err, syscall.EIO) {
			t.Fatalf("read err = %v, want EIO", err)
		}
		if data, err := fs.ReadFile(path); err != nil || string(data) != "x" {
			t.Fatalf("retry after once-only fault: %q, %v", data, err)
		}
	})
}

// TestStoreSurvivesWriteFaults drives the artifact store's atomic-write
// protocol through injected faults: the Put fails cleanly (or the
// rename drop hides it), the store stays consistent, and a retried Put
// lands.
func TestStoreSurvivesWriteFaults(t *testing.T) {
	for _, kind := range []Kind{WriteEIO, ShortWrite, WriteENOSPC, SyncFail, RenameDrop} {
		t.Run(kind.String(), func(t *testing.T) {
			fs := New(nil, &Plan{Faults: []Fault{{Kind: kind, Op: 0}}}, t.Logf)
			st, err := store.OpenFS(t.TempDir(), fs)
			if err != nil {
				t.Fatalf("OpenFS: %v", err)
			}
			key := store.Key{Kind: "result", Workload: "w", Scale: 1}
			err = st.Put(key, "payload")
			if kind == RenameDrop {
				if err != nil {
					t.Fatalf("rename drop is silent, Put reported %v", err)
				}
				var got string
				if ok, err := st.Get(key, &got); ok || err != nil {
					t.Fatalf("dropped rename must degrade to a miss, got ok=%v err=%v", ok, err)
				}
			} else if !errors.Is(err, ErrInjected) {
				t.Fatalf("Put err = %v, want injected", err)
			}
			if err := st.Put(key, "payload"); err != nil {
				t.Fatalf("retried Put: %v", err)
			}
			var got string
			ok, err := st.Get(key, &got)
			if !ok || err != nil || got != "payload" {
				t.Fatalf("Get after retry: ok=%v %q %v", ok, got, err)
			}
		})
	}
}

func mustAppend(t *testing.T, fs *FS, path string) store.File {
	t.Helper()
	f, err := fs.OpenAppend(path, 0o644)
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	return f
}
