// Package faultfs is the deterministic storage-fault injection layer
// under the artifact store and the service journal: an FS wrapper that
// fails exact operations — EIO on a write, a short/partial write, a
// failed fsync, ENOSPC, a silently dropped rename, EIO on a read —
// according to a seeded splitmix64 plan, so crash- and IO-chaos tests
// reproduce byte for byte from a single seed.
//
// Faults are addressed by (kind, per-kind operation ordinal): the
// plan entry {Kind: SyncFail, Op: 3} fails the fourth Sync the wrapped
// filesystem ever sees. Per-kind counters (rather than one global op
// counter) keep addresses meaningful — a plan targets "the 4th fsync",
// not "whatever the 17th syscall happens to be" — and every injected
// fault wraps ErrInjected so tests can tell planned failures from real
// environmental ones.
//
// The rename-drop kind models the classic lost-rename crash: Rename
// reports success but the destination never appears, exactly what a
// power cut between a rename's journal commit and its directory-entry
// write leaves behind. The store's verify-on-read + recompute discipline
// must absorb it as a miss.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/store"
)

// ErrInjected marks every fault this package injects; test with
// errors.Is. The concrete error chain also carries the modelled
// syscall errno (EIO, ENOSPC) so code classifying by errno behaves as
// it would under the real fault.
var ErrInjected = errors.New("faultfs: injected fault")

// Kind classifies an injected storage fault.
type Kind uint8

const (
	// WriteEIO fails one File.Write with EIO after writing nothing.
	WriteEIO Kind = iota
	// ShortWrite writes only the first half of one File.Write's bytes,
	// then fails with EIO — the torn-record case append-only formats
	// must re-synchronize after.
	ShortWrite
	// WriteENOSPC fails one File.Write with ENOSPC.
	WriteENOSPC
	// SyncFail fails one File.Sync — the fsyncgate model: the data may
	// or may not be durable, and the caller must treat the file as
	// suspect.
	SyncFail
	// RenameDrop makes one Rename report success without renaming —
	// the lost-rename crash model.
	RenameDrop
	// ReadEIO fails one ReadFile with EIO.
	ReadEIO

	numKinds
)

var kindNames = [numKinds]string{
	"write-eio", "short-write", "write-enospc", "sync-fail", "rename-drop", "read-eio",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fault is one planned injection: the Op-th operation (0-based) of the
// fault's operation class fails with the fault's kind. The three write
// kinds share one ordinal space (the stream of File.Write calls), so
// {ShortWrite, Op: 5} and {WriteEIO, Op: 5} address the same write.
// Each address fires at most once, so a retried operation succeeds —
// injected faults model transient IO trouble and crash debris, not a
// dead disk.
type Fault struct {
	Kind Kind
	Op   uint64
}

func (f Fault) String() string { return fmt.Sprintf("%s@op%d", f.Kind, f.Op) }

// Plan is a seeded set of storage faults.
type Plan struct {
	Seed   uint64
	Faults []Fault
}

// NewPlan expands seed into n faults, each addressing an operation
// ordinal in [0, window) of a kind drawn uniformly. The expansion is a
// pure function of its arguments (splitmix64, the repo's standard
// seeded stream), so a chaos run is reproducible from (seed, n,
// window) alone.
func NewPlan(seed uint64, n int, window uint64) *Plan {
	if window == 0 {
		window = 1
	}
	p := &Plan{Seed: seed, Faults: make([]Fault, 0, n)}
	state := seed
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := 0; i < n; i++ {
		p.Faults = append(p.Faults, Fault{
			Kind: Kind(next() % uint64(numKinds)),
			Op:   next() % window,
		})
	}
	return p
}

// ParsePlan renders a "seed:count:window" flag value into a plan —
// the -store-faults CLI surface.
func ParsePlan(spec string) (*Plan, error) {
	var seed, window uint64
	var n int
	if _, err := fmt.Sscanf(spec, "%d:%d:%d", &seed, &n, &window); err != nil || n < 0 {
		return nil, fmt.Errorf(`faultfs: bad plan %q, want "seed:count:window" like "7:4:64"`, spec)
	}
	return NewPlan(seed, n, window), nil
}

// The operation classes that draw ordinals: writes (all three write
// kinds share the stream of File.Write calls), syncs, renames, reads.
const (
	classWrite = iota
	classSync
	classRename
	classRead
	numClasses
)

// FS wraps an inner store.FS and realizes a Plan against it. Safe for
// concurrent use; the per-class ordinals are atomic, so under
// concurrency the set of injected faults is stable even when which
// caller draws each ordinal is not.
type FS struct {
	inner store.FS
	log   func(format string, args ...any)

	mu      sync.Mutex
	pending map[Kind]map[uint64]bool // armed (kind, op) addresses
	ops     [numClasses]atomic.Uint64
	fired   atomic.Uint64
}

// New wraps inner with the plan's faults. A nil inner wraps the real
// filesystem; log (optional) receives one line per injected fault.
func New(inner store.FS, plan *Plan, log func(format string, args ...any)) *FS {
	if inner == nil {
		inner = store.OS()
	}
	f := &FS{inner: inner, log: log, pending: make(map[Kind]map[uint64]bool)}
	if plan != nil {
		for _, flt := range plan.Faults {
			if f.pending[flt.Kind] == nil {
				f.pending[flt.Kind] = make(map[uint64]bool)
			}
			f.pending[flt.Kind][flt.Op] = true
		}
	}
	return f
}

// Fired reports how many planned faults have been injected so far.
func (f *FS) Fired() uint64 { return f.fired.Load() }

// trip advances class's ordinal and reports which of the given kinds
// (if any) is planned for this operation. Each address fires once.
func (f *FS) trip(class int, kinds ...Kind) (Kind, bool) {
	op := f.ops[class].Add(1) - 1
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, kind := range kinds {
		if f.pending[kind][op] {
			delete(f.pending[kind], op)
			f.fired.Add(1)
			if f.log != nil {
				f.log("faultfs: injecting %s@op%d", kind, op)
			}
			return kind, true
		}
	}
	return 0, false
}

func injected(kind Kind, errno syscall.Errno) error {
	return fmt.Errorf("%w: %s: %w", ErrInjected, kind, errno)
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }

func (f *FS) CreateTemp(dir, pattern string) (store.File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FS) OpenAppend(path string, perm os.FileMode) (store.File, error) {
	file, err := f.inner.OpenAppend(path, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FS) Chmod(name string, mode os.FileMode) error { return f.inner.Chmod(name, mode) }

func (f *FS) Rename(oldpath, newpath string) error {
	if _, ok := f.trip(classRename, RenameDrop); ok {
		// Report success, drop the rename: the lost-rename crash. The
		// source is removed so the debris does not double as a
		// half-visible record.
		f.inner.Remove(oldpath)
		return nil
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

func (f *FS) ReadFile(name string) ([]byte, error) {
	if _, ok := f.trip(classRead, ReadEIO); ok {
		return nil, injected(ReadEIO, syscall.EIO)
	}
	return f.inner.ReadFile(name)
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }

func (f *FS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

// faultFile interposes on the write-side file operations.
type faultFile struct {
	store.File
	fs *FS
}

func (f *faultFile) Write(p []byte) (int, error) {
	switch kind, ok := f.fs.trip(classWrite, WriteEIO, ShortWrite, WriteENOSPC); {
	case !ok:
		return f.File.Write(p)
	case kind == ShortWrite:
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, injected(ShortWrite, syscall.EIO)
	case kind == WriteENOSPC:
		return 0, injected(WriteENOSPC, syscall.ENOSPC)
	default:
		return 0, injected(WriteEIO, syscall.EIO)
	}
}

func (f *faultFile) Sync() error {
	if _, ok := f.fs.trip(classSync, SyncFail); ok {
		return injected(SyncFail, syscall.EIO)
	}
	return f.File.Sync()
}
