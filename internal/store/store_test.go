package store

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

type payload struct {
	Name   string
	Values []uint64
}

func testKey(kind string) Key {
	return Key{Kind: kind, Workload: "099.go", Scale: 2, MaxInsts: 30_000, Config: "(3+3)", Version: "test/v1"}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("result")
	want := payload{Name: "alpha", Values: []uint64{1, 2, 3}}

	var missed payload
	if ok, err := s.Get(k, &missed); err != nil || ok {
		t.Fatalf("Get before Put = (%v, %v), want miss", ok, err)
	}
	if err := s.Put(k, &want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if ok, err := s.Get(k, &got); err != nil || !ok {
		t.Fatalf("Get after Put = (%v, %v), want hit", ok, err)
	}
	if got.Name != want.Name || len(got.Values) != 3 || got.Values[2] != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKeyHashDistinguishesEveryField(t *testing.T) {
	base := testKey("trace")
	seen := map[string]Key{base.Hash(): base}
	for _, k := range []Key{
		{Kind: "result", Workload: base.Workload, Scale: base.Scale, MaxInsts: base.MaxInsts, Config: base.Config, Version: base.Version},
		{Kind: base.Kind, Workload: "126.gcc", Scale: base.Scale, MaxInsts: base.MaxInsts, Config: base.Config, Version: base.Version},
		{Kind: base.Kind, Workload: base.Workload, Scale: 3, MaxInsts: base.MaxInsts, Config: base.Config, Version: base.Version},
		{Kind: base.Kind, Workload: base.Workload, Scale: base.Scale, MaxInsts: 1, Config: base.Config, Version: base.Version},
		{Kind: base.Kind, Workload: base.Workload, Scale: base.Scale, MaxInsts: base.MaxInsts, Config: "(2+0)", Version: base.Version},
		{Kind: base.Kind, Workload: base.Workload, Scale: base.Scale, MaxInsts: base.MaxInsts, Config: base.Config, Version: "test/v2"},
	} {
		h := k.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %v and %v", prev, k)
		}
		seen[h] = k
	}
	// The hash must be canonical, not incidental: field values that
	// could concatenate ambiguously stay distinct under %q framing.
	a := Key{Kind: "ab", Workload: "c"}
	b := Key{Kind: "a", Workload: "bc"}
	if a.Hash() == b.Hash() {
		t.Fatal("ambiguous field framing")
	}
}

// TestCorruptionQuarantined flips one payload byte on disk and proves
// the store detects it, moves the record to quarantine, reports a
// miss (so the caller recomputes), and self-heals on the next Put.
func TestCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("trace")
	if err := s.Put(k, &payload{Name: "x", Values: []uint64{7, 8}}); err != nil {
		t.Fatal(err)
	}

	path := s.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40 // flip a payload bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var got payload
	ok, err := s.Get(k, &got)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("corrupted record served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
	if q, err := s.Quarantined(); err != nil || q != 1 {
		t.Fatalf("quarantined = (%d, %v), want 1", q, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupted record still in objects/")
	}

	// Recompute + rewrite heals the key.
	if err := s.Put(k, &payload{Name: "x", Values: []uint64{7, 8}}); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Get(k, &got); err != nil || !ok || got.Values[1] != 8 {
		t.Fatalf("after heal: (%v, %v) %+v", ok, err, got)
	}
}

// TestCorruptHeaderVariants exercises the non-checksum corruption
// paths: bad magic, truncated header, and a record stored under a key
// that hashes to the same path but states different fields.
func TestCorruptHeaderVariants(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"no newline", func(b []byte) []byte { return b[:len(magic)+4] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-1] }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			k := testKey("profile")
			if err := s.Put(k, &payload{Name: "y"}); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(s.path(k))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.path(k), tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}
			var got payload
			if ok, err := s.Get(k, &got); err != nil || ok {
				t.Fatalf("Get = (%v, %v), want quarantined miss", ok, err)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("corrupt counter = %d", st.Corrupt)
			}
		})
	}
}

// TestOpenSweepsTempDebris proves a SIGKILL mid-write cannot leave a
// half-visible record: in-flight temp files are invisible to Get and
// removed by the next Open.
func TestOpenSweepsTempDebris(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("result")
	shard := filepath.Dir(s.path(k))
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	debris := filepath.Join(shard, tmpPrefix+"crashed-123")
	if err := os.WriteFile(debris, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	var got payload
	if ok, err := s.Get(k, &got); err != nil || ok {
		t.Fatalf("temp debris visible to Get: (%v, %v)", ok, err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatal("Open left temp debris in place")
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "out.json")
	if err := WriteFileAtomic(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "two" {
		t.Fatalf("read back %q, %v", b, err)
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := testKey("result")
			k.Workload = string(rune('a' + i%4))
			for j := 0; j < 20; j++ {
				if err := s.Put(k, &payload{Name: k.Workload, Values: []uint64{uint64(j)}}); err != nil {
					t.Error(err)
					return
				}
				var got payload
				if ok, err := s.Get(k, &got); err != nil || !ok || got.Name != k.Workload {
					t.Errorf("Get = (%v, %v) %+v", ok, err, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestConcurrentHammer is the arld-shaped workload: many goroutines
// hammering overlapping keys with Put and Get while the log hook is
// swapped mid-flight, under -race. It pins that the stats counters are
// exact under concurrency — hits+misses account for every Get, writes
// for every Put, and nothing is ever quarantined by contention alone.
func TestConcurrentHammer(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		keys    = 4
		rounds  = 25
	)
	// Seed every key so each verified Get is a hit.
	for i := 0; i < keys; i++ {
		k := testKey("result")
		k.Workload = string(rune('a' + i))
		if err := s.Put(k, &payload{Name: k.Workload}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				k := testKey("result")
				k.Workload = string(rune('a' + (w+j)%keys))
				s.SetLog(func(string, ...any) {}) // concurrent hook swap
				if err := s.Put(k, &payload{Name: k.Workload, Values: []uint64{uint64(j)}}); err != nil {
					t.Error(err)
					return
				}
				var got payload
				if ok, err := s.Get(k, &got); err != nil || !ok || got.Name != k.Workload {
					t.Errorf("Get = (%v, %v) %+v", ok, err, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	wantPuts := uint64(keys + workers*rounds)
	wantGets := uint64(workers * rounds)
	if st.Writes != wantPuts {
		t.Fatalf("Writes = %d, want %d", st.Writes, wantPuts)
	}
	if st.Hits != wantGets || st.Misses != 0 || st.Corrupt != 0 {
		t.Fatalf("Stats = %+v, want %d hits, 0 misses, 0 corrupt", st, wantGets)
	}
}

func TestPublish(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("result")
	if err := s.Put(k, &payload{Name: "p"}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if ok, _ := s.Get(k, &got); !ok {
		t.Fatal("miss")
	}
	reg := obs.NewRegistry()
	s.Publish(reg)
	found := map[string]float64{}
	for _, smp := range reg.Snapshot() {
		if smp.Value != nil {
			found[smp.Name] = *smp.Value
		}
	}
	if found["harness_store_hits_total"] != 1 || found["harness_store_writes_total"] != 1 {
		t.Fatalf("published counters = %v", found)
	}
}
