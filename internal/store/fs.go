package store

import (
	"io"
	"os"
)

// File is the handle an FS hands out for writing: the store's atomic
// writes and the service journal's appends need exactly write, sync,
// close and the backing name.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS is the storage seam under the store and the service journal.
// Every byte either component moves to or from disk goes through one
// of these methods, which is what lets faultfs (internal/store/faultfs)
// inject EIO, short writes, fsync failures, ENOSPC and rename drops at
// exact operation indices without touching a real kernel.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// CreateTemp opens an exclusive temporary file in dir (os.CreateTemp
	// semantics) for the atomic-write protocol.
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens path for appending, creating it when absent —
	// the journal's segment handle.
	OpenAppend(path string, perm os.FileMode) (File, error)
	Chmod(name string, mode os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
}

// osFS is the production FS: a thin pass-through to the os package.
type osFS struct{}

// OS returns the real filesystem. Store.Open and journal.Open use it;
// tests and the chaos harness substitute a faultfs wrapper via the
// *FS constructors.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenAppend(path string, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Chmod(name string, mode os.FileMode) error { return os.Chmod(name, mode) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }
