// Package store implements the durable, content-addressed artifact
// store behind crash-safe resumable campaigns: compiled programs,
// region profiles, timing traces and simulation results are written
// through to disk as checksummed, schema-versioned records keyed by a
// canonical hash of (kind, workload, scale, instruction budget,
// machine configuration, code version).
//
// Durability discipline:
//
//   - Writes are atomic: payload bytes land in a temporary file that is
//     synced and renamed into place, so a crash at any instant leaves
//     either the previous record or the complete new one — never a
//     truncated artifact. Open sweeps any temp debris a SIGKILL left.
//   - Reads are verified: every record carries its payload length and
//     SHA-256, and re-states its own key. A record that fails any check
//     (bad magic, malformed header, wrong key, short payload, checksum
//     mismatch, undecodable payload) is quarantined — moved aside into
//     quarantine/ for post-mortem — and reported as a miss, so the
//     caller recomputes instead of failing the run.
//
// The store is safe for concurrent use by any number of goroutines —
// the worker pool of one campaign, or every client of a long-running
// arld service sharing it as a cache tier. The operation counters are
// atomic, the log hook is swappable at any time (SetLog), and
// concurrent writers of the same key are idempotent: both compute the
// same record and the renames commute.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/obs"
)

// RecordSchema identifies the on-disk record format; bump on any
// incompatible change to the header or payload framing.
const RecordSchema = "arl-store/v1"

// magic opens every record file; the header JSON follows on the same
// line, then the raw payload bytes.
const magic = "arlstore1 "

// ErrCorrupt marks a record that failed verification. Corrupt records
// are quarantined and surfaced as misses by Get; the sentinel exists
// so tests and tools inspecting records directly can classify the
// failure.
var ErrCorrupt = errors.New("store: corrupt record")

// Key identifies one artifact. Every field participates in the
// canonical hash, so artifacts produced under different scales,
// instruction budgets, machine configurations or code versions never
// alias.
type Key struct {
	Kind     string `json:"kind"`              // artifact kind: "program", "trace", "result", ...
	Workload string `json:"workload"`          // workload name, e.g. "099.go"
	Scale    int    `json:"scale"`             // workload scale (0 = workload default)
	MaxInsts uint64 `json:"max_insts"`         // instruction budget (0 = full run)
	Config   string `json:"config,omitempty"`  // canonical machine-configuration string
	Version  string `json:"version,omitempty"` // producing code version; skew never aliases
}

// Hash returns the canonical content address of the key: the hex
// SHA-256 of its unambiguous field serialization.
func (k Key) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%q|%q|%d|%d|%q|%q", k.Kind, k.Workload, k.Scale, k.MaxInsts, k.Config, k.Version)
	return hex.EncodeToString(h.Sum(nil))
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s@%d n=%d %s", k.Kind, k.Workload, k.Scale, k.MaxInsts, k.Config)
}

// header is the self-describing first line of a record file.
type header struct {
	Schema string `json:"schema"`
	Key    Key    `json:"key"`
	Len    int    `json:"len"`
	SHA256 string `json:"sha256"`
}

// Stats are the store's monotonic operation counters.
type Stats struct {
	Hits    uint64 // Get found a verified record
	Misses  uint64 // Get found nothing
	Writes  uint64 // Put committed a record
	Corrupt uint64 // records quarantined after failing verification
}

// Store is a content-addressed artifact store rooted at one directory.
type Store struct {
	root string
	fs   FS

	// log receives one line per notable event (quarantine, resume
	// hit). Held behind an atomic pointer so SetLog is safe at any
	// time, including while other goroutines read and write records —
	// a long-running service attaches and detaches logging without a
	// quiesce.
	log atomic.Pointer[func(format string, args ...any)]

	hits    atomic.Uint64
	misses  atomic.Uint64
	writes  atomic.Uint64
	corrupt atomic.Uint64
}

// SetLog installs fn as the store's event log hook (nil disables
// logging). Safe to call concurrently with any other store operation.
func (s *Store) SetLog(fn func(format string, args ...any)) {
	if fn == nil {
		s.log.Store(nil)
		return
	}
	s.log.Store(&fn)
}

// Open opens (creating as needed) the store rooted at dir and sweeps
// any temporary-file debris a previous crash left behind.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, OS())
}

// OpenFS is Open over an explicit filesystem seam — the entry point
// the storage-fault chaos harness uses to interpose faultfs between
// the store and the disk.
func OpenFS(dir string, fs FS) (*Store, error) {
	s := &Store{root: dir, fs: fs}
	for _, sub := range []string{s.objectsDir(), s.quarantineDir()} {
		if err := fs.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if _, err := sweepTemp(fs, s.objectsDir()); err != nil {
		return nil, fmt.Errorf("store: sweeping temp files: %w", err)
	}
	return s, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.root }

func (s *Store) objectsDir() string    { return filepath.Join(s.root, "objects") }
func (s *Store) quarantineDir() string { return filepath.Join(s.root, "quarantine") }

// path shards records by the first hash byte so one directory never
// accumulates every object.
func (s *Store) path(k Key) string {
	h := k.Hash()
	return filepath.Join(s.objectsDir(), h[:2], h)
}

func (s *Store) logf(format string, args ...any) {
	if fn := s.log.Load(); fn != nil {
		(*fn)(format, args...)
	}
}

// Stats reports the operation counters accumulated so far.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Writes:  s.writes.Load(),
		Corrupt: s.corrupt.Load(),
	}
}

// Publish copies the operation counters into reg. The harness_ prefix
// marks them as run-provenance metrics: they describe how this run
// obtained its results (recomputed vs resumed), not what the results
// are, so a resumed and an uninterrupted campaign legitimately differ
// here and nowhere else.
func (s *Store) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := s.Stats()
	reg.Counter("harness_store_hits_total", "store reads satisfied by a verified record", nil).Add(st.Hits)
	reg.Counter("harness_store_misses_total", "store reads that found no record", nil).Add(st.Misses)
	reg.Counter("harness_store_writes_total", "records committed to the store", nil).Add(st.Writes)
	reg.Counter("harness_store_corrupt_total", "records quarantined after failing verification", nil).Add(st.Corrupt)
}

// encodePayload serializes v: types providing their own binary codec
// (e.g. cpu.Trace's packed record format) use it; everything else
// goes through gob.
func encodePayload(v any) ([]byte, error) {
	if m, ok := v.(encoding.BinaryMarshaler); ok {
		return m.MarshalBinary()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodePayload(data []byte, v any) error {
	if u, ok := v.(encoding.BinaryUnmarshaler); ok {
		return u.UnmarshalBinary(data)
	}
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// Put serializes v and commits it under k atomically. An existing
// record for k is replaced (same key means same inputs, so the bytes
// should agree; replacement also self-heals a quarantined key).
func (s *Store) Put(k Key, v any) error {
	payload, err := encodePayload(v)
	if err != nil {
		return fmt.Errorf("store: encoding %s: %w", k, err)
	}
	sum := sha256.Sum256(payload)
	hdr, err := json.Marshal(header{
		Schema: RecordSchema,
		Key:    k,
		Len:    len(payload),
		SHA256: hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	rec := make([]byte, 0, len(magic)+len(hdr)+1+len(payload))
	rec = append(rec, magic...)
	rec = append(rec, hdr...)
	rec = append(rec, '\n')
	rec = append(rec, payload...)
	if err := WriteFileAtomicFS(s.fs, s.path(k), rec, 0o644); err != nil {
		return fmt.Errorf("store: writing %s: %w", k, err)
	}
	s.writes.Add(1)
	return nil
}

// Get looks k up and decodes the stored payload into v (a pointer).
// It reports whether a verified record was found. A record that fails
// verification is quarantined and reported as a miss — the caller
// recomputes — so corruption degrades to a cache miss, never a failed
// run. The returned error is reserved for environmental problems
// (I/O, permissions), not data problems.
func (s *Store) Get(k Key, v any) (bool, error) {
	path := s.path(k)
	data, err := s.fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		s.misses.Add(1)
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: reading %s: %w", k, err)
	}
	if err := verify(data, k, v); err != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		if qerr := s.quarantine(path); qerr != nil {
			return false, fmt.Errorf("store: quarantining %s: %v (after: %w)", k, qerr, err)
		}
		s.logf("store: quarantined %s: %v", k, err)
		return false, nil
	}
	s.hits.Add(1)
	return true, nil
}

// verify checks a raw record against its key and decodes the payload
// into v. Every failure wraps ErrCorrupt.
func verify(data []byte, k Key, v any) error {
	rest, ok := bytes.CutPrefix(data, []byte(magic))
	if !ok {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return fmt.Errorf("%w: unterminated header", ErrCorrupt)
	}
	var hdr header
	if err := json.Unmarshal(rest[:nl], &hdr); err != nil {
		return fmt.Errorf("%w: malformed header: %v", ErrCorrupt, err)
	}
	if hdr.Schema != RecordSchema {
		return fmt.Errorf("%w: schema %q, want %q", ErrCorrupt, hdr.Schema, RecordSchema)
	}
	if hdr.Key != k {
		return fmt.Errorf("%w: record key %v does not match requested %v", ErrCorrupt, hdr.Key, k)
	}
	payload := rest[nl+1:]
	if len(payload) != hdr.Len {
		return fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorrupt, len(payload), hdr.Len)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != hdr.SHA256 {
		return fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	if err := decodePayload(payload, v); err != nil {
		return fmt.Errorf("%w: undecodable payload: %v", ErrCorrupt, err)
	}
	return nil
}

// quarantine moves a failed record aside for post-mortem instead of
// deleting evidence; a numbered suffix keeps repeated quarantines of
// one key from clobbering each other.
func (s *Store) quarantine(path string) error {
	base := filepath.Base(path)
	dst := filepath.Join(s.quarantineDir(), base)
	for i := 1; ; i++ {
		if _, err := s.fs.Stat(dst); errors.Is(err, os.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.quarantineDir(), fmt.Sprintf("%s.%d", base, i))
	}
	return s.fs.Rename(path, dst)
}

// Len reports how many committed records the store holds (quarantined
// records excluded).
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.Walk(s.objectsDir(), func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			n++
		}
		return nil
	})
	return n, err
}

// Quarantined reports how many records have been moved to quarantine
// over the store directory's lifetime (including prior processes).
func (s *Store) Quarantined() (int, error) {
	n := 0
	err := filepath.Walk(s.quarantineDir(), func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			n++
		}
		return nil
	})
	return n, err
}
