package store

import (
	"os"
	"path/filepath"
	"strings"
)

// tmpPrefix marks in-flight atomic writes. Files carrying it are
// invisible to readers and swept as crash debris by Open.
const tmpPrefix = ".tmp-"

// WriteFileAtomic writes data to path so that a reader (or a crash at
// any instant) observes either the old file or the complete new one,
// never a truncated mix: the bytes land in a temporary file in the
// target directory, are synced to stable storage, and are renamed over
// path in one step. Parent directories are created as needed.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteFileAtomicFS(OS(), path, data, perm)
}

// WriteFileAtomicFS is WriteFileAtomic over an explicit FS — the seam
// the fault-injection harness uses to fail the write at any step of
// the temp/sync/rename protocol.
func WriteFileAtomicFS(fs FS, path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := fs.CreateTemp(dir, tmpPrefix+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fs.Chmod(tmp, perm)
	}
	if err == nil {
		err = fs.Rename(tmp, path)
	}
	if err != nil {
		fs.Remove(tmp)
		return err
	}
	return nil
}

// sweepTemp removes leftover tmpPrefix files under dir — the debris a
// SIGKILL mid-write leaves behind. Rename is atomic, so anything still
// carrying the prefix never became visible and is safe to delete.
func sweepTemp(fs FS, dir string) (removed int, err error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		path := filepath.Join(dir, e.Name())
		if e.IsDir() {
			n, err := sweepTemp(fs, path)
			removed += n
			if err != nil {
				return removed, err
			}
			continue
		}
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			if rmErr := fs.Remove(path); rmErr == nil {
				removed++
			}
		}
	}
	return removed, nil
}
