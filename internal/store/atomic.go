package store

import (
	"os"
	"path/filepath"
	"strings"
)

// tmpPrefix marks in-flight atomic writes. Files carrying it are
// invisible to readers and swept as crash debris by Open.
const tmpPrefix = ".tmp-"

// WriteFileAtomic writes data to path so that a reader (or a crash at
// any instant) observes either the old file or the complete new one,
// never a truncated mix: the bytes land in a temporary file in the
// target directory, are synced to stable storage, and are renamed over
// path in one step. Parent directories are created as needed.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, tmpPrefix+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp, perm)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// sweepTemp removes leftover tmpPrefix files under dir — the debris a
// SIGKILL mid-write leaves behind. Rename is atomic, so anything still
// carrying the prefix never became visible and is safe to delete.
func sweepTemp(dir string) (removed int, err error) {
	walkErr := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasPrefix(filepath.Base(path), tmpPrefix) {
			if rmErr := os.Remove(path); rmErr == nil {
				removed++
			}
		}
		return nil
	})
	return removed, walkErr
}
