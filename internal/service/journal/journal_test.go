package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/store/faultfs"
)

func jobRec(i int) Record {
	return Record{T: TypeJob, Job: fmt.Sprintf("c%04d", i), Tenant: "t", Req: json.RawMessage(`{"workloads":["li"]}`)}
}

func collect(t *testing.T, j *Journal) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	stats, err := j.Replay(func(r Record) { recs = append(recs, r) })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := []Record{
		{T: TypeJob, Job: "c0000", Tenant: "alpha", IdemKey: "k-1", Req: json.RawMessage(`{"scale":1}`)},
		{T: TypeEvent, Job: "c0000", Seq: 0, Unit: 0, State: "running"},
		{T: TypeEvent, Job: "c0000", Seq: 1, Unit: 0, State: "done", Result: json.RawMessage(`{"ipc":1.5}`)},
		{T: TypeEnd, Job: "c0000", State: "complete"},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got, stats := collect(t, j2)
	if stats.Corrupt != 0 || stats.Torn != 0 {
		t.Fatalf("clean journal replayed with corrupt=%d torn=%d", stats.Corrupt, stats.Torn)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, _ := json.Marshal(got[i])
		w, _ := json.Marshal(want[i])
		if string(g) != string(w) {
			t.Fatalf("record %d = %s, want %s", i, g, w)
		}
	}
}

// TestFreshSegmentPerProcess checks each Open starts a new segment, so
// a successor never appends to (and can never tear) a predecessor's
// file.
func TestFreshSegmentPerProcess(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		j, err := Open(dir)
		if err != nil {
			t.Fatalf("Open %d: %v", i, err)
		}
		if err := j.Append(jobRec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		j.Close()
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			segs++
		}
	}
	if segs != 3 {
		t.Fatalf("3 generations left %d segments, want 3", segs)
	}
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	recs, _ := collect(t, j)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records across segments, want 3", len(recs))
	}
}

// TestTornTailTolerated truncates the newest segment mid-record — the
// exact debris of a SIGKILL during an append — and checks replay keeps
// every complete record, counts one torn tail, and quarantines
// nothing (a torn tail is expected crash debris, not corruption).
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(jobRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	seg := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs, stats := collect(t, j2)
	if len(recs) != 4 || stats.Torn != 1 || stats.Corrupt != 0 || stats.Quarantined != 0 {
		t.Fatalf("got %d records, stats %+v; want 4 records, torn=1, corrupt=0, quarantined=0", len(recs), stats)
	}
}

// TestCorruptRecordSkippedAndQuarantined flips bytes inside one record
// of a multi-record segment: replay must drop exactly that record,
// keep both its predecessors and successors, and capture the segment
// in quarantine/.
func TestCorruptRecordSkippedAndQuarantined(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(jobRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	seg := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	// lines[0] is the header; corrupt the payload of the middle record.
	mid := 3
	lines[mid] = strings.Replace(lines[mid], `"t":"job"`, `"t":"JOB"`, 1)
	if err := os.WriteFile(seg, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs, stats := collect(t, j2)
	if len(recs) != 4 || stats.Corrupt != 1 || stats.Quarantined != 1 {
		t.Fatalf("got %d records, stats %+v; want 4 records, corrupt=1, quarantined=1", len(recs), stats)
	}
	for _, r := range recs {
		if r.Job == "c0002" {
			t.Fatal("the corrupted record leaked through replay")
		}
	}
	if n, err := j2.Quarantined(); err != nil || n != 1 {
		t.Fatalf("Quarantined() = %d, %v; want 1", n, err)
	}
	// A second replay of the same damage reuses the existing capture.
	_, stats = collect(t, j2)
	if stats.Quarantined != 0 {
		t.Fatalf("re-replay quarantined %d more copies of the same segment", stats.Quarantined)
	}
}

// TestAppendFaultResync drives an append through an injected short
// write — a torn partial line — and checks the next append starts on a
// fresh line so only the faulted record is lost.
func TestAppendFaultResync(t *testing.T) {
	// Op 1: op 0 is the segment header write; op 1 is the first record.
	fs := faultfs.New(nil, &faultfs.Plan{Faults: []faultfs.Fault{{Kind: faultfs.ShortWrite, Op: 1}}}, t.Logf)
	dir := t.TempDir()
	j, err := OpenFS(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(jobRec(0)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("faulted append err = %v, want injected", err)
	}
	for i := 1; i < 4; i++ {
		if err := j.Append(jobRec(i)); err != nil {
			t.Fatalf("append %d after resync: %v", i, err)
		}
	}
	j.Close()

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs, stats := collect(t, j2)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want the 3 post-fault appends (stats %+v)", len(recs), stats)
	}
	if stats.Corrupt != 1 {
		t.Fatalf("the torn half-line should scan as 1 corrupt line, stats %+v", stats)
	}
	if recs[0].Job != "c0001" {
		t.Fatalf("first surviving record is %s, want c0001", recs[0].Job)
	}
}

// TestReplayRetriesTransientReadError: a journal segment read that
// fails once (EIO-class transient trouble) is retried before the
// segment is abandoned — no records may be lost to a transient fault.
func TestReplayRetriesTransientReadError(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(jobRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	fs := faultfs.New(nil, &faultfs.Plan{Faults: []faultfs.Fault{{Kind: faultfs.ReadEIO, Op: 0}}}, t.Logf)
	j2, err := OpenFS(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs, _ := collect(t, j2)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records through a transient read fault, want 3", len(recs))
	}
	if fs.Fired() != 1 {
		t.Fatalf("fault fired %d times, want 1", fs.Fired())
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(false)
	big := strings.Repeat("x", 64<<10)
	n := DefaultSegmentCap/(64<<10) + 4
	for i := 0; i < n; i++ {
		if err := j.Append(Record{T: TypeEvent, Job: "c0000", Seq: i, Error: big}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, err := j.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("%d oversized appends stayed in %d segment(s), want rotation", n, len(segs))
	}
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs, _ := collect(t, j2)
	if len(recs) != n {
		t.Fatalf("replayed %d records across rotated segments, want %d", len(recs), n)
	}
}

// TestConcurrentCorruptionHammer is the journal's adversarial
// integrity test: many goroutines append concurrently while byte
// flips land in already-closed segments and replays run in parallel.
// Invariants: (1) no append is torn by another — every record a
// generation wrote and did not later have corrupted replays intact;
// (2) corrupted records are skipped and their segments quarantined,
// never decoded; (3) the final replay recovers exactly the uncorrupted
// set. Run under -race this also proves the locking discipline.
func TestConcurrentCorruptionHammer(t *testing.T) {
	dir := t.TempDir()

	const (
		generations = 4
		writers     = 8
		perWriter   = 25
	)
	written := make(map[string]bool)
	corrupted := make(map[string]bool)

	for gen := 0; gen < generations; gen++ {
		j, err := Open(dir)
		if err != nil {
			t.Fatalf("gen %d Open: %v", gen, err)
		}
		j.SetSync(false) // hammer throughput; crash durability is covered elsewhere

		var wg sync.WaitGroup
		var mu sync.Mutex
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					id := fmt.Sprintf("g%d-w%d-%d", gen, w, i)
					if err := j.Append(Record{T: TypeJob, Job: id, Tenant: "hammer"}); err != nil {
						t.Errorf("append %s: %v", id, err)
						return
					}
					mu.Lock()
					written[id] = true
					mu.Unlock()
				}
			}(w)
		}
		// Concurrent replays exercise read-during-append; results are
		// discarded (a replay racing appends sees a valid prefix).
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := j.Replay(func(Record) {}); err != nil {
				t.Errorf("concurrent replay: %v", err)
			}
		}()
		wg.Wait()
		j.Close()

		// Adversary: flip bytes inside one committed record of this
		// generation's segment. splitmix64-free determinism: always the
		// second record line.
		seg := filepath.Join(dir, segName(gen))
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(string(data), "\n")
		if len(lines) > 2 {
			victim := lines[2]
			var rec Record
			if r, err := parseLine([]byte(strings.TrimSuffix(victim, "\n"))); err == nil {
				rec = r
			} else {
				t.Fatalf("gen %d victim line unparseable before corruption: %v", gen, err)
			}
			corrupted[rec.Job] = true
			flipped := []byte(victim)
			flipped[len(flipped)/2] ^= 0xFF
			lines[2] = string(flipped)
			if err := os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := make(map[string]bool)
	stats, err := j.Replay(func(r Record) {
		if got[r.Job] {
			t.Errorf("record %s replayed twice", r.Job)
		}
		got[r.Job] = true
	})
	if err != nil {
		t.Fatal(err)
	}

	for id := range written {
		switch {
		case corrupted[id] && got[id]:
			t.Errorf("corrupted record %s leaked through replay", id)
		case !corrupted[id] && !got[id]:
			t.Errorf("intact record %s lost", id)
		}
	}
	for id := range got {
		if !written[id] {
			t.Errorf("replay invented record %s", id)
		}
	}
	if stats.Corrupt != len(corrupted) {
		t.Errorf("stats.Corrupt = %d, want %d", stats.Corrupt, len(corrupted))
	}
	// Mid-hammer replays may already have captured earlier generations'
	// damage, so assert the lifetime total rather than this pass's count.
	if n, err := j.Quarantined(); err != nil || n != len(corrupted) {
		t.Errorf("Quarantined() = %d, %v; want %d (one per damaged segment)", n, err, len(corrupted))
	}
	want := len(written) - len(corrupted)
	if len(got) != want {
		t.Errorf("recovered %d records, want %d (of %d written, %d corrupted)", len(got), want, len(written), len(corrupted))
	}
}

// TestConcurrentRotationExactlyOnce drives concurrent appenders across
// several segment-rotation boundaries and then replays: every record
// must come back exactly once — rotation must neither drop the record
// that triggered it nor let two segments both carry it. The hammer
// above corrupts closed segments; this one leaves the bytes alone so
// any discrepancy is the rotation path's fault. SetSegmentCap shrinks
// the threshold so the test crosses real boundaries without writing
// 4MB per crossing; the check itself is cap-independent.
func TestConcurrentRotationExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(false)
	j.SetSegmentCap(8 << 10)

	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := Record{T: TypeEvent, Job: fmt.Sprintf("c%04d", w), Seq: i,
					State: "done", Error: strings.Repeat("p", 100)}
				if err := j.Append(rec); err != nil {
					t.Errorf("writer %d append %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	seen := make(map[string]int)
	stats, err := j2.Replay(func(r Record) {
		seen[fmt.Sprintf("%s/%d", r.Job, r.Seq)]++
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments < 3 {
		t.Fatalf("replay saw %d segments; the cap should have forced several rotations", stats.Segments)
	}
	if stats.Corrupt != 0 || stats.Torn != 0 {
		t.Fatalf("clean rotation produced corrupt=%d torn=%d", stats.Corrupt, stats.Torn)
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), writers*perWriter)
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("record %s replayed %d times", key, n)
		}
	}
}
