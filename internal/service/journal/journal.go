// Package journal is arld's write-ahead job journal: the durability
// layer that makes the campaign service crash-restartable. Every
// accepted job and every unit state transition is appended as a
// checksummed record *before* the in-memory state changes, so that on
// restart the service replays the journal and reconstructs exactly the
// jobs, unit states, results and event streams (with their sequence
// numbers) that clients had already observed; incomplete units are
// re-enqueued and recompute through the artifact-store memo.
//
// On-disk format (schema "arl-journal/v1"): a directory of append-only
// segment files seg-NNNNNNNN.wal. Each process opens a fresh segment —
// never appending to a predecessor's — so a crash can tear at most the
// tail of the newest segment a dead process was writing. A segment
// opens with a header line
//
//	arljournal1 {"schema":"arl-journal/v1","segment":N}
//
// followed by one record per line:
//
//	r <crc32c-hex> <len> <json>
//
// where the checksum and length cover the JSON bytes. Replay verifies
// every line: a record that fails framing, length or checksum is
// skipped (and the segment copied into quarantine/ for post-mortem)
// while every intact record — before or after the damage — is
// recovered; newline framing makes the scan self-resynchronizing. A
// torn final line of the newest segment is the expected signature of a
// crash mid-append and is counted separately from corruption.
//
// All I/O goes through the store's FS seam, so the storage-fault chaos
// harness (internal/store/faultfs) can fail appends, fsyncs and reads
// at exact operation indices. A failed or short append leaves the
// active segment dirty; the next append re-synchronizes by starting on
// a fresh line, sacrificing at most the record the fault already lost.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/store"
)

// Schema identifies the on-disk journal format; bump on any
// incompatible change to the segment header or record framing.
const Schema = "arl-journal/v1"

// segment header magic; the header JSON follows on the same line.
const magic = "arljournal1 "

// recPrefix opens every record line.
const recPrefix = "r "

// DefaultSegmentCap is the rotation threshold: an append that would
// grow the active segment past this many bytes rotates to a fresh
// segment first.
const DefaultSegmentCap = 4 << 20

// ErrCorrupt marks a journal line that failed verification; replay
// counts and skips such lines rather than surfacing this error, but
// tools inspecting segments directly can classify with it.
var ErrCorrupt = errors.New("journal: corrupt record")

// crcTable is the Castagnoli polynomial — hardware-accelerated and the
// standard choice for storage checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record types.
const (
	// TypeJob records an accepted campaign: its ID, tenant, idempotency
	// key and the full request (from which the unit list deterministically
	// re-expands).
	TypeJob = "job"
	// TypeEvent records one unit state transition, mirroring the
	// service's NDJSON event stream (same Seq numbering) plus the
	// result payload on completion.
	TypeEvent = "event"
	// TypeEnd records a job reaching its terminal state.
	TypeEnd = "end"
	// TypeLease records a unit being leased to a remote worker under a
	// fencing token. Leases themselves do not survive a restart (the
	// unit re-enqueues from its Running state), but the token high-water
	// mark must: recovery folds the maximum journaled token back into
	// the lease table so post-restart grants keep fencing pre-crash
	// zombies.
	TypeLease = "lease"
)

// Record is one journaled fact.
type Record struct {
	T   string `json:"t"`
	Job string `json:"job"`

	// TypeJob fields.
	Tenant  string          `json:"tenant,omitempty"`
	IdemKey string          `json:"idem,omitempty"`
	Req     json.RawMessage `json:"req,omitempty"`

	// TypeEvent fields.
	Seq     int             `json:"seq,omitempty"`
	Unit    int             `json:"unit,omitempty"`  // also TypeLease's unit index
	State   string          `json:"state,omitempty"` // also TypeEnd's final job state
	Deduped bool            `json:"deduped,omitempty"`
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`

	// TypeLease fields.
	Token  uint64 `json:"token,omitempty"`
	Worker string `json:"worker,omitempty"`
}

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	Segments    int // segment files scanned
	Records     int // records recovered intact
	Corrupt     int // lines that failed framing/length/checksum
	Torn        int // torn tails (crash mid-append signatures)
	Quarantined int // segments copied to quarantine/ this pass
}

// Journal is an open write-ahead journal rooted at one directory.
// Appends are serialized and safe for concurrent use.
type Journal struct {
	fs   store.FS
	dir  string
	sync bool

	mu      sync.Mutex
	active  store.File
	size    int
	segCap  int  // rotation threshold; 0 = DefaultSegmentCap
	seg     int  // active segment number
	dirty   bool // a failed append may have left a partial line
	appends int
}

// Open opens (creating as needed) the journal at dir and starts a
// fresh active segment.
func Open(dir string) (*Journal, error) {
	return OpenFS(store.OS(), dir)
}

// OpenFS is Open over an explicit filesystem seam.
func OpenFS(fs store.FS, dir string) (*Journal, error) {
	j := &Journal{fs: fs, dir: dir, sync: true}
	for _, sub := range []string{dir, filepath.Join(dir, "quarantine")} {
		if err := fs.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	segs, err := j.segments()
	if err != nil {
		return nil, err
	}
	next := 0
	if n := len(segs); n > 0 {
		next = segs[n-1] + 1
	}
	if err := j.rotateLocked(next); err != nil {
		return nil, err
	}
	return j, nil
}

// SetSync controls whether every append fsyncs the segment (default
// true). Turning it off trades the durability of the newest records
// for append throughput; the record framing stays crash-safe either
// way.
func (j *Journal) SetSync(sync bool) {
	j.mu.Lock()
	j.sync = sync
	j.mu.Unlock()
}

// SetSegmentCap overrides the rotation threshold in bytes (<= 0
// restores DefaultSegmentCap). Tests use it to cross rotation
// boundaries without writing megabytes.
func (j *Journal) SetSegmentCap(n int) {
	j.mu.Lock()
	j.segCap = n
	j.mu.Unlock()
}

// Dir reports the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// Appends reports how many records have been appended by this process.
func (j *Journal) Appends() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

func segName(n int) string { return fmt.Sprintf("seg-%08d.wal", n) }

// segments lists the existing segment numbers in ascending order.
func (j *Journal) segments() ([]int, error) {
	entries, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%08d.wal", &n); err == nil && !e.IsDir() {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// rotateLocked closes the active segment (if any) and opens segment n
// with its header line. Callers hold j.mu (or are constructing).
func (j *Journal) rotateLocked(n int) error {
	if j.active != nil {
		j.active.Close()
		j.active = nil
	}
	f, err := j.fs.OpenAppend(filepath.Join(j.dir, segName(n)), 0o644)
	if err != nil {
		return fmt.Errorf("journal: opening segment %d: %w", n, err)
	}
	hdr, err := json.Marshal(struct {
		Schema  string `json:"schema"`
		Segment int    `json:"segment"`
	}{Schema, n})
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(append(append([]byte(magic), hdr...), '\n')); err != nil {
		f.Close()
		return fmt.Errorf("journal: writing segment %d header: %w", n, err)
	}
	j.active, j.seg, j.size, j.dirty = f, n, 0, false
	return nil
}

// Append journals one record: frame, checksum, write, and (unless
// SetSync(false)) fsync before returning, so a record Append accepted
// survives a crash an instant later. An append error leaves the
// journal usable — the next append re-synchronizes onto a fresh line —
// but the failed record is lost and the caller should surface that.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding record: %w", err)
	}
	line := fmt.Sprintf("%s%08x %d %s\n", recPrefix, crc32.Checksum(payload, crcTable), len(payload), payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	segCap := j.segCap
	if segCap <= 0 {
		segCap = DefaultSegmentCap
	}
	if j.size > segCap {
		if err := j.rotateLocked(j.seg + 1); err != nil {
			return err
		}
	}
	if j.dirty {
		// A previous append failed partway; terminate its debris so
		// this record starts on a fresh line. Best effort: if this
		// write fails too the journal just stays dirty.
		if _, err := j.active.Write([]byte{'\n'}); err != nil {
			return fmt.Errorf("journal: resynchronizing after failed append: %w", err)
		}
		j.dirty = false
	}
	if _, err := j.active.Write([]byte(line)); err != nil {
		j.dirty = true
		return fmt.Errorf("journal: appending: %w", err)
	}
	if j.sync {
		if err := j.active.Sync(); err != nil {
			// The bytes are written but their durability is unknown —
			// the fsyncgate lesson says treat the handle as suspect.
			// The line framing is intact, so no resync is needed.
			return fmt.Errorf("journal: syncing: %w", err)
		}
	}
	j.size += len(line)
	j.appends++
	return nil
}

// Close closes the active segment.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.active == nil {
		return nil
	}
	err := j.active.Close()
	j.active = nil
	return err
}

// Replay scans every segment in order and calls fn for each intact
// record. Damaged lines are counted and skipped; a segment holding any
// is copied into quarantine/ for post-mortem (the original stays, so
// its intact records survive future replays too). A transient read
// error on a segment is retried once before the segment is skipped.
// Replay may run concurrently with appends (it sees a prefix); the
// service replays before opening the queue, where the journal is
// quiescent.
func (j *Journal) Replay(fn func(Record)) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := j.segments()
	if err != nil {
		return stats, err
	}
	last := -1
	if len(segs) > 0 {
		last = segs[len(segs)-1]
	}
	for _, n := range segs {
		path := filepath.Join(j.dir, segName(n))
		data, err := j.fs.ReadFile(path)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			// One retry: EIO-class read trouble is often transient
			// (and the chaos harness injects exactly one fault per
			// address). A journal segment is too precious to abandon
			// on the first error.
			data, err = j.fs.ReadFile(path)
		}
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return stats, fmt.Errorf("journal: reading segment %d: %w", n, err)
		}
		stats.Segments++
		corrupt, torn := j.replaySegment(data, n == last && n == j.seg, fn, &stats)
		stats.Corrupt += corrupt
		stats.Torn += torn
		if corrupt > 0 {
			if captured, err := j.quarantine(path); err == nil && captured {
				stats.Quarantined++
			}
		}
	}
	return stats, nil
}

// replaySegment scans one segment's bytes. activeOwn marks the segment
// this process itself opened (its header is the only content and
// nothing in it needs replay — but scanning is harmless and keeps the
// logic uniform).
func (j *Journal) replaySegment(data []byte, activeOwn bool, fn func(Record), stats *ReplayStats) (corrupt, torn int) {
	_ = activeOwn
	// A well-formed segment ends in '\n'; anything after the last
	// newline is a torn tail (crash mid-append).
	tornTail := len(data) > 0 && data[len(data)-1] != '\n'
	lines := bytes.Split(data, []byte{'\n'})
	end := len(lines) - 1 // Split leaves a trailing "" after a final newline
	if tornTail {
		end = len(lines)
	}
	for i := 0; i < end; i++ {
		line := lines[i]
		if len(line) == 0 {
			continue // resync newline after a failed append
		}
		if i == end-1 && tornTail {
			torn++
			continue
		}
		if bytes.HasPrefix(line, []byte(magic)) {
			continue // segment header
		}
		rec, err := parseLine(line)
		if err != nil {
			corrupt++
			continue
		}
		stats.Records++
		fn(rec)
	}
	return corrupt, torn
}

// parseLine verifies one "r <crc> <len> <json>" line.
func parseLine(line []byte) (Record, error) {
	var rec Record
	rest, ok := bytes.CutPrefix(line, []byte(recPrefix))
	if !ok {
		return rec, fmt.Errorf("%w: bad record prefix", ErrCorrupt)
	}
	var sum uint32
	var n int
	sp2 := bytes.IndexByte(rest, ' ')
	if sp2 < 0 {
		return rec, fmt.Errorf("%w: unframed record", ErrCorrupt)
	}
	sp3 := bytes.IndexByte(rest[sp2+1:], ' ')
	if sp3 < 0 {
		return rec, fmt.Errorf("%w: unframed record", ErrCorrupt)
	}
	if _, err := fmt.Sscanf(string(rest[:sp2+1+sp3]), "%08x %d", &sum, &n); err != nil {
		return rec, fmt.Errorf("%w: malformed frame: %v", ErrCorrupt, err)
	}
	payload := rest[sp2+1+sp3+1:]
	if len(payload) != n {
		return rec, fmt.Errorf("%w: payload %d bytes, frame says %d", ErrCorrupt, len(payload), n)
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return rec, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("%w: undecodable payload: %v", ErrCorrupt, err)
	}
	return rec, nil
}

// quarantine copies a damaged segment aside for post-mortem. The
// original stays in place — its intact records are still live state —
// so repeated replays of the same damage reuse the existing copy;
// captured reports whether this call made a new one.
func (j *Journal) quarantine(path string) (captured bool, err error) {
	dst := filepath.Join(j.dir, "quarantine", filepath.Base(path))
	if _, err := j.fs.Stat(dst); err == nil {
		return false, nil // already captured
	}
	data, err := j.fs.ReadFile(path)
	if err != nil {
		return false, err
	}
	if err := store.WriteFileAtomicFS(j.fs, dst, data, 0o644); err != nil {
		return false, err
	}
	return true, nil
}

// Quarantined reports how many damaged segments have been captured
// over the journal directory's lifetime.
func (j *Journal) Quarantined() (int, error) {
	entries, err := j.fs.ReadDir(filepath.Join(j.dir, "quarantine"))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "seg-") {
			n++
		}
	}
	return n, nil
}
