package service

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cpu"
)

// Reproduces the unguarded write of unit.deduped in run() racing with
// the guarded read in results().
func TestResultsDedupedRace(t *testing.T) {
	svc := New(Config{Workers: 2}, nil)
	block := make(chan struct{})
	svc.testHook = func(u *unit, attempt int) error {
		<-block // hold the unit between the deduped write and finish
		return nil
	}
	status, err := svc.Submit(CampaignRequest{
		Tenant: "t", MaxInsts: 1000,
		Units: []UnitSpec{{Kind: KindSimulate, Workload: "li", Config: func() *cpu.Config { c := cpu.Conventional(2, 2); return &c }()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := svc.Job(status.ID)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			svc.results(j)
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(block)
	wg.Wait()
	svc.Drain()
}
