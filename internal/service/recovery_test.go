package service

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/service/journal"
	"repro/internal/store"
)

// journaledService builds a service over a journal (and store) rooted
// at dir, serving its handler. Recover is left to the caller so tests
// can observe the not-ready window.
func journaledService(t *testing.T, dir string, cfg Config) (*Service, *Client) {
	t.Helper()
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	jrn, err := journal.Open(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = jrn
	svc := New(cfg, st)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(svc.Drain)
	t.Cleanup(func() { jrn.Close() })
	return svc, &Client{Base: srv.URL, Tenant: "test"}
}

func getStatus(t *testing.T, base, path string) int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestReadyzWindows covers both 503 windows: before journal replay has
// finished and after drain begins. /healthz stays 200 throughout —
// the process is alive in both windows, it just must not be routed to.
func TestReadyzWindows(t *testing.T) {
	svc, cl := journaledService(t, t.TempDir(), Config{Workers: 1})

	// Window 1: journal not yet replayed.
	if code := getStatus(t, cl.Base, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before Recover = %d, want 503", code)
	}
	if code := getStatus(t, cl.Base, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz before Recover = %d, want 200", code)
	}
	if _, err := svc.Submit(CampaignRequest{Workloads: []string{"130.li"}, Configs: []string{"(2+0)"}}); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Submit before Recover: %v, want ErrNotReady", err)
	}

	if _, err := svc.Recover(); err != nil {
		t.Fatal(err)
	}
	if code := getStatus(t, cl.Base, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after Recover = %d, want 200", code)
	}

	// Window 2: draining.
	svc.Drain()
	if code := getStatus(t, cl.Base, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", code)
	}
	if code := getStatus(t, cl.Base, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", code)
	}
}

// TestJournalRecoveryRestoresFinishedJob runs a campaign to completion
// under generation 1, then rebuilds the service from the journal alone
// and checks the job is fully there: terminal state, per-unit results,
// the event stream with its original sequence numbers, and the
// idempotency key still routing to it.
func TestJournalRecoveryRestoresFinishedJob(t *testing.T) {
	dir := t.TempDir()
	req := CampaignRequest{
		MaxInsts:       testMaxInsts,
		IdempotencyKey: "recover-1",
		Workloads:      []string{"130.li"},
		Configs:        []string{"(2+0)", "(3+3)"},
	}

	svc1, cl1 := journaledService(t, dir, Config{Workers: 2})
	if _, err := svc1.Recover(); err != nil {
		t.Fatal(err)
	}
	resp1, err := cl1.Run(CampaignRequest{
		MaxInsts: req.MaxInsts, IdempotencyKey: req.IdempotencyKey,
		Workloads: req.Workloads, Configs: req.Configs,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := resp1.Status.ID
	var events1 []Event
	j1, _ := svc1.Job(id)
	events1, _, _ = j1.eventsFrom(0)
	svc1.Drain()

	// Generation 2: same journal dir, fresh everything else.
	svc2, cl2 := journaledService(t, dir, Config{Workers: 2})
	rs, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Jobs != 1 || rs.Finished != 1 || rs.Requeued != 0 {
		t.Fatalf("recover stats %+v, want 1 job, 1 finished, 0 requeued", rs)
	}
	status, err := cl2.Status(id)
	if err != nil {
		t.Fatalf("recovered job not served: %v", err)
	}
	if status.State != JobComplete || status.Done != 2 {
		t.Fatalf("recovered status %+v, want complete with 2 done", status)
	}
	resp2, err := cl2.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range resp2.Units {
		if u.State != StateDone || len(u.Result) == 0 {
			t.Fatalf("recovered unit %d: state %s, %d result bytes", i, u.State, len(u.Result))
		}
	}
	enc1, _ := json.Marshal(resp1.Units)
	enc2, _ := json.Marshal(resp2.Units)
	if string(enc1) != string(enc2) {
		t.Fatalf("recovered results differ:\n%s\n--- vs ---\n%s", enc1, enc2)
	}

	// The event stream replays with its original sequence numbers, so a
	// client that saw N events resumes at ?from=N exactly.
	j2, ok := svc2.Job(id)
	if !ok {
		t.Fatal("job missing after recovery")
	}
	events2, _, terminal := j2.eventsFrom(0)
	if !terminal {
		t.Fatal("recovered job not terminal in event stream")
	}
	if len(events1) != len(events2) {
		t.Fatalf("recovered %d events, want %d", len(events2), len(events1))
	}
	for i := range events1 {
		if events1[i].Seq != events2[i].Seq || events1[i].State != events2[i].State || events1[i].Unit != events2[i].Unit {
			t.Fatalf("event %d differs: %+v vs %+v", i, events1[i], events2[i])
		}
	}

	// The idempotency key survives the restart: a re-POST returns the
	// original, finished job.
	again, err := cl2.Submit(CampaignRequest{
		MaxInsts: req.MaxInsts, IdempotencyKey: req.IdempotencyKey,
		Workloads: req.Workloads, Configs: req.Configs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != id {
		t.Fatalf("idempotent re-POST after restart returned %s, want %s", again.ID, id)
	}
}

// TestJournalRecoveryRequeuesIncompleteUnits hand-writes a journal in
// which one unit finished and the other was mid-run at the crash, then
// recovers: the finished unit must keep its result without
// re-executing, the interrupted one must re-queue (with a fresh queued
// event continuing the sequence numbers) and run to completion.
func TestJournalRecoveryRequeuesIncompleteUnits(t *testing.T) {
	dir := t.TempDir()

	// Forge the dead predecessor's journal.
	cfg, err := ParseConfigName("(2+0)")
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := ParseConfigName("(3+3)")
	if err != nil {
		t.Fatal(err)
	}
	req := CampaignRequest{
		MaxInsts: testMaxInsts,
		Units: []UnitSpec{
			{Kind: KindSimulate, Workload: "130.li", Config: &cfg},
			{Kind: KindSimulate, Workload: "130.li", Config: &cfg2},
		},
	}
	reqEnc, _ := json.Marshal(req)
	// A sentinel cycle count no real simulation of this budget can
	// produce: seeing it back from /results proves the unit was served
	// from the journal, not re-executed.
	canned, _ := json.Marshal(cpu.Result{Cycles: 1<<40 + 7})
	jrn0, err := journal.Open(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []journal.Record{
		{T: journal.TypeJob, Job: "c0001", Tenant: "test", IdemKey: "forged", Req: reqEnc},
		{T: journal.TypeEvent, Job: "c0001", Seq: 0, Unit: 0, State: StateRunning},
		{T: journal.TypeEvent, Job: "c0001", Seq: 1, Unit: 0, State: StateDone, Result: canned},
		{T: journal.TypeEvent, Job: "c0001", Seq: 2, Unit: 1, State: StateRunning},
		// ...and here the process died, unit 1 mid-run.
	} {
		if err := jrn0.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jrn0.Close()

	svc, cl := journaledService(t, dir, Config{Workers: 2})
	rs, err := svc.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Jobs != 1 || rs.Finished != 0 || rs.Requeued != 1 {
		t.Fatalf("recover stats %+v, want 1 job, 0 finished, 1 requeued", rs)
	}
	status, err := cl.Wait("c0001")
	if err != nil {
		t.Fatal(err)
	}
	if status.State != JobComplete || status.Done != 2 {
		t.Fatalf("recovered job ended %+v, want complete with 2 done", status)
	}
	resp, err := cl.Results("c0001")
	if err != nil {
		t.Fatal(err)
	}
	// Unit 0 keeps the journaled (canned) result — proof it was served
	// from the journal, not re-executed.
	var unit0 cpu.Result
	if err := json.Unmarshal(resp.Units[0].Result, &unit0); err != nil {
		t.Fatal(err)
	}
	if unit0.Cycles != 1<<40+7 {
		t.Fatalf("finished unit re-executed: cycles %d, want the journaled sentinel", unit0.Cycles)
	}
	if resp.Units[1].State != StateDone || len(resp.Units[1].Result) == 0 {
		t.Fatalf("requeued unit: %+v", resp.Units[1])
	}

	// The reset emitted a fresh queued event continuing the sequence:
	// seq 3 = unit 1 back to queued, then its re-run.
	j, _ := svc.Job("c0001")
	events, _, _ := j.eventsFrom(3)
	if len(events) == 0 || events[0].Seq != 3 || events[0].State != StateQueued || events[0].Unit != 1 {
		t.Fatalf("expected seq-3 queued reset event for unit 1, got %+v", events)
	}
}

// TestIdempotencyKeysAreTenantScoped: the same key from two tenants
// must create two jobs — one tenant cannot read another's campaign by
// guessing keys.
func TestIdempotencyKeysAreTenantScoped(t *testing.T) {
	svc, _, _ := testService(t, Config{Workers: 1}, false)
	hold := make(chan struct{})
	defer close(hold)
	svc.testHook = func(*unit, int) error { <-hold; return nil }

	req := CampaignRequest{
		MaxInsts: testMaxInsts, IdempotencyKey: "shared-key",
		Workloads: []string{"130.li"}, Configs: []string{"(2+0)"},
	}
	reqA := req
	reqA.Tenant = "alpha"
	a1, err := svc.Submit(reqA)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := svc.Submit(reqA)
	if err != nil {
		t.Fatal(err)
	}
	if a1.ID != a2.ID {
		t.Fatalf("same tenant, same key: jobs %s and %s", a1.ID, a2.ID)
	}
	reqB := req
	reqB.Tenant = "beta"
	b, err := svc.Submit(reqB)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID == a1.ID {
		t.Fatalf("tenants alpha and beta shared job %s through one key", b.ID)
	}
}

// TestSlowEventSubscriberDropped attaches a subscriber that never
// reads, floods the stream past the socket buffers, and checks the
// write deadline drops it (counter) instead of wedging the handler
// while a healthy subscriber keeps streaming.
func TestSlowEventSubscriberDropped(t *testing.T) {
	svc, cl, _ := testService(t, Config{
		Workers: 2, QueueCap: 2048, EventWriteTimeout: 150 * time.Millisecond,
	}, false)
	// Every unit fails instantly with a fat error payload — event
	// volume without simulation cost. The last unit blocks forever so
	// the job stays non-terminal and the handler must keep writing.
	hold := make(chan struct{})
	defer close(hold)
	const units = 600
	payload := strings.Repeat("x", 8192)
	svc.testHook = func(u *unit, _ int) error {
		if u.index == units-1 {
			<-hold
			return nil
		}
		return errors.New(payload)
	}
	cfg, err := ParseConfigName("(2+0)")
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]UnitSpec, units)
	for i := range specs {
		specs[i] = UnitSpec{Kind: KindSimulate, Workload: "130.li", Config: &cfg}
	}
	status, err := svc.Submit(CampaignRequest{MaxInsts: testMaxInsts, Units: specs})
	if err != nil {
		t.Fatal(err)
	}

	// The pathological subscriber: a raw connection that sends the
	// request and then never reads a byte.
	conn, err := net.Dial("tcp", strings.TrimPrefix(cl.Base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt := "GET /api/v1/campaigns/" + status.ID + "/events HTTP/1.1\r\nHost: arld\r\n\r\n"
	if _, err := conn.Write([]byte(fmt)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for counterValue(svc.reg, "service_events_dropped_subscribers_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow subscriber never dropped")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A healthy subscriber attached after the drop still streams: the
	// service, not just the socket, survived the slow client.
	got, err := cl.Status(status.ID)
	if err != nil || got.Failed == 0 {
		t.Fatalf("service wedged after dropping slow subscriber: %+v, %v", got, err)
	}
}
