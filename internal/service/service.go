package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/service/fleet"
	"repro/internal/service/journal"
	"repro/internal/store"
	"repro/internal/workload"
)

// Config shapes one Service.
type Config struct {
	// Workers bounds the pool executing units (0 = GOMAXPROCS).
	Workers int
	// QueueCap bounds the unit queue; a submission that does not fit
	// is rejected with 429 (0 = DefaultQueueCap).
	QueueCap int
	// TenantCap bounds one tenant's queued+running units; a submission
	// that would exceed it is rejected with 429 (0 = QueueCap).
	TenantCap int
	// UnitTimeout, when positive, is the per-stage watchdog handed to
	// the runners (see experiments.Runner.WorkloadTimeout).
	UnitTimeout time.Duration
	// Retries re-attempts a failed unit up to this many times with
	// deterministic backoff keyed by the request seed.
	Retries int
	// BreakerThreshold trips a workload's circuit breaker after this
	// many consecutive unit failures (0 = resilience default).
	BreakerThreshold int
	// BreakerCooldown overrides the breaker's half-open probe cooldown,
	// counted in rejected arrivals (0 = resilience default).
	BreakerCooldown int
	// Journal, when non-nil, makes the service crash-restartable: every
	// accepted job and unit state transition is written ahead to it,
	// and the service stays not-ready (submissions rejected with
	// ErrNotReady, /readyz 503) until Recover has replayed it.
	Journal *journal.Journal
	// EventWriteTimeout bounds one write to an /events subscriber; a
	// subscriber that stops reading past its socket buffers is dropped
	// after this long instead of wedging the handler forever (0 =
	// DefaultEventWriteTimeout). A dropped subscriber re-attaches with
	// ?from=N.
	EventWriteTimeout time.Duration
	// LeaseTTL is the remote-worker lease lifetime in lease-clock ticks
	// (0 = fleet.DefaultTTL). The lease clock advances on lease-API
	// arrivals and explicit TickLeases calls, never on the wall clock.
	LeaseTTL int
	// CoordinatorOnly suppresses the in-process worker pool: every unit
	// must be pulled by a remote arlworker through the lease API. The
	// queue, journal, dedupe and event machinery are unchanged.
	CoordinatorOnly bool
	// Log receives one line per notable event (nil for silence).
	Log io.Writer
}

// DefaultQueueCap bounds the unit queue when Config.QueueCap is zero.
const DefaultQueueCap = 1024

// DefaultEventWriteTimeout bounds one /events write when
// Config.EventWriteTimeout is zero.
const DefaultEventWriteTimeout = 30 * time.Second

// Submission rejections, mapped onto HTTP statuses by the handler.
var (
	ErrDraining  = errors.New("service: draining, not accepting campaigns")
	ErrQueueFull = errors.New("service: unit queue full")
	ErrQuota     = errors.New("service: tenant quota exceeded")
	// ErrNotReady rejects submissions between startup and the end of
	// journal replay; clients retry (the window is one Recover call).
	ErrNotReady = errors.New("service: recovering journal, not ready")
	// ErrJournal rejects a submission whose write-ahead record could
	// not be persisted: accepting it would break the crash-restart
	// guarantee, so the client must retry.
	ErrJournal = errors.New("service: journal write failed")
)

// runnerKey classes runners by the campaign shaping that participates
// in artifact identity: two requests with the same scale and budget
// share one Runner and therefore its in-process memos.
type runnerKey struct {
	scale    int
	maxInsts uint64
}

// unit is one queued piece of work.
type unit struct {
	job     *job
	index   int
	spec    UnitSpec
	key     string
	state   string // guarded by job.mu
	deduped bool
	errText string
	result  json.RawMessage
}

// job is one accepted campaign.
type job struct {
	id     string
	tenant string
	req    CampaignRequest
	units  []*unit

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	events   []Event       // ascending by Seq; contiguous except after corrupt-journal recovery
	nextSeq  int           // next event sequence number (survives restarts)
	notify   chan struct{} // closed and replaced on every event
	state    string
	drained  bool // ended by a server drain, not by its own units
	counts   map[string]int
	deduped  int
	done     chan struct{}
	finished bool
}

// Service is the sharded campaign engine behind arld.
type Service struct {
	cfg   Config
	store *store.Store
	reg   *obs.Registry

	queue chan *unit
	stop  chan struct{}
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	nextJob  int
	leased   int // units out on remote leases; they keep their queue-capacity slot
	runners  map[runnerKey]*experiments.Runner
	seen     map[string]struct{} // unit keys computed (or claimed) by this process
	tenant   map[string]int      // queued+running units per tenant
	idem     map[string]string   // tenant-scoped idempotency key -> job id

	leases *fleet.Table

	jrn   *journal.Journal
	ready atomic.Bool // false while the journal replays and once draining

	breaker  *resilience.Breaker
	inflight atomic.Int64

	// testHook, when non-nil, runs before each unit execution attempt;
	// an error it returns fails that attempt. Tests use it to simulate
	// worker crashes and slow units.
	testHook func(u *unit, attempt int) error
}

// New starts a Service: its worker pool runs until Drain.
func New(cfg Config, st *store.Store) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.TenantCap <= 0 {
		cfg.TenantCap = cfg.QueueCap
	}
	s := &Service{
		cfg:     cfg,
		store:   st,
		reg:     obs.NewRegistry(),
		queue:   make(chan *unit, cfg.QueueCap),
		stop:    make(chan struct{}),
		jobs:    make(map[string]*job),
		runners: make(map[runnerKey]*experiments.Runner),
		seen:    make(map[string]struct{}),
		tenant:  make(map[string]int),
		idem:    make(map[string]string),
		jrn:     cfg.Journal,
		breaker: resilience.NewBreaker(cfg.BreakerThreshold),
		leases:  fleet.NewTable(cfg.LeaseTTL),
	}
	if cfg.BreakerCooldown > 0 {
		s.breaker.SetCooldown(cfg.BreakerCooldown)
	}
	// A journal-less service has nothing to replay; a journaled one
	// stays not-ready until Recover walks the log.
	s.ready.Store(cfg.Journal == nil)
	if !cfg.CoordinatorOnly {
		for i := 0; i < cfg.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	return s
}

// Ready reports whether the service is accepting submissions: journal
// replay has finished (or no journal is configured) and Drain has not
// begun. /readyz serves this; /healthz stays true the whole time.
func (s *Service) Ready() bool { return s.ready.Load() }

// Registry exposes the service metrics registry (for /metrics and
// tests).
func (s *Service) Registry() *obs.Registry { return s.reg }

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "arld: "+format+"\n", args...)
	}
}

// runner returns (creating on first use) the shared Runner for one
// (scale, maxInsts) class. All runners share the service's store —
// the cross-restart, cross-client cache tier — and its registry.
func (s *Service) runner(scale int, maxInsts uint64) *experiments.Runner {
	k := runnerKey{scale, maxInsts}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.runners[k]
	if r == nil {
		r = experiments.NewRunner()
		r.Scale = scale
		r.MaxInsts = maxInsts
		r.Obs = s.reg
		if s.store != nil {
			r.Store = s.store
			r.Resume = true
		}
		if s.cfg.UnitTimeout > 0 {
			r.WorkloadTimeout = s.cfg.UnitTimeout
		}
		s.runners[k] = r
	}
	return r
}

// expand resolves the request into concrete, validated units: explicit
// units first, then the workloads × configs grid.
func expand(req CampaignRequest) ([]UnitSpec, error) {
	units := make([]UnitSpec, 0, len(req.Units))
	for i, u := range req.Units {
		if u.Kind == "" {
			u.Kind = KindSimulate
		}
		w, ok := workload.ByName(u.Workload)
		if !ok {
			return nil, fmt.Errorf("unit %d: unknown workload %q", i, u.Workload)
		}
		// Canonicalize: the unit key embeds the workload name, so "li"
		// and "130.li" must not mint two keys for one simulation.
		u.Workload = w.Name
		switch u.Kind {
		case KindSimulate:
			if u.Config == nil {
				return nil, fmt.Errorf("unit %d: simulate unit without a config", i)
			}
			if err := u.Config.Validate(); err != nil {
				return nil, fmt.Errorf("unit %d: %v", i, err)
			}
		case KindFaultCampaign:
			if u.Config == nil || u.Runs <= 0 || u.Faults <= 0 {
				return nil, fmt.Errorf("unit %d: faultcampaign unit needs config, runs and faults", i)
			}
		case KindExplore:
			if u.Config == nil {
				return nil, fmt.Errorf("unit %d: explore unit without a config", i)
			}
			if err := u.Config.Validate(); err != nil {
				return nil, fmt.Errorf("unit %d: %v", i, err)
			}
			if u.ARPT < 0 {
				return nil, fmt.Errorf("unit %d: negative ARPT size %d", i, u.ARPT)
			}
			if u.ARPT == 0 {
				// Default ARPT means the plain simulation: normalize the
				// kind so the unit dedupes against simulate campaigns.
				u.Kind = KindSimulate
			}
		default:
			return nil, fmt.Errorf("unit %d: unknown kind %q", i, u.Kind)
		}
		units = append(units, u)
	}
	if len(req.Configs) > 0 {
		names := req.Workloads
		if len(names) == 0 {
			for _, w := range workload.All() {
				names = append(names, w.Name)
			}
		}
		for _, name := range names {
			w, ok := workload.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown workload %q", name)
			}
			for _, cn := range req.Configs {
				cfg, err := ParseConfigName(cn)
				if err != nil {
					return nil, err
				}
				units = append(units, UnitSpec{Kind: KindSimulate, Workload: w.Name, Config: &cfg})
			}
		}
	}
	if len(units) == 0 {
		return nil, errors.New("campaign holds no units")
	}
	return units, nil
}

// Submit validates and enqueues one campaign. The rejection errors
// (ErrDraining, ErrNotReady, ErrJournal, ErrQueueFull, ErrQuota) map
// onto 503/429; anything else is a 400-shaped validation failure. A
// request repeating an already-seen idempotency key returns the
// original job's status instead of a new job.
func (s *Service) Submit(req CampaignRequest) (JobStatus, error) {
	specs, err := expand(req)
	if err != nil {
		return JobStatus{}, err
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "anonymous"
	}
	idemKey := ""
	if req.IdempotencyKey != "" {
		idemKey = tenant + "\x00" + req.IdempotencyKey
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reject(tenant, "draining")
		return JobStatus{}, ErrDraining
	}
	if !s.ready.Load() {
		s.mu.Unlock()
		s.reject(tenant, "not-ready")
		return JobStatus{}, ErrNotReady
	}
	if idemKey != "" {
		if id, ok := s.idem[idemKey]; ok {
			j := s.jobs[id]
			s.counter("service_idempotent_replays_total",
				"submissions answered by an existing job via idempotency key",
				obs.Labels{"tenant": tenant}).Inc()
			s.mu.Unlock()
			s.logf("job %s: idempotent replay for tenant %q", id, tenant)
			return s.status(j), nil
		}
	}
	if s.tenant[tenant]+len(specs) > s.cfg.TenantCap {
		s.mu.Unlock()
		s.reject(tenant, "quota")
		return JobStatus{}, fmt.Errorf("%w: tenant %q has %d units in flight, cap %d",
			ErrQuota, tenant, s.tenant[tenant], s.cfg.TenantCap)
	}
	// len(queue) only shrinks concurrently (workers dequeue; enqueues
	// all happen under mu), so this check is conservative and the
	// sends below cannot block. Leased units keep their queue slot
	// reserved — an expired lease must always be able to requeue its
	// unit without blocking.
	if len(s.queue)+s.leased+len(specs) > s.cfg.QueueCap {
		s.mu.Unlock()
		s.reject(tenant, "queue")
		return JobStatus{}, fmt.Errorf("%w: %d queued, %d leased, %d requested, cap %d",
			ErrQueueFull, len(s.queue), s.leased, len(specs), s.cfg.QueueCap)
	}
	id := fmt.Sprintf("c%04d", s.nextJob+1)
	if s.jrn != nil {
		// Write-ahead: the job record must be durable before the job is
		// visible or any unit can run; a failed append rejects the
		// submission rather than accepting work a crash would lose.
		reqEnc, err := json.Marshal(req)
		if err != nil {
			s.mu.Unlock()
			return JobStatus{}, fmt.Errorf("encoding request: %v", err)
		}
		//arlvet:allow lockheld the job record must hit the journal before the job becomes visible; the ID allocation and idempotency registration it orders live under this mu
		jerr := s.jrn.Append(journal.Record{
			T: journal.TypeJob, Job: id, Tenant: tenant,
			IdemKey: req.IdempotencyKey, Req: reqEnc,
		})
		if jerr != nil {
			s.counter("service_journal_errors_total", "journal appends that failed", nil).Inc()
			s.mu.Unlock()
			s.reject(tenant, "journal")
			s.logf("job %s: rejected, journal append failed: %v", id, jerr)
			return JobStatus{}, fmt.Errorf("%w: %v", ErrJournal, jerr)
		}
	}
	s.nextJob++
	j := &job{
		id:     id,
		tenant: tenant,
		req:    req,
		notify: make(chan struct{}),
		state:  StateRunning,
		counts: map[string]int{StateQueued: len(specs)},
		done:   make(chan struct{}),
	}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	for i, spec := range specs {
		j.units = append(j.units, &unit{
			job: j, index: i, spec: spec,
			key:   spec.key(req.Scale, req.MaxInsts),
			state: StateQueued,
		})
	}
	s.jobs[j.id] = j
	if idemKey != "" {
		s.idem[idemKey] = j.id
	}
	s.tenant[tenant] += len(specs)
	for _, u := range j.units {
		//arlvet:allow lockheld capacity was checked under this same mu above and only workers shrink the queue, so these sends cannot block
		s.queue <- u
		s.counter("service_units_total", "campaign units accepted",
			obs.Labels{"tenant": tenant, "kind": u.spec.Kind}).Inc()
	}
	s.counter("service_jobs_total", "campaigns accepted", obs.Labels{"tenant": tenant}).Inc()
	s.gauge("service_queue_depth", "units waiting for a worker").Set(float64(len(s.queue)))
	s.mu.Unlock()

	s.logf("job %s: %d units from tenant %q", j.id, len(specs), tenant)
	return s.status(j), nil
}

func (s *Service) counter(name, help string, labels obs.Labels) *obs.Counter {
	return s.reg.Counter(name, help, labels)
}

func (s *Service) gauge(name, help string) *obs.Gauge {
	return s.reg.Gauge(name, help, nil)
}

func (s *Service) reject(tenant, reason string) {
	s.counter("service_rejected_total", "campaign submissions rejected",
		obs.Labels{"tenant": tenant, "reason": reason}).Inc()
}

// Job looks a job up by id.
func (s *Service) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists job statuses, newest first.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id > jobs[k].id })
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = s.status(j)
	}
	return out
}

// Cancel cancels a job: its queued units end as canceled (workers skip
// them), while already-running units complete and keep their results —
// finished work stays in the shared store either way.
func (s *Service) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.cancel()
	s.logf("job %s: canceled", id)
	return true
}

// status snapshots one job's wire status.
func (s *Service) status(j *job) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:       j.id,
		Tenant:   j.tenant,
		State:    j.state,
		Units:    len(j.units),
		Queued:   j.counts[StateQueued],
		Running:  j.counts[StateRunning],
		Done:     j.counts[StateDone],
		Failed:   j.counts[StateFailed],
		Canceled: j.counts[StateCanceled],
		Deduped:  j.deduped,
	}
}

// results snapshots the full per-unit outcome.
func (s *Service) results(j *job) ResultsResponse {
	resp := ResultsResponse{Status: s.status(j)}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, u := range j.units {
		resp.Units = append(resp.Units, UnitStatus{
			Index: u.index, Spec: u.spec, State: u.state,
			Deduped: u.deduped, Error: u.errText, Result: u.result,
		})
	}
	return resp
}

// worker pulls units until the service drains.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		select {
		case <-s.stop:
			return
		case u := <-s.queue:
			s.gauge("service_queue_depth", "units waiting for a worker").Set(float64(len(s.queue)))
			s.run(u)
		}
	}
}

// run executes one unit under the service's resilience policy: the
// workload's circuit breaker gates entry, the retry policy re-attempts
// transient failures with deterministic backoff, and every outcome is
// published as an event and a metric.
func (s *Service) run(u *unit) {
	j := u.job
	if j.ctx.Err() != nil {
		s.finish(u, StateCanceled, "", nil)
		return
	}
	s.transition(u, StateRunning)
	s.inflight.Add(1)
	s.gauge("service_inflight_units", "units currently executing").Set(float64(s.inflight.Load()))
	defer func() {
		s.inflight.Add(-1)
		s.gauge("service_inflight_units", "units currently executing").Set(float64(s.inflight.Load()))
	}()

	// First claim of a key computes; every later unit with the same
	// key — same client resubmitting, another tenant's overlapping
	// grid — shares that computation through the runner memo and the
	// store, and is counted as a dedupe hit. The write happens under
	// j.mu: results() snapshots u.deduped under that lock concurrently.
	deduped := !s.claim(u.key)
	j.mu.Lock()
	u.deduped = deduped
	j.mu.Unlock()
	if deduped {
		s.counter("service_units_deduped_total", "units satisfied by work another unit already did",
			obs.Labels{"tenant": j.tenant}).Inc()
	}

	if err := s.breaker.Allow(u.spec.Workload); err != nil {
		s.finish(u, StateFailed, err.Error(), nil)
		return
	}
	retry := resilience.Retry{
		Attempts: s.cfg.Retries + 1,
		Seed:     j.req.Seed,
		OnRetry: func(name string, attempt int, delay time.Duration, err error) {
			s.logf("job %s unit %d: attempt %d failed (%v); next try in %v",
				j.id, u.index, attempt, err, delay)
			s.counter("service_unit_retries_total", "unit attempts retried after a failure",
				obs.Labels{"tenant": j.tenant}).Inc()
		},
	}
	var payload any
	attempt := 0
	err := retry.Do(j.ctx, u.key, func(ctx context.Context) error {
		// The job may have been canceled after run()'s entry check
		// while this unit waited on the breaker or a backoff sleep;
		// consult the attempt context so a dead job never starts a
		// fresh simulation. (Attempts already running do complete —
		// cancel keeps finished work — but new ones must not begin.)
		if err := ctx.Err(); err != nil {
			return err
		}
		attempt++
		if s.testHook != nil {
			if err := s.testHook(u, attempt); err != nil {
				return err
			}
		}
		var err error
		payload, err = s.execute(u)
		return err
	})
	s.breaker.Record(u.spec.Workload, err)
	if err != nil {
		state := StateFailed
		if j.ctx.Err() != nil && resilience.Transient(err) {
			// The job was canceled under the unit; it did not fail on
			// its own terms.
			state = StateCanceled
		}
		s.counter("service_units_failed_total", "units that failed permanently",
			obs.Labels{"tenant": j.tenant}).Inc()
		s.finish(u, state, err.Error(), nil)
		return
	}
	enc, err := json.Marshal(payload)
	if err != nil {
		s.finish(u, StateFailed, fmt.Sprintf("encoding result: %v", err), nil)
		return
	}
	s.finish(u, StateDone, "", enc)
}

// execute dispatches one unit to the shared runner for its campaign
// class.
func (s *Service) execute(u *unit) (any, error) {
	return ExecuteUnit(s.runner(u.job.req.Scale, u.job.req.MaxInsts), u.spec)
}

// ExecuteUnit dispatches one unit spec through r — the single
// execution switch behind both arld's in-process workers and
// arlworker's remote ones, so a unit computes identically wherever it
// lands (and dedupes byte-identically through whichever store backs
// the runner).
func ExecuteUnit(r *experiments.Runner, spec UnitSpec) (any, error) {
	w, ok := workload.ByName(spec.Workload)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", spec.Workload)
	}
	switch spec.Kind {
	case KindSimulate:
		return r.SimulateConfig(w, *spec.Config)
	case KindFaultCampaign:
		return r.FaultCampaign(w, spec.Seed, spec.Runs, spec.Faults, *spec.Config)
	case KindExplore:
		return r.SimulateConfigARPT(w, spec.ARPT, *spec.Config)
	default:
		return nil, fmt.Errorf("unknown unit kind %q", spec.Kind)
	}
}

// claim records a unit key as computed-by-this-process, reporting
// whether this caller was first.
func (s *Service) claim(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.seen[key]; ok {
		return false
	}
	s.seen[key] = struct{}{}
	return true
}

// transition moves a unit between non-terminal states and emits (and
// journals) the event.
func (s *Service) transition(u *unit, state string) {
	j := u.job
	j.mu.Lock()
	j.counts[u.state]--
	u.state = state
	j.counts[state]++
	e := j.emitLocked(Event{Job: j.id, Unit: u.index, State: state})
	s.journalEventLocked(e, nil)
	j.mu.Unlock()
}

// journalEventLocked appends one event record to the journal. Called
// under the job's mu: the journal must record events in the same order
// their sequence numbers were assigned, and the event only becomes
// visible to streamers when that mu is released — so writing inside
// the lock is what makes "journaled" and "observable" atomic. An
// append failure is counted and logged, not fatal: the event still
// flows to live subscribers; a crash before the next successful append
// would replay the unit from its previous state, and the store memo
// absorbs the recompute.
func (s *Service) journalEventLocked(e Event, result json.RawMessage) {
	if s.jrn == nil {
		return
	}
	//arlvet:allow lockheld WAL ordering: the journal must see events in seq order, which only holding the job mu guarantees
	err := s.jrn.Append(journal.Record{
		T: journal.TypeEvent, Job: e.Job, Seq: e.Seq, Unit: e.Unit,
		State: e.State, Deduped: e.Deduped, Error: e.Error, Result: result,
	})
	if err != nil {
		s.counter("service_journal_errors_total", "journal appends that failed", nil).Inc()
		s.logf("journal: event %s/%d: %v", e.Job, e.Seq, err)
	}
}

// finish moves a unit to a terminal state, releases its tenant quota,
// emits the event, and finalizes the job when it was the last one.
func (s *Service) finish(u *unit, state, errText string, result json.RawMessage) {
	j := u.job
	j.mu.Lock()
	j.counts[u.state]--
	u.state = state
	u.errText = errText
	u.result = result
	j.counts[state]++
	if u.deduped && state == StateDone {
		j.deduped++
	}
	e := j.emitLocked(Event{Job: j.id, Unit: u.index, State: state, Deduped: u.deduped, Error: errText})
	// The result payload rides in the journal record (not the event
	// wire form), so /results serves finished units after a restart
	// without re-executing them.
	s.journalEventLocked(e, result)
	terminal := j.counts[StateDone]+j.counts[StateFailed]+j.counts[StateCanceled] == len(j.units)
	if terminal && !j.finished {
		j.finished = true
		switch {
		case j.drained:
			j.state = JobInterrupted
		case j.ctx.Err() != nil:
			j.state = JobCanceled
		case j.counts[StateFailed] > 0:
			j.state = JobFailed
		case j.counts[StateCanceled] > 0:
			j.state = JobCanceled
		default:
			j.state = JobComplete
		}
		if s.jrn != nil {
			//arlvet:allow lockheld the end record must be ordered after the final unit event, which this mu serializes
			if err := s.jrn.Append(journal.Record{T: journal.TypeEnd, Job: j.id, State: j.state}); err != nil {
				s.counter("service_journal_errors_total", "journal appends that failed", nil).Inc()
				s.logf("journal: end %s: %v", j.id, err)
			}
		}
		close(j.done)
	}
	final := j.state
	j.mu.Unlock()

	s.mu.Lock()
	s.tenant[j.tenant]--
	if s.tenant[j.tenant] <= 0 {
		delete(s.tenant, j.tenant)
	}
	s.mu.Unlock()
	if terminal {
		s.logf("job %s: %s", j.id, final)
	}
}

// emitLocked stamps the next sequence number on the event, appends it
// and wakes the streamers, returning the stamped event. Callers hold
// j.mu. Sequence numbers continue across restarts (Recover seeds
// nextSeq past the replayed events), which is what keeps a client's
// ?from=N resume point valid on the restarted server.
func (j *job) emitLocked(e Event) Event {
	e.Seq = j.nextSeq
	j.nextSeq++
	j.events = append(j.events, e)
	close(j.notify)
	j.notify = make(chan struct{})
	return e
}

// eventsFrom returns the events with sequence number ≥ from, plus a
// channel that closes when more arrive and whether the job is
// terminal. The slice is ascending by Seq (contiguous except when
// corrupt-journal recovery dropped records), so the cut point is a
// binary search, not an index.
func (j *job) eventsFrom(from int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	i := sort.Search(len(j.events), func(i int) bool { return j.events[i].Seq >= from })
	var evs []Event
	if i < len(j.events) {
		evs = append(evs, j.events[i:]...)
	}
	return evs, j.notify, j.finished
}

// RecoverStats summarizes one journal recovery.
type RecoverStats struct {
	Jobs     int // jobs reconstructed from the journal
	Finished int // of those, jobs already terminal (nothing to run)
	Requeued int // incomplete units re-enqueued
	Replayed int // intact journal records applied
	Corrupt  int // journal lines dropped by checksum/framing
	Torn     int // torn segment tails (crash-mid-append signatures)
}

// Recover replays the journal and restores the service to the state
// the previous process crashed out of: every accepted job exists again
// with its event history (same sequence numbers), finished units keep
// their results, and incomplete units are re-enqueued — they recompute
// through the store memo, so no finished work re-executes. Submissions
// are rejected with ErrNotReady until Recover returns; call it once,
// after New, before (or concurrently with) serving traffic. With no
// journal configured it only flips the service ready.
func (s *Service) Recover() (RecoverStats, error) {
	var rs RecoverStats
	if s.jrn == nil {
		s.ready.Store(true)
		return rs, nil
	}
	// Fold the log into per-job state: the last writer wins record by
	// record, exactly the order the previous process applied them.
	type replayJob struct {
		rec    journal.Record
		events []journal.Record
		end    *journal.Record
	}
	byJob := make(map[string]*replayJob)
	var maxToken uint64
	stats, err := s.jrn.Replay(func(r journal.Record) {
		switch r.T {
		case journal.TypeJob:
			byJob[r.Job] = &replayJob{rec: r}
		case journal.TypeEvent:
			if rj := byJob[r.Job]; rj != nil {
				rj.events = append(rj.events, r)
			}
		case journal.TypeEnd:
			if rj := byJob[r.Job]; rj != nil {
				end := r
				rj.end = &end
			}
		case journal.TypeLease:
			// Leases die with the coordinator (their units replay as
			// Running and requeue below), but the fencing high-water
			// mark must not: a pre-crash zombie's token has to stay
			// stale against every post-restart grant.
			if r.Token > maxToken {
				maxToken = r.Token
			}
		}
	})
	if err != nil {
		return rs, err
	}
	s.leases.SetFence(maxToken)
	rs.Replayed, rs.Corrupt, rs.Torn = stats.Records, stats.Corrupt, stats.Torn
	s.counter("service_journal_replayed_records_total", "journal records replayed intact at startup", nil).Add(uint64(stats.Records))
	s.counter("service_journal_corrupt_records_total", "journal lines dropped as corrupt at startup", nil).Add(uint64(stats.Corrupt))
	if stats.Torn > 0 {
		s.counter("service_journal_torn_tails_total", "torn journal segment tails (crash mid-append)", nil).Add(uint64(stats.Torn))
	}

	ids := make([]string, 0, len(byJob))
	for id := range byJob {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var requeue []*unit // units to re-enqueue, in job order
	var reset []*unit   // of those, units that were mid-run at the crash
	s.mu.Lock()
	for _, id := range ids {
		rj := byJob[id]
		var req CampaignRequest
		if err := json.Unmarshal(rj.rec.Req, &req); err != nil {
			s.logf("recover: job %s: undecodable request, dropping: %v", id, err)
			continue
		}
		specs, err := expand(req)
		if err != nil {
			s.logf("recover: job %s: request no longer expands, dropping: %v", id, err)
			continue
		}
		tenant := rj.rec.Tenant
		if tenant == "" {
			tenant = "anonymous"
		}
		j := &job{
			id:     id,
			tenant: tenant,
			req:    req,
			notify: make(chan struct{}),
			state:  StateRunning,
			counts: map[string]int{StateQueued: len(specs)},
			done:   make(chan struct{}),
		}
		j.ctx, j.cancel = context.WithCancel(context.Background())
		for i, spec := range specs {
			j.units = append(j.units, &unit{
				job: j, index: i, spec: spec,
				key:   spec.key(req.Scale, req.MaxInsts),
				state: StateQueued,
			})
		}
		// Replay the event history in sequence order. Corruption may
		// have dropped records, so later events always win: each one
		// carries the unit's full state at that point.
		sort.Slice(rj.events, func(a, b int) bool { return rj.events[a].Seq < rj.events[b].Seq })
		for _, ev := range rj.events {
			if ev.Unit < 0 || ev.Unit >= len(j.units) {
				continue
			}
			u := j.units[ev.Unit]
			j.counts[u.state]--
			u.state = ev.State
			j.counts[ev.State]++
			u.deduped = ev.Deduped
			u.errText = ev.Error
			if len(ev.Result) > 0 {
				u.result = ev.Result
			}
			if ev.State == StateDone && ev.Deduped {
				j.deduped++
			}
			j.events = append(j.events, Event{
				Seq: ev.Seq, Job: id, Unit: ev.Unit, State: ev.State,
				Deduped: ev.Deduped, Error: ev.Error,
			})
			if ev.Seq >= j.nextSeq {
				j.nextSeq = ev.Seq + 1
			}
		}
		terminal := j.counts[StateDone]+j.counts[StateFailed]+j.counts[StateCanceled] == len(j.units)
		if rj.end != nil || terminal {
			j.finished = true
			switch {
			case rj.end != nil:
				j.state = rj.end.State
			case j.counts[StateFailed] > 0:
				j.state = JobFailed
			case j.counts[StateCanceled] > 0:
				j.state = JobCanceled
			default:
				j.state = JobComplete
			}
			close(j.done)
			rs.Finished++
		} else {
			n := 0
			for _, u := range j.units {
				switch u.state {
				case StateQueued:
					requeue = append(requeue, u)
					n++
				case StateRunning:
					// Mid-run at the crash: the attempt died with the
					// process. Re-queue; transition() below emits (and
					// journals) the queued event so stream followers see
					// the reset.
					requeue = append(requeue, u)
					reset = append(reset, u)
					n++
				}
			}
			s.tenant[tenant] += n
		}
		// Done units' keys count as computed for dedupe accounting, and
		// their artifacts sit in the store for the memo to find.
		for _, u := range j.units {
			if u.state == StateDone {
				s.seen[u.key] = struct{}{}
			}
		}
		if rj.rec.IdemKey != "" {
			s.idem[tenant+"\x00"+rj.rec.IdemKey] = id
		}
		s.jobs[id] = j
		var num int
		if _, err := fmt.Sscanf(id, "c%04d", &num); err == nil && num > s.nextJob {
			s.nextJob = num
		}
		rs.Jobs++
	}
	s.mu.Unlock()

	for _, u := range reset {
		s.transition(u, StateQueued)
	}
	rs.Requeued = len(requeue)
	s.counter("service_journal_recovered_jobs_total", "jobs reconstructed from the journal", nil).Add(uint64(rs.Jobs))
	s.counter("service_units_requeued_total", "incomplete units re-enqueued after recovery", nil).Add(uint64(rs.Requeued))
	s.logf("recovered %d jobs (%d finished) from journal: %d records, %d corrupt, %d torn; re-enqueueing %d units",
		rs.Jobs, rs.Finished, rs.Replayed, rs.Corrupt, rs.Torn, rs.Requeued)

	// Open for business before the (possibly queue-capacity-blocking)
	// re-enqueue: workers are already draining the channel, and new
	// submissions interleave safely with recovered units.
	s.ready.Store(true)
	for _, u := range requeue {
		s.queue <- u
	}
	s.gauge("service_queue_depth", "units waiting for a worker").Set(float64(len(s.queue)))
	return rs, nil
}

// Drain gracefully shuts the service down: new submissions get
// ErrDraining, in-flight units run to completion (their artifacts
// flush through the store's atomic writes), and still-queued units end
// as canceled with their jobs marked interrupted. Blocks until the
// pool is idle.
func (s *Service) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.mu.Unlock()
	// Readiness drops the instant draining starts, so a load balancer
	// stops routing while in-flight units finish.
	s.ready.Store(false)
	s.logf("draining: %d units in flight, %d queued", s.inflight.Load(), len(s.queue))
	close(s.stop)
	s.wg.Wait()
	for {
		select {
		case u := <-s.queue:
			u.job.mu.Lock()
			u.job.drained = true
			u.job.mu.Unlock()
			s.finish(u, StateCanceled, "server draining", nil)
		default:
			s.gauge("service_queue_depth", "units waiting for a worker").Set(0)
			// Outstanding remote leases are canceled too: their workers'
			// completions will find no lease (404) and move on, and the
			// units end interrupted like drained queued ones. Finished
			// remote work already flushed through the workers' stores.
			for _, l := range s.leases.DrainAll() {
				u := l.Unit.(*unit)
				s.mu.Lock()
				s.leased--
				s.mu.Unlock()
				u.job.mu.Lock()
				u.job.drained = true
				u.job.mu.Unlock()
				s.finish(u, StateCanceled, "server draining", nil)
			}
			s.workersGauge()
			return
		}
	}
}

// WriteMetrics renders the service metrics — queue and worker gauges,
// per-tenant counters, every simulation's published metrics, and the
// shared store's counters — in the obs text form.
func (s *Service) WriteMetrics(w io.Writer) error {
	// The store publishes by *adding* its totals, so each scrape
	// merges into a fresh scratch registry rather than double-counting
	// the live one.
	scratch := obs.NewRegistry()
	if err := scratch.ImportSamples(s.reg.Snapshot()); err != nil {
		return err
	}
	if s.store != nil {
		s.store.Publish(scratch)
	}
	return obs.WriteText(w, scratch.Snapshot())
}
