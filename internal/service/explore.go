package service

import (
	"fmt"

	"repro/internal/explore"
	"repro/internal/workload"
)

// ExplorationRequest is one design-space frontier submission (POST
// /api/v1/explorations): a declarative grid plus the campaign shaping
// of a CampaignRequest. The server expands it to explore units, so
// frontier sweeps ride the same journaled, deduplicating campaign
// machinery as everything else.
type ExplorationRequest struct {
	Tenant         string       `json:"tenant,omitempty"`
	Scale          int          `json:"scale,omitempty"`
	MaxInsts       uint64       `json:"max_insts,omitempty"`
	IdempotencyKey string       `json:"idempotency_key,omitempty"`
	Seed           uint64       `json:"seed,omitempty"` // grid sampling + retry jitter
	Workloads      []string     `json:"workloads,omitempty"`
	Grid           explore.Grid `json:"grid"`
}

// Campaign expands the exploration into an ordinary campaign request
// with explicit units — points outer, workloads inner, the order the
// client's frontier assembly relies on. Expansion happens before the
// journal write, so recovery replays concrete units and never needs to
// re-enumerate the grid.
func (req ExplorationRequest) Campaign() (CampaignRequest, error) {
	pts, _, err := req.Grid.Enumerate(req.Seed)
	if err != nil {
		return CampaignRequest{}, err
	}
	var names []string
	if len(req.Workloads) == 0 {
		for _, w := range workload.All() {
			names = append(names, w.Name)
		}
	} else {
		names = make([]string, len(req.Workloads))
		for i, n := range req.Workloads {
			w, ok := workload.ByName(n)
			if !ok {
				return CampaignRequest{}, fmt.Errorf("unknown workload %q", n)
			}
			names[i] = w.Name // canonical long name, the store-key form
		}
	}
	units := make([]UnitSpec, 0, len(pts)*len(names))
	for _, p := range pts {
		cfg := p.Config
		for _, n := range names {
			units = append(units, UnitSpec{
				Kind: KindExplore, Workload: n, Config: &cfg, ARPT: p.ARPTEntries,
			})
		}
	}
	return CampaignRequest{
		Tenant:         req.Tenant,
		Scale:          req.Scale,
		MaxInsts:       req.MaxInsts,
		IdempotencyKey: req.IdempotencyKey,
		Seed:           req.Seed,
		Units:          units,
	}, nil
}
