package service

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/explore"
)

// TestExplorationCampaignExpansion pins the contract the client's
// frontier assembly depends on: Campaign() expands points outer and
// workloads inner, and expand() normalizes ARPT-less explore units to
// plain simulate units so they dedupe across campaign kinds.
func TestExplorationCampaignExpansion(t *testing.T) {
	req := ExplorationRequest{
		Seed:      1,
		Workloads: []string{"li", "go"},
		Grid: explore.Grid{
			L1Ports:     []int{2},
			LVCPorts:    []int{0, 2},
			ARPTEntries: []int{0, 1024},
		},
	}
	creq, err := req.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	// (2+0) collapses the ARPT dimension, (2+2) keeps both values:
	// 3 points x 2 workloads, points outer.
	wantUnits := []struct {
		name, workload string
		arpt           int
	}{
		{"(2+0)", "130.li", 0}, {"(2+0)", "099.go", 0},
		{"(2+2)", "130.li", 0}, {"(2+2)", "099.go", 0},
		{"(2+2)", "130.li", 1024}, {"(2+2)", "099.go", 1024},
	}
	if len(creq.Units) != len(wantUnits) {
		t.Fatalf("expanded %d units, want %d", len(creq.Units), len(wantUnits))
	}
	for i, w := range wantUnits {
		u := creq.Units[i]
		if u.Kind != KindExplore || u.Config == nil || u.Config.Name != w.name ||
			u.Workload != w.workload || u.ARPT != w.arpt {
			t.Errorf("unit %d = {%s %s %v arpt=%d}, want {%s %s arpt=%d}",
				i, u.Kind, u.Workload, u.Config, u.ARPT, w.name, w.workload, w.arpt)
		}
	}

	units, err := expand(creq)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range units {
		wantKind := KindExplore
		if u.ARPT == 0 {
			wantKind = KindSimulate // normalized: dedupes with plain campaigns
		}
		if u.Kind != wantKind {
			t.Errorf("unit %d (arpt=%d) expanded to kind %s, want %s", i, u.ARPT, u.Kind, wantKind)
		}
	}

	if _, err := (ExplorationRequest{Workloads: []string{"nope"},
		Grid: explore.Grid{L1Ports: []int{2}}}).Campaign(); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := (ExplorationRequest{}).Campaign(); err == nil {
		t.Error("empty grid accepted")
	}
	bad := cpu.Decoupled(2, 2)
	if _, err := expand(CampaignRequest{Units: []UnitSpec{
		{Kind: KindExplore, Workload: "li", Config: &bad, ARPT: -1}}}); err == nil {
		t.Error("negative ARPT accepted")
	}
	if _, err := expand(CampaignRequest{Units: []UnitSpec{
		{Kind: KindExplore, Workload: "li"}}}); err == nil {
		t.Error("explore unit without config accepted")
	}
}

// A frontier assembled from server results must be byte-identical to
// one searched locally over the same grid and seed — the exploration
// endpoint is a transport, not a second implementation.
func TestExploreServerMatchesLocal(t *testing.T) {
	svc, client, _ := testService(t, Config{Workers: 4}, true)
	workloads := testWorkloads(t, "li")
	grid := explore.Grid{L1Ports: []int{2}, LVCPorts: []int{0, 2}, Penalties: []int{1, 4}}

	remote, err := client.Explore(0, testMaxInsts, 7, workloads, grid)
	if err != nil {
		t.Fatal(err)
	}
	remoteBytes, err := explore.Encode(remote)
	if err != nil {
		t.Fatal(err)
	}
	if err := explore.ValidateFrontier(remoteBytes); err != nil {
		t.Errorf("server frontier fails schema: %v", err)
	}

	r := experiments.NewRunner()
	r.Workloads = workloads
	r.MaxInsts = testMaxInsts
	local, err := explore.Search(r, grid, 7)
	if err != nil {
		t.Fatal(err)
	}
	localBytes, err := explore.Encode(local)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remoteBytes, localBytes) {
		t.Fatalf("server frontier differs from local:\n%s\n--- vs ---\n%s", remoteBytes, localBytes)
	}

	// The grid's ARPT-less points normalized to simulate units, so a
	// plain campaign over the same machines overlaps them completely.
	if _, err := client.SimResults(0, testMaxInsts, 7, []UnitSpec{
		{Kind: KindSimulate, Workload: "li", Config: configPtr(t, "(2+2)")},
	}); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(svc.Registry(), "service_units_deduped_total"); got == 0 {
		t.Error("simulate campaign did not dedupe against explore units")
	}
}

func configPtr(t *testing.T, name string) *cpu.Config {
	t.Helper()
	cfg, err := ParseConfigName(name)
	if err != nil {
		t.Fatal(err)
	}
	return &cfg
}

// TestConfigNameRoundTrip: every canonical configuration name the
// repo mints parses back to the identical Config — the name IS the
// machine, which is what lets store keys, grid shorthands and
// frontier artifacts all speak the same dialect.
func TestConfigNameRoundTrip(t *testing.T) {
	var configs []cpu.Config
	configs = append(configs, cpu.Figure8Configs()...)
	for _, pen := range []int{1, 4, 16} {
		configs = append(configs, experiments.PenaltyConfig(pen))
	}
	for _, p := range []cpu.CustomParams{
		{L1Ports: 2, LVCPorts: 2, LVCSizeKB: 8},
		{L1Ports: 3, LVCPorts: 2, L1Latency: 3, Penalty: 4},
		{L1Ports: 2, LVCPorts: 2, Steer: "pattern"},
		{L1Ports: 2, LVCPorts: 2, Steer: "pchash", LVCSizeKB: 16, Penalty: 8},
		{L1Ports: 4, L1Latency: 1},
	} {
		cfg, err := cpu.Custom(p)
		if err != nil {
			t.Fatalf("Custom(%+v): %v", p, err)
		}
		configs = append(configs, cfg)
	}
	seen := map[string]bool{}
	for _, cfg := range configs {
		if seen[cfg.Name] {
			continue
		}
		seen[cfg.Name] = true
		back, err := ParseConfigName(cfg.Name)
		if err != nil {
			t.Errorf("ParseConfigName(%q): %v", cfg.Name, err)
			continue
		}
		if !reflect.DeepEqual(back, cfg) {
			t.Errorf("%q does not round-trip:\n got %s\nwant %s", cfg.Name, back.Key(), cfg.Key())
		}
	}
	for _, bad := range []string{
		"", "(2+2", "2+2)", "(x+2)", "(2+2,)", "(2+2,pen)", "(2+2,penx4)",
		"(2+0,lvc8K)", "(2+0,pen4)", "(2+0,region)", "(2+2,bogus)", "(2+2,pen4,pen8)",
	} {
		if _, err := ParseConfigName(bad); err == nil {
			t.Errorf("ParseConfigName(%q) accepted", bad)
		}
	}
}
