package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/obs"
	"repro/internal/service/fleet"
	"repro/internal/service/journal"
)

// The fleet side of the service: arld as a coordinator handing units
// to remote arlworker processes under fenced leases (see
// internal/service/fleet for the lease-table semantics). The three
// endpoints are
//
//	POST /api/v1/lease               pull one unit under a new lease
//	POST /api/v1/lease/{id}/renew    heartbeat
//	POST /api/v1/lease/{id}/complete publish the result (fenced)
//
// Leased units count against queue capacity exactly like queued ones
// (the leased count below), so a lease expiry can always requeue its
// unit without blocking. Every grant is journaled write-ahead — a
// grant whose lease record cannot be persisted is retracted before
// the worker learns the token — which is what keeps fencing tokens
// monotonic across a coordinator crash: Recover folds the journaled
// high-water mark back into the table.

// ErrBadLease rejects a complete/renew request that is structurally
// invalid (unknown state, undecodable body).
var ErrBadLease = errors.New("service: bad lease request")

// TickLeases advances the lease clock by n ticks and requeues the
// units of any leases that expired. The serving binary drives this
// from its wall-clock ticker; tests drive it directly, which is what
// keeps lease timing deterministic inside the service.
func (s *Service) TickLeases(n uint64) {
	s.expireLeases(s.leases.Advance(n))
}

// sweepLeases collects expiries caused by arrival-driven clock
// advancement; every lease handler ends with one.
func (s *Service) sweepLeases() { s.expireLeases(s.leases.Advance(0)) }

func (s *Service) expireLeases(expired []fleet.Lease) {
	for _, l := range expired {
		u := l.Unit.(*unit)
		s.counter("service_leases_expired_total", "leases that expired without completion",
			obs.Labels{"worker": l.Worker}).Inc()
		s.logf("lease %s (token %d, worker %q): expired, requeueing unit %s[%d]",
			l.ID, l.Token, l.Worker, u.job.id, u.index)
		s.requeueLeased(u)
	}
	s.workersGauge()
}

func (s *Service) workersGauge() {
	s.gauge("service_workers_live", "distinct workers holding at least one live lease").
		Set(float64(s.leases.Workers()))
}

// requeueLeased returns an expired lease's unit to the queue — or
// cancels it when its job died or the service is draining. The leased
// count keeps the unit's queue-capacity reservation until the send has
// happened, so the send cannot block.
func (s *Service) requeueLeased(u *unit) {
	if u.job.ctx.Err() != nil {
		s.mu.Lock()
		s.leased--
		s.mu.Unlock()
		s.finish(u, StateCanceled, "", nil)
		return
	}
	s.transition(u, StateQueued)
	s.mu.Lock()
	if s.draining {
		s.leased--
		s.mu.Unlock()
		u.job.mu.Lock()
		u.job.drained = true
		u.job.mu.Unlock()
		s.finish(u, StateCanceled, "server draining", nil)
		return
	}
	//arlvet:allow lockheld the unit's queue slot is still reserved by the leased count this mu guards, so the send cannot block
	s.queue <- u
	s.leased--
	s.gauge("service_queue_depth", "units waiting for a worker").Set(float64(len(s.queue)))
	s.mu.Unlock()
}

// leaseNext dequeues one runnable unit and grants it to worker. It
// returns (nil, nil) when no unit is available.
func (s *Service) leaseNext(workerID string) (*fleet.LeaseGrant, error) {
	if !s.Ready() {
		return nil, ErrNotReady
	}
	// Dequeue under s.mu: the non-blocking receive plus the leased
	// increment must be atomic against Submit's capacity check and
	// requeueLeased's send, or a burst of submissions could overrun the
	// queue-capacity invariant that keeps requeues non-blocking.
	var u *unit
	var dead []*unit
	s.mu.Lock()
	for u == nil {
		select {
		//arlvet:allow lockheld non-blocking receive; the default arm exits immediately
		case cand := <-s.queue:
			if cand.job.ctx.Err() != nil {
				dead = append(dead, cand)
				continue
			}
			u = cand
			s.leased++
		default:
			s.mu.Unlock()
			for _, d := range dead {
				s.finish(d, StateCanceled, "", nil)
			}
			return nil, nil
		}
	}
	s.mu.Unlock()
	for _, d := range dead {
		s.finish(d, StateCanceled, "", nil)
	}

	l := s.leases.Grant(workerID, u)
	if s.jrn != nil {
		// Write-ahead like Submit: the fencing token must be durable
		// before the worker learns it, or a crash could reset the fence
		// and let this worker's completion collide with a post-restart
		// regrant. On failure the grant is retracted and the unit goes
		// back — the token is burned, never exposed.
		err := s.jrn.Append(journal.Record{
			T: journal.TypeLease, Job: u.job.id, Unit: u.index,
			Token: l.Token, Worker: workerID,
		})
		if err != nil {
			s.counter("service_journal_errors_total", "journal appends that failed", nil).Inc()
			s.logf("lease: journal append failed, retracting grant for %s[%d]: %v",
				u.job.id, u.index, err)
			s.leases.Retract(l.ID)
			s.mu.Lock()
			//arlvet:allow lockheld the unit's queue slot is still reserved by the leased count this mu guards, so the send cannot block
			s.queue <- u
			s.leased--
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}

	// Dedupe accounting mirrors the in-process path: the first claim of
	// a key computes, later holders ride the store memo.
	deduped := !s.claim(u.key)
	u.job.mu.Lock()
	u.deduped = deduped
	u.job.mu.Unlock()
	if deduped {
		s.counter("service_units_deduped_total", "units satisfied by work another unit already did",
			obs.Labels{"tenant": u.job.tenant}).Inc()
	}
	s.transition(u, StateRunning)
	s.counter("service_leases_granted_total", "units leased to remote workers",
		obs.Labels{"worker": workerID}).Inc()
	s.workersGauge()
	s.logf("lease %s (token %d): unit %s[%d] -> worker %q",
		l.ID, l.Token, u.job.id, u.index, workerID)

	spec, err := json.Marshal(u.spec)
	if err != nil {
		// Cannot happen for specs that expanded from JSON, but never
		// hand out a grant the worker cannot decode.
		return nil, fmt.Errorf("encoding unit spec: %v", err)
	}
	return &fleet.LeaseGrant{
		LeaseID:  l.ID,
		Token:    l.Token,
		TTL:      s.leases.TTL(),
		Job:      u.job.id,
		Unit:     u.index,
		Spec:     spec,
		Scale:    u.job.req.Scale,
		MaxInsts: u.job.req.MaxInsts,
	}, nil
}

// completeLease validates the fencing token and lands the worker's
// result. A fenced or unknown lease is the zombie-writer rejection:
// the unit belongs to someone else (or already finished) and the
// published result is discarded.
func (s *Service) completeLease(id string, req fleet.CompleteRequest) error {
	if req.State != StateDone && req.State != StateFailed {
		return fmt.Errorf("%w: state %q", ErrBadLease, req.State)
	}
	v, err := s.leases.Complete(id, req.Token)
	if err != nil {
		s.counter("service_leases_fenced_rejects_total",
			"completions rejected for a stale or unknown lease (zombie writers)",
			obs.Labels{"worker": req.Worker}).Inc()
		s.logf("lease %s: rejected completion from worker %q (token %d): %v",
			id, req.Worker, req.Token, err)
		return err
	}
	u := v.(*unit)
	s.mu.Lock()
	s.leased--
	s.mu.Unlock()

	var execErr error
	if req.State == StateFailed {
		if req.Error == "" {
			req.Error = "worker reported failure"
		}
		execErr = errors.New(req.Error)
	}
	s.breaker.Record(u.spec.Workload, execErr)
	if execErr != nil {
		s.counter("service_units_failed_total", "units that failed permanently",
			obs.Labels{"tenant": u.job.tenant}).Inc()
		s.finish(u, StateFailed, req.Error, nil)
	} else {
		result := req.Result
		if len(result) == 0 {
			result = json.RawMessage("null")
		}
		s.finish(u, StateDone, "", result)
	}
	s.workersGauge()
	return nil
}

// HTTP handlers.

func (s *Service) handleLease(w http.ResponseWriter, r *http.Request) {
	defer s.sweepLeases()
	var req fleet.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding lease request: %v", err))
		return
	}
	if req.Worker == "" {
		req.Worker = "anonymous"
	}
	g, err := s.leaseNext(req.Worker)
	switch {
	case errors.Is(err, ErrNotReady), errors.Is(err, ErrJournal):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	case g == nil:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, http.StatusOK, g)
	}
}

func (s *Service) handleLeaseRenew(w http.ResponseWriter, r *http.Request) {
	defer s.sweepLeases()
	var req fleet.RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding renew request: %v", err))
		return
	}
	l, err := s.leases.Renew(r.PathValue("id"), req.Token)
	switch {
	case errors.Is(err, fleet.ErrNoLease):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, fleet.ErrFenced):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, fleet.RenewReply{Deadline: l.Deadline})
	}
}

func (s *Service) handleLeaseComplete(w http.ResponseWriter, r *http.Request) {
	defer s.sweepLeases()
	var req fleet.CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding complete request: %v", err))
		return
	}
	err := s.completeLease(r.PathValue("id"), req)
	switch {
	case errors.Is(err, fleet.ErrNoLease):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, fleet.ErrFenced):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrBadLease):
		writeError(w, http.StatusBadRequest, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
	}
}
