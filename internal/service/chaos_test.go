package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/service/journal"
	"repro/internal/store"
	"repro/internal/store/faultfs"
)

// TestChaosServerHelper is not a test: it is the arld-shaped child
// process the crash-restart differential spawns and SIGKILLs. It
// builds a journaled service over the shared store dir (with injected
// storage faults when ARLD_CHAOS_FAULTS is set), serves the HTTP API,
// recovers the journal, and then blocks until killed.
func TestChaosServerHelper(t *testing.T) {
	dir := os.Getenv("ARLD_CHAOS_DIR")
	addr := os.Getenv("ARLD_CHAOS_ADDR")
	if dir == "" || addr == "" {
		t.Skip("helper for the chaos differential; driven by TestCrashRestartChaosDifferential")
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	fs := store.OS()
	if spec := os.Getenv("ARLD_CHAOS_FAULTS"); spec != "" {
		plan, err := faultfs.ParsePlan(spec)
		if err != nil {
			t.Fatalf("bad fault plan: %v", err)
		}
		fs = faultfs.New(fs, plan, logf)
	}
	st, err := store.OpenFS(dir, fs)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	jrn, err := journal.OpenFS(fs, filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	svc := New(Config{Workers: 1, Retries: 1, Journal: jrn, Log: os.Stderr}, st)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	go http.Serve(ln, svc.Handler())
	if _, err := svc.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	select {} // serve until the parent SIGKILLs us
}

// chaosServer manages one helper child process.
type chaosServer struct {
	t    *testing.T
	dir  string
	addr string
	cmd  *exec.Cmd
	out  *strings.Builder
}

func (c *chaosServer) start(faults string) {
	c.t.Helper()
	c.out = &strings.Builder{}
	cmd := exec.Command(os.Args[0], "-test.run=^TestChaosServerHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"ARLD_CHAOS_DIR="+c.dir,
		"ARLD_CHAOS_ADDR="+c.addr,
		"ARLD_CHAOS_FAULTS="+faults,
	)
	cmd.Stdout = c.out
	cmd.Stderr = c.out
	if err := cmd.Start(); err != nil {
		c.t.Fatalf("starting helper: %v", err)
	}
	c.cmd = cmd
	c.t.Cleanup(func() {
		if c.cmd != nil {
			c.cmd.Process.Kill()
			c.cmd.Wait()
		}
	})
	// The server is usable once /readyz turns 200 — journal replayed,
	// recovered units enqueued.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + c.addr + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("helper never became ready (faults=%q)\n--- helper output ---\n%s", faults, c.out)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// kill SIGKILLs the helper — the crash under test, not a shutdown.
func (c *chaosServer) kill() {
	c.t.Helper()
	if err := c.cmd.Process.Kill(); err != nil {
		c.t.Fatalf("kill: %v", err)
	}
	c.cmd.Wait()
	c.cmd = nil
}

// submitRetry re-POSTs through transient 503s (journal fault on the
// accept path, replay still finishing) — always with the same request,
// whose idempotency key is what keeps the retries duplicate-free.
func submitRetry(t *testing.T, cl *Client, req CampaignRequest) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, err := cl.Submit(req)
		if err == nil {
			return status
		}
		if !transientServerError(err) || time.Now().After(deadline) {
			t.Fatalf("submit: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestCrashRestartChaosDifferential is the crash-restart acceptance
// test: a campaign driven across three SIGKILLs of the server — right
// after acceptance, mid-campaign with results landed, and after the
// job is terminal — with storage faults injected on every recovery
// path, must converge to a final report byte-identical to an
// uninterrupted in-process run, with the job ID stable across an
// idempotent re-submission and no accepted work lost.
func TestCrashRestartChaosDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child server processes")
	}
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := &chaosServer{t: t, dir: dir, addr: addr}
	cl := &Client{Base: "http://" + addr, Tenant: "chaos"}

	// A budget well above the other service tests' so the units take
	// long enough that the mid-campaign kill genuinely lands mid-
	// campaign instead of after a too-fast grid already finished.
	const chaosMaxInsts = 400_000
	workloads := testWorkloads(t, "li", "compress")
	configs := []cpu.Config{cpu.Conventional(2, 2), cpu.Decoupled(3, 3)}
	req := CampaignRequest{
		MaxInsts:       chaosMaxInsts,
		Seed:           1,
		IdempotencyKey: "chaos-differential-1",
		Units:          SimGrid(workloads, configs),
	}

	// Kill point 1: immediately after acceptance. The job record is
	// journaled and durable by the time the POST returns; every unit is
	// still queued.
	srv.start("")
	accepted := submitRetry(t, cl, req)
	if accepted.ID == "" {
		t.Fatal("no job id")
	}
	srv.kill()

	// Restart with storage faults on the recovery path. The re-POST of
	// the same request must land on the original job, not a duplicate.
	srv.start("7:3:64")
	again := submitRetry(t, cl, req)
	if again.ID != accepted.ID {
		t.Fatalf("idempotent re-POST returned job %s, original was %s", again.ID, accepted.ID)
	}

	// Kill point 2: mid-campaign, after at least one unit finished —
	// its result is in the journal and its artifacts in the store.
	deadline := time.Now().Add(60 * time.Second)
	for {
		status, err := cl.Status(accepted.ID)
		if err == nil && status.Done >= 1 {
			break
		}
		if err == nil && status.Terminal() {
			break // tiny grid outran the poll; the differential still holds
		}
		if time.Now().After(deadline) {
			t.Fatalf("no unit finished before kill point 2\n--- helper output ---\n%s", srv.out)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv.kill()

	// Restart with a different fault seed; ride the job to terminal.
	srv.start("11:3:64")
	status, err := cl.Wait(accepted.ID)
	if err != nil {
		t.Fatalf("wait after second restart: %v\n--- helper output ---\n%s", err, srv.out)
	}
	if status.ID != accepted.ID {
		t.Fatalf("wait returned job %s, want %s", status.ID, accepted.ID)
	}

	// Kill point 3: after the job is terminal. Restart must serve the
	// finished results from the journal without re-running anything,
	// and the idempotent re-POST must still return the same, now
	// complete, job.
	srv.kill()
	srv.start("13:3:64")
	final := submitRetry(t, cl, req)
	if final.ID != accepted.ID {
		t.Fatalf("post-completion re-POST returned job %s, want %s", final.ID, accepted.ID)
	}
	final, err = cl.Wait(accepted.ID)
	if err != nil {
		t.Fatalf("final wait: %v\n--- helper output ---\n%s", err, srv.out)
	}
	if final.State != JobComplete {
		t.Fatalf("job ended %s, want %s (%d failed, %d canceled)\n--- helper output ---\n%s",
			final.State, JobComplete, final.Failed, final.Canceled, srv.out)
	}
	resp, err := cl.Results(accepted.ID)
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	results, err := decodeSimResults(resp, len(req.Units))
	if err != nil {
		t.Fatal(err)
	}
	chaosReport := experiments.RenderFigure8(
		experiments.AssembleFigure8(workloads, configs, results), configs)

	// The journal-replay counters must show the restarts actually
	// recovered state rather than starting fresh.
	metrics, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	if !strings.Contains(string(body), "service_journal_recovered_jobs_total") {
		t.Fatalf("no journal recovery counter in /metrics\n%s", body)
	}

	// The differential: an uninterrupted in-process run over the same
	// grid must render the same bytes.
	r := experiments.NewRunner()
	r.Workloads = workloads
	r.MaxInsts = chaosMaxInsts
	rows, err := r.FigureWithConfigs(configs)
	if err != nil {
		t.Fatal(err)
	}
	cleanReport := experiments.RenderFigure8(rows, configs)
	if chaosReport != cleanReport {
		t.Fatalf("chaos report differs from uninterrupted run:\n%s\n--- vs ---\n%s", chaosReport, cleanReport)
	}
}

// decodeSimResults unpacks a results response into spec-ordered
// simulation results, requiring every unit to have finished.
func decodeSimResults(resp ResultsResponse, n int) ([]*cpu.Result, error) {
	results := make([]*cpu.Result, n)
	for _, u := range resp.Units {
		if u.State != StateDone {
			return nil, fmt.Errorf("unit %d ended %s: %s", u.Index, u.State, u.Error)
		}
		if u.Index < 0 || u.Index >= n || len(u.Result) == 0 {
			return nil, fmt.Errorf("unit %d: missing result", u.Index)
		}
		var res cpu.Result
		if err := json.Unmarshal(u.Result, &res); err != nil {
			return nil, err
		}
		results[u.Index] = &res
	}
	for i, r := range results {
		if r == nil {
			return nil, errors.New("missing result for unit " + fmt.Sprint(i))
		}
	}
	return results, nil
}
